#include "view/screening.h"

#include <gtest/gtest.h>

#include "db/catalog.h"

namespace viewmat::view {
namespace {

db::Schema BaseSchema() {
  return db::Schema({db::Field::Int64("k1"), db::Field::Int64("k2"),
                     db::Field::Double("v")});
}

db::Tuple Row(int64_t k1, int64_t k2, double v) {
  return db::Tuple({db::Value(k1), db::Value(k2), db::Value(v)});
}

class ScreeningTest : public ::testing::Test {
 protected:
  ScreeningTest()
      : disk_(512, &tracker_),
        pool_(&disk_, 16),
        base_(&pool_, "R", BaseSchema(), db::AccessMethod::kClusteredBTree,
              0) {}

  storage::CostTracker tracker_;
  storage::SimulatedDisk disk_;
  storage::BufferPool pool_;
  db::Relation base_;
};

TEST_F(ScreeningTest, Stage1RejectsOutsideIntervalForFree) {
  // Predicate: k1 in [100, 200). Tuples far outside fail at stage 1 with
  // no C1 charge.
  TLockScreen screen(db::Predicate::Between(0, 100, 199), 0, &tracker_);
  EXPECT_FALSE(screen.Passes(Row(5, 0, 0)));
  EXPECT_FALSE(screen.Passes(Row(500, 0, 0)));
  EXPECT_EQ(screen.screened(), 2u);
  EXPECT_EQ(screen.stage1_hits(), 0u);
  EXPECT_EQ(tracker_.counters().screen_tests, 0u);  // stage 1 is free
}

TEST_F(ScreeningTest, Stage2ChargesC1AndDecides) {
  TLockScreen screen(db::Predicate::Between(0, 100, 199), 0, &tracker_);
  EXPECT_TRUE(screen.Passes(Row(150, 0, 0)));
  EXPECT_EQ(screen.stage1_hits(), 1u);
  EXPECT_EQ(screen.stage2_passes(), 1u);
  EXPECT_EQ(tracker_.counters().screen_tests, 1u);
}

TEST_F(ScreeningTest, DisjointClausesLockSeparateIntervals) {
  // Non-convex predicates lock a set of intervals ("the index intervals
  // covered by one or more clauses", §1): the gap between clauses fails at
  // stage 1 for free — no hull false drops.
  auto pred = db::Predicate::Or(db::Predicate::Between(0, 0, 10),
                                db::Predicate::Between(0, 100, 110));
  TLockScreen screen(pred, 0, &tracker_);
  EXPECT_EQ(screen.intervals().size(), 2u);
  EXPECT_FALSE(screen.Passes(Row(50, 0, 0)));  // in the gap: free reject
  EXPECT_EQ(screen.stage1_hits(), 0u);
  EXPECT_EQ(tracker_.counters().screen_tests, 0u);
  EXPECT_TRUE(screen.Passes(Row(105, 0, 0)));  // second clause
}

TEST_F(ScreeningTest, FalseDropsFromOtherFieldClausesPayStage2) {
  // Genuine false drops remain when the predicate also constrains fields
  // the single-field t-lock cannot see: the tuple breaks the lock, pays
  // C1 at stage 2, and is rejected there.
  auto pred = db::Predicate::And(
      db::Predicate::Between(0, 0, 100),
      db::Predicate::Compare(1, db::CompareOp::kEq, db::Value(int64_t{7})));
  TLockScreen screen(pred, 0, &tracker_);
  EXPECT_FALSE(screen.Passes(Row(50, 3, 0)));  // k2 != 7: stage-2 reject
  EXPECT_EQ(screen.stage1_hits(), 1u);
  EXPECT_EQ(screen.stage2_passes(), 0u);
  EXPECT_EQ(tracker_.counters().screen_tests, 1u);
}

TEST_F(ScreeningTest, NoFalseNegativesProperty) {
  // Safety: every predicate-satisfying tuple must pass the full screen.
  auto pred = db::Predicate::And(
      db::Predicate::Between(0, 10, 90),
      db::Predicate::Compare(1, db::CompareOp::kGt, db::Value(int64_t{5})));
  TLockScreen screen(pred, 0, &tracker_);
  for (int64_t k1 = 0; k1 < 120; ++k1) {
    for (int64_t k2 : {0, 10}) {
      const db::Tuple t = Row(k1, k2, 0);
      if (pred->Evaluate(t)) {
        EXPECT_TRUE(screen.Passes(t)) << t.ToString();
      }
    }
  }
}

TEST_F(ScreeningTest, UnboundedPredicateScreensEverythingAtStage2) {
  TLockScreen screen(db::Predicate::True(), 0, &tracker_);
  EXPECT_TRUE(screen.Passes(Row(1, 0, 0)));
  EXPECT_EQ(screen.stage1_hits(), 1u);
}

TEST_F(ScreeningTest, FactoryFromSelectProjectDef) {
  SelectProjectDef def;
  def.base = &base_;
  def.predicate = db::Predicate::Between(0, 0, 49);
  def.projection = {0, 2};
  def.view_key_field = 0;
  TLockScreen screen = TLockScreen::ForSelectProject(def, &tracker_);
  EXPECT_TRUE(screen.Passes(Row(10, 0, 0)));
  EXPECT_FALSE(screen.Passes(Row(60, 0, 0)));
  EXPECT_EQ(*screen.interval().lo, 0);
  EXPECT_EQ(*screen.interval().hi, 49);
}

TEST_F(ScreeningTest, NullTrackerStillScreens) {
  TLockScreen screen(db::Predicate::Between(0, 0, 10), 0, nullptr);
  EXPECT_TRUE(screen.Passes(Row(5, 0, 0)));
  EXPECT_FALSE(screen.Passes(Row(50, 0, 0)));
}

TEST_F(ScreeningTest, CountersAccumulate) {
  TLockScreen screen(db::Predicate::Between(0, 0, 9), 0, &tracker_);
  for (int64_t k = 0; k < 100; ++k) {
    screen.Passes(Row(k, 0, 0));
  }
  EXPECT_EQ(screen.screened(), 100u);
  EXPECT_EQ(screen.stage1_hits(), 10u);
  EXPECT_EQ(screen.stage2_passes(), 10u);
  // Exactly the f*u accounting: only interval hits cost C1.
  EXPECT_EQ(tracker_.counters().screen_tests, 10u);
}

}  // namespace
}  // namespace viewmat::view
