#include "view/recompute_on_change.h"

#include <gtest/gtest.h>

#include "testing/view_fixture.h"
#include "view/query_modification.h"

namespace viewmat::view {
namespace {

using testing::ViewTestDb;

db::Tuple SpValue(int64_t k1, double v) {
  return db::Tuple({db::Value(k1), db::Value(v)});
}

std::map<db::Tuple, int64_t> QueryAllOf(ViewStrategy* s) {
  std::map<db::Tuple, int64_t> out;
  VIEWMAT_CHECK(s->Query(0, 1 << 20, [&](const db::Tuple& t, int64_t c) {
    out[t] += c;
    return true;
  }).ok());
  return out;
}

TEST(RecomputeOnChange, AnswersMatchQueryModification) {
  ViewTestDb db;
  RecomputeOnChangeStrategy roc(db.SpDef(), &db.tracker_);
  ASSERT_TRUE(roc.InitializeFromBase().ok());
  QmSelectProjectStrategy qm(db.SpDef(), &db.tracker_);
  EXPECT_EQ(QueryAllOf(&roc), db.QueryAll(&qm));
}

TEST(RecomputeOnChange, RelevantUpdateTriggersFullRecompute) {
  ViewTestDb db;
  RecomputeOnChangeStrategy roc(db.SpDef(), &db.tracker_);
  ASSERT_TRUE(roc.InitializeFromBase().ok());
  const uint64_t before = roc.recompute_count();
  ASSERT_TRUE(roc.OnTransaction(db.UpdateTxn(5, 999.0)).ok());
  const auto contents = QueryAllOf(&roc);  // forces the recompute
  EXPECT_EQ(roc.recompute_count(), before + 1);
  EXPECT_EQ(contents.count(SpValue(5, 999.0)), 1u);
}

TEST(RecomputeOnChange, IrrelevantTupleUpdateDoesNotDirty) {
  // k1 = 150 lies outside the predicate; the run-time screen rejects it,
  // so the view stays clean and queries skip the recompute.
  ViewTestDb db;
  RecomputeOnChangeStrategy roc(db.SpDef(), &db.tracker_);
  ASSERT_TRUE(roc.InitializeFromBase().ok());
  const uint64_t before = roc.recompute_count();
  ASSERT_TRUE(roc.OnTransaction(db.UpdateTxn(150, 1.0)).ok());
  (void)QueryAllOf(&roc);
  EXPECT_EQ(roc.recompute_count(), before);
}

TEST(RecomputeOnChange, ManyRelevantTxnsOneRecompute) {
  // Dirtiness is a flag, not a queue: ten relevant transactions before a
  // query cause exactly one recomputation.
  ViewTestDb db;
  RecomputeOnChangeStrategy roc(db.SpDef(), &db.tracker_);
  ASSERT_TRUE(roc.InitializeFromBase().ok());
  const uint64_t before = roc.recompute_count();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(roc.OnTransaction(db.UpdateTxn(i, 100.0 + i)).ok());
  }
  const auto contents = QueryAllOf(&roc);
  EXPECT_EQ(roc.recompute_count(), before + 1);
  EXPECT_EQ(contents.count(SpValue(9, 109.0)), 1u);
}

TEST(RecomputeOnChange, AgreesWithQmAfterMixedHistory) {
  ViewTestDb db;
  RecomputeOnChangeStrategy roc(db.SpDef(), &db.tracker_);
  ASSERT_TRUE(roc.InitializeFromBase().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(roc.OnTransaction(db.UpdateTxn((i * 13) % 200, 7.0 * i)).ok());
  }
  QmSelectProjectStrategy qm(db.SpDef(), &db.tracker_);
  EXPECT_EQ(QueryAllOf(&roc), db.QueryAll(&qm));
}

}  // namespace
}  // namespace viewmat::view
