#include "view/view_def.h"

#include <gtest/gtest.h>

#include "testing/view_fixture.h"

namespace viewmat::view {
namespace {

using testing::ViewTestDb;

TEST(SelectProjectDef, ViewSchemaFollowsProjection) {
  ViewTestDb db;
  const SelectProjectDef def = db.SpDef();
  const db::Schema schema = def.ViewSchema();
  ASSERT_EQ(schema.field_count(), 2u);
  EXPECT_EQ(schema.field(0).name, "k1");
  EXPECT_EQ(schema.field(1).name, "v");
  EXPECT_EQ(def.BaseKeyField(), 0u);
}

TEST(SelectProjectDef, MapTupleFiltersAndProjects) {
  ViewTestDb db;
  const SelectProjectDef def = db.SpDef();
  db::Tuple out;
  EXPECT_TRUE(def.MapTuple(db.BaseRow(10, 1.5), &out));
  EXPECT_TRUE(out == db::Tuple({db::Value(int64_t{10}), db::Value(1.5)}));
  EXPECT_FALSE(def.MapTuple(db.BaseRow(150, 1.5), &out));  // fails predicate
}

TEST(SelectProjectDef, ValidateCatchesEveryMistake) {
  ViewTestDb db;
  SelectProjectDef def = db.SpDef();
  EXPECT_TRUE(def.Validate().ok());
  def.base = nullptr;
  EXPECT_FALSE(def.Validate().ok());
  def = db.SpDef();
  def.predicate = nullptr;
  EXPECT_FALSE(def.Validate().ok());
  def = db.SpDef();
  def.projection = {};
  EXPECT_FALSE(def.Validate().ok());
  def = db.SpDef();
  def.projection = {0, 99};
  EXPECT_FALSE(def.Validate().ok());
  def = db.SpDef();
  def.view_key_field = 5;
  EXPECT_FALSE(def.Validate().ok());
  def = db.SpDef();
  def.projection = {2, 0};  // key field would be the double column v
  def.view_key_field = 0;
  EXPECT_FALSE(def.Validate().ok());
}

TEST(JoinDef, ViewSchemaPrefixesRelationNames) {
  ViewTestDb db;
  const JoinDef def = db.JDef();
  const db::Schema schema = def.ViewSchema();
  ASSERT_EQ(schema.field_count(), 4u);
  EXPECT_EQ(schema.field(0).name, "R.k1");
  EXPECT_EQ(schema.field(2).name, "R2.key");
}

TEST(JoinDef, MapTupleJoinsOrRejects) {
  ViewTestDb db;
  const JoinDef def = db.JDef();
  db::Tuple out;
  // k1=7, k2=7 joins R2 key 7 (w = 700).
  auto joined = def.MapTuple(db.BaseRow(7, 7.0), &out, &db.tracker_);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(*joined);
  EXPECT_DOUBLE_EQ(out.at(3).AsDouble(), 700.0);
  // Outside C_f: rejected before the probe.
  const auto before = db.tracker_.counters().tuple_cpu_ops;
  auto rejected = def.MapTuple(db.BaseRow(150, 1.0), &out, &db.tracker_);
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(*rejected);
  EXPECT_EQ(db.tracker_.counters().tuple_cpu_ops, before);  // no C1 charged
  // Dangling join key: satisfies C_f but finds no partner.
  const db::Tuple dangling({db::Value(int64_t{8}), db::Value(int64_t{5000}),
                            db::Value(1.0)});
  auto miss = def.MapTuple(dangling, &out, &db.tracker_);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(*miss);
}

TEST(JoinDef, ValidateCatchesMistakes) {
  ViewTestDb db;
  JoinDef def = db.JDef();
  EXPECT_TRUE(def.Validate().ok());
  def.r2 = nullptr;
  EXPECT_FALSE(def.Validate().ok());
  def = db.JDef();
  def.r1_join_field = 99;
  EXPECT_FALSE(def.Validate().ok());
  def = db.JDef();
  def.r1_projection = {};
  def.r2_projection = {};
  EXPECT_FALSE(def.Validate().ok());
  def = db.JDef();
  def.view_key_field = 10;
  EXPECT_FALSE(def.Validate().ok());
}

TEST(AggregateDef, ValidateAndNames) {
  ViewTestDb db;
  AggregateDef def = db.AggDef(AggregateOp::kSum);
  EXPECT_TRUE(def.Validate().ok());
  def.agg_field = 42;
  EXPECT_FALSE(def.Validate().ok());
  EXPECT_STREQ(AggregateOpName(AggregateOp::kSum), "sum");
  EXPECT_STREQ(AggregateOpName(AggregateOp::kCount), "count");
  EXPECT_STREQ(AggregateOpName(AggregateOp::kAvg), "avg");
  EXPECT_STREQ(AggregateOpName(AggregateOp::kMin), "min");
  EXPECT_STREQ(AggregateOpName(AggregateOp::kMax), "max");
}

}  // namespace
}  // namespace viewmat::view
