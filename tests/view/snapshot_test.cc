#include "view/snapshot.h"

#include <gtest/gtest.h>

#include "testing/view_fixture.h"
#include "view/query_modification.h"

namespace viewmat::view {
namespace {

using testing::ViewTestDb;

db::Tuple SpValue(int64_t k1, double v) {
  return db::Tuple({db::Value(k1), db::Value(v)});
}

std::map<db::Tuple, int64_t> QuerySnapshot(SnapshotStrategy* s) {
  std::map<db::Tuple, int64_t> out;
  VIEWMAT_CHECK(s->Query(0, 1 << 20, [&](const db::Tuple& t, int64_t c) {
    out[t] += c;
    return true;
  }).ok());
  return out;
}

TEST(Snapshot, InitialSnapshotMatchesQueryModification) {
  ViewTestDb db;
  SnapshotStrategy snap(db.SpDef(), SnapshotStrategy::Options{5},
                        &db.tracker_);
  ASSERT_TRUE(snap.InitializeFromBase().ok());
  QmSelectProjectStrategy qm(db.SpDef(), &db.tracker_);
  EXPECT_EQ(QuerySnapshot(&snap), db.QueryAll(&qm));
}

TEST(Snapshot, ReadsAreStaleBetweenRefreshes) {
  ViewTestDb db;
  SnapshotStrategy snap(db.SpDef(), SnapshotStrategy::Options{100},
                        &db.tracker_);
  ASSERT_TRUE(snap.InitializeFromBase().ok());
  ASSERT_TRUE(snap.OnTransaction(db.UpdateTxn(5, 999.0)).ok());
  // The defining snapshot behaviour: the stored copy still shows the old
  // value — no screening, no patching happened.
  const auto contents = QuerySnapshot(&snap);
  EXPECT_EQ(contents.count(SpValue(5, 5.0)), 1u);
  EXPECT_EQ(contents.count(SpValue(5, 999.0)), 0u);
  EXPECT_EQ(snap.stale_transactions(), 1u);
}

TEST(Snapshot, PeriodicRefreshCatchesUp) {
  ViewTestDb db;
  SnapshotStrategy snap(db.SpDef(), SnapshotStrategy::Options{2},
                        &db.tracker_);
  ASSERT_TRUE(snap.InitializeFromBase().ok());
  ASSERT_TRUE(snap.OnTransaction(db.UpdateTxn(5, 999.0)).ok());
  (void)QuerySnapshot(&snap);  // query 1: stale
  (void)QuerySnapshot(&snap);  // query 2: stale (period = 2)
  const auto fresh = QuerySnapshot(&snap);  // query 3: triggers refresh
  EXPECT_EQ(fresh.count(SpValue(5, 999.0)), 1u);
  EXPECT_EQ(snap.refresh_count(), 2u);  // initial + periodic
  EXPECT_EQ(snap.stale_transactions(), 0u);
}

TEST(Snapshot, RefreshNowForcesConsistency) {
  ViewTestDb db;
  SnapshotStrategy snap(db.SpDef(), SnapshotStrategy::Options{1000},
                        &db.tracker_);
  ASSERT_TRUE(snap.InitializeFromBase().ok());
  ASSERT_TRUE(snap.OnTransaction(db.UpdateTxn(7, 123.0)).ok());
  ASSERT_TRUE(snap.RefreshNow().ok());
  EXPECT_EQ(QuerySnapshot(&snap).count(SpValue(7, 123.0)), 1u);
}

TEST(Snapshot, NoPerTransactionScreeningCost) {
  ViewTestDb db;
  SnapshotStrategy snap(db.SpDef(), SnapshotStrategy::Options{1000},
                        &db.tracker_);
  ASSERT_TRUE(snap.InitializeFromBase().ok());
  const auto before = db.tracker_.counters().screen_tests;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(snap.OnTransaction(db.UpdateTxn(i, 1.0 * i)).ok());
  }
  EXPECT_EQ(db.tracker_.counters().screen_tests, before);
}

TEST(Snapshot, IrrelevantUpdatesStillCountAsStaleness) {
  // The snapshot cannot tell relevant from irrelevant updates — that is
  // precisely what it saves by not screening.
  ViewTestDb db;
  SnapshotStrategy snap(db.SpDef(), SnapshotStrategy::Options{10},
                        &db.tracker_);
  ASSERT_TRUE(snap.InitializeFromBase().ok());
  ASSERT_TRUE(snap.OnTransaction(db.UpdateTxn(150, 1.0)).ok());  // outside f
  EXPECT_EQ(snap.stale_transactions(), 1u);
}

}  // namespace
}  // namespace viewmat::view
