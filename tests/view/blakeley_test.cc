#include "view/blakeley_appendix_a.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace viewmat::view {
namespace {

db::Tuple R1Row(int64_t a, int64_t b) {
  return db::Tuple({db::Value(a), db::Value(b)});
}
db::Tuple R2Row(int64_t b, int64_t c) {
  return db::Tuple({db::Value(b), db::Value(c)});
}

/// Natural join R1(a,b) ⋈ R2(b,c) projected to (a, c) — the paper's §2.1
/// running example.
JoinSpec Spec() { return JoinSpec{1, 0, {0, 3}}; }

TEST(JoinProject, BasicJoin) {
  const CountedSet v =
      JoinProject({R1Row(1, 10), R1Row(2, 20)}, {R2Row(10, 7), R2Row(30, 9)},
                  Spec());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.at(db::Tuple({db::Value(int64_t{1}), db::Value(int64_t{7})})),
            1);
}

TEST(JoinProject, ProjectionProducesDuplicateCounts) {
  // Two R1 tuples with different b join different R2 tuples but project to
  // the same (a, c) value: count 2.
  const CountedSet v = JoinProject({R1Row(1, 10), R1Row(1, 11)},
                                   {R2Row(10, 7), R2Row(11, 7)}, Spec());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.at(db::Tuple({db::Value(int64_t{1}), db::Value(int64_t{7})})),
            2);
}

TEST(MultisetOps, PlusAndMinus) {
  CountedSet a;
  const db::Tuple t({db::Value(int64_t{1})});
  a[t] = 2;
  CountedSet b;
  b[t] = 1;
  EXPECT_EQ(PlusAll(a, b).at(t), 3);
  EXPECT_EQ(MinusAll(a, b).at(t), 1);
  CountedSet drained = MinusAll(b, b);
  EXPECT_TRUE(drained.empty());  // zero counts vanish
  CountedSet negative = MinusAll(CountedSet{}, b);
  EXPECT_EQ(negative.at(t), -1);  // negative counts kept: the corruption
}

/// The exact Appendix A scenario: t1 ∈ R1 and t2 ∈ R2 join to a view tuple;
/// one transaction deletes both.
TwoRelationDelta DualDeleteScenario() {
  TwoRelationDelta delta;
  delta.r1 = {R1Row(1, 10), R1Row(2, 20)};
  delta.r2 = {R2Row(10, 7), R2Row(20, 8)};
  delta.d1 = {R1Row(1, 10)};
  delta.d2 = {R2Row(10, 7)};
  return delta;
}

TEST(AppendixA, HansonRefreshMatchesRecompute) {
  const TwoRelationDelta delta = DualDeleteScenario();
  const JoinSpec spec = Spec();
  const CountedSet v0 = JoinProject(delta.r1, delta.r2, spec);
  const CountedSet v1 = HansonRefresh(v0, delta, spec);
  EXPECT_EQ(v1, RecomputeFromScratch(delta, spec));
}

TEST(AppendixA, BlakeleyOverDeletesDualDeletedTuple) {
  // "the result of joining t1 to t2 would be deleted from V0 three times,
  // not just one" — starting from count 1, the count lands at 1 − 3 = −2.
  const TwoRelationDelta delta = DualDeleteScenario();
  const JoinSpec spec = Spec();
  const CountedSet v0 = JoinProject(delta.r1, delta.r2, spec);
  const CountedSet v1 = BlakeleyRefresh(v0, delta, spec);
  const db::Tuple victim({db::Value(int64_t{1}), db::Value(int64_t{7})});
  ASSERT_TRUE(v1.contains(victim));
  EXPECT_EQ(v1.at(victim), -2);
  EXPECT_NE(v1, RecomputeFromScratch(delta, spec));
}

TEST(AppendixA, BlakeleyCorrectForSingleSidedChanges) {
  // The incorrect expansion only misbehaves for dual-sided deletions:
  // one-sided transactions refresh correctly under both expansions.
  TwoRelationDelta delta;
  delta.r1 = {R1Row(1, 10), R1Row(2, 20)};
  delta.r2 = {R2Row(10, 7), R2Row(20, 8), R2Row(30, 9)};
  delta.d1 = {R1Row(1, 10)};
  delta.a1 = {R1Row(3, 30)};
  const JoinSpec spec = Spec();
  const CountedSet v0 = JoinProject(delta.r1, delta.r2, spec);
  const CountedSet want = RecomputeFromScratch(delta, spec);
  EXPECT_EQ(HansonRefresh(v0, delta, spec), want);
  EXPECT_EQ(BlakeleyRefresh(v0, delta, spec), want);
}

TEST(AppendixA, HansonHandlesSimultaneousInsertsBothSides) {
  TwoRelationDelta delta;
  delta.r1 = {R1Row(1, 10)};
  delta.r2 = {R2Row(10, 7)};
  delta.a1 = {R1Row(2, 20)};
  delta.a2 = {R2Row(20, 8)};
  const JoinSpec spec = Spec();
  const CountedSet v0 = JoinProject(delta.r1, delta.r2, spec);
  const CountedSet v1 = HansonRefresh(v0, delta, spec);
  EXPECT_EQ(v1, RecomputeFromScratch(delta, spec));
  // The A1 × A2 cross term matters: (2,20) joins the new (20,8).
  EXPECT_TRUE(v1.contains(db::Tuple({db::Value(int64_t{2}),
                                     db::Value(int64_t{8})})));
}

TEST(AppendixA, RandomizedHansonAlwaysMatchesRecompute) {
  // Property sweep: Hanson's corrected expansion equals recomputation for
  // arbitrary mixed transactions; Blakeley's diverges whenever a joined
  // pair is deleted from both sides.
  Random rng(77);
  const JoinSpec spec = Spec();
  for (int trial = 0; trial < 50; ++trial) {
    TwoRelationDelta delta;
    for (int i = 0; i < 6; ++i) {
      delta.r1.push_back(R1Row(rng.UniformInt(0, 4), rng.UniformInt(0, 5)));
      delta.r2.push_back(R2Row(rng.UniformInt(0, 5), rng.UniformInt(0, 3)));
    }
    // Delete one existing tuple from each side with 50% probability, insert
    // fresh tuples with 50%.
    if (rng.Bernoulli(0.5)) delta.d1.push_back(delta.r1[0]);
    if (rng.Bernoulli(0.5)) delta.d2.push_back(delta.r2[0]);
    if (rng.Bernoulli(0.5)) {
      delta.a1.push_back(R1Row(rng.UniformInt(5, 9), rng.UniformInt(0, 5)));
    }
    if (rng.Bernoulli(0.5)) {
      delta.a2.push_back(R2Row(rng.UniformInt(0, 5), rng.UniformInt(4, 7)));
    }
    const CountedSet v0 = JoinProject(delta.r1, delta.r2, spec);
    EXPECT_EQ(HansonRefresh(v0, delta, spec),
              RecomputeFromScratch(delta, spec))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace viewmat::view
