// Per-strategy crash repair on top of the unified RecoveryManager: each
// maintenance scheme attaches the manager, commits its transactions
// through the log-commit-then-apply protocol, and recovers to an exact
// state after an apply that dies partway. The deferred strategy's
// journaled protocol has its own suite (deferred_recovery_test); here the
// RM-committing strategies and the hybrid's journaled fold are covered.

#include <gtest/gtest.h>

#include "db/recovery.h"
#include "testing/view_fixture.h"
#include "view/hybrid.h"
#include "view/immediate.h"
#include "view/query_modification.h"
#include "view/recompute_on_change.h"
#include "view/snapshot.h"

namespace viewmat::view {
namespace {

using testing::ViewTestDb;

db::Tuple SpValue(int64_t k1, double v) {
  return db::Tuple({db::Value(k1), db::Value(v)});
}

/// Arms a read fault against a cold cache so the NEXT base apply dies
/// after its commit record is durable (WAL syncs are writes; the apply's
/// first B-tree descent is the first read).
void ArmApplyFailure(ViewTestDb* db) {
  ASSERT_TRUE(db->pool_.FlushAndEvictAll().ok());
  db->disk_.InjectReadFault(/*after=*/0);
}

TEST(StrategyRecovery, QueryModificationRecoversBaseOnly) {
  ViewTestDb db;
  db::RecoveryManager rm(&db.pool_);
  rm.Register(db.base_);
  QmSelectProjectStrategy qm(db.SpDef(), &db.tracker_);
  qm.AttachRecovery(&rm);

  ArmApplyFailure(&db);
  EXPECT_FALSE(qm.OnTransaction(db.UpdateTxn(5, 999.0)).ok());
  db.disk_.ClearFaults();
  EXPECT_TRUE(rm.needs_recovery());

  // QM keeps no materialized state: recovering the base is the whole job.
  ASSERT_TRUE(qm.Recover().ok());
  EXPECT_FALSE(rm.needs_recovery());
  const auto contents = db.QueryAll(&qm);
  EXPECT_EQ(contents.count(SpValue(5, 999.0)), 1u);
  EXPECT_EQ(contents.count(SpValue(5, 5.0)), 0u);
  EXPECT_EQ(contents.size(), static_cast<size_t>(ViewTestDb::kFCut));
}

TEST(StrategyRecovery, ImmediateRebuildsTheCopyAfterAFailedPatch) {
  ViewTestDb db;
  db::RecoveryManager rm(&db.pool_);
  rm.Register(db.base_);
  ImmediateStrategy immediate(db.SpDef(), &db.tracker_);
  immediate.AttachRecovery(&rm);
  ASSERT_TRUE(immediate.InitializeFromBase().ok());

  ArmApplyFailure(&db);
  EXPECT_FALSE(immediate.OnTransaction(db.UpdateTxn(7, 777.0)).ok());
  db.disk_.ClearFaults();
  // The commit is durable but either the base apply or the view patch did
  // not finish: queries are untrustworthy until Recover().
  EXPECT_TRUE(immediate.needs_recovery());

  ASSERT_TRUE(immediate.Recover().ok());
  EXPECT_FALSE(immediate.needs_recovery());
  // The rebuilt copy agrees with query modification over the recovered base.
  QmSelectProjectStrategy qm(db.SpDef(), &db.tracker_);
  EXPECT_EQ(db.QueryAll(&immediate), db.QueryAll(&qm));
  EXPECT_EQ(db.QueryAll(&immediate).count(SpValue(7, 777.0)), 1u);
}

TEST(StrategyRecovery, SnapshotRecoverIsBaseRepairPlusFreshSnapshot) {
  ViewTestDb db;
  db::RecoveryManager rm(&db.pool_);
  rm.Register(db.base_);
  SnapshotStrategy snap(db.SpDef(), SnapshotStrategy::Options{1000},
                        &db.tracker_);
  snap.AttachRecovery(&rm);
  ASSERT_TRUE(snap.InitializeFromBase().ok());
  const uint64_t refreshes_before = snap.refresh_count();

  ArmApplyFailure(&db);
  EXPECT_FALSE(snap.OnTransaction(db.UpdateTxn(3, 333.0)).ok());
  db.disk_.ClearFaults();

  // A snapshot's only repair is a fresh snapshot: Recover() completes the
  // committed transaction, then recomputes the stored copy, so the update
  // is visible immediately (no staleness window after crash repair).
  ASSERT_TRUE(snap.Recover().ok());
  EXPECT_GT(snap.refresh_count(), refreshes_before);
  EXPECT_EQ(snap.stale_transactions(), 0u);
  std::map<db::Tuple, int64_t> contents = db.QueryAll(&snap);
  EXPECT_EQ(contents.count(SpValue(3, 333.0)), 1u);
  EXPECT_EQ(contents.count(SpValue(3, 3.0)), 0u);
}

TEST(StrategyRecovery, RecomputeOnChangeRecoversViaItsOwnRefreshRule) {
  ViewTestDb db;
  db::RecoveryManager rm(&db.pool_);
  rm.Register(db.base_);
  RecomputeOnChangeStrategy recompute(db.SpDef(), &db.tracker_);
  recompute.AttachRecovery(&rm);
  ASSERT_TRUE(recompute.InitializeFromBase().ok());
  const uint64_t recomputes_before = recompute.recompute_count();

  ArmApplyFailure(&db);
  EXPECT_FALSE(recompute.OnTransaction(db.UpdateTxn(9, 99.0)).ok());
  db.disk_.ClearFaults();

  // [Bune79]'s refresh rule doubles as crash repair: Recover() marks the
  // view dirty and the next query recomputes from the recovered base.
  ASSERT_TRUE(recompute.Recover().ok());
  const auto contents = db.QueryAll(&recompute);
  EXPECT_EQ(contents.count(SpValue(9, 99.0)), 1u);
  EXPECT_GT(recompute.recompute_count(), recomputes_before);
}

TEST(StrategyRecovery, HybridRollsTheJournaledFoldForward) {
  ViewTestDb db;
  HybridStrategy hybrid(db.SpDef(), db.WalAdOptions(), &db.tracker_);
  ASSERT_TRUE(hybrid.InitializeFromBase().ok());
  ASSERT_TRUE(hybrid.crash_safe());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(hybrid.OnTransaction(db.UpdateTxn(i, 1000.0 + i)).ok());
  }

  // Kill the fold partway: a write fault lands somewhere inside the
  // journaled protocol (view patch, fold, or marker write).
  db.disk_.InjectWriteFault(/*after=*/2);
  EXPECT_FALSE(hybrid.Refresh().ok());
  db.disk_.ClearFaults();

  ASSERT_TRUE(hybrid.Recover().ok());
  EXPECT_FALSE(hybrid.stale());
  EXPECT_EQ(hybrid.phase(), RecoveryPhase::kNone);
  // Every committed update survives the interrupted fold, exactly once.
  const auto contents = db.QueryAll(&hybrid);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(contents.count(SpValue(i, 1000.0 + i)), 1u) << "key " << i;
    EXPECT_EQ(contents.count(SpValue(i, 1.0 * i)), 0u) << "key " << i;
  }
  EXPECT_EQ(contents.size(), static_cast<size_t>(ViewTestDb::kFCut));
}

TEST(StrategyRecovery, RecoverIsANoOpOnAHealthySystem) {
  ViewTestDb db;
  db::RecoveryManager rm(&db.pool_);
  rm.Register(db.base_);
  ImmediateStrategy immediate(db.SpDef(), &db.tracker_);
  immediate.AttachRecovery(&rm);
  ASSERT_TRUE(immediate.InitializeFromBase().ok());
  ASSERT_TRUE(immediate.OnTransaction(db.UpdateTxn(2, 22.0)).ok());

  const auto before = db.QueryAll(&immediate);
  ASSERT_TRUE(immediate.Recover().ok());
  EXPECT_EQ(db.QueryAll(&immediate), before);
  ASSERT_TRUE(immediate.Recover().ok());  // and idempotent
  EXPECT_EQ(db.QueryAll(&immediate), before);
}

}  // namespace
}  // namespace viewmat::view
