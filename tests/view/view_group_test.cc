#include "view/view_group.h"

#include <gtest/gtest.h>

#include "testing/view_fixture.h"
#include "view/query_modification.h"

namespace viewmat::view {
namespace {

using testing::ViewTestDb;

/// Second view over the same base: high-k1 tuples, projecting (k1, k2).
SelectProjectDef SecondDef(ViewTestDb* db) {
  SelectProjectDef def;
  def.base = db->base_;
  def.predicate =
      db::Predicate::Compare(0, db::CompareOp::kGe, db::Value(int64_t{100}));
  def.projection = {0, 1};
  def.view_key_field = 0;
  return def;
}

std::map<db::Tuple, int64_t> QueryMember(DeferredViewGroup* group,
                                         size_t index) {
  std::map<db::Tuple, int64_t> out;
  VIEWMAT_CHECK(group->Query(index, 0, 1 << 20,
                             [&](const db::Tuple& t, int64_t c) {
                               out[t] += c;
                               return true;
                             }).ok());
  return out;
}

TEST(ViewGroup, MembersMaterializeCorrectlyAtRegistration) {
  ViewTestDb db;
  DeferredViewGroup group(db.base_, db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(group.AddView(db.SpDef()).ok());
  ASSERT_TRUE(group.AddView(SecondDef(&db)).ok());
  EXPECT_EQ(group.view_count(), 2u);
  EXPECT_EQ(QueryMember(&group, 0).size(),
            static_cast<size_t>(ViewTestDb::kFCut));
  EXPECT_EQ(QueryMember(&group, 1).size(),
            static_cast<size_t>(ViewTestDb::kN - 100));
}

TEST(ViewGroup, RejectsForeignBaseAndLateRegistration) {
  ViewTestDb db;
  ViewTestDb other;
  DeferredViewGroup group(db.base_, db.AdOptions(), &db.tracker_);
  EXPECT_EQ(group.AddView(other.SpDef()).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(group.AddView(db.SpDef()).ok());
  ASSERT_TRUE(group.OnTransaction(db.UpdateTxn(5, 1.0)).ok());
  EXPECT_EQ(group.AddView(SecondDef(&db)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ViewGroup, OneFoldRefreshesAllMembers) {
  ViewTestDb db;
  DeferredViewGroup group(db.base_, db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(group.AddView(db.SpDef()).ok());       // k1 < 60
  ASSERT_TRUE(group.AddView(SecondDef(&db)).ok());   // k1 >= 100
  // One update relevant to each view.
  ASSERT_TRUE(group.OnTransaction(db.UpdateTxn(5, 500.0)).ok());
  ASSERT_TRUE(group.OnTransaction(db.UpdateTxn(150, 999.0)).ok());
  EXPECT_EQ(group.fold_count(), 0u);
  // Querying member 0 folds once...
  const auto m0 = QueryMember(&group, 0);
  EXPECT_EQ(group.fold_count(), 1u);
  EXPECT_EQ(m0.count(db::Tuple({db::Value(int64_t{5}), db::Value(500.0)})),
            1u);
  // ...and member 1 is ALSO current without another fold.
  const auto m1 = QueryMember(&group, 1);
  EXPECT_EQ(group.fold_count(), 1u);
  EXPECT_EQ(m1.count(db::Tuple({db::Value(int64_t{150}),
                                db::Value(int64_t{150 % ViewTestDb::kR2N})})),
            1u);
  EXPECT_EQ(group.pending_tuples(), 0u);
}

TEST(ViewGroup, MembersMatchIndependentQueryModification) {
  ViewTestDb db;
  DeferredViewGroup group(db.base_, db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(group.AddView(db.SpDef()).ok());
  ASSERT_TRUE(group.AddView(SecondDef(&db)).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(group.OnTransaction(db.UpdateTxn((i * 17) % 200, 3.0 * i)).ok());
  }
  ASSERT_TRUE(group.RefreshAll().ok());
  QmSelectProjectStrategy qm0(db.SpDef(), &db.tracker_);
  QmSelectProjectStrategy qm1(SecondDef(&db), &db.tracker_);
  EXPECT_EQ(QueryMember(&group, 0), db.QueryAll(&qm0));
  EXPECT_EQ(QueryMember(&group, 1), db.QueryAll(&qm1));
}

TEST(ViewGroup, QueryOutOfRangeIndexFails) {
  ViewTestDb db;
  DeferredViewGroup group(db.base_, db.AdOptions(), &db.tracker_);
  EXPECT_EQ(group
                .Query(3, 0, 10,
                       [](const db::Tuple&, int64_t) { return true; })
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ViewGroup, SharedFoldAmortizesAdReads) {
  // Cost claim of §4: with V views, the AD file is read once per refresh
  // wave instead of V times. Compare the AD reads of a group refresh wave
  // against V independent deferred engines' refreshes.
  ViewTestDb db;
  DeferredViewGroup group(db.base_, db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(group.AddView(db.SpDef()).ok());
  ASSERT_TRUE(group.AddView(SecondDef(&db)).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(group.OnTransaction(db.UpdateTxn(i * 19, 1.0 * i)).ok());
  }
  (void)db.pool_.FlushAndEvictAll();
  const auto before = db.tracker_.counters();
  ASSERT_TRUE(group.RefreshAll().ok());
  const auto delta = db.tracker_.counters() - before;
  // One fold wave: the AD pages were read exactly once (a couple of pages),
  // not once per member. With per-view HRs this would at least double.
  EXPECT_GT(delta.disk_reads, 0u);
  EXPECT_EQ(group.fold_count(), 1u);
}

}  // namespace
}  // namespace viewmat::view
