#include <gtest/gtest.h>

#include "testing/view_fixture.h"
#include "view/deferred.h"
#include "view/immediate.h"
#include "view/query_modification.h"

namespace viewmat::view {
namespace {

using testing::ViewTestDb;

/// The workload generator only issues updates; these tests drive genuine
/// insertions of new tuples and deletions of existing ones through every
/// engine — the A-only / D-only paths of the differential algorithm.

db::Tuple SpValue(int64_t k1, double v) {
  return db::Tuple({db::Value(k1), db::Value(v)});
}

TEST(InsertDelete, ImmediateHandlesPureInserts) {
  ViewTestDb db;
  ImmediateStrategy imm(db.SpDef(), &db.tracker_);
  ASSERT_TRUE(imm.InitializeFromBase().ok());
  db::Transaction txn;
  txn.Insert(db.base_, db.BaseRow(1000, 7.5));  // brand-new key... but wait
  // kN=200, key 1000 is outside the predicate (>= 60): no view change.
  txn.Insert(db.base_, db::Tuple({db::Value(int64_t{30}),
                                  db::Value(int64_t{10}),
                                  db::Value(123.0)}));  // duplicate key 30!
  ASSERT_TRUE(imm.OnTransaction(txn).ok());
  const auto all = db.QueryAll(&imm);
  // Key 30 now contributes two view tuples (old v=30 and new v=123).
  EXPECT_EQ(all.count(SpValue(30, 30.0)), 1u);
  EXPECT_EQ(all.count(SpValue(30, 123.0)), 1u);
  EXPECT_EQ(imm.view()->total_count(), ViewTestDb::kFCut + 1);
}

TEST(InsertDelete, ImmediateHandlesPureDeletes) {
  ViewTestDb db;
  ImmediateStrategy imm(db.SpDef(), &db.tracker_);
  ASSERT_TRUE(imm.InitializeFromBase().ok());
  db::Transaction txn;
  txn.Delete(db.base_, db.BaseRow(10, 10.0));
  txn.Delete(db.base_, db.BaseRow(150, 150.0));  // outside the view
  ASSERT_TRUE(imm.OnTransaction(txn).ok());
  const auto all = db.QueryAll(&imm);
  EXPECT_EQ(all.count(SpValue(10, 10.0)), 0u);
  EXPECT_EQ(imm.view()->total_count(), ViewTestDb::kFCut - 1);
  EXPECT_EQ(db.base_->tuple_count(), static_cast<size_t>(ViewTestDb::kN - 2));
}

TEST(InsertDelete, DeferredHandlesInsertDeleteMix) {
  ViewTestDb db;
  DeferredStrategy def(db.SpDef(), db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(def.InitializeFromBase().ok());
  // txn 1: delete a view tuple; txn 2: insert a new in-view tuple with a
  // fresh key (201 is outside, 45 duplicates an existing key).
  db::Transaction t1;
  t1.Delete(db.base_, db.BaseRow(20, 20.0));
  ASSERT_TRUE(def.OnTransaction(t1).ok());
  db::Transaction t2;
  t2.Insert(db.base_, db::Tuple({db::Value(int64_t{45}),
                                 db::Value(int64_t{5}), db::Value(999.0)}));
  ASSERT_TRUE(def.OnTransaction(t2).ok());
  const auto all = db.QueryAll(&def);
  EXPECT_EQ(all.count(SpValue(20, 20.0)), 0u);
  EXPECT_EQ(all.count(SpValue(45, 45.0)), 1u);   // original still there
  EXPECT_EQ(all.count(SpValue(45, 999.0)), 1u);  // plus the new one
  // The fold applied both to the base as well.
  size_t with_key_45 = 0;
  ASSERT_TRUE(db.base_->FindAllByKey(45, [&](const db::Tuple&) {
    ++with_key_45;
    return true;
  }).ok());
  EXPECT_EQ(with_key_45, 2u);
}

TEST(InsertDelete, DeleteThenReinsertWithinOneTransactionIsNoOp) {
  ViewTestDb db;
  DeferredStrategy def(db.SpDef(), db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(def.InitializeFromBase().ok());
  db::Transaction txn;
  txn.Delete(db.base_, db.BaseRow(7, 7.0));
  txn.Insert(db.base_, db.BaseRow(7, 7.0));  // cancels inside the txn
  ASSERT_TRUE(def.OnTransaction(txn).ok());
  EXPECT_EQ(def.pending_tuples(), 0u);
  const auto all = db.QueryAll(&def);
  EXPECT_EQ(all.count(SpValue(7, 7.0)), 1u);
}

TEST(InsertDelete, ProjectionDuplicatesCountCorrectly) {
  // Two base tuples projecting to the SAME view value: the duplicate count
  // must reach 2, and deleting one source must leave the other visible —
  // the exact motivation for §2.1's duplicate counts.
  ViewTestDb db;
  ImmediateStrategy imm(db.SpDef(), &db.tracker_);
  ASSERT_TRUE(imm.InitializeFromBase().ok());
  // Key 12 already has v=12; add a second tuple with the same (k1, v)
  // projection.
  const db::Tuple clone({db::Value(int64_t{12}), db::Value(int64_t{99}),
                         db::Value(12.0)});
  db::Transaction txn;
  txn.Insert(db.base_, clone);
  ASSERT_TRUE(imm.OnTransaction(txn).ok());
  auto all = db.QueryAll(&imm);
  EXPECT_EQ(all.at(SpValue(12, 12.0)), 2);  // count = 2, stored once
  EXPECT_EQ(imm.view()->distinct_count(),
            static_cast<size_t>(ViewTestDb::kFCut));
  // Remove one source: the value survives with count 1.
  db::Transaction txn2;
  txn2.Delete(db.base_, clone);
  ASSERT_TRUE(imm.OnTransaction(txn2).ok());
  all = db.QueryAll(&imm);
  EXPECT_EQ(all.at(SpValue(12, 12.0)), 1);
}

TEST(InsertDelete, JoinViewInsertWithoutPartnerContributesNothing) {
  ViewTestDb db;
  ImmediateStrategy imm(db.JDef(), &db.tracker_);
  ASSERT_TRUE(imm.InitializeFromBase().ok());
  const int64_t before = imm.view()->total_count();
  // k2 = 500 has no R2 partner (R2 keys are 0..19).
  db::Transaction txn;
  txn.Insert(db.base_, db::Tuple({db::Value(int64_t{33}),
                                  db::Value(int64_t{500}),
                                  db::Value(1.0)}));
  ASSERT_TRUE(imm.OnTransaction(txn).ok());
  EXPECT_EQ(imm.view()->total_count(), before);  // dangling: no view tuple
  // And deleting it again must not corrupt the view either.
  db::Transaction txn2;
  txn2.Delete(db.base_, db::Tuple({db::Value(int64_t{33}),
                                   db::Value(int64_t{500}),
                                   db::Value(1.0)}));
  ASSERT_TRUE(imm.OnTransaction(txn2).ok());
  EXPECT_EQ(imm.view()->total_count(), before);
}

TEST(InsertDelete, QmReflectsInsertsAndDeletesDirectly) {
  ViewTestDb db;
  QmSelectProjectStrategy qm(db.SpDef(), &db.tracker_);
  db::Transaction txn;
  txn.Delete(db.base_, db.BaseRow(3, 3.0));
  txn.Insert(db.base_, db::Tuple({db::Value(int64_t{4}),
                                  db::Value(int64_t{4}), db::Value(44.0)}));
  ASSERT_TRUE(qm.OnTransaction(txn).ok());
  const auto all = db.QueryAll(&qm);
  EXPECT_EQ(all.count(SpValue(3, 3.0)), 0u);
  EXPECT_EQ(all.count(SpValue(4, 44.0)), 1u);
}

}  // namespace
}  // namespace viewmat::view
