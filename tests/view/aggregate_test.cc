#include "view/aggregate.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "testing/view_fixture.h"

namespace viewmat::view {
namespace {

using testing::ViewTestDb;

// --- AggregateState ---------------------------------------------------------

TEST(AggregateState, SumCountAvg) {
  AggregateState sum(AggregateOp::kSum);
  sum.ApplyInsert(1.0);
  sum.ApplyInsert(2.5);
  EXPECT_DOUBLE_EQ(sum.Current()->AsDouble(), 3.5);

  AggregateState count(AggregateOp::kCount);
  count.ApplyInsert(1.0);
  count.ApplyInsert(1.0);
  EXPECT_EQ(count.Current()->AsInt64(), 2);

  AggregateState avg(AggregateOp::kAvg);
  avg.ApplyInsert(1.0);
  avg.ApplyInsert(3.0);
  EXPECT_DOUBLE_EQ(avg.Current()->AsDouble(), 2.0);
}

TEST(AggregateState, DeletesAreExactForSumLikeOps) {
  AggregateState sum(AggregateOp::kSum);
  sum.ApplyInsert(5.0);
  sum.ApplyInsert(7.0);
  EXPECT_TRUE(sum.ApplyDelete(5.0));
  EXPECT_DOUBLE_EQ(sum.Current()->AsDouble(), 7.0);
  EXPECT_TRUE(sum.exact());
}

TEST(AggregateState, MinMaxTrackInserts) {
  AggregateState mn(AggregateOp::kMin);
  mn.ApplyInsert(5.0);
  mn.ApplyInsert(2.0);
  mn.ApplyInsert(9.0);
  EXPECT_DOUBLE_EQ(mn.Current()->AsDouble(), 2.0);
  AggregateState mx(AggregateOp::kMax);
  mx.ApplyInsert(5.0);
  mx.ApplyInsert(9.0);
  EXPECT_DOUBLE_EQ(mx.Current()->AsDouble(), 9.0);
}

TEST(AggregateState, DeletingExtremumInvalidatesMinMax) {
  AggregateState mn(AggregateOp::kMin);
  mn.ApplyInsert(5.0);
  mn.ApplyInsert(2.0);
  EXPECT_FALSE(mn.ApplyDelete(2.0));  // extremum left: recompute needed
  EXPECT_FALSE(mn.exact());
  EXPECT_EQ(mn.Current().status().code(), StatusCode::kFailedPrecondition);
}

TEST(AggregateState, DeletingNonExtremumKeepsMinMaxExact) {
  AggregateState mn(AggregateOp::kMin);
  mn.ApplyInsert(5.0);
  mn.ApplyInsert(2.0);
  EXPECT_TRUE(mn.ApplyDelete(5.0));
  EXPECT_DOUBLE_EQ(mn.Current()->AsDouble(), 2.0);
}

TEST(AggregateState, EmptySetBehaviour) {
  AggregateState sum(AggregateOp::kSum);
  EXPECT_DOUBLE_EQ(sum.Current()->AsDouble(), 0.0);
  AggregateState count(AggregateOp::kCount);
  EXPECT_EQ(count.Current()->AsInt64(), 0);
  AggregateState avg(AggregateOp::kAvg);
  EXPECT_EQ(avg.Current().status().code(), StatusCode::kNotFound);
  AggregateState mn(AggregateOp::kMin);
  EXPECT_EQ(mn.Current().status().code(), StatusCode::kNotFound);
}

TEST(AggregateState, DrainToEmptyRestoresExactness) {
  AggregateState mn(AggregateOp::kMin);
  mn.ApplyInsert(2.0);
  EXPECT_TRUE(mn.ApplyDelete(2.0));  // empty again: exact by definition
  EXPECT_TRUE(mn.exact());
}

TEST(AggregateState, SerializeRoundTrips) {
  AggregateState s(AggregateOp::kAvg);
  s.ApplyInsert(4.0);
  s.ApplyInsert(8.0);
  uint8_t buf[AggregateState::kSerializedSize];
  s.Serialize(buf);
  const AggregateState back = AggregateState::Deserialize(buf);
  EXPECT_TRUE(back == s);
  EXPECT_DOUBLE_EQ(back.Current()->AsDouble(), 6.0);
}

// --- Strategies --------------------------------------------------------------

double ExpectedSum(const ViewTestDb& db) {
  double sum = 0;
  for (const auto& [k, v] : db.v_oracle_) {
    if (k < ViewTestDb::kFCut) sum += v;
  }
  return sum;
}

TEST(RecomputeAggregate, ComputesFreshEveryTime) {
  ViewTestDb db;
  RecomputeAggregateStrategy strategy(db.AggDef(AggregateOp::kSum),
                                      &db.tracker_);
  db::Value out;
  ASSERT_TRUE(strategy.QueryValue(&out).ok());
  EXPECT_DOUBLE_EQ(out.AsDouble(), ExpectedSum(db));
  ASSERT_TRUE(strategy.OnTransaction(db.UpdateTxn(5, 500.0)).ok());
  ASSERT_TRUE(strategy.QueryValue(&out).ok());
  EXPECT_DOUBLE_EQ(out.AsDouble(), ExpectedSum(db));
}

TEST(ImmediateAggregate, MaintainsSumAcrossTransactions) {
  ViewTestDb db;
  ImmediateAggregateStrategy strategy(db.AggDef(AggregateOp::kSum), &db.disk_,
                                      &db.tracker_);
  ASSERT_TRUE(strategy.InitializeFromBase().ok());
  db::Value out;
  ASSERT_TRUE(strategy.QueryValue(&out).ok());
  EXPECT_DOUBLE_EQ(out.AsDouble(), ExpectedSum(db));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(strategy.OnTransaction(db.UpdateTxn(i * 7, i * 3.25)).ok());
  }
  ASSERT_TRUE(strategy.QueryValue(&out).ok());
  EXPECT_NEAR(out.AsDouble(), ExpectedSum(db), 1e-6);
}

TEST(ImmediateAggregate, MinRecomputesWhenExtremumLeaves) {
  ViewTestDb db;
  ImmediateAggregateStrategy strategy(db.AggDef(AggregateOp::kMin), &db.disk_,
                                      &db.tracker_);
  ASSERT_TRUE(strategy.InitializeFromBase().ok());
  db::Value out;
  ASSERT_TRUE(strategy.QueryValue(&out).ok());
  EXPECT_DOUBLE_EQ(out.AsDouble(), 0.0);  // v = k1, min is key 0
  // Raise the minimum's value: forces a recomputation.
  ASSERT_TRUE(strategy.OnTransaction(db.UpdateTxn(0, 999.0)).ok());
  EXPECT_GE(strategy.recompute_count(), 1u);
  ASSERT_TRUE(strategy.QueryValue(&out).ok());
  EXPECT_DOUBLE_EQ(out.AsDouble(), 1.0);  // key 1 is the new minimum
}

TEST(DeferredAggregate, RefreshesAtQueryTime) {
  ViewTestDb db;
  DeferredAggregateStrategy strategy(db.AggDef(AggregateOp::kSum),
                                     db.AdOptions(), &db.disk_, &db.tracker_);
  ASSERT_TRUE(strategy.InitializeFromBase().ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(strategy.OnTransaction(db.UpdateTxn(i, 100.0 + i)).ok());
  }
  db::Value out;
  ASSERT_TRUE(strategy.QueryValue(&out).ok());
  EXPECT_NEAR(out.AsDouble(), ExpectedSum(db), 1e-6);
}

TEST(AllAggregateStrategies, AgreeOnRandomHistory) {
  Random rng(55);
  ViewTestDb db_rec, db_imm, db_def;
  RecomputeAggregateStrategy rec(db_rec.AggDef(AggregateOp::kSum),
                                 &db_rec.tracker_);
  ImmediateAggregateStrategy imm(db_imm.AggDef(AggregateOp::kSum),
                                 &db_imm.disk_, &db_imm.tracker_);
  DeferredAggregateStrategy def(db_def.AggDef(AggregateOp::kSum),
                                db_def.AdOptions(), &db_def.disk_,
                                &db_def.tracker_);
  ASSERT_TRUE(imm.InitializeFromBase().ok());
  ASSERT_TRUE(def.InitializeFromBase().ok());
  for (int t = 0; t < 40; ++t) {
    const int64_t key = rng.UniformInt(0, ViewTestDb::kN - 1);
    const double v = static_cast<double>(rng.UniformInt(0, 1000));
    auto drive = [&](ViewTestDb& db, AggregateStrategy* s) {
      ASSERT_TRUE(s->OnTransaction(db.UpdateTxn(key, v)).ok());
    };
    drive(db_rec, &rec);
    drive(db_imm, &imm);
    drive(db_def, &def);
    if (t % 5 == 4) {
      db::Value a, b, c;
      ASSERT_TRUE(rec.QueryValue(&a).ok());
      ASSERT_TRUE(imm.QueryValue(&b).ok());
      ASSERT_TRUE(def.QueryValue(&c).ok());
      EXPECT_NEAR(a.AsDouble(), b.AsDouble(), 1e-6) << "txn " << t;
      EXPECT_NEAR(a.AsDouble(), c.AsDouble(), 1e-6) << "txn " << t;
    }
  }
}

TEST(ComputeAggregateFromBase, UsesRangeScanAndPredicate) {
  ViewTestDb db;
  AggregateState out;
  ASSERT_TRUE(
      ComputeAggregateFromBase(db.AggDef(AggregateOp::kCount), &db.tracker_,
                               &out).ok());
  EXPECT_EQ(out.Current()->AsInt64(), ViewTestDb::kFCut);
  // Each scanned tuple was screened at C1.
  EXPECT_GE(db.tracker_.counters().tuple_cpu_ops,
            static_cast<uint64_t>(ViewTestDb::kFCut));
}

}  // namespace
}  // namespace viewmat::view
