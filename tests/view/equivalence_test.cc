#include <gtest/gtest.h>

#include "common/random.h"
#include "testing/view_fixture.h"
#include "view/deferred.h"
#include "view/immediate.h"
#include "view/query_modification.h"

namespace viewmat::view {
namespace {

using testing::ViewTestDb;

/// DESIGN.md property 3 writ large: for any update/query history, all three
/// strategies must return identical answers — they differ only in cost.
/// Each strategy runs against its own database instance fed the same
/// (seeded) history.
struct EquivCase {
  uint64_t seed;
  int transactions;
  int updates_per_txn;
  bool join_view;
};

class StrategyEquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(StrategyEquivalenceTest, AllStrategiesAgreeAtEveryQueryPoint) {
  const EquivCase c = GetParam();

  ViewTestDb db_qm;
  ViewTestDb db_imm;
  ViewTestDb db_def;

  std::unique_ptr<ViewStrategy> qm;
  std::unique_ptr<ImmediateStrategy> imm;
  std::unique_ptr<DeferredStrategy> def;
  if (c.join_view) {
    qm = std::make_unique<QmJoinStrategy>(db_qm.JDef(), &db_qm.tracker_);
    imm = std::make_unique<ImmediateStrategy>(db_imm.JDef(),
                                              &db_imm.tracker_);
    def = std::make_unique<DeferredStrategy>(db_def.JDef(), db_def.AdOptions(),
                                             &db_def.tracker_);
  } else {
    qm = std::make_unique<QmSelectProjectStrategy>(db_qm.SpDef(),
                                                   &db_qm.tracker_);
    imm = std::make_unique<ImmediateStrategy>(db_imm.SpDef(),
                                              &db_imm.tracker_);
    def = std::make_unique<DeferredStrategy>(db_def.SpDef(), db_def.AdOptions(),
                                             &db_def.tracker_);
  }
  ASSERT_TRUE(imm->InitializeFromBase().ok());
  ASSERT_TRUE(def->InitializeFromBase().ok());

  Random rng(c.seed);
  for (int t = 0; t < c.transactions; ++t) {
    // Same random updates applied to all three databases.
    std::vector<std::pair<int64_t, double>> updates;
    for (int i = 0; i < c.updates_per_txn; ++i) {
      updates.emplace_back(rng.UniformInt(0, ViewTestDb::kN - 1),
                           static_cast<double>(rng.UniformInt(0, 1 << 16)));
    }
    auto apply = [&](ViewTestDb& db, ViewStrategy* s) {
      db::Transaction txn;
      for (const auto& [key, v] : updates) {
        txn.Update(db.base_, db.BaseRow(key, db.v_oracle_[key]),
                   db.BaseRow(key, v));
        db.v_oracle_[key] = v;
      }
      ASSERT_TRUE(s->OnTransaction(txn).ok());
    };
    apply(db_qm, qm.get());
    apply(db_imm, imm.get());
    apply(db_def, def.get());

    // Query every few transactions, over a random key range.
    if (t % 3 == 2) {
      const int64_t lo = rng.UniformInt(0, ViewTestDb::kFCut - 1);
      const int64_t hi = rng.UniformInt(lo, ViewTestDb::kFCut + 20);
      const auto a = db_qm.QueryAll(qm.get(), lo, hi);
      const auto b = db_imm.QueryAll(imm.get(), lo, hi);
      const auto d = db_def.QueryAll(def.get(), lo, hi);
      EXPECT_EQ(a, b) << "QM vs immediate diverged at txn " << t;
      EXPECT_EQ(a, d) << "QM vs deferred diverged at txn " << t;
    }
  }

  // Final full-range agreement.
  const auto a = db_qm.QueryAll(qm.get());
  const auto b = db_imm.QueryAll(imm.get());
  const auto d = db_def.QueryAll(def.get());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, d);
  // And all views are consistent with a from-scratch recomputation on the
  // deferred database (whose base has been folded forward by queries).
  ASSERT_TRUE(def->Refresh().ok());
  QmSelectProjectStrategy* qm_sp =
      dynamic_cast<QmSelectProjectStrategy*>(qm.get());
  if (qm_sp != nullptr) {
    QmSelectProjectStrategy recompute(db_def.SpDef(), &db_def.tracker_);
    EXPECT_EQ(db_def.QueryAll(def.get()), db_def.QueryAll(&recompute));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Histories, StrategyEquivalenceTest,
    ::testing::Values(EquivCase{101, 30, 5, false},
                      EquivCase{102, 60, 2, false},
                      EquivCase{103, 15, 20, false},
                      EquivCase{201, 30, 5, true},
                      EquivCase{202, 15, 20, true},
                      EquivCase{203, 60, 1, true}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      return std::string(info.param.join_view ? "join" : "sp") + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace viewmat::view
