#include "view/materialized_view.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace viewmat::view {
namespace {

db::Schema ViewSchema() {
  return db::Schema({db::Field::Int64("dept"), db::Field::Double("salary")});
}

db::Tuple V(int64_t dept, double salary) {
  return db::Tuple({db::Value(dept), db::Value(salary)});
}

class MaterializedViewTest : public ::testing::Test {
 protected:
  MaterializedViewTest()
      : disk_(512, &tracker_),
        pool_(&disk_, 32),
        view_(&pool_, "v", ViewSchema(), 0) {}

  std::map<db::Tuple, int64_t> Contents() {
    std::map<db::Tuple, int64_t> out;
    VIEWMAT_CHECK(view_.ScanAll([&](const db::Tuple& t, int64_t c) {
      out[t] = c;
      return true;
    }).ok());
    return out;
  }

  storage::CostTracker tracker_;
  storage::SimulatedDisk disk_;
  storage::BufferPool pool_;
  MaterializedView view_;
};

TEST_F(MaterializedViewTest, FirstInsertHasCountOne) {
  ASSERT_TRUE(view_.ApplyInsert(V(1, 100)).ok());
  const auto contents = Contents();
  ASSERT_EQ(contents.size(), 1u);
  EXPECT_EQ(contents.at(V(1, 100)), 1);
  EXPECT_EQ(view_.distinct_count(), 1u);
  EXPECT_EQ(view_.total_count(), 1);
}

TEST_F(MaterializedViewTest, DuplicateInsertIncrementsCount) {
  // The §2.1 duplicate-count rule: projection can map several sources to
  // the same view value.
  ASSERT_TRUE(view_.ApplyInsert(V(1, 100)).ok());
  ASSERT_TRUE(view_.ApplyInsert(V(1, 100)).ok());
  ASSERT_TRUE(view_.ApplyInsert(V(1, 100)).ok());
  const auto contents = Contents();
  ASSERT_EQ(contents.size(), 1u);
  EXPECT_EQ(contents.at(V(1, 100)), 3);
  EXPECT_EQ(view_.distinct_count(), 1u);  // stored once
  EXPECT_EQ(view_.total_count(), 3);
}

TEST_F(MaterializedViewTest, DeleteDecrementsUntilRemoval) {
  ASSERT_TRUE(view_.ApplyInsert(V(1, 100)).ok());
  ASSERT_TRUE(view_.ApplyInsert(V(1, 100)).ok());
  ASSERT_TRUE(view_.ApplyDelete(V(1, 100)).ok());
  EXPECT_EQ(Contents().at(V(1, 100)), 1);
  ASSERT_TRUE(view_.ApplyDelete(V(1, 100)).ok());
  EXPECT_TRUE(Contents().empty());
  EXPECT_EQ(view_.total_count(), 0);
}

TEST_F(MaterializedViewTest, DeletingAbsentValueIsCorruption) {
  // Exactly the failure mode Appendix A's incorrect expansion triggers.
  EXPECT_EQ(view_.ApplyDelete(V(9, 9)).code(), StatusCode::kInternal);
}

TEST_F(MaterializedViewTest, SameKeyDifferentValuesCoexist) {
  ASSERT_TRUE(view_.ApplyInsert(V(1, 100)).ok());
  ASSERT_TRUE(view_.ApplyInsert(V(1, 200)).ok());
  const auto contents = Contents();
  EXPECT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents.at(V(1, 100)), 1);
  EXPECT_EQ(contents.at(V(1, 200)), 1);
}

TEST_F(MaterializedViewTest, QueryRangeFiltersOnViewKey) {
  for (int64_t dept = 0; dept < 20; ++dept) {
    ASSERT_TRUE(view_.ApplyInsert(V(dept, dept * 1.5)).ok());
  }
  std::vector<int64_t> seen;
  ASSERT_TRUE(view_.Query(5, 8, [&](const db::Tuple& t, int64_t) {
    seen.push_back(t.at(0).AsInt64());
    return true;
  }).ok());
  EXPECT_EQ(seen, (std::vector<int64_t>{5, 6, 7, 8}));
}

TEST_F(MaterializedViewTest, ApplyDeltaDeletesBeforeInserts) {
  ASSERT_TRUE(view_.ApplyInsert(V(1, 100)).ok());
  // Replace (1,100) with (1,101) atomically.
  ASSERT_TRUE(view_.ApplyDelta({V(1, 101)}, {V(1, 100)}).ok());
  const auto contents = Contents();
  ASSERT_EQ(contents.size(), 1u);
  EXPECT_EQ(contents.count(V(1, 101)), 1u);
}

TEST_F(MaterializedViewTest, ClearEmptiesView) {
  for (int64_t dept = 0; dept < 10; ++dept) {
    ASSERT_TRUE(view_.ApplyInsert(V(dept, 1)).ok());
  }
  ASSERT_TRUE(view_.Clear().ok());
  EXPECT_TRUE(Contents().empty());
  EXPECT_EQ(view_.total_count(), 0);
  ASSERT_TRUE(view_.ApplyInsert(V(1, 1)).ok());  // usable after clear
  EXPECT_EQ(view_.total_count(), 1);
}

TEST_F(MaterializedViewTest, RandomChurnMatchesCountedOracle) {
  Random rng(33);
  std::map<db::Tuple, int64_t> oracle;
  for (int step = 0; step < 2000; ++step) {
    const int64_t dept = rng.UniformInt(0, 8);
    const double salary = static_cast<double>(rng.UniformInt(0, 3));
    const db::Tuple value = V(dept, salary);
    if (oracle[value] == 0 || rng.Bernoulli(0.55)) {
      ASSERT_TRUE(view_.ApplyInsert(value).ok());
      ++oracle[value];
    } else {
      ASSERT_TRUE(view_.ApplyDelete(value).ok());
      if (--oracle[value] == 0) oracle.erase(value);
    }
    if (oracle[value] == 0) oracle.erase(value);
  }
  EXPECT_EQ(Contents(), oracle);
}

}  // namespace
}  // namespace viewmat::view
