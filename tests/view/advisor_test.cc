#include "view/advisor.h"

#include <gtest/gtest.h>

#include "costmodel/model1.h"
#include "costmodel/model2.h"
#include "costmodel/model3.h"

namespace viewmat::view {
namespace {

using costmodel::Params;
using costmodel::Strategy;

TEST(Advisor, Model1DefaultsRecommendClustered) {
  const Advice advice = Advise(ViewModel::kSelectProject, Params());
  EXPECT_EQ(advice.best(), Strategy::kQmClustered);
  EXPECT_EQ(advice.ranked.size(), 5u);
}

TEST(Advisor, RankingIsSortedAscending) {
  const Advice advice = Advise(ViewModel::kSelectProject, Params());
  for (size_t i = 1; i < advice.ranked.size(); ++i) {
    EXPECT_LE(advice.ranked[i - 1].cost_ms, advice.ranked[i].cost_ms);
  }
}

TEST(Advisor, CostsMatchModelFunctions) {
  const Params p;
  const Advice advice = Advise(ViewModel::kSelectProject, p);
  for (const auto& entry : advice.ranked) {
    EXPECT_DOUBLE_EQ(entry.cost_ms, *costmodel::Model1Cost(entry.strategy, p));
  }
}

TEST(Advisor, Model1LowPRecommendsMaterialization) {
  const Advice advice = Advise(ViewModel::kSelectProject,
                               Params().WithUpdateProbability(0.02));
  EXPECT_TRUE(advice.best() == Strategy::kImmediate ||
              advice.best() == Strategy::kDeferred);
}

TEST(Advisor, Model2DefaultsRecommendMaterialization) {
  const Advice advice = Advise(ViewModel::kJoin, Params());
  EXPECT_TRUE(advice.best() == Strategy::kImmediate ||
              advice.best() == Strategy::kDeferred);
  EXPECT_EQ(advice.ranked.size(), 3u);
}

TEST(Advisor, Model2EmpDeptCaseRecommendsQueryModification) {
  Params p;
  p.f = 1.0;
  p.l = 1.0;
  p.f_v = 1.0 / p.N;
  const Advice advice =
      Advise(ViewModel::kJoin, p.WithUpdateProbability(0.2));
  EXPECT_EQ(advice.best(), Strategy::kQmLoopJoin);
}

TEST(Advisor, Model3AlmostAlwaysRecommendsMaintenance) {
  for (const double P : {0.1, 0.5, 0.9}) {
    const Advice advice =
        Advise(ViewModel::kAggregate, Params().WithUpdateProbability(P));
    EXPECT_TRUE(advice.best() == Strategy::kImmediate ||
                advice.best() == Strategy::kDeferred)
        << "P=" << P;
  }
}

TEST(Advisor, ReportMentionsWinnerAndCosts) {
  const Advice advice = Advise(ViewModel::kSelectProject, Params());
  const std::string report = AdviceReport(advice);
  EXPECT_NE(report.find("recommended"), std::string::npos);
  EXPECT_NE(report.find("clustered"), std::string::npos);
  EXPECT_NE(report.find("deferred"), std::string::npos);
}

}  // namespace
}  // namespace viewmat::view
