#include <gtest/gtest.h>

#include <map>

#include "testing/view_fixture.h"
#include "view/deferred.h"

namespace viewmat::view {
namespace {

using storage::CrashPoint;
using testing::ViewTestDb;

/// The Model 1 view a fresh strategy must answer: σ(k1 < 60) -> (k1, v),
/// with v taken from the fixture's oracle.
std::map<db::Tuple, int64_t> ExpectedSp(const ViewTestDb& db) {
  std::map<db::Tuple, int64_t> out;
  for (const auto& [k, v] : db.v_oracle_) {
    if (k < ViewTestDb::kFCut) {
      out[db::Tuple({db::Value(k), db::Value(v)})] = 1;
    }
  }
  return out;
}

/// The Model 2 view: σ(k1 < 60)(R ⋈ R2) -> (k1, v, key, w).
std::map<db::Tuple, int64_t> ExpectedJoin(const ViewTestDb& db) {
  std::map<db::Tuple, int64_t> out;
  for (const auto& [k, v] : db.v_oracle_) {
    if (k < ViewTestDb::kFCut) {
      const int64_t r2key = k % ViewTestDb::kR2N;
      out[db::Tuple({db::Value(k), db::Value(v), db::Value(r2key),
                     db::Value(r2key * 100.0)})] = 1;
    }
  }
  return out;
}

/// Applies `count` acknowledged single-tuple updates spread over the key
/// space (some inside the view predicate, some outside).
void ApplyTxns(ViewTestDb* db, DeferredStrategy* def, int count,
               double bias = 500.0) {
  for (int i = 0; i < count; ++i) {
    const int64_t key = (i * 29) % ViewTestDb::kN;
    const db::Transaction txn = db->UpdateTxn(key, bias + i);
    ASSERT_TRUE(def->OnTransaction(txn).ok());
  }
}

class DeferredRecoveryTest : public ::testing::Test {
 protected:
  DeferredRecoveryTest() : def_(db_.SpDef(), db_.WalAdOptions(), &db_.tracker_) {
    VIEWMAT_CHECK(def_.InitializeFromBase().ok());
  }

  ViewTestDb db_;
  DeferredStrategy def_;
};

TEST_F(DeferredRecoveryTest, CrashSafeModeIsOptIn) {
  EXPECT_TRUE(def_.crash_safe());
  DeferredStrategy plain(db_.SpDef(), db_.AdOptions(), &db_.tracker_);
  EXPECT_FALSE(plain.crash_safe());
  EXPECT_EQ(plain.Recover().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DeferredRecoveryTest, CleanRefreshLeavesNoInFlightEpoch) {
  ApplyTxns(&db_, &def_, 10);
  EXPECT_GT(def_.pending_tuples(), 0u);
  ASSERT_TRUE(def_.Refresh().ok());
  EXPECT_EQ(def_.phase(), RecoveryPhase::kNone);
  EXPECT_FALSE(def_.stale());
  EXPECT_EQ(def_.pending_tuples(), 0u);
  EXPECT_EQ(def_.refresh_epoch(), 1u);
  EXPECT_EQ(db_.QueryAll(&def_), ExpectedSp(db_));
}

TEST_F(DeferredRecoveryTest, RecoverRollsForwardFromEveryRefreshCrashPoint) {
  const CrashPoint kRefreshPoints[] = {
      CrashPoint::kBeforeViewPatch, CrashPoint::kMidViewPatch,
      CrashPoint::kAfterViewPatch,  CrashPoint::kBeforeFold,
      CrashPoint::kMidFold,         CrashPoint::kBeforeAdReset,
      CrashPoint::kMidAdReset,
  };
  for (const CrashPoint cp : kRefreshPoints) {
    SCOPED_TRACE(storage::CrashPointName(cp));
    ViewTestDb db;
    DeferredStrategy def(db.SpDef(), db.WalAdOptions(), &db.tracker_);
    ASSERT_TRUE(def.InitializeFromBase().ok());
    ApplyTxns(&db, &def, 8);

    db.disk_.ScriptCrash(cp);
    EXPECT_FALSE(def.Refresh().ok());
    EXPECT_TRUE(db.disk_.crashed());

    db.disk_.Restart();
    ASSERT_TRUE(def.Recover().ok());
    EXPECT_EQ(def.phase(), RecoveryPhase::kNone);
    EXPECT_EQ(def.pending_tuples(), 0u);
    EXPECT_EQ(db.QueryAll(&def), ExpectedSp(db));
  }
}

TEST_F(DeferredRecoveryTest, JoinViewRollsForwardToo) {
  ViewTestDb db;
  DeferredStrategy def(db.JDef(), db.WalAdOptions(), &db.tracker_);
  ASSERT_TRUE(def.InitializeFromBase().ok());
  ApplyTxns(&db, &def, 6);

  db.disk_.ScriptCrash(CrashPoint::kMidViewPatch);
  EXPECT_FALSE(def.Refresh().ok());
  db.disk_.Restart();
  ASSERT_TRUE(def.Recover().ok());
  EXPECT_EQ(db.QueryAll(&def), ExpectedJoin(db));
}

TEST_F(DeferredRecoveryTest, QueryAutoRecoversAfterRestart) {
  ApplyTxns(&db_, &def_, 8);
  db_.disk_.ScriptCrash(CrashPoint::kBeforeFold);
  EXPECT_FALSE(def_.Refresh().ok());
  db_.disk_.Restart();
  // No explicit Recover(): Query's bounded-retry loop drives it.
  EXPECT_EQ(db_.QueryAll(&def_), ExpectedSp(db_));
  EXPECT_EQ(def_.phase(), RecoveryPhase::kNone);
  EXPECT_EQ(def_.pending_tuples(), 0u);
  EXPECT_GE(def_.recoveries(), 1u);
}

TEST_F(DeferredRecoveryTest, CrashDuringTransactionDiscardsUncommittedIntent) {
  ApplyTxns(&db_, &def_, 4);
  // The intent lands in the WAL, then the device dies before the hash apply
  // — the commit record never follows.
  const db::Transaction txn = db_.UpdateTxn(5, 9999.0);
  db_.disk_.ScriptCrash(CrashPoint::kAfterWalAppend);
  EXPECT_FALSE(def_.OnTransaction(txn).ok());
  db_.v_oracle_[5] = 5.0;  // unacknowledged: the oracle must not advance

  db_.disk_.Restart();
  EXPECT_EQ(db_.QueryAll(&def_), ExpectedSp(db_));
  EXPECT_EQ(def_.pending_tuples(), 0u);
}

TEST_F(DeferredRecoveryTest, CrashBeforeWalAppendIsACleanReject) {
  ApplyTxns(&db_, &def_, 4);
  const db::Transaction txn = db_.UpdateTxn(6, 8888.0);
  db_.disk_.ScriptCrash(CrashPoint::kBeforeWalAppend);
  EXPECT_FALSE(def_.OnTransaction(txn).ok());
  db_.v_oracle_[6] = 6.0;
  db_.disk_.Restart();
  EXPECT_EQ(db_.QueryAll(&def_), ExpectedSp(db_));
}

TEST_F(DeferredRecoveryTest, TransactionsRejectedWhileFoldCannotRollForward) {
  ApplyTxns(&db_, &def_, 8);
  db_.disk_.ScriptCrash(CrashPoint::kMidFold);
  EXPECT_FALSE(def_.Refresh().ok());
  EXPECT_EQ(def_.phase(), RecoveryPhase::kNeedFold);

  // Device still down: mixing new intents into the half-folded epoch is
  // unsound, and roll-forward is impossible, so the transaction must be
  // rejected loudly.
  const db::Transaction txn = db_.UpdateTxn(7, 7777.0);
  const Status st = def_.OnTransaction(txn);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  db_.v_oracle_[7] = 7.0;

  // After a restart the same strategy accepts transactions again (recovery
  // is driven from inside OnTransaction).
  db_.disk_.Restart();
  ASSERT_TRUE(def_.OnTransaction(db_.UpdateTxn(8, 4321.0)).ok());
  EXPECT_EQ(db_.QueryAll(&def_), ExpectedSp(db_));
}

TEST_F(DeferredRecoveryTest, DegradedQueryFallsBackToQueryModification) {
  ApplyTxns(&db_, &def_, 8);
  db_.disk_.ScriptCrash(CrashPoint::kMidViewPatch);
  EXPECT_FALSE(def_.Refresh().ok());
  EXPECT_EQ(def_.phase(), RecoveryPhase::kNeedViewRebuild);
  db_.disk_.Restart();

  // Every write fails: the view copy cannot be rebuilt (the epoch re-begin
  // marker cannot even be logged). The base is untouched by the interrupted
  // epoch, so QM over base ∪ AD still answers exactly.
  db_.disk_.set_write_fault_rate(1.0);
  EXPECT_EQ(db_.QueryAll(&def_), ExpectedSp(db_));
  EXPECT_GE(def_.degraded_queries(), 1u);
  EXPECT_NE(def_.phase(), RecoveryPhase::kNone) << "refresh cannot finish";

  // Once the device heals, the next query rolls the epoch forward and the
  // copy is served again.
  db_.disk_.ClearFaults();
  EXPECT_EQ(db_.QueryAll(&def_), ExpectedSp(db_));
  EXPECT_EQ(def_.phase(), RecoveryPhase::kNone);
  EXPECT_EQ(def_.pending_tuples(), 0u);
}

TEST_F(DeferredRecoveryTest, DegradedQueryServesPatchedViewAfterFoldStart) {
  ApplyTxns(&db_, &def_, 4);
  db_.disk_.ScriptCrash(CrashPoint::kBeforeFold);
  EXPECT_FALSE(def_.Refresh().ok());
  EXPECT_EQ(def_.phase(), RecoveryPhase::kNeedFold);
  db_.disk_.Restart();

  // Writes are down, so the fold cannot commit — but the view copy was
  // fully patched before the crash, and QM would double-count whatever a
  // partial fold landed. The copy is the safe (and exact) degraded read.
  db_.disk_.set_write_fault_rate(1.0);
  EXPECT_EQ(db_.QueryAll(&def_), ExpectedSp(db_));
  EXPECT_GE(def_.degraded_queries(), 1u);

  db_.disk_.ClearFaults();
  EXPECT_EQ(db_.QueryAll(&def_), ExpectedSp(db_));
  EXPECT_EQ(def_.phase(), RecoveryPhase::kNone);
}

TEST_F(DeferredRecoveryTest, RecoverIsIdempotent) {
  ApplyTxns(&db_, &def_, 8);
  db_.disk_.ScriptCrash(CrashPoint::kAfterViewPatch);
  EXPECT_FALSE(def_.Refresh().ok());
  db_.disk_.Restart();
  ASSERT_TRUE(def_.Recover().ok());
  ASSERT_TRUE(def_.Recover().ok());
  EXPECT_EQ(def_.phase(), RecoveryPhase::kNone);
  EXPECT_EQ(db_.QueryAll(&def_), ExpectedSp(db_));
}

TEST_F(DeferredRecoveryTest, RepeatedCrashesAcrossEpochsStayConsistent) {
  for (int round = 0; round < 4; ++round) {
    ApplyTxns(&db_, &def_, 6, 1000.0 * (round + 1));
    const CrashPoint cp = (round % 2 == 0) ? CrashPoint::kMidViewPatch
                                           : CrashPoint::kMidFold;
    db_.disk_.ScriptCrash(cp);
    EXPECT_FALSE(def_.Refresh().ok());
    db_.disk_.Restart();
    EXPECT_EQ(db_.QueryAll(&def_), ExpectedSp(db_));
    EXPECT_EQ(def_.phase(), RecoveryPhase::kNone);
  }
  EXPECT_GE(def_.recoveries(), 4u);
}

}  // namespace
}  // namespace viewmat::view
