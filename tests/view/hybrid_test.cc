#include "view/hybrid.h"

#include <gtest/gtest.h>

#include "testing/view_fixture.h"
#include "view/query_modification.h"

namespace viewmat::view {
namespace {

using testing::ViewTestDb;

std::map<db::Tuple, int64_t> HQuery(HybridStrategy* s, int64_t lo,
                                    int64_t hi) {
  std::map<db::Tuple, int64_t> out;
  VIEWMAT_CHECK(s->Query(lo, hi, [&](const db::Tuple& t, int64_t c) {
    out[t] += c;
    return true;
  }).ok());
  return out;
}

std::map<db::Tuple, int64_t> OracleAnswer(const ViewTestDb& db, int64_t lo,
                                          int64_t hi) {
  std::map<db::Tuple, int64_t> out;
  for (const auto& [key, v] : db.v_oracle_) {
    if (key < ViewTestDb::kFCut && key >= lo && key <= hi) {
      ++out[db::Tuple({db::Value(key), db::Value(v)})];
    }
  }
  return out;
}

TEST(Hybrid, AnswersMatchOracleOnEitherPath) {
  ViewTestDb db;
  HybridStrategy hybrid(db.SpDef(), db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(hybrid.InitializeFromBase().ok());
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(hybrid.OnTransaction(db.UpdateTxn(i * 3, 1000.0 + i)).ok());
  }
  // Small query (QM path, through the unfolded differential) and big query:
  // both must see all committed updates.
  EXPECT_EQ(HQuery(&hybrid, 5, 6), OracleAnswer(db, 5, 6));
  EXPECT_EQ(HQuery(&hybrid, 0, ViewTestDb::kFCut + 50),
            OracleAnswer(db, 0, ViewTestDb::kFCut + 50));
}

TEST(Hybrid, SmallQueriesPreferQmWithPendingWork) {
  ViewTestDb db;
  HybridStrategy hybrid(db.SpDef(), db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(hybrid.InitializeFromBase().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(hybrid.OnTransaction(db.UpdateTxn(i, 777.0 + i)).ok());
  }
  const HybridStrategy::Estimate est = hybrid.EstimateQuery(5, 5);
  EXPECT_LT(est.qm_ms, est.view_ms);
  (void)HQuery(&hybrid, 5, 5);
  EXPECT_EQ(hybrid.qm_choices(), 1u);
  EXPECT_EQ(hybrid.refresh_count(), 0u);  // the view kept deferring
}

TEST(Hybrid, LargeQueriesPreferTheMaterializedView) {
  ViewTestDb db;
  HybridStrategy hybrid(db.SpDef(), db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(hybrid.InitializeFromBase().ok());
  // No pending work at all: the smaller view wins for a full scan.
  const HybridStrategy::Estimate est =
      hybrid.EstimateQuery(0, ViewTestDb::kFCut - 1);
  EXPECT_LE(est.view_ms, est.qm_ms);
  (void)HQuery(&hybrid, 0, ViewTestDb::kFCut - 1);
  EXPECT_EQ(hybrid.view_choices(), 1u);
}

TEST(Hybrid, QmPathSeesUnfoldedUpdates) {
  // Correctness of QM-through-the-differential: updates not yet folded
  // into the base must still be visible.
  ViewTestDb db;
  HybridStrategy hybrid(db.SpDef(), db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(hybrid.InitializeFromBase().ok());
  ASSERT_TRUE(hybrid.OnTransaction(db.UpdateTxn(5, 424242.0)).ok());
  const auto result = HQuery(&hybrid, 5, 5);
  EXPECT_EQ(hybrid.qm_choices(), 1u);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.begin()->first.at(1).AsDouble(), 424242.0);
  // And the base really is still stale (fold deferred further).
  db::Tuple base_row;
  ASSERT_TRUE(db.base_->FindByKey(5, &base_row).ok());
  EXPECT_DOUBLE_EQ(base_row.at(2).AsDouble(), 5.0);
}

TEST(Hybrid, MixedWorkloadUsesBothPaths) {
  ViewTestDb db;
  HybridStrategy hybrid(db.SpDef(), db.AdOptions(), &db.tracker_);
  hybrid.set_max_pending(6);  // small backstop so the differential drains
  ASSERT_TRUE(hybrid.InitializeFromBase().ok());
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(hybrid.OnTransaction(db.UpdateTxn(round, 555.0 + round)).ok());
    (void)HQuery(&hybrid, round, round);                    // tiny
    if (round % 5 == 4) (void)HQuery(&hybrid, 0, 1 << 20);  // huge
  }
  EXPECT_GT(hybrid.qm_choices(), 0u);
  EXPECT_GT(hybrid.view_choices(), 0u);
  // The tiny queries kept choosing QM, so the backstop had to fire.
  EXPECT_GT(hybrid.forced_refreshes(), 0u);
  // Everything stays correct throughout.
  EXPECT_EQ(HQuery(&hybrid, 0, 1 << 20), OracleAnswer(db, 0, 1 << 20));
}

TEST(Hybrid, BackstopBoundsTheDifferential) {
  ViewTestDb db;
  HybridStrategy hybrid(db.SpDef(), db.AdOptions(), &db.tracker_);
  hybrid.set_max_pending(10);
  ASSERT_TRUE(hybrid.InitializeFromBase().ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(hybrid.OnTransaction(db.UpdateTxn(i, 900.0 + i)).ok());
    (void)HQuery(&hybrid, 3, 3);  // QM-favoring forever
  }
  // Refreshes fired and the AD never grew far past the cap.
  EXPECT_GT(hybrid.forced_refreshes(), 1u);
}

}  // namespace
}  // namespace viewmat::view
