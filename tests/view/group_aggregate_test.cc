#include "view/group_aggregate.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "testing/view_fixture.h"

namespace viewmat::view {
namespace {

using testing::ViewTestDb;

/// sum(v) where k1 < 60 group by k2 (k2 = k1 % 20).
GroupAggregateDef SumByK2(ViewTestDb* db) {
  GroupAggregateDef def;
  def.base = db->base_;
  def.predicate =
      db::Predicate::Compare(0, db::CompareOp::kLt,
                             db::Value(ViewTestDb::kFCut));
  def.group_field = 1;
  def.op = AggregateOp::kSum;
  def.agg_field = 2;
  return def;
}

std::map<int64_t, double> OracleSums(const ViewTestDb& db) {
  std::map<int64_t, double> out;
  for (const auto& [key, v] : db.v_oracle_) {
    if (key < ViewTestDb::kFCut) out[key % ViewTestDb::kR2N] += v;
  }
  return out;
}

std::map<int64_t, double> AllGroups(ImmediateGroupAggregateStrategy* s) {
  std::map<int64_t, double> out;
  VIEWMAT_CHECK(s->QueryAll([&](int64_t g, const db::Value& v) {
    out[g] = v.AsDouble();
    return true;
  }).ok());
  return out;
}

TEST(GroupAggregate, ValidateRejectsBadDefs) {
  ViewTestDb db;
  GroupAggregateDef def = SumByK2(&db);
  def.group_field = 2;  // double column: not groupable
  EXPECT_EQ(def.Validate().code(), StatusCode::kInvalidArgument);
  def = SumByK2(&db);
  def.base = nullptr;
  EXPECT_EQ(def.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(GroupAggregate, InitializeMatchesOracle) {
  ViewTestDb db;
  ImmediateGroupAggregateStrategy strategy(SumByK2(&db), &db.tracker_);
  ASSERT_TRUE(strategy.InitializeFromBase().ok());
  const auto groups = AllGroups(&strategy);
  const auto oracle = OracleSums(db);
  ASSERT_EQ(groups.size(), oracle.size());
  for (const auto& [g, sum] : oracle) {
    EXPECT_NEAR(groups.at(g), sum, 1e-9) << "group " << g;
  }
}

TEST(GroupAggregate, UpdatesMoveTheRightGroup) {
  ViewTestDb db;
  ImmediateGroupAggregateStrategy strategy(SumByK2(&db), &db.tracker_);
  ASSERT_TRUE(strategy.InitializeFromBase().ok());
  // Key 5 is in group 5 (5 % 20): raise its v by 95.
  ASSERT_TRUE(strategy.OnTransaction(db.UpdateTxn(5, 100.0)).ok());
  db::Value v;
  ASSERT_TRUE(strategy.QueryGroup(5, &v).ok());
  EXPECT_NEAR(v.AsDouble(), OracleSums(db).at(5), 1e-9);
  // Other groups untouched.
  ASSERT_TRUE(strategy.QueryGroup(6, &v).ok());
  EXPECT_NEAR(v.AsDouble(), OracleSums(db).at(6), 1e-9);
}

TEST(GroupAggregate, EmptyGroupIsNotFound) {
  ViewTestDb db;
  ImmediateGroupAggregateStrategy strategy(SumByK2(&db), &db.tracker_);
  ASSERT_TRUE(strategy.InitializeFromBase().ok());
  db::Value v;
  EXPECT_EQ(strategy.QueryGroup(999, &v).code(), StatusCode::kNotFound);
}

TEST(GroupAggregate, MinRecomputesOnlyTheAffectedGroup) {
  ViewTestDb db;
  GroupAggregateDef def = SumByK2(&db);
  def.op = AggregateOp::kMin;
  ImmediateGroupAggregateStrategy strategy(def, &db.tracker_);
  ASSERT_TRUE(strategy.InitializeFromBase().ok());
  // Group 5 holds keys {5, 25, 45} with v = {5, 25, 45}; min = 5. Raising
  // key 5's v removes the extremum -> that group recomputes.
  db::Value v;
  ASSERT_TRUE(strategy.QueryGroup(5, &v).ok());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 5.0);
  ASSERT_TRUE(strategy.OnTransaction(db.UpdateTxn(5, 500.0)).ok());
  EXPECT_EQ(strategy.group_recomputes(), 1u);
  ASSERT_TRUE(strategy.QueryGroup(5, &v).ok());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 25.0);
}

TEST(GroupAggregate, AgreesWithRecomputeUnderChurn) {
  ViewTestDb db_imm;
  ViewTestDb db_rec;
  ImmediateGroupAggregateStrategy imm(SumByK2(&db_imm), &db_imm.tracker_);
  RecomputeGroupAggregateStrategy rec(SumByK2(&db_rec), &db_rec.tracker_);
  ASSERT_TRUE(imm.InitializeFromBase().ok());
  Random rng(88);
  for (int t = 0; t < 50; ++t) {
    const int64_t key = rng.UniformInt(0, ViewTestDb::kN - 1);
    const double v = static_cast<double>(rng.UniformInt(0, 1000));
    ASSERT_TRUE(imm.OnTransaction(db_imm.UpdateTxn(key, v)).ok());
    ASSERT_TRUE(rec.OnTransaction(db_rec.UpdateTxn(key, v)).ok());
    if (t % 10 == 9) {
      std::map<int64_t, double> a = AllGroups(&imm);
      std::map<int64_t, double> b;
      ASSERT_TRUE(rec.QueryAll([&](int64_t g, const db::Value& val) {
        b[g] = val.AsDouble();
        return true;
      }).ok());
      ASSERT_EQ(a.size(), b.size()) << "txn " << t;
      for (const auto& [g, sum] : b) {
        EXPECT_NEAR(a.at(g), sum, 1e-6) << "group " << g << " txn " << t;
      }
    }
  }
}

TEST(GroupAggregate, DeferredMatchesImmediateAcrossChurn) {
  ViewTestDb db_imm;
  ViewTestDb db_def;
  ImmediateGroupAggregateStrategy imm(SumByK2(&db_imm), &db_imm.tracker_);
  DeferredGroupAggregateStrategy def(SumByK2(&db_def), db_def.AdOptions(),
                                     &db_def.tracker_);
  ASSERT_TRUE(imm.InitializeFromBase().ok());
  ASSERT_TRUE(def.InitializeFromBase().ok());
  Random rng(91);
  for (int t = 0; t < 40; ++t) {
    const int64_t key = rng.UniformInt(0, ViewTestDb::kN - 1);
    const double v = static_cast<double>(rng.UniformInt(0, 1000));
    ASSERT_TRUE(imm.OnTransaction(db_imm.UpdateTxn(key, v)).ok());
    ASSERT_TRUE(def.OnTransaction(db_def.UpdateTxn(key, v)).ok());
  }
  EXPECT_GT(def.pending_tuples(), 0u);
  std::map<int64_t, double> a = AllGroups(&imm);
  std::map<int64_t, double> b;
  ASSERT_TRUE(def.QueryAll([&](int64_t g, const db::Value& val) {
    b[g] = val.AsDouble();
    return true;
  }).ok());
  EXPECT_EQ(def.refresh_count(), 1u);  // one batched refresh at query time
  EXPECT_EQ(def.pending_tuples(), 0u);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [g, sum] : a) {
    EXPECT_NEAR(b.at(g), sum, 1e-6) << "group " << g;
  }
}

TEST(GroupAggregate, DeferredMinHandlesExtremumLossAtFold) {
  ViewTestDb db;
  GroupAggregateDef def_spec = SumByK2(&db);
  def_spec.op = AggregateOp::kMin;
  DeferredGroupAggregateStrategy def(def_spec, db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(def.InitializeFromBase().ok());
  // Raise group 5's minimum (key 5, v = 5): the fold must recompute the
  // group and find the next minimum (key 25, v = 25).
  ASSERT_TRUE(def.OnTransaction(db.UpdateTxn(5, 999.0)).ok());
  db::Value v;
  ASSERT_TRUE(def.QueryGroup(5, &v).ok());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 25.0);
}

TEST(GroupAggregate, CountAndAvgOps) {
  ViewTestDb db;
  GroupAggregateDef def = SumByK2(&db);
  def.op = AggregateOp::kCount;
  ImmediateGroupAggregateStrategy count(def, &db.tracker_);
  ASSERT_TRUE(count.InitializeFromBase().ok());
  db::Value v;
  ASSERT_TRUE(count.QueryGroup(0, &v).ok());
  EXPECT_EQ(v.AsInt64(), 3);  // keys 0, 20, 40 — all < 60

  ViewTestDb db2;
  GroupAggregateDef avg_def = SumByK2(&db2);
  avg_def.op = AggregateOp::kAvg;
  ImmediateGroupAggregateStrategy avg(avg_def, &db2.tracker_);
  ASSERT_TRUE(avg.InitializeFromBase().ok());
  ASSERT_TRUE(avg.QueryGroup(0, &v).ok());
  EXPECT_NEAR(v.AsDouble(), (0.0 + 20.0 + 40.0) / 3.0, 1e-9);
}

}  // namespace
}  // namespace viewmat::view
