#include "view/screening_modes.h"

#include <gtest/gtest.h>

#include "testing/view_fixture.h"

namespace viewmat::view {
namespace {

using testing::ViewTestDb;

db::Tuple Row(int64_t k1, int64_t k2, double v) {
  return db::Tuple({db::Value(k1), db::Value(k2), db::Value(v)});
}

class ScreeningModesTest : public ::testing::Test {
 protected:
  ScreeningModesTest() : def_(db_.SpDef()) {}

  UpdateScreen MakeScreen(ScreeningMode mode) {
    return UpdateScreen(mode, def_.predicate, def_.base->key_field(),
                        FieldsRead(def_), &db_.tracker_);
  }

  ViewTestDb db_;
  SelectProjectDef def_;
};

TEST_F(ScreeningModesTest, FieldsReadCoversPredicateAndProjection) {
  const std::set<size_t> fields = FieldsRead(def_);
  EXPECT_TRUE(fields.contains(0));  // k1: predicate + projection + key
  EXPECT_TRUE(fields.contains(2));  // v: projected
  EXPECT_FALSE(fields.contains(1)); // k2: untouched by this view
}

TEST_F(ScreeningModesTest, FieldsReadForJoinIncludesJoinField) {
  const std::set<size_t> fields = FieldsRead(db_.JDef());
  EXPECT_TRUE(fields.contains(1));  // the join attribute
  EXPECT_TRUE(fields.contains(0));  // C_f field + projection
}

TEST_F(ScreeningModesTest, FieldsWrittenDetectsChangedFieldOfUpdate) {
  db::NetChange nc;
  nc.AddDelete(Row(5, 1, 10.0));
  nc.AddInsert(Row(5, 1, 99.0));  // only v changed
  const std::set<size_t> written = FieldsWritten(nc);
  EXPECT_EQ(written, (std::set<size_t>{2}));
}

TEST_F(ScreeningModesTest, FieldsWrittenWholeTupleForPureInsertDelete) {
  db::NetChange ins;
  ins.AddInsert(Row(5, 1, 10.0));
  EXPECT_EQ(FieldsWritten(ins).size(), 3u);
  db::NetChange del;
  del.AddDelete(Row(5, 1, 10.0));
  EXPECT_EQ(FieldsWritten(del).size(), 3u);
}

TEST_F(ScreeningModesTest, RuleIndexOnlyPaysForIntervalHits) {
  UpdateScreen screen = MakeScreen(ScreeningMode::kRuleIndex);
  const auto before = db_.tracker_.counters().screen_tests;
  EXPECT_FALSE(screen.Passes(Row(150, 0, 1.0)));  // outside [*, 59]
  EXPECT_EQ(db_.tracker_.counters().screen_tests, before);  // free
  EXPECT_TRUE(screen.Passes(Row(10, 0, 1.0)));
  EXPECT_EQ(db_.tracker_.counters().screen_tests, before + 1);
}

TEST_F(ScreeningModesTest, SubstituteAllPaysForEveryTuple) {
  UpdateScreen screen = MakeScreen(ScreeningMode::kSubstituteAll);
  const auto before = db_.tracker_.counters().screen_tests;
  EXPECT_FALSE(screen.Passes(Row(150, 0, 1.0)));  // still costs C1
  EXPECT_TRUE(screen.Passes(Row(10, 0, 1.0)));
  EXPECT_EQ(db_.tracker_.counters().screen_tests, before + 2);
}

TEST_F(ScreeningModesTest, RiuIgnoresCommandsWritingUnreadFields) {
  UpdateScreen screen = MakeScreen(ScreeningMode::kRiu);
  // An update that only rewrites k2 — a field the view never reads.
  db::NetChange nc;
  nc.AddDelete(Row(5, 1, 10.0));
  nc.AddInsert(Row(5, 2, 10.0));
  EXPECT_TRUE(screen.TransactionIsIgnorable(nc));
  EXPECT_EQ(screen.riu_transactions(), 1u);
  EXPECT_EQ(db_.tracker_.counters().screen_tests, 0u);  // no per-tuple cost
}

TEST_F(ScreeningModesTest, RiuFallsBackToSubstitutionWhenViewFieldWritten) {
  UpdateScreen screen = MakeScreen(ScreeningMode::kRiu);
  db::NetChange nc;
  nc.AddDelete(Row(5, 1, 10.0));
  nc.AddInsert(Row(5, 1, 99.0));  // v is read by the view
  EXPECT_FALSE(screen.TransactionIsIgnorable(nc));
  // Run-time phase substitutes every tuple (no t-lock shortcut in Bune79).
  EXPECT_TRUE(screen.Passes(nc.deletes()[0]));
  EXPECT_TRUE(screen.Passes(nc.inserts()[0]));
  EXPECT_EQ(db_.tracker_.counters().screen_tests, 2u);
}

TEST_F(ScreeningModesTest, OtherModesNeverIgnoreTransactions) {
  db::NetChange nc;
  nc.AddDelete(Row(5, 1, 10.0));
  nc.AddInsert(Row(5, 2, 10.0));
  UpdateScreen rule = MakeScreen(ScreeningMode::kRuleIndex);
  UpdateScreen all = MakeScreen(ScreeningMode::kSubstituteAll);
  EXPECT_FALSE(rule.TransactionIsIgnorable(nc));
  EXPECT_FALSE(all.TransactionIsIgnorable(nc));
}

TEST_F(ScreeningModesTest, AllModesAgreeOnTheDecision) {
  // Screening schemes differ in cost, never in outcome: a tuple passes one
  // iff it passes all (for non-ignored commands).
  UpdateScreen rule = MakeScreen(ScreeningMode::kRuleIndex);
  UpdateScreen all = MakeScreen(ScreeningMode::kSubstituteAll);
  UpdateScreen riu = MakeScreen(ScreeningMode::kRiu);
  for (int64_t k1 = 0; k1 < 200; k1 += 7) {
    const db::Tuple t = Row(k1, k1 % 20, 1.0 * k1);
    const bool want = k1 < ViewTestDb::kFCut;
    EXPECT_EQ(rule.Passes(t), want) << k1;
    EXPECT_EQ(all.Passes(t), want) << k1;
    EXPECT_EQ(riu.Passes(t), want) << k1;
  }
}

TEST_F(ScreeningModesTest, ModeNames) {
  EXPECT_STREQ(ScreeningModeName(ScreeningMode::kRuleIndex), "rule-index");
  EXPECT_STREQ(ScreeningModeName(ScreeningMode::kSubstituteAll),
               "substitute-all");
  EXPECT_STREQ(ScreeningModeName(ScreeningMode::kRiu), "riu");
}

}  // namespace
}  // namespace viewmat::view
