#include <gtest/gtest.h>

#include "testing/view_fixture.h"
#include "view/deferred.h"
#include "view/immediate.h"
#include "view/query_modification.h"

namespace viewmat::view {
namespace {

using testing::ViewTestDb;

db::Tuple SpValue(int64_t k1, double v) {
  return db::Tuple({db::Value(k1), db::Value(v)});
}

// --- Query modification ----------------------------------------------------

TEST(QmSelectProject, AnswersFromBase) {
  ViewTestDb db;
  QmSelectProjectStrategy qm(db.SpDef(), &db.tracker_);
  const auto all = db.QueryAll(&qm);
  EXPECT_EQ(all.size(), static_cast<size_t>(ViewTestDb::kFCut));
  EXPECT_EQ(all.count(SpValue(10, 10.0)), 1u);
  EXPECT_EQ(all.count(SpValue(60, 60.0)), 0u);  // outside predicate
}

TEST(QmSelectProject, SeesUpdatesImmediately) {
  ViewTestDb db;
  QmSelectProjectStrategy qm(db.SpDef(), &db.tracker_);
  ASSERT_TRUE(qm.OnTransaction(db.UpdateTxn(10, 777.0)).ok());
  const auto all = db.QueryAll(&qm);
  EXPECT_EQ(all.count(SpValue(10, 777.0)), 1u);
  EXPECT_EQ(all.count(SpValue(10, 10.0)), 0u);
}

TEST(QmSelectProject, RangeRestrictsAnswer) {
  ViewTestDb db;
  QmSelectProjectStrategy qm(db.SpDef(), &db.tracker_);
  const auto some = db.QueryAll(&qm, 10, 19);
  EXPECT_EQ(some.size(), 10u);
}

TEST(QmSelectProject, SequentialPlanSameAnswer) {
  ViewTestDb db;
  QmSelectProjectStrategy clustered(db.SpDef(), &db.tracker_);
  QmSelectProjectStrategy sequential(db.SpDef(), &db.tracker_,
                                     /*force_sequential=*/true);
  EXPECT_EQ(db.QueryAll(&clustered), db.QueryAll(&sequential));
}

TEST(QmJoin, JoinsThroughHashIndex) {
  ViewTestDb db;
  QmJoinStrategy qm(db.JDef(), &db.tracker_);
  const auto all = db.QueryAll(&qm);
  EXPECT_EQ(all.size(), static_cast<size_t>(ViewTestDb::kFCut));
  // k1=7 joins R2 key 7 (w = 700).
  const db::Tuple expected({db::Value(int64_t{7}), db::Value(7.0),
                            db::Value(int64_t{7}), db::Value(700.0)});
  EXPECT_EQ(all.count(expected), 1u);
}

// --- Immediate --------------------------------------------------------------

TEST(Immediate, InitializeMatchesQueryModification) {
  ViewTestDb db;
  ImmediateStrategy imm(db.SpDef(), &db.tracker_);
  ASSERT_TRUE(imm.InitializeFromBase().ok());
  QmSelectProjectStrategy qm(db.SpDef(), &db.tracker_);
  EXPECT_EQ(db.QueryAll(&imm), db.QueryAll(&qm));
}

TEST(Immediate, RefreshesAfterEveryTransaction) {
  ViewTestDb db;
  ImmediateStrategy imm(db.SpDef(), &db.tracker_);
  ASSERT_TRUE(imm.InitializeFromBase().ok());
  ASSERT_TRUE(imm.OnTransaction(db.UpdateTxn(5, 500.0)).ok());
  EXPECT_EQ(imm.refresh_count(), 1u);
  const auto all = db.QueryAll(&imm);
  EXPECT_EQ(all.count(SpValue(5, 500.0)), 1u);
  EXPECT_EQ(all.count(SpValue(5, 5.0)), 0u);
}

TEST(Immediate, IrrelevantUpdatesDoNotTouchView) {
  ViewTestDb db;
  ImmediateStrategy imm(db.SpDef(), &db.tracker_);
  ASSERT_TRUE(imm.InitializeFromBase().ok());
  // k1 = 150 is outside the predicate: stage-1 t-lock rejects it free.
  ASSERT_TRUE(imm.OnTransaction(db.UpdateTxn(150, 9.0)).ok());
  EXPECT_EQ(imm.view()->total_count(), ViewTestDb::kFCut);
  EXPECT_EQ(imm.screen().stage1_hits(), 0u);
}

TEST(Immediate, JoinViewMaintainsJoinedTuples) {
  ViewTestDb db;
  ImmediateStrategy imm(db.JDef(), &db.tracker_);
  ASSERT_TRUE(imm.InitializeFromBase().ok());
  ASSERT_TRUE(imm.OnTransaction(db.UpdateTxn(7, 71.0)).ok());
  const auto all = db.QueryAll(&imm);
  const db::Tuple expected({db::Value(int64_t{7}), db::Value(71.0),
                            db::Value(int64_t{7}), db::Value(700.0)});
  EXPECT_EQ(all.count(expected), 1u);
}

// --- Deferred ---------------------------------------------------------------

TEST(Deferred, RefreshHappensAtQueryTime) {
  ViewTestDb db;
  DeferredStrategy def(db.SpDef(), db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(def.InitializeFromBase().ok());
  ASSERT_TRUE(def.OnTransaction(db.UpdateTxn(5, 500.0)).ok());
  ASSERT_TRUE(def.OnTransaction(db.UpdateTxn(6, 600.0)).ok());
  EXPECT_EQ(def.refresh_count(), 0u);
  EXPECT_GT(def.pending_tuples(), 0u);
  const auto all = db.QueryAll(&def);
  EXPECT_EQ(def.refresh_count(), 1u);
  EXPECT_EQ(def.pending_tuples(), 0u);
  EXPECT_EQ(all.count(SpValue(5, 500.0)), 1u);
  EXPECT_EQ(all.count(SpValue(6, 600.0)), 1u);
}

TEST(Deferred, BatchesManyTransactionsIntoOneRefresh) {
  ViewTestDb db;
  DeferredStrategy def(db.SpDef(), db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(def.InitializeFromBase().ok());
  for (int64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(def.OnTransaction(db.UpdateTxn(k, 1000.0 + k)).ok());
  }
  (void)db.QueryAll(&def);
  EXPECT_EQ(def.refresh_count(), 1u);  // one batched refresh, 20 txns
}

TEST(Deferred, RepeatedUpdatesOfSameTupleNetOut) {
  ViewTestDb db;
  DeferredStrategy def(db.SpDef(), db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(def.InitializeFromBase().ok());
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(def.OnTransaction(db.UpdateTxn(5, 100.0 + round)).ok());
  }
  // Intermediate versions cancel inside the AD file: at most the original
  // delete and the final insert remain.
  EXPECT_LE(def.pending_tuples(), 2u);
  const auto all = db.QueryAll(&def);
  EXPECT_EQ(all.count(SpValue(5, 109.0)), 1u);
}

TEST(Deferred, QueryWithNoPendingWorkSkipsRefresh) {
  ViewTestDb db;
  DeferredStrategy def(db.SpDef(), db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(def.InitializeFromBase().ok());
  (void)db.QueryAll(&def);
  EXPECT_EQ(def.refresh_count(), 0u);
}

TEST(Deferred, ExplicitRefreshSupportsAsyncPattern) {
  // §4 suggests refreshing during idle time; Refresh() is exposed for that.
  ViewTestDb db;
  DeferredStrategy def(db.SpDef(), db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(def.InitializeFromBase().ok());
  ASSERT_TRUE(def.OnTransaction(db.UpdateTxn(5, 42.0)).ok());
  ASSERT_TRUE(def.Refresh().ok());
  EXPECT_EQ(def.refresh_count(), 1u);
  (void)db.QueryAll(&def);
  EXPECT_EQ(def.refresh_count(), 1u);  // nothing left to do at query time
}

TEST(Deferred, JoinViewDeferredMaintenance) {
  ViewTestDb db;
  DeferredStrategy def(db.JDef(), db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(def.InitializeFromBase().ok());
  ASSERT_TRUE(def.OnTransaction(db.UpdateTxn(7, 71.0)).ok());
  const auto all = db.QueryAll(&def);
  const db::Tuple expected({db::Value(int64_t{7}), db::Value(71.0),
                            db::Value(int64_t{7}), db::Value(700.0)});
  EXPECT_EQ(all.count(expected), 1u);
}

TEST(Deferred, FoldsBaseRelationAtRefresh) {
  ViewTestDb db;
  DeferredStrategy def(db.SpDef(), db.AdOptions(), &db.tracker_);
  ASSERT_TRUE(def.InitializeFromBase().ok());
  ASSERT_TRUE(def.OnTransaction(db.UpdateTxn(5, 500.0)).ok());
  // Before refresh the base still holds the old value...
  db::Tuple row;
  ASSERT_TRUE(db.base_->FindByKey(5, &row).ok());
  EXPECT_DOUBLE_EQ(row.at(2).AsDouble(), 5.0);
  ASSERT_TRUE(def.Refresh().ok());
  // ...after it, R := (R ∪ A) − D has been applied.
  ASSERT_TRUE(db.base_->FindByKey(5, &row).ok());
  EXPECT_DOUBLE_EQ(row.at(2).AsDouble(), 500.0);
}

}  // namespace
}  // namespace viewmat::view
