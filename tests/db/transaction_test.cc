#include "db/transaction.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "common/random.h"
#include "db/catalog.h"
#include "storage/faulty_disk.h"

namespace viewmat::db {
namespace {

Schema TestSchema() {
  return Schema({Field::Int64("key"), Field::Int64("aux")});
}

Tuple Row(int64_t key, int64_t aux) { return Tuple({Value(key), Value(aux)}); }

TEST(NetChange, InsertThenDeleteCancels) {
  NetChange nc;
  nc.AddInsert(Row(1, 1));
  nc.AddDelete(Row(1, 1));
  EXPECT_TRUE(nc.empty());
}

TEST(NetChange, DeleteThenReinsertCancels) {
  NetChange nc;
  nc.AddDelete(Row(1, 1));
  nc.AddInsert(Row(1, 1));
  EXPECT_TRUE(nc.empty());
}

TEST(NetChange, DistinctTuplesDoNotCancel) {
  NetChange nc;
  nc.AddInsert(Row(1, 1));
  nc.AddDelete(Row(1, 2));  // same key, different value: both stand
  EXPECT_EQ(nc.inserts().size(), 1u);
  EXPECT_EQ(nc.deletes().size(), 1u);
  EXPECT_EQ(nc.size(), 2u);
}

TEST(NetChange, ADIntersectionAlwaysEmpty) {
  // The §2.1 invariant A ∩ D = ∅ under an arbitrary op interleaving.
  NetChange nc;
  nc.AddInsert(Row(1, 1));
  nc.AddInsert(Row(2, 2));
  nc.AddDelete(Row(1, 1));
  nc.AddDelete(Row(3, 3));
  nc.AddInsert(Row(3, 3));
  nc.AddInsert(Row(1, 1));
  for (const Tuple& a : nc.inserts()) {
    for (const Tuple& d : nc.deletes()) {
      EXPECT_FALSE(a == d);
    }
  }
}

// --- Satellite: adversarial property test of the A ∩ D = ∅ invariant. ----
//
// Reference semantics: a NetChange is the multiset delta it induces. Every
// op sequence is checked against a map<Tuple,int64_t> counting net copies
// (+ for insert, - for delete); the net sets must reproduce that delta
// exactly, A and D must stay disjoint as multisets, and tuples_written()
// must equal |A| + |D|.
class NetChangeModel {
 public:
  void Insert(const Tuple& t) { delta_[t] += 1; }
  void Delete(const Tuple& t) { delta_[t] -= 1; }

  void CheckAgainst(const NetChange& nc) const {
    std::map<Tuple, int64_t> got;
    for (const Tuple& t : nc.inserts()) got[t] += 1;
    for (const Tuple& t : nc.deletes()) {
      got[t] -= 1;
      // A ∩ D = ∅ as multisets: no tuple may appear on both sides.
      for (const Tuple& a : nc.inserts()) EXPECT_FALSE(a == t);
    }
    int64_t expected_written = 0;
    for (const auto& [t, d] : delta_) {
      EXPECT_EQ(got[t], d) << "net delta mismatch for " << t.ToString();
      expected_written += d < 0 ? -d : d;
    }
    for (const auto& [t, d] : got) {
      EXPECT_EQ(delta_.count(t) != 0 ? delta_.at(t) : 0, d)
          << "spurious net tuple " << t.ToString();
    }
    // |A| + |D| == sum of |delta|: the net sets carry no cancelled pairs.
    EXPECT_EQ(static_cast<int64_t>(nc.size()), expected_written);
  }

 private:
  std::map<Tuple, int64_t> delta_;
};

TEST(NetChange, PropertyAdversarialInterleavings) {
  // 256 seeded sequences of insert/delete/update drawn from a deliberately
  // tiny tuple domain (4 keys × 2 values) so the same tuple is hit from
  // every direction: re-insert after delete, delete-after-update,
  // double-delete, and self-update all occur many times.
  for (uint64_t seed = 0; seed < 256; ++seed) {
    Random rng(0x5eedULL * 977 + seed);
    NetChange nc;
    NetChangeModel model;
    const int ops = 1 + static_cast<int>(rng.Uniform(24));
    for (int i = 0; i < ops; ++i) {
      const Tuple t = Row(static_cast<int64_t>(rng.Uniform(4)),
                          static_cast<int64_t>(rng.Uniform(2)));
      switch (rng.Uniform(3)) {
        case 0:
          nc.AddInsert(t);
          model.Insert(t);
          break;
        case 1:
          nc.AddDelete(t);
          model.Delete(t);
          break;
        default: {
          // Update = delete old + insert new, sometimes with old == new.
          const Tuple nt = rng.Bernoulli(0.25)
                               ? t
                               : Row(static_cast<int64_t>(rng.Uniform(4)),
                                     static_cast<int64_t>(rng.Uniform(2)));
          nc.AddDelete(t);
          nc.AddInsert(nt);
          model.Delete(t);
          model.Insert(nt);
          break;
        }
      }
      model.CheckAgainst(nc);  // invariant holds after *every* op
    }
  }
}

TEST(NetChange, SelfUpdateIsNetNoop) {
  NetChange nc;
  nc.AddDelete(Row(7, 7));  // Update(t, t) through Transaction::Update
  nc.AddInsert(Row(7, 7));
  EXPECT_TRUE(nc.empty());
  EXPECT_EQ(nc.size(), 0u);
}

TEST(NetChange, DeleteAfterUpdateLeavesOnlyTheOldDelete) {
  // Update(a→b) then Delete(b): the insert of b cancels, the delete of a
  // stands; net effect is "delete a".
  NetChange nc;
  nc.AddDelete(Row(1, 1));
  nc.AddInsert(Row(1, 2));
  nc.AddDelete(Row(1, 2));
  EXPECT_EQ(nc.inserts().size(), 0u);
  ASSERT_EQ(nc.deletes().size(), 1u);
  EXPECT_TRUE(nc.deletes()[0] == Row(1, 1));
}

TEST(NetChange, DoubleDeleteThenOneReinsertKeepsOneDelete) {
  // Multiset semantics: two deletes of t minus one re-insert nets one delete.
  NetChange nc;
  nc.AddDelete(Row(3, 3));
  nc.AddDelete(Row(3, 3));
  nc.AddInsert(Row(3, 3));
  EXPECT_EQ(nc.inserts().size(), 0u);
  EXPECT_EQ(nc.deletes().size(), 1u);
}

TEST(Transaction, TuplesWrittenAgreesWithNetSets) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);
  Transaction txn;
  txn.Insert(&rel, Row(1, 1));
  txn.Delete(&rel, Row(1, 1));  // cancels
  txn.Update(&rel, Row(2, 2), Row(2, 2));  // self-update: net no-op
  txn.Update(&rel, Row(3, 3), Row(3, 4));
  const NetChange& nc = txn.ChangesFor(&rel);
  EXPECT_EQ(txn.tuples_written(), nc.inserts().size() + nc.deletes().size());
  EXPECT_EQ(txn.tuples_written(), 2u);
}

// --- Lifecycle: begin/commit/abort with undo of unapplied net changes. ---

TEST(Transaction, LifecycleBeginsOpenAndCommits) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);
  Transaction txn;
  EXPECT_EQ(txn.state(), TxnState::kOpen);
  txn.Insert(&rel, Row(1, 1));
  ASSERT_TRUE(txn.ApplyToBase().ok());
  txn.MarkCommitted();
  EXPECT_EQ(txn.state(), TxnState::kCommitted);
  EXPECT_EQ(txn.tuples_written(), 1u);  // net sets survive commit
}

TEST(Transaction, AbortUndoesUnappliedNetChanges) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);
  Transaction txn;
  txn.Insert(&rel, Row(1, 1));
  txn.Update(&rel, Row(2, 2), Row(2, 3));
  txn.Abort();
  EXPECT_EQ(txn.state(), TxnState::kAborted);
  EXPECT_EQ(txn.tuples_written(), 0u);
  EXPECT_TRUE(txn.changes().empty());
  EXPECT_EQ(rel.tuple_count(), 0u);  // nothing ever reached the base
}

TEST(Transaction, TxnStateNames) {
  EXPECT_STREQ(TxnStateName(TxnState::kOpen), "open");
  EXPECT_STREQ(TxnStateName(TxnState::kCommitted), "committed");
  EXPECT_STREQ(TxnStateName(TxnState::kAborted), "aborted");
}

TEST(Transaction, UpdateRecordsDeletePlusInsert) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);

  Transaction txn;
  txn.Update(&rel, Row(1, 1), Row(1, 2));
  const NetChange& nc = txn.ChangesFor(&rel);
  ASSERT_EQ(nc.deletes().size(), 1u);
  ASSERT_EQ(nc.inserts().size(), 1u);
  EXPECT_TRUE(nc.deletes()[0] == Row(1, 1));
  EXPECT_TRUE(nc.inserts()[0] == Row(1, 2));
  EXPECT_EQ(txn.tuples_written(), 2u);
}

TEST(Transaction, ChangesForUntouchedRelationEmpty) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);
  const Transaction txn;
  EXPECT_TRUE(txn.ChangesFor(&rel).empty());
}

TEST(Transaction, ApplyToBaseExecutesNetChange) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);
  ASSERT_TRUE(rel.Insert(Row(1, 1)).ok());
  ASSERT_TRUE(rel.Insert(Row(2, 2)).ok());

  Transaction txn;
  txn.Update(&rel, Row(1, 1), Row(1, 10));
  txn.Delete(&rel, Row(2, 2));
  txn.Insert(&rel, Row(3, 3));
  ASSERT_TRUE(txn.ApplyToBase().ok());

  Tuple out;
  ASSERT_TRUE(rel.FindByKey(1, &out).ok());
  EXPECT_EQ(out.at(1).AsInt64(), 10);
  EXPECT_EQ(rel.FindByKey(2, &out).code(), StatusCode::kNotFound);
  ASSERT_TRUE(rel.FindByKey(3, &out).ok());
  EXPECT_EQ(rel.tuple_count(), 2u);
}

TEST(Transaction, DeleteThenInsertSameKeyDifferentValue) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);
  ASSERT_TRUE(rel.Insert(Row(5, 1)).ok());
  Transaction txn;
  txn.Delete(&rel, Row(5, 1));
  txn.Insert(&rel, Row(5, 2));
  ASSERT_TRUE(txn.ApplyToBase().ok());
  Tuple out;
  ASSERT_TRUE(rel.FindByKey(5, &out).ok());
  EXPECT_EQ(out.at(1).AsInt64(), 2);
  EXPECT_EQ(rel.tuple_count(), 1u);
}

TEST(Transaction, ApplyToBaseStopsAtFirstFailedWriteAndSaysWhere) {
  storage::CostTracker tracker;
  storage::SimulatedDisk inner(512, &tracker);
  storage::FaultyDisk disk(&inner);
  storage::BufferPool pool(&disk, 4);
  Relation rel(&pool, "orders", TestSchema(), AccessMethod::kClusteredBTree, 0);
  for (int64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(rel.Insert(Row(k, k)).ok());
  }
  // Cold the cache so every write must fetch B-tree pages, then fail the
  // first such read: the multi-write apply dies on its opening delete.
  ASSERT_TRUE(pool.FlushAndEvictAll().ok());
  disk.InjectReadFault(/*after=*/0);

  Transaction txn;
  txn.Delete(&rel, Row(1, 1));
  txn.Delete(&rel, Row(2, 2));
  txn.Insert(&rel, Row(100, 100));
  const Status st = txn.ApplyToBase();
  disk.ClearFaults();
  ASSERT_FALSE(st.ok());
  // The error pinpoints the failed write: which op, which tuple, which
  // relation, and how many writes had already landed.
  EXPECT_NE(st.message().find("ApplyToBase stopped at delete"),
            std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("relation 'orders'"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("(0 writes applied before the failure)"),
            std::string::npos)
      << st.message();
}

TEST(Transaction, MultipleRelations) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Relation r1(&pool, "r1", TestSchema(), AccessMethod::kClusteredBTree, 0);
  Relation r2(&pool, "r2", TestSchema(), AccessMethod::kClusteredHash, 0);
  Transaction txn;
  txn.Insert(&r1, Row(1, 1));
  txn.Insert(&r2, Row(2, 2));
  EXPECT_EQ(txn.changes().size(), 2u);
  ASSERT_TRUE(txn.ApplyToBase().ok());
  EXPECT_EQ(r1.tuple_count(), 1u);
  EXPECT_EQ(r2.tuple_count(), 1u);
}

}  // namespace
}  // namespace viewmat::db
