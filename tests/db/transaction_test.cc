#include "db/transaction.h"

#include <gtest/gtest.h>

#include "db/catalog.h"
#include "storage/faulty_disk.h"

namespace viewmat::db {
namespace {

Schema TestSchema() {
  return Schema({Field::Int64("key"), Field::Int64("aux")});
}

Tuple Row(int64_t key, int64_t aux) { return Tuple({Value(key), Value(aux)}); }

TEST(NetChange, InsertThenDeleteCancels) {
  NetChange nc;
  nc.AddInsert(Row(1, 1));
  nc.AddDelete(Row(1, 1));
  EXPECT_TRUE(nc.empty());
}

TEST(NetChange, DeleteThenReinsertCancels) {
  NetChange nc;
  nc.AddDelete(Row(1, 1));
  nc.AddInsert(Row(1, 1));
  EXPECT_TRUE(nc.empty());
}

TEST(NetChange, DistinctTuplesDoNotCancel) {
  NetChange nc;
  nc.AddInsert(Row(1, 1));
  nc.AddDelete(Row(1, 2));  // same key, different value: both stand
  EXPECT_EQ(nc.inserts().size(), 1u);
  EXPECT_EQ(nc.deletes().size(), 1u);
  EXPECT_EQ(nc.size(), 2u);
}

TEST(NetChange, ADIntersectionAlwaysEmpty) {
  // The §2.1 invariant A ∩ D = ∅ under an arbitrary op interleaving.
  NetChange nc;
  nc.AddInsert(Row(1, 1));
  nc.AddInsert(Row(2, 2));
  nc.AddDelete(Row(1, 1));
  nc.AddDelete(Row(3, 3));
  nc.AddInsert(Row(3, 3));
  nc.AddInsert(Row(1, 1));
  for (const Tuple& a : nc.inserts()) {
    for (const Tuple& d : nc.deletes()) {
      EXPECT_FALSE(a == d);
    }
  }
}

TEST(Transaction, UpdateRecordsDeletePlusInsert) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);

  Transaction txn;
  txn.Update(&rel, Row(1, 1), Row(1, 2));
  const NetChange& nc = txn.ChangesFor(&rel);
  ASSERT_EQ(nc.deletes().size(), 1u);
  ASSERT_EQ(nc.inserts().size(), 1u);
  EXPECT_TRUE(nc.deletes()[0] == Row(1, 1));
  EXPECT_TRUE(nc.inserts()[0] == Row(1, 2));
  EXPECT_EQ(txn.tuples_written(), 2u);
}

TEST(Transaction, ChangesForUntouchedRelationEmpty) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);
  const Transaction txn;
  EXPECT_TRUE(txn.ChangesFor(&rel).empty());
}

TEST(Transaction, ApplyToBaseExecutesNetChange) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);
  ASSERT_TRUE(rel.Insert(Row(1, 1)).ok());
  ASSERT_TRUE(rel.Insert(Row(2, 2)).ok());

  Transaction txn;
  txn.Update(&rel, Row(1, 1), Row(1, 10));
  txn.Delete(&rel, Row(2, 2));
  txn.Insert(&rel, Row(3, 3));
  ASSERT_TRUE(txn.ApplyToBase().ok());

  Tuple out;
  ASSERT_TRUE(rel.FindByKey(1, &out).ok());
  EXPECT_EQ(out.at(1).AsInt64(), 10);
  EXPECT_EQ(rel.FindByKey(2, &out).code(), StatusCode::kNotFound);
  ASSERT_TRUE(rel.FindByKey(3, &out).ok());
  EXPECT_EQ(rel.tuple_count(), 2u);
}

TEST(Transaction, DeleteThenInsertSameKeyDifferentValue) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);
  ASSERT_TRUE(rel.Insert(Row(5, 1)).ok());
  Transaction txn;
  txn.Delete(&rel, Row(5, 1));
  txn.Insert(&rel, Row(5, 2));
  ASSERT_TRUE(txn.ApplyToBase().ok());
  Tuple out;
  ASSERT_TRUE(rel.FindByKey(5, &out).ok());
  EXPECT_EQ(out.at(1).AsInt64(), 2);
  EXPECT_EQ(rel.tuple_count(), 1u);
}

TEST(Transaction, ApplyToBaseStopsAtFirstFailedWriteAndSaysWhere) {
  storage::CostTracker tracker;
  storage::SimulatedDisk inner(512, &tracker);
  storage::FaultyDisk disk(&inner);
  storage::BufferPool pool(&disk, 4);
  Relation rel(&pool, "orders", TestSchema(), AccessMethod::kClusteredBTree, 0);
  for (int64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(rel.Insert(Row(k, k)).ok());
  }
  // Cold the cache so every write must fetch B-tree pages, then fail the
  // first such read: the multi-write apply dies on its opening delete.
  ASSERT_TRUE(pool.FlushAndEvictAll().ok());
  disk.InjectReadFault(/*after=*/0);

  Transaction txn;
  txn.Delete(&rel, Row(1, 1));
  txn.Delete(&rel, Row(2, 2));
  txn.Insert(&rel, Row(100, 100));
  const Status st = txn.ApplyToBase();
  disk.ClearFaults();
  ASSERT_FALSE(st.ok());
  // The error pinpoints the failed write: which op, which tuple, which
  // relation, and how many writes had already landed.
  EXPECT_NE(st.message().find("ApplyToBase stopped at delete"),
            std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("relation 'orders'"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("(0 writes applied before the failure)"),
            std::string::npos)
      << st.message();
}

TEST(Transaction, MultipleRelations) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Relation r1(&pool, "r1", TestSchema(), AccessMethod::kClusteredBTree, 0);
  Relation r2(&pool, "r2", TestSchema(), AccessMethod::kClusteredHash, 0);
  Transaction txn;
  txn.Insert(&r1, Row(1, 1));
  txn.Insert(&r2, Row(2, 2));
  EXPECT_EQ(txn.changes().size(), 2u);
  ASSERT_TRUE(txn.ApplyToBase().ok());
  EXPECT_EQ(r1.tuple_count(), 1u);
  EXPECT_EQ(r2.tuple_count(), 1u);
}

}  // namespace
}  // namespace viewmat::db
