#include "db/recovery.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "db/catalog.h"
#include "db/transaction.h"
#include "storage/buffer_pool.h"
#include "storage/cost_tracker.h"
#include "storage/disk.h"
#include "storage/faulty_disk.h"

namespace viewmat::db {
namespace {

Schema TestSchema() {
  return Schema({Field::Int64("key"), Field::Int64("aux")});
}

Tuple Row(int64_t key, int64_t aux) { return Tuple({Value(key), Value(aux)}); }

/// The whole relation as a multiset (duplicate-tolerant comparison).
std::map<Tuple, int> Contents(const Relation& rel) {
  std::map<Tuple, int> out;
  EXPECT_TRUE(rel.Scan([&](const Tuple& t) {
                   ++out[t];
                   return true;
                 })
                  .ok());
  return out;
}

class RecoveryManagerTest : public ::testing::Test {
 protected:
  RecoveryManagerTest()
      : tracker_(1.0, 30.0, 1.0),
        inner_(512, &tracker_),
        disk_(&inner_),
        pool_(&disk_, 16),
        rel_(&pool_, "t", TestSchema(), AccessMethod::kClusteredBTree, 0) {}

  /// Builds the manager late so tests can pick options.
  RecoveryManager* Make(RecoveryManager::Options options = {}) {
    rm_ = std::make_unique<RecoveryManager>(&pool_, options);
    rm_->Register(&rel_);
    return rm_.get();
  }

  /// Commits a single-insert transaction and expects success.
  void MustCommit(RecoveryManager* rm, int64_t key, int64_t aux) {
    Transaction txn;
    txn.Insert(&rel_, Row(key, aux));
    ASSERT_TRUE(rm->CommitAndApply(txn).ok());
  }

  storage::CostTracker tracker_;
  storage::SimulatedDisk inner_;
  storage::FaultyDisk disk_;
  storage::BufferPool pool_;
  Relation rel_;
  std::unique_ptr<RecoveryManager> rm_;
};

TEST_F(RecoveryManagerTest, MetricsCountRecoveriesAndCheckpoints) {
  obs::MetricsRegistry metrics;
  RecoveryManager* rm = Make();
  rm->set_metrics(&metrics);
  MustCommit(rm, 1, 10);
  MustCommit(rm, 2, 20);
  const size_t records_before = rm->wal()->record_count();
  ASSERT_TRUE(rm->Checkpoint().ok());
  EXPECT_EQ(metrics.GetCounter("checkpoints_total")->value(), 1u);
  // The checkpoint observed the log size it retired and its age in commits.
  obs::Histogram* retired =
      metrics.GetHistogram("checkpoint_log_records", {}, {});
  EXPECT_EQ(retired->count(), 1u);
  EXPECT_DOUBLE_EQ(retired->sum(), static_cast<double>(records_before));
  obs::Histogram* age = metrics.GetHistogram("checkpoint_age_commits", {}, {});
  EXPECT_EQ(age->count(), 1u);
  EXPECT_DOUBLE_EQ(age->sum(), 2.0);

  // A clean-log recovery pass still counts a run, replays nothing.
  RecoverStats stats;
  ASSERT_TRUE(rm->Recover(&stats).ok());
  EXPECT_EQ(metrics.GetCounter("recovery_runs_total")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("recovery_txns_replayed_total")->value(), 0u);

  // A commit whose apply dies leaves redo work; recovery counts what it
  // replayed and what idempotence skipped.
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  disk_.InjectReadFault(/*after=*/0);
  Transaction txn;
  txn.Insert(&rel_, Row(3, 30));
  EXPECT_FALSE(rm->CommitAndApply(txn).ok());
  disk_.ClearFaults();
  ASSERT_TRUE(rm->Recover(&stats).ok());
  EXPECT_EQ(metrics.GetCounter("recovery_runs_total")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("recovery_txns_replayed_total")->value(),
            stats.txns_replayed);
  EXPECT_EQ(metrics.GetCounter("recovery_ops_replayed_total")->value(),
            stats.ops_replayed);
  EXPECT_GT(stats.ops_replayed, 0u);
}

TEST_F(RecoveryManagerTest, CommitAndApplyIsDurableAndApplied) {
  RecoveryManager* rm = Make();
  Transaction txn;
  txn.Insert(&rel_, Row(1, 10));
  txn.Insert(&rel_, Row(2, 20));
  uint64_t id = 0;
  ASSERT_TRUE(rm->CommitAndApply(txn, &id).ok());
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(rm->txn_seq(), 1u);
  EXPECT_EQ(rm->last_committed_txn(), 1u);
  EXPECT_FALSE(rm->needs_recovery());
  EXPECT_EQ(rel_.tuple_count(), 2u);
  // Intents + commit made it to the log before any page write.
  EXPECT_GE(rm->wal()->record_count(), 3u);
}

TEST_F(RecoveryManagerTest, RecoverCompletesAFailedApplyAndIsIdempotent) {
  RecoveryManager* rm = Make();
  MustCommit(rm, 1, 10);
  MustCommit(rm, 2, 20);
  // Cold the cache so the next apply must read B-tree pages, then fail that
  // read: the commit is durable but the base write stops partway.
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  disk_.InjectReadFault(/*after=*/0);
  Transaction txn;
  txn.Insert(&rel_, Row(3, 30));
  uint64_t id = 0;
  EXPECT_FALSE(rm->CommitAndApply(txn, &id).ok());
  disk_.ClearFaults();
  EXPECT_TRUE(rm->needs_recovery());
  // Durable-at-commit: the transaction IS committed even though apply died.
  EXPECT_EQ(rm->last_committed_txn(), id);

  RecoverStats first;
  ASSERT_TRUE(rm->Recover(&first).ok());
  EXPECT_FALSE(rm->needs_recovery());
  EXPECT_EQ(first.committed_high, id);
  EXPECT_GT(first.txns_replayed, 0u);
  const std::map<Tuple, int> after_first = Contents(rel_);
  EXPECT_EQ(after_first.size(), 3u);
  EXPECT_EQ(after_first.at(Row(3, 30)), 1);

  // Recover twice ≡ once: the second pass finds every write already present.
  RecoverStats second;
  ASSERT_TRUE(rm->Recover(&second).ok());
  EXPECT_EQ(second.ops_replayed, 0u);
  EXPECT_EQ(second.committed_high, id);
  EXPECT_EQ(Contents(rel_), after_first);
  EXPECT_EQ(rm->recoveries(), 2u);
}

TEST_F(RecoveryManagerTest, SyncFailureResolvesToCommittedPrefix) {
  RecoveryManager* rm = Make();
  MustCommit(rm, 1, 10);
  // Fail the commit sync outright (no torn prefix): nothing of the new
  // transaction may survive, and the earlier commit must be untouched.
  disk_.InjectWriteFault(/*after=*/0);
  Transaction txn;
  txn.Insert(&rel_, Row(2, 20));
  uint64_t id = 0;
  const bool acked = rm->CommitAndApply(txn, &id).ok();
  disk_.ClearFaults();
  EXPECT_GT(id, 0u);  // the id is reported even on failure

  RecoverStats stats;
  ASSERT_TRUE(rm->Recover(&stats).ok());
  // The ambiguity-resolution contract: committed iff the recovered
  // high-water mark covers the id. State must match that verdict exactly.
  const bool committed = rm->last_committed_txn() >= id;
  if (acked) {
    EXPECT_TRUE(committed);
  }
  const std::map<Tuple, int> contents = Contents(rel_);
  EXPECT_EQ(contents.count(Row(1, 10)), 1u);
  EXPECT_EQ(contents.count(Row(2, 20)), committed ? 1u : 0u);
}

TEST_F(RecoveryManagerTest, CheckpointTruncatesLogAndPreservesHighWater) {
  RecoveryManager* rm = Make();
  MustCommit(rm, 1, 10);
  MustCommit(rm, 2, 20);
  MustCommit(rm, 3, 30);
  const uint64_t high = rm->last_committed_txn();
  ASSERT_TRUE(rm->Checkpoint().ok());
  EXPECT_EQ(rm->checkpoints(), 1u);
  // The log holds exactly the checkpoint record now.
  EXPECT_EQ(rm->wal()->record_count(), 1u);

  // Crash-equivalent recovery after the checkpoint: nothing to replay, but
  // the committed high-water mark survives via the checkpoint record.
  RecoverStats stats;
  ASSERT_TRUE(rm->Recover(&stats).ok());
  EXPECT_EQ(stats.txns_replayed, 0u);
  EXPECT_EQ(stats.committed_high, high);
  EXPECT_EQ(rm->last_committed_txn(), high);
  EXPECT_EQ(Contents(rel_).size(), 3u);

  // Post-checkpoint commits recover without the truncated history.
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  disk_.InjectReadFault(/*after=*/0);
  Transaction txn;
  txn.Insert(&rel_, Row(4, 40));
  EXPECT_FALSE(rm->CommitAndApply(txn).ok());
  disk_.ClearFaults();
  RecoverStats redo;
  ASSERT_TRUE(rm->Recover(&redo).ok());
  EXPECT_EQ(redo.txns_replayed, 1u);
  EXPECT_EQ(Contents(rel_).count(Row(4, 40)), 1u);
}

TEST_F(RecoveryManagerTest, AutomaticCheckpointEveryNCommits) {
  RecoveryManager::Options options;
  options.checkpoint_every = 2;
  RecoveryManager* rm = Make(options);
  MustCommit(rm, 1, 10);
  EXPECT_EQ(rm->checkpoints(), 0u);
  MustCommit(rm, 2, 20);
  EXPECT_EQ(rm->checkpoints(), 1u);
  MustCommit(rm, 3, 30);
  MustCommit(rm, 4, 40);
  EXPECT_EQ(rm->checkpoints(), 2u);
  EXPECT_EQ(rel_.tuple_count(), 4u);
}

TEST_F(RecoveryManagerTest, DoubleFaultDuringRecoveryThenRetrySucceeds) {
  RecoveryManager* rm = Make();
  MustCommit(rm, 1, 10);
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  disk_.InjectReadFault(/*after=*/0);
  Transaction txn;
  txn.Insert(&rel_, Row(2, 20));
  txn.Insert(&rel_, Row(3, 30));
  EXPECT_FALSE(rm->CommitAndApply(txn).ok());
  disk_.ClearFaults();
  ASSERT_TRUE(rm->needs_recovery());

  // Fault the recovery pass itself — the second failure in a row. The pass
  // reports the error and leaves needs_recovery standing.
  disk_.InjectReadFault(/*after=*/1);
  EXPECT_FALSE(rm->Recover().ok());
  EXPECT_TRUE(rm->needs_recovery());
  disk_.ClearFaults();

  // Third time lucky: recovery is restartable from any prefix of itself.
  RecoverStats stats;
  ASSERT_TRUE(rm->Recover(&stats).ok());
  EXPECT_FALSE(rm->needs_recovery());
  const std::map<Tuple, int> contents = Contents(rel_);
  EXPECT_EQ(contents.size(), 3u);
  EXPECT_EQ(contents.count(Row(2, 20)), 1u);
  EXPECT_EQ(contents.count(Row(3, 30)), 1u);
}

TEST_F(RecoveryManagerTest, RejectsTransactionsOnUnregisteredRelations) {
  RecoveryManager* rm = Make();
  Relation other(&pool_, "other", TestSchema(), AccessMethod::kClusteredBTree,
                 0);
  Transaction txn;
  txn.Insert(&other, Row(1, 1));
  const Status st = rm->CommitAndApply(txn);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // Nothing was logged or applied for the rejected transaction.
  EXPECT_EQ(other.tuple_count(), 0u);
  EXPECT_EQ(rm->last_committed_txn(), 0u);
}

TEST_F(RecoveryManagerTest, DeletesAndUpdatesReplayExactly) {
  RecoveryManager* rm = Make();
  MustCommit(rm, 1, 10);
  MustCommit(rm, 2, 20);
  // A mixed transaction (update + delete + insert) that dies mid-apply.
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  disk_.InjectReadFault(/*after=*/0);
  Transaction txn;
  txn.Update(&rel_, Row(1, 10), Row(1, 11));
  txn.Delete(&rel_, Row(2, 20));
  txn.Insert(&rel_, Row(3, 33));
  EXPECT_FALSE(rm->CommitAndApply(txn).ok());
  disk_.ClearFaults();

  ASSERT_TRUE(rm->Recover().ok());
  const std::map<Tuple, int> contents = Contents(rel_);
  EXPECT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents.count(Row(1, 11)), 1u);
  EXPECT_EQ(contents.count(Row(2, 20)), 0u);
  EXPECT_EQ(contents.count(Row(3, 33)), 1u);
}

}  // namespace
}  // namespace viewmat::db
