#include <gtest/gtest.h>

#include "db/schema.h"
#include "db/tuple.h"

namespace viewmat::db {
namespace {

Schema TestSchema() {
  return Schema({Field::Int64("id"), Field::Double("score"),
                 Field::String("name", 12)});
}

TEST(Schema, OffsetsAndRecordSize) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.record_size(), 28u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);
  EXPECT_EQ(s.offset(2), 16u);
  EXPECT_EQ(s.field_count(), 3u);
}

TEST(Schema, FieldIndexLookup) {
  const Schema s = TestSchema();
  EXPECT_EQ(*s.FieldIndex("score"), 1u);
  EXPECT_EQ(s.FieldIndex("missing").status().code(), StatusCode::kNotFound);
}

TEST(Schema, ProjectReordersFields) {
  const Schema s = TestSchema();
  const Schema p = s.Project({2, 0});
  EXPECT_EQ(p.field_count(), 2u);
  EXPECT_EQ(p.field(0).name, "name");
  EXPECT_EQ(p.field(1).name, "id");
  EXPECT_EQ(p.record_size(), 20u);
}

TEST(Schema, ConcatPrefixesNames) {
  const Schema a({Field::Int64("x")});
  const Schema b({Field::Int64("x")});
  const Schema c = Schema::Concat(a, "L", b, "R");
  EXPECT_EQ(c.field(0).name, "L.x");
  EXPECT_EQ(c.field(1).name, "R.x");
  const Schema d = Schema::Concat(a, "", b, "");
  EXPECT_EQ(d.field(0).name, "x");
}

TEST(Schema, Equality) {
  EXPECT_TRUE(TestSchema() == TestSchema());
  const Schema other({Field::Int64("id")});
  EXPECT_FALSE(TestSchema() == other);
}

TEST(Tuple, SerializeDeserializeRoundTrip) {
  const Schema s = TestSchema();
  const Tuple t({Value(int64_t{-42}), Value(3.25), Value(std::string("bob"))});
  std::vector<uint8_t> buf(s.record_size());
  t.Serialize(s, buf.data());
  const Tuple back = Tuple::Deserialize(s, buf.data());
  EXPECT_TRUE(back == t);
}

TEST(Tuple, StringTruncatedToWidth) {
  const Schema s = TestSchema();
  const Tuple t({Value(int64_t{1}), Value(0.0),
                 Value(std::string("a-very-long-name-indeed"))});
  std::vector<uint8_t> buf(s.record_size());
  t.Serialize(s, buf.data());
  const Tuple back = Tuple::Deserialize(s, buf.data());
  EXPECT_EQ(back.at(2).AsString(), "a-very-long-");  // 12 bytes kept
}

TEST(Tuple, EmptyStringRoundTrips) {
  const Schema s = TestSchema();
  const Tuple t({Value(int64_t{1}), Value(0.0), Value(std::string(""))});
  std::vector<uint8_t> buf(s.record_size());
  t.Serialize(s, buf.data());
  EXPECT_EQ(Tuple::Deserialize(s, buf.data()).at(2).AsString(), "");
}

TEST(Tuple, ProjectAndConcat) {
  const Tuple t({Value(int64_t{1}), Value(2.0), Value(std::string("x"))});
  const Tuple p = t.Project({2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.at(0).AsString(), "x");
  EXPECT_EQ(p.at(1).AsInt64(), 1);
  const Tuple joined = Tuple::Concat(p, t);
  EXPECT_EQ(joined.size(), 5u);
  EXPECT_EQ(joined.at(4).AsString(), "x");
}

TEST(Tuple, LexicographicOrder) {
  const Tuple a({Value(int64_t{1}), Value(int64_t{5})});
  const Tuple b({Value(int64_t{1}), Value(int64_t{7})});
  const Tuple c({Value(int64_t{1})});
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(c < a);  // prefix orders first
}

TEST(Tuple, HashStableAndSensitive) {
  const Tuple a({Value(int64_t{1}), Value(int64_t{2})});
  const Tuple b({Value(int64_t{2}), Value(int64_t{1})});
  EXPECT_EQ(a.Hash(), Tuple({Value(int64_t{1}), Value(int64_t{2})}).Hash());
  EXPECT_NE(a.Hash(), b.Hash());  // order matters
}

TEST(Tuple, ToStringReadable) {
  const Tuple t({Value(int64_t{1}), Value(std::string("y"))});
  EXPECT_EQ(t.ToString(), "(1, y)");
}

}  // namespace
}  // namespace viewmat::db
