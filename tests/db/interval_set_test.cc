#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"
#include "db/predicate.h"

namespace viewmat::db {
namespace {

constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

IntervalSet Of(int64_t lo, int64_t hi) {
  return IntervalSet(Interval{lo, hi});
}

TEST(IntervalSet, EmptyAndAll) {
  EXPECT_TRUE(IntervalSet::Empty().empty());
  EXPECT_FALSE(IntervalSet::Empty().Contains(0));
  EXPECT_TRUE(IntervalSet::All().IsAll());
  EXPECT_TRUE(IntervalSet::All().Contains(kMin));
  EXPECT_TRUE(IntervalSet::All().Contains(kMax));
}

TEST(IntervalSet, InvertedIntervalIsEmpty) {
  EXPECT_TRUE(Of(5, 3).empty());
}

TEST(IntervalSet, UnionMergesOverlapsAndTouches) {
  const IntervalSet u1 = IntervalSet::Union(Of(0, 10), Of(5, 20));
  EXPECT_EQ(u1.size(), 1u);
  EXPECT_TRUE(u1.Contains(15));
  // Touching integers merge: [0,10] ∪ [11,20] = [0,20].
  const IntervalSet u2 = IntervalSet::Union(Of(0, 10), Of(11, 20));
  EXPECT_EQ(u2.size(), 1u);
  // Disjoint stays disjoint.
  const IntervalSet u3 = IntervalSet::Union(Of(0, 10), Of(50, 60));
  EXPECT_EQ(u3.size(), 2u);
  EXPECT_FALSE(u3.Contains(30));
}

TEST(IntervalSet, IntersectProducesGapsCorrectly) {
  const IntervalSet a = IntervalSet::Union(Of(0, 10), Of(20, 30));
  const IntervalSet b = Of(5, 25);
  const IntervalSet i = IntervalSet::Intersect(a, b);
  EXPECT_EQ(i.size(), 2u);
  EXPECT_TRUE(i.Contains(7));
  EXPECT_FALSE(i.Contains(15));
  EXPECT_TRUE(i.Contains(22));
  EXPECT_FALSE(i.Contains(28));
}

TEST(IntervalSet, ComplementOfMiddleInterval) {
  const IntervalSet c = IntervalSet::Complement(Of(10, 20));
  EXPECT_TRUE(c.Contains(9));
  EXPECT_FALSE(c.Contains(10));
  EXPECT_FALSE(c.Contains(20));
  EXPECT_TRUE(c.Contains(21));
  EXPECT_TRUE(c.Contains(kMin));
  EXPECT_TRUE(c.Contains(kMax));
}

TEST(IntervalSet, ComplementEdgesOfDomain) {
  EXPECT_TRUE(IntervalSet::Complement(IntervalSet::All()).empty());
  const IntervalSet c = IntervalSet::Complement(IntervalSet::Empty());
  EXPECT_TRUE(c.Contains(0));
  // Interval reaching kMax: complement stops below its lo.
  const IntervalSet c2 =
      IntervalSet::Complement(IntervalSet(Interval{5, std::nullopt}));
  EXPECT_TRUE(c2.Contains(4));
  EXPECT_FALSE(c2.Contains(5));
}

TEST(IntervalSet, DoubleComplementIsIdentityOnMembership) {
  const IntervalSet a = IntervalSet::Union(Of(0, 10), Of(100, 200));
  const IntervalSet cc = IntervalSet::Complement(IntervalSet::Complement(a));
  for (const int64_t v : {-5, 0, 10, 11, 50, 100, 200, 201}) {
    EXPECT_EQ(cc.Contains(v), a.Contains(v)) << v;
  }
}

TEST(IntervalSet, HullSpansEnds) {
  const IntervalSet a = IntervalSet::Union(Of(0, 10), Of(100, 200));
  const Interval hull = a.Hull();
  EXPECT_EQ(*hull.lo, 0);
  EXPECT_EQ(*hull.hi, 200);
}

TEST(ImpliedRangeSet, NeIsExactComplement) {
  auto p = Predicate::Compare(0, CompareOp::kNe, Value(int64_t{7}));
  const IntervalSet s = p->ImpliedRangeSet(0);
  EXPECT_FALSE(s.Contains(7));
  EXPECT_TRUE(s.Contains(6));
  EXPECT_TRUE(s.Contains(8));
}

TEST(ImpliedRangeSet, OrKeepsDisjointPieces) {
  auto p = Predicate::Or(Predicate::Between(0, 0, 5),
                         Predicate::Between(0, 100, 105));
  const IntervalSet s = p->ImpliedRangeSet(0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.Contains(50));  // the hull-based ImpliedRange admits this
  EXPECT_TRUE(p->ImpliedRange(0).Contains(50));
}

TEST(ImpliedRangeSet, NotOfSingleFieldIsExact) {
  auto p = Predicate::Not(Predicate::Between(0, 10, 20));
  const IntervalSet s = p->ImpliedRangeSet(0);
  EXPECT_TRUE(s.Contains(9));
  EXPECT_FALSE(s.Contains(15));
  EXPECT_TRUE(s.Contains(21));
}

TEST(ImpliedRangeSet, NotTouchingOtherFieldsStaysAll) {
  auto p = Predicate::Not(
      Predicate::And(Predicate::Between(0, 10, 20),
                     Predicate::Compare(1, CompareOp::kEq,
                                        Value(int64_t{5}))));
  EXPECT_TRUE(p->ImpliedRangeSet(0).IsAll());
}

TEST(ImpliedRangeSet, BoundaryComparisonsAtDomainEdges) {
  auto lt_min = Predicate::Compare(0, CompareOp::kLt, Value(kMin));
  EXPECT_TRUE(lt_min->ImpliedRangeSet(0).empty());
  auto gt_max = Predicate::Compare(0, CompareOp::kGt, Value(kMax));
  EXPECT_TRUE(gt_max->ImpliedRangeSet(0).empty());
}

// ---- Randomized soundness + exactness fuzz --------------------------------

PredicateRef RandomPredicate(Random* rng, int depth, size_t fields) {
  const int kind = depth <= 0 ? 0 : static_cast<int>(rng->Uniform(4));
  switch (kind) {
    default:
    case 0: {
      const size_t field = rng->Uniform(fields);
      const auto op = static_cast<CompareOp>(rng->Uniform(6));
      return Predicate::Compare(field, op, Value(rng->UniformInt(-50, 50)));
    }
    case 1:
      return Predicate::And(RandomPredicate(rng, depth - 1, fields),
                            RandomPredicate(rng, depth - 1, fields));
    case 2:
      return Predicate::Or(RandomPredicate(rng, depth - 1, fields),
                           RandomPredicate(rng, depth - 1, fields));
    case 3:
      return Predicate::Not(RandomPredicate(rng, depth - 1, fields));
  }
}

TEST(ImpliedRangeSet, FuzzSoundnessOverTwoFields) {
  // Soundness: any satisfying tuple's field value lies in the set.
  Random rng(2027);
  for (int trial = 0; trial < 300; ++trial) {
    const PredicateRef p = RandomPredicate(&rng, 3, 2);
    const IntervalSet s = p->ImpliedRangeSet(0);
    for (int64_t v0 = -60; v0 <= 60; v0 += 3) {
      for (int64_t v1 : {-20, 0, 20}) {
        const Tuple t({Value(v0), Value(v1)});
        if (p->Evaluate(t)) {
          ASSERT_TRUE(s.Contains(v0))
              << p->ToString() << " v0=" << v0 << " v1=" << v1;
        }
      }
    }
  }
}

TEST(ImpliedRangeSet, FuzzExactnessOnSingleFieldPredicates) {
  // Exactness: when the predicate references only field 0, membership in
  // the set is equivalent to satisfiability.
  Random rng(2028);
  for (int trial = 0; trial < 300; ++trial) {
    const PredicateRef p = RandomPredicate(&rng, 3, 1);
    const IntervalSet s = p->ImpliedRangeSet(0);
    for (int64_t v = -60; v <= 60; ++v) {
      const Tuple t({Value(v)});
      ASSERT_EQ(s.Contains(v), p->Evaluate(t))
          << p->ToString() << " v=" << v;
    }
  }
}

TEST(ImpliedRangeSet, FuzzSetAlgebraMatchesMembership) {
  // Union/Intersect/Complement agree with pointwise boolean algebra.
  Random rng(2029);
  for (int trial = 0; trial < 200; ++trial) {
    IntervalSet a;
    IntervalSet b;
    for (int i = 0; i < 3; ++i) {
      const int64_t lo1 = rng.UniformInt(-40, 40);
      a = IntervalSet::Union(a, Of(lo1, lo1 + rng.UniformInt(0, 20)));
      const int64_t lo2 = rng.UniformInt(-40, 40);
      b = IntervalSet::Union(b, Of(lo2, lo2 + rng.UniformInt(0, 20)));
    }
    const IntervalSet u = IntervalSet::Union(a, b);
    const IntervalSet i = IntervalSet::Intersect(a, b);
    const IntervalSet c = IntervalSet::Complement(a);
    for (int64_t v = -70; v <= 70; v += 2) {
      ASSERT_EQ(u.Contains(v), a.Contains(v) || b.Contains(v)) << v;
      ASSERT_EQ(i.Contains(v), a.Contains(v) && b.Contains(v)) << v;
      ASSERT_EQ(c.Contains(v), !a.Contains(v)) << v;
    }
  }
}

}  // namespace
}  // namespace viewmat::db
