#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/random.h"
#include "db/predicate.h"

namespace viewmat::db {
namespace {

constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

IntervalSet Of(int64_t lo, int64_t hi) {
  return IntervalSet(Interval{lo, hi});
}

TEST(IntervalSet, EmptyAndAll) {
  EXPECT_TRUE(IntervalSet::Empty().empty());
  EXPECT_FALSE(IntervalSet::Empty().Contains(0));
  EXPECT_TRUE(IntervalSet::All().IsAll());
  EXPECT_TRUE(IntervalSet::All().Contains(kMin));
  EXPECT_TRUE(IntervalSet::All().Contains(kMax));
}

TEST(IntervalSet, InvertedIntervalIsEmpty) {
  EXPECT_TRUE(Of(5, 3).empty());
}

TEST(IntervalSet, UnionMergesOverlapsAndTouches) {
  const IntervalSet u1 = IntervalSet::Union(Of(0, 10), Of(5, 20));
  EXPECT_EQ(u1.size(), 1u);
  EXPECT_TRUE(u1.Contains(15));
  // Touching integers merge: [0,10] ∪ [11,20] = [0,20].
  const IntervalSet u2 = IntervalSet::Union(Of(0, 10), Of(11, 20));
  EXPECT_EQ(u2.size(), 1u);
  // Disjoint stays disjoint.
  const IntervalSet u3 = IntervalSet::Union(Of(0, 10), Of(50, 60));
  EXPECT_EQ(u3.size(), 2u);
  EXPECT_FALSE(u3.Contains(30));
}

TEST(IntervalSet, IntersectProducesGapsCorrectly) {
  const IntervalSet a = IntervalSet::Union(Of(0, 10), Of(20, 30));
  const IntervalSet b = Of(5, 25);
  const IntervalSet i = IntervalSet::Intersect(a, b);
  EXPECT_EQ(i.size(), 2u);
  EXPECT_TRUE(i.Contains(7));
  EXPECT_FALSE(i.Contains(15));
  EXPECT_TRUE(i.Contains(22));
  EXPECT_FALSE(i.Contains(28));
}

TEST(IntervalSet, ComplementOfMiddleInterval) {
  const IntervalSet c = IntervalSet::Complement(Of(10, 20));
  EXPECT_TRUE(c.Contains(9));
  EXPECT_FALSE(c.Contains(10));
  EXPECT_FALSE(c.Contains(20));
  EXPECT_TRUE(c.Contains(21));
  EXPECT_TRUE(c.Contains(kMin));
  EXPECT_TRUE(c.Contains(kMax));
}

TEST(IntervalSet, ComplementEdgesOfDomain) {
  EXPECT_TRUE(IntervalSet::Complement(IntervalSet::All()).empty());
  const IntervalSet c = IntervalSet::Complement(IntervalSet::Empty());
  EXPECT_TRUE(c.Contains(0));
  // Interval reaching kMax: complement stops below its lo.
  const IntervalSet c2 =
      IntervalSet::Complement(IntervalSet(Interval{5, std::nullopt}));
  EXPECT_TRUE(c2.Contains(4));
  EXPECT_FALSE(c2.Contains(5));
}

TEST(IntervalSet, DoubleComplementIsIdentityOnMembership) {
  const IntervalSet a = IntervalSet::Union(Of(0, 10), Of(100, 200));
  const IntervalSet cc = IntervalSet::Complement(IntervalSet::Complement(a));
  for (const int64_t v : {-5, 0, 10, 11, 50, 100, 200, 201}) {
    EXPECT_EQ(cc.Contains(v), a.Contains(v)) << v;
  }
}

TEST(IntervalSet, HullSpansEnds) {
  const IntervalSet a = IntervalSet::Union(Of(0, 10), Of(100, 200));
  const Interval hull = a.Hull();
  EXPECT_EQ(*hull.lo, 0);
  EXPECT_EQ(*hull.hi, 200);
}

TEST(ImpliedRangeSet, NeIsExactComplement) {
  auto p = Predicate::Compare(0, CompareOp::kNe, Value(int64_t{7}));
  const IntervalSet s = p->ImpliedRangeSet(0);
  EXPECT_FALSE(s.Contains(7));
  EXPECT_TRUE(s.Contains(6));
  EXPECT_TRUE(s.Contains(8));
}

TEST(ImpliedRangeSet, OrKeepsDisjointPieces) {
  auto p = Predicate::Or(Predicate::Between(0, 0, 5),
                         Predicate::Between(0, 100, 105));
  const IntervalSet s = p->ImpliedRangeSet(0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.Contains(50));  // the hull-based ImpliedRange admits this
  EXPECT_TRUE(p->ImpliedRange(0).Contains(50));
}

TEST(ImpliedRangeSet, NotOfSingleFieldIsExact) {
  auto p = Predicate::Not(Predicate::Between(0, 10, 20));
  const IntervalSet s = p->ImpliedRangeSet(0);
  EXPECT_TRUE(s.Contains(9));
  EXPECT_FALSE(s.Contains(15));
  EXPECT_TRUE(s.Contains(21));
}

TEST(ImpliedRangeSet, NotTouchingOtherFieldsStaysAll) {
  auto p = Predicate::Not(
      Predicate::And(Predicate::Between(0, 10, 20),
                     Predicate::Compare(1, CompareOp::kEq,
                                        Value(int64_t{5}))));
  EXPECT_TRUE(p->ImpliedRangeSet(0).IsAll());
}

TEST(ImpliedRangeSet, BoundaryComparisonsAtDomainEdges) {
  auto lt_min = Predicate::Compare(0, CompareOp::kLt, Value(kMin));
  EXPECT_TRUE(lt_min->ImpliedRangeSet(0).empty());
  auto gt_max = Predicate::Compare(0, CompareOp::kGt, Value(kMax));
  EXPECT_TRUE(gt_max->ImpliedRangeSet(0).empty());
}

// ---- Randomized soundness + exactness fuzz --------------------------------

PredicateRef RandomPredicate(Random* rng, int depth, size_t fields) {
  const int kind = depth <= 0 ? 0 : static_cast<int>(rng->Uniform(4));
  switch (kind) {
    default:
    case 0: {
      const size_t field = rng->Uniform(fields);
      const auto op = static_cast<CompareOp>(rng->Uniform(6));
      return Predicate::Compare(field, op, Value(rng->UniformInt(-50, 50)));
    }
    case 1:
      return Predicate::And(RandomPredicate(rng, depth - 1, fields),
                            RandomPredicate(rng, depth - 1, fields));
    case 2:
      return Predicate::Or(RandomPredicate(rng, depth - 1, fields),
                           RandomPredicate(rng, depth - 1, fields));
    case 3:
      return Predicate::Not(RandomPredicate(rng, depth - 1, fields));
  }
}

TEST(ImpliedRangeSet, FuzzSoundnessOverTwoFields) {
  // Soundness: any satisfying tuple's field value lies in the set.
  Random rng(2027);
  for (int trial = 0; trial < 300; ++trial) {
    const PredicateRef p = RandomPredicate(&rng, 3, 2);
    const IntervalSet s = p->ImpliedRangeSet(0);
    for (int64_t v0 = -60; v0 <= 60; v0 += 3) {
      for (int64_t v1 : {-20, 0, 20}) {
        const Tuple t({Value(v0), Value(v1)});
        if (p->Evaluate(t)) {
          ASSERT_TRUE(s.Contains(v0))
              << p->ToString() << " v0=" << v0 << " v1=" << v1;
        }
      }
    }
  }
}

TEST(ImpliedRangeSet, FuzzExactnessOnSingleFieldPredicates) {
  // Exactness: when the predicate references only field 0, membership in
  // the set is equivalent to satisfiability.
  Random rng(2028);
  for (int trial = 0; trial < 300; ++trial) {
    const PredicateRef p = RandomPredicate(&rng, 3, 1);
    const IntervalSet s = p->ImpliedRangeSet(0);
    for (int64_t v = -60; v <= 60; ++v) {
      const Tuple t({Value(v)});
      ASSERT_EQ(s.Contains(v), p->Evaluate(t))
          << p->ToString() << " v=" << v;
    }
  }
}

TEST(ImpliedRangeSet, FuzzSetAlgebraMatchesMembership) {
  // Union/Intersect/Complement agree with pointwise boolean algebra.
  Random rng(2029);
  for (int trial = 0; trial < 200; ++trial) {
    IntervalSet a;
    IntervalSet b;
    for (int i = 0; i < 3; ++i) {
      const int64_t lo1 = rng.UniformInt(-40, 40);
      a = IntervalSet::Union(a, Of(lo1, lo1 + rng.UniformInt(0, 20)));
      const int64_t lo2 = rng.UniformInt(-40, 40);
      b = IntervalSet::Union(b, Of(lo2, lo2 + rng.UniformInt(0, 20)));
    }
    const IntervalSet u = IntervalSet::Union(a, b);
    const IntervalSet i = IntervalSet::Intersect(a, b);
    const IntervalSet c = IntervalSet::Complement(a);
    for (int64_t v = -70; v <= 70; v += 2) {
      ASSERT_EQ(u.Contains(v), a.Contains(v) || b.Contains(v)) << v;
      ASSERT_EQ(i.Contains(v), a.Contains(v) && b.Contains(v)) << v;
      ASSERT_EQ(c.Contains(v), !a.Contains(v)) << v;
    }
  }
}

TEST(IntervalSet, AdjacentIntegerIntervalsMergeToOne) {
  // Closed integer intervals: [1,3] and [4,6] cover a contiguous range, so
  // the normalized form is the single interval [1,6] — not two entries.
  const IntervalSet merged = IntervalSet::Union(Of(1, 3), Of(4, 6));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(*merged.intervals()[0].lo, 1);
  EXPECT_EQ(*merged.intervals()[0].hi, 6);
  // ...while a one-integer gap must stay split.
  const IntervalSet split = IntervalSet::Union(Of(1, 3), Of(5, 6));
  ASSERT_EQ(split.size(), 2u);
  EXPECT_FALSE(split.Contains(4));
}

TEST(IntervalSet, ZeroWidthIntervalIsASinglePoint) {
  const IntervalSet point = Of(5, 5);
  EXPECT_FALSE(point.empty());
  EXPECT_TRUE(point.Contains(5));
  EXPECT_FALSE(point.Contains(4));
  EXPECT_FALSE(point.Contains(6));
  // Point + adjacent point merge; point union empty is the point.
  EXPECT_EQ(IntervalSet::Union(Of(5, 5), Of(6, 6)).size(), 1u);
  const IntervalSet with_empty =
      IntervalSet::Union(point, IntervalSet::Empty());
  ASSERT_EQ(with_empty.size(), 1u);
  EXPECT_TRUE(with_empty.Contains(5));
}

TEST(IntervalSet, PropertyNormalFormMatchesBruteForceMembership) {
  // For random unions of small intervals the normalized representation
  // must (a) agree pointwise with a brute-force membership table and
  // (b) be canonical: disjoint, ascending, and gap-separated (no two
  // entries an integer apart — those would have merged).
  Random rng(4099);
  for (int trial = 0; trial < 300; ++trial) {
    constexpr int64_t kLo = 0, kHi = 48;
    std::vector<bool> member(kHi + 1, false);
    IntervalSet set;
    const int pieces = 1 + static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < pieces; ++i) {
      const int64_t lo = rng.UniformInt(kLo, kHi);
      const int64_t hi = lo + rng.UniformInt(0, 8);
      set = IntervalSet::Union(set, Of(lo, hi));
      for (int64_t v = lo; v <= std::min(hi, kHi); ++v) member[v] = true;
    }
    for (int64_t v = kLo; v <= kHi; ++v) {
      ASSERT_EQ(set.Contains(v), static_cast<bool>(member[v]))
          << "trial " << trial << " v=" << v;
    }
    const auto& ivs = set.intervals();
    for (size_t i = 1; i < ivs.size(); ++i) {
      ASSERT_TRUE(ivs[i - 1].hi && ivs[i].lo);
      ASSERT_GT(*ivs[i].lo, *ivs[i - 1].hi + 1)
          << "trial " << trial << ": adjacent intervals left unmerged";
    }
  }
}

TEST(IntervalSet, PropertyIntersectionIsSymmetricAndUnionCommutes) {
  Random rng(5113);
  for (int trial = 0; trial < 200; ++trial) {
    IntervalSet a;
    IntervalSet b;
    for (int i = 0; i < 3; ++i) {
      const int64_t lo1 = rng.UniformInt(-30, 30);
      a = IntervalSet::Union(a, Of(lo1, lo1 + rng.UniformInt(0, 12)));
      const int64_t lo2 = rng.UniformInt(-30, 30);
      b = IntervalSet::Union(b, Of(lo2, lo2 + rng.UniformInt(0, 12)));
    }
    const IntervalSet ab = IntervalSet::Intersect(a, b);
    const IntervalSet ba = IntervalSet::Intersect(b, a);
    const IntervalSet uab = IntervalSet::Union(a, b);
    const IntervalSet uba = IntervalSet::Union(b, a);
    for (int64_t v = -50; v <= 50; ++v) {
      ASSERT_EQ(ab.Contains(v), ba.Contains(v)) << v;
      ASSERT_EQ(uab.Contains(v), uba.Contains(v)) << v;
    }
    // Canonical forms are identical structurally, not just pointwise.
    ASSERT_EQ(ab.size(), ba.size());
    ASSERT_EQ(uab.size(), uba.size());
    // Empty-set laws: A ∩ ∅ = ∅ and A ∪ ∅ = A.
    EXPECT_TRUE(IntervalSet::Intersect(a, IntervalSet::Empty()).empty());
    const IntervalSet a_or_empty =
        IntervalSet::Union(a, IntervalSet::Empty());
    for (int64_t v = -50; v <= 50; v += 5) {
      ASSERT_EQ(a_or_empty.Contains(v), a.Contains(v)) << v;
    }
  }
}

}  // namespace
}  // namespace viewmat::db
