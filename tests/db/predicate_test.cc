#include "db/predicate.h"

#include <gtest/gtest.h>

namespace viewmat::db {
namespace {

Tuple Row(int64_t a, int64_t b) { return Tuple({Value(a), Value(b)}); }

TEST(Interval, ContainsRespectsOptionalBounds) {
  EXPECT_TRUE(Interval{}.Contains(-100));
  EXPECT_TRUE((Interval{5, std::nullopt}.Contains(5)));
  EXPECT_FALSE((Interval{5, std::nullopt}.Contains(4)));
  EXPECT_TRUE((Interval{std::nullopt, 5}.Contains(5)));
  EXPECT_FALSE((Interval{std::nullopt, 5}.Contains(6)));
  EXPECT_TRUE((Interval{1, 3}.Contains(2)));
}

TEST(Interval, IntersectAndHull) {
  const Interval a{0, 10};
  const Interval b{5, 20};
  const Interval i = Interval::Intersect(a, b);
  EXPECT_EQ(*i.lo, 5);
  EXPECT_EQ(*i.hi, 10);
  const Interval h = Interval::Hull(a, b);
  EXPECT_EQ(*h.lo, 0);
  EXPECT_EQ(*h.hi, 20);
  // Hull with an unbounded side stays unbounded.
  const Interval hu = Interval::Hull(a, Interval{});
  EXPECT_FALSE(hu.lo.has_value());
  EXPECT_FALSE(hu.hi.has_value());
}

TEST(Predicate, TrueAcceptsEverything) {
  EXPECT_TRUE(Predicate::True()->Evaluate(Row(1, 2)));
}

TEST(Predicate, AllCompareOps) {
  const Tuple t = Row(5, 0);
  auto check = [&](CompareOp op, int64_t rhs, bool want) {
    EXPECT_EQ(Predicate::Compare(0, op, Value(rhs))->Evaluate(t), want)
        << static_cast<int>(op) << " " << rhs;
  };
  check(CompareOp::kEq, 5, true);
  check(CompareOp::kEq, 6, false);
  check(CompareOp::kNe, 5, false);
  check(CompareOp::kNe, 6, true);
  check(CompareOp::kLt, 6, true);
  check(CompareOp::kLt, 5, false);
  check(CompareOp::kLe, 5, true);
  check(CompareOp::kLe, 4, false);
  check(CompareOp::kGt, 4, true);
  check(CompareOp::kGt, 5, false);
  check(CompareOp::kGe, 5, true);
  check(CompareOp::kGe, 6, false);
}

TEST(Predicate, BooleanCombinators) {
  auto lt10 = Predicate::Compare(0, CompareOp::kLt, Value(int64_t{10}));
  auto ge5 = Predicate::Compare(0, CompareOp::kGe, Value(int64_t{5}));
  auto both = Predicate::And(lt10, ge5);
  EXPECT_TRUE(both->Evaluate(Row(7, 0)));
  EXPECT_FALSE(both->Evaluate(Row(3, 0)));
  EXPECT_FALSE(both->Evaluate(Row(12, 0)));
  auto either = Predicate::Or(
      Predicate::Compare(0, CompareOp::kEq, Value(int64_t{1})),
      Predicate::Compare(0, CompareOp::kEq, Value(int64_t{2})));
  EXPECT_TRUE(either->Evaluate(Row(2, 0)));
  EXPECT_FALSE(either->Evaluate(Row(3, 0)));
  auto negated = Predicate::Not(lt10);
  EXPECT_TRUE(negated->Evaluate(Row(12, 0)));
  EXPECT_FALSE(negated->Evaluate(Row(3, 0)));
}

TEST(Predicate, BetweenConvenience) {
  auto p = Predicate::Between(1, 10, 20);
  EXPECT_TRUE(p->Evaluate(Row(0, 10)));
  EXPECT_TRUE(p->Evaluate(Row(0, 20)));
  EXPECT_FALSE(p->Evaluate(Row(0, 9)));
  EXPECT_FALSE(p->Evaluate(Row(0, 21)));
}

TEST(Predicate, ImpliedRangeForComparisons) {
  auto lt = Predicate::Compare(0, CompareOp::kLt, Value(int64_t{10}));
  const Interval r = lt->ImpliedRange(0);
  EXPECT_FALSE(r.lo.has_value());
  EXPECT_EQ(*r.hi, 9);
  auto eq = Predicate::Compare(0, CompareOp::kEq, Value(int64_t{7}));
  const Interval re = eq->ImpliedRange(0);
  EXPECT_EQ(*re.lo, 7);
  EXPECT_EQ(*re.hi, 7);
}

TEST(Predicate, ImpliedRangeOtherFieldUnbounded) {
  auto p = Predicate::Compare(1, CompareOp::kEq, Value(int64_t{7}));
  EXPECT_TRUE(p->ImpliedRange(0).Unbounded());
}

TEST(Predicate, ImpliedRangeAndIntersects) {
  auto p = Predicate::Between(0, 10, 20);
  const Interval r = p->ImpliedRange(0);
  EXPECT_EQ(*r.lo, 10);
  EXPECT_EQ(*r.hi, 20);
}

TEST(Predicate, ImpliedRangeOrTakesHull) {
  auto p = Predicate::Or(Predicate::Between(0, 0, 5),
                         Predicate::Between(0, 100, 105));
  const Interval r = p->ImpliedRange(0);
  EXPECT_EQ(*r.lo, 0);
  EXPECT_EQ(*r.hi, 105);
}

TEST(Predicate, ImpliedRangeIsConservativeSuperset) {
  // Soundness property behind t-lock screening: any tuple satisfying the
  // predicate must fall inside the implied range.
  auto p = Predicate::Or(
      Predicate::And(Predicate::Between(0, 5, 10),
                     Predicate::Compare(1, CompareOp::kGt, Value(int64_t{0}))),
      Predicate::Not(Predicate::Between(0, 0, 100)));
  const Interval r = p->ImpliedRange(0);
  for (int64_t v = -200; v <= 200; ++v) {
    for (int64_t w : {-1, 1}) {
      if (p->Evaluate(Row(v, w))) {
        EXPECT_TRUE(r.Contains(v)) << "v=" << v << " w=" << w;
      }
    }
  }
}

TEST(Predicate, NotIsUnbounded) {
  auto p = Predicate::Not(Predicate::Between(0, 10, 20));
  EXPECT_TRUE(p->ImpliedRange(0).Unbounded());
}

TEST(Predicate, ToStringReadable) {
  const Schema s({Field::Int64("age"), Field::Int64("dept")});
  auto p = Predicate::And(
      Predicate::Compare(0, CompareOp::kGe, Value(int64_t{21})),
      Predicate::Compare(1, CompareOp::kEq, Value(int64_t{5})));
  EXPECT_EQ(p->ToString(&s), "(age >= 21 and dept = 5)");
  EXPECT_EQ(p->ToString(nullptr), "($0 >= 21 and $1 = 5)");
}

}  // namespace
}  // namespace viewmat::db
