#include "db/relation.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "db/catalog.h"

namespace viewmat::db {
namespace {

Schema TestSchema() {
  return Schema({Field::Int64("key"), Field::Int64("aux"),
                 Field::String("tag", 8)});
}

Tuple Row(int64_t key, int64_t aux, const std::string& tag = "t") {
  return Tuple({Value(key), Value(aux), Value(tag)});
}

/// The same behavioural contract must hold for every access method.
class RelationTest : public ::testing::TestWithParam<AccessMethod> {
 protected:
  RelationTest()
      : disk_(512, &tracker_),
        pool_(&disk_, 64),
        rel_(&pool_, "t", TestSchema(), GetParam(), 0) {}

  storage::CostTracker tracker_;
  storage::SimulatedDisk disk_;
  storage::BufferPool pool_;
  Relation rel_;
};

TEST_P(RelationTest, InsertAndFindByKey) {
  ASSERT_TRUE(rel_.Insert(Row(1, 10)).ok());
  ASSERT_TRUE(rel_.Insert(Row(2, 20)).ok());
  Tuple out;
  ASSERT_TRUE(rel_.FindByKey(2, &out).ok());
  EXPECT_EQ(out.at(1).AsInt64(), 20);
  EXPECT_EQ(rel_.FindByKey(3, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(rel_.tuple_count(), 2u);
}

TEST_P(RelationTest, DeleteExactRemovesOneMatch) {
  ASSERT_TRUE(rel_.Insert(Row(5, 1)).ok());
  ASSERT_TRUE(rel_.Insert(Row(5, 2)).ok());
  ASSERT_TRUE(rel_.DeleteExact(Row(5, 1)).ok());
  EXPECT_EQ(rel_.tuple_count(), 1u);
  Tuple out;
  ASSERT_TRUE(rel_.FindByKey(5, &out).ok());
  EXPECT_EQ(out.at(1).AsInt64(), 2);
  EXPECT_EQ(rel_.DeleteExact(Row(5, 1)).code(), StatusCode::kNotFound);
}

TEST_P(RelationTest, DuplicateIdenticalTuplesDeleteOneAtATime) {
  ASSERT_TRUE(rel_.Insert(Row(7, 7)).ok());
  ASSERT_TRUE(rel_.Insert(Row(7, 7)).ok());
  ASSERT_TRUE(rel_.DeleteExact(Row(7, 7)).ok());
  EXPECT_EQ(rel_.tuple_count(), 1u);
  ASSERT_TRUE(rel_.DeleteExact(Row(7, 7)).ok());
  EXPECT_EQ(rel_.tuple_count(), 0u);
}

TEST_P(RelationTest, UpdateExactSameKeyInPlace) {
  ASSERT_TRUE(rel_.Insert(Row(3, 30, "old")).ok());
  ASSERT_TRUE(rel_.UpdateExact(Row(3, 30, "old"), Row(3, 31, "new")).ok());
  Tuple out;
  ASSERT_TRUE(rel_.FindByKey(3, &out).ok());
  EXPECT_EQ(out.at(1).AsInt64(), 31);
  EXPECT_EQ(out.at(2).AsString(), "new");
  EXPECT_EQ(rel_.tuple_count(), 1u);
}

TEST_P(RelationTest, UpdateExactKeyChangeMoves) {
  ASSERT_TRUE(rel_.Insert(Row(3, 30)).ok());
  ASSERT_TRUE(rel_.UpdateExact(Row(3, 30), Row(4, 30)).ok());
  Tuple out;
  EXPECT_EQ(rel_.FindByKey(3, &out).code(), StatusCode::kNotFound);
  ASSERT_TRUE(rel_.FindByKey(4, &out).ok());
}

TEST_P(RelationTest, UpdateMissingTupleFails) {
  EXPECT_EQ(rel_.UpdateExact(Row(9, 9), Row(9, 10)).code(),
            StatusCode::kNotFound);
}

TEST_P(RelationTest, FindAllByKeyVisitsDuplicates) {
  for (int64_t aux = 0; aux < 5; ++aux) {
    ASSERT_TRUE(rel_.Insert(Row(8, aux)).ok());
  }
  std::vector<int64_t> auxes;
  ASSERT_TRUE(rel_.FindAllByKey(8, [&](const Tuple& t) {
    auxes.push_back(t.at(1).AsInt64());
    return true;
  }).ok());
  std::sort(auxes.begin(), auxes.end());
  EXPECT_EQ(auxes, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST_P(RelationTest, ScanCoversEverything) {
  Random rng(3);
  std::vector<int64_t> keys;
  for (int i = 0; i < 300; ++i) {
    const int64_t k = rng.UniformInt(0, 10000);
    keys.push_back(k);
    ASSERT_TRUE(rel_.Insert(Row(k, i)).ok());
  }
  size_t seen = 0;
  ASSERT_TRUE(rel_.Scan([&](const Tuple&) {
    ++seen;
    return true;
  }).ok());
  EXPECT_EQ(seen, keys.size());
}

TEST_P(RelationTest, RangeScanWhereSupported) {
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(rel_.Insert(Row(k, k)).ok());
  }
  std::vector<int64_t> seen;
  const Status st = rel_.RangeScanByKey(10, 14, [&](const Tuple& t) {
    seen.push_back(t.at(0).AsInt64());
    return true;
  });
  if (GetParam() == AccessMethod::kClusteredHash) {
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    return;
  }
  ASSERT_TRUE(st.ok());
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int64_t>{10, 11, 12, 13, 14}));
}

INSTANTIATE_TEST_SUITE_P(
    AllAccessMethods, RelationTest,
    ::testing::Values(AccessMethod::kClusteredBTree,
                      AccessMethod::kClusteredHash, AccessMethod::kHeap),
    [](const ::testing::TestParamInfo<AccessMethod>& info) {
      switch (info.param) {
        case AccessMethod::kClusteredBTree:
          return "btree";
        case AccessMethod::kClusteredHash:
          return "hash";
        case AccessMethod::kHeap:
          return "heap";
      }
      return "unknown";
    });

TEST(RelationBTree, RangeScanIsKeyOrdered) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 64);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);
  Random rng(5);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(rel.Insert(Row(rng.UniformInt(0, 1000), i)).ok());
  }
  int64_t prev = -1;
  ASSERT_TRUE(rel.RangeScanByKey(0, 1000, [&](const Tuple& t) {
    EXPECT_GE(t.at(0).AsInt64(), prev);
    prev = t.at(0).AsInt64();
    return true;
  }).ok());
}

TEST(RelationBTree, BulkLoadSortedPacksAndServes) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 64);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);
  int64_t next = 0;
  ASSERT_TRUE(rel.BulkLoadSorted([&](Tuple* t) {
    if (next >= 500) return false;
    *t = Row(next, next * 2);
    ++next;
    return true;
  }).ok());
  EXPECT_EQ(rel.tuple_count(), 500u);
  Tuple out;
  ASSERT_TRUE(rel.FindByKey(123, &out).ok());
  EXPECT_EQ(out.at(1).AsInt64(), 246);
  // Non-empty and non-btree relations refuse.
  EXPECT_EQ(rel.BulkLoadSorted([](Tuple*) { return false; }).code(),
            StatusCode::kFailedPrecondition);
  Relation hash_rel(&pool, "h", TestSchema(), AccessMethod::kClusteredHash,
                    0);
  EXPECT_EQ(hash_rel.BulkLoadSorted([](Tuple*) { return false; }).code(),
            StatusCode::kInvalidArgument);
}

TEST(RelationBTree, CompactAfterChurnKeepsContents) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 64);
  Relation rel(&pool, "t", TestSchema(), AccessMethod::kClusteredBTree, 0);
  for (int64_t k = 0; k < 600; ++k) {
    ASSERT_TRUE(rel.Insert(Row(k, k)).ok());
  }
  for (int64_t k = 100; k < 500; ++k) {
    ASSERT_TRUE(rel.DeleteExact(Row(k, k)).ok());
  }
  ASSERT_TRUE(rel.Compact().ok());
  EXPECT_EQ(rel.tuple_count(), 200u);
  size_t seen = 0;
  ASSERT_TRUE(rel.Scan([&](const Tuple&) {
    ++seen;
    return true;
  }).ok());
  EXPECT_EQ(seen, 200u);
}

TEST(Catalog, CreateGetDrop) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(512, &tracker);
  storage::BufferPool pool(&disk, 16);
  Catalog catalog(&pool);
  auto rel = catalog.CreateRelation("emp", TestSchema(),
                                    AccessMethod::kClusteredBTree, 0);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(catalog.relation_count(), 1u);
  EXPECT_EQ(*catalog.Get("emp"), *rel);
  EXPECT_EQ(catalog
                .CreateRelation("emp", TestSchema(),
                                AccessMethod::kClusteredBTree, 0)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.Get("none").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(catalog.Drop("emp").ok());
  EXPECT_EQ(catalog.Drop("emp").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace viewmat::db
