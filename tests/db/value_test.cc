#include "db/value.h"

#include <gtest/gtest.h>

namespace viewmat::db {
namespace {

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(std::string("hi")).type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t{5}).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value(std::string("hi")).AsString(), "hi");
}

TEST(Value, DefaultIsZeroInt) {
  const Value v;
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt64(), 0);
}

TEST(Value, NumericConversions) {
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).Numeric(), 7.0);
  EXPECT_DOUBLE_EQ(Value(1.5).Numeric(), 1.5);
}

TEST(Value, CompareIntegers) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(int64_t{2})), 0);
  EXPECT_GT(Value(int64_t{3}).Compare(Value(int64_t{2})), 0);
}

TEST(Value, CompareStrings) {
  EXPECT_LT(Value(std::string("abc")).Compare(Value(std::string("abd"))), 0);
  EXPECT_EQ(Value(std::string("x")).Compare(Value(std::string("x"))), 0);
  EXPECT_GT(Value(std::string("b")).Compare(Value(std::string("ab"))), 0);
}

TEST(Value, CompareDoubles) {
  EXPECT_LT(Value(1.0).Compare(Value(1.5)), 0);
  EXPECT_EQ(Value(1.5).Compare(Value(1.5)), 0);
}

TEST(Value, EqualityIsTypeAware) {
  EXPECT_TRUE(Value(int64_t{1}) == Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(1.0));  // different types
  EXPECT_FALSE(Value(int64_t{1}) == Value(int64_t{2}));
}

TEST(Value, ToStringFormats) {
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value(std::string("abc")).ToString(), "abc");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(Value, HashDistinguishesValuesAndTypes) {
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(1.0).Hash());
  EXPECT_NE(Value(std::string("a")).Hash(), Value(std::string("b")).Hash());
  EXPECT_EQ(Value(int64_t{42}).Hash(), Value(int64_t{42}).Hash());
}

TEST(Value, OrderingOperator) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_FALSE(Value(int64_t{2}) < Value(int64_t{1}));
}

}  // namespace
}  // namespace viewmat::db
