#include "obs/explain.h"

#include <cmath>
#include <string>

#include "common/json.h"
#include "costmodel/regions.h"
#include "gtest/gtest.h"

namespace viewmat::obs {
namespace {

using costmodel::ModelCandidates;
using costmodel::ModelCostFn;
using costmodel::Params;
using costmodel::Strategy;

TEST(Explain, RanksEveryCandidateAscendingWithWinnerMarginZero) {
  const Params p;
  for (int model = 1; model <= 3; ++model) {
    const ExplainReport report = BuildExplain(model, p);
    EXPECT_EQ(report.model, model);
    ASSERT_EQ(report.ranked.size(), ModelCandidates(model).size());
    EXPECT_DOUBLE_EQ(report.ranked.front().margin_ms, 0.0);
    for (size_t i = 1; i < report.ranked.size(); ++i) {
      EXPECT_GE(report.ranked[i].cost_ms, report.ranked[i - 1].cost_ms);
      EXPECT_NEAR(report.ranked[i].margin_ms,
                  report.ranked[i].cost_ms - report.winner_cost_ms(), 1e-9);
    }
    EXPECT_FALSE(report.ranked.front().formula.empty());
  }
}

TEST(Explain, WinnerAgreesWithTheSharedCostModel) {
  Params p;
  for (const double prob : {0.05, 0.3, 0.7}) {
    const Params point = p.WithUpdateProbability(prob);
    for (int model = 1; model <= 3; ++model) {
      const ExplainReport report = BuildExplain(model, point);
      const Strategy expected = costmodel::Winner(
          ModelCostFn(model), ModelCandidates(model), point);
      EXPECT_EQ(report.winner(), expected)
          << "model " << model << " P=" << prob;
    }
  }
}

TEST(Explain, BoundariesActuallyFlipTheWinner) {
  // For every reported boundary, the challenger must win just beyond it.
  const Params p = Params().WithUpdateProbability(0.3);
  for (int model = 1; model <= 3; ++model) {
    const ExplainReport report = BuildExplain(model, p);
    const auto cost = ModelCostFn(model);
    for (const ExplainBoundary& b : report.boundaries) {
      Params beyond = p;
      // Step slightly past the boundary, away from the current value.
      const double overshoot =
          (b.boundary - b.current) * 1e-3 + (b.boundary > b.current ? 1e-9
                                                                    : -1e-9);
      const double x = b.boundary + overshoot;
      if (b.param == "P") {
        beyond = p.WithUpdateProbability(x);
      } else if (b.param == "f") {
        beyond.f = x;
      } else if (b.param == "f_v") {
        beyond.f_v = x;
      } else if (b.param == "l") {
        beyond.l = x;
      } else {
        FAIL() << "unknown boundary axis " << b.param;
      }
      const Strategy flipped = costmodel::Winner(
          cost, ModelCandidates(model), beyond);
      EXPECT_NE(flipped, report.winner())
          << "model " << model << " axis " << b.param << " boundary "
          << b.boundary;
      EXPECT_GT(b.distance, 0.0);
      EXPECT_GT(b.relative_distance, 0.0);
    }
    // Boundaries are sorted nearest-first by relative distance.
    for (size_t i = 1; i < report.boundaries.size(); ++i) {
      EXPECT_GE(report.boundaries[i].relative_distance,
                report.boundaries[i - 1].relative_distance);
    }
  }
}

TEST(Explain, TextRendersWinnerAndBoundaries) {
  const ExplainReport report =
      BuildExplain(1, Params().WithUpdateProbability(0.3));
  const std::string text = ExplainText(report);
  EXPECT_NE(text.find("<-- winner"), std::string::npos);
  EXPECT_NE(text.find("TOTAL_"), std::string::npos);
}

TEST(Explain, JsonIsParseableAndCarriesTheRanking) {
  const ExplainReport report =
      BuildExplain(2, Params().WithUpdateProbability(0.4));
  common::JsonWriter w;
  WriteExplainJson(&w, report);
  auto doc = common::ParseJson(w.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const common::JsonValue* model = doc->Find("model");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->number, 2.0);
  const common::JsonValue* candidates = doc->Find("candidates");
  ASSERT_NE(candidates, nullptr);
  EXPECT_EQ(candidates->items.size(), ModelCandidates(2).size());
  ASSERT_NE(doc->Find("winner"), nullptr);
  ASSERT_NE(doc->Find("params"), nullptr);
  ASSERT_NE(doc->Find("boundaries"), nullptr);
}

}  // namespace
}  // namespace viewmat::obs
