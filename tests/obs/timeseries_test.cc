#include "obs/timeseries.h"

#include <cmath>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace viewmat::obs {
namespace {

// ---------------------------------------------------------------- counters

TEST(WindowedCounter, EmptyWindowsCostNothingAndReadZero) {
  WindowedCounter c(100.0);
  c.Add(50.0);       // window 0
  c.Add(100250.0);   // window 1002, a thousand idle windows later
  EXPECT_EQ(c.total(), 2u);
  const auto windows = c.Snapshot();
  ASSERT_EQ(windows.size(), 2u);  // sparse: the idle gap stores nothing
  EXPECT_EQ(windows[0].index, 0);
  EXPECT_EQ(windows[1].index, 1002);
  EXPECT_EQ(c.CountAt(550.0), 0u);  // an empty window reads zero
}

TEST(WindowedCounter, BoundarySampleOpensTheNextWindow) {
  WindowedCounter c(100.0);
  c.Add(99.999999);
  c.Add(100.0);  // half-open [0,100): exactly 100 belongs to window 1
  const auto windows = c.Snapshot();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].index, 0);
  EXPECT_EQ(windows[0].count, 1u);
  EXPECT_EQ(windows[1].index, 1);
  EXPECT_EQ(windows[1].count, 1u);
}

// ------------------------------------------------------------------- ewma

TEST(EwmaGauge, FirstSampleSetsTheAverageDirectly) {
  EwmaGauge g(50.0);
  EXPECT_EQ(g.value(), 0.0);
  g.Observe(10.0, 42.0);
  EXPECT_DOUBLE_EQ(g.value(), 42.0);
}

TEST(EwmaGauge, OneHalfLifeMovesHalfway) {
  EwmaGauge g(50.0);
  g.Observe(0.0, 100.0);
  g.Observe(50.0, 0.0);  // dt = one half-life: weight of the past is 1/2
  EXPECT_NEAR(g.value(), 50.0, 1e-12);
}

TEST(EwmaGauge, FirstSampleAtTimeZeroIsExact) {
  // t = 0 coincides with the default last_t_ms_; the first-sample branch
  // must not mistake that for "dt = 0 since a previous sample" and blend
  // 42 with the initial 0.
  EwmaGauge g(50.0);
  g.Observe(0.0, 42.0);
  EXPECT_DOUBLE_EQ(g.value(), 42.0);
  EXPECT_EQ(g.count(), 1u);
}

TEST(EwmaGauge, ObservedOnceReportsThatSampleExactly) {
  // Exact equality, not NEAR: a gauge with one observation IS that
  // observation, wherever in time it landed and whatever the half-life.
  for (const double half_life : {1e-3, 50.0, 1e9}) {
    for (const double t : {-100.0, 0.0, 1e-9, 1e12}) {
      EwmaGauge g(half_life);
      EXPECT_EQ(g.count(), 0u);
      g.Observe(t, 0.125);
      EXPECT_EQ(g.value(), 0.125)
          << "half_life=" << half_life << " t=" << t;
      EXPECT_EQ(g.count(), 1u);
    }
  }
}

// -------------------------------------------------- sliding-window histogram

std::vector<double> Bounds() { return {1.0, 10.0, 100.0}; }

TEST(SlidingWindowHistogram, EmptyWindowQuantileIsZero) {
  SlidingWindowHistogram h(Bounds(), 100.0, 4);
  EXPECT_EQ(h.MergedCount(0.0), 0u);
  EXPECT_EQ(h.Quantile(0.0, 0.5), 0.0);
  // Observed long ago, then queried in a far-future window: every ring slot
  // has rotated out, so the merged window is empty again.
  h.Observe(0.0, 5.0);
  EXPECT_EQ(h.MergedCount(1e9), 0u);
  EXPECT_EQ(h.Quantile(1e9, 0.5), 0.0);
}

TEST(SlidingWindowHistogram, SingleSampleReportsItsBucketAtEveryQuantile) {
  SlidingWindowHistogram h(Bounds(), 100.0, 4);
  h.Observe(10.0, 5.0);  // bucket (1, 10]
  EXPECT_EQ(h.MergedCount(10.0), 1u);
  for (const double q : {0.01, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(h.Quantile(10.0, q), 10.0) << "q=" << q;
  }
}

TEST(SlidingWindowHistogram, QuantileSaturatesAtLargestFiniteBound) {
  SlidingWindowHistogram h(Bounds(), 100.0, 4);
  h.Observe(10.0, 1e6);  // lands in the +inf bucket
  EXPECT_EQ(h.Quantile(10.0, 0.5), 100.0);
}

TEST(SlidingWindowHistogram, RotationExactlyOnWindowBoundary) {
  // Ring of 2 windows of 100 ms. A sample at exactly t = k*100 opens window
  // k (half-open convention), which must recycle the slot window k-2 held.
  SlidingWindowHistogram h(Bounds(), 100.0, 2);
  h.Observe(0.0, 0.5);    // window 0, bucket (..1]
  h.Observe(100.0, 5.0);  // window 1 — exactly on the boundary
  // Both windows are inside the 2-window ring.
  EXPECT_EQ(h.MergedCount(100.0), 2u);
  EXPECT_EQ(h.Quantile(100.0, 0.25), 1.0);
  h.Observe(200.0, 50.0);  // window 2 — recycles window 0's slot in place
  EXPECT_EQ(h.MergedCount(200.0), 2u);  // windows 1 and 2; window 0 gone
  auto counts = h.MergedCounts(200.0);
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 0u);  // the 0.5 sample rotated out
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  // A stale sample for the rotated-out window 0 is dropped, not revived.
  h.Observe(10.0, 0.5);
  EXPECT_EQ(h.MergedCount(200.0), 2u);
}

TEST(SlidingWindowHistogram, MergedCountsSpanOnlyTheTrailingWindows) {
  SlidingWindowHistogram h(Bounds(), 100.0, 3);
  h.Observe(50.0, 5.0);    // window 0
  h.Observe(150.0, 5.0);   // window 1
  h.Observe(250.0, 5.0);   // window 2
  EXPECT_EQ(h.MergedCount(250.0), 3u);
  // Viewed from window 3 the trailing 3 windows are {1, 2, 3}.
  EXPECT_EQ(h.MergedCount(350.0), 2u);
}

TEST(SlidingWindowHistogram, MergeOnSnapshotUnderEightThreads) {
  // Eight workers hammer one shared histogram within a fixed window, then
  // the merged snapshot must account for every sample exactly once. This is
  // the --jobs 8 sharing shape; determinism of *timestamps* stays with the
  // caller, so all samples target the same window here.
  SlidingWindowHistogram h(Bounds(), 1000.0, 4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&h, w] {
      for (int i = 0; i < kPerThread; ++i) {
        // Spread across buckets deterministically per thread.
        const double v = (w % 2 == 0) ? 0.5 : 50.0;
        h.Observe(500.0, v);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(h.MergedCount(500.0), uint64_t{kThreads} * kPerThread);
  const auto counts = h.MergedCounts(500.0);
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], uint64_t{kThreads} / 2 * kPerThread);
  EXPECT_EQ(counts[2], uint64_t{kThreads} / 2 * kPerThread);
}

TEST(WindowedCounter, MergeOnSnapshotUnderEightThreads) {
  WindowedCounter c(100.0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&c, w] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Add(100.0 * (w % 4) + 50.0);  // four distinct windows
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(c.total(), uint64_t{kThreads} * kPerThread);
  const auto windows = c.Snapshot();
  ASSERT_EQ(windows.size(), 4u);
  for (const auto& w : windows) {
    EXPECT_EQ(w.count, uint64_t{2} * kPerThread);
  }
}

}  // namespace
}  // namespace viewmat::obs
