#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/json.h"

namespace viewmat::obs {
namespace {

/// Test clock: time only advances when the test says so.
class FakeClock : public VirtualClock {
 public:
  double NowMs() const override { return now_ms_; }
  void Advance(double ms) { now_ms_ += ms; }

 private:
  double now_ms_ = 0;
};

TEST(Tracer, GoldenToStringTree) {
  FakeClock clock;
  Tracer tracer(&clock);
  tracer.NewTrack("deferred");
  const uint32_t outer = tracer.BeginSpan("query");
  clock.Advance(30.0);
  const uint32_t inner = tracer.BeginSpan("screen");
  clock.Advance(1.5);
  tracer.EndSpan(inner);
  clock.Advance(30.0);
  tracer.EndSpan(outer);
  tracer.NewTrack("immediate");
  const uint32_t other = tracer.BeginSpan("update_apply");
  clock.Advance(2.0);
  tracer.EndSpan(other);

  EXPECT_EQ(tracer.ToString(),
            "track 1: deferred\n"
            "  query [0.000..61.500] 61.500 ms\n"
            "    screen [30.000..31.500] 1.500 ms\n"
            "track 2: immediate\n"
            "  update_apply [61.500..63.500] 2.000 ms\n");
}

TEST(Tracer, EndSpanIsIdempotentAndClosesNestedOrphans) {
  FakeClock clock;
  Tracer tracer(&clock);
  tracer.NewTrack("t");
  const uint32_t outer = tracer.BeginSpan("outer");
  clock.Advance(1.0);
  tracer.BeginSpan("orphan");  // never explicitly ended
  clock.Advance(1.0);
  tracer.EndSpan(outer);  // closes orphan at outer's end time
  ASSERT_EQ(tracer.span_count(), 2u);
  EXPECT_DOUBLE_EQ(tracer.spans()[0].end_ms, 2.0);
  EXPECT_DOUBLE_EQ(tracer.spans()[1].end_ms, 2.0);

  clock.Advance(5.0);
  tracer.EndSpan(outer);  // idempotent: end time unchanged
  EXPECT_DOUBLE_EQ(tracer.spans()[0].end_ms, 2.0);
  tracer.EndSpan(0);    // invalid handles are ignored
  tracer.EndSpan(999);
}

TEST(Tracer, NewTrackClosesOpenSpans) {
  FakeClock clock;
  Tracer tracer(&clock);
  tracer.NewTrack("a");
  tracer.BeginSpan("left_open");
  clock.Advance(3.0);
  tracer.NewTrack("b");  // closes and flushes the open span
  ASSERT_EQ(tracer.span_count(), 1u);
  EXPECT_DOUBLE_EQ(tracer.spans()[0].end_ms, 3.0);
  // Spans after the switch land on the new track with no stale parent.
  // Handles are thread-local, so inspect the span once its tree flushes.
  const uint32_t h = tracer.BeginSpan("fresh");
  tracer.EndSpan(h);
  ASSERT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.spans().back().track, 2u);
  EXPECT_EQ(tracer.spans().back().parent, 0u);
}

TEST(Tracer, OpenSpansAreInvisibleUntilTheirRootCloses) {
  FakeClock clock;
  Tracer tracer(&clock);
  tracer.NewTrack("t");
  const uint32_t outer = tracer.BeginSpan("outer");
  const uint32_t inner = tracer.BeginSpan("inner");
  EXPECT_EQ(tracer.span_count(), 0u);  // tree still open: nothing published
  tracer.EndSpan(inner);
  EXPECT_EQ(tracer.span_count(), 0u);
  tracer.EndSpan(outer);  // root closed: the whole tree appears at once
  ASSERT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.spans()[0].name, "outer");
  EXPECT_EQ(tracer.spans()[1].parent, 1u);
}

TEST(Tracer, ScopedSpanWithNullTracerIsANoOp) {
  ScopedSpan span(nullptr, "nothing");
  span.End();  // safe on null, and again via the destructor
}

TEST(Tracer, ScopedSpanEndIsIdempotent) {
  FakeClock clock;
  Tracer tracer(&clock);
  tracer.NewTrack("t");
  {
    ScopedSpan span(&tracer, "work");
    clock.Advance(4.0);
    span.End();
    clock.Advance(4.0);  // destructor must not reopen or re-close
  }
  ASSERT_EQ(tracer.span_count(), 1u);
  EXPECT_DOUBLE_EQ(tracer.spans()[0].end_ms, 4.0);
}

TEST(Tracer, ChromeTraceJsonParsesWithExpectedEvents) {
  FakeClock clock;
  Tracer tracer(&clock);
  tracer.NewTrack("run");
  const uint32_t h = tracer.BeginSpan("query");
  clock.Advance(2.5);
  tracer.EndSpan(h);

  auto parsed = common::ParseJson(tracer.ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("displayTimeUnit")->string_value, "ms");
  const auto* events = parsed->Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  ASSERT_EQ(events->items.size(), 2u);  // one M metadata + one X span
  const auto& meta = events->items[0];
  EXPECT_EQ(meta.Find("ph")->string_value, "M");
  EXPECT_EQ(meta.Find("args")->Find("name")->string_value, "run");
  const auto& x = events->items[1];
  EXPECT_EQ(x.Find("ph")->string_value, "X");
  EXPECT_EQ(x.Find("name")->string_value, "query");
  EXPECT_EQ(x.Find("ts")->number, 0.0);
  EXPECT_EQ(x.Find("dur")->number, 2500.0);  // 2.5 model-ms → trace-us
  EXPECT_EQ(x.Find("tid")->number, 1);
}

TEST(Tracer, ClearResetsEverything) {
  FakeClock clock;
  Tracer tracer(&clock);
  tracer.NewTrack("t");
  tracer.BeginSpan("s");
  tracer.Clear();
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.ToString(), "");
}

/// Many threads record complete trees concurrently (no clock — times stay
/// zero, which keeps the shared FakeClock out of the race surface). Every
/// tree must land intact: contiguous, parents pointing inside the same
/// tree, on the recording thread's own track.
TEST(Tracer, ConcurrentThreadsFlushIntactTrees) {
  Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kTreesPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      const uint32_t track =
          tracer.NewTrack("worker" + std::to_string(t));
      for (int tree = 0; tree < kTreesPerThread; ++tree) {
        const uint32_t root = tracer.BeginSpan("root");
        const uint32_t mid = tracer.BeginSpan("mid");
        const uint32_t leaf = tracer.BeginSpan("leaf");
        tracer.EndSpan(leaf);
        tracer.EndSpan(mid);
        // Reads while others record must be safe (and see whole trees).
        EXPECT_EQ(tracer.span_count() % 3, 0u);
        tracer.EndSpan(root);
      }
      (void)track;
    });
  }
  for (std::thread& th : threads) th.join();

  const std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(),
            static_cast<size_t>(kThreads * kTreesPerThread * 3));
  for (size_t i = 0; i < spans.size(); i += 3) {
    EXPECT_EQ(spans[i].name, "root");
    EXPECT_EQ(spans[i].parent, 0u);
    EXPECT_EQ(spans[i + 1].name, "mid");
    EXPECT_EQ(spans[i + 1].parent, static_cast<uint32_t>(i + 1));
    EXPECT_EQ(spans[i + 2].name, "leaf");
    EXPECT_EQ(spans[i + 2].parent, static_cast<uint32_t>(i + 2));
    EXPECT_EQ(spans[i + 1].track, spans[i].track);
    EXPECT_EQ(spans[i + 2].track, spans[i].track);
  }
}

}  // namespace
}  // namespace viewmat::obs
