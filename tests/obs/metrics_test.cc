#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/json.h"

namespace viewmat::obs {
namespace {

TEST(MetricsRegistry, CountersArePointerStablePerNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("ops_total", {{"strategy", "deferred"}});
  Counter* b = registry.GetCounter("ops_total", {{"strategy", "deferred"}});
  Counter* c = registry.GetCounter("ops_total", {{"strategy", "immediate"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Increment();
  a->Increment(4);
  EXPECT_EQ(b->value(), 5u);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(registry.counter_count(), 2u);
}

TEST(MetricsRegistry, HistogramBucketsAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("ms", {}, {10.0, 100.0});
  h->Observe(10.0);   // first bucket (inclusive)
  h->Observe(10.5);   // second bucket
  h->Observe(1000.0); // +inf bucket
  ASSERT_EQ(h->counts().size(), 3u);
  EXPECT_EQ(h->counts()[0], 1u);
  EXPECT_EQ(h->counts()[1], 1u);
  EXPECT_EQ(h->counts()[2], 1u);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 1020.5);
  // Bounds apply on first registration only.
  Histogram* again = registry.GetHistogram("ms", {}, {1.0});
  EXPECT_EQ(again, h);
  EXPECT_EQ(again->bounds().size(), 2u);
}

TEST(MetricsRegistry, LabelOrderIsCanonicalized) {
  MetricsRegistry registry;
  // Permuted label order resolves to the SAME metric...
  Counter* a = registry.GetCounter("ops_total",
                                   {{"strategy", "deferred"}, {"model", "1"}});
  Counter* b = registry.GetCounter("ops_total",
                                   {{"model", "1"}, {"strategy", "deferred"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.counter_count(), 1u);
  a->Increment(3);
  // ...and snapshots render the labels in sorted order regardless of which
  // permutation registered first (byte-stable output).
  EXPECT_NE(registry.ToString().find("ops_total{model=1,strategy=deferred} 3"),
            std::string::npos)
      << registry.ToString();
  // Same canonicalization for histograms.
  Histogram* h = registry.GetHistogram("ms", {{"b", "2"}, {"a", "1"}}, {10.0});
  EXPECT_EQ(registry.GetHistogram("ms", {{"a", "1"}, {"b", "2"}}, {99.0}), h);
  EXPECT_EQ(registry.histogram_count(), 1u);
  EXPECT_NE(registry.ToString().find("ms{a=1,b=2}"), std::string::npos)
      << registry.ToString();
}

TEST(MetricsRegistry, ToStringIsSortedAndLabeled) {
  MetricsRegistry registry;
  registry.GetCounter("z_total")->Increment(2);
  registry.GetCounter("a_total", {{"k", "v"}})->Increment();
  const std::string text = registry.ToString();
  const size_t a_pos = text.find("a_total{k=v} 1");
  const size_t z_pos = text.find("z_total 2");
  ASSERT_NE(a_pos, std::string::npos) << text;
  ASSERT_NE(z_pos, std::string::npos) << text;
  EXPECT_LT(a_pos, z_pos);
}

TEST(MetricsRegistry, WriteJsonProducesParseableDocument) {
  MetricsRegistry registry;
  registry.GetCounter("ops_total", {{"strategy", "deferred"}})->Increment(7);
  registry.GetHistogram("ms", {{"strategy", "deferred"}}, {30.0, 300.0})
      ->Observe(42.0);

  common::JsonWriter w;
  registry.WriteJson(&w);
  auto parsed = common::ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << w.str();

  const auto* counters = parsed->Find("counters");
  ASSERT_TRUE(counters != nullptr && counters->is_array());
  ASSERT_EQ(counters->items.size(), 1u);
  EXPECT_EQ(counters->items[0].Find("name")->string_value, "ops_total");
  EXPECT_EQ(counters->items[0].Find("value")->number, 7);

  const auto* histograms = parsed->Find("histograms");
  ASSERT_TRUE(histograms != nullptr && histograms->is_array());
  ASSERT_EQ(histograms->items.size(), 1u);
  const auto& h = histograms->items[0];
  EXPECT_EQ(h.Find("count")->number, 1);
  EXPECT_EQ(h.Find("sum")->number, 42);
  EXPECT_EQ(h.Find("bounds")->items.size(), 2u);
  EXPECT_EQ(h.Find("counts")->items.size(), 3u);
}

/// N threads hammer the same counter, per-thread counters, and one shared
/// histogram. Totals must be exact — lost updates would show up as
/// undercounts, and TSan would flag any unsynchronized access.
TEST(MetricsRegistry, ConcurrentUpdatesAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Counter* shared = registry.GetCounter("shared_total");
      Counter* mine = registry.GetCounter(
          "per_thread_total", {{"thread", std::to_string(t)}});
      Histogram* h = registry.GetHistogram("obs_ms", {}, {10.0, 100.0});
      for (int i = 0; i < kIters; ++i) {
        shared->Increment();
        mine->Increment(2);
        h->Observe(static_cast<double>(i % 200));
        if (i % 1000 == 0) {
          // Snapshots while other threads write must be safe.
          (void)registry.ToString();
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(registry.GetCounter("shared_total")->value(),
            static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry
                  .GetCounter("per_thread_total",
                              {{"thread", std::to_string(t)}})
                  ->value(),
              static_cast<uint64_t>(2 * kIters));
  }
  Histogram* h = registry.GetHistogram("obs_ms", {}, {10.0, 100.0});
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace viewmat::obs
