#include "hr/ad_file.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace viewmat::hr {
namespace {

db::Schema TestSchema() {
  return db::Schema({db::Field::Int64("key"), db::Field::Int64("aux")});
}

db::Tuple Row(int64_t key, int64_t aux) {
  return db::Tuple({db::Value(key), db::Value(aux)});
}

class AdFileTest : public ::testing::Test {
 protected:
  AdFileTest()
      : disk_(512, &tracker_),
        pool_(&disk_, 32),
        ad_(&pool_, TestSchema(), 0, AdFile::Options{4, 128, 0.01}) {}

  storage::CostTracker tracker_;
  storage::SimulatedDisk disk_;
  storage::BufferPool pool_;
  AdFile ad_;
};

TEST_F(AdFileTest, RecordInsertShowsUpInNet) {
  ASSERT_TRUE(ad_.RecordInsert(Row(1, 10)).ok());
  std::vector<db::Tuple> a, d;
  ASSERT_TRUE(ad_.ScanNet(&a, &d).ok());
  ASSERT_EQ(a.size(), 1u);
  EXPECT_TRUE(a[0] == Row(1, 10));
  EXPECT_TRUE(d.empty());
}

TEST_F(AdFileTest, InsertThenDeleteNetsToNothing) {
  ASSERT_TRUE(ad_.RecordInsert(Row(1, 10)).ok());
  ASSERT_TRUE(ad_.RecordDelete(Row(1, 10)).ok());
  std::vector<db::Tuple> a, d;
  ASSERT_TRUE(ad_.ScanNet(&a, &d).ok());
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(ad_.entry_count(), 0u);
}

TEST_F(AdFileTest, DeleteThenReinsertNetsToNothing) {
  ASSERT_TRUE(ad_.RecordDelete(Row(2, 5)).ok());
  ASSERT_TRUE(ad_.RecordInsert(Row(2, 5)).ok());
  std::vector<db::Tuple> a, d;
  ASSERT_TRUE(ad_.ScanNet(&a, &d).ok());
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(d.empty());
}

TEST_F(AdFileTest, UpdateKeepsOldAndNewVersions) {
  // The paper's modify rule: old value into D, new value into A — same key,
  // same bucket page.
  ASSERT_TRUE(ad_.RecordDelete(Row(3, 1)).ok());
  ASSERT_TRUE(ad_.RecordInsert(Row(3, 2)).ok());
  std::vector<db::Tuple> a, d;
  ASSERT_TRUE(ad_.ScanNet(&a, &d).ok());
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_TRUE(a[0] == Row(3, 2));
  EXPECT_TRUE(d[0] == Row(3, 1));
}

TEST_F(AdFileTest, BloomScreensAbsentKeys) {
  for (int64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(ad_.RecordInsert(Row(k, k)).ok());
  }
  // Every recorded key must be admitted (no false negatives).
  for (int64_t k = 0; k < 50; ++k) {
    EXPECT_TRUE(ad_.MightContainKey(k)) << k;
  }
  // Most absent keys must be screened out.
  int admitted = 0;
  for (int64_t k = 1000; k < 2000; ++k) {
    if (ad_.MightContainKey(k)) ++admitted;
  }
  EXPECT_LT(admitted, 100);  // << 10% false drops
}

TEST_F(AdFileTest, VisitKeyReturnsRolesAndValues) {
  ASSERT_TRUE(ad_.RecordDelete(Row(7, 1)).ok());
  ASSERT_TRUE(ad_.RecordInsert(Row(7, 2)).ok());
  int appended = 0, deleted = 0;
  ASSERT_TRUE(ad_.VisitKey(7, [&](AdFile::Role role, const db::Tuple& t) {
    if (role == AdFile::Role::kAppended) {
      EXPECT_TRUE(t == Row(7, 2));
      ++appended;
    } else {
      EXPECT_TRUE(t == Row(7, 1));
      ++deleted;
    }
    return true;
  }).ok());
  EXPECT_EQ(appended, 1);
  EXPECT_EQ(deleted, 1);
}

TEST_F(AdFileTest, ResetClearsFileAndBloom) {
  for (int64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(ad_.RecordInsert(Row(k, k)).ok());
  }
  ASSERT_TRUE(ad_.Reset().ok());
  EXPECT_EQ(ad_.entry_count(), 0u);
  EXPECT_EQ(ad_.page_count(), 0u);
  EXPECT_FALSE(ad_.MightContainKey(5));
  std::vector<db::Tuple> a, d;
  ASSERT_TRUE(ad_.ScanNet(&a, &d).ok());
  EXPECT_TRUE(a.empty());
}

TEST_F(AdFileTest, ManyUpdatesStayCompact) {
  // Re-updating the same keys must not grow the file unboundedly: each
  // update replaces the pending A entry for that tuple chain.
  Random rng(9);
  std::vector<int64_t> vals(10, 0);
  for (int round = 0; round < 200; ++round) {
    const int64_t key = rng.UniformInt(0, 9);
    const int64_t next = rng.UniformInt(1, 1000000);
    ASSERT_TRUE(ad_.RecordDelete(Row(key, vals[key])).ok());
    ASSERT_TRUE(ad_.RecordInsert(Row(key, next)).ok());
    vals[key] = next;
  }
  std::vector<db::Tuple> a, d;
  ASSERT_TRUE(ad_.ScanNet(&a, &d).ok());
  // Net effect: one delete (original value 0 per key, deduped by netting
  // of intermediate versions) and one insert per key.
  EXPECT_LE(a.size(), 10u);
  EXPECT_LE(d.size(), 10u);
  for (int64_t key = 0; key < 10; ++key) {
    const bool in_a = std::any_of(a.begin(), a.end(), [&](const db::Tuple& t) {
      return t == Row(key, vals[key]);
    });
    EXPECT_TRUE(in_a) << key;
  }
}

}  // namespace
}  // namespace viewmat::hr
