#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "hr/ad_file.h"
#include "storage/buffer_pool.h"
#include "storage/cost_tracker.h"
#include "storage/disk.h"
#include "storage/faulty_disk.h"

namespace viewmat::hr {
namespace {

using storage::CrashPoint;

db::Schema TestSchema() {
  return db::Schema({db::Field::Int64("key"), db::Field::Int64("aux")});
}

db::Tuple Row(int64_t key, int64_t aux) {
  return db::Tuple({db::Value(key), db::Value(aux)});
}

AdFile::Options WalOptions() {
  AdFile::Options options;
  options.hash_buckets = 4;
  options.expected_keys = 128;
  options.enable_wal = true;
  return options;
}

class AdFileRecoveryTest : public ::testing::Test {
 protected:
  AdFileRecoveryTest()
      : tracker_(1.0, 30.0, 1.0),
        inner_(512, &tracker_),
        disk_(&inner_, /*seed=*/11),
        pool_(&disk_, 32),
        ad_(&pool_, TestSchema(), 0, WalOptions()) {}

  std::pair<std::vector<db::Tuple>, std::vector<db::Tuple>> Net() {
    std::vector<db::Tuple> a, d;
    EXPECT_TRUE(ad_.ScanNet(&a, &d).ok());
    std::sort(a.begin(), a.end());
    std::sort(d.begin(), d.end());
    return {a, d};
  }

  storage::CostTracker tracker_;
  storage::SimulatedDisk inner_;
  storage::FaultyDisk disk_;
  storage::BufferPool pool_;
  AdFile ad_;
};

TEST_F(AdFileRecoveryTest, RecoverRebuildsHashAndBloomFromLogAlone) {
  ASSERT_TRUE(ad_.RecordInsert(Row(1, 10)).ok());
  ASSERT_TRUE(ad_.RecordDelete(Row(2, 20)).ok());
  ASSERT_TRUE(ad_.CommitTxn(1, 2).ok());
  // Forget all in-memory/derived state, as a crash would.
  ad_.ScrambleForTest();
  EXPECT_TRUE(ad_.needs_recovery());
  EXPECT_EQ(ad_.entry_count(), 0u);

  AdFile::RecoveryInfo info;
  ASSERT_TRUE(ad_.Recover(&info).ok());
  EXPECT_FALSE(ad_.needs_recovery());
  EXPECT_EQ(info.replayed_intents, 2u);
  EXPECT_EQ(info.discarded_intents, 0u);
  EXPECT_EQ(info.last_committed_txn, 1u);
  EXPECT_EQ(ad_.last_committed_txn(), 1u);

  const auto [a, d] = Net();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_TRUE(a[0] == Row(1, 10));
  ASSERT_EQ(d.size(), 1u);
  EXPECT_TRUE(d[0] == Row(2, 20));
  // The Bloom filter was rebuilt too.
  EXPECT_TRUE(ad_.MightContainKey(1));
  EXPECT_TRUE(ad_.MightContainKey(2));
}

TEST_F(AdFileRecoveryTest, UncommittedTailIsDiscarded) {
  ASSERT_TRUE(ad_.RecordInsert(Row(1, 10)).ok());
  ASSERT_TRUE(ad_.CommitTxn(1, 1).ok());
  // Transaction 2 never commits.
  ASSERT_TRUE(ad_.RecordInsert(Row(2, 20)).ok());
  ASSERT_TRUE(ad_.RecordDelete(Row(3, 30)).ok());

  ad_.ScrambleForTest();
  AdFile::RecoveryInfo info;
  ASSERT_TRUE(ad_.Recover(&info).ok());
  EXPECT_EQ(info.replayed_intents, 1u);
  EXPECT_EQ(info.discarded_intents, 2u);
  EXPECT_EQ(info.last_committed_txn, 1u);

  const auto [a, d] = Net();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_TRUE(a[0] == Row(1, 10));
  EXPECT_TRUE(d.empty());
}

TEST_F(AdFileRecoveryTest, NettingSemanticsSurviveReplay) {
  // insert(1) then delete(1) nets to nothing; delete(4) then insert(4) too.
  ASSERT_TRUE(ad_.RecordInsert(Row(1, 10)).ok());
  ASSERT_TRUE(ad_.RecordDelete(Row(1, 10)).ok());
  ASSERT_TRUE(ad_.RecordDelete(Row(4, 40)).ok());
  ASSERT_TRUE(ad_.RecordInsert(Row(4, 40)).ok());
  ASSERT_TRUE(ad_.RecordInsert(Row(5, 50)).ok());
  ASSERT_TRUE(ad_.CommitTxn(1, 5).ok());

  ad_.ScrambleForTest();
  ASSERT_TRUE(ad_.Recover(nullptr).ok());
  const auto [a, d] = Net();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_TRUE(a[0] == Row(5, 50));
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(ad_.entry_count(), 1u);
}

TEST_F(AdFileRecoveryTest, CrashBeforeWalAppendLosesNothingDurable) {
  ASSERT_TRUE(ad_.RecordInsert(Row(1, 10)).ok());
  ASSERT_TRUE(ad_.CommitTxn(1, 1).ok());
  disk_.ScriptCrash(CrashPoint::kBeforeWalAppend);
  EXPECT_FALSE(ad_.RecordInsert(Row(2, 20)).ok());
  disk_.Restart();
  ad_.ScrambleForTest();
  ASSERT_TRUE(ad_.Recover(nullptr).ok());
  const auto [a, d] = Net();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_TRUE(a[0] == Row(1, 10));
}

TEST_F(AdFileRecoveryTest, CrashAfterWalAppendDiscardsTheUncommittedIntent) {
  ASSERT_TRUE(ad_.RecordInsert(Row(1, 10)).ok());
  ASSERT_TRUE(ad_.CommitTxn(1, 1).ok());
  // The intent lands in the log, then the crash fires before the hash
  // apply — and the commit record never follows, so recovery discards it.
  disk_.ScriptCrash(CrashPoint::kAfterWalAppend);
  EXPECT_FALSE(ad_.RecordInsert(Row(2, 20)).ok());
  disk_.Restart();
  ad_.ScrambleForTest();
  AdFile::RecoveryInfo info;
  ASSERT_TRUE(ad_.Recover(&info).ok());
  EXPECT_EQ(info.discarded_intents, 1u);
  const auto [a, d] = Net();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_TRUE(a[0] == Row(1, 10));
}

TEST_F(AdFileRecoveryTest, RefreshMarkersAreReportedUntilReset) {
  ASSERT_TRUE(ad_.RecordInsert(Row(1, 10)).ok());
  ASSERT_TRUE(ad_.CommitTxn(1, 1).ok());
  ASSERT_TRUE(ad_.LogRefreshBegin(7).ok());
  ASSERT_TRUE(ad_.LogViewPatched(7).ok());

  ad_.ScrambleForTest();
  AdFile::RecoveryInfo info;
  ASSERT_TRUE(ad_.Recover(&info).ok());
  EXPECT_EQ(info.last_epoch_begun, 7u);
  EXPECT_EQ(info.view_patched_epoch, 7u);
  EXPECT_EQ(info.fold_committed_epoch, 0u);
  // Committed intents are still replayed: the fold has not committed.
  EXPECT_EQ(info.replayed_intents, 1u);

  ASSERT_TRUE(ad_.LogFoldCommit(7).ok());
  ad_.ScrambleForTest();
  ASSERT_TRUE(ad_.Recover(&info).ok());
  EXPECT_EQ(info.fold_committed_epoch, 7u);
  // Fold-commit retires every previously committed intent.
  EXPECT_EQ(info.replayed_intents, 0u);
  EXPECT_EQ(ad_.entry_count(), 0u);

  // Reset truncates the log: afterwards there is no refresh in flight.
  ASSERT_TRUE(ad_.Reset().ok());
  ASSERT_TRUE(ad_.Recover(&info).ok());
  EXPECT_EQ(info.last_epoch_begun, 0u);
  EXPECT_EQ(info.view_patched_epoch, 0u);
  EXPECT_EQ(info.fold_committed_epoch, 0u);
}

TEST_F(AdFileRecoveryTest, IntentsCommittedAfterFoldCommitSurvive) {
  ASSERT_TRUE(ad_.RecordInsert(Row(1, 10)).ok());
  ASSERT_TRUE(ad_.CommitTxn(1, 1).ok());
  ASSERT_TRUE(ad_.LogRefreshBegin(3).ok());
  ASSERT_TRUE(ad_.LogViewPatched(3).ok());
  ASSERT_TRUE(ad_.LogFoldCommit(3).ok());
  // A transaction accepted after the fold committed but before the reset.
  ASSERT_TRUE(ad_.RecordInsert(Row(9, 90)).ok());
  ASSERT_TRUE(ad_.CommitTxn(2, 1).ok());

  ad_.ScrambleForTest();
  AdFile::RecoveryInfo info;
  ASSERT_TRUE(ad_.Recover(&info).ok());
  EXPECT_EQ(info.replayed_intents, 1u);
  const auto [a, d] = Net();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_TRUE(a[0] == Row(9, 90));
}

TEST_F(AdFileRecoveryTest, FailedCommitMarksNeedsRecovery) {
  ASSERT_TRUE(ad_.RecordInsert(Row(1, 10)).ok());
  // The intent was applied eagerly; the commit record fails, so the hash
  // file is ahead of the committed log.
  disk_.InjectWriteFault(/*after=*/0);
  EXPECT_FALSE(ad_.CommitTxn(1, 1).ok());
  EXPECT_TRUE(ad_.needs_recovery());
  ASSERT_TRUE(ad_.Recover(nullptr).ok());
  // Rolled back: the intent never committed.
  EXPECT_EQ(ad_.entry_count(), 0u);
  EXPECT_FALSE(ad_.needs_recovery());
}

TEST_F(AdFileRecoveryTest, CommitNeverAdoptsStrayIntentsFromFailedTxns) {
  // Txn 1's intent lands durably in the log but the crash fires before the
  // hash apply, so the transaction never commits — its intent is a durable
  // stray the log cannot erase (appends only).
  disk_.ScriptCrash(CrashPoint::kAfterWalAppend);
  EXPECT_FALSE(ad_.RecordInsert(Row(1, 10)).ok());
  disk_.Restart();
  AdFile::RecoveryInfo info;
  ASSERT_TRUE(ad_.Recover(&info).ok());
  EXPECT_EQ(info.discarded_intents, 1u);
  // Txn 2 commits exactly one intent. Its commit record carries that count,
  // so replay adopts txn 2's intent and nothing else — the stray must not
  // ride along.
  ASSERT_TRUE(ad_.RecordInsert(Row(2, 20)).ok());
  ASSERT_TRUE(ad_.CommitTxn(2, 1).ok());
  ad_.ScrambleForTest();
  ASSERT_TRUE(ad_.Recover(&info).ok());
  EXPECT_EQ(info.replayed_intents, 1u);
  EXPECT_EQ(info.discarded_intents, 1u);
  const auto [a, d] = Net();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_TRUE(a[0] == Row(2, 20));
  EXPECT_TRUE(d.empty());
}

TEST_F(AdFileRecoveryTest, ResetTruncatesWalSoOldIntentsCannotReplay) {
  ASSERT_TRUE(ad_.RecordInsert(Row(1, 10)).ok());
  ASSERT_TRUE(ad_.CommitTxn(1, 1).ok());
  ASSERT_TRUE(ad_.Reset().ok());
  ad_.ScrambleForTest();
  AdFile::RecoveryInfo info;
  ASSERT_TRUE(ad_.Recover(&info).ok());
  EXPECT_EQ(info.replayed_intents, 0u);
  EXPECT_EQ(ad_.entry_count(), 0u);
}

TEST_F(AdFileRecoveryTest, RecoverWithoutWalIsRejected) {
  AdFile plain(&pool_, TestSchema(), 0, AdFile::Options{4, 128, 0.01});
  EXPECT_FALSE(plain.wal_enabled());
  const Status st = plain.Recover(nullptr);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(AdFileRecoveryTest, WalDisabledByDefaultKeepsOldBehavior) {
  AdFile plain(&pool_, TestSchema(), 0, AdFile::Options{4, 128, 0.01});
  ASSERT_TRUE(plain.RecordInsert(Row(1, 10)).ok());
  ASSERT_TRUE(plain.CommitTxn(1, 1).ok());  // no-op without a WAL
  EXPECT_EQ(plain.last_committed_txn(), 1u);
  EXPECT_EQ(plain.entry_count(), 1u);
}

}  // namespace
}  // namespace viewmat::hr
