#include "hr/ad_log.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/cost_tracker.h"
#include "storage/disk.h"
#include "storage/faulty_disk.h"

namespace viewmat::hr {
namespace {

struct Record {
  uint8_t type;
  std::vector<uint8_t> payload;
};

class AdLogTest : public ::testing::Test {
 protected:
  AdLogTest()
      : tracker_(1.0, 30.0, 1.0), inner_(128, &tracker_), disk_(&inner_) {}

  std::vector<Record> ScanAll(const AdLog& log, bool* torn = nullptr) {
    std::vector<Record> records;
    const Status st = log.Scan(
        [&](uint8_t type, const uint8_t* payload, uint16_t len) {
          records.push_back({type, {payload, payload + len}});
          return true;
        },
        torn);
    EXPECT_TRUE(st.ok()) << st.message();
    return records;
  }

  Status Append(AdLog* log, uint8_t type, const std::string& payload) {
    return log->Append(type,
                       reinterpret_cast<const uint8_t*>(payload.data()),
                       static_cast<uint16_t>(payload.size()));
  }

  storage::CostTracker tracker_;
  storage::SimulatedDisk inner_;
  storage::FaultyDisk disk_;
};

TEST_F(AdLogTest, AppendScanRoundTrip) {
  AdLog log(&disk_);
  ASSERT_TRUE(Append(&log, 1, "hello").ok());
  ASSERT_TRUE(Append(&log, 2, "").ok());
  ASSERT_TRUE(Append(&log, 3, "world!").ok());

  bool torn = true;
  const std::vector<Record> records = ScanAll(log, &torn);
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, 1);
  EXPECT_EQ(std::string(records[0].payload.begin(), records[0].payload.end()),
            "hello");
  EXPECT_EQ(records[1].type, 2);
  EXPECT_TRUE(records[1].payload.empty());
  EXPECT_EQ(records[2].type, 3);
  EXPECT_EQ(log.record_count(), 3u);
}

TEST_F(AdLogTest, SpillsAcrossPagesAndScansInOrder) {
  AdLog log(&disk_);
  const std::string payload(40, 'p');  // a few records per 128-byte page
  for (uint8_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(Append(&log, i, payload).ok());
  }
  EXPECT_GT(log.page_count(), 1u);
  const std::vector<Record> records = ScanAll(log);
  ASSERT_EQ(records.size(), 20u);
  for (uint8_t i = 0; i < 20; ++i) EXPECT_EQ(records[i].type, i);
}

TEST_F(AdLogTest, TruncateEmptiesAndReleasesPages) {
  AdLog log(&disk_);
  const std::string payload(40, 'p');
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(Append(&log, 1, payload).ok());
  const size_t live_before = disk_.live_pages();
  ASSERT_TRUE(log.Truncate().ok());
  EXPECT_EQ(log.record_count(), 0u);
  EXPECT_EQ(log.page_count(), 1u);
  EXPECT_LT(disk_.live_pages(), live_before);
  EXPECT_TRUE(ScanAll(log).empty());
  // The log remains usable after truncation.
  ASSERT_TRUE(Append(&log, 7, "post").ok());
  const std::vector<Record> records = ScanAll(log);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, 7);
}

TEST_F(AdLogTest, FailedAppendIsNotDurable) {
  AdLog log(&disk_);
  ASSERT_TRUE(Append(&log, 1, "keep").ok());
  disk_.InjectWriteFault(/*after=*/0);
  EXPECT_FALSE(Append(&log, 2, "lost").ok());
  // The failed record must not appear, and the log must keep working.
  std::vector<Record> records = ScanAll(log);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, 1);
  ASSERT_TRUE(Append(&log, 3, "next").ok());
  records = ScanAll(log);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].type, 3);
}

TEST_F(AdLogTest, TornTailWriteDetectedByChecksum) {
  AdLog log(&disk_);
  ASSERT_TRUE(Append(&log, 1, "durable-one").ok());
  ASSERT_TRUE(Append(&log, 2, "durable-two").ok());
  // Tear the next tail write: a prefix of the new page image lands, which
  // can advance `used` while leaving the record bytes partial. If the torn
  // prefix happens to cover the whole record, the read-back probe adopts it
  // and the append is (correctly) acknowledged; either way acknowledgment
  // and durability must agree.
  disk_.set_torn_writes(true);
  disk_.InjectWriteFault(/*after=*/0);
  const bool acked = Append(&log, 3, "torn-away!!").ok();
  disk_.ClearFaults();
  disk_.set_torn_writes(false);

  bool torn = false;
  const std::vector<Record> records = ScanAll(log, &torn);
  // Every acknowledged record survives; an unacknowledged one never appears.
  ASSERT_EQ(records.size(), acked ? 3u : 2u);
  EXPECT_EQ(records[0].type, 1);
  EXPECT_EQ(records[1].type, 2);
  if (acked) {
    EXPECT_EQ(records[2].type, 3);
  }
}

TEST_F(AdLogTest, ManyTornAppendsNeverSurfaceUnacknowledgedRecords) {
  AdLog log(&disk_);
  disk_.set_torn_writes(true);
  size_t acknowledged = 0;
  Random rng(99);
  for (int i = 0; i < 200; ++i) {
    if (rng.Bernoulli(0.3)) disk_.InjectWriteFault(0);
    const std::string payload(1 + rng.Uniform(60), 'a' + (i % 26));
    if (Append(&log, static_cast<uint8_t>(i % 250), payload).ok()) {
      ++acknowledged;
    }
  }
  disk_.ClearFaults();
  bool torn = false;
  const std::vector<Record> records = ScanAll(log, &torn);
  EXPECT_EQ(records.size(), acknowledged);
}

TEST_F(AdLogTest, MaxPayloadRecordFits) {
  AdLog log(&disk_);
  const std::string payload(log.max_payload(), 'm');
  ASSERT_TRUE(Append(&log, 5, payload).ok());
  const std::vector<Record> records = ScanAll(log);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload.size(), payload.size());
}

TEST_F(AdLogTest, ScanStopsWhenVisitorReturnsFalse) {
  AdLog log(&disk_);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(Append(&log, 1, "x").ok());
  int seen = 0;
  ASSERT_TRUE(log.Scan([&](uint8_t, const uint8_t*, uint16_t) {
    return ++seen < 2;
  }).ok());
  EXPECT_EQ(seen, 2);
}

}  // namespace
}  // namespace viewmat::hr
