#include "hr/hypothetical_relation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "db/catalog.h"

namespace viewmat::hr {
namespace {

db::Schema TestSchema() {
  return db::Schema({db::Field::Int64("key"), db::Field::Int64("aux")});
}

db::Tuple Row(int64_t key, int64_t aux) {
  return db::Tuple({db::Value(key), db::Value(aux)});
}

class HypotheticalRelationTest : public ::testing::Test {
 protected:
  HypotheticalRelationTest()
      : disk_(512, &tracker_),
        pool_(&disk_, 64),
        base_(&pool_, "R", TestSchema(), db::AccessMethod::kClusteredBTree,
              0),
        hr_(nullptr) {
    for (int64_t k = 0; k < 100; ++k) {
      VIEWMAT_CHECK(base_.Insert(Row(k, k * 10)).ok());
    }
    hr_ = std::make_unique<HypotheticalRelation>(&base_,
                                                 AdFile::Options{4, 256, 0.01});
  }

  db::NetChange UpdateOf(int64_t key, int64_t old_aux, int64_t new_aux) {
    db::NetChange nc;
    nc.AddDelete(Row(key, old_aux));
    nc.AddInsert(Row(key, new_aux));
    return nc;
  }

  std::vector<db::Tuple> VisibleAt(int64_t key) {
    std::vector<db::Tuple> out;
    VIEWMAT_CHECK(hr_->FindAllByKey(key, [&](const db::Tuple& t) {
      out.push_back(t);
      return true;
    }).ok());
    return out;
  }

  storage::CostTracker tracker_;
  storage::SimulatedDisk disk_;
  storage::BufferPool pool_;
  db::Relation base_;
  std::unique_ptr<HypotheticalRelation> hr_;
};

TEST_F(HypotheticalRelationTest, ReadsSeePendingUpdates) {
  ASSERT_TRUE(hr_->RecordChanges(UpdateOf(5, 50, 999)).ok());
  const auto visible = VisibleAt(5);
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_TRUE(visible[0] == Row(5, 999));  // new value, not the base's 50
  // Base relation is untouched until the fold.
  db::Tuple base_row;
  ASSERT_TRUE(base_.FindByKey(5, &base_row).ok());
  EXPECT_TRUE(base_row == Row(5, 50));
}

TEST_F(HypotheticalRelationTest, ReadsSuppressPendingDeletes) {
  db::NetChange nc;
  nc.AddDelete(Row(7, 70));
  ASSERT_TRUE(hr_->RecordChanges(nc).ok());
  EXPECT_TRUE(VisibleAt(7).empty());
  EXPECT_EQ(hr_->visible_tuple_count(), 99u);
}

TEST_F(HypotheticalRelationTest, ReadsSeePendingInsertsOfNewKeys) {
  db::NetChange nc;
  nc.AddInsert(Row(500, 1));
  ASSERT_TRUE(hr_->RecordChanges(nc).ok());
  const auto visible = VisibleAt(500);
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_TRUE(visible[0] == Row(500, 1));
}

TEST_F(HypotheticalRelationTest, UntouchedKeysReadFromBaseOnly) {
  ASSERT_TRUE(hr_->RecordChanges(UpdateOf(5, 50, 999)).ok());
  const auto visible = VisibleAt(20);
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_TRUE(visible[0] == Row(20, 200));
}

TEST_F(HypotheticalRelationTest, FoldAppliesAndResets) {
  ASSERT_TRUE(hr_->RecordChanges(UpdateOf(5, 50, 999)).ok());
  std::vector<db::Tuple> a, d;
  ASSERT_TRUE(hr_->Fold(&a, &d).ok());
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_TRUE(a[0] == Row(5, 999));
  EXPECT_TRUE(d[0] == Row(5, 50));
  // Base now reflects the change; the AD file is empty.
  db::Tuple row;
  ASSERT_TRUE(base_.FindByKey(5, &row).ok());
  EXPECT_TRUE(row == Row(5, 999));
  EXPECT_EQ(hr_->ad().entry_count(), 0u);
  // Reads after the fold still see the value (now from the base).
  const auto visible = VisibleAt(5);
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_TRUE(visible[0] == Row(5, 999));
}

TEST_F(HypotheticalRelationTest, FoldWithNullOutsWorks) {
  ASSERT_TRUE(hr_->RecordChanges(UpdateOf(6, 60, 7)).ok());
  ASSERT_TRUE(hr_->Fold(nullptr, nullptr).ok());
  db::Tuple row;
  ASSERT_TRUE(base_.FindByKey(6, &row).ok());
  EXPECT_TRUE(row == Row(6, 7));
}

TEST_F(HypotheticalRelationTest, BloomSavesAdProbesForCleanKeys) {
  // Measure the cold cost of reading key 5 with an empty AD file...
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  tracker_.Reset();
  (void)VisibleAt(5);
  const uint64_t clean_reads = tracker_.counters().disk_reads;
  // ...then with a pending change for key 5: the probe adds AD I/O.
  ASSERT_TRUE(hr_->RecordChanges(UpdateOf(5, 50, 999)).ok());
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  tracker_.Reset();
  (void)VisibleAt(5);
  const uint64_t dirty_reads = tracker_.counters().disk_reads;
  EXPECT_GT(dirty_reads, clean_reads);
  // The Bloom filter proves untouched keys clean without any probe.
  EXPECT_TRUE(hr_->ad().MightContainKey(5));
  EXPECT_FALSE(hr_->ad().MightContainKey(20));
}

TEST_F(HypotheticalRelationTest, RangeScanMergesDifferential) {
  // Updates, an insert of a new key and a delete — all visible to a range
  // scan without folding.
  ASSERT_TRUE(hr_->RecordChanges(UpdateOf(5, 50, 555)).ok());
  db::NetChange ins;
  ins.AddInsert(Row(7, 777));  // second tuple under key 7
  ASSERT_TRUE(hr_->RecordChanges(ins).ok());
  db::NetChange del;
  del.AddDelete(Row(6, 60));
  ASSERT_TRUE(hr_->RecordChanges(del).ok());

  std::vector<db::Tuple> seen;
  ASSERT_TRUE(hr_->RangeScanByKey(4, 8, [&](const db::Tuple& t) {
    seen.push_back(t);
    return true;
  }).ok());
  auto has = [&](const db::Tuple& t) {
    return std::find(seen.begin(), seen.end(), t) != seen.end();
  };
  EXPECT_TRUE(has(Row(4, 40)));    // untouched base tuple
  EXPECT_TRUE(has(Row(5, 555)));   // updated value, not Row(5, 50)
  EXPECT_FALSE(has(Row(5, 50)));
  EXPECT_FALSE(has(Row(6, 60)));   // deleted
  EXPECT_TRUE(has(Row(7, 70)));    // original key-7 tuple
  EXPECT_TRUE(has(Row(7, 777)));   // pending insert
  EXPECT_TRUE(has(Row(8, 80)));
  EXPECT_EQ(seen.size(), 5u);
  // Base remains untouched: the scan read *through* the differential.
  EXPECT_EQ(hr_->ad().entry_count(), 4u);
}

TEST_F(HypotheticalRelationTest, RangeScanEarlyStopAndEmptyRange) {
  ASSERT_TRUE(hr_->RecordChanges(UpdateOf(5, 50, 555)).ok());
  int visits = 0;
  ASSERT_TRUE(hr_->RangeScanByKey(0, 99, [&](const db::Tuple&) {
    return ++visits < 3;
  }).ok());
  EXPECT_EQ(visits, 3);
  visits = 0;
  ASSERT_TRUE(hr_->RangeScanByKey(500, 600, [&](const db::Tuple&) {
    ++visits;
    return true;
  }).ok());
  EXPECT_EQ(visits, 0);
}

TEST_F(HypotheticalRelationTest, RandomHistoryMatchesEagerApplication) {
  // Property 4 of DESIGN.md: reads through the HR equal reads from an
  // eagerly-updated twin relation, across random multi-transaction
  // histories with interleaved folds.
  db::Relation eager(&pool_, "eager", TestSchema(),
                     db::AccessMethod::kClusteredBTree, 0);
  std::map<int64_t, int64_t> oracle;
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(eager.Insert(Row(k, k * 10)).ok());
    oracle[k] = k * 10;
  }
  Random rng(21);
  for (int txn = 0; txn < 60; ++txn) {
    db::NetChange nc;
    for (int i = 0; i < 5; ++i) {
      const int64_t key = rng.UniformInt(0, 99);
      const int64_t next = rng.UniformInt(0, 1 << 20);
      nc.AddDelete(Row(key, oracle[key]));
      nc.AddInsert(Row(key, next));
      oracle[key] = next;
    }
    ASSERT_TRUE(hr_->RecordChanges(nc).ok());
    for (const db::Tuple& t : nc.deletes()) {
      ASSERT_TRUE(eager.DeleteExact(t).ok());
    }
    for (const db::Tuple& t : nc.inserts()) {
      ASSERT_TRUE(eager.Insert(t).ok());
    }
    // Spot-check a few keys every transaction.
    for (int probe = 0; probe < 5; ++probe) {
      const int64_t key = rng.UniformInt(0, 99);
      const auto via_hr = VisibleAt(key);
      ASSERT_EQ(via_hr.size(), 1u) << "key " << key;
      EXPECT_TRUE(via_hr[0] == Row(key, oracle[key])) << "key " << key;
    }
    if (txn % 17 == 16) {
      ASSERT_TRUE(hr_->Fold(nullptr, nullptr).ok());
    }
  }
  EXPECT_EQ(hr_->visible_tuple_count(), 100u);
}

}  // namespace
}  // namespace viewmat::hr
