#include "costmodel/model1.h"

#include <gtest/gtest.h>

#include "costmodel/yao.h"

namespace viewmat::costmodel {
namespace {

// Hand-computed values at the paper's default parameters (P = 0.5):
//   H_vi = ceil(log_200 10000) = 2
//   C_query1 = 30*(0.1*0.1*2500/2) + 30*2 + 1*(0.1*0.1*100000)
//            = 375 + 60 + 1000 = 1435
//   C_screen = 1 * 0.1 * 25 = 2.5
//   C_ADread = 30 * 50/40 = 37.5
//   C_AD     = 30 * 1 * y(50, 1.25, 25) = 30 * 1.25 = 37.5
//   X1 = X2  = y(10000, 125, 5)
//   TOTAL_clustered  = 30*2500*0.01 + 100000*0.01 = 1750
//   TOTAL_sequential = 30*2500 + 100000 = 175000

TEST(Model1, ViewIndexHeightAtDefaults) {
  EXPECT_DOUBLE_EQ(ViewIndexHeight1(Params()), 2.0);
}

TEST(Model1, ViewIndexHeightGrowsWithView) {
  Params p;
  p.f = 1.0;  // 100000-entry index needs 3 levels at fanout 200
  EXPECT_DOUBLE_EQ(ViewIndexHeight1(p), 3.0);
}

TEST(Model1, QueryCostAtDefaults) {
  EXPECT_NEAR(CQuery1(Params()), 1435.0, 1e-9);
}

TEST(Model1, ScreenCostAtDefaults) {
  EXPECT_NEAR(CScreen(Params()), 2.5, 1e-9);
}

TEST(Model1, AdCostsAtDefaults) {
  const Params p;
  EXPECT_NEAR(CAdRead(p), 37.5, 1e-9);
  // y(50, 1.25, 25) saturates at the 1.25-page file size.
  EXPECT_NEAR(CAd(p), 30.0 * 1.25, 1e-6);
}

TEST(Model1, RefreshCostsMatchYaoTerms) {
  const Params p;
  const double x = Yao(10000, 125, 5);
  EXPECT_NEAR(CDefRefresh1(p), 30.0 * 5.0 * x, 1e-9);
  EXPECT_NEAR(CImmRefresh1(p), 30.0 * 5.0 * x, 1e-9);  // k/q = 1, l = u
}

TEST(Model1, OverheadAtDefaults) {
  EXPECT_NEAR(COverhead(Params()), 5.0, 1e-9);  // C3*2*f*l*(k/q)
}

TEST(Model1, QueryModificationTotals) {
  const Params p;
  EXPECT_NEAR(TotalClustered(p), 1750.0, 1e-9);
  EXPECT_NEAR(TotalSequential(p), 175000.0, 1e-9);
  const double expected_unclustered = 30.0 * Yao(100000, 2500, 1000) + 1000.0;
  EXPECT_NEAR(TotalUnclustered(p), expected_unclustered, 1e-9);
  EXPECT_GT(TotalUnclustered(p), 5.0 * TotalClustered(p));
}

TEST(Model1, TotalsAreSumsOfComponents) {
  const Params p;
  EXPECT_NEAR(TotalDeferred1(p),
              CAd(p) + CAdRead(p) + CQuery1(p) + CDefRefresh1(p) + CScreen(p),
              1e-9);
  EXPECT_NEAR(TotalImmediate1(p),
              CQuery1(p) + CImmRefresh1(p) + CScreen(p) + COverhead(p), 1e-9);
}

// --- Qualitative properties the paper reports (§3.3) ----------------------

TEST(Model1, ClusteredBeatsMaterializationAtDefaults) {
  // Figure 1: "query modification using a clustered access path has
  // performance equal or superior to deferred and immediate."
  const Params p;
  EXPECT_LT(TotalClustered(p), TotalDeferred1(p));
  EXPECT_LT(TotalClustered(p), TotalImmediate1(p));
}

TEST(Model1, DeferredAndImmediateNearlyEqualAtDefaults) {
  const Params p;
  const double d = TotalDeferred1(p);
  const double i = TotalImmediate1(p);
  EXPECT_NEAR(d / i, 1.0, 0.06);
}

TEST(Model1, MaterializationConvergesToQueryCostAtLowP) {
  // As P -> 0 both maintenance strategies degenerate to just reading the
  // stored view, which beats reading the base relation (half the pages).
  const Params p = Params().WithUpdateProbability(0.0);
  EXPECT_NEAR(TotalDeferred1(p), CQuery1(p), 1e-6);
  EXPECT_NEAR(TotalImmediate1(p), CQuery1(p), 1e-6);
  EXPECT_LT(TotalDeferred1(p), TotalClustered(p));
}

TEST(Model1, HighPFavorsQueryModification) {
  const Params p = Params().WithUpdateProbability(0.95);
  EXPECT_LT(TotalClustered(p), TotalDeferred1(p));
  EXPECT_LT(TotalClustered(p), TotalImmediate1(p));
}

TEST(Model1, ImmediateSlightlyBetterAtLowPositiveP) {
  // §4: "if P is low, immediate view maintenance has a slight advantage."
  const Params p = Params().WithUpdateProbability(0.2);
  EXPECT_LT(TotalImmediate1(p), TotalDeferred1(p));
}

TEST(Model1, LargerC3PenalizesImmediateOnly) {
  Params p;
  const double imm_before = TotalImmediate1(p);
  const double def_before = TotalDeferred1(p);
  p.C3 = 2.0;
  EXPECT_GT(TotalImmediate1(p), imm_before);
  EXPECT_DOUBLE_EQ(TotalDeferred1(p), def_before);
}

TEST(Model1, SmallFvFavorsQueryModification) {
  // §3.3: lowering f_v favors QM because maintenance overhead is
  // independent of f_v while query cost shrinks.
  Params p = Params().WithUpdateProbability(0.3);
  p.f_v = 0.01;
  EXPECT_LT(TotalClustered(p), TotalDeferred1(p));
  EXPECT_LT(TotalClustered(p), TotalImmediate1(p));
}

TEST(Model1, CostsScaleWithC2) {
  Params p;
  const double base = TotalDeferred1(p);
  p.C2 = 60;
  EXPECT_GT(TotalDeferred1(p), 1.5 * base);
}

TEST(Model1, DispatchMatchesDirectCalls) {
  const Params p;
  EXPECT_DOUBLE_EQ(*Model1Cost(Strategy::kDeferred, p), TotalDeferred1(p));
  EXPECT_DOUBLE_EQ(*Model1Cost(Strategy::kImmediate, p), TotalImmediate1(p));
  EXPECT_DOUBLE_EQ(*Model1Cost(Strategy::kQmClustered, p), TotalClustered(p));
  EXPECT_DOUBLE_EQ(*Model1Cost(Strategy::kQmUnclustered, p),
                   TotalUnclustered(p));
  EXPECT_DOUBLE_EQ(*Model1Cost(Strategy::kQmSequential, p),
                   TotalSequential(p));
  EXPECT_FALSE(Model1Cost(Strategy::kQmLoopJoin, p).ok());
  EXPECT_FALSE(Model1Cost(Strategy::kQmRecompute, p).ok());
}

// --- Parameterized: deferred/immediate near-equality holds across P -------

class Model1NearEqualTest : public ::testing::TestWithParam<double> {};

TEST_P(Model1NearEqualTest, DeferredTracksImmediateWithinFactor) {
  // §3.3: "deferred and immediate view maintenance have almost identical
  // cost" across the P sweep of Figure 1.
  const Params p = Params().WithUpdateProbability(GetParam());
  const double d = TotalDeferred1(p);
  const double i = TotalImmediate1(p);
  EXPECT_LT(std::max(d, i) / std::min(d, i), 1.35)
      << "P=" << GetParam() << " deferred=" << d << " immediate=" << i;
}

INSTANTIATE_TEST_SUITE_P(SweepP, Model1NearEqualTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                           0.7, 0.8, 0.9));

}  // namespace
}  // namespace viewmat::costmodel
