#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "costmodel/model1.h"
#include "costmodel/model2.h"
#include "costmodel/model3.h"

namespace viewmat::costmodel {
namespace {

/// Structural properties every cost formula must satisfy regardless of the
/// parameter point — cheap insurance against sign errors and mistranscribed
/// terms in the OCR-reconstructed formulas.

class ModelPropertiesTest : public ::testing::TestWithParam<double> {
 protected:
  Params At(double P) const { return Params().WithUpdateProbability(P); }
};

TEST_P(ModelPropertiesTest, AllTotalsArePositiveAndFinite) {
  const Params p = At(GetParam());
  for (const double total :
       {TotalDeferred1(p), TotalImmediate1(p), TotalClustered(p),
        TotalUnclustered(p), TotalSequential(p), TotalDeferred2(p),
        TotalImmediate2(p), TotalLoopJoin(p), TotalDeferred3(p),
        TotalImmediate3(p), TotalRecompute3(p)}) {
    EXPECT_GT(total, 0.0);
    EXPECT_TRUE(std::isfinite(total));
  }
}

TEST_P(ModelPropertiesTest, QueryModificationIsFlatInP) {
  // QM does no maintenance: its per-query cost cannot depend on P.
  const Params p = At(GetParam());
  const Params p2 = At(std::min(GetParam() + 0.2, 0.95));
  EXPECT_DOUBLE_EQ(TotalClustered(p), TotalClustered(p2));
  EXPECT_DOUBLE_EQ(TotalUnclustered(p), TotalUnclustered(p2));
  EXPECT_DOUBLE_EQ(TotalSequential(p), TotalSequential(p2));
  EXPECT_DOUBLE_EQ(TotalLoopJoin(p), TotalLoopJoin(p2));
  EXPECT_DOUBLE_EQ(TotalRecompute3(p), TotalRecompute3(p2));
}

TEST_P(ModelPropertiesTest, MaintenanceCostsRiseWithP) {
  const double P = GetParam();
  if (P >= 0.9) return;
  const Params lo = At(P);
  const Params hi = At(P + 0.05);
  EXPECT_GT(TotalDeferred1(hi), TotalDeferred1(lo));
  EXPECT_GT(TotalImmediate1(hi), TotalImmediate1(lo));
  EXPECT_GT(TotalDeferred2(hi), TotalDeferred2(lo));
  EXPECT_GT(TotalImmediate2(hi), TotalImmediate2(lo));
  EXPECT_GE(TotalDeferred3(hi), TotalDeferred3(lo));
  EXPECT_GE(TotalImmediate3(hi), TotalImmediate3(lo));
}

TEST_P(ModelPropertiesTest, EveryIoTermScalesWithC2) {
  // Doubling the disk cost must not decrease any total (and must strictly
  // increase all I/O-bearing ones).
  Params p = At(GetParam());
  Params expensive = p;
  expensive.C2 *= 2.0;
  EXPECT_GT(TotalDeferred1(expensive), TotalDeferred1(p));
  EXPECT_GT(TotalImmediate1(expensive), TotalImmediate1(p));
  EXPECT_GT(TotalClustered(expensive), TotalClustered(p));
  EXPECT_GT(TotalLoopJoin(expensive), TotalLoopJoin(p));
  EXPECT_GT(TotalRecompute3(expensive), TotalRecompute3(p));
}

TEST_P(ModelPropertiesTest, LargerViewsCostMoreToQuery) {
  Params small = At(GetParam());
  small.f = 0.05;
  Params large = small;
  large.f = 0.5;
  EXPECT_GT(CQuery1(large), CQuery1(small));
  EXPECT_GT(CQuery2(large), CQuery2(small));
  EXPECT_GT(TotalClustered(large), TotalClustered(small));
}

TEST_P(ModelPropertiesTest, ScreeningScalesWithSelectivityAndUpdates) {
  Params p = At(GetParam());
  Params more_f = p;
  more_f.f = std::min(1.0, p.f * 3.0);
  EXPECT_GE(CScreen(more_f), CScreen(p));
  Params more_l = p;
  more_l.l *= 4.0;
  EXPECT_GE(CScreen(more_l), CScreen(p));
}

TEST_P(ModelPropertiesTest, ZeroUpdateProbabilityCollapsesToQueryCost) {
  const Params p = At(0.0);
  EXPECT_DOUBLE_EQ(TotalDeferred1(p), CQuery1(p));
  EXPECT_DOUBLE_EQ(TotalImmediate1(p), CQuery1(p));
  EXPECT_DOUBLE_EQ(TotalDeferred2(p), CQuery2(p));
  EXPECT_DOUBLE_EQ(TotalImmediate2(p), CQuery2(p));
  EXPECT_DOUBLE_EQ(TotalImmediate3(p), CQuery3(p));
}

TEST_P(ModelPropertiesTest, BatchingDirectionFollowsConcavityOfYao) {
  // The refresh term alone: deferred patches the view once per query with
  // u = (k/q)·l accumulated tuples; immediate patches k/q times with l
  // each. y is concave through the origin, so batching wins exactly when
  // several transactions are merged (k/q >= 1, i.e. P >= .5) and loses
  // when a refresh serves less than one transaction's worth (P < .5) —
  // the formula-level root of the paper's "at low P immediate has a
  // slight advantage".
  const Params p = At(GetParam());
  if (GetParam() >= 0.5) {
    EXPECT_LE(CDefRefresh1(p), CImmRefresh1(p) + 1e-9);
    EXPECT_LE(CDefRefresh2(p), CImmRefresh2(p) + 1e-9);
  } else {
    EXPECT_GE(CDefRefresh1(p), CImmRefresh1(p) - 1e-9);
    EXPECT_GE(CDefRefresh2(p), CImmRefresh2(p) - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(SweepP, ModelPropertiesTest,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75, 0.9),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "P" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

}  // namespace
}  // namespace viewmat::costmodel
