#include "costmodel/yao.h"

#include <gtest/gtest.h>

#include <cmath>

namespace viewmat::costmodel {
namespace {

TEST(YaoExact, DegenerateCases) {
  EXPECT_EQ(YaoExact(0, 10, 5), 0.0);
  EXPECT_EQ(YaoExact(100, 0, 5), 0.0);
  EXPECT_EQ(YaoExact(100, 10, 0), 0.0);
  EXPECT_EQ(YaoExact(100, 10, -3), 0.0);
}

TEST(YaoExact, AccessingAllRecordsTouchesAllBlocks) {
  EXPECT_DOUBLE_EQ(YaoExact(100, 10, 100), 10.0);
  EXPECT_DOUBLE_EQ(YaoExact(100, 10, 150), 10.0);
}

TEST(YaoExact, SingleBlockFileAlwaysCostsOne) {
  EXPECT_DOUBLE_EQ(YaoExact(40, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(YaoExact(40, 1, 39), 1.0);
}

TEST(YaoExact, OneRecordFromManyBlocks) {
  // One access touches exactly one block.
  EXPECT_NEAR(YaoExact(1000, 100, 1), 1.0, 1e-9);
}

TEST(YaoExact, KnownSmallValue) {
  // n=4 records on m=2 blocks (2 per block), k=2: the two chosen records
  // land on one block in C(2,2)*2/C(4,2) = 2/6 of cases, two blocks in 4/6.
  // Expected = (2/6)*1 + (4/6)*2 = 5/3.
  EXPECT_NEAR(YaoExact(4, 2, 2), 5.0 / 3.0, 1e-12);
}

TEST(YaoApprox, MatchesExactForLargeBlockingFactor) {
  // Appendix B: approximation is close when n/m > 10.
  const double exact = YaoExact(100000, 2500, 1000);
  const double approx = YaoApprox(100000, 2500, 1000);
  EXPECT_NEAR(approx / exact, 1.0, 0.02);
}

TEST(YaoApprox, FractionalArgumentsSupported) {
  // The cost model calls y with fractional page counts (e.g. the AD file).
  const double y = YaoApprox(50.0, 1.25, 25.0);
  EXPECT_GT(y, 1.0);
  EXPECT_LE(y, 1.25);
}

TEST(YaoApprox, TinyFileClampsToFileSize) {
  EXPECT_DOUBLE_EQ(YaoApprox(10.0, 0.5, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(YaoApprox(10.0, 0.5, 20.0), 0.5);
}

TEST(Yao, NeverExceedsBlocksOrAccesses) {
  for (double k : {0.5, 1.0, 2.0, 7.0, 40.0, 500.0}) {
    for (double m : {1.0, 2.0, 10.0, 250.0}) {
      const double y = Yao(10000, m, k);
      EXPECT_LE(y, m) << "m=" << m << " k=" << k;
      EXPECT_LE(y, k) << "m=" << m << " k=" << k;
      EXPECT_GE(y, 0.0);
    }
  }
}

// --- Property sweeps ------------------------------------------------------

struct YaoCase {
  int64_t n;
  int64_t m;
};

class YaoPropertyTest : public ::testing::TestWithParam<YaoCase> {};

TEST_P(YaoPropertyTest, MonotoneNondecreasingInK) {
  const YaoCase c = GetParam();
  double prev = 0.0;
  for (int64_t k = 0; k <= c.n; k += std::max<int64_t>(1, c.n / 37)) {
    const double y = YaoExact(c.n, c.m, k);
    EXPECT_GE(y, prev - 1e-9) << "n=" << c.n << " m=" << c.m << " k=" << k;
    prev = y;
  }
}

TEST_P(YaoPropertyTest, TriangleInequality) {
  // §4: y(n,m,a+b) <= y(n,m,a) + y(n,m,b) — why refresh-on-demand wins.
  const YaoCase c = GetParam();
  for (int64_t a = 1; a < c.n / 2; a += std::max<int64_t>(1, c.n / 23)) {
    for (int64_t b = 1; b < c.n / 2; b += std::max<int64_t>(1, c.n / 17)) {
      const double lhs = YaoExact(c.n, c.m, a + b);
      const double rhs = YaoExact(c.n, c.m, a) + YaoExact(c.n, c.m, b);
      EXPECT_LE(lhs, rhs + 1e-9)
          << "n=" << c.n << " m=" << c.m << " a=" << a << " b=" << b;
    }
  }
}

TEST_P(YaoPropertyTest, ApproximationTriangleInequality) {
  const YaoCase c = GetParam();
  const double n = static_cast<double>(c.n);
  const double m = static_cast<double>(c.m);
  for (double a = 0.5; a < n / 2; a *= 2.3) {
    for (double b = 0.5; b < n / 2; b *= 3.1) {
      EXPECT_LE(Yao(n, m, a + b), Yao(n, m, a) + Yao(n, m, b) + 1e-9);
    }
  }
}

TEST_P(YaoPropertyTest, ExactAndApproxAgreeLoosely) {
  const YaoCase c = GetParam();
  if (c.n / c.m < 10) return;  // the paper's accuracy claim needs n/m > 10
  for (int64_t k = 1; k <= c.n; k *= 4) {
    const double exact = YaoExact(c.n, c.m, k);
    const double approx = YaoApprox(static_cast<double>(c.n),
                                    static_cast<double>(c.m),
                                    static_cast<double>(k));
    EXPECT_NEAR(approx, exact, 0.05 * exact + 0.1)
        << "n=" << c.n << " m=" << c.m << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, YaoPropertyTest,
    ::testing::Values(YaoCase{100, 10}, YaoCase{1000, 25}, YaoCase{1000, 200},
                      YaoCase{10000, 250}, YaoCase{500, 500},
                      YaoCase{2000, 40}),
    [](const ::testing::TestParamInfo<YaoCase>& info) {
      return "n" + std::to_string(info.param.n) + "m" +
             std::to_string(info.param.m);
    });

}  // namespace
}  // namespace viewmat::costmodel
