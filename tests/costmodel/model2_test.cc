#include "costmodel/model2.h"

#include <gtest/gtest.h>

#include "costmodel/crossover.h"
#include "costmodel/model1.h"
#include "costmodel/yao.h"

namespace viewmat::costmodel {
namespace {

// Hand-computed values at the defaults (P = 0.5):
//   C_query2 = 30*2 + 30*(0.1*0.1*2500) + 1*(0.1*0.1*100000)
//            = 60 + 750 + 1000 = 1810
//   X3 = X4 = X5 = X6 = y(10000, 250, 5)
//   C_def-refresh2 = 30*X3 + 2*25 + 30*5*X4
//   TOT_loop = 30*ceil(log_200 1e5) + 30*25 + 30*y(10000,250,1000) + 2000

TEST(Model2, QueryCostAtDefaults) {
  EXPECT_NEAR(CQuery2(Params()), 1810.0, 1e-9);
}

TEST(Model2, RefreshCostsMatchYaoTerms) {
  const Params p;
  const double x = Yao(10000, 250, 5);
  EXPECT_NEAR(CDefRefresh2(p), 30.0 * x + 50.0 + 150.0 * x, 1e-9);
  EXPECT_NEAR(CImmRefresh2(p), 30.0 * x + 50.0 + 150.0 * x, 1e-9);
}

TEST(Model2, LoopJoinAtDefaults) {
  const Params p;
  const double expected = 30.0 * 3.0 + 750.0 + 30.0 * Yao(10000, 250, 1000) +
                          2000.0;
  EXPECT_NEAR(TotalLoopJoin(p), expected, 1e-9);
}

TEST(Model2, TotalsAreSumsOfComponents) {
  const Params p;
  EXPECT_NEAR(TotalDeferred2(p),
              CAd(p) + CAdRead(p) + CDefRefresh2(p) + CQuery2(p) + CScreen(p),
              1e-9);
  EXPECT_NEAR(TotalImmediate2(p),
              CImmRefresh2(p) + CQuery2(p) + COverhead(p) + CScreen(p), 1e-9);
}

// --- Qualitative claims of §3.5 -------------------------------------------

TEST(Model2, MaterializationBeatsLoopJoinAtDefaults) {
  // "When the view joins data from more than one relation, incremental view
  // maintenance algorithms perform better relative to query modification."
  const Params p;
  EXPECT_LT(TotalDeferred2(p), TotalLoopJoin(p));
  EXPECT_LT(TotalImmediate2(p), TotalLoopJoin(p));
}

TEST(Model2, LoopJoinWinsAtVeryHighP) {
  const Params p = Params().WithUpdateProbability(0.99);
  EXPECT_LT(TotalLoopJoin(p), TotalDeferred2(p));
  EXPECT_LT(TotalLoopJoin(p), TotalImmediate2(p));
}

TEST(Model2, CrossoverExistsBetweenMaterializationAndLoopJoin) {
  auto cross = EqualCostP(
      [](const Params& at) { return TotalImmediate2(at); },
      [](const Params& at) { return TotalLoopJoin(at); }, Params());
  ASSERT_TRUE(cross.has_value());
  EXPECT_GT(*cross, 0.5);
  EXPECT_LT(*cross, 1.0);
}

TEST(Model2, EmpDeptCaseQueryModificationWinsFromLowP) {
  // §3.5: EMP-DEPT with f=1, l=1, f_v = 1/N — "query modification is
  // superior to deferred and immediate for all values of P >= .08".
  Params p;
  p.f = 1.0;
  p.l = 1.0;
  p.f_v = 1.0 / p.N;
  for (const double P : {0.08, 0.2, 0.5, 0.9}) {
    const Params at = p.WithUpdateProbability(P);
    EXPECT_LT(TotalLoopJoin(at), TotalDeferred2(at)) << "P=" << P;
    EXPECT_LT(TotalLoopJoin(at), TotalImmediate2(at)) << "P=" << P;
  }
  // And materialization still wins at sufficiently low P.
  const Params low = p.WithUpdateProbability(0.005);
  EXPECT_LT(TotalImmediate2(low), TotalLoopJoin(low));
}

TEST(Model2, EmpDeptCrossoverNearPointZeroEight) {
  Params p;
  p.f = 1.0;
  p.l = 1.0;
  p.f_v = 1.0 / p.N;
  auto cross = EqualCostP(
      [](const Params& at) { return TotalImmediate2(at); },
      [](const Params& at) { return TotalLoopJoin(at); }, p, 0.0, 0.5);
  ASSERT_TRUE(cross.has_value());
  // The paper reports .08; allow modeling slack around it.
  EXPECT_GT(*cross, 0.01);
  EXPECT_LT(*cross, 0.2);
}

TEST(Model2, SmallFvFavorsLoopJoin) {
  Params p = Params().WithUpdateProbability(0.4);
  p.f_v = 0.001;
  EXPECT_LT(TotalLoopJoin(p), TotalDeferred2(p));
  EXPECT_LT(TotalLoopJoin(p), TotalImmediate2(p));
}

TEST(Model2, DispatchMatchesDirectCalls) {
  const Params p;
  EXPECT_DOUBLE_EQ(*Model2Cost(Strategy::kDeferred, p), TotalDeferred2(p));
  EXPECT_DOUBLE_EQ(*Model2Cost(Strategy::kImmediate, p), TotalImmediate2(p));
  EXPECT_DOUBLE_EQ(*Model2Cost(Strategy::kQmLoopJoin, p), TotalLoopJoin(p));
  EXPECT_FALSE(Model2Cost(Strategy::kQmClustered, p).ok());
  EXPECT_FALSE(Model2Cost(Strategy::kQmRecompute, p).ok());
}

class Model2NearEqualTest : public ::testing::TestWithParam<double> {};

TEST_P(Model2NearEqualTest, DeferredTracksImmediate) {
  const Params p = Params().WithUpdateProbability(GetParam());
  const double d = TotalDeferred2(p);
  const double i = TotalImmediate2(p);
  EXPECT_LT(std::max(d, i) / std::min(d, i), 1.25)
      << "P=" << GetParam() << " deferred=" << d << " immediate=" << i;
}

INSTANTIATE_TEST_SUITE_P(SweepP, Model2NearEqualTest,
                         ::testing::Values(0.05, 0.2, 0.4, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace viewmat::costmodel
