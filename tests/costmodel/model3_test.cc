#include "costmodel/model3.h"

#include <gtest/gtest.h>

#include <cmath>

#include "costmodel/model1.h"

namespace viewmat::costmodel {
namespace {

TEST(Model3, QueryIsOneRead) {
  EXPECT_DOUBLE_EQ(CQuery3(Params()), 30.0);
}

TEST(Model3, RefreshProbabilitiesAtDefaults) {
  const Params p;  // f = .1, u = 25, l = 25, k/q = 1
  const double prob = 1.0 - std::pow(0.9, 50.0);
  EXPECT_NEAR(CDefRefresh3(p), 30.0 * prob, 1e-9);
  EXPECT_NEAR(CImmRefresh3(p), 30.0 * prob, 1e-9);
}

TEST(Model3, RecomputeUsesFullScanOfSelection) {
  // aggregate_scan_fraction defaults to 1: recomputation reads the whole
  // f-selection regardless of f_v.
  const Params p;
  EXPECT_NEAR(TotalRecompute3(p), 30.0 * 250.0 + 10000.0, 1e-9);
  Params half = p;
  half.aggregate_scan_fraction = 0.5;
  EXPECT_NEAR(TotalRecompute3(half), 0.5 * TotalRecompute3(p), 1e-9);
}

TEST(Model3, TotalsAreSumsOfComponents) {
  const Params p;
  EXPECT_NEAR(TotalDeferred3(p),
              CAd(p) + CAdRead(p) + CQuery3(p) + CDefRefresh3(p) + CScreen(p),
              1e-9);
  EXPECT_NEAR(TotalImmediate3(p), CQuery3(p) + CImmRefresh3(p) + CScreen(p),
              1e-9);
}

// --- §3.7 claims ------------------------------------------------------------

TEST(Model3, MaintainingCostsSmallFractionOfRecompute) {
  // Figure 8's headline: for small l, maintenance costs only a small
  // percentage of computing from scratch.
  for (const double l : {1.0, 5.0, 25.0, 100.0}) {
    Params p;
    p.l = l;
    EXPECT_LT(TotalImmediate3(p), 0.05 * TotalRecompute3(p)) << "l=" << l;
    EXPECT_LT(TotalDeferred3(p), 0.15 * TotalRecompute3(p)) << "l=" << l;
  }
}

TEST(Model3, RefreshProbabilitySaturatesWithL) {
  Params small;
  small.l = 1;
  Params large;
  large.l = 1000;
  EXPECT_LT(CImmRefresh3(small), CImmRefresh3(large));
  EXPECT_NEAR(CImmRefresh3(large), 30.0, 1e-6);  // probability ~ 1
}

TEST(Model3, LargerFMakesMaintenanceMoreAttractive) {
  // §3.7: "maintaining materialized aggregates is most attractive when the
  // fraction of the relation being aggregated (f) is largest" — the
  // recompute cost grows linearly in f while maintenance saturates.
  Params lo;
  lo.f = 0.01;
  Params hi;
  hi.f = 0.5;
  const double ratio_lo = TotalRecompute3(lo) / TotalImmediate3(lo);
  const double ratio_hi = TotalRecompute3(hi) / TotalImmediate3(hi);
  EXPECT_GT(ratio_hi, ratio_lo);
}

TEST(Model3, DeferredAndImmediateBothTiny) {
  const Params p;
  EXPECT_LT(TotalImmediate3(p), 100.0);
  EXPECT_LT(TotalDeferred3(p), 200.0);
  EXPECT_GT(TotalRecompute3(p), 10000.0);
}

TEST(Model3, DispatchMatchesDirectCalls) {
  const Params p;
  EXPECT_DOUBLE_EQ(*Model3Cost(Strategy::kDeferred, p), TotalDeferred3(p));
  EXPECT_DOUBLE_EQ(*Model3Cost(Strategy::kImmediate, p), TotalImmediate3(p));
  EXPECT_DOUBLE_EQ(*Model3Cost(Strategy::kQmRecompute, p),
                   TotalRecompute3(p));
  EXPECT_FALSE(Model3Cost(Strategy::kQmLoopJoin, p).ok());
}

class Model3SweepTest : public ::testing::TestWithParam<double> {};

TEST_P(Model3SweepTest, ImmediateBeatsRecomputeExceptExtremeP) {
  // Figure 9: the equal-cost curves sit at very high P — for any ordinary
  // update probability, maintenance wins.
  Params p = Params().WithUpdateProbability(GetParam());
  EXPECT_LT(TotalImmediate3(p), TotalRecompute3(p)) << "P=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SweepP, Model3SweepTest,
                         ::testing::Values(0.05, 0.2, 0.5, 0.8, 0.9));

}  // namespace
}  // namespace viewmat::costmodel
