#include <gtest/gtest.h>

#include "costmodel/model1.h"
#include "costmodel/yao.h"

namespace viewmat::costmodel {
namespace {

TEST(YaoFor, DispatchesOnFlag) {
  EXPECT_DOUBLE_EQ(YaoFor(false, 1000, 25, 100), Yao(1000, 25, 100));
  EXPECT_DOUBLE_EQ(YaoFor(true, 1000, 25, 100), YaoExact(1000, 25, 100));
}

TEST(YaoFor, ExactRoundsFractionalArguments) {
  // 50 tuples on 1.25 pages: the exact form needs integers — rounds to
  // one block.
  EXPECT_DOUBLE_EQ(YaoFor(true, 50.0, 1.25, 25.0), 1.0);
  EXPECT_DOUBLE_EQ(YaoFor(true, 50.4, 2.6, 10.2), YaoExact(50, 3, 10));
}

TEST(YaoFor, DegenerateInputsStillZero) {
  EXPECT_DOUBLE_EQ(YaoFor(true, 0.0, 5.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(YaoFor(true, 5.0, 5.0, 0.0), 0.0);
}

TEST(Model1YaoVariant, TotalsShiftOnlySlightlyAtDefaults) {
  // Appendix B: the approximation is very close when n/m > 10 — so the
  // headline totals barely move under the exact form...
  Params approx;
  Params exact;
  exact.use_exact_yao = true;
  EXPECT_NEAR(TotalDeferred1(exact) / TotalDeferred1(approx), 1.0, 0.05);
  EXPECT_NEAR(TotalImmediate1(exact) / TotalImmediate1(approx), 1.0, 0.05);
}

TEST(Model1YaoVariant, KnifeEdgeComparisonsCanFlip) {
  // ...but knife-edge strategy comparisons can flip — the mechanism behind
  // the Figure 4 threshold deviation documented in EXPERIMENTS.md. Verify
  // that the deferred-vs-immediate gap genuinely moves between variants at
  // the near-boundary point.
  Params p = Params().WithUpdateProbability(0.283);
  p.f = 0.957;
  p.C3 = 2.0;
  Params pe = p;
  pe.use_exact_yao = true;
  const double gap_approx = TotalDeferred1(p) - TotalImmediate1(p);
  const double gap_exact = TotalDeferred1(pe) - TotalImmediate1(pe);
  EXPECT_NE(gap_approx, gap_exact);
  // Both gaps are tiny relative to the totals (< 1%) — the knife edge.
  EXPECT_LT(std::abs(gap_approx), 0.01 * TotalDeferred1(p));
}

TEST(Model1YaoVariant, ExactVariantRespectsBounds) {
  for (const double P : {0.1, 0.5, 0.9}) {
    Params p = Params().WithUpdateProbability(P);
    p.use_exact_yao = true;
    EXPECT_GT(TotalDeferred1(p), 0.0);
    EXPECT_GT(TotalImmediate1(p), 0.0);
    EXPECT_LT(TotalDeferred1(p), TotalSequential(p) * 100.0);
  }
}

}  // namespace
}  // namespace viewmat::costmodel
