#include "costmodel/crossover.h"

#include <gtest/gtest.h>

#include "costmodel/model3.h"

namespace viewmat::costmodel {
namespace {

TEST(EqualCostP, FindsKnownCrossing) {
  // cost_a = P (via k/q = P/(1-P) shaped into linear form below), but use
  // simple synthetic functions of P to validate the bisection itself.
  auto f = [](const Params& at) { return at.P(); };
  auto g = [](const Params&) { return 0.25; };
  auto cross = EqualCostP(f, g, Params(), 0.0, 0.999);
  ASSERT_TRUE(cross.has_value());
  EXPECT_NEAR(*cross, 0.25, 1e-6);
}

TEST(EqualCostP, ReturnsNulloptWhenOneDominates) {
  auto f = [](const Params& at) { return at.P() + 10.0; };
  auto g = [](const Params&) { return 0.5; };
  EXPECT_FALSE(EqualCostP(f, g, Params()).has_value());
}

TEST(EqualCostP, EndpointExactHit) {
  auto f = [](const Params& at) { return at.P(); };
  auto g = [](const Params&) { return 0.0; };
  auto cross = EqualCostP(f, g, Params(), 0.0, 0.9);
  ASSERT_TRUE(cross.has_value());
  EXPECT_DOUBLE_EQ(*cross, 0.0);
}

TEST(Model3EqualCostP, CurveIsHighAndDecreasingInL) {
  // Figure 9: recomputation only wins at extreme P; the equal-cost P falls
  // as l grows (more update work per transaction).
  const Params base;
  auto p_at_1 = Model3EqualCostP(base, 1.0);
  auto p_at_100 = Model3EqualCostP(base, 100.0);
  auto p_at_1000 = Model3EqualCostP(base, 1000.0);
  ASSERT_TRUE(p_at_1.has_value());
  ASSERT_TRUE(p_at_100.has_value());
  ASSERT_TRUE(p_at_1000.has_value());
  EXPECT_GT(*p_at_1, 0.99);
  EXPECT_GT(*p_at_1, *p_at_100);
  EXPECT_GT(*p_at_100, *p_at_1000);
}

TEST(Model3EqualCostP, LargerFRaisesTheCurve) {
  // Figure 9 draws one curve per f: larger aggregated fractions keep
  // maintenance attractive to even higher P.
  Params small;
  small.f = 0.01;
  Params large;
  large.f = 0.5;
  auto p_small = Model3EqualCostP(small, 50.0);
  auto p_large = Model3EqualCostP(large, 50.0);
  ASSERT_TRUE(p_small.has_value());
  ASSERT_TRUE(p_large.has_value());
  EXPECT_GT(*p_large, *p_small);
}

TEST(Model3EqualCostP, AtCurveCostsActuallyEqual) {
  const Params base;
  auto cross = Model3EqualCostP(base, 25.0);
  ASSERT_TRUE(cross.has_value());
  Params at = base;
  at.l = 25.0;
  at = at.WithUpdateProbability(*cross);
  EXPECT_NEAR(TotalImmediate3(at) / TotalRecompute3(at), 1.0, 1e-3);
}

}  // namespace
}  // namespace viewmat::costmodel
