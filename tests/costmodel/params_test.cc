#include "costmodel/params.h"

#include <gtest/gtest.h>

namespace viewmat::costmodel {
namespace {

TEST(Params, PaperDefaults) {
  const Params p;
  EXPECT_DOUBLE_EQ(p.N, 100000);
  EXPECT_DOUBLE_EQ(p.S, 100);
  EXPECT_DOUBLE_EQ(p.B, 4000);
  EXPECT_DOUBLE_EQ(p.k, 100);
  EXPECT_DOUBLE_EQ(p.l, 25);
  EXPECT_DOUBLE_EQ(p.q, 100);
  EXPECT_DOUBLE_EQ(p.n, 20);
  EXPECT_DOUBLE_EQ(p.f, 0.1);
  EXPECT_DOUBLE_EQ(p.f_v, 0.1);
  EXPECT_DOUBLE_EQ(p.f_R2, 0.1);
  EXPECT_DOUBLE_EQ(p.C1, 1);
  EXPECT_DOUBLE_EQ(p.C2, 30);
  EXPECT_DOUBLE_EQ(p.C3, 1);
}

TEST(Params, DerivedQuantities) {
  const Params p;
  EXPECT_DOUBLE_EQ(p.b(), 2500);   // N*S/B
  EXPECT_DOUBLE_EQ(p.T(), 40);     // B/S
  EXPECT_DOUBLE_EQ(p.u(), 25);     // k*l/q
  EXPECT_DOUBLE_EQ(p.P(), 0.5);    // k/(k+q)
}

TEST(Params, WithUpdateProbabilityRoundTrips) {
  const Params p;
  for (const double target : {0.0, 0.1, 0.25, 0.5, 0.8, 0.95}) {
    EXPECT_NEAR(p.WithUpdateProbability(target).P(), target, 1e-12);
  }
}

TEST(Params, WithUpdateProbabilityHoldsQFixed) {
  const Params p;
  const Params at = p.WithUpdateProbability(0.8);
  EXPECT_DOUBLE_EQ(at.q, p.q);
  EXPECT_NEAR(at.k, 400.0, 1e-9);  // 0.8/(0.2) * 100
  EXPECT_NEAR(at.u(), 100.0, 1e-9);
}

TEST(Params, WithUpdateProbabilityClampsNearOne) {
  const Params at = Params().WithUpdateProbability(1.0);
  EXPECT_LT(at.P(), 1.0);
  EXPECT_GT(at.k, 1e5);
}

TEST(Params, ValidateAcceptsDefaults) {
  EXPECT_TRUE(Params().Validate().ok());
}

TEST(Params, ValidateRejectsBadValues) {
  Params p;
  p.N = -5;
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);
  p = Params();
  p.f = 1.5;
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);
  p = Params();
  p.B = 50;  // smaller than a tuple
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);
  p = Params();
  p.n = 3000;  // fanout below 2
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);
  p = Params();
  p.C2 = -1;
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);
  p = Params();
  p.q = 0;
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(Params, ToStringMentionsKeyFields) {
  const std::string s = Params().ToString();
  EXPECT_NE(s.find("100000"), std::string::npos);
  EXPECT_NE(s.find("2500"), std::string::npos);  // b
  EXPECT_NE(s.find("0.5"), std::string::npos);   // P
}

}  // namespace
}  // namespace viewmat::costmodel
