#include "costmodel/regions.h"

#include <gtest/gtest.h>

#include "costmodel/model1.h"
#include "costmodel/model2.h"

namespace viewmat::costmodel {
namespace {

double Model1CostOrInf(Strategy s, const Params& p) {
  auto c = Model1Cost(s, p);
  return c.ok() ? *c : 1e300;
}

double Model2CostOrInf(Strategy s, const Params& p) {
  auto c = Model2Cost(s, p);
  return c.ok() ? *c : 1e300;
}

const std::vector<Strategy> kModel1Candidates = {
    Strategy::kDeferred, Strategy::kImmediate, Strategy::kQmClustered,
    Strategy::kQmUnclustered, Strategy::kQmSequential};

const std::vector<Strategy> kModel2Candidates = {
    Strategy::kDeferred, Strategy::kImmediate, Strategy::kQmLoopJoin};

TEST(Axis, LinearSampling) {
  const Axis a{0.0, 1.0, 5, false};
  EXPECT_DOUBLE_EQ(a.At(0), 0.0);
  EXPECT_DOUBLE_EQ(a.At(2), 0.5);
  EXPECT_DOUBLE_EQ(a.At(4), 1.0);
}

TEST(Axis, LogSampling) {
  const Axis a{0.001, 1.0, 4, true};
  EXPECT_DOUBLE_EQ(a.At(0), 0.001);
  EXPECT_NEAR(a.At(1), 0.01, 1e-12);
  EXPECT_NEAR(a.At(2), 0.1, 1e-12);
  EXPECT_NEAR(a.At(3), 1.0, 1e-12);
}

TEST(Axis, SinglePointAxis) {
  const Axis a{0.3, 0.9, 1, false};
  EXPECT_DOUBLE_EQ(a.At(0), 0.3);
}

TEST(Winner, PicksCheapest) {
  const Params p;  // clustered wins at defaults (Model 1 test pins this)
  EXPECT_EQ(Winner(Model1CostOrInf, kModel1Candidates, p),
            Strategy::kQmClustered);
}

TEST(Regions, GridShapeAndCoverage) {
  const Axis f_axis{0.01, 0.5, 6, true};
  const Axis p_axis{0.02, 0.9, 8, false};
  const RegionGrid grid =
      ComputeRegions(Model1CostOrInf, kModel1Candidates, Params(), f_axis,
                     p_axis);
  EXPECT_EQ(grid.winners.size(), 48u);
  double total_share = 0.0;
  for (const Strategy s : kModel1Candidates) total_share += grid.WinShare(s);
  EXPECT_NEAR(total_share, 1.0, 1e-12);
}

TEST(Regions, Figure2DeferredNeverWinsAtDefaultC3) {
  // §3.3: "deferred is never the most efficient algorithm under these
  // parameter settings" (C3 = 1, f_v = .1).
  const Axis f_axis{0.005, 1.0, 24, true};
  const Axis p_axis{0.01, 0.97, 24, false};
  const RegionGrid grid =
      ComputeRegions(Model1CostOrInf, kModel1Candidates, Params(), f_axis,
                     p_axis);
  EXPECT_DOUBLE_EQ(grid.WinShare(Strategy::kDeferred), 0.0);
  EXPECT_GT(grid.WinShare(Strategy::kImmediate), 0.0);
  EXPECT_GT(grid.WinShare(Strategy::kQmClustered), 0.0);
}

TEST(Regions, Figure4DeferredRegionAppearsAsC3Grows) {
  // §3.3 / Figure 4: raising C3 makes deferred best in part of the plane —
  // the methods are "very sensitive" to A/D set upkeep cost. The paper
  // reports a region already at C3 = 2; under the Cardenas form of the Yao
  // function deferred is within 0.01% of winning there and crosses at
  // C3 ≈ 4 (recorded as a deviation in EXPERIMENTS.md). The robust claim —
  // the deferred region appears and grows monotonically with C3 — is what
  // this test pins.
  const Axis f_axis{0.005, 1.0, 32, true};
  const Axis p_axis{0.01, 0.97, 32, false};
  double prev_share = -1.0;
  for (const double c3 : {1.0, 2.0, 4.0, 8.0}) {
    Params p;
    p.C3 = c3;
    const RegionGrid grid =
        ComputeRegions(Model1CostOrInf, kModel1Candidates, p, f_axis, p_axis);
    const double share = grid.WinShare(Strategy::kDeferred);
    EXPECT_GE(share, prev_share) << "C3=" << c3;
    prev_share = share;
  }
  // By C3 = 8 the region is unambiguous.
  Params p;
  p.C3 = 8.0;
  const RegionGrid grid =
      ComputeRegions(Model1CostOrInf, kModel1Candidates, p, f_axis, p_axis);
  EXPECT_GT(grid.WinShare(Strategy::kDeferred), 0.0);
}

TEST(Regions, HigherC3ShrinksImmediateAdvantageOverDeferred) {
  // The mechanism behind Figure 4, tested pointwise: at any (f, P) the
  // deferred-minus-immediate difference falls as C3 rises.
  for (const double f : {0.05, 0.3, 0.95}) {
    for (const double P : {0.2, 0.5, 0.8}) {
      Params p1 = Params().WithUpdateProbability(P);
      p1.f = f;
      Params p2 = p1;
      p2.C3 = 2.0;
      const double diff1 = TotalDeferred1(p1) - TotalImmediate1(p1);
      const double diff2 = TotalDeferred1(p2) - TotalImmediate1(p2);
      EXPECT_LT(diff2, diff1) << "f=" << f << " P=" << P;
    }
  }
}

TEST(Regions, Figure3ClusteredGrowsWhenFvShrinks) {
  const Axis f_axis{0.005, 1.0, 20, true};
  const Axis p_axis{0.01, 0.97, 20, false};
  Params fv10;
  fv10.f_v = 0.1;
  Params fv01;
  fv01.f_v = 0.01;
  const double share_10 =
      ComputeRegions(Model1CostOrInf, kModel1Candidates, fv10, f_axis, p_axis)
          .WinShare(Strategy::kQmClustered);
  const double share_01 =
      ComputeRegions(Model1CostOrInf, kModel1Candidates, fv01, f_axis, p_axis)
          .WinShare(Strategy::kQmClustered);
  EXPECT_GT(share_01, share_10);
}

TEST(Regions, Figure6MaterializationDominatesJoinViewsAtModerateP) {
  const Axis f_axis{0.005, 1.0, 20, true};
  const Axis p_axis{0.01, 0.97, 20, false};
  const RegionGrid grid = ComputeRegions(
      Model2CostOrInf, kModel2Candidates, Params(), f_axis, p_axis);
  // Materialization (deferred+immediate) wins a majority of the plane...
  EXPECT_GT(grid.WinShare(Strategy::kDeferred) +
                grid.WinShare(Strategy::kImmediate),
            0.5);
  // ...but loop-join still wins somewhere (high P).
  EXPECT_GT(grid.WinShare(Strategy::kQmLoopJoin), 0.0);
}

TEST(Regions, Figure7LoopJoinGrowsWhenFvShrinks) {
  const Axis f_axis{0.005, 1.0, 20, true};
  const Axis p_axis{0.01, 0.97, 20, false};
  Params fv01;
  fv01.f_v = 0.01;
  const double share_10 = ComputeRegions(Model2CostOrInf, kModel2Candidates,
                                         Params(), f_axis, p_axis)
                              .WinShare(Strategy::kQmLoopJoin);
  const double share_01 = ComputeRegions(Model2CostOrInf, kModel2Candidates,
                                         fv01, f_axis, p_axis)
                              .WinShare(Strategy::kQmLoopJoin);
  EXPECT_GT(share_01, share_10);
}

TEST(Regions, AsciiRenderingContainsLegendAndRows) {
  const Axis f_axis{0.01, 0.5, 4, true};
  const Axis p_axis{0.1, 0.9, 10, false};
  const RegionGrid grid = ComputeRegions(
      Model1CostOrInf, kModel1Candidates, Params(), f_axis, p_axis);
  const std::string art = grid.ToAscii();
  EXPECT_NE(art.find("legend:"), std::string::npos);
  EXPECT_NE(art.find("f="), std::string::npos);
  // 4 f-rows, each with p_axis.count cells.
  EXPECT_EQ(std::count(art.begin(), art.end(), '|'), 4);
}

}  // namespace
}  // namespace viewmat::costmodel
