#include "workload/workload.h"

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk.h"

namespace viewmat::workload {
namespace {

costmodel::Params SmallParams() {
  costmodel::Params p;
  p.N = 1000;
  p.k = 20;
  p.l = 5;
  p.q = 10;
  return p;
}

TEST(Scenario, SchemasAreExactlySBytes) {
  const Scenario scenario(SmallParams(), 1);
  EXPECT_EQ(scenario.BaseSchema().record_size(), 100u);
  EXPECT_EQ(scenario.R2Schema().record_size(), 100u);
}

TEST(Scenario, ViewPredicateSelectsFractionF) {
  const Scenario scenario(SmallParams(), 1);
  const db::PredicateRef pred = scenario.ViewPredicate();
  int64_t matching = 0;
  for (int64_t k = 0; k < scenario.n(); ++k) {
    if (pred->Evaluate(scenario.BaseTuple(k))) ++matching;
  }
  EXPECT_EQ(matching, scenario.ViewTupleCount());
  EXPECT_EQ(matching, 100);  // f = .1 of N = 1000
}

TEST(Scenario, EveryBaseTupleJoinsExactlyOneR2Tuple) {
  const Scenario scenario(SmallParams(), 1);
  for (int64_t k = 0; k < scenario.n(); ++k) {
    const int64_t k2 = scenario.BaseTuple(k).at(Scenario::kFieldK2).AsInt64();
    EXPECT_GE(k2, 0);
    EXPECT_LT(k2, scenario.r2_count());
  }
  EXPECT_EQ(scenario.r2_count(), 100);  // f_R2 = .1
}

TEST(Scenario, LoadBasePopulatesRelation) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(4000, &tracker);
  storage::BufferPool pool(&disk, 64);
  db::Catalog catalog(&pool);
  Scenario scenario(SmallParams(), 1);
  auto rel = scenario.LoadBase(&catalog, "R",
                               db::AccessMethod::kClusteredBTree);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->tuple_count(), 1000u);
  db::Tuple row;
  ASSERT_TRUE((*rel)->FindByKey(42, &row).ok());
  EXPECT_TRUE(row == scenario.BaseTuple(42));
}

TEST(Scenario, UpdateTransactionsTouchLTuplesAndMoveOracle) {
  storage::CostTracker tracker;
  storage::SimulatedDisk disk(4000, &tracker);
  storage::BufferPool pool(&disk, 64);
  db::Catalog catalog(&pool);
  Scenario scenario(SmallParams(), 1);
  auto rel = scenario.LoadBase(&catalog, "R",
                               db::AccessMethod::kClusteredBTree);
  ASSERT_TRUE(rel.ok());
  const db::Transaction txn = scenario.NextUpdateTransaction(*rel);
  // l = 5 updates = 5 deletes + 5 inserts net (distinct victims whp).
  EXPECT_GE(txn.tuples_written(), 8u);
  EXPECT_LE(txn.tuples_written(), 10u);
  // Old values in the deletes must round-trip against the relation.
  ASSERT_TRUE(txn.ApplyToBase().ok());
  for (const auto& [r, nc] : txn.changes()) {
    for (const db::Tuple& t : nc.inserts()) {
      db::Tuple now;
      ASSERT_TRUE(r->FindByKey(r->KeyOf(t), &now).ok());
      EXPECT_TRUE(now == scenario.BaseTuple(r->KeyOf(t)));
    }
  }
}

TEST(Scenario, QueryRangeSpansFvOfView) {
  Scenario scenario(SmallParams(), 1);
  for (int i = 0; i < 50; ++i) {
    const Scenario::QueryRange r = scenario.NextQueryRange();
    EXPECT_EQ(r.hi - r.lo + 1, 10);  // f_v * f * N = .1 * 100
    EXPECT_GE(r.lo, 0);
    EXPECT_LE(r.hi, scenario.ViewTupleCount() - 1);
  }
}

TEST(Scenario, OpSequenceHasExactCounts) {
  const Scenario scenario(SmallParams(), 1);
  const auto ops = scenario.OpSequence();
  size_t updates = 0, queries = 0;
  for (const auto op : ops) {
    (op == Scenario::OpKind::kUpdate ? updates : queries)++;
  }
  EXPECT_EQ(updates, 20u);
  EXPECT_EQ(queries, 10u);
}

TEST(Scenario, OpSequenceInterleavesEvenly) {
  const Scenario scenario(SmallParams(), 1);
  const auto ops = scenario.OpSequence();
  // With k=20, q=10 the pattern is exactly (U U Q) repeated.
  int run = 0;
  for (const auto op : ops) {
    if (op == Scenario::OpKind::kUpdate) {
      ++run;
      EXPECT_LE(run, 2);
    } else {
      EXPECT_EQ(run, 2);
      run = 0;
    }
  }
}

TEST(Scenario, FractionalKPerQueryStillEmitsAllOps) {
  costmodel::Params p = SmallParams();
  p.k = 7;  // not a multiple of q
  const Scenario scenario(p, 1);
  const auto ops = scenario.OpSequence();
  size_t updates = 0, queries = 0;
  for (const auto op : ops) {
    (op == Scenario::OpKind::kUpdate ? updates : queries)++;
  }
  EXPECT_EQ(updates, 7u);
  EXPECT_EQ(queries, 10u);
}

TEST(Scenario, SameSeedSameWorkload) {
  Scenario a(SmallParams(), 99);
  Scenario b(SmallParams(), 99);
  EXPECT_TRUE(a.BaseTuple(5) == b.BaseTuple(5));
  for (int i = 0; i < 10; ++i) {
    const auto ra = a.NextQueryRange();
    const auto rb = b.NextQueryRange();
    EXPECT_EQ(ra.lo, rb.lo);
    EXPECT_EQ(ra.hi, rb.hi);
  }
}

}  // namespace
}  // namespace viewmat::workload
