#include "server/oracle.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace viewmat::server {
namespace {

// The nine model × strategy combinations the server must serve: model 1
// supports every strategy; the two-relation join view (model 2) supports
// the three strategies with join maintenance.
std::vector<std::pair<int, sim::StrategyKind>> AllCombos() {
  std::vector<std::pair<int, sim::StrategyKind>> combos;
  for (const sim::StrategyKind kind : sim::kAllStrategyKinds) {
    combos.emplace_back(1, kind);
  }
  combos.emplace_back(2, sim::StrategyKind::kQueryModification);
  combos.emplace_back(2, sim::StrategyKind::kImmediate);
  combos.emplace_back(2, sim::StrategyKind::kDeferred);
  return combos;
}

ViewServer::Options ComboOptions(int model, sim::StrategyKind kind) {
  ViewServer::Options options;
  options.driver.kind = kind;
  options.driver.model = model;
  options.driver.params = sim::TortureParams(costmodel::Params());
  options.driver.seed = 7;
  options.schedule.clients = 4;
  options.schedule.ops_per_client = 5;
  options.schedule.update_fraction = 0.55;
  options.schedule.abort_fraction = 0.15;
  options.schedule.seed = 99;
  return options;
}

TEST(SerializabilityOracle, AllNineCombosAtOneFourAndEightWorkers) {
  for (const auto& [model, kind] : AllCombos()) {
    std::string detail;
    const Status st =
        CheckSerializability(ComboOptions(model, kind), {1, 4, 8}, &detail);
    EXPECT_TRUE(st.ok()) << "model " << model << " strategy "
                         << sim::StrategyKindName(kind) << ": "
                         << st.message();
    EXPECT_NE(detail.find("serializable:"), std::string::npos);
  }
}

TEST(SerializabilityOracle, AllNineCombosWithGroupCommitOn) {
  // The group-commit pipeline batches WAL syncs but must release commit
  // LSNs in schedule-sequence order — so every combo stays serializable,
  // with outcomes identical at 1, 4, and 8 workers, exactly as without
  // batching.
  for (const auto& [model, kind] : AllCombos()) {
    ViewServer::Options options = ComboOptions(model, kind);
    options.driver.group_commit = true;
    options.commit_batch = 3;
    std::string detail;
    const Status st = CheckSerializability(options, {1, 4, 8}, &detail);
    EXPECT_TRUE(st.ok()) << "model " << model << " strategy "
                         << sim::StrategyKindName(kind)
                         << " (group commit): " << st.message();
    EXPECT_NE(detail.find("serializable:"), std::string::npos);
  }
}

TEST(SerializabilityOracle, GroupCommitSurvivesScriptedCrashes) {
  // A crash can land between a batch's WAL appends and its single sync —
  // the unsynced tail must be rejected by recovery and reconciliation,
  // and the surviving prefix must still replay serially, at every worker
  // count.
  for (const sim::StrategyKind kind :
       {sim::StrategyKind::kQueryModification, sim::StrategyKind::kImmediate,
        sim::StrategyKind::kDeferred}) {
    for (const uint64_t crash_at : {20u, 60u, 120u}) {
      ViewServer::Options options = ComboOptions(1, kind);
      options.driver.group_commit = true;
      options.commit_batch = 4;
      options.crash_at_disk_op = crash_at;
      std::string detail;
      const Status st = CheckSerializability(options, {1, 4, 8}, &detail);
      EXPECT_TRUE(st.ok()) << sim::StrategyKindName(kind) << " crash@"
                           << crash_at << " (group commit): "
                           << st.message();
    }
  }
}

TEST(SerializabilityOracle, HighContentionWriteHeavySchedules) {
  // Two clients hammering updates over the same small key space maximizes
  // write-write interval overlap — the worst case for the lock protocol.
  for (const sim::StrategyKind kind :
       {sim::StrategyKind::kImmediate, sim::StrategyKind::kDeferred}) {
    ViewServer::Options options = ComboOptions(1, kind);
    options.schedule.clients = 2;
    options.schedule.ops_per_client = 10;
    options.schedule.update_fraction = 0.9;
    const Status st = CheckSerializability(options, {1, 8}, nullptr);
    EXPECT_TRUE(st.ok()) << sim::StrategyKindName(kind) << ": "
                         << st.message();
  }
}

TEST(SerializabilityOracle, SurvivesScriptedMidScheduleCrashes) {
  // Crash at several disk-op offsets: whatever prefix committed must still
  // be serializable after recovery, at every worker count, with no stale
  // or corrupt query answers.
  for (const sim::StrategyKind kind :
       {sim::StrategyKind::kQueryModification, sim::StrategyKind::kImmediate,
        sim::StrategyKind::kDeferred}) {
    for (const uint64_t crash_at : {20u, 60u, 120u}) {
      ViewServer::Options options = ComboOptions(1, kind);
      options.crash_at_disk_op = crash_at;
      std::string detail;
      const Status st = CheckSerializability(options, {1, 4, 8}, &detail);
      EXPECT_TRUE(st.ok()) << sim::StrategyKindName(kind) << " crash@"
                           << crash_at << ": " << st.message();
    }
  }
}

TEST(SerializabilityOracle, CrashedModelTwoRunRecovers) {
  ViewServer::Options options =
      ComboOptions(2, sim::StrategyKind::kImmediate);
  options.crash_at_disk_op = 80;
  const Status st = CheckSerializability(options, {1, 4}, nullptr);
  EXPECT_TRUE(st.ok()) << st.message();
}

TEST(SerialReplayDigest, RejectsMismatchedOpResults) {
  ViewServer::Options options =
      ComboOptions(1, sim::StrategyKind::kDeferred);
  auto server = ViewServer::Create(options);
  ASSERT_TRUE(server.ok());
  const std::vector<ViewServer::OpResult> wrong_size(3);
  EXPECT_FALSE(
      SerialReplayDigest(options, (*server)->schedule(), wrong_size).ok());
}

TEST(CheckSerializability, RejectsEmptyWorkerList) {
  EXPECT_FALSE(CheckSerializability(
                   ComboOptions(1, sim::StrategyKind::kImmediate), {}, nullptr)
                   .ok());
}

}  // namespace
}  // namespace viewmat::server
