#include "server/view_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/oracle.h"

namespace viewmat::server {
namespace {

ViewServer::Options SmallOptions(sim::StrategyKind kind, int model,
                                 size_t workers) {
  ViewServer::Options options;
  options.driver.kind = kind;
  options.driver.model = model;
  options.driver.params = sim::TortureParams(costmodel::Params());
  options.driver.seed = 41;
  options.schedule.clients = 3;
  options.schedule.ops_per_client = 4;
  options.schedule.update_fraction = 0.6;
  options.schedule.abort_fraction = 0.2;
  options.schedule.seed = 1234;
  options.workers = workers;
  return options;
}

ViewServer::Result MustRun(const ViewServer::Options& options) {
  auto server = ViewServer::Create(options);
  EXPECT_TRUE(server.ok()) << server.status().message();
  auto result = (*server)->Run();
  EXPECT_TRUE(result.ok()) << result.status().message();
  return *result;
}

TEST(ViewServerOptions, EachRejectionNamesItsField) {
  ViewServer::Options options = SmallOptions(sim::StrategyKind::kDeferred, 1, 1);
  options.workers = 0;
  auto r = ViewServer::Create(options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Options::workers"), std::string::npos)
      << r.status().message();

  options = SmallOptions(sim::StrategyKind::kDeferred, 1, 1);
  options.schedule.clients = 0;
  r = ViewServer::Create(options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Options::schedule.clients"),
            std::string::npos)
      << r.status().message();

  options = SmallOptions(sim::StrategyKind::kDeferred, 1, 1);
  options.schedule.ops_per_client = 0;
  r = ViewServer::Create(options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Options::schedule.ops_per_client"),
            std::string::npos)
      << r.status().message();

  options = SmallOptions(sim::StrategyKind::kDeferred, 1, 1);
  options.driver.group_commit = true;
  options.commit_batch = 0;
  r = ViewServer::Create(options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Options::commit_batch"),
            std::string::npos)
      << r.status().message();

  // commit_batch = 0 without group commit is unused and therefore legal.
  options = SmallOptions(sim::StrategyKind::kDeferred, 1, 1);
  options.commit_batch = 0;
  EXPECT_TRUE(ViewServer::Create(options).ok());
}

TEST(Schedule, IsDeterministicAndClientLocal) {
  auto server = ViewServer::Create(
      SmallOptions(sim::StrategyKind::kDeferred, 1, 1));
  ASSERT_TRUE(server.ok());
  auto again = ViewServer::Create(
      SmallOptions(sim::StrategyKind::kImmediate, 1, 8));
  ASSERT_TRUE(again.ok());
  // Same schedule seed → same interleaving, victims, ranges, and lock
  // sets, regardless of strategy or worker count.
  const Schedule& a = (*server)->schedule();
  const Schedule& b = (*again)->schedule();
  ASSERT_EQ(a.ops.size(), b.ops.size());
  ASSERT_EQ(a.ops.size(), 12u);
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].client, b.ops[i].client);
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
    EXPECT_EQ(a.ops[i].victims, b.ops[i].victims);
    EXPECT_EQ(a.ops[i].voluntary_abort, b.ops[i].voluntary_abort);
    EXPECT_EQ(a.ops[i].lo, b.ops[i].lo);
    EXPECT_EQ(a.ops[i].hi, b.ops[i].hi);
  }
}

TEST(Schedule, ReaderLocksAreClippedToTheScreen) {
  auto server = ViewServer::Create(
      SmallOptions(sim::StrategyKind::kQueryModification, 1, 1));
  ASSERT_TRUE(server.ok());
  const int64_t f_cut = (*server)->driver()->scenario()->ViewTupleCount();
  for (const ScheduledOp& op : (*server)->schedule().ops) {
    if (op.kind != OpKind::kQuery) continue;
    for (const LockRequest& req : op.locks) {
      if (req.relation_id != kLockRelBase) continue;
      EXPECT_EQ(req.mode, LockMode::kShared);
      // No reader interval may reach past the view predicate's boundary.
      for (const db::Interval& iv : req.keys.intervals()) {
        ASSERT_TRUE(iv.hi.has_value());
        EXPECT_LT(*iv.hi, f_cut);
      }
    }
  }
}

TEST(ViewServer, OutcomesAndDigestAreWorkerCountInvariant) {
  const ViewServer::Result one =
      MustRun(SmallOptions(sim::StrategyKind::kDeferred, 1, 1));
  const ViewServer::Result four =
      MustRun(SmallOptions(sim::StrategyKind::kDeferred, 1, 4));
  ASSERT_EQ(one.ops.size(), four.ops.size());
  for (size_t i = 0; i < one.ops.size(); ++i) {
    EXPECT_EQ(one.ops[i].status, four.ops[i].status) << "op " << i;
    EXPECT_TRUE(one.ops[i].cost == four.ops[i].cost) << "op " << i;
    EXPECT_DOUBLE_EQ(one.ops[i].commit_ms, four.ops[i].commit_ms);
    EXPECT_DOUBLE_EQ(one.ops[i].logical_wait_ms, four.ops[i].logical_wait_ms);
  }
  EXPECT_EQ(one.state_digest, four.state_digest);
  EXPECT_EQ(one.committed, four.committed);
  EXPECT_EQ(one.aborted, four.aborted);
  EXPECT_DOUBLE_EQ(one.model_ms, four.model_ms);
  EXPECT_DOUBLE_EQ(one.logical_wait_ms, four.logical_wait_ms);
  EXPECT_EQ(one.logical_conflicts, four.logical_conflicts);
}

TEST(ViewServer, HealthyRunsAnswerEveryQueryExactly) {
  const ViewServer::Result result =
      MustRun(SmallOptions(sim::StrategyKind::kImmediate, 1, 4));
  EXPECT_EQ(result.queries_stale, 0u);
  EXPECT_EQ(result.queries_failed, 0u);
  EXPECT_EQ(result.skipped, 0u);
  EXPECT_FALSE(result.crashed);
  EXPECT_EQ(result.committed + result.aborted + result.queries_exact,
            result.ops.size());
  EXPECT_GT(result.committed, 0u);
  EXPECT_GT(result.queries_exact, 0u);
  EXPECT_GT(result.throughput_tps, 0.0);
}

TEST(ViewServer, PerTxnCostContextsPartitionTheModelTime) {
  // The cost-context merge invariant: per-op deltas, merged in commit
  // order, reproduce the tracker's schedule-time totals exactly.
  const ViewServer::Result result =
      MustRun(SmallOptions(sim::StrategyKind::kDeferred, 1, 4));
  storage::CostTracker pricing;  // same default unit costs as the driver
  EXPECT_DOUBLE_EQ(pricing.Ms(result.total_cost), result.model_ms);
  // Aborted transactions never touch storage: their contexts are empty.
  for (size_t i = 0; i < result.ops.size(); ++i) {
    if (result.ops[i].status == OpStatus::kAborted) {
      EXPECT_TRUE(result.ops[i].cost.empty()) << "op " << i;
    }
  }
}

TEST(ViewServer, AllAbortScheduleLeavesStatePristine) {
  ViewServer::Options options =
      SmallOptions(sim::StrategyKind::kImmediate, 1, 2);
  options.schedule.update_fraction = 1.0;
  options.schedule.abort_fraction = 1.0;
  const ViewServer::Result aborted = MustRun(options);
  EXPECT_EQ(aborted.committed, 0u);
  EXPECT_EQ(aborted.aborted, aborted.ops.size());

  // A schedule with no ops at all must land on the same digest: the
  // aborts' undo really did keep every net change out of the base.
  options.schedule.update_fraction = 0.0;
  options.schedule.abort_fraction = 0.0;
  const ViewServer::Result noop = MustRun(options);
  EXPECT_EQ(aborted.state_digest, noop.state_digest);
}

TEST(ViewServer, EmitsSpansAndMetrics) {
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  ViewServer::Options options =
      SmallOptions(sim::StrategyKind::kDeferred, 1, 2);
  options.metrics = &metrics;
  options.tracer = &tracer;
  const ViewServer::Result result = MustRun(options);
  // One server.txn / server.query root span per executed op (lock.wait
  // spans are timing-dependent extras nested under none of them).
  size_t roots = 0;
  for (const obs::Span& span : tracer.spans()) {
    if (span.name == "server.txn" || span.name == "server.query") ++roots;
  }
  EXPECT_EQ(roots, result.ops.size());
  EXPECT_GE(metrics.counter_count(), 8u);
  EXPECT_EQ(metrics.histogram_count(), 1u);
}

TEST(ViewServer, ModelTwoJoinViewServes) {
  const ViewServer::Result result =
      MustRun(SmallOptions(sim::StrategyKind::kQueryModification, 2, 4));
  EXPECT_EQ(result.queries_stale, 0u);
  EXPECT_EQ(result.queries_failed, 0u);
  EXPECT_GT(result.queries_exact, 0u);
}

TEST(ViewServer, CrashMidScheduleRecoversPrefixConsistent) {
  ViewServer::Options options =
      SmallOptions(sim::StrategyKind::kImmediate, 1, 4);
  options.schedule.ops_per_client = 6;
  options.crash_at_disk_op = 40;  // lands inside the schedule
  const ViewServer::Result result = MustRun(options);
  EXPECT_TRUE(result.crashed);
  EXPECT_GT(result.skipped, 0u);
  EXPECT_EQ(result.queries_stale, 0u);
  // The recovered state must equal the serial order of what committed.
  std::string detail;
  const Status st = CheckSerializability(options, {1, 2, 4}, &detail);
  EXPECT_TRUE(st.ok()) << st.message();
}

TEST(Schedule, AnalyzeCountsIntersectingLockSetsInTheWindow) {
  // Hand-built three-op schedule: two writers on key 5 from different
  // clients, then a reader whose S range covers it. Window = clients = 2,
  // so each op sees exactly its immediate predecessor.
  const auto write5 = [](uint64_t seq, uint32_t client) {
    ScheduledOp op;
    op.seq = seq;
    op.client = client;
    op.kind = OpKind::kUpdate;
    op.victims = {{5, 1.0}};
    op.locks = {LockRequest{kLockRelBase, LockMode::kExclusive,
                            db::IntervalSet(db::Interval{5, 5})}};
    return op;
  };
  Schedule schedule;
  schedule.options.clients = 2;
  schedule.ops.push_back(write5(0, 0));
  schedule.ops.push_back(write5(1, 1));
  ScheduledOp reader;
  reader.seq = 2;
  reader.client = 0;
  reader.kind = OpKind::kQuery;
  reader.locks = {LockRequest{kLockRelBase, LockMode::kShared,
                              db::IntervalSet(db::Interval{0, 10})}};
  schedule.ops.push_back(reader);

  EXPECT_EQ(AnalyzeSchedule(&schedule), 2u);
  EXPECT_EQ(schedule.ops[1].conflicts_ww, 1u);
  EXPECT_EQ(schedule.ops[1].conflict_preds, std::vector<uint32_t>{0});
  EXPECT_EQ(schedule.ops[2].conflicts_rw, 1u);
  EXPECT_EQ(schedule.ops[2].conflict_preds, std::vector<uint32_t>{1});
}

TEST(ViewServer, LogicalConflictsComeFromLockIntersections) {
  // A 2-client all-writer schedule, seed pinned to one whose adjacent
  // cross-client write sets provably intersect (3 ww edges).
  ViewServer::Options options =
      SmallOptions(sim::StrategyKind::kImmediate, 1, 2);
  options.schedule.clients = 2;
  options.schedule.ops_per_client = 8;
  options.schedule.update_fraction = 1.0;
  options.schedule.abort_fraction = 0.0;
  options.schedule.seed = 6;
  const ViewServer::Result result = MustRun(options);
  EXPECT_EQ(result.logical_conflicts, 3u);
  EXPECT_EQ(result.conflicts_rw, 0u);  // no readers in this schedule
  EXPECT_EQ(result.logical_conflicts, result.conflicts_ww);
  EXPECT_GT(result.logical_wait_ms, 0.0);
}

TEST(ViewServer, ContentionProfilesKeepOutcomesWorkerCountInvariant) {
  // The scaling bench's core claim, pinned as a test: whatever the
  // contention geometry, the logical artifact may not move with the
  // worker count.
  for (const ContentionProfile profile :
       {ContentionProfile::kDisjoint, ContentionProfile::kHotRange,
        ContentionProfile::kUniform}) {
    ViewServer::Options base =
        SmallOptions(sim::StrategyKind::kDeferred, 1, 1);
    base.schedule.contention = profile;
    base.driver.group_commit = true;
    base.commit_batch = 3;
    const ViewServer::Result one = MustRun(base);
    base.workers = 8;
    const ViewServer::Result eight = MustRun(base);
    ASSERT_EQ(one.ops.size(), eight.ops.size());
    for (size_t i = 0; i < one.ops.size(); ++i) {
      EXPECT_EQ(one.ops[i].status, eight.ops[i].status)
          << ContentionProfileName(profile) << " op " << i;
      EXPECT_TRUE(one.ops[i].cost == eight.ops[i].cost)
          << ContentionProfileName(profile) << " op " << i;
      EXPECT_DOUBLE_EQ(one.ops[i].commit_ms, eight.ops[i].commit_ms);
    }
    EXPECT_EQ(one.state_digest, eight.state_digest)
        << ContentionProfileName(profile);
    EXPECT_EQ(one.commit_batches, eight.commit_batches);
    EXPECT_DOUBLE_EQ(one.model_ms, eight.model_ms);
  }
}

TEST(ViewServer, UniformProfileReproducesTheHistoricalSchedule) {
  // kUniform must draw the exact pre-profile RNG stream: old seeds keep
  // their schedules byte-for-byte, so committed baselines stay valid.
  ViewServer::Options options =
      SmallOptions(sim::StrategyKind::kDeferred, 1, 1);
  ASSERT_EQ(options.schedule.contention, ContentionProfile::kUniform);
  const ViewServer::Result result = MustRun(options);
  EXPECT_GT(result.committed, 0u);  // same seed 1234 schedule as ever
}

TEST(ViewServer, DisjointProfilePartitionsClientsOntoDisjointLockSets) {
  ViewServer::Options options =
      SmallOptions(sim::StrategyKind::kImmediate, 1, 4);
  options.schedule.clients = 4;
  options.schedule.ops_per_client = 6;
  options.schedule.contention = ContentionProfile::kDisjoint;
  auto server = ViewServer::Create(options);
  ASSERT_TRUE(server.ok());
  const Schedule& schedule = (*server)->schedule();
  for (size_t i = 0; i < schedule.ops.size(); ++i) {
    for (size_t j = i + 1; j < schedule.ops.size(); ++j) {
      const ScheduledOp& a = schedule.ops[i];
      const ScheduledOp& b = schedule.ops[j];
      if (a.client == b.client) continue;
      EXPECT_FALSE(Conflicts(a.locks, b.locks))
          << "ops " << i << " (client " << a.client << ") and " << j
          << " (client " << b.client << ") intersect";
    }
  }
  const auto result = (*server)->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->logical_conflicts, 0u);
}

TEST(ViewServer, HotRangeProfileConfinesClientsToThePrefix) {
  ViewServer::Options options =
      SmallOptions(sim::StrategyKind::kImmediate, 1, 1);
  options.schedule.contention = ContentionProfile::kHotRange;
  auto server = ViewServer::Create(options);
  ASSERT_TRUE(server.ok());
  const int64_t n = (*server)->driver()->scenario()->n();
  const int64_t prefix = std::max<int64_t>(1, n / 8);
  for (const ScheduledOp& op : (*server)->schedule().ops) {
    if (op.kind == OpKind::kUpdate) {
      for (const auto& [key, value] : op.victims) {
        EXPECT_GE(key, 0);
        EXPECT_LT(key, prefix);
      }
    } else {
      EXPECT_GE(op.lo, 0);
      EXPECT_LT(op.lo, prefix);
    }
  }
}

TEST(ViewServer, GroupCommitBatchesRetirementSyncs) {
  ViewServer::Options options =
      SmallOptions(sim::StrategyKind::kDeferred, 1, 4);
  options.schedule.clients = 4;
  options.schedule.ops_per_client = 8;
  options.schedule.update_fraction = 0.8;
  options.driver.group_commit = true;
  options.commit_batch = 4;
  const ViewServer::Result result = MustRun(options);
  ASSERT_GT(result.committed, 4u);
  EXPECT_GT(result.commit_batches, 0u);
  // Batching must actually fold commits together: strictly fewer batches
  // than committed updates.
  EXPECT_LT(result.commit_batches, result.committed);
  EXPECT_EQ(result.queries_stale, 0u);
  EXPECT_EQ(result.queries_failed, 0u);
}

TEST(ViewServer, GroupCommitCrashReconcilesTheUnsyncedTail) {
  // Crash with batches in flight: recovery may only keep transactions
  // whose batch sync made it to the platter; everything after is demoted,
  // identically at every worker count, and the survivors replay serially.
  ViewServer::Options options =
      SmallOptions(sim::StrategyKind::kDeferred, 1, 1);
  options.schedule.clients = 4;
  options.schedule.ops_per_client = 6;
  options.driver.group_commit = true;
  options.commit_batch = 4;
  options.crash_at_disk_op = 40;
  const ViewServer::Result one = MustRun(options);
  EXPECT_TRUE(one.crashed);
  EXPECT_GE(one.recoveries, 1u);
  options.workers = 4;
  const ViewServer::Result four = MustRun(options);
  ASSERT_EQ(one.ops.size(), four.ops.size());
  for (size_t i = 0; i < one.ops.size(); ++i) {
    EXPECT_EQ(one.ops[i].status, four.ops[i].status) << "op " << i;
  }
  EXPECT_EQ(one.state_digest, four.state_digest);
  std::string detail;
  const Status oracle = CheckSerializability(options, {1, 2, 4}, &detail);
  EXPECT_TRUE(oracle.ok()) << oracle.message();
}

TEST(ViewServer, RunIsOneShot) {
  auto server = ViewServer::Create(
      SmallOptions(sim::StrategyKind::kQueryModification, 1, 1));
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Run().ok());
  EXPECT_FALSE((*server)->Run().ok());
}

}  // namespace
}  // namespace viewmat::server
