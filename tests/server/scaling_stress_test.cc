// 16-thread physical-scaling stress: the two pillars the scaling work
// stands on, pounded far harder than the server itself ever does.
//
//  - CostShard merge exactness: workers charging thread-local shards
//    concurrently, merged serially afterwards, must reproduce the totals a
//    serial execution would have accumulated to the counter. The counters
//    are integers, so the check is EXPECT_EQ, not "close enough".
//  - Striped-lock discipline: per-stripe no-barging id-order grants and
//    deadlock freedom across stripes under adversarial interval overlap
//    (every thread spanning several stripes and two relations at once).
//
// These run in the server, tsan, and scaling ctest lanes (compound label
// server-tsan-scaling); the TSan run is what certifies the happens-before
// edges the merge mutex and stripe mutexes are claimed to provide.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "db/predicate.h"
#include "server/lock_manager.h"
#include "storage/cost_tracker.h"

namespace viewmat::server {
namespace {

constexpr size_t kThreads = 16;

db::IntervalSet Keys(int64_t lo, int64_t hi) {
  return db::IntervalSet(db::Interval{lo, hi});
}

LockSet OneLock(uint32_t rel, LockMode mode, int64_t lo, int64_t hi) {
  return {LockRequest{rel, mode, Keys(lo, hi)}};
}

TEST(CostShardStress, SixteenThreadsMergeToExactSerialTotals) {
  storage::CostTracker tracker;
  // Direct owner charges before sharded mode begins — the merge must add
  // to them, not replace them.
  tracker.ChargeRead(3);
  tracker.ChargeTupleCpu(5);
  tracker.BeginShardedMode();

  std::vector<storage::CostShard> shards(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker, &shards, t] {
      const storage::ShardScope scope(&tracker, &shards[t]);
      const uint64_t reps = 200 + t;  // distinct per-thread load
      for (uint64_t i = 0; i < reps; ++i) {
        tracker.ChargeRead(1 + t % 3);
        tracker.ChargeWrite(t % 2);
        tracker.ChargeScreen(2);
        tracker.ChargeTupleCpu(1);
        tracker.ChargeAdSetOp(t % 5);
        // Attribution tags must shard too: these reads land in the
        // (kBptree, kQuery) cell of the shard's matrix, not the tracker's.
        const storage::ScopedComponent c(&tracker,
                                         storage::Component::kBptree);
        const storage::ScopedPhase p(&tracker, storage::Phase::kQuery);
        tracker.ChargeRead(1);
        // Workers may read the model clock while sharded (the server's
        // tracer does); it must serve the atomically published value.
        const double now = tracker.NowMs();
        ASSERT_GE(now, 0.0);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Merge serially, as the server does in commit-LSN order under its
  // retirement mutex. Charges are additive, so the totals cannot depend
  // on the merge order — only the intermediate running values do.
  for (const storage::CostShard& s : shards) tracker.MergeShard(s);
  tracker.EndShardedMode();

  storage::CostCounters expect;
  expect.disk_reads = 3;
  expect.tuple_cpu_ops = 5;
  uint64_t tagged_reads = 0;
  for (uint64_t t = 0; t < kThreads; ++t) {
    const uint64_t reps = 200 + t;
    expect.disk_reads += reps * (1 + t % 3) + reps;
    expect.disk_writes += reps * (t % 2);
    expect.screen_tests += reps * 2;
    expect.tuple_cpu_ops += reps;
    expect.ad_set_ops += reps * (t % 5);
    tagged_reads += reps;
  }
  EXPECT_EQ(tracker.counters().disk_reads, expect.disk_reads);
  EXPECT_EQ(tracker.counters().disk_writes, expect.disk_writes);
  EXPECT_EQ(tracker.counters().screen_tests, expect.screen_tests);
  EXPECT_EQ(tracker.counters().tuple_cpu_ops, expect.tuple_cpu_ops);
  EXPECT_EQ(tracker.counters().ad_set_ops, expect.ad_set_ops);
  // The attribution matrix merged exactly as well.
  const storage::CostCounters& cell = tracker.attributed().at(
      storage::Component::kBptree, storage::Phase::kQuery);
  EXPECT_EQ(cell.disk_reads, tagged_reads);
  // Model milliseconds are a pure function of the merged counters.
  EXPECT_DOUBLE_EQ(tracker.TotalMs(), tracker.Ms(expect));
}

TEST(CostShardStress, RepeatedShardedRoundsStayExact) {
  // The server reuses one shard per worker across ops with Reset()
  // between; totals must stay exact across many bind/charge/merge rounds.
  storage::CostTracker tracker;
  tracker.BeginShardedMode();
  std::vector<storage::CostShard> shards(kThreads);
  uint64_t expect_reads = 0;
  for (int round = 0; round < 8; ++round) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&tracker, &shards, t, round] {
        shards[t].Reset();
        const storage::ShardScope scope(&tracker, &shards[t]);
        for (int i = 0; i < 50 + round; ++i) tracker.ChargeRead();
      });
    }
    for (std::thread& th : threads) th.join();
    for (const storage::CostShard& s : shards) tracker.MergeShard(s);
    expect_reads += kThreads * static_cast<uint64_t>(50 + round);
  }
  tracker.EndShardedMode();
  EXPECT_EQ(tracker.counters().disk_reads, expect_reads);
}

TEST(StripedLockStress, ConflictingWaitersGrantInIdOrderWithoutBarging) {
  LockManager lm;
  // Txn 1 holds the whole relation; waiters arrive in DESCENDING id order
  // (9 first), each parked before the next spawns. Barging bait: when the
  // holder releases, the most recently arrived waiter has the LOWEST id,
  // and the no-barging rule must grant it first anyway.
  ASSERT_TRUE(lm.TryAcquire(1, OneLock(0, LockMode::kExclusive, 0, 1000)));

  std::mutex order_mu;
  std::vector<uint64_t> grant_order;
  std::vector<std::thread> waiters;
  uint64_t parked = 0;
  for (const uint64_t txn : {9u, 7u, 5u, 3u}) {
    waiters.emplace_back([&lm, &order_mu, &grant_order, txn] {
      const LockSet set = OneLock(0, LockMode::kExclusive, 0, 1000);
      const LockManager::AcquireResult res = lm.Acquire(txn, set);
      EXPECT_TRUE(res.blocked);
      {
        const std::lock_guard<std::mutex> lock(order_mu);
        grant_order.push_back(txn);
      }
      lm.Release(txn);
    });
    // blocked_acquires ticks when a waiter parks on its first stripe, so
    // this poll guarantees arrival order == spawn order.
    ++parked;
    while (lm.stats().blocked_acquires < parked) std::this_thread::yield();
  }

  lm.Release(1);
  for (std::thread& th : waiters) th.join();
  EXPECT_EQ(grant_order, (std::vector<uint64_t>{3, 5, 7, 9}));
  EXPECT_EQ(lm.HeldCount(1), 0u);
  EXPECT_EQ(lm.stats().releases, 5u);
}

TEST(StripedLockStress, AdversarialOverlapIsExclusiveAndDeadlockFree) {
  // 16 threads × 40 rounds of wide, overlapping, two-relation lock sets.
  // Every set spans several stripes; stripe sets of different threads
  // interleave arbitrarily, so any barging or out-of-order stripe
  // acquisition would deadlock or break mutual exclusion. The oracle for
  // exclusion is a per-key claim table: an X holder claims every key in
  // its interval and must find each one unclaimed.
  constexpr int kRounds = 40;
  constexpr int64_t kKeySpace = 512;
  LockManager lm;
  static std::array<std::atomic<uint64_t>, 2 * kKeySpace> claims;
  for (auto& c : claims) c.store(0);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lm, t] {
      for (int r = 0; r < kRounds; ++r) {
        const uint64_t txn = 100 + t * 1000 + static_cast<uint64_t>(r);
        // Deterministic but adversarial geometry: wide intervals sliding
        // with thread and round so every pair of threads collides on some
        // rounds and not others, on both relations.
        const int64_t lo0 = static_cast<int64_t>((t * 37 + r * 17) % 400);
        const int64_t hi0 = lo0 + 64 + static_cast<int64_t>(t % 5) * 8;
        const int64_t lo1 = static_cast<int64_t>((t * 53 + r * 29) % 400);
        const int64_t hi1 = lo1 + 48;
        const bool exclusive = (t + static_cast<size_t>(r)) % 3 != 0;
        const LockMode mode =
            exclusive ? LockMode::kExclusive : LockMode::kShared;
        // The set lists relation 1 before relation 0 — stripe ordering is
        // the manager's job, not the caller's.
        const LockSet set = {LockRequest{1, mode, Keys(lo1, hi1)},
                             LockRequest{0, mode, Keys(lo0, hi0)}};
        lm.Acquire(txn, set);
        if (exclusive) {
          for (int64_t k = lo0; k <= hi0; ++k) {
            const uint64_t prev = claims[static_cast<size_t>(k)].exchange(
                txn, std::memory_order_acq_rel);
            ASSERT_EQ(prev, 0u) << "X overlap on rel0 key " << k;
          }
          for (int64_t k = lo0; k <= hi0; ++k) {
            claims[static_cast<size_t>(k)].store(0,
                                                 std::memory_order_release);
          }
        } else {
          // A shared holder must never observe a concurrent X claim
          // inside its interval.
          for (int64_t k = lo0; k <= hi0; ++k) {
            ASSERT_EQ(
                claims[static_cast<size_t>(k)].load(std::memory_order_acquire),
                0u)
                << "S/X overlap on rel0 key " << k;
          }
        }
        lm.Release(txn);
      }
    });
  }
  // Joining at all is the deadlock-freedom proof (ctest's timeout is the
  // backstop); the claim table proved exclusion along the way.
  for (std::thread& th : threads) th.join();

  const LockManager::Stats stats = lm.stats();
  EXPECT_EQ(stats.acquires, kThreads * static_cast<uint64_t>(kRounds));
  EXPECT_EQ(stats.releases, kThreads * static_cast<uint64_t>(kRounds));
  // Wide intervals must have fanned out over multiple stripes.
  EXPECT_GT(stats.stripe_visits, stats.acquires);
}

}  // namespace
}  // namespace viewmat::server
