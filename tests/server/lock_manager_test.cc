#include "server/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace viewmat::server {
namespace {

db::IntervalSet Keys(int64_t lo, int64_t hi) {
  return db::IntervalSet(db::Interval{lo, hi});
}

LockSet One(uint32_t rel, LockMode mode, int64_t lo, int64_t hi) {
  return {LockRequest{rel, mode, Keys(lo, hi)}};
}

TEST(LockCompatibility, SharedSharedNeverConflicts) {
  EXPECT_FALSE(Conflicts(One(0, LockMode::kShared, 0, 10),
                         One(0, LockMode::kShared, 0, 10)));
}

TEST(LockCompatibility, SharedExclusiveConflictsWhenIntervalsIntersect) {
  EXPECT_TRUE(Conflicts(One(0, LockMode::kShared, 0, 10),
                        One(0, LockMode::kExclusive, 10, 20)));
  EXPECT_TRUE(Conflicts(One(0, LockMode::kExclusive, 5, 5),
                        One(0, LockMode::kShared, 0, 10)));
}

TEST(LockCompatibility, ExclusiveExclusiveConflictsWhenIntervalsIntersect) {
  EXPECT_TRUE(Conflicts(One(0, LockMode::kExclusive, 3, 7),
                        One(0, LockMode::kExclusive, 7, 9)));
}

TEST(LockCompatibility, DisjointIntervalsNeverConflict) {
  EXPECT_FALSE(Conflicts(One(0, LockMode::kExclusive, 0, 4),
                         One(0, LockMode::kExclusive, 5, 9)));
  EXPECT_FALSE(Conflicts(One(0, LockMode::kShared, 0, 4),
                         One(0, LockMode::kExclusive, 5, 9)));
}

TEST(LockCompatibility, DifferentRelationsNeverConflict) {
  EXPECT_TRUE(Conflicts(One(0, LockMode::kExclusive, 0, 10),
                        One(0, LockMode::kExclusive, 0, 10)));
  EXPECT_FALSE(Conflicts(One(0, LockMode::kExclusive, 0, 10),
                         One(1, LockMode::kExclusive, 0, 10)));
}

TEST(LockCompatibility, TLockScreeningCutsReaderWriterConflicts) {
  // The t-lock derivation in miniature: a view screens keys < 8, so a
  // reader locks (range ∩ screen). A writer updating key 9 — outside the
  // screen — cannot conflict with any view reader, even one whose raw
  // query range covered key 9.
  const db::IntervalSet screen = Keys(0, 7);
  const db::IntervalSet range = Keys(5, 12);
  const LockSet reader = {LockRequest{
      0, LockMode::kShared, db::IntervalSet::Intersect(screen, range)}};
  EXPECT_FALSE(Conflicts(reader, One(0, LockMode::kExclusive, 9, 9)));
  EXPECT_TRUE(Conflicts(reader, One(0, LockMode::kExclusive, 7, 7)));
}

TEST(LockCompatibility, EmptyIntervalSetLocksNothing) {
  const LockSet empty = {
      LockRequest{0, LockMode::kExclusive, db::IntervalSet::Empty()}};
  EXPECT_FALSE(Conflicts(empty, One(0, LockMode::kExclusive, 0, 100)));
}

TEST(LockManager, TryAcquireGrantsCompatibleAndRefusesConflicting) {
  LockManager lm;
  EXPECT_TRUE(lm.TryAcquire(1, One(0, LockMode::kShared, 0, 10)));
  EXPECT_TRUE(lm.TryAcquire(2, One(0, LockMode::kShared, 5, 15)));
  EXPECT_FALSE(lm.TryAcquire(3, One(0, LockMode::kExclusive, 7, 7)));
  EXPECT_TRUE(lm.TryAcquire(3, One(0, LockMode::kExclusive, 20, 25)));
  EXPECT_EQ(lm.HeldCount(1), 1u);
  EXPECT_EQ(lm.HeldCount(3), 1u);
}

TEST(LockManager, ReleaseIsTheShrinkPhase) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, One(0, LockMode::kExclusive, 0, 10)));
  EXPECT_FALSE(lm.TryAcquire(2, One(0, LockMode::kShared, 5, 5)));
  lm.Release(1);
  EXPECT_EQ(lm.HeldCount(1), 0u);
  EXPECT_TRUE(lm.TryAcquire(2, One(0, LockMode::kShared, 5, 5)));
  lm.Release(99);  // unknown transaction: harmless no-op
}

TEST(LockManager, AcquireExtendsAHeldSet) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, One(0, LockMode::kExclusive, 0, 4)));
  lm.Acquire(1, One(0, LockMode::kExclusive, 5, 9));
  EXPECT_EQ(lm.HeldCount(1), 2u);
  EXPECT_FALSE(lm.TryAcquire(2, One(0, LockMode::kShared, 9, 9)));
  lm.Release(1);
  EXPECT_TRUE(lm.TryAcquire(2, One(0, LockMode::kShared, 9, 9)));
}

TEST(LockManager, BlockedAcquireWaitsForTheHoldersRelease) {
  // Real cross-thread blocking: txn 2 must not proceed until txn 1
  // releases. The tsan lane runs this to certify the condvar protocol.
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, One(0, LockMode::kExclusive, 0, 10)));
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    const LockManager::AcquireResult r =
        lm.Acquire(2, One(0, LockMode::kShared, 5, 5));
    EXPECT_TRUE(r.blocked);
    granted.store(true);
  });
  // The waiter must be parked, not granted.
  while (lm.stats().blocked_acquires == 0) std::this_thread::yield();
  EXPECT_FALSE(granted.load());
  lm.Release(1);
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(lm.HeldCount(2), 1u);
  const LockManager::Stats stats = lm.stats();
  EXPECT_EQ(stats.blocked_acquires, 1u);
  EXPECT_GE(stats.wall_wait_ms, 0.0);
}

TEST(LockManager, GrantsFollowTransactionIdOrder) {
  // Txn 5 would be grantable the instant txn 1 releases, but txn 3 is
  // already waiting on the same interval — 5 must yield to 3 (no barging
  // past a smaller id), so 3's grant always precedes 5's.
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, One(0, LockMode::kExclusive, 0, 10)));
  std::atomic<int> order{0};
  std::atomic<int> grant_of_3{0};
  std::atomic<int> grant_of_5{0};
  std::thread t3([&] {
    lm.Acquire(3, One(0, LockMode::kExclusive, 5, 5));
    grant_of_3.store(++order);
    lm.Release(3);
  });
  while (lm.stats().blocked_acquires < 1) std::this_thread::yield();
  std::thread t5([&] {
    lm.Acquire(5, One(0, LockMode::kExclusive, 5, 5));
    grant_of_5.store(++order);
    lm.Release(5);
  });
  while (lm.stats().blocked_acquires < 2) std::this_thread::yield();
  lm.Release(1);
  t3.join();
  t5.join();
  EXPECT_LT(grant_of_3.load(), grant_of_5.load());
}

TEST(LockManager, ManyThreadsOnOneHotInterval) {
  // 8 writers × 1 hot key: every grant is exclusive, so the counter's
  // final value proves mutual exclusion held throughout.
  LockManager lm;
  int unguarded = 0;
  std::vector<std::thread> pool;
  for (uint64_t t = 1; t <= 8; ++t) {
    pool.emplace_back([&lm, &unguarded, t] {
      for (int i = 0; i < 16; ++i) {
        lm.Acquire(t, One(0, LockMode::kExclusive, 42, 42));
        ++unguarded;  // data race iff the lock manager is broken
        lm.Release(t);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(unguarded, 8 * 16);
  EXPECT_EQ(lm.stats().releases, 8u * 16u);
}

}  // namespace
}  // namespace viewmat::server
