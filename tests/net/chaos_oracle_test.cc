#include "net/chaos_oracle.h"

#include <gtest/gtest.h>

namespace viewmat::sim {
namespace {

/// The tentpole acceptance bar: under EVERY fault profile — drops,
/// duplicates, reorders, delays, partitions, and crashes during
/// partitions — the sessioned wire protocol must preserve exactly-once
/// commits: no acked commit lost, none applied twice, the final state
/// equal to a serial replay of the acked ledger, and every acked query
/// answer exact at the journal prefix it was served at.

ChaosOracleResult RunCell(ChaosProfile profile, StrategyKind kind,
                          int model = 1, int runs = 4) {
  ChaosOracleOptions options;
  options.profile = profile;
  options.kind = kind;
  options.model = model;
  options.seed = 101;
  options.runs = runs;
  options.jobs = 0;  // one worker per core; merge is in run order
  const auto result = RunChaosOracle(options);
  EXPECT_TRUE(result.ok()) << result.status().message();
  if (!result.ok()) return ChaosOracleResult();
  EXPECT_EQ(result->runs, static_cast<uint64_t>(runs));
  EXPECT_GT(result->acked_commits, 0u) << result->ToString();
  EXPECT_GT(result->acked_queries, 0u) << result->ToString();
  EXPECT_TRUE(result->Clean())
      << ChaosProfileName(profile) << "/" << StrategyKindName(kind)
      << "\n" << result->ToString();
  return *result;
}

TEST(ChaosOracleTest, CleanProfileIsFlawless) {
  const ChaosOracleResult result =
      RunCell(ChaosProfile::kClean, StrategyKind::kDeferred);
  // No injected faults and no crashes — any retries are pure service-time
  // timeouts, and the dedup table must make them invisible.
  EXPECT_EQ(result.faults_injected, 0u) << result.ToString();
  EXPECT_EQ(result.server_crashes, 0u) << result.ToString();
}

TEST(ChaosOracleTest, DropsForceRetriesButNeverDoubleApply) {
  const ChaosOracleResult result =
      RunCell(ChaosProfile::kDrop, StrategyKind::kDeferred);
  // The profile actually bit: clients had to retry.
  EXPECT_GT(result.client_retries, 0u) << result.ToString();
}

TEST(ChaosOracleTest, DuplicatesAreAbsorbedByTheDedupTable) {
  const ChaosOracleResult result =
      RunCell(ChaosProfile::kDuplicate, StrategyKind::kImmediate);
  EXPECT_GT(result.redelivered_hits, 0u) << result.ToString();
}

TEST(ChaosOracleTest, ReordersCannotBreakTheSessionOrder) {
  RunCell(ChaosProfile::kReorder, StrategyKind::kDeferred);
}

TEST(ChaosOracleTest, DelaysOnlyCostTime) {
  RunCell(ChaosProfile::kDelay, StrategyKind::kImmediate);
}

TEST(ChaosOracleTest, PartitionsDegradeReadsButKeepTheLedgerExact) {
  const ChaosOracleResult result =
      RunCell(ChaosProfile::kPartition, StrategyKind::kDeferred);
  // The refresh-path partition window was observed by at least one run.
  EXPECT_GT(result.degraded_query_acks, 0u) << result.ToString();
}

TEST(ChaosOracleTest, CrashDuringPartitionCannotForgetAnAckedCommit) {
  const ChaosOracleResult result =
      RunCell(ChaosProfile::kCrashPartition, StrategyKind::kDeferred);
  EXPECT_GT(result.server_crashes, 0u) << result.ToString();
  EXPECT_GT(result.server_recoveries, 0u) << result.ToString();
}

TEST(ChaosOracleTest, CrashPartitionHoldsForEverySelectProjectStrategy) {
  for (const auto kind :
       {StrategyKind::kQueryModification, StrategyKind::kImmediate,
        StrategyKind::kSnapshot, StrategyKind::kRecomputeOnChange,
        StrategyKind::kHybrid}) {
    RunCell(ChaosProfile::kCrashPartition, kind, 1, /*runs=*/2);
  }
}

TEST(ChaosOracleTest, JoinViewsSurviveChaosToo) {
  for (const auto kind : {StrategyKind::kQueryModification,
                          StrategyKind::kImmediate, StrategyKind::kDeferred}) {
    RunCell(ChaosProfile::kCrashPartition, kind, 2, /*runs=*/2);
  }
}

TEST(ChaosOracleTest, ResultIsIdenticalAtAnyWorkerCount) {
  ChaosOracleOptions options;
  options.profile = ChaosProfile::kDrop;
  options.kind = StrategyKind::kDeferred;
  options.seed = 7;
  options.runs = 4;
  options.jobs = 1;
  const auto serial = RunChaosOracle(options);
  options.jobs = 8;
  const auto fanned = RunChaosOracle(options);
  ASSERT_TRUE(serial.ok() && fanned.ok());
  EXPECT_EQ(serial->ToString(), fanned->ToString());
}

TEST(ChaosOracleTest, RejectsBadOptions) {
  ChaosOracleOptions options;
  options.runs = 0;
  EXPECT_FALSE(RunChaosOracle(options).ok());
  options.runs = 2;
  options.clients = 0;
  EXPECT_FALSE(RunChaosOracle(options).ok());
  options.clients = 2;
  options.ops_per_client = 0;
  EXPECT_FALSE(RunChaosOracle(options).ok());
  options.ops_per_client = 4;
  options.kind = StrategyKind::kSnapshot;
  options.model = 2;  // snapshot is select-project only
  EXPECT_FALSE(RunChaosOracle(options).ok());
}

}  // namespace
}  // namespace viewmat::sim
