#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/wire.h"

namespace viewmat::net {
namespace {

/// Records every delivery with its virtual timestamp.
class Recorder : public Endpoint {
 public:
  explicit Recorder(Network* net) : net_(net) {}
  void OnMessage(NodeId from, const Message& msg) override {
    deliveries.push_back({from, msg, net_->now_ms()});
  }
  struct Delivery {
    NodeId from;
    Message msg;
    double at_ms;
  };
  std::vector<Delivery> deliveries;

 private:
  Network* net_;
};

Message Commit(uint64_t session, uint64_t seq) {
  Message m;
  m.type = MsgType::kCommit;
  m.session_id = session;
  m.seq_no = seq;
  m.victims = {{3, 1.5}, {7, -2.0}};
  return m;
}

TEST(WireTest, EncodeDecodeRoundTrip) {
  Message m = Commit(42, 7);
  m.attempt = 3;
  m.lo = -5;
  m.hi = 99;
  m.wstatus = WireStatus::kOverloaded;
  m.txn_id = 1234;
  m.answer_digest = 0xdeadbeefull;
  m.journal_len = 17;
  m.degraded = true;
  const std::vector<uint8_t> frame = m.Encode();
  const auto decoded = Message::Decode(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->type, MsgType::kCommit);
  EXPECT_EQ(decoded->session_id, 42u);
  EXPECT_EQ(decoded->seq_no, 7u);
  EXPECT_EQ(decoded->attempt, 3u);
  EXPECT_EQ(decoded->victims, m.victims);
  EXPECT_EQ(decoded->lo, -5);
  EXPECT_EQ(decoded->hi, 99);
  EXPECT_EQ(decoded->wstatus, WireStatus::kOverloaded);
  EXPECT_EQ(decoded->txn_id, 1234u);
  EXPECT_EQ(decoded->answer_digest, 0xdeadbeefull);
  EXPECT_EQ(decoded->journal_len, 17u);
  EXPECT_TRUE(decoded->degraded);
}

TEST(WireTest, DecodeRejectsTruncationAtEveryLength) {
  const std::vector<uint8_t> frame = Commit(1, 2).Encode();
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(Message::Decode(frame.data(), len).ok()) << len;
  }
  EXPECT_TRUE(Message::Decode(frame.data(), frame.size()).ok());
}

TEST(WireTest, DecodeRejectsTrailingBytesAndBadEnums) {
  std::vector<uint8_t> frame = Commit(1, 2).Encode();
  frame.push_back(0);
  EXPECT_FALSE(Message::Decode(frame.data(), frame.size()).ok());
  frame.pop_back();
  std::vector<uint8_t> bad_type = frame;
  bad_type[0] = 200;
  EXPECT_FALSE(Message::Decode(bad_type.data(), bad_type.size()).ok());
}

TEST(NetworkTest, DeliversInTimeOrderWithSeededLatency) {
  Network net(Network::Options{});
  Recorder sink(&net);
  net.Register(1, &sink);
  ASSERT_TRUE(net.Send(0, 1, Commit(2, 1)).ok());
  ASSERT_TRUE(net.Send(0, 1, Commit(2, 2)).ok());
  ASSERT_TRUE(net.Send(0, 1, Commit(2, 3), /*extra_delay_ms=*/50.0).ok());
  EXPECT_TRUE(net.RunUntilIdle(100));
  ASSERT_EQ(sink.deliveries.size(), 3u);
  // Same channel, no extra delay: FIFO by send time + per-message jitter.
  EXPECT_EQ(sink.deliveries[0].msg.seq_no, 1u);
  EXPECT_EQ(sink.deliveries[1].msg.seq_no, 2u);
  // The extra-delayed message lands last, at >= 50ms.
  EXPECT_EQ(sink.deliveries[2].msg.seq_no, 3u);
  EXPECT_GE(sink.deliveries[2].at_ms, 50.0);
  EXPECT_EQ(net.sent(), 3u);
  EXPECT_EQ(net.delivered(), 3u);
}

TEST(NetworkTest, UnknownDestinationIsAnError) {
  Network net(Network::Options{});
  EXPECT_FALSE(net.Send(0, 9, Commit(1, 1)).ok());
}

TEST(NetworkTest, SameSeedSameSchedule) {
  std::vector<double> times[2];
  for (int round = 0; round < 2; ++round) {
    Network::Options options;
    options.seed = 77;
    Network net(options);
    Recorder sink(&net);
    net.Register(1, &sink);
    for (uint64_t i = 0; i < 16; ++i) {
      ASSERT_TRUE(net.Send(0, 1, Commit(2, i)).ok());
    }
    EXPECT_TRUE(net.RunUntilIdle(1000));
    for (const auto& d : sink.deliveries) times[round].push_back(d.at_ms);
  }
  EXPECT_EQ(times[0], times[1]);
}

TEST(NetworkTest, TimersFireInPostedTimeOrder) {
  Network net(Network::Options{});
  std::vector<int> fired;
  net.Post(30.0, [&] { fired.push_back(3); });
  net.Post(10.0, [&] { fired.push_back(1); });
  net.Post(20.0, [&] { fired.push_back(2); });
  net.Post(10.0, [&] { fired.push_back(4); });  // ties break by insertion
  EXPECT_TRUE(net.RunUntilIdle(100));
  EXPECT_EQ(fired, (std::vector<int>{1, 4, 2, 3}));
  EXPECT_DOUBLE_EQ(net.now_ms(), 30.0);
}

TEST(NetworkTest, EventCapStopsARunawayLoop) {
  Network net(Network::Options{});
  std::function<void()> again = [&] { net.Post(1.0, again); };
  net.Post(1.0, again);
  EXPECT_FALSE(net.RunUntilIdle(50));  // liveness verdict: not drained
  EXPECT_EQ(net.events_run(), 50u);
}

}  // namespace
}  // namespace viewmat::net
