#include "net/faulty_network.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"

namespace viewmat::net {
namespace {

class Counter : public Endpoint {
 public:
  void OnMessage(NodeId from, const Message& msg) override {
    (void)from;
    seqs.push_back(msg.seq_no);
  }
  std::vector<uint64_t> seqs;
};

Message Msg(uint64_t seq) {
  Message m;
  m.type = MsgType::kCommit;
  m.session_id = 2;
  m.seq_no = seq;
  return m;
}

TEST(FaultyNetworkTest, ScriptDropAtMsgDropsExactlyTheNth) {
  Network net(Network::Options{});
  Counter sink;
  net.Register(1, &sink);
  FaultyNetwork faulty(&net, net.clock(), 5);
  faulty.ScriptDropAtMsg(3);  // the third send from now vanishes
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(faulty.Send(0, 1, Msg(i)).ok());
  }
  EXPECT_TRUE(net.RunUntilIdle(100));
  EXPECT_EQ(sink.seqs, (std::vector<uint64_t>{1, 2, 4, 5}));
  EXPECT_EQ(faulty.dropped(), 1u);
  // The script is one-shot.
  ASSERT_TRUE(faulty.Send(0, 1, Msg(6)).ok());
  EXPECT_TRUE(net.RunUntilIdle(100));
  EXPECT_EQ(sink.seqs.back(), 6u);
}

TEST(FaultyNetworkTest, DuplicateRateDeliversTwice) {
  Network net(Network::Options{});
  Counter sink;
  net.Register(1, &sink);
  FaultyNetwork faulty(&net, net.clock(), 9);
  faulty.set_duplicate_rate(1.0);
  ASSERT_TRUE(faulty.Send(0, 1, Msg(1)).ok());
  EXPECT_TRUE(net.RunUntilIdle(100));
  EXPECT_EQ(sink.seqs.size(), 2u);
  EXPECT_EQ(faulty.duplicated(), 1u);
}

TEST(FaultyNetworkTest, FaultBudgetStopsInjection) {
  Network net(Network::Options{});
  Counter sink;
  net.Register(1, &sink);
  FaultyNetwork faulty(&net, net.clock(), 9);
  faulty.set_drop_rate(1.0);
  faulty.set_max_faults(2);
  for (uint64_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(faulty.Send(0, 1, Msg(i)).ok());
  }
  EXPECT_TRUE(net.RunUntilIdle(100));
  EXPECT_EQ(faulty.dropped(), 2u);       // budget spent after two drops
  EXPECT_EQ(sink.seqs.size(), 4u);       // the rest deliver
  EXPECT_EQ(faulty.faults_injected(), 2u);
}

TEST(FaultyNetworkTest, PartitionWindowBlocksThenHeals) {
  Network net(Network::Options{});
  Counter sink;
  net.Register(1, &sink);
  net.Register(0, &sink);
  FaultyNetwork faulty(&net, net.clock(), 5);
  faulty.AddPartition(0.0, 10.0, 0, 1);
  // Inside the window: both directions blocked (symmetric).
  EXPECT_TRUE(faulty.Partitioned(0, 1));
  EXPECT_TRUE(faulty.Partitioned(1, 0));
  ASSERT_TRUE(faulty.Send(0, 1, Msg(1)).ok());
  ASSERT_TRUE(faulty.Send(1, 0, Msg(2)).ok());
  EXPECT_TRUE(net.RunUntilIdle(100));
  EXPECT_TRUE(sink.seqs.empty());
  EXPECT_EQ(faulty.partition_drops(), 2u);
  // Advance virtual time past the window: the link heals.
  net.Post(20.0, [] {});
  EXPECT_TRUE(net.RunUntilIdle(100));
  EXPECT_FALSE(faulty.Partitioned(0, 1));
  ASSERT_TRUE(faulty.Send(0, 1, Msg(3)).ok());
  EXPECT_TRUE(net.RunUntilIdle(100));
  EXPECT_EQ(sink.seqs, (std::vector<uint64_t>{3}));
}

TEST(FaultyNetworkTest, OneWayPartitionBlocksOneDirectionOnly) {
  Network net(Network::Options{});
  Counter sink;
  net.Register(0, &sink);
  net.Register(1, &sink);
  FaultyNetwork faulty(&net, net.clock(), 5);
  faulty.AddPartition(0.0, 100.0, 0, 1, /*one_way=*/true);
  EXPECT_TRUE(faulty.Partitioned(0, 1));
  EXPECT_FALSE(faulty.Partitioned(1, 0));
  ASSERT_TRUE(faulty.Send(0, 1, Msg(1)).ok());  // blocked
  ASSERT_TRUE(faulty.Send(1, 0, Msg(2)).ok());  // delivered
  EXPECT_TRUE(net.RunUntilIdle(100));
  EXPECT_EQ(sink.seqs, (std::vector<uint64_t>{2}));
}

TEST(FaultyNetworkTest, ClearFaultsDisarmsEverything) {
  Network net(Network::Options{});
  Counter sink;
  net.Register(1, &sink);
  FaultyNetwork faulty(&net, net.clock(), 5);
  faulty.set_drop_rate(1.0);
  faulty.ScriptDropAtMsg(1);
  faulty.AddPartition(0.0, 1e9, 0, 1);
  faulty.ClearFaults();
  ASSERT_TRUE(faulty.Send(0, 1, Msg(1)).ok());
  EXPECT_TRUE(net.RunUntilIdle(100));
  EXPECT_EQ(sink.seqs, (std::vector<uint64_t>{1}));
}

TEST(FaultyNetworkTest, SameSeedSameFaultSchedule) {
  std::vector<uint64_t> delivered[2];
  for (int round = 0; round < 2; ++round) {
    Network net(Network::Options{});
    Counter sink;
    net.Register(1, &sink);
    FaultyNetwork faulty(&net, net.clock(), 1234);
    faulty.set_drop_rate(0.3);
    faulty.set_duplicate_rate(0.2);
    faulty.set_reorder_rate(0.3);
    for (uint64_t i = 1; i <= 40; ++i) {
      ASSERT_TRUE(faulty.Send(0, 1, Msg(i)).ok());
    }
    EXPECT_TRUE(net.RunUntilIdle(1000));
    delivered[round] = sink.seqs;
  }
  EXPECT_EQ(delivered[0], delivered[1]);
}

}  // namespace
}  // namespace viewmat::net
