#include "net/session_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "costmodel/params.h"
#include "net/faulty_network.h"
#include "net/network.h"
#include "net/session_client.h"
#include "sim/strategy_driver.h"

namespace viewmat::net {
namespace {

/// One fully-wired single-server simulation: engine, transport, fault
/// decorator, refresher, server — clients are added per test.
struct Rig {
  std::unique_ptr<sim::StrategyDriver> driver;
  std::unique_ptr<Network> net;
  std::unique_ptr<FaultyNetwork> faulty;
  std::unique_ptr<RefreshDaemon> refresher;
  std::unique_ptr<SessionServer> server;
  std::vector<std::unique_ptr<SessionClient>> clients;

  SessionClient* AddClient(std::vector<ClientOp> ops, uint64_t seed = 7) {
    SessionClient::Options copt;
    copt.node = static_cast<NodeId>(2 + clients.size());
    copt.server = 0;
    copt.events = net.get();
    copt.net = faulty.get();
    copt.seed = seed + clients.size();
    // Comfortably above the model service time of a TortureParams commit,
    // so a healthy wire really is retry-free.
    copt.timeout_ms = 500.0;
    auto client = std::make_unique<SessionClient>(copt, std::move(ops));
    net->Register(copt.node, client.get());
    clients.push_back(std::move(client));
    return clients.back().get();
  }

  bool Run(size_t max_events = 100000) {
    for (auto& c : clients) c->Start();
    const bool drained = net->RunUntilIdle(max_events);
    bool done = true;
    for (auto& c : clients) done &= c->done();
    return drained && done;
  }
};

Rig MakeRig(sim::StrategyKind kind = sim::StrategyKind::kImmediate,
            uint64_t seed = 11, size_t max_inflight = 8,
            double refresh_every_ms = 0.0) {
  Rig rig;
  sim::StrategyDriver::Options dopt;
  dopt.kind = kind;
  dopt.model = 1;
  dopt.params = sim::TortureParams(costmodel::Params{});
  dopt.seed = seed;
  auto driver = sim::StrategyDriver::Create(dopt);
  EXPECT_TRUE(driver.ok()) << driver.status().message();
  rig.driver = std::move(*driver);
  rig.net = std::make_unique<Network>(Network::Options{});
  rig.faulty =
      std::make_unique<FaultyNetwork>(rig.net.get(), rig.net->clock(), seed);
  rig.refresher = std::make_unique<RefreshDaemon>(1, rig.faulty.get());
  rig.net->Register(1, rig.refresher.get());
  SessionServer::Options sopt;
  sopt.driver = rig.driver.get();
  sopt.events = rig.net.get();
  sopt.net = rig.faulty.get();
  sopt.max_inflight = max_inflight;
  sopt.checkpoint_every = 4;
  sopt.refresh_every_ms = refresh_every_ms;
  auto server = SessionServer::Create(sopt);
  EXPECT_TRUE(server.ok()) << server.status().message();
  rig.server = std::move(*server);
  rig.net->Register(0, rig.server.get());
  return rig;
}

ClientOp Update(std::vector<std::pair<int64_t, double>> victims) {
  ClientOp op;
  op.is_update = true;
  op.victims = std::move(victims);
  return op;
}

ClientOp Query(int64_t lo, int64_t hi) {
  ClientOp op;
  op.lo = lo;
  op.hi = hi;
  return op;
}

// --- Options validation (every rejection names its field) -----------------

TEST(SessionServerOptionsTest, RejectsEachInvalidFieldByName) {
  Rig rig = MakeRig();
  SessionServer::Options good;
  good.driver = rig.driver.get();
  good.events = rig.net.get();
  good.net = rig.faulty.get();

  SessionServer::Options opt = good;
  opt.driver = nullptr;
  auto r = SessionServer::Create(opt);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Options::driver"), std::string::npos);

  opt = good;
  opt.events = nullptr;
  r = SessionServer::Create(opt);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Options::events"), std::string::npos);

  opt = good;
  opt.net = nullptr;
  r = SessionServer::Create(opt);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Options::net"), std::string::npos);

  opt = good;
  opt.max_inflight = 0;
  r = SessionServer::Create(opt);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Options::max_inflight"),
            std::string::npos);

  opt = good;
  opt.max_sessions = 0;
  r = SessionServer::Create(opt);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Options::max_sessions"),
            std::string::npos);

  opt = good;
  opt.restart_delay_ms = 0.0;
  r = SessionServer::Create(opt);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Options::restart_delay_ms"),
            std::string::npos);

  opt = good;
  opt.refresh_every_ms = -1.0;
  r = SessionServer::Create(opt);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Options::refresh_every_ms"),
            std::string::npos);

  EXPECT_TRUE(SessionServer::Create(good).ok());
}

// --- Protocol behavior ----------------------------------------------------

TEST(SessionServerTest, CommitsAndQueriesOverAHealthyWire) {
  Rig rig = MakeRig();
  SessionClient* client = rig.AddClient(
      {Update({{0, 5.0}, {1, 3.0}}), Query(0, 10), Update({{0, 2.0}})});
  ASSERT_TRUE(rig.Run());
  ASSERT_EQ(client->acked().size(), 3u);
  EXPECT_EQ(rig.server->journal().size(), 2u);
  EXPECT_EQ(rig.server->commits_applied(), 2u);
  EXPECT_GT(client->acked()[0].txn_id, 0u);
  EXPECT_EQ(client->acked()[1].journal_len, 1u);  // one commit before it
  EXPECT_EQ(client->retries(), 0u);
  EXPECT_EQ(rig.server->crashes(), 0u);
}

TEST(SessionServerTest, DuplicatedRequestsApplyExactlyOnce) {
  Rig rig = MakeRig();
  rig.faulty->set_duplicate_rate(1.0);  // EVERY message delivered twice
  SessionClient* client = rig.AddClient(
      {Update({{2, 1.0}}), Update({{2, 1.0}}), Update({{3, 4.0}})});
  ASSERT_TRUE(rig.Run());
  EXPECT_EQ(client->acked().size(), 3u);
  // Three distinct (session, seq) entries — the duplicates hit the dedup
  // table, not the engine.
  ASSERT_EQ(rig.server->journal().size(), 3u);
  std::set<std::pair<uint64_t, uint64_t>> ids;
  for (const auto& e : rig.server->journal()) ids.emplace(e.session, e.seq);
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_GT(rig.server->redelivered_hits(), 0u);
}

TEST(SessionServerTest, LostReplyIsAnsweredFromTheDedupCache) {
  Rig rig = MakeRig();
  SessionClient* client = rig.AddClient({Update({{5, 7.0}})});
  // Wire order: open(1), open-ack(2), commit(3), reply(4). Drop the reply:
  // the retry must be served from cache, and the commit applied once.
  rig.faulty->ScriptDropAtMsg(4);
  ASSERT_TRUE(rig.Run());
  ASSERT_EQ(client->acked().size(), 1u);
  EXPECT_GE(client->retries(), 1u);
  EXPECT_EQ(rig.server->journal().size(), 1u);
  EXPECT_EQ(rig.server->redelivered_hits(), 1u);
  EXPECT_GT(client->acked()[0].txn_id, 0u);
}

TEST(SessionServerTest, OverloadShedsButEveryClientFinishes) {
  Rig rig = MakeRig(sim::StrategyKind::kImmediate, 13, /*max_inflight=*/1);
  for (int c = 0; c < 4; ++c) {
    rig.AddClient({Update({{c, 1.0}}), Query(0, 8), Update({{c, 2.0}})});
  }
  ASSERT_TRUE(rig.Run(400000));
  uint64_t acked = 0;
  for (auto& client : rig.clients) acked += client->acked().size();
  EXPECT_EQ(acked, 12u);
  EXPECT_EQ(rig.server->journal().size(), 8u);
  EXPECT_GT(rig.server->shed_requests(), 0u);
}

TEST(SessionServerTest, CrashCannotForgetAnAcknowledgedCommit) {
  for (const auto kind :
       {sim::StrategyKind::kImmediate, sim::StrategyKind::kDeferred}) {
    Rig rig = MakeRig(kind, 17);
    SessionClient* client = rig.AddClient({Update({{1, 2.0}}),
                                           Update({{2, 3.0}}),
                                           Update({{3, 4.0}}),
                                           Update({{4, 5.0}})});
    // Crash the device mid-run: a few disk ops into the second commit.
    rig.net->Post(5.0, [&rig] { rig.driver->disk()->ScriptCrashAtOp(3); });
    ASSERT_TRUE(rig.Run(400000));
    EXPECT_EQ(client->acked().size(), 4u);
    EXPECT_GE(rig.server->crashes(), 1u);
    EXPECT_GE(rig.server->recoveries(), 1u);
    // Exactly four applications — the crash neither lost an acked commit
    // nor let a retry re-apply one.
    std::set<std::pair<uint64_t, uint64_t>> ids;
    for (const auto& e : rig.server->journal()) ids.emplace(e.session, e.seq);
    EXPECT_EQ(rig.server->journal().size(), 4u)
        << sim::StrategyKindName(kind);
    EXPECT_EQ(ids.size(), 4u) << sim::StrategyKindName(kind);
  }
}

TEST(SessionServerTest, RefreshPartitionFlagsDegradedReads) {
  Rig rig = MakeRig(sim::StrategyKind::kDeferred, 19, /*max_inflight=*/8,
                    /*refresh_every_ms=*/10.0);
  // The refresh path is isolated the whole run; data traffic is healthy.
  rig.faulty->AddPartition(0.0, 1e9, 0, 1);
  std::vector<ClientOp> ops;
  for (int i = 0; i < 10; ++i) {
    ops.push_back(Update({{i, 1.0}}));
    ops.push_back(Query(0, 12));
  }
  SessionClient* client = rig.AddClient(std::move(ops));
  ASSERT_TRUE(rig.Run(400000));
  EXPECT_FALSE(rig.server->refresh_link_up());
  EXPECT_GT(rig.server->degraded_replies(), 0u);
  bool any_degraded = false;
  for (const auto& r : client->acked()) any_degraded |= r.degraded;
  EXPECT_TRUE(any_degraded);
}

TEST(SessionServerTest, SessionCheckpointBoundsTheWalScan) {
  Rig rig = MakeRig(sim::StrategyKind::kImmediate, 23);
  std::vector<ClientOp> ops;
  for (int i = 0; i < 10; ++i) ops.push_back(Update({{i % 5, 1.0}}));
  rig.AddClient(std::move(ops));
  ASSERT_TRUE(rig.Run(400000));
  // checkpoint_every=4: ten commits → at least two dedup-table snapshots.
  EXPECT_GE(rig.server->session_checkpoints(), 2u);
  EXPECT_EQ(rig.server->journal().size(), 10u);
}

}  // namespace
}  // namespace viewmat::net
