// Golden-trace and attribution tests: the observability layer must be
// deterministic (a fixed seed yields a byte-identical span tree) and
// lossless (attribution cells always sum to the flat counters exactly).

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace viewmat::sim {
namespace {

costmodel::Params SmallParams() {
  costmodel::Params p;
  p.N = 4000;
  p.k = 30;
  p.l = 10;
  p.q = 30;
  return p;
}

TEST(Observability, Model1TraceIsByteStableForFixedSeed) {
  SimOptions options;
  options.seed = 7;

  obs::Tracer first;
  options.tracer = &first;
  auto a = SimulateModel1(SmallParams(), options);
  ASSERT_TRUE(a.ok());

  obs::Tracer second;
  options.tracer = &second;
  auto b = SimulateModel1(SmallParams(), options);
  ASSERT_TRUE(b.ok());

  EXPECT_GT(first.span_count(), 0u);
  // The golden property: same seed + same params → the exact same span
  // tree with the exact same model-ms stamps, byte for byte.
  EXPECT_EQ(first.ToString(), second.ToString());
  EXPECT_EQ(first.ToChromeTraceJson(), second.ToChromeTraceJson());

  // One track per strategy run plus the baseline, and the workload phases
  // show up as spans.
  const std::string tree = first.ToString();
  EXPECT_NE(tree.find("track 1:"), std::string::npos);
  EXPECT_NE(tree.find("deferred"), std::string::npos);
  EXPECT_NE(tree.find("query"), std::string::npos);
  EXPECT_NE(tree.find("txn"), std::string::npos);
}

TEST(Observability, AttributedCountersSumToFlatTotalsInAllModels) {
  const costmodel::Params params = SmallParams();
  const SimOptions options;
  auto m1 = SimulateModel1(params, options);
  auto m2 = SimulateModel2(params, options);
  auto m3 = SimulateModel3(params, options);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  ASSERT_TRUE(m3.ok());
  for (const SimResult* result : {&*m1, &*m2, &*m3}) {
    for (const StrategyRun& run : result->runs) {
      EXPECT_TRUE(run.attributed.Total() == run.counters)
          << "model " << result->model << " run " << run.name;
      EXPECT_FALSE(run.counters.empty()) << run.name;
    }
  }
}

TEST(Observability, AttributionIsInvisibleToCostTotals) {
  // A traced + metered run must report the same counters as a bare run:
  // observability explains the cost, never changes it.
  SimOptions bare;
  auto plain = SimulateModel1(SmallParams(), bare);
  ASSERT_TRUE(plain.ok());

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  SimOptions observed;
  observed.tracer = &tracer;
  observed.metrics = &metrics;
  auto traced = SimulateModel1(SmallParams(), observed);
  ASSERT_TRUE(traced.ok());

  ASSERT_EQ(plain->runs.size(), traced->runs.size());
  for (size_t i = 0; i < plain->runs.size(); ++i) {
    EXPECT_TRUE(plain->runs[i].counters == traced->runs[i].counters)
        << plain->runs[i].name;
    EXPECT_DOUBLE_EQ(plain->runs[i].measured_ms_per_query,
                     traced->runs[i].measured_ms_per_query)
        << plain->runs[i].name;
  }
}

TEST(Observability, MetricsRegistryIsPopulatedByRuns) {
  obs::MetricsRegistry metrics;
  SimOptions options;
  options.metrics = &metrics;
  auto result = SimulateModel1(SmallParams(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(metrics.counter_count(), 0u);
  EXPECT_GT(metrics.histogram_count(), 0u);
  // Strategy labels appear in the rendered metrics.
  const std::string text = metrics.ToString();
  EXPECT_NE(text.find("strategy=deferred"), std::string::npos) << text;
}

TEST(Observability, SimResultToStringCarriesRunMetadata) {
  SimOptions options;
  options.seed = 99;
  auto result = SimulateModel1(SmallParams(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->model, 1);
  EXPECT_EQ(result->seed, 99u);
  EXPECT_GT(result->buffer_pool_pages, 0u);
  const std::string text = result->ToString();
  EXPECT_NE(text.find("seed=99"), std::string::npos) << text;
  EXPECT_NE(text.find("pool_pages="), std::string::npos) << text;
}

}  // namespace
}  // namespace viewmat::sim
