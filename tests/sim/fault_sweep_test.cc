#include "sim/fault_sweep.h"

#include <gtest/gtest.h>

namespace viewmat::sim {
namespace {

/// The acceptance bar for the crash-safety work: across hundreds of seeded
/// torture runs — transient read/write faults, torn writes, scripted
/// protocol crashes — there must be zero corrupt and zero silently-stale
/// outcomes. Loud failures (rejected transactions, errored queries) are
/// allowed; wrong answers are not.

void ExpectNoSilentDamage(const FaultSweepResult& result) {
  EXPECT_EQ(result.total_corrupt, 0) << result.ToString();
  EXPECT_EQ(result.total_silently_stale, 0) << result.ToString();
  for (const FaultSweepCell& cell : result.cells) {
    EXPECT_EQ(cell.corrupt_runs, 0) << "rate " << cell.fault_rate;
    EXPECT_EQ(cell.silently_stale_runs, 0) << "rate " << cell.fault_rate;
  }
}

TEST(FaultSweepTest, Model1TortureHasNoSilentDamage) {
  FaultSweepOptions options;
  options.model = 1;
  options.seed = 1234;
  options.runs_per_rate = 25;  // 4 rates x 25 = 100 runs
  const auto result = SimulateFaultSweep(options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->total_runs, 100);
  ExpectNoSilentDamage(*result);
  // The faulty rates actually exercised the machinery.
  uint64_t faults = 0, crashes = 0, recoveries = 0;
  for (const FaultSweepCell& cell : result->cells) {
    faults += cell.faults_injected;
    crashes += cell.crashes;
    recoveries += cell.recoveries;
  }
  EXPECT_GT(faults, 0u);
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(recoveries, 0u);
}

TEST(FaultSweepTest, Model2TortureHasNoSilentDamage) {
  FaultSweepOptions options;
  options.model = 2;
  options.seed = 5678;
  options.runs_per_rate = 25;  // 4 rates x 25 = 100 runs
  const auto result = SimulateFaultSweep(options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->total_runs, 100);
  ExpectNoSilentDamage(*result);
}

TEST(FaultSweepTest, ZeroFaultRateWithoutCrashesIsClean) {
  FaultSweepOptions options;
  options.fault_rates = {0.0};
  options.runs_per_rate = 3;
  options.scripted_crashes = false;
  const auto result = SimulateFaultSweep(options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result->cells.size(), 1u);
  EXPECT_EQ(result->cells[0].faults_injected, 0u);
  EXPECT_EQ(result->cells[0].crashes, 0u);
  EXPECT_EQ(result->cells[0].rejected_txns, 0u);
  EXPECT_EQ(result->cells[0].failed_queries, 0u);
  ExpectNoSilentDamage(*result);
}

TEST(FaultSweepTest, SweepIsDeterministicForAGivenSeed) {
  FaultSweepOptions options;
  options.seed = 77;
  options.fault_rates = {0.05};
  options.runs_per_rate = 5;
  const auto a = SimulateFaultSweep(options);
  const auto b = SimulateFaultSweep(options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->cells.size(), 1u);
  ASSERT_EQ(b->cells.size(), 1u);
  EXPECT_EQ(a->cells[0].faults_injected, b->cells[0].faults_injected);
  EXPECT_EQ(a->cells[0].crashes, b->cells[0].crashes);
  EXPECT_EQ(a->cells[0].recoveries, b->cells[0].recoveries);
  EXPECT_EQ(a->cells[0].degraded_queries, b->cells[0].degraded_queries);
  EXPECT_EQ(a->cells[0].rejected_txns, b->cells[0].rejected_txns);
  EXPECT_EQ(a->cells[0].failed_queries, b->cells[0].failed_queries);
}

TEST(FaultSweepTest, ReportRendersOneRowPerRate) {
  FaultSweepOptions options;
  options.fault_rates = {0.0, 0.02};
  options.runs_per_rate = 2;
  const auto result = SimulateFaultSweep(options);
  ASSERT_TRUE(result.ok());
  const std::string text = result->ToString();
  EXPECT_NE(text.find("rate"), std::string::npos);
  EXPECT_NE(text.find("0.02"), std::string::npos);
}

TEST(FaultSweepTest, RejectsBadOptions) {
  FaultSweepOptions options;
  options.model = 3;
  EXPECT_FALSE(SimulateFaultSweep(options).ok());
  options.model = 1;
  options.fault_rates = {1.5};
  EXPECT_FALSE(SimulateFaultSweep(options).ok());
}

}  // namespace
}  // namespace viewmat::sim
