#include "sim/bench_diff.h"

#include <string>

#include "gtest/gtest.h"

namespace viewmat::sim {
namespace {

// Minimal report with one sim result (one run) and one table, shaped like
// BenchReport::ToJson output. `ms` and `cell` parameterize the run's
// ms-per-query and the table cell so tests can synthesize regressions.
std::string Fixture(double ms, double cell, const char* extra_run = "") {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      R"({"bench":"bench_fake","quick":false,)"
      R"("sim_results":[{"model":1,"seed":42,)"
      R"("params":{"N":4000,"k":30,"l":10,"q":30,"f":0.1,"f_v":0.1},)"
      R"("baseline_ms_per_query":100.0,)"
      R"("runs":[{"name":"deferred","measured_ms_per_query":%.6f,)"
      R"("explain_gap":{"component_ms_per_query":)"
      R"({"bptree":%.6f,"heap":1.0}}}%s]}],)"
      R"("tables":[{"title":"t1","x_label":"x","series":["a","b"],)"
      R"("rows":[{"x":0.5,"values":[%.6f,2.0]}]}]})",
      ms, ms / 2, extra_run, cell);
  return buf;
}

TEST(BenchDiff, IdenticalReportsPass) {
  const std::string report = Fixture(200.0, 10.0);
  auto result = DiffBenchReports(report, report, DiffOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->regressions(), 0u);
  EXPECT_EQ(result->errors.size(), 0u);
  // baseline + run + two table cells compared.
  EXPECT_EQ(result->entries.size(), 4u);
}

TEST(BenchDiff, TenPercentRegressionFailsAtFivePercentThreshold) {
  const auto result = DiffBenchReports(Fixture(200.0, 10.0),
                                       Fixture(220.0, 10.0), DiffOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->regressions(), 1u);
  const std::string text = result->ToString();
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("measured_ms_per_query"), std::string::npos);
  // The regression carries a component attribution from explain_gap.
  EXPECT_NE(text.find("bptree"), std::string::npos);
}

TEST(BenchDiff, TenPercentRegressionPassesAtTwentyPercentThreshold) {
  DiffOptions options;
  options.threshold = 0.2;
  const auto result =
      DiffBenchReports(Fixture(200.0, 10.0), Fixture(220.0, 10.0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
}

TEST(BenchDiff, ImprovementIsNotARegression) {
  const auto result = DiffBenchReports(Fixture(200.0, 10.0),
                                       Fixture(150.0, 10.0), DiffOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->improvements(), 1u);
}

TEST(BenchDiff, TableCellRegressionIsCaught) {
  const auto result = DiffBenchReports(Fixture(200.0, 10.0),
                                       Fixture(200.0, 11.0), DiffOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->regressions(), 1u);
  EXPECT_NE(result->ToString().find("table 't1'"), std::string::npos);
}

TEST(BenchDiff, MissingRunIsAStructuralError) {
  const std::string with_extra = Fixture(
      200.0, 10.0, R"(,{"name":"immediate","measured_ms_per_query":50.0})");
  const auto result =
      DiffBenchReports(with_extra, Fixture(200.0, 10.0), DiffOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok());
  ASSERT_EQ(result->errors.size(), 1u);
  EXPECT_NE(result->errors[0].find("immediate"), std::string::npos);
  // The reverse direction is only a note, not a failure.
  const auto reverse =
      DiffBenchReports(Fixture(200.0, 10.0), with_extra, DiffOptions{});
  ASSERT_TRUE(reverse.ok());
  EXPECT_TRUE(reverse->ok());
}

TEST(BenchDiff, ZeroToNonzeroIsAlwaysARegression) {
  DiffOptions options;
  options.threshold = 5.0;  // even a huge threshold cannot excuse 0 -> x
  const auto result =
      DiffBenchReports(Fixture(0.0, 10.0), Fixture(1.0, 10.0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok());
}

TEST(BenchDiff, BenchNameMismatchIsAnError) {
  std::string other = Fixture(200.0, 10.0);
  other.replace(other.find("bench_fake"), 10, "bench_else");
  const auto result =
      DiffBenchReports(Fixture(200.0, 10.0), other, DiffOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok());
}

TEST(BenchDiff, ParseThresholdAcceptsPercentAndFraction) {
  auto percent = ParseThreshold("5%");
  ASSERT_TRUE(percent.ok());
  EXPECT_DOUBLE_EQ(*percent, 0.05);
  auto fraction = ParseThreshold("0.05");
  ASSERT_TRUE(fraction.ok());
  EXPECT_DOUBLE_EQ(*fraction, 0.05);
  EXPECT_FALSE(ParseThreshold("").ok());
  EXPECT_FALSE(ParseThreshold("abc").ok());
  EXPECT_FALSE(ParseThreshold("-1").ok());
  EXPECT_FALSE(ParseThreshold("1e9").ok());
}

TEST(BenchDiff, ParseThresholdRejectsNonFiniteAndMalformedInput) {
  // A bare '%' leaves nothing to parse.
  EXPECT_FALSE(ParseThreshold("%").ok());
  // Negative stays rejected in both spellings.
  EXPECT_FALSE(ParseThreshold("-5%").ok());
  EXPECT_FALSE(ParseThreshold("-0.001").ok());
  // Non-finite values parse as numbers but can never gate anything.
  EXPECT_FALSE(ParseThreshold("nan").ok());
  EXPECT_FALSE(ParseThreshold("NaN%").ok());
  EXPECT_FALSE(ParseThreshold("inf").ok());
  EXPECT_FALSE(ParseThreshold("-inf").ok());
  // Trailing garbage after a valid prefix.
  EXPECT_FALSE(ParseThreshold("5%%").ok());
  EXPECT_FALSE(ParseThreshold("5x").ok());
  EXPECT_FALSE(ParseThreshold("0.05 ").ok());
  // strtod leniencies from_chars must not inherit: leading whitespace,
  // explicit '+', hex floats.
  EXPECT_FALSE(ParseThreshold(" 5").ok());
  EXPECT_FALSE(ParseThreshold("+5%").ok());
  EXPECT_FALSE(ParseThreshold("0x5").ok());
  // The boundary itself is fine; just past it is not.
  auto ten = ParseThreshold("10");
  ASSERT_TRUE(ten.ok());
  EXPECT_DOUBLE_EQ(*ten, 10.0);
  EXPECT_FALSE(ParseThreshold("10.001").ok());
  auto zero = ParseThreshold("0%");
  ASSERT_TRUE(zero.ok());
  EXPECT_DOUBLE_EQ(*zero, 0.0);
}

}  // namespace
}  // namespace viewmat::sim
