#include "sim/crash_oracle.h"

#include <gtest/gtest.h>

namespace viewmat::sim {
namespace {

/// The tentpole acceptance bar: for EVERY disk operation a small seeded
/// workload performs, crashing exactly there and running recovery must
/// land the system in a committed-prefix-consistent state — zero
/// divergences (base ≠ committed prefix), zero stale reads (OK query with
/// a wrong answer), zero corrupt runs (non-convergence or a converged
/// answer that disagrees with the oracle / from-scratch recompute).

CrashOracleResult RunExhaustive(StrategyKind kind, int model,
                                size_t checkpoint_every = 0) {
  CrashOracleOptions options;
  options.kind = kind;
  options.model = model;
  options.seed = 97;
  options.jobs = 0;  // one worker per core; results merge in index order
  options.ops_per_run = 12;
  options.query_every = 4;
  options.checkpoint_every = checkpoint_every;
  const auto result = RunCrashOracle(options);
  EXPECT_TRUE(result.ok()) << result.status().message();
  if (!result.ok()) return CrashOracleResult();
  // The window is real and the crashes actually fired.
  EXPECT_GT(result->crash_points, 0u) << result->ToString();
  EXPECT_GT(result->crashes_fired, 0u) << result->ToString();
  EXPECT_GT(result->prefix_checks, 0u) << result->ToString();
  // The unacceptable outcomes.
  EXPECT_EQ(result->divergences, 0) << result->ToString();
  EXPECT_EQ(result->stale_reads, 0) << result->ToString();
  EXPECT_EQ(result->corrupt_runs, 0) << result->ToString();
  return *result;
}

TEST(CrashOracleTest, QueryModificationSurvivesEveryCrashPoint) {
  RunExhaustive(StrategyKind::kQueryModification, 1);
}

TEST(CrashOracleTest, ImmediateSurvivesEveryCrashPoint) {
  RunExhaustive(StrategyKind::kImmediate, 1);
}

TEST(CrashOracleTest, DeferredSurvivesEveryCrashPoint) {
  const CrashOracleResult result =
      RunExhaustive(StrategyKind::kDeferred, 1);
  // The journaled protocol actually rolled forward somewhere in the sweep.
  EXPECT_GT(result.recoveries, 0u);
}

TEST(CrashOracleTest, SnapshotSurvivesEveryCrashPoint) {
  RunExhaustive(StrategyKind::kSnapshot, 1);
}

TEST(CrashOracleTest, RecomputeOnChangeSurvivesEveryCrashPoint) {
  RunExhaustive(StrategyKind::kRecomputeOnChange, 1);
}

TEST(CrashOracleTest, HybridSurvivesEveryCrashPoint) {
  RunExhaustive(StrategyKind::kHybrid, 1);
}

TEST(CrashOracleTest, JoinViewSurvivesEveryCrashPoint) {
  RunExhaustive(StrategyKind::kImmediate, 2);
}

TEST(CrashOracleTest, CheckpointingChangesNothingObservable) {
  // Aggressive checkpointing (truncate-the-log every 2 commits) must keep
  // every crash point recoverable: the checkpoint record carries the
  // committed high-water mark and pages are flushed before the truncate.
  RunExhaustive(StrategyKind::kImmediate, 1, /*checkpoint_every=*/2);
}

TEST(CrashOracleTest, OracleIsDeterministicForAGivenSeed) {
  CrashOracleOptions options;
  options.kind = StrategyKind::kImmediate;
  options.seed = 41;
  options.ops_per_run = 8;
  options.jobs = 0;
  const auto a = RunCrashOracle(options);
  options.jobs = 1;
  const auto b = RunCrashOracle(options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->crash_points, b->crash_points);
  EXPECT_EQ(a->crashes_fired, b->crashes_fired);
  EXPECT_EQ(a->recoveries, b->recoveries);
  EXPECT_EQ(a->rejected_txns, b->rejected_txns);
  EXPECT_EQ(a->failed_queries, b->failed_queries);
  EXPECT_EQ(a->prefix_checks, b->prefix_checks);
}

TEST(CrashOracleTest, RejectsBadOptions) {
  CrashOracleOptions options;
  options.ops_per_run = 0;
  EXPECT_FALSE(RunCrashOracle(options).ok());
  options.ops_per_run = 8;
  options.kind = StrategyKind::kSnapshot;
  options.model = 2;  // snapshot is select-project only
  EXPECT_FALSE(RunCrashOracle(options).ok());
}

}  // namespace
}  // namespace viewmat::sim
