#include "sim/simulator.h"

#include "sim/report.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace viewmat::sim {
namespace {

/// Small parameter set so each simulation loads quickly but still spans
/// hundreds of pages.
costmodel::Params SmallParams() {
  costmodel::Params p;
  p.N = 4000;
  p.k = 30;
  p.l = 10;
  p.q = 30;
  return p;
}

const StrategyRun* FindRun(const SimResult& result, const std::string& name) {
  for (const StrategyRun& run : result.runs) {
    if (run.name == name) return &run;
  }
  return nullptr;
}

TEST(SimulatorModel1, RunsAllStrategiesAndMeasuresCost) {
  auto result = SimulateModel1(SmallParams(), SimOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->runs.size(), 5u);
  EXPECT_GT(result->baseline_ms_per_query, 0.0);
  for (const StrategyRun& run : result->runs) {
    EXPECT_GT(run.measured_ms_per_query, 0.0) << run.name;
    EXPECT_GT(run.analytical_ms_per_query, 0.0) << run.name;
    EXPECT_GT(run.counters.disk_reads, 0u) << run.name;
  }
}

TEST(SimulatorModel1, MeasuredOrderingMatchesHeadlineClaims) {
  // Shape fidelity on the baseline-adjusted (view-attributable) cost:
  // sequential is far worse than every indexed plan, unclustered is far
  // worse than clustered, and deferred carries visible HR overhead over
  // immediate (the C_AD/C_ADread terms) without being catastropically
  // worse.
  auto result = SimulateModel1(SmallParams(), SimOptions{});
  ASSERT_TRUE(result.ok());
  const auto* clustered = FindRun(*result, "clustered");
  const auto* unclustered = FindRun(*result, "unclustered");
  const auto* sequential = FindRun(*result, "sequential");
  const auto* deferred = FindRun(*result, "deferred");
  const auto* immediate = FindRun(*result, "immediate");
  ASSERT_TRUE(clustered && unclustered && sequential && deferred && immediate);
  EXPECT_GT(sequential->adjusted_ms_per_query,
            10.0 * clustered->adjusted_ms_per_query);
  EXPECT_GT(unclustered->adjusted_ms_per_query,
            3.0 * clustered->adjusted_ms_per_query);
  EXPECT_GT(deferred->adjusted_ms_per_query,
            immediate->adjusted_ms_per_query);
  EXPECT_LT(deferred->adjusted_ms_per_query,
            8.0 * immediate->adjusted_ms_per_query);
  // The unclustered measurement lands near its analytical prediction
  // (the y(N, b, N*f*f_v) random-fetch term dominates both).
  EXPECT_NEAR(unclustered->adjusted_ms_per_query /
                  unclustered->analytical_ms_per_query,
              1.0, 0.5);
}

TEST(SimulatorModel2, ImmediateBeatsLoopJoinAndCostsArePositive) {
  // At this reduced N the analytical gap between materialization and the
  // nested-loops join is small (the paper's decisive Figure 5 gap needs
  // N = 100k, covered by bench_sim_validation); the robust measured shape
  // is that immediate maintenance answers join-view queries cheaper than
  // re-joining, and every strategy has a meaningful positive
  // view-attributable cost.
  auto result = SimulateModel2(SmallParams(), SimOptions{});
  ASSERT_TRUE(result.ok());
  const auto* loopjoin = FindRun(*result, "loopjoin");
  const auto* deferred = FindRun(*result, "deferred");
  const auto* immediate = FindRun(*result, "immediate");
  ASSERT_TRUE(loopjoin && deferred && immediate);
  EXPECT_LT(immediate->adjusted_ms_per_query,
            loopjoin->adjusted_ms_per_query);
  EXPECT_GT(immediate->adjusted_ms_per_query, 0.0);
  EXPECT_GT(deferred->adjusted_ms_per_query, 0.0);
  EXPECT_GT(loopjoin->adjusted_ms_per_query, 0.0);
  // Deferred and loop-join are within a small factor of each other, as the
  // analytical model predicts at these parameters.
  const double ratio =
      deferred->adjusted_ms_per_query / loopjoin->adjusted_ms_per_query;
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 3.0);
}

TEST(SimulatorModel3, MaintenanceFarCheaperThanRecompute) {
  // Figure 8's headline shape, by measurement: maintaining the aggregate
  // state costs a small fraction of recomputing it per query. (Deferred
  // carries its HR overhead, so its margin is smaller than immediate's.)
  auto result = SimulateModel3(SmallParams(), SimOptions{});
  ASSERT_TRUE(result.ok());
  const auto* recompute = FindRun(*result, "recompute");
  const auto* deferred = FindRun(*result, "deferred");
  const auto* immediate = FindRun(*result, "immediate");
  ASSERT_TRUE(recompute && deferred && immediate);
  EXPECT_LT(immediate->adjusted_ms_per_query,
            0.2 * recompute->adjusted_ms_per_query);
  // Deferred's measured overhead is dominated by the HR read-original path
  // (a per-tuple B+-tree descent the closed form charges as one I/O), so
  // its margin over recomputation is thinner than the model's but must
  // still be a clear win.
  EXPECT_LT(deferred->adjusted_ms_per_query,
            0.8 * recompute->adjusted_ms_per_query);
}

TEST(Simulator, RejectsInvalidParams) {
  costmodel::Params p = SmallParams();
  p.f = 2.0;
  EXPECT_FALSE(SimulateModel1(p, SimOptions{}).ok());
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto a = SimulateModel3(SmallParams(), SimOptions{});
  auto b = SimulateModel3(SmallParams(), SimOptions{});
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->runs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->runs[i].measured_ms_per_query,
                     b->runs[i].measured_ms_per_query);
  }
}

TEST(SeriesTable, FormatsRows) {
  SeriesTable table;
  table.title = "demo";
  table.x_label = "P";
  table.series_names = {"a", "b"};
  table.AddRow(0.5, {1.0, 2.0});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("# demo"), std::string::npos);
  EXPECT_NE(s.find("P"), std::string::npos);
  EXPECT_NE(s.find("1.00"), std::string::npos);
}

}  // namespace
}  // namespace viewmat::sim
