#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"

namespace viewmat::common {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
  for (int i = 0; i < 10; ++i) pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelFor, VisitsEachIndexExactlyOnce) {
  for (const size_t jobs : {size_t{1}, size_t{3}, size_t{8}}) {
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v.store(0);
    ParallelFor(jobs, visits.size(),
                [&](size_t i) { visits[i].fetch_add(1); });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(ParallelFor, ZeroItemsIsANoOp) {
  ParallelFor(4, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, FirstExceptionPropagatesAndCancelsRemainingWork) {
  std::atomic<int> started{0};
  EXPECT_THROW(ParallelFor(4, 1000,
                           [&](size_t i) {
                             started.fetch_add(1);
                             if (i == 5) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // Cancellation is advisory (already-dequeued indices still run), but the
  // bulk of the thousand tasks must have been skipped.
  EXPECT_LT(started.load(), 1000);
}

TEST(ParallelFor, SerialPathPropagatesExceptions) {
  EXPECT_THROW(
      ParallelFor(1, 10,
                  [](size_t i) {
                    if (i == 3) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

/// The determinism contract: deriving all randomness from the task index
/// and collecting by index makes the output bit-identical at any job
/// count, regardless of scheduling.
TEST(ParallelMap, ResultsAreIndexOrderedAndJobCountInvariant) {
  const size_t n = 64;
  auto run = [n](size_t jobs) {
    return ParallelMap(jobs, n, [](size_t i) {
      // Per-point derived seed, as the sweep runners do it.
      Random rng(1000 + static_cast<uint64_t>(i));
      std::vector<double> row;
      for (int j = 0; j < 8; ++j) row.push_back(rng.NextDouble());
      return row;
    });
  };
  const auto serial = run(1);
  ASSERT_EQ(serial.size(), n);
  for (const size_t jobs : {size_t{2}, size_t{7}, size_t{16}}) {
    const auto parallel = run(jobs);
    ASSERT_EQ(parallel.size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(parallel[i], serial[i]) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(ParallelMap, WorksWithMoveOnlyNonDefaultConstructibleResults) {
  struct Result {
    explicit Result(size_t i) : value(i) {}
    Result(Result&&) = default;
    Result& operator=(Result&&) = default;
    Result(const Result&) = delete;
    size_t value;
  };
  const auto out = ParallelMap(4, 10, [](size_t i) { return Result(i); });
  ASSERT_EQ(out.size(), 10u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].value, i);
}

TEST(ParallelMap, MoreJobsThanItemsIsFine) {
  const auto out = ParallelMap(16, 3, [](size_t i) { return i * i; });
  EXPECT_EQ(out, (std::vector<size_t>{0, 1, 4}));
}

/// The grain never changes WHAT runs: every index executes exactly once
/// at any (jobs, grain) shape, including grains larger than n and the
/// grain-0 alias for 1.
TEST(ParallelFor, GrainChunkingVisitsEachIndexExactlyOnceAtAnyShape) {
  for (const size_t jobs : {size_t{2}, size_t{4}, size_t{16}}) {
    for (const size_t grain :
         {size_t{0}, size_t{1}, size_t{7}, size_t{64}, size_t{10000}}) {
      std::vector<std::atomic<int>> visits(513);
      for (auto& v : visits) v.store(0);
      ParallelFor(jobs, visits.size(), grain,
                  [&](size_t i) { visits[i].fetch_add(1); });
      for (size_t i = 0; i < visits.size(); ++i) {
        ASSERT_EQ(visits[i].load(), 1)
            << "jobs=" << jobs << " grain=" << grain << " i=" << i;
      }
    }
  }
}

/// Results collected by index are bit-identical at any grain — the
/// determinism contract the sweep runners rely on when they raise the
/// grain to cut claim traffic.
TEST(ParallelFor, IndexedResultsAreGrainInvariant) {
  const size_t n = 128;
  auto run = [n](size_t jobs, size_t grain) {
    std::vector<double> out(n, 0.0);
    ParallelFor(jobs, n, grain, [&](size_t i) {
      Random rng(7000 + static_cast<uint64_t>(i));
      out[i] = rng.NextDouble();
    });
    return out;
  };
  const auto serial = run(1, 1);
  for (const size_t jobs : {size_t{3}, size_t{8}}) {
    for (const size_t grain : {size_t{1}, size_t{5}, size_t{32}}) {
      EXPECT_EQ(run(jobs, grain), serial)
          << "jobs=" << jobs << " grain=" << grain;
    }
  }
}

TEST(ParallelFor, ExceptionInsideAChunkPropagatesAndAbandonsTheRest) {
  std::atomic<int> started{0};
  EXPECT_THROW(ParallelFor(4, 1000, /*grain=*/16,
                           [&](size_t i) {
                             started.fetch_add(1);
                             if (i == 40) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // The faulting chunk's remainder and all unclaimed chunks are skipped.
  EXPECT_LT(started.load(), 1000);
}

TEST(ParallelFor, SerialPathIgnoresGrainAndRunsInline) {
  // jobs <= 1 must stay the exact historical single-threaded loop no
  // matter the grain — no pool, same thread, ascending order.
  const auto caller = std::this_thread::get_id();
  size_t expected = 0;
  ParallelFor(1, 100, /*grain=*/13, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(i, expected++);
  });
  EXPECT_EQ(expected, 100u);
}

/// Stress: many small batches through fresh pools, checking the aggregate
/// each time. Under TSan this exercises the queue/wait handshake hard.
TEST(ParallelFor, StressManyBatches) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> sum{0};
    const size_t n = 100 + static_cast<size_t>(round);
    ParallelFor(4, n, [&](size_t i) {
      sum.fetch_add(static_cast<int64_t>(i));
    });
    EXPECT_EQ(sum.load(), static_cast<int64_t>(n * (n - 1) / 2));
  }
}

TEST(DefaultJobs, IsAtLeastOne) { EXPECT_GE(DefaultJobs(), 1u); }

}  // namespace
}  // namespace viewmat::common
