#include "common/status.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace viewmat {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(Status, EveryCodeHasAName) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kInternal, StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::NotFound("x"));
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::OutOfRange("too big");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOr, MoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

TEST(StatusOrDeathTest, ValueOnErrorAbortsWithMessageInAllBuildTypes) {
  // This must hold in release builds too — the abort is an explicit check,
  // not an assert().
  StatusOr<int> v = Status::OutOfRange("too big");
  EXPECT_DEATH((void)v.value(), "OUT_OF_RANGE: too big");
}

TEST(StatusOrDeathTest, DereferenceOnErrorAborts) {
  StatusOr<std::string> v = Status::Internal("hash page unreadable");
  EXPECT_DEATH((void)*v, "INTERNAL: hash page unreadable");
  EXPECT_DEATH((void)v->size(), "INTERNAL: hash page unreadable");
}

TEST(StatusOrDeathTest, MovedValueAccessOnErrorAborts) {
  EXPECT_DEATH(
      {
        StatusOr<std::unique_ptr<int>> v = Status::NotFound("gone");
        (void)std::move(v).value();
      },
      "NOT_FOUND: gone");
}

Status FailsWhen(bool fail) {
  if (fail) return Status::Internal("boom");
  return Status::OK();
}

Status UsesReturnIfError(bool fail, bool* reached_end) {
  VIEWMAT_RETURN_IF_ERROR(FailsWhen(fail));
  *reached_end = true;
  return Status::OK();
}

TEST(Macros, ReturnIfErrorPropagates) {
  bool reached = false;
  EXPECT_EQ(UsesReturnIfError(true, &reached).code(), StatusCode::kInternal);
  EXPECT_FALSE(reached);
  EXPECT_TRUE(UsesReturnIfError(false, &reached).ok());
  EXPECT_TRUE(reached);
}

StatusOr<int> MaybeValue(bool fail) {
  if (fail) return Status::NotFound("no value");
  return 9;
}

Status UsesAssignOrReturn(bool fail, int* out) {
  VIEWMAT_ASSIGN_OR_RETURN(*out, MaybeValue(fail));
  return Status::OK();
}

TEST(Macros, AssignOrReturnPropagatesOrAssigns) {
  int out = 0;
  EXPECT_EQ(UsesAssignOrReturn(true, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(UsesAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 9);
}

TEST(RandomTest, DeterministicAndBounded) {
  Random a(5);
  Random b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Random r(9);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = r.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random r(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace viewmat
