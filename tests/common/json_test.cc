#include "common/json.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <string>

namespace viewmat::common {
namespace {

TEST(JsonWriter, NestedStructureAndCommaPlacement) {
  JsonWriter w;
  w.BeginObject();
  w.KV("a", 1);
  w.Key("b");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.BeginObject();
  w.KV("c", "x");
  w.EndObject();
  w.EndArray();
  w.KV("d", true);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[1,2,{"c":"x"}],"d":true})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.BeginObject();
  w.KV("k", "line\nquote\"back\\slash\ttab");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"k\":\"line\\nquote\\\"back\\\\slash\\ttab\"}");
}

TEST(JsonWriter, DoublesPrintIntegralValuesExactly) {
  JsonWriter w;
  w.BeginArray();
  w.Double(30.0);
  w.Double(0.125);
  w.Double(std::nan(""));  // JSON has no NaN
  w.EndArray();
  EXPECT_EQ(w.str(), "[30,0.125,null]");
}

TEST(JsonWriter, RawValueEmbedsVerbatim) {
  JsonWriter inner;
  inner.BeginObject();
  inner.KV("x", 1);
  inner.EndObject();
  JsonWriter w;
  w.BeginObject();
  w.Key("trace");
  w.RawValue(inner.str());
  w.KV("after", 2);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"trace":{"x":1},"after":2})");
}

TEST(ParseJson, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.KV("name", "bench");
  w.KV("n", 42);
  w.KV("x", 1.5);
  w.KV("flag", false);
  w.Key("rows");
  w.BeginArray();
  w.Double(1);
  w.Double(2.5);
  w.EndArray();
  w.EndObject();

  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->Find("name")->string_value, "bench");
  EXPECT_EQ(parsed->Find("n")->number, 42);
  EXPECT_EQ(parsed->Find("x")->number, 1.5);
  EXPECT_FALSE(parsed->Find("flag")->bool_value);
  ASSERT_TRUE(parsed->Find("rows")->is_array());
  EXPECT_EQ(parsed->Find("rows")->items.size(), 2u);
  EXPECT_EQ(parsed->Find("rows")->items[1].number, 2.5);
  EXPECT_EQ(parsed->Find("missing"), nullptr);
}

TEST(ParseJson, PreservesMemberOrder) {
  auto parsed = ParseJson(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->members.size(), 3u);
  EXPECT_EQ(parsed->members[0].first, "z");
  EXPECT_EQ(parsed->members[1].first, "a");
  EXPECT_EQ(parsed->members[2].first, "m");
}

TEST(ParseJson, HandlesEscapesAndWhitespace) {
  auto parsed = ParseJson(" { \"k\" : \"a\\n\\t\\\"b\\u0041\" } ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("k")->string_value, "a\n\t\"bA");
}

TEST(ParseJson, ParsesScientificNumbers) {
  auto parsed = ParseJson("[-1.5e3,2E-2,0]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->items[0].number, -1500.0);
  EXPECT_EQ(parsed->items[1].number, 0.02);
  EXPECT_EQ(parsed->items[2].number, 0.0);
}

TEST(ParseJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("[1,2").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

TEST(ParseJson, DecodesSurrogatePairsAndRejectsLoneSurrogates) {
  // U+1F600 written as a \u escape pair must decode to 4-byte UTF-8.
  auto pair = ParseJson(R"(["\uD83D\uDE00"])");
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->items[0].string_value, "\xF0\x9F\x98\x80");

  EXPECT_FALSE(ParseJson(R"(["\uD800"])").ok());        // lone high
  EXPECT_FALSE(ParseJson(R"(["\uDC00"])").ok());        // lone low
  EXPECT_FALSE(ParseJson(R"(["\uD800x"])").ok());       // high, unpaired
  EXPECT_FALSE(ParseJson(R"(["\uD800A"])").ok());  // high + non-low
}

/// Numbers must serialize and parse the same way in every locale. The old
/// snprintf/strtod paths picked up LC_NUMERIC: under a comma-decimal
/// locale the writer emitted "0,125" (invalid JSON) and the parser
/// stopped at the '.'. std::to_chars/from_chars are locale-independent.
TEST(JsonLocale, RoundTripSurvivesCommaDecimalLocale) {
  const char* const kLocales[] = {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8"};
  const char* previous = nullptr;
  for (const char* name : kLocales) {
    previous = std::setlocale(LC_NUMERIC, name);
    if (previous != nullptr) break;
  }
  if (previous == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }

  JsonWriter w;
  w.BeginArray();
  w.Double(0.125);
  w.Double(30.0);
  w.Double(1234.5678);
  w.EndArray();
  EXPECT_EQ(w.str(), "[0.125,30,1234.5678]");

  auto parsed = ParseJson("[0.125,1.5e3]");
  std::setlocale(LC_NUMERIC, "C");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->items[0].number, 0.125);
  EXPECT_EQ(parsed->items[1].number, 1500.0);
}

}  // namespace
}  // namespace viewmat::common
