#include "storage/hash_index.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/random.h"

namespace viewmat::storage {
namespace {

class HashIndexTest : public ::testing::Test {
 protected:
  HashIndexTest()
      : disk_(256, &tracker_), pool_(&disk_, 32), index_(&pool_, 8, 4) {}

  std::vector<uint8_t> Payload(uint64_t tag) {
    std::vector<uint8_t> p(8);
    std::memcpy(p.data(), &tag, 8);
    return p;
  }
  static uint64_t TagOf(const uint8_t* payload) {
    uint64_t tag;
    std::memcpy(&tag, payload, 8);
    return tag;
  }
  HashIndex::Matcher MatchTag(uint64_t tag) {
    return [tag](const uint8_t* p) { return TagOf(p) == tag; };
  }

  CostTracker tracker_;
  SimulatedDisk disk_;
  BufferPool pool_;
  HashIndex index_;  // 4 buckets force chains quickly
};

TEST_F(HashIndexTest, EmptyIndexHasNoPages) {
  uint8_t out[8];
  EXPECT_EQ(index_.Find(1, out).code(), StatusCode::kNotFound);
  EXPECT_EQ(index_.page_count(), 0u);
}

TEST_F(HashIndexTest, InsertFindRoundTrip) {
  ASSERT_TRUE(index_.Insert(10, Payload(100).data()).ok());
  uint8_t out[8];
  ASSERT_TRUE(index_.Find(10, out).ok());
  EXPECT_EQ(TagOf(out), 100u);
  EXPECT_EQ(index_.entry_count(), 1u);
}

TEST_F(HashIndexTest, OverflowChainsGrow) {
  // 256-byte pages, 16-byte entries -> ~15 per page; 4 buckets; 500 keys
  // must spill into overflow pages.
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(index_.Insert(k, Payload(k).data()).ok());
  }
  EXPECT_GT(index_.page_count(), 4u);
  uint8_t out[8];
  for (int64_t k = 0; k < 500; k += 37) {
    ASSERT_TRUE(index_.Find(k, out).ok()) << k;
    EXPECT_EQ(TagOf(out), static_cast<uint64_t>(k));
  }
}

TEST_F(HashIndexTest, FindAllVisitsDuplicates) {
  for (uint64_t tag = 0; tag < 40; ++tag) {
    ASSERT_TRUE(index_.Insert(5, Payload(tag).data()).ok());
  }
  size_t count = 0;
  ASSERT_TRUE(index_.FindAll(5, [&](int64_t, const uint8_t*) {
    ++count;
    return true;
  }).ok());
  EXPECT_EQ(count, 40u);
}

TEST_F(HashIndexTest, DeleteSpecificEntry) {
  ASSERT_TRUE(index_.Insert(5, Payload(1).data()).ok());
  ASSERT_TRUE(index_.Insert(5, Payload(2).data()).ok());
  ASSERT_TRUE(index_.Delete(5, MatchTag(1)).ok());
  EXPECT_EQ(index_.entry_count(), 1u);
  uint8_t out[8];
  ASSERT_TRUE(index_.Find(5, out).ok());
  EXPECT_EQ(TagOf(out), 2u);
  EXPECT_EQ(index_.Delete(5, MatchTag(1)).code(), StatusCode::kNotFound);
}

TEST_F(HashIndexTest, EmptyOverflowPagesAreFreed) {
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(index_.Insert(k, Payload(k).data()).ok());
  }
  const size_t pages_full = index_.page_count();
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(index_.Delete(k, nullptr).ok());
  }
  EXPECT_EQ(index_.entry_count(), 0u);
  EXPECT_LT(index_.page_count(), pages_full);
}

TEST_F(HashIndexTest, UpdatePayload) {
  ASSERT_TRUE(index_.Insert(3, Payload(7).data()).ok());
  ASSERT_TRUE(index_.UpdatePayload(3, MatchTag(7), Payload(8).data()).ok());
  uint8_t out[8];
  ASSERT_TRUE(index_.Find(3, out).ok());
  EXPECT_EQ(TagOf(out), 8u);
  EXPECT_EQ(
      index_.UpdatePayload(99, nullptr, Payload(0).data()).code(),
      StatusCode::kNotFound);
}

TEST_F(HashIndexTest, ScanAllCoversEverything) {
  std::map<int64_t, uint64_t> want;
  for (int64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(index_.Insert(k, Payload(k * 2).data()).ok());
    want[k] = k * 2;
  }
  std::map<int64_t, uint64_t> got;
  ASSERT_TRUE(index_.ScanAll([&](int64_t k, const uint8_t* p) {
    got[k] = TagOf(p);
    return true;
  }).ok());
  EXPECT_EQ(got, want);
}

TEST_F(HashIndexTest, ClearReleasesAllPages) {
  for (int64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(index_.Insert(k, Payload(k).data()).ok());
  }
  ASSERT_TRUE(index_.Clear().ok());
  EXPECT_EQ(index_.entry_count(), 0u);
  EXPECT_EQ(index_.page_count(), 0u);
  uint8_t out[8];
  EXPECT_EQ(index_.Find(5, out).code(), StatusCode::kNotFound);
  // Reusable after clear.
  ASSERT_TRUE(index_.Insert(5, Payload(5).data()).ok());
  ASSERT_TRUE(index_.Find(5, out).ok());
}

TEST_F(HashIndexTest, RandomChurnMatchesReference) {
  Random rng(17);
  std::multimap<int64_t, uint64_t> model;
  uint64_t next_tag = 0;
  for (int step = 0; step < 4000; ++step) {
    if (model.empty() || rng.Bernoulli(0.55)) {
      const int64_t key = rng.UniformInt(0, 200);
      const uint64_t tag = next_tag++;
      ASSERT_TRUE(index_.Insert(key, Payload(tag).data()).ok());
      model.emplace(key, tag);
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(index_.Delete(it->first, MatchTag(it->second)).ok());
      model.erase(it);
    }
  }
  ASSERT_EQ(index_.entry_count(), model.size());
  // Bucket order is arbitrary: compare order-insensitively.
  std::vector<std::pair<int64_t, uint64_t>> scanned;
  ASSERT_TRUE(index_.ScanAll([&](int64_t k, const uint8_t* p) {
    scanned.emplace_back(k, TagOf(p));
    return true;
  }).ok());
  std::vector<std::pair<int64_t, uint64_t>> expected(model.begin(),
                                                     model.end());
  std::sort(scanned.begin(), scanned.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(scanned, expected);
}

}  // namespace
}  // namespace viewmat::storage
