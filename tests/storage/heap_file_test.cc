#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/random.h"

namespace viewmat::storage {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : disk_(256, &tracker_), pool_(&disk_, 8), heap_(&pool_, 16) {}

  std::vector<uint8_t> Record(uint64_t tag) {
    std::vector<uint8_t> r(16, 0);
    std::memcpy(r.data(), &tag, 8);
    return r;
  }
  uint64_t TagOf(const uint8_t* rec) {
    uint64_t tag;
    std::memcpy(&tag, rec, 8);
    return tag;
  }

  CostTracker tracker_;
  SimulatedDisk disk_;
  BufferPool pool_;
  HeapFile heap_;
};

TEST_F(HeapFileTest, InsertAndGet) {
  auto rid = heap_.Insert(Record(42).data());
  ASSERT_TRUE(rid.ok());
  uint8_t out[16];
  ASSERT_TRUE(heap_.Get(*rid, out).ok());
  EXPECT_EQ(TagOf(out), 42u);
  EXPECT_EQ(heap_.record_count(), 1u);
}

TEST_F(HeapFileTest, FillsPagesBeforeAllocatingNew) {
  const uint32_t per_page = heap_.slots_per_page();
  for (uint32_t i = 0; i < per_page; ++i) {
    ASSERT_TRUE(heap_.Insert(Record(i).data()).ok());
  }
  EXPECT_EQ(heap_.page_count(), 1u);
  ASSERT_TRUE(heap_.Insert(Record(999).data()).ok());
  EXPECT_EQ(heap_.page_count(), 2u);
}

TEST_F(HeapFileTest, DeleteFreesSlotForReuse) {
  const uint32_t per_page = heap_.slots_per_page();
  std::vector<Rid> rids;
  for (uint32_t i = 0; i < per_page; ++i) {
    auto rid = heap_.Insert(Record(i).data());
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  ASSERT_TRUE(heap_.Delete(rids[3]).ok());
  auto rid = heap_.Insert(Record(777).data());
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(heap_.page_count(), 1u);  // reused the freed slot
  EXPECT_EQ(rid->page, rids[3].page);
  EXPECT_EQ(rid->slot, rids[3].slot);
}

TEST_F(HeapFileTest, GetDeletedRecordFails) {
  auto rid = heap_.Insert(Record(1).data());
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(heap_.Delete(*rid).ok());
  uint8_t out[16];
  EXPECT_EQ(heap_.Get(*rid, out).code(), StatusCode::kNotFound);
  EXPECT_EQ(heap_.Delete(*rid).code(), StatusCode::kNotFound);
}

TEST_F(HeapFileTest, UpdateOverwritesInPlace) {
  auto rid = heap_.Insert(Record(5).data());
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(heap_.Update(*rid, Record(6).data()).ok());
  uint8_t out[16];
  ASSERT_TRUE(heap_.Get(*rid, out).ok());
  EXPECT_EQ(TagOf(out), 6u);
}

TEST_F(HeapFileTest, ScanVisitsEverythingOnce) {
  std::set<uint64_t> want;
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(heap_.Insert(Record(i).data()).ok());
    want.insert(i);
  }
  std::set<uint64_t> got;
  ASSERT_TRUE(heap_.Scan([&](Rid, const uint8_t* rec) {
    EXPECT_TRUE(got.insert(TagOf(rec)).second) << "duplicate visit";
    return true;
  }).ok());
  EXPECT_EQ(got, want);
}

TEST_F(HeapFileTest, ScanEarlyStop) {
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(heap_.Insert(Record(i).data()).ok());
  }
  int visited = 0;
  ASSERT_TRUE(heap_.Scan([&](Rid, const uint8_t*) {
    return ++visited < 7;
  }).ok());
  EXPECT_EQ(visited, 7);
}

TEST_F(HeapFileTest, RandomChurnKeepsCountsConsistent) {
  Random rng(7);
  std::vector<std::pair<Rid, uint64_t>> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      const uint64_t tag = rng.Next();
      auto rid = heap_.Insert(Record(tag).data());
      ASSERT_TRUE(rid.ok());
      live.emplace_back(*rid, tag);
    } else {
      const size_t idx = rng.Uniform(live.size());
      ASSERT_TRUE(heap_.Delete(live[idx].first).ok());
      live.erase(live.begin() + idx);
    }
  }
  EXPECT_EQ(heap_.record_count(), live.size());
  for (const auto& [rid, tag] : live) {
    uint8_t out[16];
    ASSERT_TRUE(heap_.Get(rid, out).ok());
    EXPECT_EQ(TagOf(out), tag);
  }
}

TEST_F(HeapFileTest, DestroyReleasesPages) {
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(heap_.Insert(Record(i).data()).ok());
  }
  const size_t live_before = disk_.live_pages();
  ASSERT_TRUE(heap_.Destroy().ok());
  EXPECT_LT(disk_.live_pages(), live_before);
  EXPECT_EQ(heap_.record_count(), 0u);
}

}  // namespace
}  // namespace viewmat::storage
