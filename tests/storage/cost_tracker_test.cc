#include "storage/cost_tracker.h"

#include <gtest/gtest.h>

#include <thread>

#include "obs/trace.h"

namespace viewmat::storage {
namespace {

TEST(CostTracker, ChargesLandInUnattributedUnphasedCellByDefault) {
  CostTracker tracker;
  tracker.ChargeRead(3);
  tracker.ChargeScreen(2);
  const CostCounters& cell =
      tracker.attributed().at(Component::kUnattributed, Phase::kUnphased);
  EXPECT_EQ(cell.disk_reads, 3u);
  EXPECT_EQ(cell.screen_tests, 2u);
  EXPECT_TRUE(tracker.attributed().Total() == tracker.counters());
}

TEST(CostTracker, ScopedTagsNestAndRestore) {
  CostTracker tracker;
  tracker.ChargeRead();  // unattributed/unphased
  {
    ScopedPhase phase(&tracker, Phase::kQuery);
    ScopedComponent outer(&tracker, Component::kBptree);
    tracker.ChargeRead();  // bptree/query
    {
      ScopedComponent inner(&tracker, Component::kBloom);
      tracker.ChargeScreen();  // innermost wins: bloom/query
    }
    tracker.ChargeWrite();  // back to bptree/query after inner's destructor
  }
  tracker.ChargeWrite();  // tags fully restored

  const AttributedCounters& a = tracker.attributed();
  EXPECT_EQ(a.at(Component::kUnattributed, Phase::kUnphased).disk_reads, 1u);
  EXPECT_EQ(a.at(Component::kBptree, Phase::kQuery).disk_reads, 1u);
  EXPECT_EQ(a.at(Component::kBloom, Phase::kQuery).screen_tests, 1u);
  EXPECT_EQ(a.at(Component::kBptree, Phase::kQuery).disk_writes, 1u);
  EXPECT_EQ(a.at(Component::kUnattributed, Phase::kUnphased).disk_writes, 1u);
  EXPECT_EQ(tracker.component(), Component::kUnattributed);
  EXPECT_EQ(tracker.phase(), Phase::kUnphased);
}

TEST(CostTracker, AttributedCellsSumToFlatCountersExactly) {
  CostTracker tracker;
  // Spray charges across several cells, including repeated tags.
  for (int i = 0; i < 10; ++i) {
    ScopedPhase phase(&tracker,
                      i % 2 == 0 ? Phase::kUpdateApply : Phase::kRefresh);
    ScopedComponent comp(&tracker,
                         i % 3 == 0 ? Component::kHeap : Component::kAdLog);
    tracker.ChargeRead(i);
    tracker.ChargeWrite();
    tracker.ChargeTupleCpu(2 * i);
    tracker.ChargeAdSetOp();
  }
  tracker.ChargeScreen(7);  // untagged

  EXPECT_TRUE(tracker.attributed().Total() == tracker.counters());
  EXPECT_EQ(tracker.counters().disk_reads, 45u);
  EXPECT_EQ(tracker.counters().disk_writes, 10u);
  EXPECT_EQ(tracker.counters().screen_tests, 7u);
  EXPECT_EQ(tracker.counters().tuple_cpu_ops, 90u);
  EXPECT_EQ(tracker.counters().ad_set_ops, 10u);
}

TEST(CostTracker, ComponentAndPhaseTotalsPartitionTheTotal) {
  CostTracker tracker;
  {
    ScopedComponent comp(&tracker, Component::kHashIndex);
    ScopedPhase phase(&tracker, Phase::kScreen);
    tracker.ChargeRead(4);
  }
  tracker.ChargeWrite(2);

  CostCounters by_component;
  for (size_t c = 0; c < kNumComponents; ++c) {
    by_component +=
        tracker.attributed().ComponentTotal(static_cast<Component>(c));
  }
  CostCounters by_phase;
  for (size_t p = 0; p < kNumPhases; ++p) {
    by_phase += tracker.attributed().PhaseTotal(static_cast<Phase>(p));
  }
  EXPECT_TRUE(by_component == tracker.counters());
  EXPECT_TRUE(by_phase == tracker.counters());
}

TEST(CostTracker, ResetClearsFlatAndAttributedCounters) {
  CostTracker tracker;
  {
    ScopedComponent comp(&tracker, Component::kBufferPool);
    tracker.ChargeWrite(5);
  }
  tracker.Reset();
  EXPECT_TRUE(tracker.counters().empty());
  EXPECT_TRUE(tracker.attributed().Total().empty());
  EXPECT_DOUBLE_EQ(tracker.TotalMs(), 0.0);
}

TEST(CostTracker, NullTrackerGuardsAreNoOps) {
  ScopedComponent comp(nullptr, Component::kHeap);
  ScopedPhase phase(nullptr, Phase::kQuery);
  EXPECT_EQ(TracerOf(nullptr), nullptr);
}

TEST(CostTracker, IsTheTracersModelClock) {
  CostTracker tracker(1.0, 30.0, 1.0);
  obs::Tracer tracer;
  tracker.set_tracer(&tracer);
  EXPECT_EQ(TracerOf(&tracker), &tracer);

  tracer.NewTrack("run");
  const uint32_t h = tracer.BeginSpan("io");
  tracker.ChargeRead();      // +30 model-ms
  tracker.ChargeTupleCpu();  // +1
  tracer.EndSpan(h);
  ASSERT_EQ(tracer.span_count(), 1u);
  EXPECT_DOUBLE_EQ(tracer.spans()[0].begin_ms, 0.0);
  EXPECT_DOUBLE_EQ(tracer.spans()[0].end_ms, 31.0);
}

TEST(CostTracker, TxnCostContextCapturesExactlyTheEnclosedCharges) {
  CostTracker tracker;
  tracker.ChargeRead(7);  // pre-context noise the delta must exclude

  TxnCostContext ctx;
  ctx.Begin(&tracker);
  EXPECT_TRUE(ctx.open());
  {
    ScopedComponent comp(&tracker, Component::kBptree);
    ScopedPhase phase(&tracker, Phase::kUpdateApply);
    tracker.ChargeRead(2);
    tracker.ChargeWrite(3);
    tracker.ChargeScreen(5);
  }
  ctx.End(&tracker);
  EXPECT_FALSE(ctx.open());
  tracker.ChargeWrite(11);  // post-context noise the delta must exclude

  EXPECT_EQ(ctx.flat().disk_reads, 2u);
  EXPECT_EQ(ctx.flat().disk_writes, 3u);
  EXPECT_EQ(ctx.flat().screen_tests, 5u);
  const CostCounters& cell =
      ctx.attributed().at(Component::kBptree, Phase::kUpdateApply);
  EXPECT_EQ(cell.disk_reads, 2u);
  EXPECT_EQ(cell.disk_writes, 3u);
  EXPECT_EQ(cell.screen_tests, 5u);
  EXPECT_TRUE(ctx.attributed().Total() == ctx.flat());
}

TEST(CostTracker, TxnCostContextsPartitionTheTrackerTotals) {
  // Back-to-back contexts (the commit pipeline's shape): their sum must
  // reproduce the tracker's totals to the counter.
  CostTracker tracker;
  CostCounters merged;
  for (int txn = 0; txn < 5; ++txn) {
    TxnCostContext ctx;
    ctx.Begin(&tracker);
    tracker.ChargeRead(static_cast<uint64_t>(txn + 1));
    tracker.ChargeTupleCpu(static_cast<uint64_t>(2 * txn + 1));
    ctx.End(&tracker);
    merged += ctx.flat();
  }
  EXPECT_TRUE(merged == tracker.counters());
  EXPECT_DOUBLE_EQ(tracker.Ms(merged), tracker.TotalMs());
}

TEST(CostTracker, TransferOwnershipHandsTheTrackerToAnotherThread) {
  // Serialized handoff: the main thread charges, releases its claim, and a
  // second thread charges next. Without TransferOwnership() the second
  // thread's charge would trip the single-owner DCHECK in debug builds.
  CostTracker tracker;
  tracker.ChargeRead();
  tracker.TransferOwnership();
  std::thread other([&tracker] {
    tracker.ChargeWrite(2);
    tracker.TransferOwnership();
  });
  other.join();
  tracker.ChargeRead(3);  // main thread re-claims after the join
  EXPECT_EQ(tracker.counters().disk_reads, 4u);
  EXPECT_EQ(tracker.counters().disk_writes, 2u);
}

TEST(CostTracker, AttributionNeverChangesModelMilliseconds) {
  CostTracker untagged;
  CostTracker tagged;
  untagged.ChargeRead(2);
  untagged.ChargeScreen(3);
  {
    ScopedComponent comp(&tagged, Component::kBptree);
    ScopedPhase phase(&tagged, Phase::kQuery);
    tagged.ChargeRead(2);
    tagged.ChargeScreen(3);
  }
  EXPECT_TRUE(untagged.counters() == tagged.counters());
  EXPECT_DOUBLE_EQ(untagged.TotalMs(), tagged.TotalMs());
}

}  // namespace
}  // namespace viewmat::storage
