#include "storage/disk.h"

#include <gtest/gtest.h>

namespace viewmat::storage {
namespace {

class DiskTest : public ::testing::Test {
 protected:
  CostTracker tracker_{1.0, 30.0, 1.0};
  SimulatedDisk disk_{256, &tracker_};
};

TEST_F(DiskTest, AllocateReturnsDistinctIds) {
  const PageId a = disk_.Allocate();
  const PageId b = disk_.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(disk_.live_pages(), 2u);
}

TEST_F(DiskTest, WriteThenReadRoundTrips) {
  const PageId id = disk_.Allocate();
  Page out(256);
  out.WriteAt<uint64_t>(0, 0xdeadbeefULL);
  out.WriteAt<uint32_t>(100, 42);
  ASSERT_TRUE(disk_.Write(id, out).ok());
  Page in(256);
  ASSERT_TRUE(disk_.Read(id, &in).ok());
  EXPECT_EQ(in.ReadAt<uint64_t>(0), 0xdeadbeefULL);
  EXPECT_EQ(in.ReadAt<uint32_t>(100), 42u);
}

TEST_F(DiskTest, ChargesC2PerIo) {
  const PageId id = disk_.Allocate();
  Page pg(256);
  EXPECT_DOUBLE_EQ(tracker_.TotalMs(), 0.0);
  ASSERT_TRUE(disk_.Write(id, pg).ok());
  EXPECT_DOUBLE_EQ(tracker_.TotalMs(), 30.0);
  ASSERT_TRUE(disk_.Read(id, &pg).ok());
  EXPECT_DOUBLE_EQ(tracker_.TotalMs(), 60.0);
  EXPECT_EQ(tracker_.counters().disk_reads, 1u);
  EXPECT_EQ(tracker_.counters().disk_writes, 1u);
}

TEST_F(DiskTest, FreedPagesAreRecycled) {
  const PageId a = disk_.Allocate();
  ASSERT_TRUE(disk_.Free(a).ok());
  const PageId b = disk_.Allocate();
  EXPECT_EQ(a, b);  // recycled
  EXPECT_EQ(disk_.live_pages(), 1u);
}

TEST_F(DiskTest, RecycledPageIsZeroed) {
  const PageId a = disk_.Allocate();
  Page pg(256);
  pg.WriteAt<uint64_t>(0, 123);
  ASSERT_TRUE(disk_.Write(a, pg).ok());
  ASSERT_TRUE(disk_.Free(a).ok());
  const PageId b = disk_.Allocate();
  ASSERT_EQ(a, b);
  Page in(256);
  ASSERT_TRUE(disk_.Read(b, &in).ok());
  EXPECT_EQ(in.ReadAt<uint64_t>(0), 0u);
}

TEST_F(DiskTest, AccessingFreedPageFails) {
  const PageId a = disk_.Allocate();
  ASSERT_TRUE(disk_.Free(a).ok());
  Page pg(256);
  EXPECT_EQ(disk_.Read(a, &pg).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk_.Write(a, pg).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk_.Free(a).code(), StatusCode::kInvalidArgument);
}

TEST_F(DiskTest, ReadingUnallocatedPageFails) {
  Page pg(256);
  EXPECT_FALSE(disk_.Read(999, &pg).ok());
}

TEST(CostTrackerTest, MsFormula) {
  CostTracker t(2.0, 25.0, 3.0);
  t.ChargeRead(4);
  t.ChargeWrite(1);
  t.ChargeScreen(10);
  t.ChargeTupleCpu(5);
  t.ChargeAdSetOp(7);
  // 25*(4+1) + 2*(10+5) + 3*7 = 125 + 30 + 21
  EXPECT_DOUBLE_EQ(t.TotalMs(), 176.0);
  t.Reset();
  EXPECT_DOUBLE_EQ(t.TotalMs(), 0.0);
}

TEST(CostTrackerTest, CounterDeltas) {
  CostTracker t;
  t.ChargeRead(3);
  const CostCounters before = t.counters();
  t.ChargeRead(2);
  t.ChargeWrite(5);
  const CostCounters delta = t.counters() - before;
  EXPECT_EQ(delta.disk_reads, 2u);
  EXPECT_EQ(delta.disk_writes, 5u);
  EXPECT_EQ(delta.disk_ios(), 7u);
}

}  // namespace
}  // namespace viewmat::storage
