#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/cost_tracker.h"
#include "storage/disk.h"
#include "storage/faulty_disk.h"

namespace viewmat::storage {
namespace {

struct Record {
  Lsn lsn;
  uint8_t type;
  std::vector<uint8_t> payload;
};

class WalTest : public ::testing::Test {
 protected:
  WalTest() : tracker_(1.0, 30.0, 1.0), inner_(128, &tracker_), disk_(&inner_) {}

  static Status Append(WriteAheadLog* log, uint8_t type,
                       const std::string& payload, Lsn* lsn = nullptr) {
    return log->Append(type, reinterpret_cast<const uint8_t*>(payload.data()),
                       static_cast<uint16_t>(payload.size()), lsn);
  }

  static std::vector<Record> ScanAll(const WriteAheadLog& log,
                                     bool* torn = nullptr) {
    std::vector<Record> records;
    const Status st = log.ScanWithLsn(
        [&](Lsn lsn, uint8_t type, const uint8_t* payload, uint16_t len) {
          records.push_back({lsn, type, {payload, payload + len}});
          return true;
        },
        torn);
    EXPECT_TRUE(st.ok()) << st.message();
    return records;
  }

  CostTracker tracker_;
  SimulatedDisk inner_;
  FaultyDisk disk_;
};

TEST_F(WalTest, LsnsAreStampedMonotonically) {
  WriteAheadLog log(&disk_);
  Lsn prev = 0;
  for (int i = 0; i < 10; ++i) {
    Lsn lsn = 0;
    ASSERT_TRUE(Append(&log, 1, "r", &lsn).ok());
    EXPECT_GT(lsn, prev);
    prev = lsn;
  }
  const std::vector<Record> records = ScanAll(log);
  ASSERT_EQ(records.size(), 10u);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GT(records[i].lsn, records[i - 1].lsn);
  }
  EXPECT_EQ(log.durable_lsn(), prev);
}

TEST_F(WalTest, SharedAllocatorPutsTwoLogsInOneLsnSpace) {
  // The unified-LSN-space property: interleaved appends to two logs
  // sharing one allocator never reuse or reorder sequence numbers.
  LsnAllocator lsns;
  WriteAheadLog::Options options;
  options.lsn_allocator = &lsns;
  WriteAheadLog a(&disk_, options);
  WriteAheadLog b(&disk_, options);
  Lsn prev = 0;
  for (int i = 0; i < 6; ++i) {
    Lsn lsn = 0;
    WriteAheadLog* log = (i % 2 == 0) ? &a : &b;
    ASSERT_TRUE(Append(log, 1, "x", &lsn).ok());
    EXPECT_GT(lsn, prev);
    prev = lsn;
  }
  EXPECT_EQ(lsns.last(), prev);
}

TEST_F(WalTest, BufferedRecordsAreNotDurableUntilSync) {
  WriteAheadLog::Options options;
  options.auto_sync = false;
  WriteAheadLog log(&disk_, options);
  ASSERT_TRUE(Append(&log, 1, "one").ok());
  ASSERT_TRUE(Append(&log, 2, "two").ok());
  EXPECT_EQ(log.pending_records(), 2u);
  EXPECT_EQ(log.durable_lsn(), 0u);
  EXPECT_TRUE(ScanAll(log).empty());  // nothing on the device yet

  ASSERT_TRUE(log.Sync().ok());
  EXPECT_EQ(log.pending_records(), 0u);
  EXPECT_EQ(log.durable_lsn(), log.last_lsn());
  const std::vector<Record> records = ScanAll(log);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, 1);
  EXPECT_EQ(records[1].type, 2);
}

TEST_F(WalTest, DiscardVolatileWithEmptyStagedTailIsANoOp) {
  WriteAheadLog::Options options;
  options.auto_sync = false;
  WriteAheadLog log(&disk_, options);
  ASSERT_TRUE(Append(&log, 1, "durable").ok());
  ASSERT_TRUE(log.Sync().ok());
  const Lsn durable = log.durable_lsn();
  // Nothing staged: discarding must change neither the device contents
  // nor the durability watermark.
  ASSERT_TRUE(log.DiscardVolatile().ok());
  EXPECT_EQ(log.pending_records(), 0u);
  EXPECT_EQ(log.durable_lsn(), durable);
  ASSERT_EQ(ScanAll(log).size(), 1u);
}

TEST_F(WalTest, DoubleDiscardVolatileIsIdempotent) {
  WriteAheadLog::Options options;
  options.auto_sync = false;
  WriteAheadLog log(&disk_, options);
  ASSERT_TRUE(Append(&log, 1, "keep").ok());
  ASSERT_TRUE(log.Sync().ok());
  ASSERT_TRUE(Append(&log, 2, "staged-a").ok());
  ASSERT_TRUE(Append(&log, 3, "staged-b").ok());
  ASSERT_TRUE(log.DiscardVolatile().ok());
  EXPECT_EQ(log.pending_records(), 0u);
  // The second discard has nothing left to drop and must not disturb the
  // durable prefix either.
  ASSERT_TRUE(log.DiscardVolatile().ok());
  EXPECT_EQ(log.pending_records(), 0u);
  const std::vector<Record> records = ScanAll(log);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, 1);
  // The log stays usable: new appends sync through normally.
  ASSERT_TRUE(Append(&log, 4, "after").ok());
  ASSERT_TRUE(log.Sync().ok());
  ASSERT_EQ(ScanAll(log).size(), 2u);
}

TEST_F(WalTest, DiscardVolatileAfterSyncDropsNothingDurable) {
  WriteAheadLog::Options options;
  options.auto_sync = false;
  WriteAheadLog log(&disk_, options);
  ASSERT_TRUE(Append(&log, 1, "one").ok());
  ASSERT_TRUE(Append(&log, 2, "two").ok());
  ASSERT_TRUE(log.Sync().ok());
  const Lsn durable = log.durable_lsn();
  ASSERT_TRUE(log.DiscardVolatile().ok());
  EXPECT_EQ(log.durable_lsn(), durable);
  const std::vector<Record> records = ScanAll(log);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, 1);
  EXPECT_EQ(records[1].type, 2);
}

TEST_F(WalTest, TornTailRecordIsDetectedAndDropped) {
  WriteAheadLog log(&disk_);
  ASSERT_TRUE(Append(&log, 1, "committed-one").ok());
  ASSERT_TRUE(Append(&log, 2, "committed-two").ok());

  // Tear the next append: the write fails after applying a random prefix
  // of the page — the classic partially-persisted block. If the prefix
  // happens to cover the whole record the read-back probe adopts it and the
  // append is (correctly) acknowledged; either way acknowledgment and
  // durability must agree, and a half-written record never replays.
  disk_.set_torn_writes(true);
  disk_.InjectWriteFault(0);
  const bool acked = Append(&log, 3, "torn-tail-record").ok();
  disk_.ClearFaults();
  disk_.set_torn_writes(false);

  const std::vector<Record> records = ScanAll(log);
  ASSERT_EQ(records.size(), acked ? 3u : 2u);
  EXPECT_EQ(records[0].type, 1);
  EXPECT_EQ(records[1].type, 2);
  if (acked) {
    EXPECT_EQ(records[2].type, 3);
  }
}

TEST_F(WalTest, TruncateWithRecordLeavesOnlyTheCheckpoint) {
  WriteAheadLog log(&disk_);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(Append(&log, 1, "old").ok());
  const uint64_t mark = 42;
  Lsn lsn = 0;
  ASSERT_TRUE(log.TruncateWithRecord(9, reinterpret_cast<const uint8_t*>(&mark),
                                     sizeof(mark), &lsn)
                  .ok());
  EXPECT_GT(lsn, 0u);
  const std::vector<Record> records = ScanAll(log);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, 9);
  ASSERT_EQ(records[0].payload.size(), sizeof(mark));
  uint64_t got = 0;
  std::memcpy(&got, records[0].payload.data(), sizeof(got));
  EXPECT_EQ(got, mark);
  EXPECT_EQ(log.record_count(), 1u);
}

TEST_F(WalTest, PoolWalRuleForcesSyncBeforeDirtyWriteback) {
  BufferPool pool(&disk_, 4);
  WriteAheadLog::Options options;
  options.auto_sync = false;
  WriteAheadLog log(&disk_, options);
  pool.AttachWal(&log);

  Lsn commit_lsn = 0;
  ASSERT_TRUE(Append(&log, 1, "intent", &commit_lsn).ok());
  EXPECT_EQ(log.durable_lsn(), 0u);  // staged only

  // A page dirtied under the commit stamp may not reach the device before
  // the log does: FlushAll must force the sync first.
  pool.SetStampLsn(commit_lsn);
  auto guard = pool.NewPage();
  ASSERT_TRUE(guard.ok());
  guard->MarkDirty();
  EXPECT_EQ(guard->page().lsn(), commit_lsn);
  guard->Release();
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.wal_syncs_forced(), 1u);
  EXPECT_GE(log.durable_lsn(), commit_lsn);

  // Once the log is ahead of the stamp, write-back is free again.
  auto guard2 = pool.NewPage();
  ASSERT_TRUE(guard2.ok());
  guard2->MarkDirty();
  guard2->Release();
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.wal_syncs_forced(), 1u);
}

TEST_F(WalTest, SyncFailureDoesNotAcknowledgeThenRetrySucceeds) {
  WriteAheadLog::Options options;
  options.auto_sync = false;
  WriteAheadLog log(&disk_, options);
  ASSERT_TRUE(Append(&log, 1, "first-batch").ok());
  ASSERT_TRUE(log.Sync().ok());

  ASSERT_TRUE(Append(&log, 2, "second-batch").ok());
  disk_.InjectWriteFault(0);
  EXPECT_FALSE(log.Sync().ok());
  disk_.ClearFaults();

  // Retrying (possibly after re-staging) must not duplicate or lose the
  // durable history: the first batch appears exactly once, and whatever
  // the failed sync durably landed was adopted, never replayed twice.
  ASSERT_TRUE(Append(&log, 3, "third-batch").ok());
  ASSERT_TRUE(log.Sync().ok());
  const std::vector<Record> records = ScanAll(log);
  ASSERT_GE(records.size(), 2u);
  size_t firsts = 0, thirds = 0;
  for (const Record& r : records) {
    if (r.type == 1) ++firsts;
    if (r.type == 3) ++thirds;
  }
  EXPECT_EQ(firsts, 1u);
  EXPECT_EQ(thirds, 1u);
  Lsn prev = 0;
  for (const Record& r : records) {
    EXPECT_GT(r.lsn, prev);
    prev = r.lsn;
  }
}

}  // namespace
}  // namespace viewmat::storage
