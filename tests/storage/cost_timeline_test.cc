#include "storage/cost_timeline.h"

#include "gtest/gtest.h"
#include "storage/cost_tracker.h"

namespace viewmat::storage {
namespace {

// One "op": charge some attributed work, then report it to the recorder.
void RunOp(CostTracker* tracker, TimelineRecorder* rec, bool is_update,
           Component component, Phase phase, uint64_t reads) {
  const double begin = tracker->TotalMs();
  {
    const ScopedComponent c(tracker, component);
    const ScopedPhase p(tracker, phase);
    tracker->ChargeRead(reads);
    tracker->ChargeTupleCpu(2);
  }
  rec->OnOp(is_update, begin);
}

TEST(CostTimeline, SumOfWindowsEqualsFlatCounters) {
  CostTracker tracker;
  TimelineRecorder rec(&tracker, /*window_ms=*/100.0);
  for (int i = 0; i < 20; ++i) {
    RunOp(&tracker, &rec, /*is_update=*/i % 3 != 0, Component::kHeap,
          i % 3 != 0 ? Phase::kUpdateApply : Phase::kQuery, /*reads=*/3);
  }
  // Trailing charges outside any op (a final flush) must be swept in too.
  tracker.ChargeWrite(7);
  const CostTimeline timeline = rec.Finish();
  ASSERT_FALSE(timeline.empty());
  EXPECT_TRUE(timeline.Total() == tracker.counters());
  // Windows are ascending and each window's cells sum to its totals.
  int64_t prev = -1;
  for (const TimelineWindow& w : timeline.windows) {
    EXPECT_GT(w.index, prev);
    prev = w.index;
    CostCounters cells;
    for (const TimelineCell& cell : w.cells) cells += cell.counters;
    EXPECT_TRUE(cells == w.totals);
  }
}

TEST(CostTimeline, OpChargedToWindowOfItsStartTime) {
  CostTracker tracker;  // C2 = 30: one read = 30 model ms
  TimelineRecorder rec(&tracker, /*window_ms=*/100.0);
  // First op starts at t=0 and runs 3 reads + 2 cpu = 92 ms; second starts
  // at 92 ms (window 0) but finishes at 184 ms (window 1). Start-time
  // attribution puts both entirely in window 0.
  RunOp(&tracker, &rec, true, Component::kHeap, Phase::kUpdateApply, 3);
  RunOp(&tracker, &rec, false, Component::kBptree, Phase::kQuery, 3);
  const CostTimeline timeline = rec.Finish();
  ASSERT_EQ(timeline.windows.size(), 1u);
  EXPECT_EQ(timeline.windows[0].index, 0);
  EXPECT_EQ(timeline.windows[0].updates, 1u);
  EXPECT_EQ(timeline.windows[0].queries, 1u);
  EXPECT_EQ(timeline.windows[0].totals.disk_reads, 6u);
}

TEST(CostTimeline, SignalsSplitPhasesAndCountKinds) {
  CostTracker tracker;
  TimelineRecorder rec(&tracker, /*window_ms=*/10000.0);
  RunOp(&tracker, &rec, true, Component::kHeap, Phase::kUpdateApply, 2);
  RunOp(&tracker, &rec, true, Component::kAdLog, Phase::kRefresh, 4);
  RunOp(&tracker, &rec, false, Component::kBptree, Phase::kQuery, 1);
  const CostTimeline timeline = rec.Finish();
  ASSERT_EQ(timeline.windows.size(), 1u);
  const TimelineSignals& s = timeline.windows[0].signals;
  EXPECT_DOUBLE_EQ(s.update_fraction, 2.0 / 3.0);
  // 2 reads + 2 cpu under update_apply = 62 ms; 4 reads + 2 cpu under
  // refresh = 122 ms; 1 read + 2 cpu under query = 32 ms (C1=1, C2=30).
  EXPECT_DOUBLE_EQ(s.update_ms, 62.0);
  EXPECT_DOUBLE_EQ(s.refresh_ms, 122.0);
  EXPECT_DOUBLE_EQ(s.query_ms, 32.0);
  EXPECT_DOUBLE_EQ(s.refresh_ms_per_update, 122.0 / 2.0);
  EXPECT_DOUBLE_EQ(s.query_ms_per_query, 32.0);
  EXPECT_DOUBLE_EQ(s.io_per_op, 7.0 / 3.0);
  EXPECT_GT(s.ewma_update_ms, 0.0);
  EXPECT_GT(s.ewma_query_ms, 0.0);
  EXPECT_GT(s.p50_op_ms, 0.0);
  EXPECT_GE(s.p95_op_ms, s.p50_op_ms);
}

TEST(CostTimeline, CellsAreSparseAndOrdered) {
  CostTracker tracker;
  TimelineRecorder rec(&tracker, /*window_ms=*/10000.0);
  RunOp(&tracker, &rec, true, Component::kBptree, Phase::kUpdateApply, 1);
  RunOp(&tracker, &rec, true, Component::kHeap, Phase::kUpdateApply, 1);
  const CostTimeline timeline = rec.Finish();
  ASSERT_EQ(timeline.windows.size(), 1u);
  const auto& cells = timeline.windows[0].cells;
  ASSERT_EQ(cells.size(), 2u);
  // (component, phase) index order, and no empty cells for the other
  // 8 x 6 - 2 combinations.
  EXPECT_LT(static_cast<int>(cells[0].component),
            static_cast<int>(cells[1].component));
  for (const TimelineCell& cell : cells) {
    EXPECT_FALSE(cell.counters.empty());
  }
}

TEST(CostTimeline, IdleGapsProduceNoWindows) {
  CostTracker tracker;
  TimelineRecorder rec(&tracker, /*window_ms=*/10.0);
  RunOp(&tracker, &rec, true, Component::kHeap, Phase::kUpdateApply, 1);
  // Charge a long stretch of work as one op: its start pins it to the
  // current window; the windows its *duration* spans stay absent.
  RunOp(&tracker, &rec, true, Component::kHeap, Phase::kUpdateApply, 40);
  RunOp(&tracker, &rec, false, Component::kBptree, Phase::kQuery, 1);
  const CostTimeline timeline = rec.Finish();
  // Sparse: far fewer windows than the ~120 the run's duration spans.
  EXPECT_LE(timeline.windows.size(), 3u);
  EXPECT_TRUE(timeline.Total() == tracker.counters());
}

}  // namespace
}  // namespace viewmat::storage
