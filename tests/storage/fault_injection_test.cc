#include <gtest/gtest.h>

#include "db/relation.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"

namespace viewmat::storage {
namespace {

/// Failure-injection coverage: a failed block I/O must surface as a non-OK
/// Status at every layer, and recovery (fault cleared) must work without
/// restart. The no-exceptions discipline means these paths are ordinary
/// control flow and deserve ordinary tests.

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : disk_(512, &tracker_), pool_(&disk_, 8) {}

  CostTracker tracker_;
  SimulatedDisk disk_;
  BufferPool pool_;
};

TEST_F(FaultInjectionTest, DiskReadFaultSurfacesOnce) {
  const PageId id = disk_.Allocate();
  Page pg(512);
  ASSERT_TRUE(disk_.Write(id, pg).ok());
  disk_.InjectReadFault(0);
  EXPECT_EQ(disk_.Read(id, &pg).code(), StatusCode::kInternal);
  EXPECT_TRUE(disk_.Read(id, &pg).ok());  // fault auto-clears
}

TEST_F(FaultInjectionTest, DelayedFaultCountsSuccessfulReads) {
  const PageId id = disk_.Allocate();
  Page pg(512);
  ASSERT_TRUE(disk_.Write(id, pg).ok());
  disk_.InjectReadFault(2);  // two reads succeed, the third fails
  EXPECT_TRUE(disk_.Read(id, &pg).ok());
  EXPECT_TRUE(disk_.Read(id, &pg).ok());
  EXPECT_FALSE(disk_.Read(id, &pg).ok());
}

TEST_F(FaultInjectionTest, ClearFaultsDisarms) {
  const PageId id = disk_.Allocate();
  Page pg(512);
  ASSERT_TRUE(disk_.Write(id, pg).ok());
  disk_.InjectReadFault(0);
  disk_.ClearFaults();
  EXPECT_TRUE(disk_.Read(id, &pg).ok());
}

TEST_F(FaultInjectionTest, BufferPoolPropagatesMissReadFault) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard->id();
  }
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  disk_.InjectReadFault(0);
  EXPECT_EQ(pool_.Fetch(id).status().code(), StatusCode::kInternal);
  // Recovered fetch works and the pool is consistent.
  auto again = pool_.Fetch(id);
  EXPECT_TRUE(again.ok());
}

TEST_F(FaultInjectionTest, BufferPoolPropagatesEvictionWriteFault) {
  // Fill the pool with dirty pages, then force an eviction with the write
  // path poisoned.
  for (int i = 0; i < 8; ++i) {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->MarkDirty();
  }
  disk_.InjectWriteFault(0);
  EXPECT_FALSE(pool_.NewPage().ok());
  disk_.ClearFaults();
  EXPECT_TRUE(pool_.NewPage().ok());
}

TEST_F(FaultInjectionTest, BPTreeSurfacesDescentFault) {
  BPTree tree(&pool_, 8);
  uint8_t payload[8] = {0};
  for (int64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(tree.Insert(k, payload).ok());
  }
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  disk_.InjectReadFault(0);
  uint8_t out[8];
  EXPECT_EQ(tree.Find(150, out).code(), StatusCode::kInternal);
  // The tree remains fully usable afterwards.
  EXPECT_TRUE(tree.Find(150, out).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(FaultInjectionTest, RelationScanSurfacesMidScanFault) {
  db::Relation rel(&pool_, "t",
                   db::Schema({db::Field::Int64("k"), db::Field::Int64("x")}),
                   db::AccessMethod::kClusteredBTree, 0);
  for (int64_t k = 0; k < 400; ++k) {
    ASSERT_TRUE(
        rel.Insert(db::Tuple({db::Value(k), db::Value(k)})).ok());
  }
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  disk_.InjectReadFault(5);  // die a few pages into the scan
  size_t visited = 0;
  const Status st = rel.Scan([&](const db::Tuple&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_GT(visited, 0u);  // it got partway, then reported the error
  // And a clean retry completes.
  size_t total = 0;
  EXPECT_TRUE(rel.Scan([&](const db::Tuple&) {
    ++total;
    return true;
  }).ok());
  EXPECT_EQ(total, 400u);
}

}  // namespace
}  // namespace viewmat::storage
