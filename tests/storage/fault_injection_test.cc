#include <gtest/gtest.h>

#include <map>

#include "db/relation.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "storage/faulty_disk.h"
#include "testing/view_fixture.h"
#include "view/deferred.h"
#include "view/hybrid.h"
#include "view/immediate.h"
#include "view/query_modification.h"
#include "view/snapshot.h"

namespace viewmat::storage {
namespace {

/// Failure-injection coverage: a failed block I/O must surface as a non-OK
/// Status at every layer, and recovery (fault cleared) must work without
/// restart. The no-exceptions discipline means these paths are ordinary
/// control flow and deserve ordinary tests.

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : inner_(512, &tracker_), disk_(&inner_), pool_(&disk_, 8) {}

  CostTracker tracker_;
  SimulatedDisk inner_;
  FaultyDisk disk_;
  BufferPool pool_;
};

TEST_F(FaultInjectionTest, DiskReadFaultSurfacesOnce) {
  const PageId id = disk_.Allocate();
  Page pg(512);
  ASSERT_TRUE(disk_.Write(id, pg).ok());
  disk_.InjectReadFault(0);
  EXPECT_EQ(disk_.Read(id, &pg).code(), StatusCode::kInternal);
  EXPECT_TRUE(disk_.Read(id, &pg).ok());  // fault auto-clears
}

TEST_F(FaultInjectionTest, DelayedFaultCountsSuccessfulReads) {
  const PageId id = disk_.Allocate();
  Page pg(512);
  ASSERT_TRUE(disk_.Write(id, pg).ok());
  disk_.InjectReadFault(2);  // two reads succeed, the third fails
  EXPECT_TRUE(disk_.Read(id, &pg).ok());
  EXPECT_TRUE(disk_.Read(id, &pg).ok());
  EXPECT_FALSE(disk_.Read(id, &pg).ok());
}

TEST_F(FaultInjectionTest, ClearFaultsDisarms) {
  const PageId id = disk_.Allocate();
  Page pg(512);
  ASSERT_TRUE(disk_.Write(id, pg).ok());
  disk_.InjectReadFault(0);
  disk_.ClearFaults();
  EXPECT_TRUE(disk_.Read(id, &pg).ok());
}

TEST_F(FaultInjectionTest, BufferPoolPropagatesMissReadFault) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard->id();
  }
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  disk_.InjectReadFault(0);
  EXPECT_EQ(pool_.Fetch(id).status().code(), StatusCode::kInternal);
  // Recovered fetch works and the pool is consistent.
  auto again = pool_.Fetch(id);
  EXPECT_TRUE(again.ok());
}

TEST_F(FaultInjectionTest, BufferPoolPropagatesEvictionWriteFault) {
  // Fill the pool with dirty pages, then force an eviction with the write
  // path poisoned.
  for (int i = 0; i < 8; ++i) {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->MarkDirty();
  }
  disk_.InjectWriteFault(0);
  EXPECT_FALSE(pool_.NewPage().ok());
  disk_.ClearFaults();
  EXPECT_TRUE(pool_.NewPage().ok());
}

TEST_F(FaultInjectionTest, BPTreeSurfacesDescentFault) {
  BPTree tree(&pool_, 8);
  uint8_t payload[8] = {0};
  for (int64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(tree.Insert(k, payload).ok());
  }
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  disk_.InjectReadFault(0);
  uint8_t out[8];
  EXPECT_EQ(tree.Find(150, out).code(), StatusCode::kInternal);
  // The tree remains fully usable afterwards.
  EXPECT_TRUE(tree.Find(150, out).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(FaultInjectionTest, RelationScanSurfacesMidScanFault) {
  db::Relation rel(&pool_, "t",
                   db::Schema({db::Field::Int64("k"), db::Field::Int64("x")}),
                   db::AccessMethod::kClusteredBTree, 0);
  for (int64_t k = 0; k < 400; ++k) {
    ASSERT_TRUE(
        rel.Insert(db::Tuple({db::Value(k), db::Value(k)})).ok());
  }
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  disk_.InjectReadFault(5);  // die a few pages into the scan
  size_t visited = 0;
  const Status st = rel.Scan([&](const db::Tuple&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_GT(visited, 0u);  // it got partway, then reported the error
  // And a clean retry completes.
  size_t total = 0;
  EXPECT_TRUE(rel.Scan([&](const db::Tuple&) {
    ++total;
    return true;
  }).ok());
  EXPECT_EQ(total, 400u);
}

/// Every view-maintenance strategy must surface a failed block I/O as a
/// non-OK Status — both mid-OnTransaction and mid-Query — and stay usable
/// once the fault clears. One-shot read faults are armed after evicting the
/// buffer pool so the next operation is guaranteed to touch the device
/// before mutating anything.
class StrategyFaultInjectionTest : public ::testing::Test {
 protected:
  /// Expected Model 1 view contents per the fixture's oracle.
  std::map<db::Tuple, int64_t> ExpectedSp() const {
    std::map<db::Tuple, int64_t> out;
    for (const auto& [k, v] : db_.v_oracle_) {
      if (k < testing::ViewTestDb::kFCut) {
        out[db::Tuple({db::Value(k), db::Value(v)})] = 1;
      }
    }
    return out;
  }

  void Evict() { ASSERT_TRUE(db_.pool_.FlushAndEvictAll().ok()); }

  testing::ViewTestDb db_;
};

TEST_F(StrategyFaultInjectionTest, ImmediateSurfacesMidTransactionFault) {
  view::ImmediateStrategy s(db_.SpDef(), &db_.tracker_);
  ASSERT_TRUE(s.InitializeFromBase().ok());
  Evict();
  db_.disk_.InjectReadFault(0);
  const db::Transaction txn = db_.UpdateTxn(3, 777.0);
  EXPECT_FALSE(s.OnTransaction(txn).ok());
  // The fault fired on the very first descent read: nothing was applied,
  // so the same transaction replays cleanly.
  ASSERT_TRUE(s.OnTransaction(txn).ok());
  EXPECT_EQ(db_.QueryAll(&s), ExpectedSp());
}

TEST_F(StrategyFaultInjectionTest, ImmediateSurfacesMidQueryFault) {
  view::ImmediateStrategy s(db_.SpDef(), &db_.tracker_);
  ASSERT_TRUE(s.InitializeFromBase().ok());
  Evict();
  db_.disk_.InjectReadFault(0);
  EXPECT_FALSE(
      s.Query(0, 1 << 20, [](const db::Tuple&, int64_t) { return true; })
          .ok());
  EXPECT_EQ(db_.QueryAll(&s), ExpectedSp());
}

TEST_F(StrategyFaultInjectionTest, DeferredSurfacesMidTransactionFault) {
  view::DeferredStrategy s(db_.SpDef(), db_.WalAdOptions(), &db_.tracker_);
  ASSERT_TRUE(s.InitializeFromBase().ok());
  Evict();
  db_.disk_.InjectReadFault(0);
  const db::Transaction txn = db_.UpdateTxn(4, 444.0);
  EXPECT_FALSE(s.OnTransaction(txn).ok());
  // Error implies uncommitted: the oracle must not advance.
  db_.v_oracle_[4] = 4.0;
  EXPECT_EQ(db_.QueryAll(&s), ExpectedSp());
}

TEST_F(StrategyFaultInjectionTest, DeferredCrashSafeQueryRidesOutReadFault) {
  view::DeferredStrategy s(db_.SpDef(), db_.WalAdOptions(), &db_.tracker_);
  ASSERT_TRUE(s.InitializeFromBase().ok());
  ASSERT_TRUE(s.OnTransaction(db_.UpdateTxn(5, 555.0)).ok());
  Evict();
  // A transient fault during the read-only refresh prep aborts cleanly;
  // the crash-safe query's bounded retry then answers exactly.
  db_.disk_.InjectReadFault(1);
  EXPECT_EQ(db_.QueryAll(&s), ExpectedSp());
}

TEST_F(StrategyFaultInjectionTest, QmSurfacesMidTransactionFault) {
  view::QmSelectProjectStrategy s(db_.SpDef(), &db_.tracker_);
  Evict();
  db_.disk_.InjectReadFault(0);
  const db::Transaction txn = db_.UpdateTxn(6, 666.0);
  EXPECT_FALSE(s.OnTransaction(txn).ok());
  ASSERT_TRUE(s.OnTransaction(txn).ok());
  EXPECT_EQ(db_.QueryAll(&s), ExpectedSp());
}

TEST_F(StrategyFaultInjectionTest, QmSurfacesMidQueryFault) {
  view::QmSelectProjectStrategy s(db_.SpDef(), &db_.tracker_);
  Evict();
  db_.disk_.InjectReadFault(3);  // die a few pages into the scan
  EXPECT_FALSE(
      s.Query(0, 1 << 20, [](const db::Tuple&, int64_t) { return true; })
          .ok());
  EXPECT_EQ(db_.QueryAll(&s), ExpectedSp());
}

TEST_F(StrategyFaultInjectionTest, SnapshotSurfacesMidTransactionFault) {
  view::SnapshotStrategy s(db_.SpDef(), {}, &db_.tracker_);
  ASSERT_TRUE(s.InitializeFromBase().ok());
  Evict();
  db_.disk_.InjectReadFault(0);
  const db::Transaction txn = db_.UpdateTxn(7, 707.0);
  EXPECT_FALSE(s.OnTransaction(txn).ok());
  ASSERT_TRUE(s.OnTransaction(txn).ok());
  ASSERT_TRUE(s.RefreshNow().ok());  // fold the update into the snapshot
  EXPECT_EQ(db_.QueryAll(&s), ExpectedSp());
}

TEST_F(StrategyFaultInjectionTest, SnapshotSurfacesMidQueryFault) {
  view::SnapshotStrategy s(db_.SpDef(), {}, &db_.tracker_);
  ASSERT_TRUE(s.InitializeFromBase().ok());
  Evict();
  db_.disk_.InjectReadFault(0);
  EXPECT_FALSE(
      s.Query(0, 1 << 20, [](const db::Tuple&, int64_t) { return true; })
          .ok());
  EXPECT_EQ(db_.QueryAll(&s), ExpectedSp());
}

TEST_F(StrategyFaultInjectionTest, HybridSurfacesMidTransactionFault) {
  view::HybridStrategy s(db_.SpDef(), db_.AdOptions(), &db_.tracker_);
  ASSERT_TRUE(s.InitializeFromBase().ok());
  Evict();
  db_.disk_.InjectReadFault(0);
  const db::Transaction txn = db_.UpdateTxn(8, 808.0);
  EXPECT_FALSE(s.OnTransaction(txn).ok());
  ASSERT_TRUE(s.OnTransaction(txn).ok());
  EXPECT_EQ(db_.QueryAll(&s), ExpectedSp());
}

TEST_F(StrategyFaultInjectionTest, HybridSurfacesMidQueryFault) {
  view::HybridStrategy s(db_.SpDef(), db_.AdOptions(), &db_.tracker_);
  ASSERT_TRUE(s.InitializeFromBase().ok());
  Evict();
  db_.disk_.InjectReadFault(0);
  EXPECT_FALSE(
      s.Query(0, 1 << 20, [](const db::Tuple&, int64_t) { return true; })
          .ok());
  EXPECT_EQ(db_.QueryAll(&s), ExpectedSp());
}

}  // namespace
}  // namespace viewmat::storage
