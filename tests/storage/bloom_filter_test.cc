#include "storage/bloom_filter.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace viewmat::storage {
namespace {

TEST(BloomFilter, NoFalseNegativesEver) {
  BloomFilter filter(1024, 3);
  Random rng(1);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(rng.Next());
  for (const uint64_t k : keys) filter.Add(k);
  for (const uint64_t k : keys) {
    EXPECT_TRUE(filter.MayContain(k)) << k;
  }
}

TEST(BloomFilter, EmptyFilterRejectsEverything) {
  BloomFilter filter(512, 4);
  Random rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(filter.MayContain(rng.Next()));
  }
}

TEST(BloomFilter, ClearForgetsKeys) {
  BloomFilter filter(512, 4);
  filter.Add(42);
  EXPECT_TRUE(filter.MayContain(42));
  filter.Clear();
  EXPECT_FALSE(filter.MayContain(42));
  EXPECT_EQ(filter.keys_added(), 0u);
}

TEST(BloomFilter, SizingHitsTargetRate) {
  // The Severance-Lohman point: m can buy any screening power you want.
  const BloomFilter filter = BloomFilter::ForExpectedKeys(1000, 0.01);
  EXPECT_GT(filter.bits(), 9000u);   // ~9.6 bits/key for 1%
  EXPECT_LT(filter.bits(), 11000u);
  EXPECT_GE(filter.hashes(), 6);
  EXPECT_LE(filter.hashes(), 8);
}

/// Regression: k must be derived from the *actual* (ceiled, clamped) m,
/// not the ideal real-valued one. The drift showed at small n, where the
/// 64-bit floor makes the real filter much larger than the ideal sizing:
/// the old code kept the ideal k, leaving the extra bits unused.
TEST(BloomFilter, ForExpectedKeysDerivesHashCountFromActualSize) {
  // n=4, p=0.1: ideal m is ~19.2 bits, clamped to 64. k from the clamped
  // size is round(64/4 * ln 2) = 11; the ideal-m k would have been 3.
  const BloomFilter small = BloomFilter::ForExpectedKeys(4, 0.1);
  EXPECT_EQ(small.bits(), 64u);
  EXPECT_EQ(small.hashes(), 11);
}

TEST(BloomFilter, SizedFilterAnalyticalRateMatchesRequest) {
  // At exactly the sized load, the analytical rate must sit at (or below)
  // the requested rate — integer rounding of k costs at most a sliver.
  for (const double target : {0.1, 0.01, 0.001}) {
    for (const size_t n : {size_t{4}, size_t{50}, size_t{1000}}) {
      BloomFilter filter = BloomFilter::ForExpectedKeys(n, target);
      Random rng(7);
      for (size_t i = 0; i < n; ++i) filter.Add(rng.Next());
      EXPECT_LE(filter.ExpectedFpRate(), target * 1.05)
          << "n=" << n << " target=" << target;
    }
  }
}

TEST(BloomFilter, MeasuredFpRateNearAnalytical) {
  BloomFilter filter = BloomFilter::ForExpectedKeys(500, 0.02);
  Random rng(3);
  for (int i = 0; i < 500; ++i) filter.Add(rng.Next());
  const double predicted = filter.ExpectedFpRate();
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (filter.MayContain(rng.Next())) ++fp;
  }
  const double measured = static_cast<double>(fp) / probes;
  EXPECT_LT(measured, 2.5 * predicted + 0.005);
  EXPECT_LT(measured, 0.06);
}

TEST(BloomFilter, MoreBitsLowerFpRate) {
  Random rng(4);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 300; ++i) keys.push_back(rng.Next());
  auto measure = [&](size_t bits) {
    BloomFilter f(bits, 4);
    for (const uint64_t k : keys) f.Add(k);
    int fp = 0;
    Random probe_rng(5);
    for (int i = 0; i < 5000; ++i) {
      if (f.MayContain(probe_rng.Next())) ++fp;
    }
    return fp;
  };
  EXPECT_GT(measure(512), measure(8192));
}

class BloomRateTest : public ::testing::TestWithParam<double> {};

TEST_P(BloomRateTest, SizedFilterStaysNearTarget) {
  const double target = GetParam();
  BloomFilter filter = BloomFilter::ForExpectedKeys(1000, target);
  Random rng(6);
  for (int i = 0; i < 1000; ++i) filter.Add(rng.Next());
  int fp = 0;
  const int probes = 30000;
  for (int i = 0; i < probes; ++i) {
    if (filter.MayContain(rng.Next())) ++fp;
  }
  const double measured = static_cast<double>(fp) / probes;
  EXPECT_LT(measured, 3.0 * target + 0.003) << "target=" << target;
}

INSTANTIATE_TEST_SUITE_P(Targets, BloomRateTest,
                         ::testing::Values(0.1, 0.05, 0.01, 0.001));

}  // namespace
}  // namespace viewmat::storage
