#include "storage/bptree.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/random.h"

namespace viewmat::storage {
namespace {

/// Small pages force deep trees so splits and multi-level descent are
/// exercised with modest key counts.
class BPTreeTest : public ::testing::Test {
 protected:
  BPTreeTest() : disk_(256, &tracker_), pool_(&disk_, 64), tree_(&pool_, 8) {}

  std::vector<uint8_t> Payload(uint64_t tag) {
    std::vector<uint8_t> p(8);
    std::memcpy(p.data(), &tag, 8);
    return p;
  }
  static uint64_t TagOf(const uint8_t* payload) {
    uint64_t tag;
    std::memcpy(&tag, payload, 8);
    return tag;
  }
  BPTree::Matcher MatchTag(uint64_t tag) {
    return [tag](const uint8_t* p) { return TagOf(p) == tag; };
  }

  CostTracker tracker_;
  SimulatedDisk disk_;
  BufferPool pool_;
  BPTree tree_;
};

TEST_F(BPTreeTest, EmptyTreeFindsNothing) {
  uint8_t out[8];
  EXPECT_EQ(tree_.Find(1, out).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree_.entry_count(), 0u);
  EXPECT_EQ(tree_.Height(), 1u);
  EXPECT_TRUE(tree_.CheckInvariants().ok());
}

TEST_F(BPTreeTest, InsertFindRoundTrip) {
  ASSERT_TRUE(tree_.Insert(5, Payload(50).data()).ok());
  uint8_t out[8];
  ASSERT_TRUE(tree_.Find(5, out).ok());
  EXPECT_EQ(TagOf(out), 50u);
}

TEST_F(BPTreeTest, SequentialInsertGrowsHeight) {
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree_.Insert(i, Payload(i).data()).ok());
  }
  EXPECT_EQ(tree_.entry_count(), 2000u);
  EXPECT_GE(tree_.Height(), 3u);
  EXPECT_TRUE(tree_.CheckInvariants().ok());
  uint8_t out[8];
  for (int64_t i = 0; i < 2000; i += 97) {
    ASSERT_TRUE(tree_.Find(i, out).ok()) << i;
    EXPECT_EQ(TagOf(out), static_cast<uint64_t>(i));
  }
}

TEST_F(BPTreeTest, ReverseInsertStaysValid) {
  for (int64_t i = 1000; i > 0; --i) {
    ASSERT_TRUE(tree_.Insert(i, Payload(i).data()).ok());
  }
  EXPECT_TRUE(tree_.CheckInvariants().ok());
  uint8_t out[8];
  EXPECT_TRUE(tree_.Find(1, out).ok());
  EXPECT_TRUE(tree_.Find(1000, out).ok());
}

TEST_F(BPTreeTest, RangeScanInOrder) {
  Random rng(11);
  std::vector<int64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.UniformInt(0, 100000));
  for (const int64_t k : keys) {
    ASSERT_TRUE(tree_.Insert(k, Payload(k).data()).ok());
  }
  int64_t prev = -1;
  size_t count = 0;
  ASSERT_TRUE(tree_.RangeScan(0, 100000, [&](int64_t k, const uint8_t*) {
    EXPECT_GE(k, prev);
    prev = k;
    ++count;
    return true;
  }).ok());
  EXPECT_EQ(count, keys.size());
}

TEST_F(BPTreeTest, RangeScanRespectsBounds) {
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_.Insert(i, Payload(i).data()).ok());
  }
  std::vector<int64_t> seen;
  ASSERT_TRUE(tree_.RangeScan(10, 19, [&](int64_t k, const uint8_t*) {
    seen.push_back(k);
    return true;
  }).ok());
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.front(), 10);
  EXPECT_EQ(seen.back(), 19);
}

TEST_F(BPTreeTest, EmptyRangeAndEarlyStop) {
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree_.Insert(i, Payload(i).data()).ok());
  }
  int visits = 0;
  ASSERT_TRUE(tree_.RangeScan(60, 70, [&](int64_t, const uint8_t*) {
    ++visits;
    return true;
  }).ok());
  EXPECT_EQ(visits, 0);
  ASSERT_TRUE(tree_.RangeScan(20, 10, [&](int64_t, const uint8_t*) {
    ++visits;
    return true;
  }).ok());
  EXPECT_EQ(visits, 0);
  ASSERT_TRUE(tree_.ScanAll([&](int64_t, const uint8_t*) {
    return ++visits < 5;
  }).ok());
  EXPECT_EQ(visits, 5);
}

TEST_F(BPTreeTest, DuplicateKeysAllStored) {
  for (uint64_t tag = 0; tag < 100; ++tag) {
    ASSERT_TRUE(tree_.Insert(7, Payload(tag).data()).ok());
  }
  EXPECT_EQ(tree_.entry_count(), 100u);
  EXPECT_TRUE(tree_.CheckInvariants().ok());
  size_t found = 0;
  ASSERT_TRUE(tree_.RangeScan(7, 7, [&](int64_t, const uint8_t*) {
    ++found;
    return true;
  }).ok());
  EXPECT_EQ(found, 100u);
}

TEST_F(BPTreeTest, DuplicatesInterleavedWithOtherKeys) {
  // Duplicate runs crossing leaf boundaries must still be fully reachable
  // from a leftmost descent.
  for (int round = 0; round < 60; ++round) {
    ASSERT_TRUE(tree_.Insert(50, Payload(round).data()).ok());
    ASSERT_TRUE(tree_.Insert(round, Payload(1000 + round).data()).ok());
  }
  EXPECT_TRUE(tree_.CheckInvariants().ok());
  size_t dups = 0;
  ASSERT_TRUE(tree_.RangeScan(50, 50, [&](int64_t, const uint8_t* p) {
    if (TagOf(p) < 1000) ++dups;
    return true;
  }).ok());
  EXPECT_EQ(dups, 60u);
}

TEST_F(BPTreeTest, DeleteSpecificDuplicate) {
  for (uint64_t tag = 0; tag < 10; ++tag) {
    ASSERT_TRUE(tree_.Insert(3, Payload(tag).data()).ok());
  }
  ASSERT_TRUE(tree_.Delete(3, MatchTag(4)).ok());
  EXPECT_EQ(tree_.entry_count(), 9u);
  bool saw_4 = false;
  ASSERT_TRUE(tree_.RangeScan(3, 3, [&](int64_t, const uint8_t* p) {
    if (TagOf(p) == 4) saw_4 = true;
    return true;
  }).ok());
  EXPECT_FALSE(saw_4);
  EXPECT_EQ(tree_.Delete(3, MatchTag(4)).code(), StatusCode::kNotFound);
}

TEST_F(BPTreeTest, DeleteMissingKeyFails) {
  ASSERT_TRUE(tree_.Insert(1, Payload(1).data()).ok());
  EXPECT_EQ(tree_.Delete(2, nullptr).code(), StatusCode::kNotFound);
}

TEST_F(BPTreeTest, UpdatePayloadInPlace) {
  ASSERT_TRUE(tree_.Insert(9, Payload(1).data()).ok());
  ASSERT_TRUE(tree_.Insert(9, Payload(2).data()).ok());
  ASSERT_TRUE(tree_.UpdatePayload(9, MatchTag(2), Payload(22).data()).ok());
  size_t seen_22 = 0;
  ASSERT_TRUE(tree_.RangeScan(9, 9, [&](int64_t, const uint8_t* p) {
    if (TagOf(p) == 22) ++seen_22;
    return true;
  }).ok());
  EXPECT_EQ(seen_22, 1u);
  EXPECT_EQ(tree_.UpdatePayload(9, MatchTag(2), Payload(0).data()).code(),
            StatusCode::kNotFound);
}

TEST_F(BPTreeTest, NegativeKeysWork) {
  for (int64_t k = -500; k < 0; ++k) {
    ASSERT_TRUE(tree_.Insert(k, Payload(-k).data()).ok());
  }
  EXPECT_TRUE(tree_.CheckInvariants().ok());
  uint8_t out[8];
  ASSERT_TRUE(tree_.Find(-250, out).ok());
  EXPECT_EQ(TagOf(out), 250u);
}

TEST_F(BPTreeTest, BulkLoadBuildsPackedValidTree) {
  std::vector<std::pair<int64_t, uint64_t>> data;
  for (int64_t i = 0; i < 1500; ++i) data.emplace_back(i * 2, i);
  size_t next = 0;
  ASSERT_TRUE(tree_.BulkLoad([&](int64_t* key, uint8_t* payload) {
    if (next >= data.size()) return false;
    *key = data[next].first;
    std::memcpy(payload, &data[next].second, 8);
    ++next;
    return true;
  }).ok());
  EXPECT_EQ(tree_.entry_count(), 1500u);
  EXPECT_TRUE(tree_.CheckInvariants().ok());
  // Packed: leaf count equals ceil(n / capacity).
  const size_t expected_leaves =
      (1500 + tree_.leaf_capacity() - 1) / tree_.leaf_capacity();
  EXPECT_EQ(tree_.leaf_page_count(), expected_leaves);
  uint8_t out[8];
  ASSERT_TRUE(tree_.Find(2 * 977, out).ok());
  EXPECT_EQ(TagOf(out), 977u);
  EXPECT_EQ(tree_.Find(3, out).code(), StatusCode::kNotFound);
  // The tree remains fully updatable after a bulk load.
  ASSERT_TRUE(tree_.Insert(3, Payload(9999).data()).ok());
  ASSERT_TRUE(tree_.Delete(4, nullptr).ok());
  EXPECT_TRUE(tree_.CheckInvariants().ok());
}

TEST_F(BPTreeTest, BulkLoadRejectsUnsortedAndNonEmpty) {
  int calls = 0;
  auto bad_source = [&](int64_t* key, uint8_t* payload) {
    std::memset(payload, 0, 8);
    *key = (calls == 0) ? 10 : 5;  // descending: invalid
    return ++calls <= 2;
  };
  EXPECT_EQ(tree_.BulkLoad(bad_source).code(), StatusCode::kInvalidArgument);
  // Tree with entries refuses bulk load.
  CostTracker tracker;
  SimulatedDisk disk(256, &tracker);
  BufferPool pool(&disk, 64);
  BPTree other(&pool, 8);
  ASSERT_TRUE(other.Insert(1, Payload(1).data()).ok());
  int n = 0;
  EXPECT_EQ(other.BulkLoad([&](int64_t* k, uint8_t* p) {
    *k = n; std::memset(p, 0, 8);
    return ++n <= 1;
  }).code(), StatusCode::kFailedPrecondition);
}

TEST_F(BPTreeTest, BulkLoadEmptySourceLeavesEmptyTree) {
  ASSERT_TRUE(tree_.BulkLoad([](int64_t*, uint8_t*) { return false; }).ok());
  EXPECT_EQ(tree_.entry_count(), 0u);
  EXPECT_TRUE(tree_.CheckInvariants().ok());
}

TEST_F(BPTreeTest, BulkLoadWithDuplicates) {
  size_t next = 0;
  ASSERT_TRUE(tree_.BulkLoad([&](int64_t* key, uint8_t* payload) {
    if (next >= 300) return false;
    *key = static_cast<int64_t>(next / 10);  // 10 copies of each key
    std::memcpy(payload, &next, 8);
    ++next;
    return true;
  }).ok());
  EXPECT_TRUE(tree_.CheckInvariants().ok());
  size_t dups = 0;
  ASSERT_TRUE(tree_.RangeScan(7, 7, [&](int64_t, const uint8_t*) {
    ++dups;
    return true;
  }).ok());
  EXPECT_EQ(dups, 10u);
}

TEST_F(BPTreeTest, CompactReclaimsEmptyLeavesAndRepacks) {
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree_.Insert(i, Payload(i).data()).ok());
  }
  // Hollow out a big key range: lazy deletion leaves empty pages behind.
  for (int64_t i = 200; i < 1800; ++i) {
    ASSERT_TRUE(tree_.Delete(i, nullptr).ok());
  }
  const size_t leaves_before = tree_.leaf_page_count();
  const size_t disk_before = disk_.live_pages();
  ASSERT_TRUE(tree_.Compact().ok());
  EXPECT_TRUE(tree_.CheckInvariants().ok());
  EXPECT_EQ(tree_.entry_count(), 400u);
  EXPECT_LT(tree_.leaf_page_count(), leaves_before / 2);
  EXPECT_LT(disk_.live_pages(), disk_before);
  uint8_t out[8];
  ASSERT_TRUE(tree_.Find(100, out).ok());
  ASSERT_TRUE(tree_.Find(1900, out).ok());
  EXPECT_EQ(tree_.Find(1000, out).code(), StatusCode::kNotFound);
}

// Randomized model check: the tree must always agree with a std::multimap.
struct ChurnCase {
  uint64_t seed;
  int steps;
  int64_t key_space;
};

class BPTreeChurnTest : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(BPTreeChurnTest, MatchesReferenceMultimap) {
  const ChurnCase c = GetParam();
  CostTracker tracker;
  SimulatedDisk disk(256, &tracker);
  BufferPool pool(&disk, 64);
  BPTree tree(&pool, 8);
  Random rng(c.seed);
  std::multimap<int64_t, uint64_t> model;
  uint64_t next_tag = 0;

  for (int step = 0; step < c.steps; ++step) {
    const int64_t key = rng.UniformInt(0, c.key_space - 1);
    if (model.empty() || rng.Bernoulli(0.6)) {
      const uint64_t tag = next_tag++;
      uint8_t payload[8];
      std::memcpy(payload, &tag, 8);
      ASSERT_TRUE(tree.Insert(key, payload).ok());
      model.emplace(key, tag);
    } else {
      auto it = model.lower_bound(key);
      if (it == model.end()) it = model.begin();
      const int64_t del_key = it->first;
      const uint64_t del_tag = it->second;
      ASSERT_TRUE(tree.Delete(del_key, [del_tag](const uint8_t* p) {
        uint64_t t;
        std::memcpy(&t, p, 8);
        return t == del_tag;
      }).ok());
      model.erase(it);
    }
    if (step % 500 == 499) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "step " << step;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  ASSERT_EQ(tree.entry_count(), model.size());

  // Equal keys may come back in any order among themselves; compare as
  // order-insensitive multisets of (key, tag) pairs.
  std::vector<std::pair<int64_t, uint64_t>> scanned;
  ASSERT_TRUE(tree.ScanAll([&](int64_t k, const uint8_t* p) {
    uint64_t t;
    std::memcpy(&t, p, 8);
    scanned.emplace_back(k, t);
    return true;
  }).ok());
  std::vector<std::pair<int64_t, uint64_t>> expected(model.begin(),
                                                     model.end());
  std::sort(scanned.begin(), scanned.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(scanned, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Churn, BPTreeChurnTest,
    ::testing::Values(ChurnCase{1, 3000, 100},    // heavy duplicates
                      ChurnCase{2, 3000, 100000}, // mostly unique
                      ChurnCase{3, 5000, 1000},   // mixed
                      ChurnCase{4, 2000, 10}),    // extreme duplication
    [](const ::testing::TestParamInfo<ChurnCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "keys" +
             std::to_string(info.param.key_space);
    });

}  // namespace
}  // namespace viewmat::storage
