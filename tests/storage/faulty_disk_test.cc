#include "storage/faulty_disk.h"

#include <gtest/gtest.h>

#include "storage/cost_tracker.h"
#include "storage/disk.h"

namespace viewmat::storage {
namespace {

class FaultyDiskTest : public ::testing::Test {
 protected:
  FaultyDiskTest() : tracker_(1.0, 30.0, 1.0), inner_(256, &tracker_),
                     disk_(&inner_, /*seed=*/7) {}

  Page MakePage(uint8_t fill) {
    Page p(256);
    for (uint32_t i = 0; i < 256; ++i) p.data()[i] = fill;
    return p;
  }

  CostTracker tracker_;
  SimulatedDisk inner_;
  FaultyDisk disk_;
};

TEST_F(FaultyDiskTest, PassesThroughWhenHealthy) {
  const PageId id = disk_.Allocate();
  ASSERT_TRUE(disk_.Write(id, MakePage(0xab)).ok());
  Page out(256);
  ASSERT_TRUE(disk_.Read(id, &out).ok());
  EXPECT_EQ(out.data()[17], 0xab);
  EXPECT_EQ(disk_.faults_injected(), 0u);
  EXPECT_TRUE(disk_.Free(id).ok());
}

TEST_F(FaultyDiskTest, OneShotReadFaultFiresOnceAfterCountdown) {
  const PageId id = disk_.Allocate();
  ASSERT_TRUE(disk_.Write(id, MakePage(1)).ok());
  disk_.InjectReadFault(/*after=*/2);
  Page out(256);
  EXPECT_TRUE(disk_.Read(id, &out).ok());   // 1st success
  EXPECT_TRUE(disk_.Read(id, &out).ok());   // 2nd success
  EXPECT_FALSE(disk_.Read(id, &out).ok());  // injected
  EXPECT_TRUE(disk_.Read(id, &out).ok());   // trigger cleared
  EXPECT_EQ(disk_.faults_injected(), 1u);
}

TEST_F(FaultyDiskTest, OneShotWriteFaultFiresOnceAfterCountdown) {
  const PageId id = disk_.Allocate();
  disk_.InjectWriteFault(/*after=*/1);
  EXPECT_TRUE(disk_.Write(id, MakePage(1)).ok());
  EXPECT_FALSE(disk_.Write(id, MakePage(2)).ok());
  EXPECT_TRUE(disk_.Write(id, MakePage(3)).ok());
  EXPECT_EQ(disk_.faults_injected(), 1u);
}

TEST_F(FaultyDiskTest, FailedWriteWithoutTearingAppliesNothing) {
  const PageId id = disk_.Allocate();
  ASSERT_TRUE(disk_.Write(id, MakePage(0x11)).ok());
  disk_.InjectWriteFault(/*after=*/0);
  EXPECT_FALSE(disk_.Write(id, MakePage(0x22)).ok());
  Page out(256);
  ASSERT_TRUE(disk_.Read(id, &out).ok());
  EXPECT_EQ(out.data()[0], 0x11);
  EXPECT_EQ(out.data()[255], 0x11);
}

TEST_F(FaultyDiskTest, TornWriteAppliesStrictPrefix) {
  const PageId id = disk_.Allocate();
  ASSERT_TRUE(disk_.Write(id, MakePage(0x11)).ok());
  disk_.set_torn_writes(true);
  disk_.InjectWriteFault(/*after=*/0);
  EXPECT_FALSE(disk_.Write(id, MakePage(0x22)).ok());
  Page out(256);
  ASSERT_TRUE(disk_.Read(id, &out).ok());
  // A strict prefix of the new bytes landed: first byte new, last byte old.
  EXPECT_EQ(out.data()[0], 0x22);
  EXPECT_EQ(out.data()[255], 0x11);
}

TEST_F(FaultyDiskTest, ProbabilisticFaultsAreSeededAndBounded) {
  const PageId id = disk_.Allocate();
  ASSERT_TRUE(disk_.Write(id, MakePage(1)).ok());
  disk_.set_read_fault_rate(0.5);
  disk_.set_max_faults(3);
  Page out(256);
  uint64_t failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!disk_.Read(id, &out).ok()) ++failures;
  }
  EXPECT_EQ(failures, 3u);  // budget caps injection
  EXPECT_EQ(disk_.faults_injected(), 3u);

  // Same seed, same script => same outcome (deterministic).
  SimulatedDisk inner2(256, &tracker_);
  FaultyDisk disk2(&inner2, /*seed=*/7);
  const PageId id2 = disk2.Allocate();
  ASSERT_TRUE(disk2.Write(id2, MakePage(1)).ok());
  disk2.set_read_fault_rate(0.5);
  disk2.set_max_faults(3);
  uint64_t failures2 = 0;
  for (int i = 0; i < 200; ++i) {
    if (!disk2.Read(id2, &out).ok()) ++failures2;
  }
  EXPECT_EQ(failures2, failures);
}

TEST_F(FaultyDiskTest, ScriptedCrashFailsEverythingUntilRestart) {
  const PageId id = disk_.Allocate();
  ASSERT_TRUE(disk_.Write(id, MakePage(1)).ok());
  disk_.ScriptCrash(CrashPoint::kBeforeFold);
  EXPECT_TRUE(disk_.AtCrashPoint(CrashPoint::kBeforeViewPatch).ok());
  EXPECT_FALSE(disk_.AtCrashPoint(CrashPoint::kBeforeFold).ok());
  EXPECT_TRUE(disk_.crashed());
  EXPECT_EQ(disk_.crash_point(), CrashPoint::kBeforeFold);

  Page out(256);
  EXPECT_FALSE(disk_.Read(id, &out).ok());
  EXPECT_FALSE(disk_.Write(id, MakePage(2)).ok());
  EXPECT_FALSE(disk_.Free(id).ok());
  EXPECT_FALSE(disk_.AtCrashPoint(CrashPoint::kMidFold).ok());

  disk_.Restart();
  EXPECT_FALSE(disk_.crashed());
  ASSERT_TRUE(disk_.Read(id, &out).ok());
  EXPECT_EQ(out.data()[0], 1);
  // The scripted point is consumed: announcing it again is harmless.
  EXPECT_TRUE(disk_.AtCrashPoint(CrashPoint::kBeforeFold).ok());
  EXPECT_EQ(disk_.crashes(), 1u);
}

TEST_F(FaultyDiskTest, ScriptedCrashHonorsOccurrenceCount) {
  disk_.ScriptCrash(CrashPoint::kMidViewPatch, /*occurrence=*/3);
  EXPECT_TRUE(disk_.AtCrashPoint(CrashPoint::kMidViewPatch).ok());
  EXPECT_TRUE(disk_.AtCrashPoint(CrashPoint::kMidViewPatch).ok());
  EXPECT_FALSE(disk_.AtCrashPoint(CrashPoint::kMidViewPatch).ok());
  EXPECT_TRUE(disk_.crashed());
}

TEST_F(FaultyDiskTest, ClearFaultsDisarmsEverythingButKeepsCrashedState) {
  disk_.set_read_fault_rate(1.0);
  disk_.ScriptCrash(CrashPoint::kBeforeAdReset);
  EXPECT_FALSE(disk_.AtCrashPoint(CrashPoint::kBeforeAdReset).ok());
  disk_.ClearFaults();
  EXPECT_TRUE(disk_.crashed()) << "ClearFaults must not un-crash the device";
  disk_.Restart();
  const PageId id = disk_.Allocate();
  Page out(256);
  ASSERT_TRUE(disk_.Write(id, MakePage(9)).ok());
  EXPECT_TRUE(disk_.Read(id, &out).ok());
}

TEST_F(FaultyDiskTest, SharesTrackerAndPageAccountingWithInner) {
  EXPECT_EQ(disk_.tracker(), inner_.tracker());
  EXPECT_EQ(disk_.page_size(), inner_.page_size());
  const PageId id = disk_.Allocate();
  EXPECT_EQ(disk_.live_pages(), inner_.live_pages());
  EXPECT_TRUE(disk_.Free(id).ok());
}

}  // namespace
}  // namespace viewmat::storage
