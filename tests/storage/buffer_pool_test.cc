#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include "storage/faulty_disk.h"

namespace viewmat::storage {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  CostTracker tracker_;
  SimulatedDisk disk_{256, &tracker_};
  BufferPool pool_{&disk_, 4};
};

TEST_F(BufferPoolTest, NewPageIsPinnedAndWritable) {
  auto guard = pool_.NewPage();
  ASSERT_TRUE(guard.ok());
  guard->page().WriteAt<uint64_t>(0, 77);
  guard->MarkDirty();
  EXPECT_TRUE(guard->valid());
}

TEST_F(BufferPoolTest, FetchHitCostsNoIo) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard->id();
  }
  tracker_.Reset();
  {
    auto guard = pool_.Fetch(id);
    ASSERT_TRUE(guard.ok());
  }
  EXPECT_EQ(tracker_.counters().disk_reads, 0u);
}

TEST_F(BufferPoolTest, MissReadsFromDisk) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->page().WriteAt<uint64_t>(8, 123);
    guard->MarkDirty();
    id = guard->id();
  }
  ASSERT_TRUE(pool_.FlushAndEvictAll().ok());
  tracker_.Reset();
  auto guard = pool_.Fetch(id);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(tracker_.counters().disk_reads, 1u);
  EXPECT_EQ(guard->page().ReadAt<uint64_t>(8), 123u);
}

TEST_F(BufferPoolTest, DirtyEvictionWritesBack) {
  PageId first;
  {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->page().WriteAt<uint64_t>(0, 555);
    guard->MarkDirty();
    first = guard->id();
  }
  tracker_.Reset();
  // Fill the pool to force eviction of `first`.
  for (int i = 0; i < 4; ++i) {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
  }
  EXPECT_GE(tracker_.counters().disk_writes, 1u);
  // The evicted page's content survived.
  auto back = pool_.Fetch(first);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->page().ReadAt<uint64_t>(0), 555u);
}

TEST_F(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  PageId ids[3];
  for (int i = 0; i < 3; ++i) {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    ids[i] = guard->id();
  }
  // Touch ids[0] so ids[1] becomes LRU.
  { auto g = pool_.Fetch(ids[0]); ASSERT_TRUE(g.ok()); }
  // Two more new pages: evicts ids[1] first (then ids[2]).
  { auto g = pool_.NewPage(); ASSERT_TRUE(g.ok()); }
  { auto g = pool_.NewPage(); ASSERT_TRUE(g.ok()); }
  tracker_.Reset();
  { auto g = pool_.Fetch(ids[0]); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(tracker_.counters().disk_reads, 0u);  // still resident
  { auto g = pool_.Fetch(ids[1]); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(tracker_.counters().disk_reads, 1u);  // was evicted
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  std::vector<PageGuard> guards;
  for (int i = 0; i < 4; ++i) {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    guards.push_back(std::move(*guard));
  }
  auto fifth = pool_.NewPage();
  EXPECT_EQ(fifth.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BufferPoolTest, PinCountBlocksEviction) {
  auto pinned = pool_.NewPage();
  ASSERT_TRUE(pinned.ok());
  // Fill remaining frames; the pinned page must not be evicted.
  for (int i = 0; i < 6; ++i) {
    auto g = pool_.NewPage();
    ASSERT_TRUE(g.ok());
  }
  EXPECT_TRUE(pinned->valid());
  pinned->page().WriteAt<uint64_t>(0, 9);  // still safe to touch
}

TEST_F(BufferPoolTest, DeletePageRemovesFromPoolAndDisk) {
  PageId id;
  {
    auto guard = pool_.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard->id();
  }
  ASSERT_TRUE(pool_.DeletePage(id).ok());
  EXPECT_FALSE(pool_.Fetch(id).ok());
}

TEST_F(BufferPoolTest, DeletePinnedPageFails) {
  auto guard = pool_.NewPage();
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(pool_.DeletePage(guard->id()).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(BufferPoolTest, FlushAllWritesDirtyOnce) {
  auto guard = pool_.NewPage();
  ASSERT_TRUE(guard.ok());
  guard->MarkDirty();
  guard->Release();
  tracker_.Reset();
  ASSERT_TRUE(pool_.FlushAll().ok());
  EXPECT_EQ(tracker_.counters().disk_writes, 1u);
  tracker_.Reset();
  ASSERT_TRUE(pool_.FlushAll().ok());  // already clean
  EXPECT_EQ(tracker_.counters().disk_writes, 0u);
}

/// Regression: a failed dirty-eviction write-back used to orphan the
/// popped LRU victim — the frame stayed in_use but left every list, so
/// each failed flush permanently shrank the pool. Four failures against a
/// four-frame pool wedged it at kResourceExhausted with zero pins held.
TEST(BufferPoolFaultTest, FailedDirtyEvictionDoesNotLeakFrames) {
  CostTracker tracker;
  SimulatedDisk base(256, &tracker);
  FaultyDisk disk(&base, 1);
  BufferPool pool(&disk, 4);
  // Dirty every frame, all unpinned.
  for (uint64_t i = 0; i < 4; ++i) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->page().WriteAt<uint64_t>(0, i);
    guard->MarkDirty();
  }
  // Every NewPage now needs a dirty eviction; fail its write-back each
  // time — more times than the pool has frames.
  for (int i = 0; i < 8; ++i) {
    disk.InjectWriteFault(0);
    auto guard = pool.NewPage();
    ASSERT_FALSE(guard.ok());
    EXPECT_EQ(guard.status().code(), StatusCode::kInternal);
  }
  disk.ClearFaults();
  // With the device healthy again, the pool must still be able to turn
  // over its full capacity: no frame was lost to the failed flushes.
  for (int i = 0; i < 4; ++i) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok()) << "leaked a frame after failed eviction " << i;
  }
}

TEST_F(BufferPoolTest, MoveSemanticsTransferPin) {
  auto guard = pool_.NewPage();
  ASSERT_TRUE(guard.ok());
  PageGuard moved = std::move(*guard);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(guard->valid());
  moved.Release();
  EXPECT_FALSE(moved.valid());
}

}  // namespace
}  // namespace viewmat::storage
