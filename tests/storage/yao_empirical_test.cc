#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "costmodel/yao.h"
#include "db/relation.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"

namespace viewmat::storage {
namespace {

/// Cross-layer validation: the Yao function is the load-bearing quantity of
/// the whole cost model, so check it against the storage engine itself —
/// fetch k random records from a bulk-loaded (packed) B+-tree relation and
/// count the distinct leaf pages actually read. The measured count must
/// track y(n, m, k) closely.

class YaoEmpiricalTest : public ::testing::Test {
 protected:
  static constexpr int64_t kN = 5000;

  YaoEmpiricalTest()
      : disk_(4000, &tracker_),
        pool_(&disk_, 512),
        rel_(&pool_, "R",
             db::Schema({db::Field::Int64("k"), db::Field::String("pad", 92)}),
             db::AccessMethod::kClusteredBTree, 0) {
    int64_t next = 0;
    VIEWMAT_CHECK(rel_.BulkLoadSorted([&](db::Tuple* t) {
      if (next >= kN) return false;
      *t = db::Tuple({db::Value(next), db::Value(std::string("x"))});
      ++next;
      return true;
    }).ok());
    VIEWMAT_CHECK(pool_.FlushAndEvictAll().ok());
  }

  /// Reads `k` distinct random keys cold and returns leaf-page reads
  /// (total reads minus the k internal-descent reads; with a packed
  /// 5000-key tree at fanout ~100 the tree has height 2: one root read is
  /// cached after the first descent, so data reads ≈ total − 1 − ...; we
  /// measure distinct pages instead via a warm pool).
  uint64_t MeasureDistinctDataPages(int k, uint64_t seed) {
    VIEWMAT_CHECK(pool_.FlushAndEvictAll().ok());
    tracker_.Reset();
    Random rng(seed);
    std::set<int64_t> keys;
    while (static_cast<int>(keys.size()) < k) {
      keys.insert(rng.UniformInt(0, kN - 1));
    }
    db::Tuple out;
    for (const int64_t key : keys) {
      VIEWMAT_CHECK(rel_.FindByKey(key, &out).ok());
    }
    // With a 512-frame pool nothing is evicted during the run, so every
    // page is read at most once: reads = distinct pages touched (internal
    // + leaves). Subtract the internal pages (height-1 levels, ~root only
    // here plus a few) by measuring the tree's non-leaf page count via a
    // second, fully-warm pass.
    const uint64_t cold_reads = tracker_.counters().disk_reads;
    tracker_.Reset();
    for (const int64_t key : keys) {
      VIEWMAT_CHECK(rel_.FindByKey(key, &out).ok());
    }
    VIEWMAT_CHECK(tracker_.counters().disk_reads == 0);  // all warm now
    return cold_reads;
  }

  CostTracker tracker_;
  SimulatedDisk disk_;
  BufferPool pool_;
  db::Relation rel_;
};

TEST_F(YaoEmpiricalTest, DistinctPagesTrackYaoAcrossK) {
  // n = 5000 records, m = 5000/37 ≈ 136 packed leaves (100-byte records +
  // 8-byte keys on 4000-byte pages).
  const double tuples_per_leaf = std::floor(4000.0 / 108.0);
  const double m = std::ceil(kN / tuples_per_leaf);
  for (const int k : {5, 25, 100, 400, 1500}) {
    const double predicted = costmodel::YaoExact(kN, static_cast<int64_t>(m),
                                                 k);
    // Average over a few seeds to tame sampling noise.
    double measured = 0;
    const int kTrials = 3;
    for (uint64_t seed = 1; seed <= kTrials; ++seed) {
      // Cold reads include internal pages (root + ~2 level-1 nodes): allow
      // a small additive allowance.
      measured += static_cast<double>(MeasureDistinctDataPages(k, seed));
    }
    measured /= kTrials;
    const double internal_allowance = 4.0;
    EXPECT_NEAR(measured, predicted + internal_allowance,
                0.15 * predicted + internal_allowance)
        << "k=" << k << " predicted=" << predicted
        << " measured=" << measured;
  }
}

TEST_F(YaoEmpiricalTest, SubadditivityHoldsEmpirically) {
  // The §4 triangle inequality, measured: touching 200 random records in
  // one batch reads no more pages than two batches of 100 with a cache
  // drop in between.
  const uint64_t batch_200 = MeasureDistinctDataPages(200, 7);
  const uint64_t batch_100a = MeasureDistinctDataPages(100, 8);
  const uint64_t batch_100b = MeasureDistinctDataPages(100, 9);
  EXPECT_LE(batch_200, batch_100a + batch_100b);
}

}  // namespace
}  // namespace viewmat::storage
