#ifndef VIEWMAT_TESTS_TESTING_VIEW_FIXTURE_H_
#define VIEWMAT_TESTS_TESTING_VIEW_FIXTURE_H_

#include <map>
#include <memory>

#include "common/logging.h"
#include "db/catalog.h"
#include "db/predicate.h"
#include "db/relation.h"
#include "db/transaction.h"
#include "hr/ad_file.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "storage/faulty_disk.h"
#include "view/strategy.h"
#include "view/view_def.h"

namespace viewmat::testing {

/// Small shared database for view-strategy tests:
///   R  (k1, k2, v): 200 tuples, k1 = 0..199 unique, k2 = k1 % 20,
///                   v = k1 * 1.0; clustered B+-tree on k1.
///   R2 (key, w):    20 tuples, key = 0..19, w = key * 100.0;
///                   clustered hash on key.
/// View predicate: k1 < 60 (selectivity 0.3).
class ViewTestDb {
 public:
  static constexpr int64_t kN = 200;
  static constexpr int64_t kR2N = 20;
  static constexpr int64_t kFCut = 60;

  ViewTestDb()
      : tracker_(1.0, 30.0, 1.0),
        inner_(512, &tracker_),
        disk_(&inner_),
        pool_(&disk_, 128),
        catalog_(&pool_) {
    db::Schema base_schema({db::Field::Int64("k1"), db::Field::Int64("k2"),
                            db::Field::Double("v")});
    db::Schema r2_schema({db::Field::Int64("key"), db::Field::Double("w")});
    base_ = *catalog_.CreateRelation("R", base_schema,
                                     db::AccessMethod::kClusteredBTree, 0);
    r2_ = *catalog_.CreateRelation("R2", r2_schema,
                                   db::AccessMethod::kClusteredHash, 0);
    for (int64_t k = 0; k < kN; ++k) {
      VIEWMAT_CHECK(base_->Insert(BaseRow(k, k * 1.0)).ok());
      v_oracle_[k] = k * 1.0;
    }
    for (int64_t k = 0; k < kR2N; ++k) {
      VIEWMAT_CHECK(
          r2_->Insert(db::Tuple({db::Value(k), db::Value(k * 100.0)})).ok());
    }
  }

  db::Tuple BaseRow(int64_t k1, double v) const {
    return db::Tuple({db::Value(k1), db::Value(k1 % kR2N), db::Value(v)});
  }

  /// The Model 1 view: σ(k1 < 60) projected to (k1, v).
  view::SelectProjectDef SpDef() const {
    view::SelectProjectDef def;
    def.base = base_;
    def.predicate =
        db::Predicate::Compare(0, db::CompareOp::kLt, db::Value(kFCut));
    def.projection = {0, 2};
    def.view_key_field = 0;
    return def;
  }

  /// The Model 2 view: σ(k1 < 60)(R ⋈_{k2 = key} R2) -> (k1, v, key, w).
  view::JoinDef JDef() const {
    view::JoinDef def;
    def.r1 = base_;
    def.r2 = r2_;
    def.cf = db::Predicate::Compare(0, db::CompareOp::kLt, db::Value(kFCut));
    def.r1_join_field = 1;
    def.r1_projection = {0, 2};
    def.r2_projection = {0, 1};
    def.view_key_field = 0;
    return def;
  }

  view::AggregateDef AggDef(view::AggregateOp op) const {
    view::AggregateDef def;
    def.base = base_;
    def.predicate =
        db::Predicate::Compare(0, db::CompareOp::kLt, db::Value(kFCut));
    def.op = op;
    def.agg_field = 2;
    return def;
  }

  hr::AdFile::Options AdOptions() const {
    hr::AdFile::Options options;
    options.hash_buckets = 4;
    options.expected_keys = 512;
    return options;
  }

  /// AD options with the write-ahead log enabled (crash-safe deferred).
  hr::AdFile::Options WalAdOptions() const {
    hr::AdFile::Options options = AdOptions();
    options.enable_wal = true;
    return options;
  }

  /// One transaction setting v of `key` to `new_v`.
  db::Transaction UpdateTxn(int64_t key, double new_v) {
    db::Transaction txn;
    txn.Update(base_, BaseRow(key, v_oracle_[key]), BaseRow(key, new_v));
    v_oracle_[key] = new_v;
    return txn;
  }

  /// Collects a strategy's answer over the full key range as a counted
  /// multiset (QM emits duplicates as repeated count-1 values; fold them).
  std::map<db::Tuple, int64_t> QueryAll(view::ViewStrategy* strategy,
                                        int64_t lo = 0,
                                        int64_t hi = 1 << 20) {
    std::map<db::Tuple, int64_t> out;
    VIEWMAT_CHECK(strategy
                      ->Query(lo, hi,
                              [&](const db::Tuple& t, int64_t c) {
                                out[t] += c;
                                return true;
                              })
                      .ok());
    return out;
  }

  storage::CostTracker tracker_;
  storage::SimulatedDisk inner_;
  storage::FaultyDisk disk_;  ///< fault-free until a test arms it
  storage::BufferPool pool_;
  db::Catalog catalog_;
  db::Relation* base_ = nullptr;
  db::Relation* r2_ = nullptr;
  std::map<int64_t, double> v_oracle_;
};

}  // namespace viewmat::testing

#endif  // VIEWMAT_TESTS_TESTING_VIEW_FIXTURE_H_
