// Figure 8: Model 3 (aggregate view) average cost of an aggregate query vs
// l (tuples per update transaction) for deferred, immediate, and standard
// processing with a clustered index scan.

#include <cstdio>
#include <vector>

#include "common/parallel.h"
#include "costmodel/model3.h"
#include "sim/bench_report.h"
#include "sim/report.h"

using namespace viewmat;
using costmodel::Params;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_fig8_model3_cost_vs_l", cli.quick);
  sim::SeriesTable table;
  table.title =
      "Figure 8 — Model 3: avg cost (ms) of an aggregate query vs l "
      "(P=.5, f=.1)";
  table.x_label = "l";
  table.series_names = {"deferred", "immediate", "clustered-scan"};
  const std::vector<double> ls = {1.0,   2.0,   5.0,   10.0,  25.0,  50.0,
                                  100.0, 200.0, 400.0, 700.0, 1000.0};
  const auto rows = common::ParallelMap(
      cli.effective_jobs(), ls.size(), [&](size_t i) {
        Params p;
        p.l = ls[i];
        return std::vector<double>{costmodel::TotalDeferred3(p),
                                   costmodel::TotalImmediate3(p),
                                   costmodel::TotalRecompute3(p)};
      });
  for (size_t i = 0; i < rows.size(); ++i) table.AddRow(ls[i], rows[i]);
  std::printf("%s", table.ToString().c_str());
  report.AddTable(table);
  Params small;
  small.l = 25;
  char note[160];
  std::snprintf(note, sizeof(note),
                "maintenance cost as %% of recomputation at l=25: %.1f%% "
                "(immediate), %.1f%% (deferred)",
                100.0 * costmodel::TotalImmediate3(small) /
                    costmodel::TotalRecompute3(small),
                100.0 * costmodel::TotalDeferred3(small) /
                    costmodel::TotalRecompute3(small));
  std::printf(
      "\npaper's reading: for small l (< 100) maintaining the aggregate "
      "costs only a small percentage of recomputation — here %.1f%% "
      "(immediate) and %.1f%% (deferred) at l = 25.\n",
      100.0 * costmodel::TotalImmediate3(small) /
          costmodel::TotalRecompute3(small),
      100.0 * costmodel::TotalDeferred3(small) /
          costmodel::TotalRecompute3(small));
  report.AddNote("reading", note);
  return sim::FinishBenchMain(cli, &report);
}
