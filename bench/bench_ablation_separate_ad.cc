// §2.2.2 ablation: combined AD file vs separate A and D files. The paper
// argues the combined file updates a tuple in 3 I/Os (read tuple, read AD
// page, write AD page) where separate files need 5 (R read + A and D each
// read+written). We measure the combined path on the real implementation
// and print it next to both analytical figures.

#include <cstdio>

#include "db/catalog.h"
#include "hr/hypothetical_relation.h"
#include "sim/bench_report.h"
#include "sim/report.h"

using namespace viewmat;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_ablation_separate_ad", cli.quick);
  storage::CostTracker tracker(1.0, 30.0, 1.0);
  storage::SimulatedDisk disk(4000, &tracker);
  storage::BufferPool pool(&disk, 64);
  db::Schema schema({db::Field::Int64("key"), db::Field::Double("v"),
                     db::Field::String("pad", 84)});
  db::Relation base(&pool, "R", schema, db::AccessMethod::kClusteredBTree, 0);
  for (int64_t k = 0; k < 5000; ++k) {
    (void)base.Insert(db::Tuple(
        {db::Value(k), db::Value(1.0 * k), db::Value(std::string("x"))}));
  }
  hr::AdFile::Options options;
  options.hash_buckets = 4;
  options.expected_keys = 512;
  hr::HypotheticalRelation hr(&base, options);
  (void)pool.FlushAndEvictAll();
  tracker.Reset();

  const int kUpdates = cli.quick ? 50 : 200;
  for (int64_t i = 0; i < kUpdates; ++i) {
    const int64_t key = (i * 37) % 5000;
    // The paper's single-tuple update procedure.
    (void)hr.FindAllByKey(key, [](const db::Tuple&) { return false; });
    db::NetChange nc;
    nc.AddDelete(db::Tuple(
        {db::Value(key), db::Value(1.0 * key), db::Value(std::string("x"))}));
    nc.AddInsert(db::Tuple(
        {db::Value(key), db::Value(2.0 * key), db::Value(std::string("x"))}));
    (void)hr.RecordChanges(nc);
    (void)pool.FlushAndEvictAll();  // commit: every touched page persisted
  }
  const auto c = tracker.counters();
  const double ios_per_update =
      static_cast<double>(c.disk_ios()) / kUpdates;
  std::printf(
      "# Combined-vs-separate AD file (§2.2.2), single-tuple updates\n"
      "measured combined-AD path: %.2f I/Os per update "
      "(%llu reads, %llu writes over %d updates)\n"
      "paper's combined-file figure: 3 I/Os per update (+ descent)\n"
      "paper's separate-files figure: 5 I/Os per update (+ descent)\n"
      "plain base update (no HR):   2 I/Os per update (+ descent)\n",
      ios_per_update, static_cast<unsigned long long>(c.disk_reads),
      static_cast<unsigned long long>(c.disk_writes), kUpdates);
  std::printf(
      "\n(the measured figure includes the B+-tree descent the paper "
      "abstracts away; the marginal AD overhead is the +1 page write per "
      "touched AD page, matching the combined-file design)\n");
  char measured[160];
  std::snprintf(measured, sizeof(measured),
                "%.2f I/Os per update (%llu reads, %llu writes over %d "
                "updates); paper: 3 combined, 5 separate, 2 no-HR",
                ios_per_update,
                static_cast<unsigned long long>(c.disk_reads),
                static_cast<unsigned long long>(c.disk_writes), kUpdates);
  report.AddNote("measured_combined_ad_path", measured);
  return sim::FinishBenchMain(cli, &report);
}
