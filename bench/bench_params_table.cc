// Reproduces the two parameter tables of §3.1: symbol definitions and the
// standard default values every figure starts from.

#include <cstdio>

#include "costmodel/params.h"
#include "sim/bench_report.h"

using namespace viewmat;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_params_table", cli.quick);
  const costmodel::Params p;
  std::printf("=== Paper §3.1: standard parameter settings ===\n%s\n",
              p.ToString().c_str());
  char derived[128];
  std::snprintf(derived, sizeof(derived),
                "b=%.0f pages, T=%.0f tuples/page, "
                "u=%.0f tuples between queries, P=%.2f",
                p.b(), p.T(), p.u(), p.P());
  std::printf("\nderived defaults check: %s\n", derived);
  report.AddNote("params", p.ToString());
  report.AddNote("derived", derived);
  return sim::FinishBenchMain(cli, &report);
}
