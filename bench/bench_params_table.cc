// Reproduces the two parameter tables of §3.1: symbol definitions and the
// standard default values every figure starts from.

#include <cstdio>

#include "costmodel/params.h"

int main() {
  const viewmat::costmodel::Params p;
  std::printf("=== Paper §3.1: standard parameter settings ===\n%s\n",
              p.ToString().c_str());
  std::printf("\nderived defaults check: b=%.0f pages, T=%.0f tuples/page, "
              "u=%.0f tuples between queries, P=%.2f\n",
              p.b(), p.T(), p.u(), p.P());
  return 0;
}
