// Cross-validation: drive the discrete-event simulator over the real
// storage engine for all three models and print measured ms/query next to
// the analytical TOTAL_* predictions. Absolute agreement is not expected
// (the simulator charges real B+-tree descents and buffer-pool effects the
// closed forms abstract away); the winner ordering and rough magnitudes
// should hold. Pass --quick for a smaller N.

#include <cstdio>
#include <cstring>

#include "sim/simulator.h"

using namespace viewmat;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  costmodel::Params p;
  p.N = quick ? 4000 : 20000;
  p.k = quick ? 30 : 60;
  p.q = quick ? 30 : 60;
  p.l = 10;
  sim::SimOptions options;
  std::printf("# Simulator-vs-model validation (N=%.0f, k=%.0f, q=%.0f, "
              "l=%.0f)\n\n",
              p.N, p.k, p.q, p.l);
  auto m1 = sim::SimulateModel1(p, options);
  if (m1.ok()) std::printf("== Model 1 ==\n%s\n", m1->ToString().c_str());
  auto m2 = sim::SimulateModel2(p, options);
  if (m2.ok()) std::printf("== Model 2 ==\n%s\n", m2->ToString().c_str());
  auto m3 = sim::SimulateModel3(p, options);
  if (m3.ok()) std::printf("== Model 3 ==\n%s\n", m3->ToString().c_str());
  std::printf(
      "('adjusted' subtracts a no-view baseline run so the numbers are "
      "view-attributable, comparable to the analytical column)\n");
  return 0;
}
