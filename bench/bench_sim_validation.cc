// Cross-validation: drive the discrete-event simulator over the real
// storage engine for all three models and print measured ms/query next to
// the analytical TOTAL_* predictions. Absolute agreement is not expected
// (the simulator charges real B+-tree descents and buffer-pool effects the
// closed forms abstract away); the winner ordering and rough magnitudes
// should hold. Pass --quick for a smaller N.
//
// With --json this is the flagship observability report: every strategy
// run carries its component × phase attribution and an "explain the gap"
// breakdown of where the measured − analytical residual lives, the
// registry's labeled counters/histograms ride along, and the span trace of
// every run is embedded as a Chrome-trace document (extract with
// `jq .trace` and load in Perfetto).

#include <cstdio>

#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/bench_report.h"
#include "sim/simulator.h"

using namespace viewmat;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_sim_validation", cli.quick);
  costmodel::Params p;
  p.N = cli.quick ? 4000 : 20000;
  p.k = cli.quick ? 30 : 60;
  p.q = cli.quick ? 30 : 60;
  p.l = 10;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  sim::SimOptions options;
  options.tracer = &tracer;
  options.metrics = &metrics;
  // Bucket every strategy's cost stream into windows so the report carries
  // cost(view, component, phase, t) — a few dozen windows per run.
  options.timeline_window_ms = cli.quick ? 20000 : 50000;
  std::printf("# Simulator-vs-model validation (N=%.0f, k=%.0f, q=%.0f, "
              "l=%.0f)\n\n",
              p.N, p.k, p.q, p.l);
  auto m1 = sim::SimulateModel1(p, options);
  if (m1.ok()) {
    std::printf("== Model 1 ==\n%s\n", m1->ToString().c_str());
    report.AddSimResult(*m1);
  }
  auto m2 = sim::SimulateModel2(p, options);
  if (m2.ok()) {
    std::printf("== Model 2 ==\n%s\n", m2->ToString().c_str());
    report.AddSimResult(*m2);
  }
  auto m3 = sim::SimulateModel3(p, options);
  if (m3.ok()) {
    std::printf("== Model 3 ==\n%s\n", m3->ToString().c_str());
    report.AddSimResult(*m3);
  }
  std::printf(
      "('adjusted' subtracts a no-view baseline run so the numbers are "
      "view-attributable, comparable to the analytical column)\n");
  report.AddNote("reading",
                 "winner ordering and rough magnitudes match the closed "
                 "forms; explain_gap attributes the residual to B+-tree "
                 "descents and buffer-pool effects the model abstracts away");
  // Advisor explain reports: the analytical winner for this workload point,
  // every formula evaluated, and the distance to the nearest winner flip.
  for (int model = 1; model <= 3; ++model) {
    const obs::ExplainReport explain = obs::BuildExplain(model, p);
    std::printf("%s\n", obs::ExplainText(explain).c_str());
    report.AddExplain(explain);
  }
  report.set_metrics(&metrics);
  report.set_tracer(&tracer);
  return sim::FinishBenchMain(cli, &report);
}
