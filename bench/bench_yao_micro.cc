// Microbenchmark (google-benchmark): exact hypergeometric Yao vs the
// Cardenas approximation, plus an accuracy spot-table on Appendix B's
// n/m > 10 claim.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "costmodel/yao.h"

using namespace viewmat;

static void BM_YaoExact(benchmark::State& state) {
  const int64_t k = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(costmodel::YaoExact(100000, 2500, k));
  }
}
BENCHMARK(BM_YaoExact)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

static void BM_YaoApprox(benchmark::State& state) {
  const double k = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(costmodel::YaoApprox(100000.0, 2500.0, k));
  }
}
BENCHMARK(BM_YaoApprox)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

int main(int argc, char** argv) {
  std::printf("# Yao exact vs Cardenas approximation (Appendix B)\n");
  std::printf("%-10s %-10s %14s %14s %10s\n", "n/m", "k", "exact", "approx",
              "rel-err%");
  for (const int64_t m : {2500, 10000, 50000}) {
    for (const int64_t k : {10, 100, 1000, 10000}) {
      const double e = costmodel::YaoExact(100000, m, k);
      const double a = costmodel::YaoApprox(100000, m, k);
      std::printf("%-10lld %-10lld %14.3f %14.3f %9.3f%%\n",
                  static_cast<long long>(100000 / m),
                  static_cast<long long>(k), e, a,
                  e > 0 ? 100.0 * (a - e) / e : 0.0);
    }
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
