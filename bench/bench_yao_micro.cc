// Microbenchmark (google-benchmark): exact hypergeometric Yao vs the
// Cardenas approximation, plus an accuracy spot-table on Appendix B's
// n/m > 10 claim, plus the disabled-tracer overhead check: a null-tracer
// ScopedSpan wrapped around the approximation must cost nothing
// measurable.
//
// With --json the google-benchmark harness is bypassed (it owns argv and
// stdout) and a manual chrono timing loop produces the same ns/op figures
// for the machine-readable report.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "costmodel/yao.h"
#include "obs/trace.h"
#include "sim/bench_report.h"

using namespace viewmat;

static void BM_YaoExact(benchmark::State& state) {
  const int64_t k = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(costmodel::YaoExact(100000, 2500, k));
  }
}
BENCHMARK(BM_YaoExact)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

static void BM_YaoApprox(benchmark::State& state) {
  const double k = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(costmodel::YaoApprox(100000.0, 2500.0, k));
  }
}
BENCHMARK(BM_YaoApprox)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

// The acceptance check for the tracer's null sink: same body as
// BM_YaoApprox with a disabled-span constructor/destructor pair inside the
// loop. Compare against BM_YaoApprox — the delta is the per-span cost when
// tracing is off.
static void BM_YaoApproxNullSpan(benchmark::State& state) {
  const double k = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const obs::ScopedSpan span(nullptr, "yao");
    benchmark::DoNotOptimize(costmodel::YaoApprox(100000.0, 2500.0, k));
  }
}
BENCHMARK(BM_YaoApproxNullSpan)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

namespace {

/// Median-of-5 ns/op over repeated timed loops of `iters` calls.
template <typename Fn>
double NsPerOp(int iters, Fn fn) {
  std::vector<double> samples;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn(i);
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count() / iters);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// False-sharing micro-measurement: `threads` workers each hammer their
/// own counter slot. Packed slots share cache lines; padded slots
/// (alignas(64), one per line) do not. On multi-core hardware the packed
/// variant is several times slower from line bouncing — the measured gap
/// is why MetricsRegistry pads its shards to cache-line size. On a
/// single hardware thread the two converge (no cross-core traffic), and
/// the note reports whatever this machine actually measured.
double SharedCounterNsPerOp(bool padded, unsigned threads, int iters) {
  struct PackedSlot {
    std::atomic<uint64_t> v{0};
  };
  struct alignas(64) PaddedSlot {
    std::atomic<uint64_t> v{0};
  };
  std::vector<double> samples;
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<PackedSlot> packed_slots(threads);
    std::vector<PaddedSlot> padded_slots(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::atomic<uint64_t>& slot =
            padded ? padded_slots[t].v : packed_slots[t].v;
        for (int i = 0; i < iters; ++i) {
          slot.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        (static_cast<double>(threads) * iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  std::printf("# Yao exact vs Cardenas approximation (Appendix B)\n");
  std::printf("%-10s %-10s %14s %14s %10s\n", "n/m", "k", "exact", "approx",
              "rel-err%");
  sim::BenchReport report("bench_yao_micro", cli.quick);
  for (const int64_t m : {2500, 10000, 50000}) {
    sim::SeriesTable table;
    char title[80];
    std::snprintf(title, sizeof(title),
                  "Yao accuracy (Appendix B) — n/m = %lld",
                  static_cast<long long>(100000 / m));
    table.title = title;
    table.x_label = "k";
    table.series_names = {"exact", "approx", "rel-err%"};
    for (const int64_t k : {10, 100, 1000, 10000}) {
      const double e = costmodel::YaoExact(100000, m, k);
      const double a = costmodel::YaoApprox(100000, m, k);
      const double err = e > 0 ? 100.0 * (a - e) / e : 0.0;
      std::printf("%-10lld %-10lld %14.3f %14.3f %9.3f%%\n",
                  static_cast<long long>(100000 / m),
                  static_cast<long long>(k), e, a, err);
      table.AddRow(static_cast<double>(k), {e, a, err});
    }
    report.AddTable(table);
  }
  std::printf("\n");

  if (cli.want_json()) {
    // Manual timing: google-benchmark owns stdout and argv, so the JSON
    // path measures with a plain chrono loop instead.
    const int iters = cli.quick ? 20000 : 200000;
    const double approx_ns = NsPerOp(iters, [](int i) {
      benchmark::DoNotOptimize(
          costmodel::YaoApprox(100000.0, 2500.0, 10.0 + (i & 7)));
    });
    const double null_span_ns = NsPerOp(iters, [](int i) {
      const obs::ScopedSpan span(nullptr, "yao");
      benchmark::DoNotOptimize(
          costmodel::YaoApprox(100000.0, 2500.0, 10.0 + (i & 7)));
    });
    const double exact_ns = NsPerOp(cli.quick ? 200 : 2000, [](int i) {
      benchmark::DoNotOptimize(costmodel::YaoExact(100000, 2500, 1000 + i));
    });
    sim::SeriesTable timing;
    timing.title = "Microbenchmark timings (wall clock, median of 5)";
    timing.x_label = "row";
    timing.series_names = {"yao-approx-ns", "yao-approx-null-span-ns",
                           "yao-exact-k1000-ns"};
    timing.AddRow(0, {approx_ns, null_span_ns, exact_ns});
    report.AddTable(timing);
    char overhead[96];
    std::snprintf(overhead, sizeof(overhead), "%.2f ns/span (approx %.2f)",
                  null_span_ns - approx_ns, approx_ns);
    report.AddNote("null_span_overhead", overhead);
    std::printf("disabled-tracer span overhead: %s\n", overhead);

    // Per-thread counter slots, packed vs cache-line padded — the
    // measurement behind MetricsRegistry's alignas(64) shards. Wall-clock
    // ns on whatever this machine is, so it goes in the execution block,
    // not the gated notes.
    const unsigned fs_threads = 4;
    const int fs_iters = cli.quick ? 50000 : 500000;
    const double packed_ns =
        SharedCounterNsPerOp(/*padded=*/false, fs_threads, fs_iters);
    const double padded_ns =
        SharedCounterNsPerOp(/*padded=*/true, fs_threads, fs_iters);
    char fs_note[160];
    std::snprintf(fs_note, sizeof(fs_note),
                  "packed=%.2f padded=%.2f ns/inc at %u threads (x%.2f) — "
                  "why MetricsRegistry pads shards to 64B lines",
                  packed_ns, padded_ns, fs_threads,
                  padded_ns > 0 ? packed_ns / padded_ns : 1.0);
    report.AddExecutionNote("false_sharing", fs_note);
    std::printf("false sharing: %s\n", fs_note);
    return sim::FinishBenchMain(cli, &report);
  }

  // Strip the flags BenchCli consumed; google-benchmark rejects unknown
  // arguments.
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") continue;
    if (arg == "--json" && i + 1 < argc) {
      ++i;
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
