// Figure 1: Model 1 average cost per view query vs update probability P for
// deferred, immediate, QM-clustered and QM-unclustered (the paper omits
// sequential as off-scale; we print it for completeness).

#include <cstdio>
#include <vector>

#include "common/parallel.h"
#include "costmodel/model1.h"
#include "sim/bench_report.h"
#include "sim/report.h"

using namespace viewmat;
using costmodel::Params;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_fig1_model1_cost_vs_p", cli.quick);
  sim::SeriesTable table;
  table.title =
      "Figure 1 — Model 1: avg cost (ms) per view query vs P "
      "(defaults: N=100000, f=.1, f_v=.1, l=25)";
  table.x_label = "P";
  table.series_names = {"deferred", "immediate", "clustered", "unclustered",
                        "sequential"};
  const Params base;
  // Each P point depends only on its index; results collect in index
  // order, so the table is identical at any --jobs value.
  const auto rows = common::ParallelMap(
      cli.effective_jobs(), 19, [&](size_t i) {
        const Params p = base.WithUpdateProbability((i + 1) * 0.05);
        return std::vector<double>{costmodel::TotalDeferred1(p),
                                   costmodel::TotalImmediate1(p),
                                   costmodel::TotalClustered(p),
                                   costmodel::TotalUnclustered(p),
                                   costmodel::TotalSequential(p)};
      });
  for (size_t i = 0; i < rows.size(); ++i) {
    table.AddRow((i + 1) * 0.05, rows[i]);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper's reading: clustered QM is equal or superior throughout; "
      "deferred and immediate track each other closely; unclustered and\n"
      "sequential are far worse. Matches: deferred/immediate within ~25%% "
      "everywhere, clustered lowest for all P above ~0.1.\n");
  report.AddTable(table);
  report.AddNote("reading",
                 "clustered QM equal or superior throughout; "
                 "deferred/immediate within ~25% everywhere; unclustered and "
                 "sequential far worse");
  return sim::FinishBenchMain(cli, &report);
}
