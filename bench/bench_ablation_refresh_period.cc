// §4 ablation: when should a view be refreshed? The Yao function satisfies
// y(n, m, a+b) <= y(n, m, a) + y(n, m, b), so batching all pending work
// into one on-demand refresh touches no more pages than refreshing every j
// transactions. This bench sweeps the refresh period j between 1
// (immediate) and k/q (fully deferred) and prints the per-query view-patch
// I/O cost.

#include <cstdio>

#include "costmodel/model1.h"
#include "costmodel/yao.h"
#include "sim/bench_report.h"
#include "sim/report.h"

using namespace viewmat;
using costmodel::Params;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_ablation_refresh_period", cli.quick);
  // High update rate so the batching window is wide: P = .9 -> k/q = 9.
  const Params p = Params().WithUpdateProbability(0.9);
  const double txns_per_query = p.k / p.q;
  const double hvi = costmodel::ViewIndexHeight1(p);

  sim::SeriesTable table;
  table.title =
      "Refresh-period ablation (§4) — view-patch I/O (ms/query) vs refresh "
      "period j (transactions between refreshes), P=.9";
  table.x_label = "j";
  table.series_names = {"patch-cost", "refreshes/query"};
  for (double j = 1.0; j <= txns_per_query + 1e-9; j += 1.0) {
    const double refreshes_per_query = txns_per_query / j;
    const double pages =
        costmodel::Yao(p.f * p.N, p.f * p.b() / 2.0, 2.0 * p.f * j * p.l);
    const double cost = refreshes_per_query * p.C2 * (3.0 + hvi) * pages;
    table.AddRow(j, {cost, refreshes_per_query});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nmonotone decrease in j confirms §4: 'waiting as long as possible "
      "between refreshes uses the least system resources' (the triangle "
      "inequality for y).\n");
  report.AddTable(table);
  report.AddNote("reading",
                 "patch cost decreases monotonically in j; waiting as long "
                 "as possible between refreshes uses the least resources");
  return sim::FinishBenchMain(cli, &report);
}
