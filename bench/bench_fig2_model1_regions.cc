// Figure 2: Model 1 winner regions over (f, P) at f_v = .1. The paper finds
// immediate best at low P, clustered QM elsewhere, and deferred nowhere.

#include "region_common.h"

using namespace viewmat;
using namespace viewmat::bench;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_fig2_model1_regions", cli.quick);
  const costmodel::Params base;  // f_v = .1, C3 = 1
  const costmodel::RegionGrid grid = costmodel::ComputeRegions(
      Model1CostOrInf, Model1Candidates(), base, FAxis(),
      PAxis(), cli.effective_jobs());
  ReportGrid(&report, "fig2",
             "Figure 2 — Model 1 winner regions, f (log) vs P, f_v = .1",
             grid);
  std::printf(
      "paper's reading: immediate wins a low-P band, clustered wins the rest,"
      "\ndeferred never wins at C3 = 1. Larger f improves deferred relative\n"
      "to immediate without overtaking it.\n");
  report.AddNote("reading",
                 "immediate wins a low-P band, clustered the rest; deferred "
                 "never wins at C3 = 1");
  return sim::FinishBenchMain(cli, &report);
}
