// Chaos sweep for the sessioned wire protocol: fault profiles {clean,
// drop, duplicate, reorder, delay, partition, crash+partition} × all nine
// model×strategy combos × seeded runs, each run a full client/server
// simulation over the fault-injecting transport.
//
// The bench itself enforces the PR's core invariant before reporting
// anything: in EVERY cell the chaos oracle must come back clean — zero
// lost acked commits, zero duplicate applications, final state equal to a
// serial replay of the acked ledger, every acked query exact at its
// journal prefix, and every run live. Any violation exits nonzero.
//
// Everything in the tables is computed on the virtual clock, so the
// report is deterministic and gated by bench_diff against the committed
// BENCH_chaos.json; run fan-out across --jobs merges in run order, so any
// worker count produces byte-identical tables. Wall-clock observations
// live in the execution block — never gated, never compared across runs.

#include <cstdio>
#include <string>
#include <vector>

#include "net/chaos_oracle.h"
#include "sim/bench_report.h"

using namespace viewmat;

namespace {

struct Combo {
  sim::StrategyKind kind;
  int model;
};

/// The nine strategy×model combos the repo's oracles sweep: model 1
/// supports every maintenance strategy, model 2 (the join view) the three
/// the paper analyzes.
constexpr Combo kCombos[] = {
    {sim::StrategyKind::kQueryModification, 1},
    {sim::StrategyKind::kImmediate, 1},
    {sim::StrategyKind::kDeferred, 1},
    {sim::StrategyKind::kSnapshot, 1},
    {sim::StrategyKind::kRecomputeOnChange, 1},
    {sim::StrategyKind::kHybrid, 1},
    {sim::StrategyKind::kQueryModification, 2},
    {sim::StrategyKind::kImmediate, 2},
    {sim::StrategyKind::kDeferred, 2},
};

std::string ComboName(const Combo& combo) {
  return std::string(sim::StrategyKindName(combo.kind)) + "/m" +
         std::to_string(combo.model);
}

}  // namespace

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_chaos", cli.quick);

  // Full mode: 7 profiles × 9 combos × 4 runs = 252 chaos runs. Quick
  // keeps every profile (each exercises a distinct protocol path) but
  // trims the combo list and run count.
  const int runs_per_cell = cli.quick ? 2 : 4;
  const std::vector<Combo> combos =
      cli.quick ? std::vector<Combo>{{sim::StrategyKind::kImmediate, 1},
                                     {sim::StrategyKind::kDeferred, 1},
                                     {sim::StrategyKind::kDeferred, 2}}
                : std::vector<Combo>(std::begin(kCombos), std::end(kCombos));

  uint64_t total_runs = 0;
  uint64_t total_acked = 0;
  uint64_t total_retries = 0;
  uint64_t total_crashes = 0;
  bool all_clean = true;

  for (const sim::ChaosProfile profile : sim::kAllChaosProfiles) {
    const char* pname = sim::ChaosProfileName(profile);
    sim::SeriesTable table;
    table.title = std::string("chaos ") + pname;
    table.x_label = "combo";
    table.series_names = {"acked_commits", "acked_queries", "retries",
                          "redeliveries",  "crashes",       "recoveries",
                          "reconciled",    "violations"};

    for (size_t c = 0; c < combos.size(); ++c) {
      sim::ChaosOracleOptions options;
      options.profile = profile;
      options.kind = combos[c].kind;
      options.model = combos[c].model;
      options.seed = 20240 + static_cast<uint64_t>(c);
      options.runs = runs_per_cell;
      options.jobs = cli.jobs;
      const auto result = sim::RunChaosOracle(options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s %s failed: %s\n", pname,
                     ComboName(combos[c]).c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      const sim::ChaosOracleResult& r = *result;
      const uint64_t violations =
          r.liveness_failures + r.lost_commits + r.duplicate_applications +
          r.state_mismatches + r.replay_mismatches + r.query_mismatches +
          r.corrupt_runs;
      if (!r.Clean()) {
        all_clean = false;
        std::fprintf(stderr, "ORACLE VIOLATION %s %s: %s\n", pname,
                     ComboName(combos[c]).c_str(), r.ToString().c_str());
      }
      table.AddRow(static_cast<double>(c),
                   {static_cast<double>(r.acked_commits),
                    static_cast<double>(r.acked_queries),
                    static_cast<double>(r.client_retries),
                    static_cast<double>(r.redelivered_hits),
                    static_cast<double>(r.server_crashes),
                    static_cast<double>(r.server_recoveries),
                    static_cast<double>(r.journal_reconciled),
                    static_cast<double>(violations)});
      total_runs += r.runs;
      total_acked += r.acked_commits + r.acked_queries;
      total_retries += r.client_retries;
      total_crashes += r.server_crashes;
      std::printf("%-16s %-22s acked=%llu retries=%llu crashes=%llu %s\n",
                  pname, ComboName(combos[c]).c_str(),
                  static_cast<unsigned long long>(r.acked_commits +
                                                  r.acked_queries),
                  static_cast<unsigned long long>(r.client_retries),
                  static_cast<unsigned long long>(r.server_crashes),
                  r.Clean() ? "clean" : "VIOLATED");
    }
    report.AddTable(table);
  }

  if (!all_clean) {
    std::fprintf(stderr, "chaos oracle violated — refusing to report\n");
    return 1;
  }

  char note[256];
  std::snprintf(note, sizeof(note),
                "zero lost acked commits, zero duplicate applications, "
                "state == serial replay of the acked ledger, every acked "
                "query exact at its journal prefix — across %llu chaos runs "
                "(%llu acks, %llu retries, %llu server crashes)",
                static_cast<unsigned long long>(total_runs),
                static_cast<unsigned long long>(total_acked),
                static_cast<unsigned long long>(total_retries),
                static_cast<unsigned long long>(total_crashes));
  report.AddNote("chaos_oracle", note);
  std::printf("\nchaos oracle clean in every profile x combo cell "
              "(%llu runs)\n",
              static_cast<unsigned long long>(total_runs));
  return sim::FinishBenchMain(cli, &report);
}
