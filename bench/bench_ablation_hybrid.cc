// §3.3 ablation: the optimizer's choice between the materialized view and
// query modification, per query. We drive the HybridStrategy over
// workloads with varying query sizes and report which path it takes and
// the measured cost against always-QM and always-view (deferred) runs.
// Tuples are S = 100 bytes as in the paper, so the view's clustering
// advantage (smaller projected tuples) is real.

#include <cstdio>

#include "common/parallel.h"
#include "common/random.h"
#include "db/catalog.h"
#include "sim/bench_report.h"
#include "sim/report.h"
#include "view/deferred.h"
#include "view/hybrid.h"
#include "view/query_modification.h"

using namespace viewmat;

namespace {

struct Env {
  Env()
      : tracker(1.0, 30.0, 1.0),
        disk(4000, &tracker),
        pool(&disk, 256),
        catalog(&pool) {
    db::Schema schema({db::Field::Int64("k1"), db::Field::Int64("k2"),
                       db::Field::Double("v"),
                       db::Field::String("pad", 76)});  // S = 100 bytes
    base = *catalog.CreateRelation("R", schema,
                                   db::AccessMethod::kClusteredBTree, 0);
    vals.resize(4000);
    for (int64_t k = 0; k < 4000; ++k) {
      vals[k] = 1.0 * k;
      (void)base->Insert(Row(k));
    }
  }
  db::Tuple Row(int64_t k) const {
    return db::Tuple({db::Value(k), db::Value(k % 20), db::Value(vals[k]),
                      db::Value(std::string("x"))});
  }
  db::Transaction BumpTxn(int64_t key) {
    db::Transaction txn;
    const db::Tuple old_t = Row(key);
    vals[key] += 1.0;
    txn.Update(base, old_t, Row(key));
    return txn;
  }
  view::SelectProjectDef Def() const {
    view::SelectProjectDef def;
    def.base = base;
    def.predicate = db::Predicate::Compare(0, db::CompareOp::kLt,
                                           db::Value(int64_t{1200}));
    def.projection = {0, 2};  // (k1, v): 16 bytes — the S/2 projection
    def.view_key_field = 0;
    return def;
  }
  storage::CostTracker tracker;
  storage::SimulatedDisk disk;
  storage::BufferPool pool;
  db::Catalog catalog;
  db::Relation* base;
  std::vector<double> vals;
};

template <typename S>
double Drive(Env* env, S* strategy, int64_t query_span) {
  (void)env->pool.FlushAndEvictAll();
  env->tracker.Reset();
  Random rng(31);
  for (int round = 0; round < 30; ++round) {
    for (int u = 0; u < 3; ++u) {
      const db::Transaction txn = env->BumpTxn(rng.UniformInt(0, 3999));
      (void)strategy->OnTransaction(txn);
    }
    const int64_t lo = rng.UniformInt(0, 1199 - query_span);
    (void)strategy->Query(lo, lo + query_span - 1,
                          [](const db::Tuple&, int64_t) { return true; });
    (void)env->pool.FlushAndEvictAll();
  }
  return env->tracker.TotalMs() / 30.0;
}

}  // namespace

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_ablation_hybrid", cli.quick);
  sim::SeriesTable table;
  table.title =
      "Hybrid-optimizer ablation (§3.3) — measured ms/query vs query span, "
      "update-heavy workload (3 updates per query, S=100)";
  table.x_label = "span";
  table.series_names = {"always-qm", "always-view", "hybrid", "hybrid-qm%"};
  const std::vector<int64_t> spans =
      cli.quick ? std::vector<int64_t>{10, 800}
                : std::vector<int64_t>{1, 10, 50, 200, 800};
  // Each span builds three private Envs (tracker, disk, pool) and a
  // fixed-seed workload, so the spans run concurrently; rows append in
  // index order, identical at any --jobs value.
  const auto rows = common::ParallelMap(
      cli.effective_jobs(), spans.size(), [&](size_t i) {
        const int64_t span = spans[i];
        double qm_ms, view_ms, hybrid_ms, qm_share;
        {
          Env env;
          view::QmSelectProjectStrategy qm(env.Def(), &env.tracker);
          qm_ms = Drive(&env, &qm, span);
        }
        {
          Env env;
          view::DeferredStrategy view_only(env.Def(), hr::AdFile::Options{},
                                           &env.tracker);
          (void)view_only.InitializeFromBase();
          view_ms = Drive(&env, &view_only, span);
        }
        {
          Env env;
          view::HybridStrategy hybrid(env.Def(), hr::AdFile::Options{},
                                      &env.tracker);
          (void)hybrid.InitializeFromBase();
          hybrid_ms = Drive(&env, &hybrid, span);
          const double total = static_cast<double>(hybrid.qm_choices() +
                                                   hybrid.view_choices());
          qm_share = total > 0 ? 100.0 * hybrid.qm_choices() / total : 0.0;
        }
        return std::vector<double>{qm_ms, view_ms, hybrid_ms, qm_share};
      });
  for (size_t i = 0; i < rows.size(); ++i) {
    table.AddRow(static_cast<double>(spans[i]), rows[i]);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nsmall spans route to query modification (the EMP-DEPT regime); "
      "large spans route to the materialized copy and match the pure "
      "deferred cost exactly. The hybrid pays for carrying both machines — "
      "its HR upkeep shows at small spans, and the estimator misroutes the "
      "middle band — the realistic price of §3.3's optimizer sketch.\n");
  report.AddTable(table);
  report.AddNote("reading",
                 "small spans route to QM, large spans to the materialized "
                 "copy; the hybrid pays for carrying both machines");
  return sim::FinishBenchMain(cli, &report);
}
