// §3.5's EMP-DEPT special case: a large join view (f = 1) queried one
// tuple at a time (f_v = 1/N) with single-tuple updates (l = 1). The paper
// reports query modification superior for all P >= .08.

#include <cstdio>

#include "costmodel/crossover.h"
#include "costmodel/model2.h"
#include "sim/bench_report.h"
#include "sim/report.h"

using namespace viewmat;
using costmodel::Params;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_empdept_case", cli.quick);
  Params base;
  base.f = 1.0;
  base.l = 1.0;
  base.f_v = 1.0 / base.N;

  sim::SeriesTable table;
  table.title =
      "EMP-DEPT case (§3.5) — Model 2 with f=1, l=1, f_v=1/N: cost vs P";
  table.x_label = "P";
  table.series_names = {"deferred", "immediate", "loopjoin"};
  for (const double P : {0.01, 0.02, 0.05, 0.08, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    const Params p = base.WithUpdateProbability(P);
    table.AddRow(P, {costmodel::TotalDeferred2(p),
                     costmodel::TotalImmediate2(p),
                     costmodel::TotalLoopJoin(p)});
  }
  std::printf("%s", table.ToString().c_str());
  report.AddTable(table);

  auto cross_imm = costmodel::EqualCostP(
      [](const Params& at) { return costmodel::TotalImmediate2(at); },
      [](const Params& at) { return costmodel::TotalLoopJoin(at); }, base,
      0.0, 0.5);
  auto cross_def = costmodel::EqualCostP(
      [](const Params& at) { return costmodel::TotalDeferred2(at); },
      [](const Params& at) { return costmodel::TotalLoopJoin(at); }, base,
      0.0, 0.5);
  char note[128];
  std::snprintf(note, sizeof(note),
                "QM overtakes immediate at P=%.3f and deferred at P=%.3f "
                "(paper: for all P >= .08)",
                cross_imm.value_or(-1), cross_def.value_or(-1));
  std::printf(
      "\nquery modification overtakes immediate at P = %.3f and deferred at "
      "P = %.3f (paper: 'for all values of P >= .08').\n",
      cross_imm.value_or(-1), cross_def.value_or(-1));
  report.AddNote("crossovers", note);
  return sim::FinishBenchMain(cli, &report);
}
