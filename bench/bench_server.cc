// Concurrent view-server sweep: drives every model × strategy combination
// through multi-client schedules at a grid of client counts and update
// fractions, executed by the worker pool under two-phase t-lock interval
// locking. Reports per-cell throughput, conflict, and wait numbers, and
// runs the serializability oracle on every cell: the concurrent final
// state must equal the serial order of its committed transactions, with
// identical per-op outcomes at one worker and at --jobs workers. All of
// that is worker-count-independent by construction (seeded scheduler,
// sequence-ordered commit pipeline), so the report differs between --jobs
// settings only in the execution block — which is exactly what the
// determinism ctest entry checks. Physical lock stats (wall waits,
// blocked acquires) DO vary with the worker count and therefore live in
// the execution block, not the gated metrics.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "server/oracle.h"
#include "server/view_server.h"
#include "sim/bench_report.h"

using namespace viewmat;

namespace {

bool SupportsModel2(sim::StrategyKind kind) {
  return kind == sim::StrategyKind::kQueryModification ||
         kind == sim::StrategyKind::kImmediate ||
         kind == sim::StrategyKind::kDeferred;
}

/// Nearest-rank percentile over an unsorted sample (sorts a copy).
double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t rank = std::min(
      v.size() - 1, static_cast<size_t>(p / 100.0 * (v.size() - 1) + 0.5));
  return v[rank];
}

}  // namespace

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_server", cli.quick);
  const size_t workers = cli.effective_jobs();

  const std::vector<uint32_t> client_counts =
      cli.quick ? std::vector<uint32_t>{3} : std::vector<uint32_t>{2, 4, 8};
  const std::vector<double> update_fractions =
      cli.quick ? std::vector<double>{0.5} : std::vector<double>{0.25, 0.75};

  int cells = 0;
  server::LockManager::Stats physical;
  std::vector<double> lock_waits;
  std::vector<double> commit_waits;
  for (const int model : {1, 2}) {
    for (const sim::StrategyKind kind : sim::kAllStrategyKinds) {
      if (model == 2 && !SupportsModel2(kind)) continue;
      const std::string combo = "model" + std::to_string(model) + "." +
                                sim::StrategyKindName(kind);
      for (const double update_fraction : update_fractions) {
        sim::SeriesTable table;
        char title[128];
        std::snprintf(title, sizeof(title), "server %s uf=%.2f",
                      combo.c_str(), update_fraction);
        table.title = title;
        table.x_label = "clients";
        table.series_names = {"committed",     "aborted",
                              "queries_exact", "logical_conflicts",
                              "logical_wait_ms", "model_ms",
                              "throughput_tps"};
        for (const uint32_t clients : client_counts) {
          server::ViewServer::Options options;
          options.driver.kind = kind;
          options.driver.model = model;
          options.driver.params = sim::TortureParams(costmodel::Params());
          options.driver.seed = 17;
          options.schedule.clients = clients;
          options.schedule.ops_per_client = cli.quick ? 4 : 8;
          options.schedule.update_fraction = update_fraction;
          options.schedule.abort_fraction = 0.1;
          options.schedule.seed = 1000 + clients;
          options.workers = workers;

          auto run = [&]() -> StatusOr<server::ViewServer::Result> {
            VIEWMAT_ASSIGN_OR_RETURN(auto srv,
                                     server::ViewServer::Create(options));
            return srv->Run();
          }();
          if (!run.ok()) {
            std::fprintf(stderr, "%s clients=%u failed: %s\n", combo.c_str(),
                         clients, run.status().ToString().c_str());
            return 1;
          }
          // The oracle re-executes the cell serially and at the sweep's
          // worker count; any stale read, outcome divergence, or
          // non-serializable final state fails the bench.
          const Status oracle = server::CheckSerializability(
              options, {1, workers}, nullptr);
          if (!oracle.ok()) {
            std::fprintf(stderr, "%s clients=%u NOT serializable: %s\n",
                         combo.c_str(), clients,
                         oracle.ToString().c_str());
            return 1;
          }
          const server::ViewServer::Result& r = *run;
          table.AddRow(clients,
                       {static_cast<double>(r.committed),
                        static_cast<double>(r.aborted),
                        static_cast<double>(r.queries_exact),
                        static_cast<double>(r.logical_conflicts),
                        r.logical_wait_ms, r.model_ms, r.throughput_tps});
          physical.acquires += r.lock_stats.acquires;
          physical.blocked_acquires += r.lock_stats.blocked_acquires;
          physical.releases += r.lock_stats.releases;
          physical.wall_wait_ms += r.lock_stats.wall_wait_ms;
          for (const server::ViewServer::OpResult& op : r.ops) {
            lock_waits.push_back(op.physical_lock_wait_ms);
            commit_waits.push_back(op.physical_commit_wait_ms);
          }
          ++cells;
        }
        report.AddTable(table);
      }
      std::printf("%-30s serializable at every cell\n", combo.c_str());
    }
  }

  // The gated note must not mention the worker count — it is the one
  // input allowed to differ between the jobs-1 and jobs-8 runs the
  // determinism check byte-compares.
  char summary[160];
  std::snprintf(summary, sizeof(summary),
                "%d cells across 9 model-strategy combos; every cell "
                "serializable at one worker and at the sweep worker count",
                cells);
  std::printf("\n%s (workers=%zu)\n", summary, workers);
  report.AddNote("invariant", summary);
  // Wall waits and blocked counts depend on thread timing and worker
  // count — execution block only, never gated.
  char lock_note[160];
  std::snprintf(lock_note, sizeof(lock_note),
                "acquires=%llu blocked=%llu releases=%llu wall_wait_ms=%.3f",
                static_cast<unsigned long long>(physical.acquires),
                static_cast<unsigned long long>(physical.blocked_acquires),
                static_cast<unsigned long long>(physical.releases),
                physical.wall_wait_ms);
  report.AddExecutionNote("lock_stats", lock_note);
  // Per-op physical wait distributions across every cell. These are wall
  // times measured on whatever machine ran the sweep — tail shape is the
  // interesting part (a fat p99 on lock waits means stripes are hot; a fat
  // p99 on commit waits means retirement is the bottleneck).
  char wait_note[160];
  std::snprintf(wait_note, sizeof(wait_note),
                "p50=%.4f p95=%.4f p99=%.4f ms over %zu ops",
                Percentile(lock_waits, 50), Percentile(lock_waits, 95),
                Percentile(lock_waits, 99), lock_waits.size());
  report.AddExecutionNote("physical_lock_wait", wait_note);
  std::snprintf(wait_note, sizeof(wait_note),
                "p50=%.4f p95=%.4f p99=%.4f ms over %zu ops",
                Percentile(commit_waits, 50), Percentile(commit_waits, 95),
                Percentile(commit_waits, 99), commit_waits.size());
  report.AddExecutionNote("physical_commit_wait", wait_note);
  return sim::FinishBenchMain(cli, &report);
}
