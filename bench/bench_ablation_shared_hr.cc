// §4 ablation: refreshing several views from one hypothetical relation.
// "It may be worthwhile to refresh all the views whenever it is necessary
// to read the contents of the A and D sets ... since this would eliminate
// the need to read the hypothetical database again." We register V views
// over one base in a DeferredViewGroup, run a workload, and measure the AD
// read amortization against V independent refresh waves.

#include <cstdio>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "db/catalog.h"
#include "sim/bench_report.h"
#include "sim/report.h"
#include "view/view_group.h"

using namespace viewmat;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_ablation_shared_hr", cli.quick);
  sim::SeriesTable table;
  table.title =
      "Shared-HR ablation (§4) — AD-file reads per refresh wave vs number "
      "of views sharing the differential";
  table.x_label = "views";
  table.series_names = {"shared-ad-reads", "per-view-ad-reads(est)"};

  // Each view count gets its own engine stack; the per-iteration progress
  // line is captured into the task's result and printed in index order so
  // stdout stays deterministic at any --jobs value.
  const std::vector<int> v_counts = {1, 2, 4, 8};
  struct PointResult {
    std::vector<double> row;
    std::string line;
  };
  const auto points = common::ParallelMap(
      cli.effective_jobs(), v_counts.size(), [&](size_t idx) {
    const int v_count = v_counts[idx];
    storage::CostTracker tracker(1.0, 30.0, 1.0);
    storage::SimulatedDisk disk(4000, &tracker);
    storage::BufferPool pool(&disk, 128);
    db::Catalog catalog(&pool);
    db::Schema schema({db::Field::Int64("k1"), db::Field::Int64("k2"),
                       db::Field::Double("v")});
    db::Relation* base = *catalog.CreateRelation(
        "R", schema, db::AccessMethod::kClusteredBTree, 0);
    for (int64_t k = 0; k < 2000; ++k) {
      (void)base->Insert(
          db::Tuple({db::Value(k), db::Value(k % 20), db::Value(1.0 * k)}));
    }
    hr::AdFile::Options ad;
    ad.hash_buckets = 4;
    ad.expected_keys = 1024;
    view::DeferredViewGroup group(base, ad, &tracker);
    for (int i = 0; i < v_count; ++i) {
      view::SelectProjectDef def;
      def.base = base;
      def.predicate = db::Predicate::Between(0, i * 200, i * 200 + 399);
      def.projection = {0, 2};
      def.view_key_field = 0;
      (void)group.AddView(def);
    }
    // Accumulate a differential, then refresh once with a cold cache and
    // count the reads attributable to the shared AD scan.
    Random rng(7);
    std::map<int64_t, double> vals;
    for (int64_t k = 0; k < 2000; ++k) vals[k] = 1.0 * k;
    for (int t = 0; t < 20; ++t) {
      db::Transaction txn;
      for (int i = 0; i < 10; ++i) {
        const int64_t key = rng.UniformInt(0, 1999);
        const db::Tuple old_t = db::Tuple(
            {db::Value(key), db::Value(key % 20), db::Value(vals[key])});
        vals[key] = rng.NextDouble();
        const db::Tuple new_t = db::Tuple(
            {db::Value(key), db::Value(key % 20), db::Value(vals[key])});
        txn.Update(base, old_t, new_t);
      }
      (void)group.OnTransaction(txn);
    }
    const size_t ad_pages = group.pending_tuples() == 0
                                ? 0
                                : (group.pending_tuples() * 109) / 4000 + 1;
    (void)pool.FlushAndEvictAll();
    const auto before = tracker.counters();
    (void)group.RefreshAll();
    const auto delta = tracker.counters() - before;
    // The shared design reads the AD pages once; per-view refreshes would
    // read them once per member.
    PointResult result;
    result.row = {static_cast<double>(ad_pages),
                  static_cast<double>(ad_pages) * v_count};
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  [views=%d: refresh wave did %llu reads total, "
                  "~%zu of them AD pages read once instead of %d times]\n",
                  v_count, static_cast<unsigned long long>(delta.disk_reads),
                  ad_pages, v_count);
    result.line = line;
    return result;
  });
  for (size_t i = 0; i < points.size(); ++i) {
    table.AddRow(v_counts[i], points[i].row);
    std::printf("%s", points[i].line.c_str());
  }
  std::printf("\n%s", table.ToString().c_str());
  report.AddTable(table);
  report.AddNote("reading",
                 "the shared design reads the AD pages once per refresh "
                 "wave; per-view refreshes would read them once per member");
  return sim::FinishBenchMain(cli, &report);
}
