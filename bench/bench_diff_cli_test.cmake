# Runs bench_diff with ARGS and fails unless the exit code equals EXPECT.
# Drives the CLI-contract ctest entries in bench/CMakeLists.txt: malformed
# thresholds, a --threshold missing its value, and unreadable inputs must
# all be usage errors (exit 2), never silent fallbacks to a default gate.
separate_arguments(args NATIVE_COMMAND "${ARGS}")
execute_process(COMMAND "${BENCH_DIFF}" ${args}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL "${EXPECT}")
  message(FATAL_ERROR
          "bench_diff ${ARGS}: expected exit ${EXPECT}, got ${rc}")
endif()
