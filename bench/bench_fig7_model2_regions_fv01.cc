// Figure 7: Model 2 winner regions with f_v = .01 — smaller queries shift
// the balance back toward the nested-loops join.

#include "region_common.h"

using namespace viewmat;
using namespace viewmat::bench;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_fig7_model2_regions_fv01", cli.quick);
  costmodel::Params fv10;
  costmodel::Params fv01;
  fv01.f_v = 0.01;
  const auto grid10 = costmodel::ComputeRegions(
      Model2CostOrInf, Model2Candidates(), fv10, FAxis(),
      PAxis(), cli.effective_jobs());
  const auto grid01 = costmodel::ComputeRegions(
      Model2CostOrInf, Model2Candidates(), fv01, FAxis(),
      PAxis(), cli.effective_jobs());
  ReportGrid(&report, "fig7",
             "Figure 7 — Model 2 winner regions, f vs P, f_v = .01", grid01);
  char note[128];
  std::snprintf(note, sizeof(note),
                "loopjoin win share: %.1f%% at f_v=.1 -> %.1f%% at f_v=.01",
                100.0 * grid10.WinShare(costmodel::Strategy::kQmLoopJoin),
                100.0 * grid01.WinShare(costmodel::Strategy::kQmLoopJoin));
  std::printf(
      "%s (paper: 'as f_v is decreased, the advantage of query modification "
      "grows')\n",
      note);
  report.AddNote("loopjoin_win_share_shift", note);
  return sim::FinishBenchMain(cli, &report);
}
