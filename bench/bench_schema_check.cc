// Validator for the schema_version-3 bench reports every bench binary
// emits under --json. Checks structure (required keys, table row widths,
// counter fields, the execution block, timeline windows, explain reports)
// and the observability invariants: each strategy run's component × phase
// attribution cells must sum to its flat counters exactly, and when the
// run carries a cost timeline, the windows' totals must sum to the same
// flat counters (no charge escapes its window).
//
// Usage:
//   bench_schema_check <report.json> [...]       validate existing files
//   bench_schema_check --run <bench> <out.json>  run `<bench> --quick
//                                                --json <out.json>`, then
//                                                validate the output
//   bench_schema_check --determinism <bench> <out1.json> <out2.json>
//                                                run the bench at --jobs 1
//                                                and --jobs 8 and require
//                                                byte-identical reports
//                                                (minus the execution
//                                                block, the only part
//                                                allowed to differ)
//
// Exit code 0 = every report valid. Used by the bench-smoke and
// determinism ctest labels.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

using viewmat::common::JsonValue;
using viewmat::common::ParseJson;

namespace {

int g_errors = 0;

void Fail(const std::string& where, const std::string& what) {
  std::fprintf(stderr, "schema error at %s: %s\n", where.c_str(),
               what.c_str());
  ++g_errors;
}

const JsonValue* Require(const JsonValue& obj, const std::string& where,
                         const std::string& key, JsonValue::Type type) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    Fail(where, "missing key '" + key + "'");
    return nullptr;
  }
  if (v->type != type) {
    Fail(where + "." + key, "wrong type");
    return nullptr;
  }
  return v;
}

/// The five CostCounters fields, as stable column order.
const char* const kCounterFields[] = {"disk_reads", "disk_writes",
                                      "screen_tests", "tuple_cpu_ops",
                                      "ad_set_ops"};

bool ReadCounters(const JsonValue& obj, const std::string& where,
                  uint64_t out[5]) {
  bool ok = true;
  for (int i = 0; i < 5; ++i) {
    const JsonValue* v =
        Require(obj, where, kCounterFields[i], JsonValue::Type::kNumber);
    out[i] = v != nullptr ? static_cast<uint64_t>(v->number) : 0;
    ok = ok && v != nullptr;
  }
  return ok;
}

void CheckTable(const JsonValue& table, const std::string& where) {
  Require(table, where, "title", JsonValue::Type::kString);
  Require(table, where, "x_label", JsonValue::Type::kString);
  const JsonValue* series =
      Require(table, where, "series", JsonValue::Type::kArray);
  const JsonValue* rows = Require(table, where, "rows", JsonValue::Type::kArray);
  if (series == nullptr || rows == nullptr) return;
  for (size_t i = 0; i < rows->items.size(); ++i) {
    const std::string row_where = where + ".rows[" + std::to_string(i) + "]";
    Require(rows->items[i], row_where, "x", JsonValue::Type::kNumber);
    const JsonValue* values =
        Require(rows->items[i], row_where, "values", JsonValue::Type::kArray);
    if (values != nullptr && values->items.size() != series->items.size()) {
      Fail(row_where, "row has " + std::to_string(values->items.size()) +
                          " values for " +
                          std::to_string(series->items.size()) + " series");
    }
  }
}

void CheckRun(const JsonValue& run, const std::string& where) {
  Require(run, where, "name", JsonValue::Type::kString);
  Require(run, where, "queries", JsonValue::Type::kNumber);
  Require(run, where, "updates", JsonValue::Type::kNumber);
  Require(run, where, "measured_ms_per_query", JsonValue::Type::kNumber);
  Require(run, where, "adjusted_ms_per_query", JsonValue::Type::kNumber);
  Require(run, where, "analytical_ms_per_query", JsonValue::Type::kNumber);

  uint64_t flat[5] = {0, 0, 0, 0, 0};
  const JsonValue* counters =
      Require(run, where, "counters", JsonValue::Type::kObject);
  if (counters != nullptr) ReadCounters(*counters, where + ".counters", flat);

  // The invariant behind "fully attributed": the sparse cells must sum to
  // the flat counters exactly — every charge landed in exactly one cell.
  const JsonValue* attributed =
      Require(run, where, "attributed", JsonValue::Type::kArray);
  if (attributed != nullptr && counters != nullptr) {
    uint64_t sums[5] = {0, 0, 0, 0, 0};
    for (size_t i = 0; i < attributed->items.size(); ++i) {
      const std::string cell_where =
          where + ".attributed[" + std::to_string(i) + "]";
      const JsonValue& cell = attributed->items[i];
      Require(cell, cell_where, "component", JsonValue::Type::kString);
      Require(cell, cell_where, "phase", JsonValue::Type::kString);
      Require(cell, cell_where, "ms", JsonValue::Type::kNumber);
      const JsonValue* cc =
          Require(cell, cell_where, "counters", JsonValue::Type::kObject);
      if (cc != nullptr) {
        uint64_t v[5];
        ReadCounters(*cc, cell_where + ".counters", v);
        for (int f = 0; f < 5; ++f) sums[f] += v[f];
      }
    }
    for (int f = 0; f < 5; ++f) {
      if (sums[f] != flat[f]) {
        Fail(where + ".attributed",
             std::string(kCounterFields[f]) + " cells sum to " +
                 std::to_string(sums[f]) + " but flat counter is " +
                 std::to_string(flat[f]));
      }
    }
  }

  const JsonValue* gap =
      Require(run, where, "explain_gap", JsonValue::Type::kObject);
  if (gap != nullptr) {
    const std::string gap_where = where + ".explain_gap";
    Require(*gap, gap_where, "gap_ms_per_query", JsonValue::Type::kNumber);
    Require(*gap, gap_where, "adjusted_gap_ms_per_query",
            JsonValue::Type::kNumber);
    Require(*gap, gap_where, "component_ms_per_query",
            JsonValue::Type::kObject);
    Require(*gap, gap_where, "phase_ms_per_query", JsonValue::Type::kObject);
  }

  // Timeline (optional: present when the bench recorded one). The windows'
  // totals must sum to the run's flat counters — the same conservation law
  // as the attribution matrix, applied over time.
  const JsonValue* timeline = run.Find("timeline");
  if (timeline != nullptr && counters != nullptr) {
    const std::string tl_where = where + ".timeline";
    const JsonValue* window_ms =
        Require(*timeline, tl_where, "window_ms", JsonValue::Type::kNumber);
    if (window_ms != nullptr && window_ms->number <= 0) {
      Fail(tl_where + ".window_ms", "must be > 0");
    }
    const JsonValue* windows =
        Require(*timeline, tl_where, "windows", JsonValue::Type::kArray);
    if (windows != nullptr) {
      if (windows->items.empty()) Fail(tl_where + ".windows", "empty");
      uint64_t sums[5] = {0, 0, 0, 0, 0};
      double last_index = -1;
      for (size_t i = 0; i < windows->items.size(); ++i) {
        const std::string win_where =
            tl_where + ".windows[" + std::to_string(i) + "]";
        const JsonValue& win = windows->items[i];
        const JsonValue* index =
            Require(win, win_where, "index", JsonValue::Type::kNumber);
        if (index != nullptr) {
          if (index->number <= last_index) {
            Fail(win_where + ".index", "must be strictly ascending");
          }
          last_index = index->number;
        }
        Require(win, win_where, "begin_ms", JsonValue::Type::kNumber);
        Require(win, win_where, "end_ms", JsonValue::Type::kNumber);
        Require(win, win_where, "updates", JsonValue::Type::kNumber);
        Require(win, win_where, "queries", JsonValue::Type::kNumber);
        const JsonValue* totals =
            Require(win, win_where, "totals", JsonValue::Type::kObject);
        if (totals != nullptr) {
          uint64_t v[5];
          ReadCounters(*totals, win_where + ".totals", v);
          for (int f = 0; f < 5; ++f) sums[f] += v[f];
        }
        const JsonValue* cells =
            Require(win, win_where, "cells", JsonValue::Type::kArray);
        if (cells != nullptr && totals != nullptr) {
          uint64_t cell_sums[5] = {0, 0, 0, 0, 0};
          for (size_t c = 0; c < cells->items.size(); ++c) {
            const std::string cell_where =
                win_where + ".cells[" + std::to_string(c) + "]";
            const JsonValue& cell = cells->items[c];
            Require(cell, cell_where, "component", JsonValue::Type::kString);
            Require(cell, cell_where, "phase", JsonValue::Type::kString);
            Require(cell, cell_where, "ms", JsonValue::Type::kNumber);
            const JsonValue* cc = Require(cell, cell_where, "counters",
                                          JsonValue::Type::kObject);
            if (cc != nullptr) {
              uint64_t v[5];
              ReadCounters(*cc, cell_where + ".counters", v);
              for (int f = 0; f < 5; ++f) cell_sums[f] += v[f];
            }
          }
          uint64_t totals_v[5];
          ReadCounters(*totals, win_where + ".totals", totals_v);
          for (int f = 0; f < 5; ++f) {
            if (cell_sums[f] != totals_v[f]) {
              Fail(win_where + ".cells",
                   std::string(kCounterFields[f]) + " cells sum to " +
                       std::to_string(cell_sums[f]) + " but window total is " +
                       std::to_string(totals_v[f]));
            }
          }
        }
        const JsonValue* signals =
            Require(win, win_where, "signals", JsonValue::Type::kObject);
        if (signals != nullptr) {
          for (const char* key :
               {"update_fraction", "update_ms", "refresh_ms", "query_ms",
                "refresh_ms_per_update", "query_ms_per_query", "io_per_op",
                "ewma_update_ms", "ewma_query_ms", "p50_op_ms",
                "p95_op_ms"}) {
            Require(*signals, win_where + ".signals", key,
                    JsonValue::Type::kNumber);
          }
        }
      }
      for (int f = 0; f < 5; ++f) {
        if (sums[f] != flat[f]) {
          Fail(tl_where,
               std::string(kCounterFields[f]) + " windows sum to " +
                   std::to_string(sums[f]) + " but flat counter is " +
                   std::to_string(flat[f]));
        }
      }
    }
  }
}

void CheckExplain(const JsonValue& explain, const std::string& where) {
  const JsonValue* model =
      Require(explain, where, "model", JsonValue::Type::kNumber);
  if (model != nullptr && (model->number < 1 || model->number > 3)) {
    Fail(where + ".model", "must be 1, 2, or 3");
  }
  Require(explain, where, "params", JsonValue::Type::kObject);
  Require(explain, where, "winner", JsonValue::Type::kString);
  Require(explain, where, "winner_cost_ms", JsonValue::Type::kNumber);
  const JsonValue* candidates =
      Require(explain, where, "candidates", JsonValue::Type::kArray);
  if (candidates != nullptr) {
    if (candidates->items.empty()) Fail(where + ".candidates", "empty");
    double last_cost = -1;
    for (size_t i = 0; i < candidates->items.size(); ++i) {
      const std::string cand_where =
          where + ".candidates[" + std::to_string(i) + "]";
      const JsonValue& cand = candidates->items[i];
      Require(cand, cand_where, "strategy", JsonValue::Type::kString);
      Require(cand, cand_where, "margin_ms", JsonValue::Type::kNumber);
      Require(cand, cand_where, "formula", JsonValue::Type::kString);
      const JsonValue* cost =
          Require(cand, cand_where, "cost_ms", JsonValue::Type::kNumber);
      if (cost != nullptr) {
        if (cost->number < last_cost) {
          Fail(cand_where + ".cost_ms", "candidates must be ranked ascending");
        }
        last_cost = cost->number;
      }
    }
  }
  const JsonValue* boundaries =
      Require(explain, where, "boundaries", JsonValue::Type::kArray);
  if (boundaries != nullptr) {
    for (size_t i = 0; i < boundaries->items.size(); ++i) {
      const std::string b_where =
          where + ".boundaries[" + std::to_string(i) + "]";
      const JsonValue& b = boundaries->items[i];
      Require(b, b_where, "param", JsonValue::Type::kString);
      Require(b, b_where, "current", JsonValue::Type::kNumber);
      Require(b, b_where, "boundary", JsonValue::Type::kNumber);
      Require(b, b_where, "distance", JsonValue::Type::kNumber);
      Require(b, b_where, "relative_distance", JsonValue::Type::kNumber);
      Require(b, b_where, "challenger", JsonValue::Type::kString);
    }
  }
}

void CheckSimResult(const JsonValue& result, const std::string& where) {
  const JsonValue* model =
      Require(result, where, "model", JsonValue::Type::kNumber);
  if (model != nullptr && (model->number < 1 || model->number > 3)) {
    Fail(where + ".model", "must be 1, 2, or 3");
  }
  Require(result, where, "seed", JsonValue::Type::kNumber);
  Require(result, where, "buffer_pool_pages", JsonValue::Type::kNumber);
  Require(result, where, "cold_cache_between_ops", JsonValue::Type::kBool);
  Require(result, where, "baseline_ms_per_query", JsonValue::Type::kNumber);
  const JsonValue* params =
      Require(result, where, "params", JsonValue::Type::kObject);
  if (params != nullptr) {
    for (const char* key : {"N", "k", "l", "q", "f", "f_v", "C1", "C2", "C3",
                            "b", "T", "u", "P"}) {
      Require(*params, where + ".params", key, JsonValue::Type::kNumber);
    }
  }
  const JsonValue* runs = Require(result, where, "runs", JsonValue::Type::kArray);
  if (runs != nullptr) {
    if (runs->items.empty()) Fail(where + ".runs", "no strategy runs");
    for (size_t i = 0; i < runs->items.size(); ++i) {
      CheckRun(runs->items[i], where + ".runs[" + std::to_string(i) + "]");
    }
  }
}

void CheckReport(const JsonValue& root, const std::string& file) {
  const JsonValue* version =
      Require(root, file, "schema_version", JsonValue::Type::kNumber);
  if (version != nullptr && version->number != 3) {
    Fail(file + ".schema_version", "expected 3");
  }
  const JsonValue* bench =
      Require(root, file, "bench", JsonValue::Type::kString);
  Require(root, file, "quick", JsonValue::Type::kBool);
  const JsonValue* execution =
      Require(root, file, "execution", JsonValue::Type::kObject);
  if (execution != nullptr) {
    const std::string exec_where = file + ".execution";
    const JsonValue* jobs =
        Require(*execution, exec_where, "jobs", JsonValue::Type::kNumber);
    if (jobs != nullptr && jobs->number < 1) {
      Fail(exec_where + ".jobs", "must be >= 1");
    }
    Require(*execution, exec_where, "hardware_threads",
            JsonValue::Type::kNumber);
    const JsonValue* wall = Require(*execution, exec_where, "wall_seconds",
                                    JsonValue::Type::kNumber);
    if (wall != nullptr && wall->number < 0) {
      Fail(exec_where + ".wall_seconds", "must be >= 0");
    }
    // The scaling bench must publish its physical curves — worker list,
    // wall-clock per worker count, speedups, and the wait histograms — in
    // the execution block (they are machine-dependent, so nowhere else).
    if (bench != nullptr && bench->string_value == "bench_server_scaling") {
      for (const char* key :
           {"scaling_workers", "scaling_wall_ms", "scaling_speedup",
            "scaling_lock_wait_hist", "scaling_commit_wait_hist"}) {
        Require(*execution, exec_where, key, JsonValue::Type::kString);
      }
    }
  }
  const JsonValue* build =
      Require(root, file, "build", JsonValue::Type::kObject);
  if (build != nullptr) {
    Require(*build, file + ".build", "git_describe", JsonValue::Type::kString);
  }
  const JsonValue* notes = Require(root, file, "notes", JsonValue::Type::kObject);
  if (notes != nullptr) {
    for (const auto& [key, value] : notes->members) {
      if (!value.is_string()) Fail(file + ".notes." + key, "must be a string");
    }
    // The chaos bench must publish its oracle verdict: the note is the
    // report's proof that every profile×combo cell audited clean (the
    // bench exits nonzero otherwise, so a report missing it was produced
    // by something else).
    if (bench != nullptr && bench->string_value == "bench_chaos") {
      Require(*notes, file + ".notes", "chaos_oracle",
              JsonValue::Type::kString);
    }
  }
  const JsonValue* tables =
      Require(root, file, "tables", JsonValue::Type::kArray);
  if (tables != nullptr) {
    for (size_t i = 0; i < tables->items.size(); ++i) {
      CheckTable(tables->items[i], file + ".tables[" + std::to_string(i) + "]");
    }
  }
  const JsonValue* sims =
      Require(root, file, "sim_results", JsonValue::Type::kArray);
  if (sims != nullptr) {
    for (size_t i = 0; i < sims->items.size(); ++i) {
      CheckSimResult(sims->items[i],
                     file + ".sim_results[" + std::to_string(i) + "]");
    }
  }
  const JsonValue* explain = root.Find("explain");  // optional
  if (explain != nullptr) {
    if (!explain->is_array()) {
      Fail(file + ".explain", "must be an array");
    } else {
      for (size_t i = 0; i < explain->items.size(); ++i) {
        CheckExplain(explain->items[i],
                     file + ".explain[" + std::to_string(i) + "]");
      }
    }
  }
  const JsonValue* metrics = root.Find("metrics");  // optional
  if (metrics != nullptr) {
    Require(*metrics, file + ".metrics", "counters", JsonValue::Type::kArray);
    Require(*metrics, file + ".metrics", "histograms",
            JsonValue::Type::kArray);
  }
  const JsonValue* trace = root.Find("trace");  // optional
  if (trace != nullptr) {
    Require(*trace, file + ".trace", "traceEvents", JsonValue::Type::kArray);
    Require(*trace, file + ".trace", "displayTimeUnit",
            JsonValue::Type::kString);
  }
}

int CheckFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  auto parsed = ParseJson(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }
  const int before = g_errors;
  CheckReport(*parsed, path);
  if (g_errors != before) return 1;
  std::printf("%s: OK (schema_version 3)\n", path.c_str());
  return 0;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Removes the `"execution":{...}` member (and the comma binding it to its
/// neighbor) from a serialized report. Textual surgery is safe here: the
/// writer emits the block as one flat object with no nested braces or
/// embedded strings.
std::string StripExecutionBlock(std::string text) {
  const std::string key = "\"execution\":{";
  const size_t begin = text.find(key);
  if (begin == std::string::npos) return text;
  const size_t close = text.find('}', begin + key.size());
  if (close == std::string::npos) return text;
  size_t end = close + 1;
  size_t start = begin;
  if (start > 0 && text[start - 1] == ',') {
    --start;  // ",\"execution\":{...}"
  } else if (end < text.size() && text[end] == ',') {
    ++end;  // "\"execution\":{...},"
  }
  return text.erase(start, end - start);
}

int CheckDeterminism(const std::string& bench, const std::string& out1,
                     const std::string& out2) {
  const struct {
    const char* jobs;
    const std::string* path;
  } runs[] = {{"1", &out1}, {"8", &out2}};
  for (const auto& run : runs) {
    const std::string command = bench + " --quick --jobs " + run.jobs +
                                " --json " + *run.path;
    std::printf("$ %s\n", command.c_str());
    const int rc = std::system(command.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "bench exited with status %d\n", rc);
      return 1;
    }
  }
  if (CheckFile(out1) != 0 || CheckFile(out2) != 0) return 1;
  const std::string a = StripExecutionBlock(ReadFileOrDie(out1));
  const std::string b = StripExecutionBlock(ReadFileOrDie(out2));
  if (a != b) {
    std::fprintf(stderr,
                 "DETERMINISM FAILURE: %s differs between --jobs 1 and "
                 "--jobs 8 outside the execution block\n",
                 bench.c_str());
    size_t i = 0;
    while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
    std::fprintf(stderr, "first divergence at byte %zu\n", i);
    return 1;
  }
  std::printf("%s: byte-identical at --jobs 1 and --jobs 8\n", bench.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--run") {
    if (argc < 4) {
      std::fprintf(stderr,
                   "usage: bench_schema_check --run <bench> <out.json>\n");
      return 2;
    }
    const std::string command =
        std::string(argv[2]) + " --quick --json " + argv[3];
    std::printf("$ %s\n", command.c_str());
    const int rc = std::system(command.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "bench exited with status %d\n", rc);
      return 1;
    }
    return CheckFile(argv[3]);
  }
  if (argc >= 2 && std::string(argv[1]) == "--determinism") {
    if (argc < 5) {
      std::fprintf(stderr,
                   "usage: bench_schema_check --determinism <bench> "
                   "<out1.json> <out2.json>\n");
      return 2;
    }
    return CheckDeterminism(argv[2], argv[3], argv[4]);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: bench_schema_check <report.json> [...]\n"
                 "       bench_schema_check --run <bench> <out.json>\n"
                 "       bench_schema_check --determinism <bench> "
                 "<out1.json> <out2.json>\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) rc |= CheckFile(argv[i]);
  return rc;
}
