// Figure 3: same raster as Figure 2 with f_v lowered to .01 — query
// modification (clustered) wins over a larger area because maintenance
// overhead is independent of f_v while the query itself gets cheaper.

#include "region_common.h"

using namespace viewmat;
using namespace viewmat::bench;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_fig3_model1_regions_fv01", cli.quick);
  costmodel::Params fv10;  // reference: f_v = .1
  costmodel::Params fv01;
  fv01.f_v = 0.01;
  const auto grid10 = costmodel::ComputeRegions(
      Model1CostOrInf, Model1Candidates(), fv10, FAxis(),
      PAxis(), cli.effective_jobs());
  const auto grid01 = costmodel::ComputeRegions(
      Model1CostOrInf, Model1Candidates(), fv01, FAxis(),
      PAxis(), cli.effective_jobs());
  ReportGrid(&report, "fig3",
             "Figure 3 — Model 1 winner regions, f vs P, f_v = .01", grid01);
  char note[160];
  std::snprintf(note, sizeof(note),
                "clustered win share: %.1f%% at f_v=.1 -> %.1f%% at f_v=.01",
                100.0 * grid10.WinShare(costmodel::Strategy::kQmClustered),
                100.0 * grid01.WinShare(costmodel::Strategy::kQmClustered));
  std::printf(
      "%s (paper: 'clustered performs best over an even larger area')\n",
      note);
  report.AddNote("clustered_win_share_shift", note);
  return sim::FinishBenchMain(cli, &report);
}
