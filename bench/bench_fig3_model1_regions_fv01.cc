// Figure 3: same raster as Figure 2 with f_v lowered to .01 — query
// modification (clustered) wins over a larger area because maintenance
// overhead is independent of f_v while the query itself gets cheaper.

#include "region_common.h"

using namespace viewmat;
using namespace viewmat::bench;

int main() {
  costmodel::Params fv10;  // reference: f_v = .1
  costmodel::Params fv01;
  fv01.f_v = 0.01;
  const auto grid10 = costmodel::ComputeRegions(
      Model1CostOrInf, Model1Candidates(), fv10, FAxis(), PAxis());
  const auto grid01 = costmodel::ComputeRegions(
      Model1CostOrInf, Model1Candidates(), fv01, FAxis(), PAxis());
  PrintGrid("Figure 3 — Model 1 winner regions, f vs P, f_v = .01", grid01);
  std::printf(
      "clustered win share: %.1f%% at f_v=.1  ->  %.1f%% at f_v=.01 "
      "(paper: 'clustered performs best over an even larger area')\n",
      100.0 * grid10.WinShare(costmodel::Strategy::kQmClustered),
      100.0 * grid01.WinShare(costmodel::Strategy::kQmClustered));
  return 0;
}
