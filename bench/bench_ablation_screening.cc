// §1 ablation: the three update-screening schemes. For a stream of updated
// tuples with view selectivity f:
//   rule indexing  [Ston86]: C1 per *interval hit*  -> ~C1·f per tuple
//   substitute-all [Blak86]: C1 per tuple, always
//   RIU            [Bune79]: free when the command writes no view field;
//                            C1 per tuple otherwise
// We run the real UpdateScreen implementations over synthetic transaction
// streams and report measured C1 charges per 1000 updated tuples, sweeping
// f and the fraction of commands that are readily ignorable.

#include <cstdio>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "db/catalog.h"
#include "sim/bench_report.h"
#include "sim/report.h"
#include "view/screening_modes.h"

using namespace viewmat;

namespace {

db::Tuple Row(int64_t k1, int64_t k2, double v) {
  return db::Tuple({db::Value(k1), db::Value(k2), db::Value(v)});
}

}  // namespace

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_ablation_screening", cli.quick);
  db::Schema schema({db::Field::Int64("k1"), db::Field::Int64("k2"),
                     db::Field::Double("v")});
  constexpr int64_t kN = 10000;
  constexpr int kTuplesPerTxn = 25;
  const int kTxns = cli.quick ? 80 : 400;

  sim::SeriesTable table;
  table.title =
      "Screening ablation (§1) — C1 substitutions per 1000 updated tuples "
      "(50% of commands write only non-view fields)";
  table.x_label = "f";
  table.series_names = {"rule-index", "substitute-all", "riu"};

  // Each f point meters its three screening modes with its own private
  // CostTracker and a fixed workload seed; rows append in index order.
  const std::vector<double> fs = {0.01, 0.05, 0.1, 0.25, 0.5, 1.0};
  const auto rows = common::ParallelMap(
      cli.effective_jobs(), fs.size(), [&](size_t idx) {
        const double f = fs[idx];
        storage::CostTracker meter;  // counts C1 screen charges
        const int64_t cut = static_cast<int64_t>(f * kN);
        auto pred =
            db::Predicate::Compare(0, db::CompareOp::kLt, db::Value(cut));
        const std::set<size_t> reads = {0, 2};  // k1 (predicate+key), v
        std::vector<double> row;
        for (const view::ScreeningMode mode :
             {view::ScreeningMode::kRuleIndex,
              view::ScreeningMode::kSubstituteAll,
              view::ScreeningMode::kRiu}) {
          meter.Reset();
          view::UpdateScreen screen(mode, pred, 0, reads, &meter);
          Random rng(11);
          int64_t tuples = 0;
          for (int t = 0; t < kTxns; ++t) {
            // Half the commands touch only k2 (ignorable for this view).
            const bool ignorable_shape = rng.Bernoulli(0.5);
            db::NetChange nc;
            for (int i = 0; i < kTuplesPerTxn; ++i) {
              const int64_t key = rng.UniformInt(0, kN - 1);
              const db::Tuple old_t = Row(key, 1, 1.0);
              const db::Tuple new_t =
                  ignorable_shape ? Row(key, 2, 1.0) : Row(key, 1, 2.0);
              nc.AddDelete(old_t);
              nc.AddInsert(new_t);
            }
            tuples += 2 * kTuplesPerTxn;
            if (screen.TransactionIsIgnorable(nc)) continue;
            for (const db::Tuple& d : nc.deletes()) screen.Passes(d);
            for (const db::Tuple& a : nc.inserts()) screen.Passes(a);
          }
          row.push_back(1000.0 *
                        static_cast<double>(meter.counters().screen_tests) /
                        static_cast<double>(tuples));
        }
        return row;
      });
  for (size_t i = 0; i < rows.size(); ++i) table.AddRow(fs[i], rows[i]);
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nrule indexing's cost tracks f (only t-lock hits substitute); "
      "substitute-all is flat at 1000; RIU halves the bill whenever half "
      "the commands are compile-time ignorable, but pays full substitution "
      "on the rest — the paper's reason for preferring rule indexing.\n");
  report.AddTable(table);
  report.AddNote("reading",
                 "rule indexing tracks f, substitute-all is flat at 1000, "
                 "RIU halves the bill on compile-time-ignorable commands");
  return sim::FinishBenchMain(cli, &report);
}
