#ifndef VIEWMAT_BENCH_REGION_COMMON_H_
#define VIEWMAT_BENCH_REGION_COMMON_H_

// Shared helpers for the winner-region figures (2, 3, 4, 6, 7).

#include <cstdio>
#include <string>

#include "costmodel/regions.h"
#include "sim/bench_report.h"

namespace viewmat::bench {

// Candidate sets and evaluators come from the shared costmodel definitions
// (ModelCandidates / ModelCostFn) — the same ones the advisor and the
// explain reports rank, so the figures can never drift from them.

inline double Model1CostOrInf(costmodel::Strategy s,
                              const costmodel::Params& p) {
  static const costmodel::CostFn kCost = costmodel::ModelCostFn(1);
  return kCost(s, p);
}

inline double Model2CostOrInf(costmodel::Strategy s,
                              const costmodel::Params& p) {
  static const costmodel::CostFn kCost = costmodel::ModelCostFn(2);
  return kCost(s, p);
}

inline const std::vector<costmodel::Strategy>& Model1Candidates() {
  return costmodel::ModelCandidates(1);
}

inline const std::vector<costmodel::Strategy>& Model2Candidates() {
  return costmodel::ModelCandidates(2);
}

/// The f (log, .005..1) × P (linear, .01...97) raster the figures use.
inline costmodel::Axis FAxis() { return {0.005, 1.0, 40, true}; }
inline costmodel::Axis PAxis() { return {0.01, 0.97, 72, false}; }

/// "deferred=12.3% clustered=87.7%" — strategies with a zero share omitted.
inline std::string WinSharesString(const costmodel::RegionGrid& grid) {
  std::string out;
  char buf[64];
  for (const costmodel::Strategy s :
       {costmodel::Strategy::kDeferred, costmodel::Strategy::kImmediate,
        costmodel::Strategy::kQmClustered, costmodel::Strategy::kQmUnclustered,
        costmodel::Strategy::kQmSequential, costmodel::Strategy::kQmLoopJoin}) {
    const double share = grid.WinShare(s);
    if (share > 0.0) {
      std::snprintf(buf, sizeof(buf), "%s%s=%.1f%%", out.empty() ? "" : " ",
                    costmodel::StrategyName(s), 100.0 * share);
      out += buf;
    }
  }
  return out;
}

inline void PrintGrid(const char* title, const costmodel::RegionGrid& grid) {
  std::printf("# %s\n%s", title, grid.ToAscii().c_str());
  std::printf("win shares:");
  for (const costmodel::Strategy s :
       {costmodel::Strategy::kDeferred, costmodel::Strategy::kImmediate,
        costmodel::Strategy::kQmClustered, costmodel::Strategy::kQmUnclustered,
        costmodel::Strategy::kQmSequential, costmodel::Strategy::kQmLoopJoin}) {
    const double share = grid.WinShare(s);
    if (share > 0.0) {
      std::printf("  %s=%.1f%%", costmodel::StrategyName(s), 100.0 * share);
    }
  }
  std::printf("\n\n");
}

/// Prints the raster as before and records it in the JSON report: the
/// ASCII map and the win shares land under `<key>.grid` / `<key>.win_shares`
/// in the report's notes.
inline void ReportGrid(sim::BenchReport* report, const std::string& key,
                       const char* title, const costmodel::RegionGrid& grid) {
  PrintGrid(title, grid);
  report->AddNote(key + ".title", title);
  report->AddNote(key + ".grid", grid.ToAscii());
  report->AddNote(key + ".win_shares", WinSharesString(grid));
}

}  // namespace viewmat::bench

#endif  // VIEWMAT_BENCH_REGION_COMMON_H_
