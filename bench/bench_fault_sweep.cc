// Crash-safety torture sweep: drives the Model 1 and Model 2 workloads
// through EVERY maintenance strategy on a fault-injecting disk —
// transient read/write faults, torn writes, scripted protocol and
// disk-operation crashes — at increasing fault rates, and reports
// per-rate recovery/degradation counters. The RecoveryManager-committing
// strategies (query-modification, immediate, snapshot,
// recompute-on-change) exercise the unified redo WAL; deferred and
// hybrid exercise the journaled AD protocol. The acceptance bar is in
// the last two columns: zero corrupt and zero silently-stale runs at
// every rate for every strategy (every successful query is exact, the
// converged answer equals a from-scratch recompute, and the base holds
// exactly the committed state).

#include <cstdio>
#include <string>

#include "sim/bench_report.h"
#include "sim/fault_sweep.h"

using namespace viewmat;

namespace {

bool SupportsModel2(sim::StrategyKind kind) {
  return kind == sim::StrategyKind::kQueryModification ||
         kind == sim::StrategyKind::kImmediate ||
         kind == sim::StrategyKind::kDeferred;
}

}  // namespace

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_fault_sweep", cli.quick);
  int grand_runs = 0;
  for (const int model : {1, 2}) {
    for (const sim::StrategyKind kind : sim::kAllStrategyKinds) {
      if (model == 2 && !SupportsModel2(kind)) continue;
      sim::FaultSweepOptions options;
      options.strategy = kind;
      options.model = model;
      options.jobs = cli.effective_jobs();
      options.runs_per_rate = cli.quick ? 4 : 25;
      options.fault_rates = cli.quick
                                ? std::vector<double>{0.0, 0.03, 0.15}
                                : std::vector<double>{0.0, 0.01, 0.03, 0.08,
                                                      0.15};
      auto result = sim::SimulateFaultSweep(options);
      if (!result.ok()) {
        std::fprintf(stderr, "model %d %s sweep failed: %s\n", model,
                     sim::StrategyKindName(kind),
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "Crash-safety torture sweep — Model %d, %s, %d seeded runs per "
          "rate\n%s\n",
          model, sim::StrategyKindName(kind), options.runs_per_rate,
          result->ToString().c_str());
      const std::string key = "model" + std::to_string(model) + "." +
                              sim::StrategyKindName(kind);
      report.AddNote(key + ".table", result->ToString());
      // Numeric mirror of the text table so bench_diff can gate on it:
      // any per-rate outcome drift against the committed baseline (the
      // sweep is deterministic) surfaces as a compared-metric delta.
      sim::SeriesTable table;
      table.title = "fault-sweep " + key;
      table.x_label = "fault_rate";
      table.series_names = {"faults_injected", "crashes",    "recoveries",
                            "degraded_queries", "rejected_txns",
                            "failed_queries",   "corrupt_runs",
                            "silently_stale_runs"};
      for (const sim::FaultSweepCell& cell : result->cells) {
        table.AddRow(cell.fault_rate,
                     {static_cast<double>(cell.faults_injected),
                      static_cast<double>(cell.crashes),
                      static_cast<double>(cell.recoveries),
                      static_cast<double>(cell.degraded_queries),
                      static_cast<double>(cell.rejected_txns),
                      static_cast<double>(cell.failed_queries),
                      static_cast<double>(cell.corrupt_runs),
                      static_cast<double>(cell.silently_stale_runs)});
      }
      report.AddTable(table);
      char totals[128];
      std::snprintf(totals, sizeof(totals),
                    "runs=%d corrupt=%d silently_stale=%d", result->total_runs,
                    result->total_corrupt, result->total_silently_stale);
      report.AddNote(key + ".totals", totals);
      grand_runs += result->total_runs;
      if (result->total_corrupt != 0 || result->total_silently_stale != 0) {
        std::fprintf(stderr,
                     "FAILED (%s, model %d): %d corrupt, %d silently-stale "
                     "runs\n",
                     sim::StrategyKindName(kind), model, result->total_corrupt,
                     result->total_silently_stale);
        return 1;
      }
    }
  }
  std::printf(
      "\ninvariant held across %d runs and every strategy: every "
      "acknowledged answer exact, every run converged to the from-scratch "
      "recompute.\n",
      grand_runs);
  char summary[160];
  std::snprintf(summary, sizeof(summary),
                "%d runs across all strategies; every acknowledged answer "
                "exact; every run converged to the from-scratch recompute",
                grand_runs);
  report.AddNote("invariant", summary);
  return sim::FinishBenchMain(cli, &report);
}
