// Crash-safety torture sweep: drives the Model 1 and Model 2 workloads
// through the crash-safe deferred strategy on a fault-injecting disk —
// transient read/write faults, torn writes, scripted protocol crashes —
// at increasing fault rates, and reports per-rate recovery/degradation
// counters. The acceptance bar is in the last two columns: zero corrupt
// and zero silently-stale runs at every rate (every successful query is
// exact and the converged view equals a from-scratch recompute).

#include <cstdio>
#include <string>

#include "sim/bench_report.h"
#include "sim/fault_sweep.h"

using namespace viewmat;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_fault_sweep", cli.quick);
  for (const int model : {1, 2}) {
    sim::FaultSweepOptions options;
    options.model = model;
    options.jobs = cli.effective_jobs();
    options.runs_per_rate = cli.quick ? 4 : 25;
    options.fault_rates = cli.quick
                              ? std::vector<double>{0.0, 0.03, 0.15}
                              : std::vector<double>{0.0, 0.01, 0.03, 0.08,
                                                    0.15};
    auto result = sim::SimulateFaultSweep(options);
    if (!result.ok()) {
      std::fprintf(stderr, "model %d sweep failed: %s\n", model,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "Crash-safety torture sweep — Model %d, %d seeded runs per rate\n%s\n",
        model, options.runs_per_rate, result->ToString().c_str());
    const std::string key = "model" + std::to_string(model);
    report.AddNote(key + ".table", result->ToString());
    char totals[128];
    std::snprintf(totals, sizeof(totals),
                  "runs=%d corrupt=%d silently_stale=%d", result->total_runs,
                  result->total_corrupt, result->total_silently_stale);
    report.AddNote(key + ".totals", totals);
    if (result->total_corrupt != 0 || result->total_silently_stale != 0) {
      std::fprintf(stderr, "FAILED: %d corrupt, %d silently-stale runs\n",
                   result->total_corrupt, result->total_silently_stale);
      return 1;
    }
  }
  std::printf(
      "\ninvariant held: every acknowledged answer exact, every run "
      "converged to the from-scratch recompute.\n");
  report.AddNote("invariant",
                 "every acknowledged answer exact; every run converged to "
                 "the from-scratch recompute");
  return sim::FinishBenchMain(cli, &report);
}
