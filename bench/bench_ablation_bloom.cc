// §2.2.2 ablation: the Severance-Lohman Bloom screen. "One can design a
// Bloom filter with any desired ability to screen out accesses ... by
// increasing m." We sweep the filter size for a fixed 2u-entry AD file and
// measure the false-drop rate and the implied wasted probe I/O per 1000
// reads of clean keys.

#include <cstdio>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "sim/bench_report.h"
#include "sim/report.h"
#include "storage/bloom_filter.h"

using namespace viewmat;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_ablation_bloom", cli.quick);
  constexpr int kAdKeys = 50;  // 2u at the paper's defaults
  const int kProbes = cli.quick ? 20000 : 200000;
  sim::SeriesTable table;
  table.title =
      "Bloom screen ablation (§2.2.2) — false drops vs filter size m, "
      "AD file holding 50 keys";
  table.x_label = "m-bits";
  table.series_names = {"bits/key", "predicted-fp%", "measured-fp%",
                        "wasted-ms/1000-reads"};
  Random key_rng(404);
  std::vector<uint64_t> keys;
  for (int i = 0; i < kAdKeys; ++i) keys.push_back(key_rng.Next());
  // Each filter size builds and probes its own filter with a fixed probe
  // seed, so the sizes run concurrently and rows append in index order.
  const std::vector<size_t> sizes = {64, 128, 256, 512, 1024, 2048, 4096};
  const auto rows = common::ParallelMap(
      cli.effective_jobs(), sizes.size(), [&](size_t idx) {
        const size_t bits = sizes[idx];
        // Hash count tuned to the load factor, as ForExpectedKeys would pick.
        const int hashes = std::max(
            1, static_cast<int>(0.693 * static_cast<double>(bits) / kAdKeys));
        storage::BloomFilter filter(bits, hashes);
        for (const uint64_t k : keys) filter.Add(k);
        Random probe_rng(505);
        int fp = 0;
        for (int i = 0; i < kProbes; ++i) {
          if (filter.MayContain(probe_rng.Next())) ++fp;
        }
        const double measured = static_cast<double>(fp) / kProbes;
        // Each false drop wastes one 30 ms AD probe.
        return std::vector<double>{static_cast<double>(bits) / kAdKeys,
                                   100.0 * filter.ExpectedFpRate(),
                                   100.0 * measured,
                                   measured * 1000.0 * 30.0};
      });
  for (size_t i = 0; i < rows.size(); ++i) {
    table.AddRow(static_cast<double>(sizes[i]), rows[i]);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\n~10 bits/key already pushes false drops below 1%%, supporting the "
      "paper's 'count only one I/O' simplification for HR reads.\n");
  report.AddTable(table);
  report.AddNote("reading",
                 "~10 bits/key pushes false drops below 1%, supporting the "
                 "paper's count-only-one-I/O simplification for HR reads");
  return sim::FinishBenchMain(cli, &report);
}
