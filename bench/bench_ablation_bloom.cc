// §2.2.2 ablation: the Severance-Lohman Bloom screen. "One can design a
// Bloom filter with any desired ability to screen out accesses ... by
// increasing m." We sweep the filter size for a fixed 2u-entry AD file and
// measure the false-drop rate and the implied wasted probe I/O per 1000
// reads of clean keys.

#include <cstdio>

#include "common/random.h"
#include "sim/bench_report.h"
#include "sim/report.h"
#include "storage/bloom_filter.h"

using namespace viewmat;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_ablation_bloom", cli.quick);
  constexpr int kAdKeys = 50;  // 2u at the paper's defaults
  const int kProbes = cli.quick ? 20000 : 200000;
  sim::SeriesTable table;
  table.title =
      "Bloom screen ablation (§2.2.2) — false drops vs filter size m, "
      "AD file holding 50 keys";
  table.x_label = "m-bits";
  table.series_names = {"bits/key", "predicted-fp%", "measured-fp%",
                        "wasted-ms/1000-reads"};
  Random key_rng(404);
  std::vector<uint64_t> keys;
  for (int i = 0; i < kAdKeys; ++i) keys.push_back(key_rng.Next());
  for (const size_t bits : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    // Hash count tuned to the load factor, as ForExpectedKeys would pick.
    const int hashes = std::max(
        1, static_cast<int>(0.693 * static_cast<double>(bits) / kAdKeys));
    storage::BloomFilter filter(bits, hashes);
    for (const uint64_t k : keys) filter.Add(k);
    Random probe_rng(505);
    int fp = 0;
    for (int i = 0; i < kProbes; ++i) {
      if (filter.MayContain(probe_rng.Next())) ++fp;
    }
    const double measured = static_cast<double>(fp) / kProbes;
    // Each false drop wastes one 30 ms AD probe.
    table.AddRow(static_cast<double>(bits),
                 {static_cast<double>(bits) / kAdKeys,
                  100.0 * filter.ExpectedFpRate(), 100.0 * measured,
                  measured * 1000.0 * 30.0});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\n~10 bits/key already pushes false drops below 1%%, supporting the "
      "paper's 'count only one I/O' simplification for HR reads.\n");
  report.AddTable(table);
  report.AddNote("reading",
                 "~10 bits/key pushes false drops below 1%, supporting the "
                 "paper's count-only-one-I/O simplification for HR reads");
  return sim::FinishBenchMain(cli, report);
}
