// Figure 5: Model 2 (2-way join view) average cost per query vs P for
// deferred, immediate and nested-loops query modification.

#include <cstdio>
#include <vector>

#include "common/parallel.h"
#include "costmodel/crossover.h"
#include "costmodel/model2.h"
#include "sim/bench_report.h"
#include "sim/report.h"

using namespace viewmat;
using costmodel::Params;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_fig5_model2_cost_vs_p", cli.quick);
  sim::SeriesTable table;
  table.title =
      "Figure 5 — Model 2: avg cost (ms) per view query vs P "
      "(defaults: N=100000, f=.1, f_R2=.1, f_v=.1, l=25)";
  table.x_label = "P";
  table.series_names = {"deferred", "immediate", "loopjoin"};
  const Params base;
  const auto rows = common::ParallelMap(
      cli.effective_jobs(), 19, [&](size_t i) {
        const Params p = base.WithUpdateProbability((i + 1) * 0.05);
        return std::vector<double>{costmodel::TotalDeferred2(p),
                                   costmodel::TotalImmediate2(p),
                                   costmodel::TotalLoopJoin(p)};
      });
  for (size_t i = 0; i < rows.size(); ++i) {
    table.AddRow((i + 1) * 0.05, rows[i]);
  }
  std::printf("%s", table.ToString().c_str());
  report.AddTable(table);
  auto cross = costmodel::EqualCostP(
      [](const Params& at) { return costmodel::TotalImmediate2(at); },
      [](const Params& at) { return costmodel::TotalLoopJoin(at); }, base);
  if (cross) {
    std::printf(
        "\nmaterialization beats the loop join until P = %.3f, then QM wins "
        "(paper: maintenance overhead overwhelms the clustering advantage "
        "as P grows)\n",
        *cross);
    char note[96];
    std::snprintf(note, sizeof(note), "%.3f", *cross);
    report.AddNote("immediate_vs_loopjoin_crossover_P", note);
  }
  return sim::FinishBenchMain(cli, &report);
}
