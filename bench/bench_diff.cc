// Compares two BENCH report JSONs and fails on perf regressions — the
// regression gate scripts/check.sh runs against the committed baselines.
//
// Usage:
//   bench_diff <old.json> <new.json> [--threshold 5%] [--verbose]
//
// Metrics are matched by identity (workload point + run name, table title
// + series + x), so result reordering is not a diff. Exit codes:
//   0  no metric grew more than the threshold and nothing went missing
//   1  regressions or structural errors (metric in old but not in new)
//   2  usage / unreadable input

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/bench_diff.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff <old.json> <new.json> "
               "[--threshold 5%%|0.05] [--verbose]\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string old_path;
  std::string new_path;
  viewmat::sim::DiffOptions options;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) return Usage();  // not a path: a flag missing its value
      auto threshold = viewmat::sim::ParseThreshold(argv[++i]);
      if (!threshold.ok()) {
        std::fprintf(stderr, "%s\n", threshold.status().ToString().c_str());
        return 2;
      }
      options.threshold = *threshold;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (old_path.empty()) {
      old_path = arg;
    } else if (new_path.empty()) {
      new_path = arg;
    } else {
      return Usage();
    }
  }
  if (old_path.empty() || new_path.empty()) return Usage();

  std::string old_json;
  std::string new_json;
  if (!ReadFile(old_path, &old_json)) {
    std::fprintf(stderr, "cannot open %s\n", old_path.c_str());
    return 2;
  }
  if (!ReadFile(new_path, &new_json)) {
    std::fprintf(stderr, "cannot open %s\n", new_path.c_str());
    return 2;
  }

  auto result = viewmat::sim::DiffBenchReports(old_json, new_json, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  std::printf("%s vs %s\n%s", old_path.c_str(), new_path.c_str(),
              result->ToString(verbose).c_str());
  return result->ok() ? 0 : 1;
}
