// §3.3 ablation: sensitivity of the strategy choice to C3, the per-tuple
// cost of maintaining the in-memory A and D sets in immediate maintenance.
// The paper doubles C3 (Figure 4) and the winner map changes — here we
// sweep it and report the total costs and the deferred win share.

#include <cstdio>

#include "costmodel/model1.h"
#include "costmodel/regions.h"
#include "sim/bench_report.h"
#include "sim/report.h"

using namespace viewmat;
using costmodel::Params;
using costmodel::Strategy;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_ablation_c3_sensitivity", cli.quick);
  sim::SeriesTable table;
  table.title =
      "C3 sensitivity (§3.3/Figure 4) — Model 1 totals at P=.5, f=.1 and "
      "deferred win share over the (f, P) plane";
  table.x_label = "C3";
  table.series_names = {"deferred", "immediate", "def-win-share%"};
  auto cost_fn = [](Strategy s, const Params& p) {
    auto c = costmodel::Model1Cost(s, p);
    return c.ok() ? *c : 1e300;
  };
  const std::vector<Strategy> candidates = {
      Strategy::kDeferred, Strategy::kImmediate, Strategy::kQmClustered,
      Strategy::kQmUnclustered, Strategy::kQmSequential};
  const costmodel::Axis f_axis{0.005, 1.0, 32, true};
  const costmodel::Axis p_axis{0.01, 0.97, 32, false};
  for (const double c3 : {0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0}) {
    Params p;
    p.C3 = c3;
    const auto grid = costmodel::ComputeRegions(cost_fn, candidates, p, f_axis,
                                                p_axis, cli.effective_jobs());
    table.AddRow(c3, {costmodel::TotalDeferred1(p),
                      costmodel::TotalImmediate1(p),
                      100.0 * grid.WinShare(Strategy::kDeferred)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\ndeferred is flat in C3 while immediate grows linearly; once C3 "
      "crosses ~4 deferred claims part of the plane (cf. EXPERIMENTS.md on "
      "the paper's C3=2 threshold).\n");
  report.AddTable(table);
  report.AddNote("reading",
                 "deferred is flat in C3, immediate grows linearly; deferred "
                 "claims part of the plane once C3 crosses ~4");
  return sim::FinishBenchMain(cli, &report);
}
