// Figure 9: Model 3 equal-cost curves (P vs l) where immediate aggregate
// maintenance and clustered-scan recomputation cost the same, one curve per
// aggregated fraction f. Standard processing wins above a curve, immediate
// maintenance below it.

#include <cstdio>
#include <vector>

#include "common/parallel.h"
#include "costmodel/crossover.h"
#include "sim/bench_report.h"
#include "sim/report.h"

using namespace viewmat;
using costmodel::Params;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_fig9_model3_crossover", cli.quick);
  sim::SeriesTable table;
  table.title =
      "Figure 9 — Model 3: equal-cost P between immediate maintenance and "
      "clustered-scan recomputation, per f";
  table.x_label = "l";
  table.series_names = {"f=0.01", "f=0.05", "f=0.1", "f=0.5", "f=1"};
  const double fs[] = {0.01, 0.05, 0.1, 0.5, 1.0};
  const std::vector<double> ls = {1.0,   2.0,   5.0,    10.0,   25.0,  50.0,
                                  100.0, 250.0, 500.0,  1000.0, 2500.0,
                                  5000.0};
  const auto rows = common::ParallelMap(
      cli.effective_jobs(), ls.size(), [&](size_t i) {
        std::vector<double> row;
        for (const double f : fs) {
          Params p;
          p.f = f;
          auto cross = costmodel::Model3EqualCostP(p, ls[i]);
          row.push_back(cross.value_or(1.0));
        }
        return row;
      });
  for (size_t i = 0; i < rows.size(); ++i) table.AddRow(ls[i], rows[i]);
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper's reading: curves sit very high (maintenance nearly always "
      "wins) and rise with f — 'materializing aggregates pays off in "
      "significantly more cases than for other views'.\n");
  report.AddTable(table);
  report.AddNote("reading",
                 "equal-cost curves sit very high and rise with f; "
                 "materializing aggregates nearly always wins");
  return sim::FinishBenchMain(cli, &report);
}
