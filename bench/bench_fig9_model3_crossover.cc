// Figure 9: Model 3 equal-cost curves (P vs l) where immediate aggregate
// maintenance and clustered-scan recomputation cost the same, one curve per
// aggregated fraction f. Standard processing wins above a curve, immediate
// maintenance below it.

#include <cstdio>

#include "costmodel/crossover.h"
#include <vector>

using namespace viewmat;
using costmodel::Params;

int main() {
  std::printf(
      "# Figure 9 — Model 3: equal-cost P between immediate maintenance and "
      "clustered-scan recomputation, per f\n");
  const double fs[] = {0.01, 0.05, 0.1, 0.5, 1.0};
  std::printf("%-10s", "l");
  for (const double f : fs) std::printf(" %13s%-4.3g", "f=", f);
  std::printf("\n");
  for (const double l : {1.0,   2.0,   5.0,    10.0,   25.0,  50.0, 100.0,
                         250.0, 500.0, 1000.0, 2500.0, 5000.0}) {
    std::printf("%-10.4g", l);
    for (const double f : fs) {
      Params p;
      p.f = f;
      auto cross = costmodel::Model3EqualCostP(p, l);
      std::printf(" %17.6f", cross.value_or(1.0));
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper's reading: curves sit very high (maintenance nearly always "
      "wins) and rise with f — 'materializing aggregates pays off in "
      "significantly more cases than for other views'.\n");
  return 0;
}
