// Figure 6: Model 2 winner regions over (f, P) at f_v = .1 — join views
// favor materialization over a much larger area than Model 1.

#include "region_common.h"

using namespace viewmat;
using namespace viewmat::bench;

int main() {
  const costmodel::Params base;
  const auto grid = costmodel::ComputeRegions(
      Model2CostOrInf, Model2Candidates(), base, FAxis(), PAxis());
  PrintGrid("Figure 6 — Model 2 winner regions, f (log) vs P, f_v = .1",
            grid);
  return 0;
}
