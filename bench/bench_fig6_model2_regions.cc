// Figure 6: Model 2 winner regions over (f, P) at f_v = .1 — join views
// favor materialization over a much larger area than Model 1.

#include "region_common.h"

using namespace viewmat;
using namespace viewmat::bench;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_fig6_model2_regions", cli.quick);
  const costmodel::Params base;
  const auto grid = costmodel::ComputeRegions(
      Model2CostOrInf, Model2Candidates(), base, FAxis(),
      PAxis(), cli.effective_jobs());
  ReportGrid(&report, "fig6",
             "Figure 6 — Model 2 winner regions, f (log) vs P, f_v = .1",
             grid);
  return sim::FinishBenchMain(cli, &report);
}
