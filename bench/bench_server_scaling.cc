// Physical scaling sweep for the concurrent view server: workers
// {1,2,4,8} × contention profiles {disjoint, hot-range, uniform}, with
// group commit enabled so the retirement pipeline batches WAL syncs.
//
// The sweep is internal — every report contains runs at every worker
// count regardless of --jobs — and the bench itself enforces the PR's
// core invariant before reporting anything: per-op statuses, per-op cost
// shards, commit stamps, transaction ids, batch counts, and the final
// state digest must be IDENTICAL at every worker count. Any divergence
// exits nonzero.
//
// Reporting splits along the same line as bench_server:
//  - logical tables (committed / conflicts / parallel vs exclusive ops /
//    commit batches / model time / throughput) are deterministic and
//    gated by bench_diff against the committed BENCH_server_scaling.json;
//  - wall-clock curves, speedups, and wait histograms are physical, vary
//    with the machine (on a 1-CPU host the speedup curve is honestly
//    flat), and live in the execution block — never gated, never
//    compared across runs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "server/view_server.h"
#include "sim/bench_report.h"

using namespace viewmat;

namespace {

constexpr server::ContentionProfile kProfiles[] = {
    server::ContentionProfile::kDisjoint,
    server::ContentionProfile::kHotRange,
    server::ContentionProfile::kUniform,
};

/// The logical fingerprint of a finished run: everything the determinism
/// contract says must not depend on the worker count, folded into one
/// comparable string.
std::string LogicalFingerprint(const server::ViewServer::Result& r) {
  std::string out;
  char buf[256];
  for (const server::ViewServer::OpResult& op : r.ops) {
    std::snprintf(buf, sizeof(buf),
                  "%s txn=%llu reads=%llu writes=%llu screen=%llu cpu=%llu "
                  "ad=%llu commit=%.6f wait=%.6f|",
                  server::OpStatusName(op.status),
                  static_cast<unsigned long long>(op.txn_id),
                  static_cast<unsigned long long>(op.cost.disk_reads),
                  static_cast<unsigned long long>(op.cost.disk_writes),
                  static_cast<unsigned long long>(op.cost.screen_tests),
                  static_cast<unsigned long long>(op.cost.tuple_cpu_ops),
                  static_cast<unsigned long long>(op.cost.ad_set_ops),
                  op.commit_ms, op.logical_wait_ms);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "digest=%llx batches=%llu model_ms=%.6f",
                static_cast<unsigned long long>(r.state_digest),
                static_cast<unsigned long long>(r.commit_batches), r.model_ms);
  out += buf;
  return out;
}

/// Fixed-bound wall-time histogram rendered as a flat execution-note
/// fragment (the determinism check strips the execution block with textual
/// surgery, so no braces).
std::string WaitHistogram(const std::vector<double>& samples_ms) {
  static constexpr double kBounds[] = {0.01, 0.1, 1.0, 10.0};
  size_t counts[5] = {0, 0, 0, 0, 0};
  for (const double v : samples_ms) {
    size_t i = 0;
    while (i < 4 && v > kBounds[i]) ++i;
    ++counts[i];
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "le0.01=%zu le0.1=%zu le1=%zu le10=%zu inf=%zu", counts[0],
                counts[1], counts[2], counts[3], counts[4]);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_server_scaling", cli.quick);

  const std::vector<size_t> worker_counts =
      cli.quick ? std::vector<size_t>{1, 2, 8}
                : std::vector<size_t>{1, 2, 4, 8};

  std::string wall_note;
  std::string speedup_note;
  std::string lock_hist_note;
  std::string commit_hist_note;

  for (const server::ContentionProfile profile : kProfiles) {
    const char* pname = server::ContentionProfileName(profile);
    sim::SeriesTable table;
    table.title = std::string("server scaling ") + pname;
    table.x_label = "workers";
    table.series_names = {"committed",     "queries_exact",
                          "logical_conflicts", "parallel_ops",
                          "exclusive_ops", "commit_batches",
                          "throughput_tps"};

    std::string baseline_fp;
    double wall_at_1 = 0.0;
    std::string walls = std::string(pname) + ":";
    std::string speedups = std::string(pname) + ":";
    std::vector<double> lock_waits;
    std::vector<double> commit_waits;

    for (const size_t workers : worker_counts) {
      server::ViewServer::Options options;
      options.driver.kind = sim::StrategyKind::kDeferred;
      options.driver.model = 1;
      options.driver.params = sim::TortureParams(costmodel::Params());
      options.driver.seed = 17;
      options.driver.group_commit = true;
      options.driver.pool_pages = 256;
      options.schedule.clients = 8;
      options.schedule.ops_per_client = cli.quick ? 4 : 12;
      options.schedule.update_fraction = 0.5;
      options.schedule.abort_fraction = 0.1;
      options.schedule.seed = 4242;
      options.schedule.contention = profile;
      options.workers = workers;
      options.commit_batch = 4;

      auto run = [&]() -> StatusOr<server::ViewServer::Result> {
        VIEWMAT_ASSIGN_OR_RETURN(auto srv, server::ViewServer::Create(options));
        return srv->Run();
      }();
      if (!run.ok()) {
        std::fprintf(stderr, "%s workers=%zu failed: %s\n", pname, workers,
                     run.status().ToString().c_str());
        return 1;
      }
      const server::ViewServer::Result& r = *run;

      // The tentpole invariant: the logical artifact may not move when the
      // worker count does. Compare against the workers=1 fingerprint.
      const std::string fp = LogicalFingerprint(r);
      if (baseline_fp.empty()) {
        baseline_fp = fp;
        wall_at_1 = r.wall_ms;
      } else if (fp != baseline_fp) {
        std::fprintf(stderr,
                     "%s workers=%zu: logical result differs from workers=%zu"
                     " run\n  base: %.120s\n  here: %.120s\n",
                     pname, workers, worker_counts.front(),
                     baseline_fp.c_str(), fp.c_str());
        return 1;
      }

      table.AddRow(static_cast<double>(workers),
                   {static_cast<double>(r.committed),
                    static_cast<double>(r.queries_exact),
                    static_cast<double>(r.logical_conflicts),
                    static_cast<double>(r.parallel_ops),
                    static_cast<double>(r.exclusive_ops),
                    static_cast<double>(r.commit_batches),
                    r.throughput_tps});

      char frag[64];
      std::snprintf(frag, sizeof(frag), " %.2f", r.wall_ms);
      walls += frag;
      std::snprintf(frag, sizeof(frag), " %.2fx",
                    r.wall_ms > 0 ? wall_at_1 / r.wall_ms : 1.0);
      speedups += frag;
      for (const server::ViewServer::OpResult& op : r.ops) {
        lock_waits.push_back(op.physical_lock_wait_ms);
        commit_waits.push_back(op.physical_commit_wait_ms);
      }
      std::printf("%-10s workers=%zu wall=%.2fms committed=%llu "
                  "parallel=%llu exclusive=%llu batches=%llu\n",
                  pname, workers, r.wall_ms,
                  static_cast<unsigned long long>(r.committed),
                  static_cast<unsigned long long>(r.parallel_ops),
                  static_cast<unsigned long long>(r.exclusive_ops),
                  static_cast<unsigned long long>(r.commit_batches));
    }
    report.AddTable(table);

    const std::string sep = wall_note.empty() ? "" : "; ";
    wall_note += sep + walls;
    speedup_note += sep + speedups;
    lock_hist_note += sep + std::string(pname) + ": " +
                      WaitHistogram(lock_waits);
    commit_hist_note += sep + std::string(pname) + ": " +
                        WaitHistogram(commit_waits);
  }

  std::printf("\nlogical results byte-identical across workers "
              "{1..8} in every profile\n");
  report.AddNote("invariant",
                 "per-op statuses, costs, commit stamps, txn ids, batch "
                 "counts, and state digests identical at every worker count "
                 "in every contention profile (checked in-process)");

  // Everything below is physical: wall-clock scaling curves and wait
  // distributions measured on THIS machine. On a 1-CPU host the speedup
  // column reads ~1.0x across the board — that is the honest answer, and
  // the execution block is the one place allowed to say it.
  std::string workers_note;
  for (const size_t w : worker_counts) {
    if (!workers_note.empty()) workers_note += " ";
    workers_note += std::to_string(w);
  }
  report.AddExecutionNote("scaling_workers", workers_note);
  report.AddExecutionNote("scaling_wall_ms", wall_note);
  report.AddExecutionNote("scaling_speedup", speedup_note);
  report.AddExecutionNote("scaling_lock_wait_hist", lock_hist_note);
  report.AddExecutionNote("scaling_commit_wait_hist", commit_hist_note);
  return sim::FinishBenchMain(cli, &report);
}
