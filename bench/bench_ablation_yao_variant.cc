// Appendix B ablation: exact hypergeometric Yao vs the Cardenas
// approximation inside the full cost model. Headline totals barely move
// (the paper's n/m > 10 accuracy claim), but knife-edge winner boundaries
// (Figure 4's deferred region) are sensitive — this bench quantifies both.

#include <cstdio>

#include "costmodel/model1.h"
#include "costmodel/regions.h"
#include "sim/bench_report.h"
#include "sim/report.h"

using namespace viewmat;
using costmodel::Params;
using costmodel::Strategy;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_ablation_yao_variant", cli.quick);
  // 1. Totals at defaults under both variants.
  Params approx;
  Params exact;
  exact.use_exact_yao = true;
  std::printf("# Yao-variant ablation (Appendix B)\n");
  std::printf("%-14s %14s %14s %9s\n", "total", "cardenas", "exact", "shift");
  struct Row {
    const char* name;
    double a, e;
  } rows[] = {
      {"deferred-1", costmodel::TotalDeferred1(approx),
       costmodel::TotalDeferred1(exact)},
      {"immediate-1", costmodel::TotalImmediate1(approx),
       costmodel::TotalImmediate1(exact)},
      {"unclustered", costmodel::TotalUnclustered(approx),
       costmodel::TotalUnclustered(exact)},
  };
  for (const Row& r : rows) {
    std::printf("%-14s %14.1f %14.1f %8.2f%%\n", r.name, r.a, r.e,
                100.0 * (r.e - r.a) / r.a);
    char note[96];
    std::snprintf(note, sizeof(note),
                  "cardenas=%.1f exact=%.1f shift=%.2f%%", r.a, r.e,
                  100.0 * (r.e - r.a) / r.a);
    report.AddNote(std::string("totals.") + r.name, note);
  }

  // 2. The deferred win share over the (f, P) plane per variant and C3 —
  // the knife edge behind the Figure 4 threshold deviation.
  auto cost_fn = [](Strategy s, const Params& p) {
    auto c = costmodel::Model1Cost(s, p);
    return c.ok() ? *c : 1e300;
  };
  const std::vector<Strategy> candidates = {
      Strategy::kDeferred, Strategy::kImmediate, Strategy::kQmClustered,
      Strategy::kQmUnclustered, Strategy::kQmSequential};
  const costmodel::Axis f_axis{0.005, 1.0, 32, true};
  const costmodel::Axis p_axis{0.01, 0.97, 32, false};
  sim::SeriesTable shares;
  shares.title =
      "Deferred win share (%) over the (f, P) plane vs C3, per Yao variant";
  shares.x_label = "C3";
  shares.series_names = {"cardenas%", "exact%"};
  for (const double c3 : {1.0, 2.0, 4.0, 8.0}) {
    Params pa;
    pa.C3 = c3;
    Params pe = pa;
    pe.use_exact_yao = true;
    const double sa = costmodel::ComputeRegions(cost_fn, candidates, pa,
                                                f_axis, p_axis,
                                                cli.effective_jobs())
                          .WinShare(Strategy::kDeferred);
    const double se = costmodel::ComputeRegions(cost_fn, candidates, pe,
                                                f_axis, p_axis,
                                                cli.effective_jobs())
                          .WinShare(Strategy::kDeferred);
    shares.AddRow(c3, {100.0 * sa, 100.0 * se});
  }
  std::printf("\n%s", shares.ToString().c_str());
  std::printf(
      "\ntotals shift by well under 5%%, but the C3 threshold at which a "
      "deferred region first appears depends on the variant — the deviation "
      "EXPERIMENTS.md records against the paper's Figure 4.\n");
  report.AddTable(shares);
  report.AddNote("reading",
                 "totals shift by well under 5%, but the C3 threshold at "
                 "which a deferred region first appears depends on the "
                 "Yao variant");
  return sim::FinishBenchMain(cli, &report);
}
