// Related-work ablation: snapshots [Adib80, Lind86] vs the incremental
// strategies. A snapshot pays nothing per transaction and a full
// recomputation every R queries, serving stale data in between. We sweep R
// and report per-query cost plus the average staleness (transactions whose
// effects a reader misses), using the analytical pieces of Model 1.

#include <cstdio>

#include "costmodel/model1.h"
#include "sim/bench_report.h"
#include "sim/report.h"

using namespace viewmat;
using costmodel::Params;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_ablation_snapshot", cli.quick);
  const Params p;  // defaults: P = .5, k/q = 1 txn per query
  // Full recomputation = clustered scan of the whole selection + rebuild
  // of the stored copy (write f*b/2 pages).
  const double recompute =
      p.C2 * p.b() * p.f + p.C1 * p.N + p.C2 * p.f * p.b() / 2.0;
  sim::SeriesTable table;
  table.title =
      "Snapshot ablation — per-query cost and staleness vs refresh period R "
      "(defaults; compare: deferred = "
      "always-fresh)";
  table.x_label = "R";
  table.series_names = {"snapshot-ms", "avg-stale-txns", "deferred-ms"};
  const double deferred = costmodel::TotalDeferred1(p);
  for (const double R : {1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    const double per_query = costmodel::CQuery1(p) + recompute / R;
    // Average staleness: k/q transactions arrive per query; a reader at
    // query i since refresh has missed i*(k/q) of them; averaging over the
    // period gives (R-1)/2 * k/q.
    const double staleness = (R - 1.0) / 2.0 * (p.k / p.q);
    table.AddRow(R, {per_query, staleness, deferred});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nsnapshots undercut deferred maintenance only once the period "
      "amortizes the full recompute — at the price of staleness the "
      "incremental strategies never incur. This is why the paper treats "
      "snapshots as a different tool, not a fourth contender.\n");
  report.AddTable(table);
  report.AddNote("reading",
                 "snapshots undercut deferred only once the period amortizes "
                 "the full recompute, at the price of staleness");
  return sim::FinishBenchMain(cli, &report);
}
