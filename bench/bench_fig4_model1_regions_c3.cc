// Figure 4: Figure 2's raster with the A/D-set upkeep cost C3 doubled.
// The paper reports a deferred-best region appearing, demonstrating that
// the methods are very sensitive to C3. Under the Cardenas form of the Yao
// function the deferred region is within 0.01% of appearing at C3 = 2 and
// becomes unambiguous by C3 ≈ 4; we sweep C3 to show the progression (see
// EXPERIMENTS.md for the deviation note).

#include "costmodel/model1.h"
#include "region_common.h"

using namespace viewmat;
using namespace viewmat::bench;

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_fig4_model1_regions_c3", cli.quick);
  for (const double c3 : {1.0, 2.0, 4.0, 8.0}) {
    costmodel::Params p;
    p.C3 = c3;
    const auto grid = costmodel::ComputeRegions(
        Model1CostOrInf, Model1Candidates(), p, FAxis(),
        PAxis(), cli.effective_jobs());
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Figure 4 family — Model 1 winner regions, C3 = %.0f, "
                  "f_v = .1",
                  c3);
    char key[16];
    std::snprintf(key, sizeof(key), "c3=%.0f", c3);
    ReportGrid(&report, key, title, grid);
  }
  // The pointwise mechanism: deferred-vs-immediate gap closes linearly in
  // C3 at every (f, P).
  sim::SeriesTable gap;
  gap.title = "deferred minus immediate (ms) at f=.957, P=.283";
  gap.x_label = "C3";
  gap.series_names = {"def-minus-imm"};
  for (const double c3 : {1.0, 2.0, 3.0, 4.0, 6.0}) {
    costmodel::Params p = costmodel::Params().WithUpdateProbability(0.283);
    p.f = 0.957;
    p.C3 = c3;
    gap.AddRow(c3,
               {costmodel::TotalDeferred1(p) - costmodel::TotalImmediate1(p)});
  }
  std::printf("%s", gap.ToString().c_str());
  report.AddTable(gap);
  return sim::FinishBenchMain(cli, &report);
}
