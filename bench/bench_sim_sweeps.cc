// Measured analogs of Figures 1 and 5: instead of evaluating the closed
// forms, drive the actual storage engine through the workload at several
// update probabilities and report the baseline-adjusted (view-attributable)
// ms/query per strategy. The curve shapes — maintenance rising with P,
// query modification flat — are the paper's headline, reproduced by
// execution.

#include <cstdio>
#include <vector>

#include "sim/bench_report.h"
#include "sim/report.h"
#include "sim/simulator.h"

using namespace viewmat;

namespace {

double AdjustedOf(const sim::SimResult& result, const char* name) {
  for (const sim::StrategyRun& run : result.runs) {
    if (run.name == name) return run.adjusted_ms_per_query;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_sim_sweeps", cli.quick);
  costmodel::Params base;
  base.N = cli.quick ? 4000 : 20000;
  base.q = 40;
  base.l = 10;
  sim::SimOptions options;

  sim::SeriesTable m1;
  m1.title =
      "Measured Figure 1 analog — Model 1 view-attributable ms/query vs P "
      "(N=20000, executed on the storage engine)";
  m1.x_label = "P";
  m1.series_names = {"deferred", "immediate", "clustered", "unclustered"};
  sim::SeriesTable m2;
  m2.title = "Measured Figure 5 analog — Model 2 ms/query vs P";
  m2.x_label = "P";
  m2.series_names = {"deferred", "immediate", "loopjoin"};

  const std::vector<double> ps = cli.quick
                                     ? std::vector<double>{0.3, 0.7}
                                     : std::vector<double>{0.1, 0.3, 0.5,
                                                           0.7, 0.9};
  for (const double P : ps) {
    const costmodel::Params p = base.WithUpdateProbability(P);
    auto r1 = sim::SimulateModel1(p, options);
    if (r1.ok()) {
      m1.AddRow(P, {AdjustedOf(*r1, "deferred"), AdjustedOf(*r1, "immediate"),
                    AdjustedOf(*r1, "clustered"),
                    AdjustedOf(*r1, "unclustered")});
    }
    auto r2 = sim::SimulateModel2(p, options);
    if (r2.ok()) {
      m2.AddRow(P, {AdjustedOf(*r2, "deferred"), AdjustedOf(*r2, "immediate"),
                    AdjustedOf(*r2, "loopjoin")});
    }
  }
  std::printf("%s\n%s", m1.ToString().c_str(), m2.ToString().c_str());
  std::printf(
      "\nshapes to check against Figures 1 and 5: the maintenance curves "
      "rise with P while the query-modification curves stay flat; "
      "unclustered and loopjoin sit far above clustered/materialized "
      "respectively.\n");
  report.AddTable(m1);
  report.AddTable(m2);
  report.AddNote("reading",
                 "maintenance curves rise with P while query-modification "
                 "curves stay flat, matching Figures 1 and 5");
  return sim::FinishBenchMain(cli, report);
}
