// Measured analogs of Figures 1 and 5: instead of evaluating the closed
// forms, drive the actual storage engine through the workload at several
// update probabilities and report the baseline-adjusted (view-attributable)
// ms/query per strategy. The curve shapes — maintenance rising with P,
// query modification flat — are the paper's headline, reproduced by
// execution.

#include <cstdio>
#include <vector>

#include "common/parallel.h"
#include "sim/bench_report.h"
#include "sim/report.h"
#include "sim/simulator.h"

using namespace viewmat;

namespace {

double AdjustedOf(const sim::SimResult& result, const char* name) {
  for (const sim::StrategyRun& run : result.runs) {
    if (run.name == name) return run.adjusted_ms_per_query;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const sim::BenchCli cli = sim::BenchCli::Parse(argc, argv);
  sim::BenchReport report("bench_sim_sweeps", cli.quick);
  costmodel::Params base;
  base.N = cli.quick ? 4000 : 20000;
  base.q = 40;
  base.l = 10;
  sim::SimOptions options;

  sim::SeriesTable m1;
  m1.title =
      "Measured Figure 1 analog — Model 1 view-attributable ms/query vs P "
      "(N=20000, executed on the storage engine)";
  m1.x_label = "P";
  m1.series_names = {"deferred", "immediate", "clustered", "unclustered"};
  sim::SeriesTable m2;
  m2.title = "Measured Figure 5 analog — Model 2 ms/query vs P";
  m2.x_label = "P";
  m2.series_names = {"deferred", "immediate", "loopjoin"};

  const std::vector<double> ps = cli.quick
                                     ? std::vector<double>{0.3, 0.7}
                                     : std::vector<double>{0.1, 0.3, 0.5,
                                                           0.7, 0.9};
  // Every P point runs both models against its own private engine
  // instance (options carries no shared tracer or metrics here), so the
  // points execute concurrently; rows append in index order below, and
  // the tables are identical at any --jobs value.
  struct PointRows {
    std::vector<double> row1;  ///< empty when the model-1 run failed
    std::vector<double> row2;  ///< empty when the model-2 run failed
  };
  const auto points = common::ParallelMap(
      cli.effective_jobs(), ps.size(), [&](size_t i) {
        const costmodel::Params p = base.WithUpdateProbability(ps[i]);
        PointRows rows;
        auto r1 = sim::SimulateModel1(p, options);
        if (r1.ok()) {
          rows.row1 = {AdjustedOf(*r1, "deferred"),
                       AdjustedOf(*r1, "immediate"),
                       AdjustedOf(*r1, "clustered"),
                       AdjustedOf(*r1, "unclustered")};
        }
        auto r2 = sim::SimulateModel2(p, options);
        if (r2.ok()) {
          rows.row2 = {AdjustedOf(*r2, "deferred"),
                       AdjustedOf(*r2, "immediate"),
                       AdjustedOf(*r2, "loopjoin")};
        }
        return rows;
      });
  for (size_t i = 0; i < points.size(); ++i) {
    if (!points[i].row1.empty()) m1.AddRow(ps[i], points[i].row1);
    if (!points[i].row2.empty()) m2.AddRow(ps[i], points[i].row2);
  }
  std::printf("%s\n%s", m1.ToString().c_str(), m2.ToString().c_str());
  std::printf(
      "\nshapes to check against Figures 1 and 5: the maintenance curves "
      "rise with P while the query-modification curves stay flat; "
      "unclustered and loopjoin sit far above clustered/materialized "
      "respectively.\n");
  report.AddTable(m1);
  report.AddTable(m2);
  report.AddNote("reading",
                 "maintenance curves rise with P while query-modification "
                 "curves stay flat, matching Figures 1 and 5");
  return sim::FinishBenchMain(cli, &report);
}
