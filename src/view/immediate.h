#ifndef VIEWMAT_VIEW_IMMEDIATE_H_
#define VIEWMAT_VIEW_IMMEDIATE_H_

#include <variant>

#include "common/status.h"
#include "db/recovery.h"
#include "storage/cost_tracker.h"
#include "view/materialized_view.h"
#include "view/screening.h"
#include "view/strategy.h"
#include "view/view_def.h"

namespace viewmat::view {

/// Immediate view maintenance (§2.1, after [Blak86]): a materialized copy
/// of the view is refreshed at the end of every update transaction using
/// the differential algorithm with duplicate counts. Update tuples are
/// screened with t-lock rule indexing; survivors are mapped into view
/// deltas (joining through R2's hash index for Model 2) and applied to the
/// stored copy. The in-memory A/D structures are reset each transaction,
/// charged at C3 per relevant tuple (the paper's C_overhead).
class ImmediateStrategy : public ViewStrategy {
 public:
  ImmediateStrategy(SelectProjectDef def, storage::CostTracker* tracker);
  ImmediateStrategy(JoinDef def, storage::CostTracker* tracker);

  /// Builds the stored copy from the current base state. Run once before
  /// the measured workload; reset the tracker afterwards to exclude it.
  Status InitializeFromBase();

  Status OnTransaction(const db::Transaction& txn) override;
  Status Query(int64_t lo, int64_t hi,
               const MaterializedView::CountedVisitor& visit) override;
  const char* name() const override { return "immediate"; }

  /// Makes transactions atomic: once attached, OnTransaction commits
  /// through the recovery manager (log-commit-then-apply) instead of bare
  /// ApplyToBase. The manager must have the view's base relations
  /// registered.
  void AttachRecovery(db::RecoveryManager* rm) { recovery_ = rm; }

  /// Crash recovery: completes any partially-applied committed transaction
  /// via RecoveryManager::Recover(), then rebuilds the stored copy from the
  /// recovered base (a crash between the base commit and the view patch
  /// leaves the copy behind the base; immediate maintenance keeps no
  /// differential to patch from, so the copy is recomputed).
  Status Recover();

  /// True when the stored copy may lag the base (failure after a durable
  /// commit) and Recover() must run before queries are trustworthy.
  bool needs_recovery() const {
    return view_dirty_ ||
           (recovery_ != nullptr && recovery_->needs_recovery());
  }

  MaterializedView* view() { return view_.get(); }
  const TLockScreen& screen() const { return screen_; }
  uint64_t refresh_count() const { return refresh_count_; }

 private:
  /// The relation whose updates drive the view (R, or R1 for joins).
  db::Relation* UpdatedRelation() const;
  /// Maps a base tuple to a view value; false when it contributes nothing.
  StatusOr<bool> Map(const db::Tuple& t, db::Tuple* out);
  /// Screens and applies one transaction's delta to the stored copy.
  Status PatchView(const db::Transaction& txn);

  std::variant<SelectProjectDef, JoinDef> def_;
  storage::CostTracker* tracker_;
  TLockScreen screen_;
  std::unique_ptr<MaterializedView> view_;
  uint64_t refresh_count_ = 0;
  db::RecoveryManager* recovery_ = nullptr;
  /// The base advanced (durable commit) but the view patch did not finish.
  bool view_dirty_ = false;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_IMMEDIATE_H_
