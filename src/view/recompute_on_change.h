#ifndef VIEWMAT_VIEW_RECOMPUTE_ON_CHANGE_H_
#define VIEWMAT_VIEW_RECOMPUTE_ON_CHANGE_H_

#include "common/status.h"
#include "db/recovery.h"
#include "storage/cost_tracker.h"
#include "view/materialized_view.h"
#include "view/screening_modes.h"
#include "view/strategy.h"
#include "view/view_def.h"

namespace viewmat::view {

/// The Buneman-Clemons scheme [Bune79] §1 describes as the fourth refresh
/// algorithm: analyze each update command *before* execution; if the
/// system cannot rule out that it alters the view (the command is not a
/// readily ignorable update and at least one tuple survives the run-time
/// screen), the view is **completely recomputed** — there is no
/// incremental patching. Cheap when almost all commands are ignorable,
/// brutal otherwise; exactly the trade-off the screening ablation bench
/// quantifies.
class RecomputeOnChangeStrategy : public ViewStrategy {
 public:
  RecomputeOnChangeStrategy(SelectProjectDef def,
                            storage::CostTracker* tracker);

  Status InitializeFromBase();

  Status OnTransaction(const db::Transaction& txn) override;
  Status Query(int64_t lo, int64_t hi,
               const MaterializedView::CountedVisitor& visit) override;
  const char* name() const override { return "recompute-on-change"; }

  /// Commit transactions through the recovery manager (atomic base writes).
  void AttachRecovery(db::RecoveryManager* rm) { recovery_ = rm; }

  /// Crash recovery: completes partially-applied committed transactions and
  /// marks the view dirty, so the next query recomputes from the recovered
  /// base — [Bune79]'s own refresh rule doubles as its crash repair.
  Status Recover();

  uint64_t recompute_count() const { return recompute_count_; }
  uint64_t ignored_transactions() const { return ignored_transactions_; }
  const UpdateScreen& screen() const { return screen_; }

 private:
  Status Recompute();

  SelectProjectDef def_;
  storage::CostTracker* tracker_;
  UpdateScreen screen_;
  std::unique_ptr<MaterializedView> view_;
  db::RecoveryManager* recovery_ = nullptr;
  bool dirty_ = false;
  uint64_t recompute_count_ = 0;
  uint64_t ignored_transactions_ = 0;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_RECOMPUTE_ON_CHANGE_H_
