#include "view/view_group.h"

#include "common/logging.h"

namespace viewmat::view {

DeferredViewGroup::DeferredViewGroup(db::Relation* base,
                                     hr::AdFile::Options ad_options,
                                     storage::CostTracker* tracker)
    : base_(base), tracker_(tracker), hr_(base, ad_options) {
  VIEWMAT_CHECK(base_ != nullptr);
}

StatusOr<size_t> DeferredViewGroup::AddView(const SelectProjectDef& def) {
  VIEWMAT_RETURN_IF_ERROR(def.Validate());
  if (def.base != base_) {
    return Status::InvalidArgument(
        "view group members must share the group's base relation");
  }
  if (hr_.ad().entry_count() != 0) {
    return Status::FailedPrecondition(
        "register views before accumulating differential work");
  }
  auto member = std::make_unique<Member>(def, tracker_);
  member->view = std::make_unique<MaterializedView>(
      base_->pool(), "group_view_" + std::to_string(members_.size()),
      def.ViewSchema(), def.view_key_field);
  // Materialize from the current base state.
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(base_->Scan([&](const db::Tuple& t) {
    db::Tuple value;
    if (member->def.MapTuple(t, &value)) {
      inner = member->view->ApplyInsert(value);
      if (!inner.ok()) return false;
    }
    return true;
  }));
  VIEWMAT_RETURN_IF_ERROR(inner);
  members_.push_back(std::move(member));
  return members_.size() - 1;
}

Status DeferredViewGroup::OnTransaction(const db::Transaction& txn) {
  const db::NetChange& net = txn.ChangesFor(base_);
  if (net.empty()) return Status::OK();
  // I/O #1 per modified tuple, as in the single-view deferred engine.
  for (const db::Tuple& t : net.deletes()) {
    VIEWMAT_RETURN_IF_ERROR(
        hr_.FindAllByKey(t.at(base_->key_field()).AsInt64(),
                         [](const db::Tuple&) { return false; }));
  }
  // Every member screens (and thereby marks) independently — each pays its
  // own C1 for interval hits, matching per-view rule indexing.
  for (const std::unique_ptr<Member>& m : members_) {
    for (const db::Tuple& t : net.deletes()) m->screen.Passes(t);
    for (const db::Tuple& t : net.inserts()) m->screen.Passes(t);
  }
  return hr_.RecordChanges(net);
}

Status DeferredViewGroup::RefreshAll() {
  if (hr_.ad().entry_count() == 0) return Status::OK();
  std::vector<db::Tuple> a_net;
  std::vector<db::Tuple> d_net;
  // ONE read of the AD file and one fold serve every member view.
  VIEWMAT_RETURN_IF_ERROR(hr_.Fold(&a_net, &d_net));
  ++fold_count_;
  for (const std::unique_ptr<Member>& m : members_) {
    std::vector<db::Tuple> inserts;
    std::vector<db::Tuple> deletes;
    for (const db::Tuple& t : d_net) {
      db::Tuple value;
      if (m->def.MapTuple(t, &value)) deletes.push_back(std::move(value));
    }
    for (const db::Tuple& t : a_net) {
      db::Tuple value;
      if (m->def.MapTuple(t, &value)) inserts.push_back(std::move(value));
    }
    VIEWMAT_RETURN_IF_ERROR(m->view->ApplyDelta(inserts, deletes));
  }
  return Status::OK();
}

Status DeferredViewGroup::Query(size_t index, int64_t lo, int64_t hi,
                                const MaterializedView::CountedVisitor& visit) {
  if (index >= members_.size()) {
    return Status::InvalidArgument("no such view in group");
  }
  VIEWMAT_RETURN_IF_ERROR(RefreshAll());
  return members_[index]->view->Query(lo, hi, visit);
}

}  // namespace viewmat::view
