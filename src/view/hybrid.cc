#include "view/hybrid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "obs/trace.h"

namespace viewmat::view {

namespace {
using storage::CrashPoint;
}  // namespace

HybridStrategy::HybridStrategy(SelectProjectDef def,
                               hr::AdFile::Options ad_options,
                               storage::CostTracker* tracker)
    : def_(std::move(def)),
      tracker_(tracker),
      screen_(TLockScreen::ForSelectProject(def_, tracker)),
      hr_(def_.base, ad_options) {
  VIEWMAT_CHECK(def_.Validate().ok());
  VIEWMAT_CHECK(def_.BaseKeyField() == def_.base->key_field());
  view_ = std::make_unique<MaterializedView>(
      def_.base->pool(), "hybrid_view", def_.ViewSchema(),
      def_.view_key_field);
}

Status HybridStrategy::InitializeFromBase() {
  VIEWMAT_RETURN_IF_ERROR(view_->Clear());
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(def_.base->Scan([&](const db::Tuple& t) {
    db::Tuple value;
    if (def_.MapTuple(t, &value)) {
      inner = view_->ApplyInsert(value);
      if (!inner.ok()) return false;
    }
    return true;
  }));
  return inner;
}

Status HybridStrategy::OnTransaction(const db::Transaction& txn) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kUpdateApply);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "txn");
  const db::NetChange& net = txn.ChangesFor(def_.base);
  if (net.empty()) return Status::OK();
  if (crash_safe() &&
      (phase_ == RecoveryPhase::kNeedFold ||
       phase_ == RecoveryPhase::kNeedReset || hr_.ad().needs_recovery())) {
    // Same rule as the deferred strategy: once a fold has started (or the
    // AD file is untrusted) the half-applied epoch must complete before new
    // intents may land.
    const Status recovered = Recover();
    if (!recovered.ok()) {
      return Status::FailedPrecondition(
          "transaction rejected: interrupted refresh could not be rolled "
          "forward (" +
          recovered.message() + ")");
    }
  }
  for (const db::Tuple& t : net.deletes()) {
    VIEWMAT_RETURN_IF_ERROR(
        hr_.FindAllByKey(t.at(def_.base->key_field()).AsInt64(),
                         [](const db::Tuple&) { return false; }));
  }
  for (const db::Tuple& t : net.deletes()) screen_.Passes(t);
  for (const db::Tuple& t : net.inserts()) screen_.Passes(t);
  if (crash_safe()) {
    const Status st = hr_.RecordChangesCommitted(net, ++txn_seq_);
    if (st.ok() && txn_seq_ > committed_txn_high_) {
      committed_txn_high_ = txn_seq_;
    }
    return st;
  }
  return hr_.RecordChanges(net);
}

HybridStrategy::Estimate HybridStrategy::EstimateQuery(int64_t lo,
                                                       int64_t hi) const {
  Estimate est;
  const double c1 = tracker_ != nullptr ? tracker_->c1() : 1.0;
  const double c2 = tracker_ != nullptr ? tracker_->c2() : 30.0;
  const double page_size = def_.base->pool()->disk()->page_size();

  // Queried tuples: intersect the ask with the view's key range and assume
  // dense keys within it (the scenario the paper models; a production
  // optimizer would consult histograms here).
  const db::IntervalSet view_keys =
      def_.predicate->ImpliedRangeSet(def_.BaseKeyField());
  const db::IntervalSet asked =
      db::IntervalSet::Intersect(view_keys, db::IntervalSet(db::Interval{lo, hi}));
  double range_tuples = 0;
  for (const db::Interval& i : asked.intervals()) {
    const double a = i.lo ? static_cast<double>(*i.lo) : -1e18;
    const double b = i.hi ? static_cast<double>(*i.hi) : 1e18;
    range_tuples += std::max(0.0, b - a + 1.0);
  }
  range_tuples =
      std::min(range_tuples, static_cast<double>(def_.base->tuple_count()));

  // Page math mirrors the storage engine's leaf layout: 8-byte key plus
  // the record (the view additionally stores its duplicate count).
  const double base_tuples_per_page = std::max(
      1.0, page_size / (8.0 + def_.base->schema().record_size()));
  const double view_tuples_per_page = std::max(
      1.0, page_size / (8.0 + def_.ViewSchema().record_size() + 8.0));

  // --- QM path: read the AD file, scan the base range ------------------
  const double ad_pages = std::ceil(
      static_cast<double>(hr_.ad().page_count()));
  est.qm_ms = c2 * ad_pages +
              c2 * std::ceil(range_tuples / base_tuples_per_page + 1.0) +
              c1 * range_tuples;

  // --- View path: refresh (patch pending tuples), then scan the view ----
  // Each pending differential tuple patches at most one view page at
  // (3 + H) I/Os (the Yao-batched value is lower; this upper bound keeps
  // the choice conservative toward QM, matching §3.5's small-query
  // preference).
  // A refresh is an investment: it clears the differential for every
  // subsequent query, not just this one, so its cost is amortized over an
  // expected reuse horizon (§4's batching argument). Without amortization
  // a myopic comparison defers forever.
  const double pending = static_cast<double>(hr_.ad().entry_count());
  const double view_height = 2.0;  // small trees; a constant estimate
  const double refresh_ms =
      pending > 0 ? (c2 * ad_pages + c2 * (3.0 + view_height) * pending) /
                        refresh_amortization_
                  : 0.0;
  est.view_ms = refresh_ms +
                c2 * std::ceil(range_tuples / view_tuples_per_page + 1.0) +
                c1 * range_tuples;
  return est;
}

Status HybridStrategy::Refresh() {
  if (crash_safe()) {
    if (stale()) VIEWMAT_RETURN_IF_ERROR(Recover());
    return RefreshSafe();
  }
  return RefreshUnsafe();
}

Status HybridStrategy::RefreshUnsafe() {
  if (hr_.ad().entry_count() == 0) return Status::OK();
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kRefresh);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "refresh");
  std::vector<db::Tuple> a_net;
  std::vector<db::Tuple> d_net;
  VIEWMAT_RETURN_IF_ERROR(hr_.Fold(&a_net, &d_net));
  std::vector<db::Tuple> inserts;
  std::vector<db::Tuple> deletes;
  for (const db::Tuple& t : d_net) {
    db::Tuple value;
    if (def_.MapTuple(t, &value)) deletes.push_back(std::move(value));
  }
  for (const db::Tuple& t : a_net) {
    db::Tuple value;
    if (def_.MapTuple(t, &value)) inserts.push_back(std::move(value));
  }
  ++refresh_count_;
  return view_->ApplyDelta(inserts, deletes);
}

Status HybridStrategy::RefreshSafe() {
  if (hr_.ad().entry_count() == 0) return Status::OK();
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kRefresh);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "refresh");
  storage::BufferPool* pool = def_.base->pool();
  storage::DiskInterface* disk = pool->disk();

  // Read-only preparation; failure is a clean abort.
  std::vector<db::Tuple> a_net;
  std::vector<db::Tuple> d_net;
  obs::ScopedSpan prepare_span(storage::TracerOf(tracker_), "refresh.prepare");
  VIEWMAT_RETURN_IF_ERROR(hr_.NetChanges(&a_net, &d_net));
  std::vector<db::Tuple> inserts;
  std::vector<db::Tuple> deletes;
  for (const db::Tuple& t : d_net) {
    db::Tuple value;
    if (def_.MapTuple(t, &value)) deletes.push_back(std::move(value));
  }
  for (const db::Tuple& t : a_net) {
    db::Tuple value;
    if (def_.MapTuple(t, &value)) inserts.push_back(std::move(value));
  }
  prepare_span.End();

  // Phase 1: patch the view under a durable begin marker.
  VIEWMAT_RETURN_IF_ERROR(hr_.mutable_ad()->LogRefreshBegin(++epoch_));
  phase_ = RecoveryPhase::kNeedViewRebuild;
  obs::ScopedSpan patch_span(storage::TracerOf(tracker_), "refresh.view_patch");
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kBeforeViewPatch));
  for (const db::Tuple& value : deletes) {
    VIEWMAT_RETURN_IF_ERROR(view_->ApplyDelete(value));
  }
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kMidViewPatch));
  for (const db::Tuple& value : inserts) {
    VIEWMAT_RETURN_IF_ERROR(view_->ApplyInsert(value));
  }
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kAfterViewPatch));
  VIEWMAT_RETURN_IF_ERROR(pool->FlushAll());
  VIEWMAT_RETURN_IF_ERROR(hr_.mutable_ad()->LogViewPatched(epoch_));
  patch_span.End();
  phase_ = RecoveryPhase::kNeedFold;

  // Phase 2: fold the base and retire the differential.
  return FoldAndReset(a_net, d_net, /*idempotent=*/false);
}

Status HybridStrategy::FoldAndReset(const std::vector<db::Tuple>& a_net,
                                    const std::vector<db::Tuple>& d_net,
                                    bool idempotent) {
  storage::BufferPool* pool = def_.base->pool();
  storage::DiskInterface* disk = pool->disk();
  obs::ScopedSpan fold_span(storage::TracerOf(tracker_), "refresh.fold");
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kBeforeFold));
  static const std::vector<db::Tuple> kEmpty;
  VIEWMAT_RETURN_IF_ERROR(hr_.FoldNoReset(kEmpty, d_net, idempotent));
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kMidFold));
  VIEWMAT_RETURN_IF_ERROR(hr_.FoldNoReset(a_net, kEmpty, idempotent));
  VIEWMAT_RETURN_IF_ERROR(pool->FlushAll());
  VIEWMAT_RETURN_IF_ERROR(hr_.mutable_ad()->LogFoldCommit(epoch_));
  fold_span.End();
  phase_ = RecoveryPhase::kNeedReset;
  return FinishReset();
}

Status HybridStrategy::FinishReset() {
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "refresh.ad_reset");
  storage::DiskInterface* disk = def_.base->pool()->disk();
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kBeforeAdReset));
  VIEWMAT_RETURN_IF_ERROR(hr_.mutable_ad()->Reset());
  phase_ = RecoveryPhase::kNone;
  ++refresh_count_;
  return Status::OK();
}

Status HybridStrategy::RebuildViewAndFold() {
  storage::BufferPool* pool = def_.base->pool();
  storage::DiskInterface* disk = pool->disk();
  VIEWMAT_RETURN_IF_ERROR(hr_.mutable_ad()->LogRefreshBegin(++epoch_));
  phase_ = RecoveryPhase::kNeedViewRebuild;
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kBeforeViewPatch));
  // The copy may be partially patched in an unknowable way: rebuild it from
  // the hypothetical relation (base untouched + all committed intents).
  VIEWMAT_RETURN_IF_ERROR(view_->Clear());
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(hr_.RangeScanByKey(
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::max(), [&](const db::Tuple& t) {
        db::Tuple value;
        if (def_.MapTuple(t, &value)) {
          inner = view_->ApplyInsert(value);
          if (!inner.ok()) return false;
        }
        return true;
      }));
  VIEWMAT_RETURN_IF_ERROR(inner);
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kAfterViewPatch));
  VIEWMAT_RETURN_IF_ERROR(pool->FlushAll());
  VIEWMAT_RETURN_IF_ERROR(hr_.mutable_ad()->LogViewPatched(epoch_));
  phase_ = RecoveryPhase::kNeedFold;
  std::vector<db::Tuple> a_net;
  std::vector<db::Tuple> d_net;
  VIEWMAT_RETURN_IF_ERROR(hr_.NetChanges(&a_net, &d_net));
  return FoldAndReset(a_net, d_net, /*idempotent=*/true);
}

Status HybridStrategy::RollForward() {
  switch (phase_) {
    case RecoveryPhase::kNone:
      return Status::OK();
    case RecoveryPhase::kNeedViewRebuild:
      return RebuildViewAndFold();
    case RecoveryPhase::kNeedFold: {
      std::vector<db::Tuple> a_net;
      std::vector<db::Tuple> d_net;
      VIEWMAT_RETURN_IF_ERROR(hr_.NetChanges(&a_net, &d_net));
      return FoldAndReset(a_net, d_net, /*idempotent=*/true);
    }
    case RecoveryPhase::kNeedReset:
      return FinishReset();
  }
  return Status::Internal("unreachable recovery phase");
}

Status HybridStrategy::Recover() {
  if (!crash_safe()) {
    return Status::FailedPrecondition(
        "hybrid strategy has no WAL (AdFile::Options::enable_wal)");
  }
  const storage::ScopedPhase phase_tag(tracker_,
                                       storage::Phase::kRefreshRecovery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "recover");
  ++recoveries_;
  hr::AdFile::RecoveryInfo info;
  VIEWMAT_RETURN_IF_ERROR(hr_.Recover(&info));
  // Durable floor, not the in-memory high water: under group commit the
  // in-memory counter runs ahead of the device (see DeferredStrategy).
  committed_txn_high_ = hr_.ad().durable_txn_floor();
  if (info.last_epoch_begun == 0) {
    phase_ = RecoveryPhase::kNone;
  } else if (info.fold_committed_epoch == info.last_epoch_begun) {
    phase_ = RecoveryPhase::kNeedReset;
  } else if (info.view_patched_epoch == info.last_epoch_begun) {
    phase_ = RecoveryPhase::kNeedFold;
  } else {
    phase_ = RecoveryPhase::kNeedViewRebuild;
  }
  if (info.last_epoch_begun > epoch_) epoch_ = info.last_epoch_begun;
  return RollForward();
}

Status HybridStrategy::Query(int64_t lo, int64_t hi,
                             const MaterializedView::CountedVisitor& visit) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  if (crash_safe() && stale()) {
    // An interrupted refresh (or untrusted AD file) invalidates both read
    // paths: QM would mis-merge a half-folded differential and the view may
    // be half-patched. Roll forward before choosing.
    VIEWMAT_RETURN_IF_ERROR(Recover());
  }
  // Space backstop (§4): an overfull differential forces a refresh.
  if (hr_.ad().entry_count() > max_pending_) {
    VIEWMAT_RETURN_IF_ERROR(Refresh());
    ++forced_refreshes_;
  }
  const Estimate est = EstimateQuery(lo, hi);
  if (est.qm_ms < est.view_ms) {
    // Query modification through the hypothetical relation: the view keeps
    // deferring its refresh.
    ++qm_choices_;
    return hr_.RangeScanByKey(lo, hi, [&](const db::Tuple& t) {
      if (tracker_ != nullptr) tracker_->ChargeTupleCpu();
      db::Tuple value;
      if (!def_.MapTuple(t, &value)) return true;
      return visit(value, 1);
    });
  }
  ++view_choices_;
  VIEWMAT_RETURN_IF_ERROR(Refresh());
  return view_->Query(lo, hi, visit);
}

}  // namespace viewmat::view
