#ifndef VIEWMAT_VIEW_SNAPSHOT_H_
#define VIEWMAT_VIEW_SNAPSHOT_H_

#include <cstdint>

#include "common/status.h"
#include "db/recovery.h"
#include "storage/cost_tracker.h"
#include "view/materialized_view.h"
#include "view/strategy.h"
#include "view/view_def.h"

namespace viewmat::view {

/// Database snapshots [Adib80, Lind86] — the third related-work scheme §1
/// surveys: a stored copy of a selection-projection view refreshed by full
/// recomputation on a fixed period, with *stale reads allowed* between
/// refreshes. Unlike the incremental strategies, a snapshot needs no
/// screening, no differential files, and no per-transaction work at all —
/// the price is bounded staleness and a periodic full-recompute bill.
class SnapshotStrategy : public ViewStrategy {
 public:
  struct Options {
    /// Queries between refreshes. 1 degenerates to recompute-per-query;
    /// large values trade staleness for cost.
    uint64_t refresh_every_queries = 10;
  };

  SnapshotStrategy(SelectProjectDef def, Options options,
                   storage::CostTracker* tracker);

  /// Builds the first snapshot (counts as refresh #1).
  Status InitializeFromBase();

  Status OnTransaction(const db::Transaction& txn) override;
  Status Query(int64_t lo, int64_t hi,
               const MaterializedView::CountedVisitor& visit) override;
  const char* name() const override { return "snapshot"; }

  /// Forces a refresh now (e.g. from an idle-time daemon).
  Status RefreshNow();

  /// Commit transactions through the recovery manager (atomic base writes).
  void AttachRecovery(db::RecoveryManager* rm) { recovery_ = rm; }

  /// Crash recovery: completes partially-applied committed transactions,
  /// then rebuilds the snapshot (a crash mid-RefreshNow leaves the copy
  /// partially rebuilt, and a snapshot's only repair is a fresh snapshot).
  Status Recover();

  /// Transactions committed since the last refresh — the staleness bound a
  /// reader currently observes.
  uint64_t stale_transactions() const { return stale_transactions_; }
  uint64_t refresh_count() const { return refresh_count_; }
  uint64_t queries_since_refresh() const { return queries_since_refresh_; }

 private:
  SelectProjectDef def_;
  Options options_;
  storage::CostTracker* tracker_;
  std::unique_ptr<MaterializedView> view_;
  db::RecoveryManager* recovery_ = nullptr;
  uint64_t stale_transactions_ = 0;
  uint64_t refresh_count_ = 0;
  uint64_t queries_since_refresh_ = 0;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_SNAPSHOT_H_
