#ifndef VIEWMAT_VIEW_SCREENING_H_
#define VIEWMAT_VIEW_SCREENING_H_

#include <cstdint>

#include "db/predicate.h"
#include "db/tuple.h"
#include "storage/cost_tracker.h"
#include "view/view_def.h"

namespace viewmat::view {

/// Two-stage update screening via rule indexing (§1, after [Ston86]):
///
///  Stage 1 — t-locks: the interval of the base relation's clustered index
///  covered by the view predicate is marked. A modified tuple whose key
///  falls outside every marked interval implicitly fails the screen at
///  essentially no cost (the index record it disturbs carries no lock).
///
///  Stage 2 — satisfiability: a tuple that breaks a t-lock is substituted
///  into the view predicate (cost C1, charged to the tracker). Survivors
///  are marked as relevant to the view; both maintenance engines only
///  process marked tuples.
///
/// Stage 1 can produce false drops (it covers a convex interval of a single
/// field) but never false negatives — guaranteed by
/// Predicate::ImpliedRange being conservative.
class TLockScreen {
 public:
  /// `lock_field` is the index (in the base schema) of the clustered field
  /// whose index carries the t-locks.
  TLockScreen(db::PredicateRef predicate, size_t lock_field,
              storage::CostTracker* tracker);

  static TLockScreen ForSelectProject(const SelectProjectDef& def,
                                      storage::CostTracker* tracker);
  static TLockScreen ForJoin(const JoinDef& def,
                             storage::CostTracker* tracker);
  static TLockScreen ForAggregate(const AggregateDef& def,
                                  storage::CostTracker* tracker);

  /// Full two-stage screen. Charges C1 only when stage 2 runs.
  bool Passes(const db::Tuple& t);

  /// Observability for tests and the screening ablation bench.
  uint64_t screened() const { return screened_; }
  uint64_t stage1_hits() const { return stage1_hits_; }
  uint64_t stage2_passes() const { return stage2_passes_; }
  /// The t-locked key ranges (exact, possibly several disjoint pieces).
  const db::IntervalSet& intervals() const { return intervals_; }
  /// Convex hull of the locked ranges (legacy single-interval view).
  db::Interval interval() const { return intervals_.Hull(); }

 private:
  db::PredicateRef predicate_;
  size_t lock_field_;
  db::IntervalSet intervals_;
  storage::CostTracker* tracker_;
  uint64_t screened_ = 0;
  uint64_t stage1_hits_ = 0;
  uint64_t stage2_passes_ = 0;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_SCREENING_H_
