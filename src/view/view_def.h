#ifndef VIEWMAT_VIEW_VIEW_DEF_H_
#define VIEWMAT_VIEW_VIEW_DEF_H_

#include <vector>

#include "common/status.h"
#include "db/predicate.h"
#include "db/relation.h"
#include "db/schema.h"
#include "db/tuple.h"
#include "storage/cost_tracker.h"

namespace viewmat::view {

/// Model 1 view: V = π_Y(σ_X(R)). `view_key_field` names the field (by
/// index into the projected schema) the materialized copy clusters on —
/// normally the predicate field, mirroring the paper's setup where both R
/// and V are clustered on the field the view predicate restricts.
struct SelectProjectDef {
  db::Relation* base = nullptr;
  db::PredicateRef predicate;        ///< selectivity-f predicate X over base
  std::vector<size_t> projection;    ///< Y: indices into base schema
  size_t view_key_field = 0;         ///< index into projection

  /// Schema of the view's tuples.
  db::Schema ViewSchema() const;

  /// Maps a base tuple through σ and π. Returns false when the tuple fails
  /// the predicate (then *out is untouched). Does not charge costs.
  bool MapTuple(const db::Tuple& base_tuple, db::Tuple* out) const;

  /// Index (within the base schema) of the field the view clusters on.
  size_t BaseKeyField() const { return projection[view_key_field]; }

  Status Validate() const;
};

/// Model 2 view: the natural join of R1 and R2 on a key of R2, restricted
/// by a clause C_f on R1. Only R1 is updated. Every C_f-satisfying R1 tuple
/// joins at most one R2 tuple (R2's join field is its clustering key).
struct JoinDef {
  db::Relation* r1 = nullptr;  ///< clustered B+-tree on the C_f field
  db::Relation* r2 = nullptr;  ///< clustered hash on the join field
  db::PredicateRef cf;         ///< restriction over R1's schema
  size_t r1_join_field = 0;    ///< join attribute in R1's schema
  std::vector<size_t> r1_projection;  ///< indices into R1's schema
  std::vector<size_t> r2_projection;  ///< indices into R2's schema
  size_t view_key_field = 0;   ///< index into the combined projection

  db::Schema ViewSchema() const;

  /// Joins one R1 tuple against R2 through the hash index: returns true and
  /// fills *out when the tuple satisfies C_f and a join partner exists.
  /// Charges one C1 tuple-CPU op for the match when `tracker` is non-null
  /// (the probe's I/O is charged by the hash index itself).
  StatusOr<bool> MapTuple(const db::Tuple& r1_tuple, db::Tuple* out,
                          storage::CostTracker* tracker) const;

  Status Validate() const;
};

/// Supported incrementally-maintainable aggregates (Model 3).
enum class AggregateOp { kCount, kSum, kAvg, kMin, kMax };

const char* AggregateOpName(AggregateOp op);

/// Model 3 view: an aggregate over a Model-1-style selection. Only the
/// aggregate's state is materialized (one page), never the selected tuples.
struct AggregateDef {
  db::Relation* base = nullptr;
  db::PredicateRef predicate;  ///< selectivity-f predicate over base
  AggregateOp op = AggregateOp::kSum;
  size_t agg_field = 0;        ///< base-schema field being aggregated

  Status Validate() const;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_VIEW_DEF_H_
