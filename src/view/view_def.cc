#include "view/view_def.h"

#include "common/logging.h"

namespace viewmat::view {

db::Schema SelectProjectDef::ViewSchema() const {
  return base->schema().Project(projection);
}

bool SelectProjectDef::MapTuple(const db::Tuple& base_tuple,
                                db::Tuple* out) const {
  if (!predicate->Evaluate(base_tuple)) return false;
  *out = base_tuple.Project(projection);
  return true;
}

Status SelectProjectDef::Validate() const {
  if (base == nullptr) return Status::InvalidArgument("base relation unset");
  if (predicate == nullptr) return Status::InvalidArgument("predicate unset");
  if (projection.empty()) return Status::InvalidArgument("empty projection");
  for (const size_t i : projection) {
    if (i >= base->schema().field_count()) {
      return Status::InvalidArgument("projection index out of range");
    }
  }
  if (view_key_field >= projection.size()) {
    return Status::InvalidArgument("view key field out of range");
  }
  if (base->schema().field(projection[view_key_field]).type !=
      db::ValueType::kInt64) {
    return Status::InvalidArgument("view clustering field must be int64");
  }
  return Status::OK();
}

db::Schema JoinDef::ViewSchema() const {
  const db::Schema left = r1->schema().Project(r1_projection);
  const db::Schema right = r2->schema().Project(r2_projection);
  return db::Schema::Concat(left, r1->name(), right, r2->name());
}

StatusOr<bool> JoinDef::MapTuple(const db::Tuple& r1_tuple, db::Tuple* out,
                                 storage::CostTracker* tracker) const {
  if (!cf->Evaluate(r1_tuple)) return false;
  const int64_t join_key = r1_tuple.at(r1_join_field).AsInt64();
  db::Tuple partner;
  const Status st = r2->FindByKey(join_key, &partner);
  if (st.code() == StatusCode::kNotFound) return false;
  VIEWMAT_RETURN_IF_ERROR(st);
  if (tracker != nullptr) tracker->ChargeTupleCpu();
  *out = db::Tuple::Concat(r1_tuple.Project(r1_projection),
                           partner.Project(r2_projection));
  return true;
}

Status JoinDef::Validate() const {
  if (r1 == nullptr || r2 == nullptr) {
    return Status::InvalidArgument("join relations unset");
  }
  if (cf == nullptr) return Status::InvalidArgument("C_f predicate unset");
  if (r1_join_field >= r1->schema().field_count()) {
    return Status::InvalidArgument("r1 join field out of range");
  }
  if (r2->key_field() >= r2->schema().field_count()) {
    return Status::InvalidArgument("r2 key field out of range");
  }
  if (r1_projection.empty() && r2_projection.empty()) {
    return Status::InvalidArgument("empty projection");
  }
  const size_t total = r1_projection.size() + r2_projection.size();
  if (view_key_field >= total) {
    return Status::InvalidArgument("view key field out of range");
  }
  return Status::OK();
}

const char* AggregateOpName(AggregateOp op) {
  switch (op) {
    case AggregateOp::kCount:
      return "count";
    case AggregateOp::kSum:
      return "sum";
    case AggregateOp::kAvg:
      return "avg";
    case AggregateOp::kMin:
      return "min";
    case AggregateOp::kMax:
      return "max";
  }
  return "?";
}

Status AggregateDef::Validate() const {
  if (base == nullptr) return Status::InvalidArgument("base relation unset");
  if (predicate == nullptr) return Status::InvalidArgument("predicate unset");
  if (agg_field >= base->schema().field_count()) {
    return Status::InvalidArgument("aggregate field out of range");
  }
  const db::ValueType t = base->schema().field(agg_field).type;
  if (t == db::ValueType::kString && op != AggregateOp::kCount) {
    return Status::InvalidArgument("cannot aggregate a string field");
  }
  return Status::OK();
}

}  // namespace viewmat::view
