#include "view/query_modification.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace viewmat::view {

QmSelectProjectStrategy::QmSelectProjectStrategy(
    SelectProjectDef def, storage::CostTracker* tracker,
    bool force_sequential)
    : def_(std::move(def)),
      tracker_(tracker),
      force_sequential_(force_sequential) {
  VIEWMAT_CHECK(def_.Validate().ok());
  // A key-range query is only meaningful when the view clusters on the
  // base relation's key field.
  VIEWMAT_CHECK(def_.BaseKeyField() == def_.base->key_field());
}

Status QmSelectProjectStrategy::OnTransaction(const db::Transaction& txn) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kUpdateApply);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "txn");
  // No materialized copy: updates flow straight to the base relations
  // (atomically, through the WAL, when a recovery manager is attached).
  if (recovery_ != nullptr) return recovery_->CommitAndApply(txn);
  return txn.ApplyToBase();
}

Status QmSelectProjectStrategy::Recover() {
  if (recovery_ == nullptr) {
    return Status::FailedPrecondition(
        "no recovery manager attached to the query-modification strategy");
  }
  return recovery_->Recover();
}

Status QmSelectProjectStrategy::Query(
    int64_t lo, int64_t hi, const MaterializedView::CountedVisitor& visit) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  // Modified query: σ_{X ∧ key∈[lo,hi]}(R), projected. Each value is
  // emitted with count 1; projection duplicates appear as repeated values.
  auto emit = [&](const db::Tuple& base_tuple) {
    if (tracker_ != nullptr) tracker_->ChargeTupleCpu();  // predicate screen
    db::Tuple value;
    if (!def_.MapTuple(base_tuple, &value)) return true;
    return visit(value, 1);
  };
  const bool sequential =
      force_sequential_ ||
      def_.base->method() == db::AccessMethod::kClusteredHash;
  if (sequential) {
    const size_t key_field = def_.base->key_field();
    return def_.base->Scan([&](const db::Tuple& t) {
      const int64_t key = t.at(key_field).AsInt64();
      if (key < lo || key > hi) {
        if (tracker_ != nullptr) tracker_->ChargeTupleCpu();
        return true;
      }
      return emit(t);
    });
  }
  // Clustered (B+-tree) or unclustered (heap + secondary) range plan.
  return def_.base->RangeScanByKey(lo, hi, emit);
}

QmJoinStrategy::QmJoinStrategy(JoinDef def, storage::CostTracker* tracker)
    : def_(std::move(def)), tracker_(tracker) {
  VIEWMAT_CHECK(def_.Validate().ok());
  // The view-key range must map onto R1's clustering field: the view key is
  // the view_key_field-th projected column and must come from R1.
  VIEWMAT_CHECK(def_.view_key_field < def_.r1_projection.size());
  VIEWMAT_CHECK(def_.r1_projection[def_.view_key_field] ==
                def_.r1->key_field());
}

Status QmJoinStrategy::OnTransaction(const db::Transaction& txn) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kUpdateApply);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "txn");
  if (recovery_ != nullptr) return recovery_->CommitAndApply(txn);
  return txn.ApplyToBase();
}

Status QmJoinStrategy::Recover() {
  if (recovery_ == nullptr) {
    return Status::FailedPrecondition(
        "no recovery manager attached to the query-modification strategy");
  }
  return recovery_->Recover();
}

Status QmJoinStrategy::Query(int64_t lo, int64_t hi,
                             const MaterializedView::CountedVisitor& visit) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  // Nested loops: outer = clustered scan of R1 restricted to the queried
  // key range; inner = hash probe into R2 per surviving outer tuple.
  return def_.r1->RangeScanByKey(lo, hi, [&](const db::Tuple& r1_tuple) {
    if (tracker_ != nullptr) tracker_->ChargeTupleCpu();  // screen vs C_f
    db::Tuple value;
    auto mapped = def_.MapTuple(r1_tuple, &value, tracker_);
    if (!mapped.ok() || !*mapped) return true;
    return visit(value, 1);
  });
}

}  // namespace viewmat::view
