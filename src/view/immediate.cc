#include "view/immediate.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace viewmat::view {

namespace {

TLockScreen MakeScreen(const std::variant<SelectProjectDef, JoinDef>& def,
                       storage::CostTracker* tracker) {
  if (std::holds_alternative<SelectProjectDef>(def)) {
    return TLockScreen::ForSelectProject(std::get<SelectProjectDef>(def),
                                         tracker);
  }
  return TLockScreen::ForJoin(std::get<JoinDef>(def), tracker);
}

std::unique_ptr<MaterializedView> MakeView(
    const std::variant<SelectProjectDef, JoinDef>& def,
    const std::string& name) {
  if (std::holds_alternative<SelectProjectDef>(def)) {
    const auto& sp = std::get<SelectProjectDef>(def);
    return std::make_unique<MaterializedView>(sp.base->pool(), name,
                                              sp.ViewSchema(),
                                              sp.view_key_field);
  }
  const auto& j = std::get<JoinDef>(def);
  return std::make_unique<MaterializedView>(j.r1->pool(), name,
                                            j.ViewSchema(), j.view_key_field);
}

}  // namespace

ImmediateStrategy::ImmediateStrategy(SelectProjectDef def,
                                     storage::CostTracker* tracker)
    : def_(std::move(def)),
      tracker_(tracker),
      screen_(MakeScreen(def_, tracker)) {
  VIEWMAT_CHECK(std::get<SelectProjectDef>(def_).Validate().ok());
  view_ = MakeView(def_, "immediate_view");
}

ImmediateStrategy::ImmediateStrategy(JoinDef def,
                                     storage::CostTracker* tracker)
    : def_(std::move(def)),
      tracker_(tracker),
      screen_(MakeScreen(def_, tracker)) {
  VIEWMAT_CHECK(std::get<JoinDef>(def_).Validate().ok());
  view_ = MakeView(def_, "immediate_view");
}

db::Relation* ImmediateStrategy::UpdatedRelation() const {
  if (std::holds_alternative<SelectProjectDef>(def_)) {
    return std::get<SelectProjectDef>(def_).base;
  }
  return std::get<JoinDef>(def_).r1;
}

StatusOr<bool> ImmediateStrategy::Map(const db::Tuple& t, db::Tuple* out) {
  if (std::holds_alternative<SelectProjectDef>(def_)) {
    return std::get<SelectProjectDef>(def_).MapTuple(t, out);
  }
  return std::get<JoinDef>(def_).MapTuple(t, out, tracker_);
}

Status ImmediateStrategy::InitializeFromBase() {
  VIEWMAT_RETURN_IF_ERROR(view_->Clear());
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(UpdatedRelation()->Scan([&](const db::Tuple& t) {
    db::Tuple value;
    auto mapped = Map(t, &value);
    if (!mapped.ok()) {
      inner = mapped.status();
      return false;
    }
    if (*mapped) {
      inner = view_->ApplyInsert(value);
      if (!inner.ok()) return false;
    }
    return true;
  }));
  return inner;
}

Status ImmediateStrategy::OnTransaction(const db::Transaction& txn) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kUpdateApply);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "txn");
  if (needs_recovery()) {
    return Status::FailedPrecondition(
        "immediate strategy needs Recover() before new transactions");
  }
  // The transaction commits against the base relations first — atomically,
  // when a recovery manager is attached.
  if (recovery_ != nullptr) {
    VIEWMAT_RETURN_IF_ERROR(recovery_->CommitAndApply(txn));
  } else {
    VIEWMAT_RETURN_IF_ERROR(txn.ApplyToBase());
  }
  // From here the base holds the transaction; any failure before the view
  // patch completes leaves the copy behind it.
  Status patched = PatchView(txn);
  if (!patched.ok() && recovery_ != nullptr) view_dirty_ = true;
  return patched;
}

Status ImmediateStrategy::PatchView(const db::Transaction& txn) {
  const db::NetChange& net = txn.ChangesFor(UpdatedRelation());
  if (net.empty()) return Status::OK();

  std::vector<db::Tuple> view_inserts;
  std::vector<db::Tuple> view_deletes;
  for (const db::Tuple& t : net.deletes()) {
    if (!screen_.Passes(t)) continue;
    if (tracker_ != nullptr) tracker_->ChargeAdSetOp();  // D-set upkeep (C3)
    db::Tuple value;
    VIEWMAT_ASSIGN_OR_RETURN(const bool contributes, Map(t, &value));
    if (contributes) view_deletes.push_back(std::move(value));
  }
  for (const db::Tuple& t : net.inserts()) {
    if (!screen_.Passes(t)) continue;
    if (tracker_ != nullptr) tracker_->ChargeAdSetOp();  // A-set upkeep (C3)
    db::Tuple value;
    VIEWMAT_ASSIGN_OR_RETURN(const bool contributes, Map(t, &value));
    if (contributes) view_inserts.push_back(std::move(value));
  }
  ++refresh_count_;
  return view_->ApplyDelta(view_inserts, view_deletes);
}

Status ImmediateStrategy::Recover() {
  if (recovery_ == nullptr) {
    return Status::FailedPrecondition(
        "no recovery manager attached to the immediate strategy");
  }
  VIEWMAT_RETURN_IF_ERROR(recovery_->Recover());
  VIEWMAT_RETURN_IF_ERROR(InitializeFromBase());
  view_dirty_ = false;
  return Status::OK();
}

Status ImmediateStrategy::Query(int64_t lo, int64_t hi,
                                const MaterializedView::CountedVisitor& visit) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  if (needs_recovery()) {
    return Status::FailedPrecondition(
        "immediate strategy needs Recover() before queries");
  }
  // The copy is always current: a query is a plain clustered view scan.
  return view_->Query(lo, hi, visit);
}

}  // namespace viewmat::view
