#ifndef VIEWMAT_VIEW_DEFERRED_H_
#define VIEWMAT_VIEW_DEFERRED_H_

#include <variant>

#include "common/status.h"
#include "hr/hypothetical_relation.h"
#include "storage/cost_tracker.h"
#include "view/materialized_view.h"
#include "view/screening.h"
#include "view/strategy.h"
#include "view/view_def.h"

namespace viewmat::view {

/// Where a crash-interrupted refresh left the deferred strategy. Derived
/// from the AD file's durable WAL markers at recovery time, never from
/// in-memory state:
///  - kNeedViewRebuild: a kRefreshBegin has no matching kViewPatched — the
///    view copy may be partially patched and must be rebuilt from the
///    hypothetical relation (base is untouched, so QM over base ∪ AD is the
///    safe degraded read).
///  - kNeedFold: kViewPatched is durable but kFoldCommit is not — the view
///    is fully patched; the base fold must be re-run idempotently (the view
///    itself is the safe degraded read; QM would double-count tuples a
///    partial fold already landed).
///  - kNeedReset: kFoldCommit is durable — only the AD reset remains.
enum class RecoveryPhase : uint8_t {
  kNone = 0,
  kNeedViewRebuild,
  kNeedFold,
  kNeedReset,
};

inline const char* RecoveryPhaseName(RecoveryPhase p) {
  switch (p) {
    case RecoveryPhase::kNone: return "none";
    case RecoveryPhase::kNeedViewRebuild: return "need-view-rebuild";
    case RecoveryPhase::kNeedFold: return "need-fold";
    case RecoveryPhase::kNeedReset: return "need-reset";
  }
  return "unknown";
}

/// Deferred view maintenance (§2.2, the paper's proposal): a materialized
/// copy exists, but refresh is postponed until just before a query reads
/// the view. Update transactions are absorbed into the base relation's
/// hypothetical-relation differential (the AD file); tuples are screened at
/// update time with t-lock rule indexing. At query time the accumulated
/// A-net/D-net are read in one pass, folded into the base relation
/// (R := (R ∪ A) − D), mapped into view deltas, and applied with the
/// counting algorithm — then the query runs against the fresh copy.
///
/// Batching is the point: the Yao function is subadditive, so patching the
/// view once with u accumulated tuples touches no more pages than patching
/// it k/q separate times (§4's triangle-inequality argument).
///
/// Crash safety (AdFile::Options::enable_wal): refresh becomes a journaled
/// two-phase protocol — patch the view copy, then fold the base and reset
/// the AD file — with a durable marker after each phase. A crash at any
/// point rolls forward on Recover(). While an interrupted refresh is
/// outstanding, Query() degrades by phase (see RecoveryPhase) after a
/// bounded number of recovery attempts instead of failing, and
/// OnTransaction() insists on rolling forward first once the fold has
/// started (mixing new intents into a half-folded epoch is unsound).
class DeferredStrategy : public ViewStrategy {
 public:
  DeferredStrategy(SelectProjectDef def, hr::AdFile::Options ad_options,
                   storage::CostTracker* tracker);
  DeferredStrategy(JoinDef def, hr::AdFile::Options ad_options,
                   storage::CostTracker* tracker);

  /// Builds the stored copy from the current base state (run pre-workload).
  Status InitializeFromBase();

  Status OnTransaction(const db::Transaction& txn) override;
  Status Query(int64_t lo, int64_t hi,
               const MaterializedView::CountedVisitor& visit) override;
  const char* name() const override { return "deferred"; }

  /// Applies all pending differential work now. Normally driven by Query —
  /// exposed so callers can refresh during idle time (§4 discusses
  /// asynchronous refresh as an optimization). In crash-safe mode this runs
  /// the journaled protocol and rolls forward any interrupted epoch first.
  Status Refresh();

  /// Crash recovery: rebuilds the AD file from its WAL, derives the
  /// interrupted refresh phase from the durable markers, and rolls the
  /// protocol forward to completion. Idempotent; FailedPrecondition when
  /// the WAL is disabled.
  Status Recover();

  MaterializedView* view() { return view_.get(); }
  hr::HypotheticalRelation* hypothetical() { return &hr_; }
  const TLockScreen& screen() const { return screen_; }
  uint64_t refresh_count() const { return refresh_count_; }
  uint64_t pending_tuples() const { return hr_.ad().entry_count(); }

  /// True when the WAL-backed protocol is active.
  bool crash_safe() const { return hr_.ad().wal_enabled(); }
  RecoveryPhase phase() const { return phase_; }
  /// True when the copy cannot be served as-is (interrupted refresh or an
  /// AD file that must be rebuilt from its log).
  bool stale() const {
    return phase_ != RecoveryPhase::kNone || hr_.ad().needs_recovery();
  }
  uint64_t refresh_epoch() const { return epoch_; }
  uint64_t degraded_queries() const { return degraded_queries_; }
  uint64_t recoveries() const { return recoveries_; }

  /// Transaction ids issued so far (crash-safe mode). An OnTransaction()
  /// error with txn_seq() unchanged means the transaction was rejected
  /// before its commit record could possibly land.
  uint64_t txn_seq() const { return txn_seq_; }
  /// Highest transaction id known durably committed — advanced by an
  /// acknowledged commit or by Recover() reading the commit record from the
  /// log. Resolves ambiguous OnTransaction() failures: after a successful
  /// Recover(), the transaction committed iff its id is ≤ this water mark.
  uint64_t committed_txn_high_water() const { return committed_txn_high_; }

 private:
  /// Recovery attempts per Query()/OnTransaction() before degrading or
  /// rejecting — the "bounded retry" of the degradation contract. Each
  /// attempt re-drives the roll-forward, so transient injected faults are
  /// ridden out while a hard-down device fails fast.
  static constexpr int kMaxRecoveryAttempts = 3;

  db::Relation* UpdatedRelation() const;
  StatusOr<bool> Map(const db::Tuple& t, db::Tuple* out);

  /// Non-journaled single-shot refresh (WAL disabled): the original
  /// fold-then-patch path.
  Status RefreshUnsafe();

  /// Journaled protocol from a clean state: computes deltas, then
  /// patch-view / fold / reset with markers and crash points.
  Status RefreshSafe();

  /// Rolls the protocol forward from phase_. Assumes the AD file is
  /// trustworthy (recovered or never damaged).
  Status RollForward();

  /// kNeedViewRebuild roll-forward: re-begins the epoch, rebuilds the view
  /// copy from the hypothetical relation, then folds.
  Status RebuildViewAndFold();

  /// kNeedFold roll-forward: idempotent base fold of the current AD nets,
  /// fold-commit marker, then reset.
  Status FoldAndReset(const std::vector<db::Tuple>& a_net,
                      const std::vector<db::Tuple>& d_net, bool idempotent);

  /// kNeedReset roll-forward: AD reset (clears hash + Bloom, truncates the
  /// WAL) and epoch completion.
  Status FinishReset();

  /// Recover()/Refresh() until consistent, bounded by kMaxRecoveryAttempts.
  Status EnsureFresh();

  /// Phase-appropriate degraded read (see RecoveryPhase docs).
  Status DegradedQuery(int64_t lo, int64_t hi,
                       const MaterializedView::CountedVisitor& visit);

  /// Query modification over base ∪ AD: full HR scan, map, filter to the
  /// queried view-key range. Emits count-1 duplicates like the QM
  /// strategies.
  Status QueryViaModification(int64_t lo, int64_t hi,
                              const MaterializedView::CountedVisitor& visit);

  std::variant<SelectProjectDef, JoinDef> def_;
  storage::CostTracker* tracker_;
  TLockScreen screen_;
  hr::HypotheticalRelation hr_;
  std::unique_ptr<MaterializedView> view_;
  uint64_t refresh_count_ = 0;

  RecoveryPhase phase_ = RecoveryPhase::kNone;
  uint64_t epoch_ = 0;     ///< last refresh epoch begun
  uint64_t txn_seq_ = 0;   ///< commit-record ids (crash-safe mode)
  uint64_t committed_txn_high_ = 0;  ///< see committed_txn_high_water()
  uint64_t degraded_queries_ = 0;
  uint64_t recoveries_ = 0;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_DEFERRED_H_
