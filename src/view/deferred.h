#ifndef VIEWMAT_VIEW_DEFERRED_H_
#define VIEWMAT_VIEW_DEFERRED_H_

#include <variant>

#include "common/status.h"
#include "hr/hypothetical_relation.h"
#include "storage/cost_tracker.h"
#include "view/materialized_view.h"
#include "view/screening.h"
#include "view/strategy.h"
#include "view/view_def.h"

namespace viewmat::view {

/// Deferred view maintenance (§2.2, the paper's proposal): a materialized
/// copy exists, but refresh is postponed until just before a query reads
/// the view. Update transactions are absorbed into the base relation's
/// hypothetical-relation differential (the AD file); tuples are screened at
/// update time with t-lock rule indexing. At query time the accumulated
/// A-net/D-net are read in one pass, folded into the base relation
/// (R := (R ∪ A) − D), mapped into view deltas, and applied with the
/// counting algorithm — then the query runs against the fresh copy.
///
/// Batching is the point: the Yao function is subadditive, so patching the
/// view once with u accumulated tuples touches no more pages than patching
/// it k/q separate times (§4's triangle-inequality argument).
class DeferredStrategy : public ViewStrategy {
 public:
  DeferredStrategy(SelectProjectDef def, hr::AdFile::Options ad_options,
                   storage::CostTracker* tracker);
  DeferredStrategy(JoinDef def, hr::AdFile::Options ad_options,
                   storage::CostTracker* tracker);

  /// Builds the stored copy from the current base state (run pre-workload).
  Status InitializeFromBase();

  Status OnTransaction(const db::Transaction& txn) override;
  Status Query(int64_t lo, int64_t hi,
               const MaterializedView::CountedVisitor& visit) override;
  const char* name() const override { return "deferred"; }

  /// Applies all pending differential work now. Normally driven by Query —
  /// exposed so callers can refresh during idle time (§4 discusses
  /// asynchronous refresh as an optimization).
  Status Refresh();

  MaterializedView* view() { return view_.get(); }
  hr::HypotheticalRelation* hypothetical() { return &hr_; }
  const TLockScreen& screen() const { return screen_; }
  uint64_t refresh_count() const { return refresh_count_; }
  uint64_t pending_tuples() const { return hr_.ad().entry_count(); }

 private:
  db::Relation* UpdatedRelation() const;
  StatusOr<bool> Map(const db::Tuple& t, db::Tuple* out);

  std::variant<SelectProjectDef, JoinDef> def_;
  storage::CostTracker* tracker_;
  TLockScreen screen_;
  hr::HypotheticalRelation hr_;
  std::unique_ptr<MaterializedView> view_;
  uint64_t refresh_count_ = 0;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_DEFERRED_H_
