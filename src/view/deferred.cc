#include "view/deferred.h"

#include "common/logging.h"

namespace viewmat::view {

namespace {

db::Relation* UpdatedOf(const std::variant<SelectProjectDef, JoinDef>& def) {
  if (std::holds_alternative<SelectProjectDef>(def)) {
    return std::get<SelectProjectDef>(def).base;
  }
  return std::get<JoinDef>(def).r1;
}

TLockScreen MakeScreen(const std::variant<SelectProjectDef, JoinDef>& def,
                       storage::CostTracker* tracker) {
  if (std::holds_alternative<SelectProjectDef>(def)) {
    return TLockScreen::ForSelectProject(std::get<SelectProjectDef>(def),
                                         tracker);
  }
  return TLockScreen::ForJoin(std::get<JoinDef>(def), tracker);
}

std::unique_ptr<MaterializedView> MakeView(
    const std::variant<SelectProjectDef, JoinDef>& def,
    const std::string& name) {
  if (std::holds_alternative<SelectProjectDef>(def)) {
    const auto& sp = std::get<SelectProjectDef>(def);
    return std::make_unique<MaterializedView>(sp.base->pool(), name,
                                              sp.ViewSchema(),
                                              sp.view_key_field);
  }
  const auto& j = std::get<JoinDef>(def);
  return std::make_unique<MaterializedView>(j.r1->pool(), name,
                                            j.ViewSchema(), j.view_key_field);
}

}  // namespace

DeferredStrategy::DeferredStrategy(SelectProjectDef def,
                                   hr::AdFile::Options ad_options,
                                   storage::CostTracker* tracker)
    : def_(std::move(def)),
      tracker_(tracker),
      screen_(MakeScreen(def_, tracker)),
      hr_(UpdatedOf(def_), ad_options) {
  VIEWMAT_CHECK(std::get<SelectProjectDef>(def_).Validate().ok());
  view_ = MakeView(def_, "deferred_view");
}

DeferredStrategy::DeferredStrategy(JoinDef def, hr::AdFile::Options ad_options,
                                   storage::CostTracker* tracker)
    : def_(std::move(def)),
      tracker_(tracker),
      screen_(MakeScreen(def_, tracker)),
      hr_(UpdatedOf(def_), ad_options) {
  VIEWMAT_CHECK(std::get<JoinDef>(def_).Validate().ok());
  view_ = MakeView(def_, "deferred_view");
}

db::Relation* DeferredStrategy::UpdatedRelation() const {
  return UpdatedOf(def_);
}

StatusOr<bool> DeferredStrategy::Map(const db::Tuple& t, db::Tuple* out) {
  if (std::holds_alternative<SelectProjectDef>(def_)) {
    return std::get<SelectProjectDef>(def_).MapTuple(t, out);
  }
  return std::get<JoinDef>(def_).MapTuple(t, out, tracker_);
}

Status DeferredStrategy::InitializeFromBase() {
  VIEWMAT_RETURN_IF_ERROR(view_->Clear());
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(UpdatedRelation()->Scan([&](const db::Tuple& t) {
    db::Tuple value;
    auto mapped = Map(t, &value);
    if (!mapped.ok()) {
      inner = mapped.status();
      return false;
    }
    if (*mapped) {
      inner = view_->ApplyInsert(value);
      if (!inner.ok()) return false;
    }
    return true;
  }));
  return inner;
}

Status DeferredStrategy::OnTransaction(const db::Transaction& txn) {
  const db::NetChange& net = txn.ChangesFor(UpdatedRelation());
  if (net.empty()) return Status::OK();
  // The paper's per-tuple update procedure, I/O #1: read the tuple being
  // modified through the hypothetical relation (Bloom screen, AD probe when
  // admitted, base read).
  for (const db::Tuple& t : net.deletes()) {
    VIEWMAT_RETURN_IF_ERROR(hr_.FindAllByKey(
        t.at(UpdatedRelation()->key_field()).AsInt64(),
        [](const db::Tuple&) { return false; }));
  }
  // Screening happens at update time: survivors get their view marker (the
  // mark is re-derivable from the predicate, so no separate store needed —
  // the C1 stage-2 charge happens here, once).
  for (const db::Tuple& t : net.deletes()) screen_.Passes(t);
  for (const db::Tuple& t : net.inserts()) screen_.Passes(t);
  // I/O #2 and #3: land the changes in the AD differential file.
  return hr_.RecordChanges(net);
}

Status DeferredStrategy::Refresh() {
  if (hr_.ad().entry_count() == 0) return Status::OK();
  std::vector<db::Tuple> a_net;
  std::vector<db::Tuple> d_net;
  // One pass over the AD file (C_ADread), fold into the base relation, and
  // reset the differential.
  VIEWMAT_RETURN_IF_ERROR(hr_.Fold(&a_net, &d_net));
  // Only marked (view-relevant) tuples produce view deltas; Map re-checks
  // the predicate without re-charging the screen.
  std::vector<db::Tuple> view_inserts;
  std::vector<db::Tuple> view_deletes;
  for (const db::Tuple& t : d_net) {
    db::Tuple value;
    VIEWMAT_ASSIGN_OR_RETURN(const bool contributes, Map(t, &value));
    if (contributes) view_deletes.push_back(std::move(value));
  }
  for (const db::Tuple& t : a_net) {
    db::Tuple value;
    VIEWMAT_ASSIGN_OR_RETURN(const bool contributes, Map(t, &value));
    if (contributes) view_inserts.push_back(std::move(value));
  }
  ++refresh_count_;
  return view_->ApplyDelta(view_inserts, view_deletes);
}

Status DeferredStrategy::Query(int64_t lo, int64_t hi,
                               const MaterializedView::CountedVisitor& visit) {
  VIEWMAT_RETURN_IF_ERROR(Refresh());
  return view_->Query(lo, hi, visit);
}

}  // namespace viewmat::view
