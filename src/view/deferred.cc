#include "view/deferred.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "obs/trace.h"

namespace viewmat::view {

namespace {

using storage::CrashPoint;

db::Relation* UpdatedOf(const std::variant<SelectProjectDef, JoinDef>& def) {
  if (std::holds_alternative<SelectProjectDef>(def)) {
    return std::get<SelectProjectDef>(def).base;
  }
  return std::get<JoinDef>(def).r1;
}

TLockScreen MakeScreen(const std::variant<SelectProjectDef, JoinDef>& def,
                       storage::CostTracker* tracker) {
  if (std::holds_alternative<SelectProjectDef>(def)) {
    return TLockScreen::ForSelectProject(std::get<SelectProjectDef>(def),
                                         tracker);
  }
  return TLockScreen::ForJoin(std::get<JoinDef>(def), tracker);
}

std::unique_ptr<MaterializedView> MakeView(
    const std::variant<SelectProjectDef, JoinDef>& def,
    const std::string& name) {
  if (std::holds_alternative<SelectProjectDef>(def)) {
    const auto& sp = std::get<SelectProjectDef>(def);
    return std::make_unique<MaterializedView>(sp.base->pool(), name,
                                              sp.ViewSchema(),
                                              sp.view_key_field);
  }
  const auto& j = std::get<JoinDef>(def);
  return std::make_unique<MaterializedView>(j.r1->pool(), name,
                                            j.ViewSchema(), j.view_key_field);
}

}  // namespace

DeferredStrategy::DeferredStrategy(SelectProjectDef def,
                                   hr::AdFile::Options ad_options,
                                   storage::CostTracker* tracker)
    : def_(std::move(def)),
      tracker_(tracker),
      screen_(MakeScreen(def_, tracker)),
      hr_(UpdatedOf(def_), ad_options) {
  VIEWMAT_CHECK(std::get<SelectProjectDef>(def_).Validate().ok());
  view_ = MakeView(def_, "deferred_view");
}

DeferredStrategy::DeferredStrategy(JoinDef def, hr::AdFile::Options ad_options,
                                   storage::CostTracker* tracker)
    : def_(std::move(def)),
      tracker_(tracker),
      screen_(MakeScreen(def_, tracker)),
      hr_(UpdatedOf(def_), ad_options) {
  VIEWMAT_CHECK(std::get<JoinDef>(def_).Validate().ok());
  view_ = MakeView(def_, "deferred_view");
}

db::Relation* DeferredStrategy::UpdatedRelation() const {
  return UpdatedOf(def_);
}

StatusOr<bool> DeferredStrategy::Map(const db::Tuple& t, db::Tuple* out) {
  if (std::holds_alternative<SelectProjectDef>(def_)) {
    return std::get<SelectProjectDef>(def_).MapTuple(t, out);
  }
  return std::get<JoinDef>(def_).MapTuple(t, out, tracker_);
}

Status DeferredStrategy::InitializeFromBase() {
  VIEWMAT_RETURN_IF_ERROR(view_->Clear());
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(UpdatedRelation()->Scan([&](const db::Tuple& t) {
    db::Tuple value;
    auto mapped = Map(t, &value);
    if (!mapped.ok()) {
      inner = mapped.status();
      return false;
    }
    if (*mapped) {
      inner = view_->ApplyInsert(value);
      if (!inner.ok()) return false;
    }
    return true;
  }));
  return inner;
}

Status DeferredStrategy::OnTransaction(const db::Transaction& txn) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kUpdateApply);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "txn");
  const db::NetChange& net = txn.ChangesFor(UpdatedRelation());
  if (net.empty()) return Status::OK();
  if (crash_safe() &&
      (phase_ == RecoveryPhase::kNeedFold ||
       phase_ == RecoveryPhase::kNeedReset || hr_.ad().needs_recovery())) {
    // Once the fold has started (or the AD file is untrusted), new intents
    // cannot be mixed into the half-applied epoch: roll forward first, and
    // reject the transaction if the device will not let us.
    const Status recovered = Recover();
    if (!recovered.ok()) {
      return Status::FailedPrecondition(
          "transaction rejected: interrupted refresh could not be rolled "
          "forward (" +
          recovered.message() + ")");
    }
  }
  // The paper's per-tuple update procedure, I/O #1: read the tuple being
  // modified through the hypothetical relation (Bloom screen, AD probe when
  // admitted, base read).
  for (const db::Tuple& t : net.deletes()) {
    VIEWMAT_RETURN_IF_ERROR(hr_.FindAllByKey(
        t.at(UpdatedRelation()->key_field()).AsInt64(),
        [](const db::Tuple&) { return false; }));
  }
  // Screening happens at update time: survivors get their view marker (the
  // mark is re-derivable from the predicate, so no separate store needed —
  // the C1 stage-2 charge happens here, once).
  for (const db::Tuple& t : net.deletes()) screen_.Passes(t);
  for (const db::Tuple& t : net.inserts()) screen_.Passes(t);
  // I/O #2 and #3: land the changes in the AD differential file — through
  // the WAL (intents + commit record) when crash safety is on.
  if (crash_safe()) {
    const Status st = hr_.RecordChangesCommitted(net, ++txn_seq_);
    if (st.ok() && txn_seq_ > committed_txn_high_) {
      committed_txn_high_ = txn_seq_;
    }
    return st;
  }
  return hr_.RecordChanges(net);
}

Status DeferredStrategy::RefreshUnsafe() {
  if (hr_.ad().entry_count() == 0) return Status::OK();
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kRefresh);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "refresh");
  std::vector<db::Tuple> a_net;
  std::vector<db::Tuple> d_net;
  // One pass over the AD file (C_ADread), fold into the base relation, and
  // reset the differential.
  VIEWMAT_RETURN_IF_ERROR(hr_.Fold(&a_net, &d_net));
  // Only marked (view-relevant) tuples produce view deltas; Map re-checks
  // the predicate without re-charging the screen.
  std::vector<db::Tuple> view_inserts;
  std::vector<db::Tuple> view_deletes;
  for (const db::Tuple& t : d_net) {
    db::Tuple value;
    VIEWMAT_ASSIGN_OR_RETURN(const bool contributes, Map(t, &value));
    if (contributes) view_deletes.push_back(std::move(value));
  }
  for (const db::Tuple& t : a_net) {
    db::Tuple value;
    VIEWMAT_ASSIGN_OR_RETURN(const bool contributes, Map(t, &value));
    if (contributes) view_inserts.push_back(std::move(value));
  }
  ++refresh_count_;
  return view_->ApplyDelta(view_inserts, view_deletes);
}

Status DeferredStrategy::RefreshSafe() {
  if (hr_.ad().entry_count() == 0) return Status::OK();
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kRefresh);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "refresh");
  storage::BufferPool* pool = UpdatedRelation()->pool();
  storage::DiskInterface* disk = pool->disk();

  // Read-only preparation: scan the nets and map the view deltas. Failure
  // here is a clean abort — nothing durable has changed yet.
  std::vector<db::Tuple> a_net;
  std::vector<db::Tuple> d_net;
  obs::ScopedSpan prepare_span(storage::TracerOf(tracker_), "refresh.prepare");
  VIEWMAT_RETURN_IF_ERROR(hr_.NetChanges(&a_net, &d_net));
  std::vector<db::Tuple> view_inserts;
  std::vector<db::Tuple> view_deletes;
  for (const db::Tuple& t : d_net) {
    db::Tuple value;
    VIEWMAT_ASSIGN_OR_RETURN(const bool contributes, Map(t, &value));
    if (contributes) view_deletes.push_back(std::move(value));
  }
  for (const db::Tuple& t : a_net) {
    db::Tuple value;
    VIEWMAT_ASSIGN_OR_RETURN(const bool contributes, Map(t, &value));
    if (contributes) view_inserts.push_back(std::move(value));
  }

  prepare_span.End();
  // Phase 1: patch the view copy. The begin marker is durable before the
  // first view write, so a crash anywhere in here resolves to
  // kNeedViewRebuild.
  VIEWMAT_RETURN_IF_ERROR(hr_.mutable_ad()->LogRefreshBegin(++epoch_));
  phase_ = RecoveryPhase::kNeedViewRebuild;
  obs::ScopedSpan patch_span(storage::TracerOf(tracker_), "refresh.view_patch");
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kBeforeViewPatch));
  for (const db::Tuple& value : view_deletes) {
    VIEWMAT_RETURN_IF_ERROR(view_->ApplyDelete(value));
  }
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kMidViewPatch));
  for (const db::Tuple& value : view_inserts) {
    VIEWMAT_RETURN_IF_ERROR(view_->ApplyInsert(value));
  }
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kAfterViewPatch));
  // The patched-view marker asserts durability, so flush first.
  VIEWMAT_RETURN_IF_ERROR(pool->FlushAll());
  VIEWMAT_RETURN_IF_ERROR(hr_.mutable_ad()->LogViewPatched(epoch_));
  patch_span.End();
  phase_ = RecoveryPhase::kNeedFold;

  // Phase 2: fold the base and retire the differential. The first
  // execution can fold strictly; only roll-forward needs idempotence.
  return FoldAndReset(a_net, d_net, /*idempotent=*/false);
}

Status DeferredStrategy::FoldAndReset(const std::vector<db::Tuple>& a_net,
                                      const std::vector<db::Tuple>& d_net,
                                      bool idempotent) {
  storage::BufferPool* pool = UpdatedRelation()->pool();
  storage::DiskInterface* disk = pool->disk();
  obs::ScopedSpan fold_span(storage::TracerOf(tracker_), "refresh.fold");
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kBeforeFold));
  static const std::vector<db::Tuple> kEmpty;
  VIEWMAT_RETURN_IF_ERROR(hr_.FoldNoReset(kEmpty, d_net, idempotent));
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kMidFold));
  VIEWMAT_RETURN_IF_ERROR(hr_.FoldNoReset(a_net, kEmpty, idempotent));
  VIEWMAT_RETURN_IF_ERROR(pool->FlushAll());
  VIEWMAT_RETURN_IF_ERROR(hr_.mutable_ad()->LogFoldCommit(epoch_));
  fold_span.End();
  phase_ = RecoveryPhase::kNeedReset;
  return FinishReset();
}

Status DeferredStrategy::FinishReset() {
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "refresh.ad_reset");
  storage::DiskInterface* disk = UpdatedRelation()->pool()->disk();
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kBeforeAdReset));
  // Reset clears the hash file and Bloom filter and truncates the WAL
  // (removing the epoch's markers: the refresh is no longer "in flight").
  VIEWMAT_RETURN_IF_ERROR(hr_.mutable_ad()->Reset());
  phase_ = RecoveryPhase::kNone;
  ++refresh_count_;
  return Status::OK();
}

Status DeferredStrategy::RebuildViewAndFold() {
  storage::BufferPool* pool = UpdatedRelation()->pool();
  storage::DiskInterface* disk = pool->disk();
  // Re-begin under a fresh epoch: the old epoch's begin marker stays in the
  // log but is superseded as "newest begun".
  VIEWMAT_RETURN_IF_ERROR(hr_.mutable_ad()->LogRefreshBegin(++epoch_));
  phase_ = RecoveryPhase::kNeedViewRebuild;
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kBeforeViewPatch));
  // The view copy may be partially patched in an unknowable way: rebuild it
  // from the hypothetical relation, which still holds the complete state
  // (base untouched + all committed intents, including transactions
  // accepted while degraded).
  VIEWMAT_RETURN_IF_ERROR(view_->Clear());
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(hr_.RangeScanByKey(
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::max(), [&](const db::Tuple& t) {
        db::Tuple value;
        auto mapped = Map(t, &value);
        if (!mapped.ok()) {
          inner = mapped.status();
          return false;
        }
        if (*mapped) {
          inner = view_->ApplyInsert(value);
          if (!inner.ok()) return false;
        }
        return true;
      }));
  VIEWMAT_RETURN_IF_ERROR(inner);
  VIEWMAT_RETURN_IF_ERROR(disk->AtCrashPoint(CrashPoint::kAfterViewPatch));
  VIEWMAT_RETURN_IF_ERROR(pool->FlushAll());
  VIEWMAT_RETURN_IF_ERROR(hr_.mutable_ad()->LogViewPatched(epoch_));
  phase_ = RecoveryPhase::kNeedFold;
  std::vector<db::Tuple> a_net;
  std::vector<db::Tuple> d_net;
  VIEWMAT_RETURN_IF_ERROR(hr_.NetChanges(&a_net, &d_net));
  // The rebuilt view already reflects these nets; the base does not yet.
  // A partial fold from the interrupted epoch may have landed some of them,
  // so fold idempotently.
  return FoldAndReset(a_net, d_net, /*idempotent=*/true);
}

Status DeferredStrategy::RollForward() {
  switch (phase_) {
    case RecoveryPhase::kNone:
      return Status::OK();
    case RecoveryPhase::kNeedViewRebuild:
      return RebuildViewAndFold();
    case RecoveryPhase::kNeedFold: {
      std::vector<db::Tuple> a_net;
      std::vector<db::Tuple> d_net;
      VIEWMAT_RETURN_IF_ERROR(hr_.NetChanges(&a_net, &d_net));
      return FoldAndReset(a_net, d_net, /*idempotent=*/true);
    }
    case RecoveryPhase::kNeedReset:
      return FinishReset();
  }
  return Status::Internal("unreachable recovery phase");
}

Status DeferredStrategy::Recover() {
  if (!crash_safe()) {
    return Status::FailedPrecondition(
        "deferred strategy has no WAL (AdFile::Options::enable_wal)");
  }
  const storage::ScopedPhase phase_tag(tracker_,
                                       storage::Phase::kRefreshRecovery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "recover");
  ++recoveries_;
  // Rebuild the AD structures from the durable log; everything in memory is
  // distrusted after a crash.
  hr::AdFile::RecoveryInfo info;
  VIEWMAT_RETURN_IF_ERROR(hr_.Recover(&info));
  // The durable log is the authority on what committed: a transaction whose
  // commit append errored ambiguously (write and read-back both failed) is
  // resolved here, by whether its commit record survived. The AD file's
  // durable floor — not this strategy's in-memory high water — is the right
  // base: under group commit the in-memory counter runs ahead of the device,
  // and a crash can lose the buffered tail it already counted.
  committed_txn_high_ = hr_.ad().durable_txn_floor();
  // Derive the interrupted phase from the markers alone. Markers survive
  // only until the epoch-final Reset truncates the log, so any begin marker
  // present denotes an unfinished refresh.
  if (info.last_epoch_begun == 0) {
    phase_ = RecoveryPhase::kNone;
  } else if (info.fold_committed_epoch == info.last_epoch_begun) {
    phase_ = RecoveryPhase::kNeedReset;
  } else if (info.view_patched_epoch == info.last_epoch_begun) {
    phase_ = RecoveryPhase::kNeedFold;
  } else {
    phase_ = RecoveryPhase::kNeedViewRebuild;
  }
  if (info.last_epoch_begun > epoch_) epoch_ = info.last_epoch_begun;
  return RollForward();
}

Status DeferredStrategy::EnsureFresh() { return Refresh(); }

Status DeferredStrategy::Refresh() {
  if (!crash_safe()) return RefreshUnsafe();
  // Recovery completes the interrupted epoch but does not fold intents that
  // were never part of it (committed before the crash with no refresh in
  // flight, or accepted after the fold committed) — they are back in the AD
  // file after replay, so a normal refresh must still follow.
  if (stale()) VIEWMAT_RETURN_IF_ERROR(Recover());
  return RefreshSafe();
}

Status DeferredStrategy::QueryViaModification(
    int64_t lo, int64_t hi, const MaterializedView::CountedVisitor& visit) {
  const size_t vkey = view_->view_key_field();
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(hr_.RangeScanByKey(
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::max(), [&](const db::Tuple& t) {
        if (tracker_ != nullptr) tracker_->ChargeTupleCpu();
        db::Tuple value;
        auto mapped = Map(t, &value);
        if (!mapped.ok()) {
          inner = mapped.status();
          return false;
        }
        if (!*mapped) return true;
        const int64_t k = value.at(vkey).AsInt64();
        if (k < lo || k > hi) return true;
        return visit(value, 1);
      }));
  return inner;
}

Status DeferredStrategy::DegradedQuery(
    int64_t lo, int64_t hi, const MaterializedView::CountedVisitor& visit) {
  // Reading anything requires a trustworthy AD file; rebuilding it from the
  // log is cheap and does not run the (failing) refresh protocol.
  if (hr_.ad().needs_recovery()) {
    hr::AdFile::RecoveryInfo info;
    VIEWMAT_RETURN_IF_ERROR(hr_.Recover(&info));
  }
  ++degraded_queries_;
  switch (phase_) {
    case RecoveryPhase::kNone:
    case RecoveryPhase::kNeedViewRebuild:
      // The base is untouched by the interrupted epoch: query modification
      // over base ∪ AD is exact.
      return QueryViaModification(lo, hi, visit);
    case RecoveryPhase::kNeedFold:
    case RecoveryPhase::kNeedReset:
      // The view copy is fully patched for the epoch (it reflects
      // base ∪ AD); QM would double-count whatever a partial fold already
      // moved into the base. Serve the copy.
      return view_->Query(lo, hi, visit);
  }
  return Status::Internal("unreachable recovery phase");
}

Status DeferredStrategy::Query(int64_t lo, int64_t hi,
                               const MaterializedView::CountedVisitor& visit) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  if (!crash_safe()) {
    VIEWMAT_RETURN_IF_ERROR(Refresh());
    return view_->Query(lo, hi, visit);
  }
  // Bounded retry: transient faults are ridden out by re-driving recovery;
  // a persistently failing device falls through to the degraded read.
  Status st = Status::OK();
  for (int attempt = 0; attempt < kMaxRecoveryAttempts; ++attempt) {
    st = EnsureFresh();
    if (st.ok()) return view_->Query(lo, hi, visit);
  }
  return DegradedQuery(lo, hi, visit);
}

}  // namespace viewmat::view
