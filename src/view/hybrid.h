#ifndef VIEWMAT_VIEW_HYBRID_H_
#define VIEWMAT_VIEW_HYBRID_H_

#include <atomic>

#include "common/status.h"
#include "hr/hypothetical_relation.h"
#include "view/deferred.h"
#include "storage/cost_tracker.h"
#include "view/materialized_view.h"
#include "view/screening.h"
#include "view/strategy.h"
#include "view/view_def.h"

namespace viewmat::view {

/// §3.3's database-design observation, implemented: "a query optimizer
/// could choose to process a view query in one of two ways, depending on
/// the query predicate ... query modification [or] against the
/// materialized view, using the clustered view index as an alternate
/// access path."
///
/// The hybrid keeps a deferred materialized copy AND a query-modification
/// path over the hypothetical relation. Each query is costed both ways
/// with the paper's unit prices:
///
///   QM path:   C_ADread (scan the differential) + base range pages·C2
///              + range tuples·C1   — and the view stays unrefreshed;
///   view path: refresh (patch X1 view pages at (3+H)·C2 each)
///              + view range pages·C2 + tuples·C1.
///
/// Small queries over a heavily-updated view go to QM (the EMP-DEPT
/// regime); large queries amortize the refresh and go to the view. Either
/// way the answer is identical (tested), only the money moves.
class HybridStrategy : public ViewStrategy {
 public:
  HybridStrategy(SelectProjectDef def, hr::AdFile::Options ad_options,
                 storage::CostTracker* tracker);

  Status InitializeFromBase();

  Status OnTransaction(const db::Transaction& txn) override;
  Status Query(int64_t lo, int64_t hi,
               const MaterializedView::CountedVisitor& visit) override;
  const char* name() const override { return "hybrid"; }

  hr::HypotheticalRelation* hypothetical() { return &hr_; }
  uint64_t qm_choices() const { return qm_choices_; }
  uint64_t view_choices() const { return view_choices_; }
  uint64_t refresh_count() const { return refresh_count_; }
  uint64_t forced_refreshes() const { return forced_refreshes_; }

  /// Crash recovery (crash-safe mode, AdFile::Options::enable_wal): the
  /// same journaled two-phase refresh protocol as the deferred strategy —
  /// rebuild the AD file from its log, derive the interrupted phase from
  /// the durable markers, roll forward. Idempotent.
  Status Recover();

  /// True when the WAL-backed refresh protocol is active.
  bool crash_safe() const { return hr_.ad().wal_enabled(); }
  RecoveryPhase phase() const { return phase_; }
  /// True when neither read path can be served as-is (interrupted refresh
  /// or an AD file that must be rebuilt from its log).
  bool stale() const {
    return phase_ != RecoveryPhase::kNone || hr_.ad().needs_recovery();
  }
  uint64_t recoveries() const { return recoveries_; }
  /// Transaction ids issued (crash-safe mode); see the deferred strategy's
  /// identically-named accessors for the ambiguity-resolution contract.
  uint64_t txn_seq() const { return txn_seq_; }
  uint64_t committed_txn_high_water() const { return committed_txn_high_; }

  /// §4's space backstop: "if the A and D sets ... use up all available
  /// disk space, then of course the refresh algorithm must be used". When
  /// the differential exceeds this many entries, the next query refreshes
  /// regardless of the per-query cost comparison (otherwise a QM-favoring
  /// workload would grow the AD file without bound).
  void set_max_pending(uint64_t n) { max_pending_ = n; }

  /// Queries a refresh is expected to serve before the differential regrows
  /// (divides the refresh term in the view-path estimate). 1 = fully
  /// myopic, which systematically defers; the default models a handful of
  /// queries sharing each refresh.
  void set_refresh_amortization(double q) { refresh_amortization_ = q; }

  /// The optimizer's cost estimates for a candidate query (exposed for
  /// tests and the ablation bench).
  struct Estimate {
    double qm_ms = 0;
    double view_ms = 0;
  };
  Estimate EstimateQuery(int64_t lo, int64_t hi) const;

  /// Folds the differential into the base and view now, regardless of the
  /// per-query cost comparison (idle-time refresh; torture-harness
  /// convergence). In crash-safe mode this is the journaled protocol.
  Status Refresh();

 private:
  /// Non-journaled fold-and-reset (WAL disabled): the original path.
  Status RefreshUnsafe();
  /// Journaled protocol from a clean state (mirrors the deferred
  /// strategy's): begin marker, view patch, patched marker, idempotent-able
  /// fold, fold-commit marker, AD reset.
  Status RefreshSafe();
  Status RollForward();
  Status RebuildViewAndFold();
  Status FoldAndReset(const std::vector<db::Tuple>& a_net,
                      const std::vector<db::Tuple>& d_net, bool idempotent);
  Status FinishReset();

  SelectProjectDef def_;
  storage::CostTracker* tracker_;
  TLockScreen screen_;
  hr::HypotheticalRelation hr_;
  std::unique_ptr<MaterializedView> view_;
  // Atomic: bumped on the query read path, which the server may run from
  // several workers at once when no refresh work is pending.
  std::atomic<uint64_t> qm_choices_{0};
  std::atomic<uint64_t> view_choices_{0};
  uint64_t refresh_count_ = 0;
  uint64_t forced_refreshes_ = 0;
  uint64_t max_pending_ = 256;
  double refresh_amortization_ = 4.0;

  RecoveryPhase phase_ = RecoveryPhase::kNone;
  uint64_t epoch_ = 0;
  uint64_t txn_seq_ = 0;
  uint64_t committed_txn_high_ = 0;
  uint64_t recoveries_ = 0;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_HYBRID_H_
