#ifndef VIEWMAT_VIEW_HYBRID_H_
#define VIEWMAT_VIEW_HYBRID_H_

#include "common/status.h"
#include "hr/hypothetical_relation.h"
#include "storage/cost_tracker.h"
#include "view/materialized_view.h"
#include "view/screening.h"
#include "view/strategy.h"
#include "view/view_def.h"

namespace viewmat::view {

/// §3.3's database-design observation, implemented: "a query optimizer
/// could choose to process a view query in one of two ways, depending on
/// the query predicate ... query modification [or] against the
/// materialized view, using the clustered view index as an alternate
/// access path."
///
/// The hybrid keeps a deferred materialized copy AND a query-modification
/// path over the hypothetical relation. Each query is costed both ways
/// with the paper's unit prices:
///
///   QM path:   C_ADread (scan the differential) + base range pages·C2
///              + range tuples·C1   — and the view stays unrefreshed;
///   view path: refresh (patch X1 view pages at (3+H)·C2 each)
///              + view range pages·C2 + tuples·C1.
///
/// Small queries over a heavily-updated view go to QM (the EMP-DEPT
/// regime); large queries amortize the refresh and go to the view. Either
/// way the answer is identical (tested), only the money moves.
class HybridStrategy : public ViewStrategy {
 public:
  HybridStrategy(SelectProjectDef def, hr::AdFile::Options ad_options,
                 storage::CostTracker* tracker);

  Status InitializeFromBase();

  Status OnTransaction(const db::Transaction& txn) override;
  Status Query(int64_t lo, int64_t hi,
               const MaterializedView::CountedVisitor& visit) override;
  const char* name() const override { return "hybrid"; }

  uint64_t qm_choices() const { return qm_choices_; }
  uint64_t view_choices() const { return view_choices_; }
  uint64_t refresh_count() const { return refresh_count_; }
  uint64_t forced_refreshes() const { return forced_refreshes_; }

  /// §4's space backstop: "if the A and D sets ... use up all available
  /// disk space, then of course the refresh algorithm must be used". When
  /// the differential exceeds this many entries, the next query refreshes
  /// regardless of the per-query cost comparison (otherwise a QM-favoring
  /// workload would grow the AD file without bound).
  void set_max_pending(uint64_t n) { max_pending_ = n; }

  /// Queries a refresh is expected to serve before the differential regrows
  /// (divides the refresh term in the view-path estimate). 1 = fully
  /// myopic, which systematically defers; the default models a handful of
  /// queries sharing each refresh.
  void set_refresh_amortization(double q) { refresh_amortization_ = q; }

  /// The optimizer's cost estimates for a candidate query (exposed for
  /// tests and the ablation bench).
  struct Estimate {
    double qm_ms = 0;
    double view_ms = 0;
  };
  Estimate EstimateQuery(int64_t lo, int64_t hi) const;

 private:
  Status Refresh();

  SelectProjectDef def_;
  storage::CostTracker* tracker_;
  TLockScreen screen_;
  hr::HypotheticalRelation hr_;
  std::unique_ptr<MaterializedView> view_;
  uint64_t qm_choices_ = 0;
  uint64_t view_choices_ = 0;
  uint64_t refresh_count_ = 0;
  uint64_t forced_refreshes_ = 0;
  uint64_t max_pending_ = 256;
  double refresh_amortization_ = 4.0;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_HYBRID_H_
