#ifndef VIEWMAT_VIEW_GROUP_AGGREGATE_H_
#define VIEWMAT_VIEW_GROUP_AGGREGATE_H_

#include <memory>

#include "common/status.h"
#include "db/relation.h"
#include "storage/cost_tracker.h"
#include "view/aggregate.h"
#include "hr/hypothetical_relation.h"
#include "view/screening.h"
#include "view/strategy.h"
#include "view/view_def.h"

namespace viewmat::view {

/// GROUP BY generalization of Model 3: one incrementally maintained
/// aggregate per group value, e.g.
///
///   define view dept_payroll (dept, sum(salary))
///   where emp.active = 1 group by emp.dept
///
/// The paper treats the single-group case; grouping materializes as a
/// small relation keyed by the group attribute with one aggregate state
/// per group — each state maintained with the same insert/delete
/// transition functions, including the min/max recompute-on-extremum-loss
/// fallback (restricted to the affected group).
struct GroupAggregateDef {
  db::Relation* base = nullptr;
  db::PredicateRef predicate;     ///< selectivity-f restriction
  size_t group_field = 0;         ///< int64 grouping attribute
  AggregateOp op = AggregateOp::kSum;
  size_t agg_field = 0;

  Status Validate() const;
};

/// The stored copy: a B+-tree relation keyed by group value, one row per
/// non-empty group carrying the serialized aggregate state.
class MaterializedGroupAggregate {
 public:
  using GroupVisitor =
      std::function<bool(int64_t group, const AggregateState& state)>;

  MaterializedGroupAggregate(storage::BufferPool* pool, AggregateOp op);

  /// Folds one value into a group (creating the group if new).
  Status ApplyInsert(int64_t group, double v);

  /// Removes one value; *needs_recompute is set when the group's state can
  /// no longer answer exactly (min/max extremum left). Empty groups are
  /// physically removed.
  Status ApplyDelete(int64_t group, double v, bool* needs_recompute);

  /// Overwrites a group's state (after an external recomputation).
  Status Put(int64_t group, const AggregateState& state);

  /// NotFound when the group has no members.
  Status Get(int64_t group, AggregateState* out) const;

  Status Scan(const GroupVisitor& visit) const;
  Status Clear();
  size_t group_count() const { return stored_->tuple_count(); }

 private:
  db::Tuple Encode(int64_t group, const AggregateState& state) const;
  static AggregateState Decode(const db::Tuple& t);

  AggregateOp op_;
  db::Schema schema_;
  std::unique_ptr<db::Relation> stored_;
};

/// Immediate maintenance of a grouped aggregate view.
class ImmediateGroupAggregateStrategy {
 public:
  ImmediateGroupAggregateStrategy(GroupAggregateDef def,
                                  storage::CostTracker* tracker);

  Status InitializeFromBase();
  Status OnTransaction(const db::Transaction& txn);

  /// Current value for one group; NotFound when the group is empty.
  Status QueryGroup(int64_t group, db::Value* out);

  /// All non-empty groups in group order.
  Status QueryAll(const std::function<bool(int64_t, const db::Value&)>& visit);

  uint64_t group_recomputes() const { return group_recomputes_; }

 private:
  /// Rebuilds one group's state from the base relation.
  Status RecomputeGroup(int64_t group);

  GroupAggregateDef def_;
  storage::CostTracker* tracker_;
  TLockScreen screen_;
  MaterializedGroupAggregate stored_;
  uint64_t group_recomputes_ = 0;
};

/// Deferred maintenance of a grouped aggregate view: transactions
/// accumulate in the base relation's AD differential; a query folds the
/// differential once and patches only the affected groups — Model 3's
/// deferred scheme generalized per group.
class DeferredGroupAggregateStrategy {
 public:
  DeferredGroupAggregateStrategy(GroupAggregateDef def,
                                 hr::AdFile::Options ad_options,
                                 storage::CostTracker* tracker);

  Status InitializeFromBase();
  Status OnTransaction(const db::Transaction& txn);
  Status QueryGroup(int64_t group, db::Value* out);
  Status QueryAll(const std::function<bool(int64_t, const db::Value&)>& visit);

  uint64_t refresh_count() const { return refresh_count_; }
  uint64_t pending_tuples() const { return hr_.ad().entry_count(); }

 private:
  Status Refresh();
  Status RecomputeGroup(int64_t group);

  GroupAggregateDef def_;
  storage::CostTracker* tracker_;
  TLockScreen screen_;
  hr::HypotheticalRelation hr_;
  MaterializedGroupAggregate stored_;
  uint64_t refresh_count_ = 0;
};

/// From-scratch baseline: every query scans the selection and folds.
class RecomputeGroupAggregateStrategy {
 public:
  RecomputeGroupAggregateStrategy(GroupAggregateDef def,
                                  storage::CostTracker* tracker);

  Status OnTransaction(const db::Transaction& txn);
  Status QueryGroup(int64_t group, db::Value* out);
  Status QueryAll(const std::function<bool(int64_t, const db::Value&)>& visit);

 private:
  Status ComputeAll(std::map<int64_t, AggregateState>* out);

  GroupAggregateDef def_;
  storage::CostTracker* tracker_;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_GROUP_AGGREGATE_H_
