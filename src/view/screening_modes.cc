#include "view/screening_modes.h"

#include <algorithm>

#include "common/logging.h"

namespace viewmat::view {

const char* ScreeningModeName(ScreeningMode mode) {
  switch (mode) {
    case ScreeningMode::kRuleIndex:
      return "rule-index";
    case ScreeningMode::kSubstituteAll:
      return "substitute-all";
    case ScreeningMode::kRiu:
      return "riu";
  }
  return "?";
}

std::set<size_t> FieldsRead(const SelectProjectDef& def) {
  std::set<size_t> fields(def.projection.begin(), def.projection.end());
  // Conservative: treat every field the predicate could reference as read.
  // Our predicates only compare against constants, so walking the implied
  // ranges per field identifies the referenced ones; a field is referenced
  // if restricting it changes satisfaction. Simpler and sound: include the
  // lock field plus every field with a bounded implied range.
  for (size_t i = 0; i < def.base->schema().field_count(); ++i) {
    if (!def.predicate->ImpliedRange(i).Unbounded()) fields.insert(i);
  }
  fields.insert(def.BaseKeyField());
  return fields;
}

std::set<size_t> FieldsRead(const JoinDef& def) {
  std::set<size_t> fields(def.r1_projection.begin(), def.r1_projection.end());
  for (size_t i = 0; i < def.r1->schema().field_count(); ++i) {
    if (!def.cf->ImpliedRange(i).Unbounded()) fields.insert(i);
  }
  fields.insert(def.r1_join_field);
  return fields;
}

std::set<size_t> FieldsRead(const AggregateDef& def) {
  std::set<size_t> fields;
  fields.insert(def.agg_field);
  for (size_t i = 0; i < def.base->schema().field_count(); ++i) {
    if (!def.predicate->ImpliedRange(i).Unbounded()) fields.insert(i);
  }
  return fields;
}

std::set<size_t> FieldsWritten(const db::NetChange& net) {
  std::set<size_t> fields;
  // Pair up deletes and inserts with equal keyless-equality? Without key
  // knowledge, pair tuples positionally when an update produced them;
  // conservatively, any delete without an identical-arity insert marks all
  // fields. We match each delete to the insert that differs from it in the
  // fewest fields — updates produced by Transaction::Update keep most
  // fields equal, so this recovers the true written set while remaining
  // conservative for genuine insert/delete pairs.
  std::vector<const db::Tuple*> unmatched_inserts;
  for (const db::Tuple& t : net.inserts()) unmatched_inserts.push_back(&t);

  auto diff_fields = [](const db::Tuple& a, const db::Tuple& b,
                        std::set<size_t>* out) {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      if (!(a.at(i) == b.at(i))) out->insert(i);
    }
    for (size_t i = n; i < std::max(a.size(), b.size()); ++i) out->insert(i);
  };

  for (const db::Tuple& d : net.deletes()) {
    const db::Tuple* best = nullptr;
    size_t best_diff = SIZE_MAX;
    size_t best_idx = 0;
    for (size_t i = 0; i < unmatched_inserts.size(); ++i) {
      std::set<size_t> diffs;
      diff_fields(d, *unmatched_inserts[i], &diffs);
      if (diffs.size() < best_diff) {
        best_diff = diffs.size();
        best = unmatched_inserts[i];
        best_idx = i;
      }
    }
    if (best != nullptr) {
      diff_fields(d, *best, &fields);
      unmatched_inserts.erase(unmatched_inserts.begin() + best_idx);
    } else {
      // Pure deletion: every field of the tuple "changes".
      for (size_t i = 0; i < d.size(); ++i) fields.insert(i);
    }
  }
  for (const db::Tuple* t : unmatched_inserts) {
    for (size_t i = 0; i < t->size(); ++i) fields.insert(i);
  }
  return fields;
}

UpdateScreen::UpdateScreen(ScreeningMode mode, db::PredicateRef predicate,
                           size_t lock_field, std::set<size_t> fields_read,
                           storage::CostTracker* tracker)
    : mode_(mode),
      predicate_(std::move(predicate)),
      lock_field_(lock_field),
      intervals_(predicate_->ImpliedRangeSet(lock_field_)),
      fields_read_(std::move(fields_read)),
      tracker_(tracker) {
  VIEWMAT_CHECK(predicate_ != nullptr);
}

bool UpdateScreen::TransactionIsIgnorable(const db::NetChange& net) {
  if (mode_ != ScreeningMode::kRiu) return false;
  // Compile-time phase: does the command write any field the view reads?
  // Per-transaction cost only (not charged per tuple).
  const std::set<size_t> written = FieldsWritten(net);
  for (const size_t f : written) {
    if (fields_read_.contains(f)) return false;
  }
  ++riu_transactions_;
  return true;
}

bool UpdateScreen::Passes(const db::Tuple& t) {
  ++screened_;
  if (mode_ == ScreeningMode::kRuleIndex) {
    const db::Value& v = t.at(lock_field_);
    if (v.type() == db::ValueType::kInt64 &&
        !intervals_.Contains(v.AsInt64())) {
      return false;  // stage 1, free
    }
  }
  // kSubstituteAll and kRiu (non-ignorable commands) substitute every
  // tuple; rule indexing substitutes only interval hits.
  ++substitutions_;
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kScreen);
  if (tracker_ != nullptr) tracker_->ChargeScreen();
  return predicate_->Evaluate(t);
}

}  // namespace viewmat::view
