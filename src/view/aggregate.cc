#include "view/aggregate.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "obs/trace.h"

namespace viewmat::view {

void AggregateState::ApplyInsert(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

bool AggregateState::ApplyDelete(double v) {
  VIEWMAT_CHECK_MSG(count_ > 0, "deleting from an empty aggregate");
  --count_;
  sum_ -= v;
  if ((op_ == AggregateOp::kMin && v <= min_) ||
      (op_ == AggregateOp::kMax && v >= max_)) {
    // The extremum may have left the set; only a recomputation can tell.
    if (count_ > 0) exact_ = false;
  }
  if (count_ == 0) {
    sum_ = 0.0;  // cancel floating-point drift at the empty state
    min_ = 0.0;
    max_ = 0.0;
    exact_ = true;
  }
  return exact_;
}

StatusOr<db::Value> AggregateState::Current() const {
  if (!exact_) {
    return Status::FailedPrecondition("aggregate state needs recomputation");
  }
  switch (op_) {
    case AggregateOp::kCount:
      return db::Value(count_);
    case AggregateOp::kSum:
      return db::Value(sum_);
    case AggregateOp::kAvg:
      if (count_ == 0) return Status::NotFound("avg of empty set");
      return db::Value(sum_ / static_cast<double>(count_));
    case AggregateOp::kMin:
      if (count_ == 0) return Status::NotFound("min of empty set");
      return db::Value(min_);
    case AggregateOp::kMax:
      if (count_ == 0) return Status::NotFound("max of empty set");
      return db::Value(max_);
  }
  return Status::Internal("unreachable");
}

void AggregateState::Reset() {
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  exact_ = true;
}

void AggregateState::Serialize(uint8_t* out) const {
  std::memcpy(out, &count_, 8);
  std::memcpy(out + 8, &sum_, 8);
  std::memcpy(out + 16, &min_, 8);
  std::memcpy(out + 24, &max_, 8);
  out[32] = static_cast<uint8_t>(op_);
  out[33] = exact_ ? 1 : 0;
}

AggregateState AggregateState::Deserialize(const uint8_t* in) {
  AggregateState s;
  std::memcpy(&s.count_, in, 8);
  std::memcpy(&s.sum_, in + 8, 8);
  std::memcpy(&s.min_, in + 16, 8);
  std::memcpy(&s.max_, in + 24, 8);
  s.op_ = static_cast<AggregateOp>(in[32]);
  s.exact_ = in[33] != 0;
  return s;
}

bool operator==(const AggregateState& a, const AggregateState& b) {
  return a.op_ == b.op_ && a.count_ == b.count_ && a.sum_ == b.sum_ &&
         a.min_ == b.min_ && a.max_ == b.max_ && a.exact_ == b.exact_;
}

MaterializedAggregate::MaterializedAggregate(storage::DiskInterface* disk,
                                             AggregateOp op)
    : disk_(disk), page_(disk->Allocate()) {
  storage::Page pg(disk_->page_size());
  AggregateState(op).Serialize(pg.data());
  // Initial write is setup, outside the measured workload by convention.
  VIEWMAT_CHECK(disk_->Write(page_, pg).ok());
}

Status MaterializedAggregate::Read(AggregateState* out) const {
  storage::Page pg(disk_->page_size());
  VIEWMAT_RETURN_IF_ERROR(disk_->Read(page_, &pg));
  *out = AggregateState::Deserialize(pg.data());
  return Status::OK();
}

Status MaterializedAggregate::Write(const AggregateState& state) {
  storage::Page pg(disk_->page_size());
  state.Serialize(pg.data());
  return disk_->Write(page_, pg);
}

Status ComputeAggregateFromBase(const AggregateDef& def,
                                storage::CostTracker* tracker,
                                AggregateState* out) {
  out->Reset();
  AggregateState fresh(def.op);
  const size_t key_field = def.base->key_field();
  const db::Interval range = def.predicate->ImpliedRange(key_field);
  auto fold = [&](const db::Tuple& t) {
    if (tracker != nullptr) tracker->ChargeTupleCpu();  // predicate screen
    if (def.predicate->Evaluate(t)) {
      fresh.ApplyInsert(def.op == AggregateOp::kCount
                            ? 1.0
                            : t.at(def.agg_field).Numeric());
    }
    return true;
  };
  if (!range.Unbounded() &&
      def.base->method() != db::AccessMethod::kClusteredHash) {
    const int64_t lo =
        range.lo ? *range.lo : std::numeric_limits<int64_t>::min();
    const int64_t hi =
        range.hi ? *range.hi : std::numeric_limits<int64_t>::max();
    VIEWMAT_RETURN_IF_ERROR(def.base->RangeScanByKey(lo, hi, fold));
  } else {
    VIEWMAT_RETURN_IF_ERROR(def.base->Scan(fold));
  }
  *out = fresh;
  return Status::OK();
}

namespace {

/// Per-transaction aggregate delta: which screened tuples entered/left the
/// aggregated set, as numeric values.
struct AggDelta {
  std::vector<double> inserted;
  std::vector<double> deleted;
  bool empty() const { return inserted.empty() && deleted.empty(); }
};

AggDelta ScreenedDelta(const AggregateDef& def, TLockScreen& screen,
                       const db::NetChange& net) {
  AggDelta delta;
  auto value_of = [&](const db::Tuple& t) {
    return def.op == AggregateOp::kCount ? 1.0
                                         : t.at(def.agg_field).Numeric();
  };
  for (const db::Tuple& t : net.deletes()) {
    if (screen.Passes(t)) delta.deleted.push_back(value_of(t));
  }
  for (const db::Tuple& t : net.inserts()) {
    if (screen.Passes(t)) delta.inserted.push_back(value_of(t));
  }
  return delta;
}

/// Applies a delta to a state; returns true when recomputation is needed.
bool ApplyDelta(AggregateState* state, const AggDelta& delta) {
  bool needs_recompute = false;
  for (const double v : delta.deleted) {
    if (!state->ApplyDelete(v)) needs_recompute = true;
  }
  for (const double v : delta.inserted) state->ApplyInsert(v);
  return needs_recompute && !state->exact();
}

}  // namespace

ImmediateAggregateStrategy::ImmediateAggregateStrategy(
    AggregateDef def, storage::DiskInterface* disk,
    storage::CostTracker* tracker)
    : def_(std::move(def)),
      tracker_(tracker),
      screen_(TLockScreen::ForAggregate(def_, tracker)),
      stored_(disk, def_.op),
      state_(def_.op) {
  VIEWMAT_CHECK(def_.Validate().ok());
}

Status ImmediateAggregateStrategy::InitializeFromBase() {
  VIEWMAT_RETURN_IF_ERROR(ComputeAggregateFromBase(def_, nullptr, &state_));
  return stored_.Write(state_);
}

Status ImmediateAggregateStrategy::Recompute() {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kRefresh);
  const obs::ScopedSpan span(storage::TracerOf(tracker_),
                             "refresh.recompute");
  ++recompute_count_;
  VIEWMAT_RETURN_IF_ERROR(ComputeAggregateFromBase(def_, tracker_, &state_));
  return stored_.Write(state_);
}

Status ImmediateAggregateStrategy::OnTransaction(const db::Transaction& txn) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kUpdateApply);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "txn");
  VIEWMAT_RETURN_IF_ERROR(txn.ApplyToBase());
  const db::NetChange& net = txn.ChangesFor(def_.base);
  if (net.empty()) return Status::OK();
  const AggDelta delta = ScreenedDelta(def_, screen_, net);
  if (delta.empty()) return Status::OK();
  if (ApplyDelta(&state_, delta)) return Recompute();
  // State is cached in memory; the paper charges one write per transaction
  // that touches the aggregated set.
  return stored_.Write(state_);
}

Status ImmediateAggregateStrategy::QueryValue(db::Value* out) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  AggregateState disk_state(def_.op);
  VIEWMAT_RETURN_IF_ERROR(stored_.Read(&disk_state));  // C_query3 = C2
  VIEWMAT_ASSIGN_OR_RETURN(*out, disk_state.Current());
  return Status::OK();
}

DeferredAggregateStrategy::DeferredAggregateStrategy(
    AggregateDef def, hr::AdFile::Options ad_options,
    storage::DiskInterface* disk, storage::CostTracker* tracker)
    : def_(std::move(def)),
      tracker_(tracker),
      screen_(TLockScreen::ForAggregate(def_, tracker)),
      hr_(def_.base, ad_options),
      stored_(disk, def_.op),
      state_(def_.op) {
  VIEWMAT_CHECK(def_.Validate().ok());
}

Status DeferredAggregateStrategy::InitializeFromBase() {
  VIEWMAT_RETURN_IF_ERROR(ComputeAggregateFromBase(def_, nullptr, &state_));
  return stored_.Write(state_);
}

Status DeferredAggregateStrategy::OnTransaction(const db::Transaction& txn) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kUpdateApply);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "txn");
  const db::NetChange& net = txn.ChangesFor(def_.base);
  if (net.empty()) return Status::OK();
  // I/O #1 of the HR update procedure: read the modified tuples.
  for (const db::Tuple& t : net.deletes()) {
    VIEWMAT_RETURN_IF_ERROR(
        hr_.FindAllByKey(t.at(def_.base->key_field()).AsInt64(),
                         [](const db::Tuple&) { return false; }));
  }
  // Screen (and thereby mark) at update time.
  for (const db::Tuple& t : net.deletes()) screen_.Passes(t);
  for (const db::Tuple& t : net.inserts()) screen_.Passes(t);
  return hr_.RecordChanges(net);
}

Status DeferredAggregateStrategy::QueryValue(db::Value* out) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  VIEWMAT_RETURN_IF_ERROR(stored_.Read(&state_));  // C_query3 = C2
  std::vector<db::Tuple> a_net;
  std::vector<db::Tuple> d_net;
  VIEWMAT_RETURN_IF_ERROR(hr_.Fold(&a_net, &d_net));
  db::NetChange folded;
  for (const db::Tuple& t : d_net) folded.AddDelete(t);
  for (const db::Tuple& t : a_net) folded.AddInsert(t);
  // Marked tuples only; the predicate re-check inside the delta is free
  // (stage-2 screening was already charged at update time).
  AggDelta delta;
  auto value_of = [&](const db::Tuple& t) {
    return def_.op == AggregateOp::kCount ? 1.0
                                          : t.at(def_.agg_field).Numeric();
  };
  for (const db::Tuple& t : folded.deletes()) {
    if (def_.predicate->Evaluate(t)) delta.deleted.push_back(value_of(t));
  }
  for (const db::Tuple& t : folded.inserts()) {
    if (def_.predicate->Evaluate(t)) delta.inserted.push_back(value_of(t));
  }
  if (!delta.empty()) {
    if (ApplyDelta(&state_, delta)) {
      VIEWMAT_RETURN_IF_ERROR(
          ComputeAggregateFromBase(def_, tracker_, &state_));
    }
    VIEWMAT_RETURN_IF_ERROR(stored_.Write(state_));  // C_def-refresh3
  }
  VIEWMAT_ASSIGN_OR_RETURN(*out, state_.Current());
  return Status::OK();
}

RecomputeAggregateStrategy::RecomputeAggregateStrategy(
    AggregateDef def, storage::CostTracker* tracker)
    : def_(std::move(def)), tracker_(tracker) {
  VIEWMAT_CHECK(def_.Validate().ok());
}

Status RecomputeAggregateStrategy::OnTransaction(const db::Transaction& txn) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kUpdateApply);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "txn");
  return txn.ApplyToBase();
}

Status RecomputeAggregateStrategy::QueryValue(db::Value* out) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  AggregateState state(def_.op);
  VIEWMAT_RETURN_IF_ERROR(ComputeAggregateFromBase(def_, tracker_, &state));
  VIEWMAT_ASSIGN_OR_RETURN(*out, state.Current());
  return Status::OK();
}

}  // namespace viewmat::view
