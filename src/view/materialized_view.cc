#include "view/materialized_view.h"

#include "common/logging.h"

namespace viewmat::view {

namespace {

db::Schema WithCountColumn(const db::Schema& view_schema) {
  std::vector<db::Field> fields = view_schema.fields();
  fields.push_back(db::Field::Int64("__dup"));
  return db::Schema(std::move(fields));
}

}  // namespace

MaterializedView::MaterializedView(storage::BufferPool* pool,
                                   std::string name, db::Schema view_schema,
                                   size_t view_key_field)
    : view_schema_(std::move(view_schema)),
      stored_schema_(WithCountColumn(view_schema_)),
      view_key_field_(view_key_field) {
  VIEWMAT_CHECK(view_key_field_ < view_schema_.field_count());
  stored_ = std::make_unique<db::Relation>(
      pool, std::move(name), stored_schema_,
      db::AccessMethod::kClusteredBTree, view_key_field_);
}

db::Tuple MaterializedView::WithCount(const db::Tuple& value,
                                      int64_t count) const {
  std::vector<db::Value> vals = value.values();
  vals.emplace_back(count);
  return db::Tuple(std::move(vals));
}

db::Tuple MaterializedView::StripCount(const db::Tuple& stored,
                                       int64_t* count) const {
  std::vector<db::Value> vals = stored.values();
  VIEWMAT_CHECK(!vals.empty());
  *count = vals.back().AsInt64();
  vals.pop_back();
  return db::Tuple(std::move(vals));
}

StatusOr<db::Tuple> MaterializedView::FindStored(
    const db::Tuple& value) const {
  const int64_t key = value.at(view_key_field_).AsInt64();
  db::Tuple found;
  bool have = false;
  VIEWMAT_RETURN_IF_ERROR(
      stored_->FindAllByKey(key, [&](const db::Tuple& stored) {
        int64_t count = 0;
        if (StripCount(stored, &count) == value) {
          found = stored;
          have = true;
          return false;
        }
        return true;
      }));
  if (!have) return Status::NotFound("view value not stored");
  return found;
}

Status MaterializedView::ApplyInsert(const db::Tuple& value) {
  auto existing = FindStored(value);
  ++total_count_;
  if (existing.ok()) {
    int64_t count = 0;
    (void)StripCount(*existing, &count);
    return stored_->UpdateExact(*existing, WithCount(value, count + 1));
  }
  return stored_->Insert(WithCount(value, 1));
}

Status MaterializedView::ApplyDelete(const db::Tuple& value) {
  auto existing = FindStored(value);
  if (!existing.ok()) {
    return Status::Internal(
        "counting invariant violated: deleting an absent view value " +
        value.ToString());
  }
  int64_t count = 0;
  (void)StripCount(*existing, &count);
  --total_count_;
  if (count > 1) {
    return stored_->UpdateExact(*existing, WithCount(value, count - 1));
  }
  return stored_->DeleteExact(*existing);
}

Status MaterializedView::ApplyDelta(const std::vector<db::Tuple>& inserts,
                                    const std::vector<db::Tuple>& deletes) {
  for (const db::Tuple& t : deletes) {
    VIEWMAT_RETURN_IF_ERROR(ApplyDelete(t));
  }
  for (const db::Tuple& t : inserts) {
    VIEWMAT_RETURN_IF_ERROR(ApplyInsert(t));
  }
  return Status::OK();
}

Status MaterializedView::Query(int64_t lo, int64_t hi,
                               const CountedVisitor& visit) const {
  return stored_->RangeScanByKey(lo, hi, [&](const db::Tuple& stored) {
    int64_t count = 0;
    const db::Tuple value = StripCount(stored, &count);
    return visit(value, count);
  });
}

Status MaterializedView::ScanAll(const CountedVisitor& visit) const {
  return stored_->Scan([&](const db::Tuple& stored) {
    int64_t count = 0;
    const db::Tuple value = StripCount(stored, &count);
    return visit(value, count);
  });
}

Status MaterializedView::Clear() {
  std::vector<db::Tuple> all;
  VIEWMAT_RETURN_IF_ERROR(
      stored_->Scan([&](const db::Tuple& stored) {
        all.push_back(stored);
        return true;
      }));
  for (const db::Tuple& t : all) {
    VIEWMAT_RETURN_IF_ERROR(stored_->DeleteExact(t));
  }
  total_count_ = 0;
  return Status::OK();
}

}  // namespace viewmat::view
