#ifndef VIEWMAT_VIEW_VIEW_GROUP_H_
#define VIEWMAT_VIEW_VIEW_GROUP_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "hr/hypothetical_relation.h"
#include "storage/cost_tracker.h"
#include "view/materialized_view.h"
#include "view/screening.h"
#include "view/view_def.h"

namespace viewmat::view {

/// §4's multi-view optimization: "in cases where more than one
/// materialized view draws data from the same hypothetical relation, it
/// may be worthwhile to refresh all the views whenever it is necessary to
/// read the contents of the A and D sets for the relation from disk, since
/// this would eliminate the need to read the hypothetical database again."
///
/// A DeferredViewGroup maintains several selection-projection views over
/// one base relation behind a single AD differential file. A query against
/// any member triggers one fold — one C_ADread — that refreshes every
/// member view.
class DeferredViewGroup {
 public:
  DeferredViewGroup(db::Relation* base, hr::AdFile::Options ad_options,
                    storage::CostTracker* tracker);

  DeferredViewGroup(const DeferredViewGroup&) = delete;
  DeferredViewGroup& operator=(const DeferredViewGroup&) = delete;

  /// Registers a view over the group's base relation and materializes it.
  /// Returns the member index used to address queries.
  StatusOr<size_t> AddView(const SelectProjectDef& def);

  /// Absorbs a transaction into the shared differential; every member's
  /// screen runs (each marks its own relevant tuples).
  Status OnTransaction(const db::Transaction& txn);

  /// Queries member `index`; refreshes ALL members first if any work is
  /// pending (the single shared fold).
  Status Query(size_t index, int64_t lo, int64_t hi,
               const MaterializedView::CountedVisitor& visit);

  /// Applies pending work to every member now.
  Status RefreshAll();

  size_t view_count() const { return members_.size(); }
  uint64_t fold_count() const { return fold_count_; }
  uint64_t pending_tuples() const { return hr_.ad().entry_count(); }
  MaterializedView* view(size_t index) { return members_[index]->view.get(); }

 private:
  struct Member {
    SelectProjectDef def;
    TLockScreen screen;
    std::unique_ptr<MaterializedView> view;

    Member(const SelectProjectDef& d, storage::CostTracker* tracker)
        : def(d), screen(TLockScreen::ForSelectProject(d, tracker)) {}
  };

  db::Relation* base_;
  storage::CostTracker* tracker_;
  hr::HypotheticalRelation hr_;
  std::vector<std::unique_ptr<Member>> members_;
  uint64_t fold_count_ = 0;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_VIEW_GROUP_H_
