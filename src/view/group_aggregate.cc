#include "view/group_aggregate.h"

#include <map>

#include "common/logging.h"
#include "obs/trace.h"

namespace viewmat::view {

Status GroupAggregateDef::Validate() const {
  if (base == nullptr) return Status::InvalidArgument("base relation unset");
  if (predicate == nullptr) return Status::InvalidArgument("predicate unset");
  if (group_field >= base->schema().field_count() ||
      base->schema().field(group_field).type != db::ValueType::kInt64) {
    return Status::InvalidArgument("group field must be an int64 column");
  }
  if (agg_field >= base->schema().field_count()) {
    return Status::InvalidArgument("aggregate field out of range");
  }
  if (base->schema().field(agg_field).type == db::ValueType::kString &&
      op != AggregateOp::kCount) {
    return Status::InvalidArgument("cannot aggregate a string field");
  }
  return Status::OK();
}

MaterializedGroupAggregate::MaterializedGroupAggregate(
    storage::BufferPool* pool, AggregateOp op)
    : op_(op),
      schema_({db::Field::Int64("group"), db::Field::Int64("count"),
               db::Field::Double("sum"), db::Field::Double("min"),
               db::Field::Double("max"), db::Field::Int64("exact")}) {
  stored_ = std::make_unique<db::Relation>(
      pool, "group_agg", schema_, db::AccessMethod::kClusteredBTree, 0);
}

db::Tuple MaterializedGroupAggregate::Encode(
    int64_t group, const AggregateState& state) const {
  uint8_t buf[AggregateState::kSerializedSize];
  state.Serialize(buf);
  int64_t count;
  double sum, mn, mx;
  std::memcpy(&count, buf, 8);
  std::memcpy(&sum, buf + 8, 8);
  std::memcpy(&mn, buf + 16, 8);
  std::memcpy(&mx, buf + 24, 8);
  return db::Tuple({db::Value(group), db::Value(count), db::Value(sum),
                    db::Value(mn), db::Value(mx),
                    db::Value(int64_t{buf[33] != 0 ? 1 : 0})});
}

AggregateState MaterializedGroupAggregate::Decode(const db::Tuple& t) {
  uint8_t buf[AggregateState::kSerializedSize] = {0};
  const int64_t count = t.at(1).AsInt64();
  const double sum = t.at(2).AsDouble();
  const double mn = t.at(3).AsDouble();
  const double mx = t.at(4).AsDouble();
  std::memcpy(buf, &count, 8);
  std::memcpy(buf + 8, &sum, 8);
  std::memcpy(buf + 16, &mn, 8);
  std::memcpy(buf + 24, &mx, 8);
  buf[33] = t.at(5).AsInt64() != 0 ? 1 : 0;
  return AggregateState::Deserialize(buf);
}

Status MaterializedGroupAggregate::Get(int64_t group,
                                       AggregateState* out) const {
  db::Tuple row;
  VIEWMAT_RETURN_IF_ERROR(stored_->FindByKey(group, &row));
  AggregateState state = Decode(row);
  // The op byte is not stored per row; rebuild it from the view's op.
  uint8_t buf[AggregateState::kSerializedSize];
  state.Serialize(buf);
  buf[32] = static_cast<uint8_t>(op_);
  *out = AggregateState::Deserialize(buf);
  return Status::OK();
}

Status MaterializedGroupAggregate::Put(int64_t group,
                                       const AggregateState& state) {
  db::Tuple existing;
  const Status found = stored_->FindByKey(group, &existing);
  if (state.count() == 0) {
    if (found.ok()) return stored_->DeleteExact(existing);
    return Status::OK();
  }
  if (found.ok()) {
    return stored_->UpdateExact(existing, Encode(group, state));
  }
  return stored_->Insert(Encode(group, state));
}

Status MaterializedGroupAggregate::ApplyInsert(int64_t group, double v) {
  AggregateState state(op_);
  const Status found = Get(group, &state);
  if (!found.ok() && found.code() != StatusCode::kNotFound) return found;
  state.ApplyInsert(v);
  return Put(group, state);
}

Status MaterializedGroupAggregate::ApplyDelete(int64_t group, double v,
                                               bool* needs_recompute) {
  *needs_recompute = false;
  AggregateState state(op_);
  VIEWMAT_RETURN_IF_ERROR(Get(group, &state));
  if (!state.ApplyDelete(v)) *needs_recompute = true;
  return Put(group, state);
}

Status MaterializedGroupAggregate::Scan(const GroupVisitor& visit) const {
  return stored_->Scan([&](const db::Tuple& t) {
    AggregateState state = Decode(t);
    uint8_t buf[AggregateState::kSerializedSize];
    state.Serialize(buf);
    buf[32] = static_cast<uint8_t>(op_);
    return visit(t.at(0).AsInt64(), AggregateState::Deserialize(buf));
  });
}

Status MaterializedGroupAggregate::Clear() {
  std::vector<db::Tuple> all;
  VIEWMAT_RETURN_IF_ERROR(stored_->Scan([&](const db::Tuple& t) {
    all.push_back(t);
    return true;
  }));
  for (const db::Tuple& t : all) {
    VIEWMAT_RETURN_IF_ERROR(stored_->DeleteExact(t));
  }
  return Status::OK();
}

ImmediateGroupAggregateStrategy::ImmediateGroupAggregateStrategy(
    GroupAggregateDef def, storage::CostTracker* tracker)
    : def_(std::move(def)),
      tracker_(tracker),
      screen_(def_.predicate, def_.base->key_field(), tracker),
      stored_(def_.base->pool(), def_.op) {
  VIEWMAT_CHECK(def_.Validate().ok());
}

Status ImmediateGroupAggregateStrategy::InitializeFromBase() {
  VIEWMAT_RETURN_IF_ERROR(stored_.Clear());
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(def_.base->Scan([&](const db::Tuple& t) {
    if (def_.predicate->Evaluate(t)) {
      inner = stored_.ApplyInsert(
          t.at(def_.group_field).AsInt64(),
          def_.op == AggregateOp::kCount ? 1.0
                                         : t.at(def_.agg_field).Numeric());
      if (!inner.ok()) return false;
    }
    return true;
  }));
  return inner;
}

Status ImmediateGroupAggregateStrategy::RecomputeGroup(int64_t group) {
  ++group_recomputes_;
  AggregateState fresh(def_.op);
  VIEWMAT_RETURN_IF_ERROR(def_.base->Scan([&](const db::Tuple& t) {
    if (tracker_ != nullptr) tracker_->ChargeTupleCpu();
    if (t.at(def_.group_field).AsInt64() == group &&
        def_.predicate->Evaluate(t)) {
      fresh.ApplyInsert(def_.op == AggregateOp::kCount
                            ? 1.0
                            : t.at(def_.agg_field).Numeric());
    }
    return true;
  }));
  return stored_.Put(group, fresh);
}

Status ImmediateGroupAggregateStrategy::OnTransaction(
    const db::Transaction& txn) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kUpdateApply);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "txn");
  VIEWMAT_RETURN_IF_ERROR(txn.ApplyToBase());
  const db::NetChange& net = txn.ChangesFor(def_.base);
  auto value_of = [&](const db::Tuple& t) {
    return def_.op == AggregateOp::kCount ? 1.0
                                          : t.at(def_.agg_field).Numeric();
  };
  for (const db::Tuple& t : net.deletes()) {
    if (!screen_.Passes(t)) continue;
    const int64_t group = t.at(def_.group_field).AsInt64();
    bool needs_recompute = false;
    VIEWMAT_RETURN_IF_ERROR(
        stored_.ApplyDelete(group, value_of(t), &needs_recompute));
    if (needs_recompute) {
      VIEWMAT_RETURN_IF_ERROR(RecomputeGroup(group));
    }
  }
  for (const db::Tuple& t : net.inserts()) {
    if (!screen_.Passes(t)) continue;
    VIEWMAT_RETURN_IF_ERROR(
        stored_.ApplyInsert(t.at(def_.group_field).AsInt64(), value_of(t)));
  }
  return Status::OK();
}

Status ImmediateGroupAggregateStrategy::QueryGroup(int64_t group,
                                                   db::Value* out) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  AggregateState state(def_.op);
  VIEWMAT_RETURN_IF_ERROR(stored_.Get(group, &state));
  VIEWMAT_ASSIGN_OR_RETURN(*out, state.Current());
  return Status::OK();
}

Status ImmediateGroupAggregateStrategy::QueryAll(
    const std::function<bool(int64_t, const db::Value&)>& visit) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(
      stored_.Scan([&](int64_t group, const AggregateState& state) {
        auto value = state.Current();
        if (!value.ok()) {
          inner = value.status();
          return false;
        }
        return visit(group, *value);
      }));
  return inner;
}

DeferredGroupAggregateStrategy::DeferredGroupAggregateStrategy(
    GroupAggregateDef def, hr::AdFile::Options ad_options,
    storage::CostTracker* tracker)
    : def_(std::move(def)),
      tracker_(tracker),
      screen_(def_.predicate, def_.base->key_field(), tracker),
      hr_(def_.base, ad_options),
      stored_(def_.base->pool(), def_.op) {
  VIEWMAT_CHECK(def_.Validate().ok());
}

Status DeferredGroupAggregateStrategy::InitializeFromBase() {
  VIEWMAT_RETURN_IF_ERROR(stored_.Clear());
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(def_.base->Scan([&](const db::Tuple& t) {
    if (def_.predicate->Evaluate(t)) {
      inner = stored_.ApplyInsert(
          t.at(def_.group_field).AsInt64(),
          def_.op == AggregateOp::kCount ? 1.0
                                         : t.at(def_.agg_field).Numeric());
      if (!inner.ok()) return false;
    }
    return true;
  }));
  return inner;
}

Status DeferredGroupAggregateStrategy::OnTransaction(
    const db::Transaction& txn) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kUpdateApply);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "txn");
  const db::NetChange& net = txn.ChangesFor(def_.base);
  if (net.empty()) return Status::OK();
  for (const db::Tuple& t : net.deletes()) {
    VIEWMAT_RETURN_IF_ERROR(
        hr_.FindAllByKey(t.at(def_.base->key_field()).AsInt64(),
                         [](const db::Tuple&) { return false; }));
  }
  for (const db::Tuple& t : net.deletes()) screen_.Passes(t);
  for (const db::Tuple& t : net.inserts()) screen_.Passes(t);
  return hr_.RecordChanges(net);
}

Status DeferredGroupAggregateStrategy::RecomputeGroup(int64_t group) {
  AggregateState fresh(def_.op);
  VIEWMAT_RETURN_IF_ERROR(def_.base->Scan([&](const db::Tuple& t) {
    if (tracker_ != nullptr) tracker_->ChargeTupleCpu();
    if (t.at(def_.group_field).AsInt64() == group &&
        def_.predicate->Evaluate(t)) {
      fresh.ApplyInsert(def_.op == AggregateOp::kCount
                            ? 1.0
                            : t.at(def_.agg_field).Numeric());
    }
    return true;
  }));
  return stored_.Put(group, fresh);
}

Status DeferredGroupAggregateStrategy::Refresh() {
  if (hr_.ad().entry_count() == 0) return Status::OK();
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kRefresh);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "refresh");
  std::vector<db::Tuple> a_net;
  std::vector<db::Tuple> d_net;
  VIEWMAT_RETURN_IF_ERROR(hr_.Fold(&a_net, &d_net));
  ++refresh_count_;
  auto value_of = [&](const db::Tuple& t) {
    return def_.op == AggregateOp::kCount ? 1.0
                                          : t.at(def_.agg_field).Numeric();
  };
  // Deletes first (the differential algorithm's order); groups whose
  // extremum left are recomputed after the base fold, so the rebuilt state
  // reflects the post-transaction reality.
  std::vector<int64_t> dirty_groups;
  for (const db::Tuple& t : d_net) {
    if (!def_.predicate->Evaluate(t)) continue;
    const int64_t group = t.at(def_.group_field).AsInt64();
    bool needs_recompute = false;
    VIEWMAT_RETURN_IF_ERROR(
        stored_.ApplyDelete(group, value_of(t), &needs_recompute));
    if (needs_recompute) dirty_groups.push_back(group);
  }
  for (const db::Tuple& t : a_net) {
    if (!def_.predicate->Evaluate(t)) continue;
    VIEWMAT_RETURN_IF_ERROR(
        stored_.ApplyInsert(t.at(def_.group_field).AsInt64(), value_of(t)));
  }
  for (const int64_t group : dirty_groups) {
    VIEWMAT_RETURN_IF_ERROR(RecomputeGroup(group));
  }
  return Status::OK();
}

Status DeferredGroupAggregateStrategy::QueryGroup(int64_t group,
                                                  db::Value* out) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  VIEWMAT_RETURN_IF_ERROR(Refresh());
  AggregateState state(def_.op);
  VIEWMAT_RETURN_IF_ERROR(stored_.Get(group, &state));
  VIEWMAT_ASSIGN_OR_RETURN(*out, state.Current());
  return Status::OK();
}

Status DeferredGroupAggregateStrategy::QueryAll(
    const std::function<bool(int64_t, const db::Value&)>& visit) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  VIEWMAT_RETURN_IF_ERROR(Refresh());
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(
      stored_.Scan([&](int64_t group, const AggregateState& state) {
        auto value = state.Current();
        if (!value.ok()) {
          inner = value.status();
          return false;
        }
        return visit(group, *value);
      }));
  return inner;
}

RecomputeGroupAggregateStrategy::RecomputeGroupAggregateStrategy(
    GroupAggregateDef def, storage::CostTracker* tracker)
    : def_(std::move(def)), tracker_(tracker) {
  VIEWMAT_CHECK(def_.Validate().ok());
}

Status RecomputeGroupAggregateStrategy::OnTransaction(
    const db::Transaction& txn) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kUpdateApply);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "txn");
  return txn.ApplyToBase();
}

Status RecomputeGroupAggregateStrategy::ComputeAll(
    std::map<int64_t, AggregateState>* out) {
  out->clear();
  return def_.base->Scan([&](const db::Tuple& t) {
    if (tracker_ != nullptr) tracker_->ChargeTupleCpu();
    if (def_.predicate->Evaluate(t)) {
      auto [it, inserted] = out->try_emplace(
          t.at(def_.group_field).AsInt64(), AggregateState(def_.op));
      it->second.ApplyInsert(def_.op == AggregateOp::kCount
                                 ? 1.0
                                 : t.at(def_.agg_field).Numeric());
    }
    return true;
  });
}

Status RecomputeGroupAggregateStrategy::QueryGroup(int64_t group,
                                                   db::Value* out) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  std::map<int64_t, AggregateState> all;
  VIEWMAT_RETURN_IF_ERROR(ComputeAll(&all));
  auto it = all.find(group);
  if (it == all.end()) return Status::NotFound("group empty");
  VIEWMAT_ASSIGN_OR_RETURN(*out, it->second.Current());
  return Status::OK();
}

Status RecomputeGroupAggregateStrategy::QueryAll(
    const std::function<bool(int64_t, const db::Value&)>& visit) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  std::map<int64_t, AggregateState> all;
  VIEWMAT_RETURN_IF_ERROR(ComputeAll(&all));
  for (const auto& [group, state] : all) {
    auto value = state.Current();
    if (!value.ok()) return value.status();
    if (!visit(group, *value)) break;
  }
  return Status::OK();
}

}  // namespace viewmat::view
