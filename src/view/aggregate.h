#ifndef VIEWMAT_VIEW_AGGREGATE_H_
#define VIEWMAT_VIEW_AGGREGATE_H_

#include <cstdint>

#include "common/status.h"
#include "hr/hypothetical_relation.h"
#include "storage/cost_tracker.h"
#include "storage/disk.h"
#include "view/screening.h"
#include "view/strategy.h"
#include "view/view_def.h"

namespace viewmat::view {

/// Incrementally maintainable aggregate state (§3.6): a compact summary
/// with insert/delete transition functions and a finalizer. count, sum and
/// avg are fully incremental; min and max are incremental on insert but may
/// require recomputation when the current extremum is deleted (the state
/// then reports exact() == false until rebuilt).
class AggregateState {
 public:
  explicit AggregateState(AggregateOp op = AggregateOp::kSum) : op_(op) {}

  void ApplyInsert(double v);

  /// Applies a deletion. Returns false when the state can no longer answer
  /// exactly (min/max lost their extremum) and must be recomputed.
  bool ApplyDelete(double v);

  /// The current value. NotFound when the aggregated set is empty and the
  /// op has no empty-set value (min/max); FailedPrecondition when inexact.
  StatusOr<db::Value> Current() const;

  bool exact() const { return exact_; }
  int64_t count() const { return count_; }
  AggregateOp op() const { return op_; }

  void Reset();

  /// Fixed-width on-disk image (fits easily in one page).
  static constexpr uint32_t kSerializedSize = 8 * 4 + 2;
  void Serialize(uint8_t* out) const;
  static AggregateState Deserialize(const uint8_t* in);

  friend bool operator==(const AggregateState&, const AggregateState&);

 private:
  AggregateOp op_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool exact_ = true;
};

/// The single-page stored copy of an aggregate view. Reads and writes go
/// straight to the simulated disk (write-through), so each query costs
/// exactly one C2 read and each refresh at most one C2 write — the unit
/// charges of the Model 3 formulas.
class MaterializedAggregate {
 public:
  MaterializedAggregate(storage::DiskInterface* disk, AggregateOp op);

  Status Read(AggregateState* out) const;
  Status Write(const AggregateState& state);

 private:
  storage::DiskInterface* disk_;
  storage::PageId page_;
};

/// Recomputes the aggregate from the base relation with a clustered scan
/// over the predicate's implied key range, charging C1 per tuple screened —
/// the from-scratch path all strategies fall back to and the whole of the
/// kQmRecompute strategy.
Status ComputeAggregateFromBase(const AggregateDef& def,
                                storage::CostTracker* tracker,
                                AggregateState* out);

/// Immediate maintenance of an aggregate: the state is updated (and written
/// through) at the end of every transaction that touches the aggregated
/// set.
class ImmediateAggregateStrategy : public AggregateStrategy {
 public:
  ImmediateAggregateStrategy(AggregateDef def, storage::DiskInterface* disk,
                             storage::CostTracker* tracker);

  Status InitializeFromBase();
  Status OnTransaction(const db::Transaction& txn) override;
  Status QueryValue(db::Value* out) override;
  const char* name() const override { return "immediate-aggregate"; }

  uint64_t recompute_count() const { return recompute_count_; }

 private:
  Status Recompute();

  AggregateDef def_;
  storage::CostTracker* tracker_;
  TLockScreen screen_;
  MaterializedAggregate stored_;
  AggregateState state_;
  uint64_t recompute_count_ = 0;
};

/// Deferred maintenance of an aggregate: updates accumulate in the base
/// relation's AD differential; a query reads the state page, folds the
/// differential, patches the state, and writes it back only if it changed.
class DeferredAggregateStrategy : public AggregateStrategy {
 public:
  DeferredAggregateStrategy(AggregateDef def, hr::AdFile::Options ad_options,
                            storage::DiskInterface* disk,
                            storage::CostTracker* tracker);

  Status InitializeFromBase();
  Status OnTransaction(const db::Transaction& txn) override;
  Status QueryValue(db::Value* out) override;
  const char* name() const override { return "deferred-aggregate"; }

 private:
  AggregateDef def_;
  storage::CostTracker* tracker_;
  TLockScreen screen_;
  hr::HypotheticalRelation hr_;
  MaterializedAggregate stored_;
  AggregateState state_;
};

/// No stored state: every query recomputes the aggregate with a clustered
/// scan (the paper's standard-processing baseline, TOTAL_clustered).
class RecomputeAggregateStrategy : public AggregateStrategy {
 public:
  RecomputeAggregateStrategy(AggregateDef def,
                             storage::CostTracker* tracker);

  Status OnTransaction(const db::Transaction& txn) override;
  Status QueryValue(db::Value* out) override;
  const char* name() const override { return "recompute-aggregate"; }

 private:
  AggregateDef def_;
  storage::CostTracker* tracker_;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_AGGREGATE_H_
