#include "view/advisor.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "costmodel/regions.h"

namespace viewmat::view {

using costmodel::Strategy;

Advice Advise(ViewModel model, const costmodel::Params& params) {
  Advice advice;
  advice.model = model;
  advice.params = params;
  // Candidate sets and evaluators are the shared costmodel definitions, so
  // the advisor, the region figures, and the explain reports rank the same
  // strategies under the same formulas.
  const int model_number = static_cast<int>(model);
  const costmodel::CostFn cost = costmodel::ModelCostFn(model_number);
  for (const Strategy s : costmodel::ModelCandidates(model_number)) {
    advice.ranked.push_back(Advice::Entry{s, cost(s, params)});
  }
  std::sort(advice.ranked.begin(), advice.ranked.end(),
            [](const Advice::Entry& a, const Advice::Entry& b) {
              return a.cost_ms < b.cost_ms;
            });
  return advice;
}

std::string AdviceReport(const Advice& advice) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Model %d view, P=%.3f f=%.3f f_v=%.3f l=%.0f  "
                "(avg model-ms per view query)\n",
                static_cast<int>(advice.model), advice.params.P(),
                advice.params.f, advice.params.f_v, advice.params.l);
  out += buf;
  for (size_t i = 0; i < advice.ranked.size(); ++i) {
    const auto& e = advice.ranked[i];
    std::snprintf(buf, sizeof(buf), "  %zu. %-12s %12.1f ms%s\n", i + 1,
                  costmodel::StrategyName(e.strategy), e.cost_ms,
                  i == 0 ? "   <-- recommended" : "");
    out += buf;
  }
  return out;
}

}  // namespace viewmat::view
