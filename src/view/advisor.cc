#include "view/advisor.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "costmodel/model1.h"
#include "costmodel/model2.h"
#include "costmodel/model3.h"

namespace viewmat::view {

using costmodel::Strategy;

Advice Advise(ViewModel model, const costmodel::Params& params) {
  Advice advice;
  advice.model = model;
  advice.params = params;
  std::vector<Strategy> candidates;
  switch (model) {
    case ViewModel::kSelectProject:
      candidates = {Strategy::kDeferred, Strategy::kImmediate,
                    Strategy::kQmClustered, Strategy::kQmUnclustered,
                    Strategy::kQmSequential};
      break;
    case ViewModel::kJoin:
      candidates = {Strategy::kDeferred, Strategy::kImmediate,
                    Strategy::kQmLoopJoin};
      break;
    case ViewModel::kAggregate:
      candidates = {Strategy::kDeferred, Strategy::kImmediate,
                    Strategy::kQmRecompute};
      break;
  }
  for (const Strategy s : candidates) {
    StatusOr<double> cost = [&]() -> StatusOr<double> {
      switch (model) {
        case ViewModel::kSelectProject:
          return costmodel::Model1Cost(s, params);
        case ViewModel::kJoin:
          return costmodel::Model2Cost(s, params);
        case ViewModel::kAggregate:
          return costmodel::Model3Cost(s, params);
      }
      return Status::Internal("unreachable");
    }();
    VIEWMAT_CHECK(cost.ok());
    advice.ranked.push_back(Advice::Entry{s, *cost});
  }
  std::sort(advice.ranked.begin(), advice.ranked.end(),
            [](const Advice::Entry& a, const Advice::Entry& b) {
              return a.cost_ms < b.cost_ms;
            });
  return advice;
}

std::string AdviceReport(const Advice& advice) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Model %d view, P=%.3f f=%.3f f_v=%.3f l=%.0f  "
                "(avg model-ms per view query)\n",
                static_cast<int>(advice.model), advice.params.P(),
                advice.params.f, advice.params.f_v, advice.params.l);
  out += buf;
  for (size_t i = 0; i < advice.ranked.size(); ++i) {
    const auto& e = advice.ranked[i];
    std::snprintf(buf, sizeof(buf), "  %zu. %-12s %12.1f ms%s\n", i + 1,
                  costmodel::StrategyName(e.strategy), e.cost_ms,
                  i == 0 ? "   <-- recommended" : "");
    out += buf;
  }
  return out;
}

}  // namespace viewmat::view
