#ifndef VIEWMAT_VIEW_MATERIALIZED_VIEW_H_
#define VIEWMAT_VIEW_MATERIALIZED_VIEW_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/relation.h"
#include "db/schema.h"
#include "db/tuple.h"
#include "storage/buffer_pool.h"

namespace viewmat::view {

/// A stored copy of a view maintained with the duplicate-count technique of
/// §2.1: projection can map several source tuples to one view value, so
/// each stored view tuple carries a count of contributing sources.
/// Insertion of an existing value increments the count; deletion decrements
/// it and physically removes the tuple at zero. This makes π distributive
/// over ∪ and −, which the differential update algorithm relies on.
///
/// Storage: a clustered B+-tree on the view's key field, with the count as
/// a hidden trailing int64 column.
class MaterializedView {
 public:
  /// Visitor over distinct view values with their multiplicities.
  using CountedVisitor =
      std::function<bool(const db::Tuple& value, int64_t count)>;

  MaterializedView(storage::BufferPool* pool, std::string name,
                   db::Schema view_schema, size_t view_key_field);

  MaterializedView(const MaterializedView&) = delete;
  MaterializedView& operator=(const MaterializedView&) = delete;

  const db::Schema& view_schema() const { return view_schema_; }
  size_t view_key_field() const { return view_key_field_; }

  /// Registers one more source for `value` (±1 on the duplicate count).
  Status ApplyInsert(const db::Tuple& value);

  /// Removes one source of `value`. Internal error if the value is not
  /// present — that means the maintenance algorithm lost track, exactly the
  /// corruption Appendix A's incorrect expansion causes.
  Status ApplyDelete(const db::Tuple& value);

  /// Batch convenience: all deletes then all inserts.
  Status ApplyDelta(const std::vector<db::Tuple>& inserts,
                    const std::vector<db::Tuple>& deletes);

  /// Clustered scan of values with view key in [lo, hi].
  Status Query(int64_t lo, int64_t hi, const CountedVisitor& visit) const;

  /// Every value, in key order.
  Status ScanAll(const CountedVisitor& visit) const;

  /// Discards the contents (used when rebuilding from scratch).
  Status Clear();

  /// Number of stored (distinct) values and total multiplicity.
  size_t distinct_count() const { return stored_->tuple_count(); }
  int64_t total_count() const { return total_count_; }

  /// Pages holding view data, for experiment reporting.
  size_t data_page_count() const { return stored_->data_page_count(); }

 private:
  /// The stored tuple = view value + trailing count column.
  db::Tuple WithCount(const db::Tuple& value, int64_t count) const;
  db::Tuple StripCount(const db::Tuple& stored, int64_t* count) const;

  /// Finds the stored tuple equal to `value` on all view fields.
  StatusOr<db::Tuple> FindStored(const db::Tuple& value) const;

  db::Schema view_schema_;
  db::Schema stored_schema_;
  size_t view_key_field_;
  std::unique_ptr<db::Relation> stored_;
  int64_t total_count_ = 0;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_MATERIALIZED_VIEW_H_
