#ifndef VIEWMAT_VIEW_BLAKELEY_APPENDIX_A_H_
#define VIEWMAT_VIEW_BLAKELEY_APPENDIX_A_H_

#include <map>
#include <vector>

#include "db/tuple.h"

namespace viewmat::view {

/// Appendix A of the paper shows that the refresh expression in [Blak86]
/// is not always correct: when one transaction deletes joining tuples from
/// *both* relations, the joined result is deleted three times instead of
/// once (it appears in D1×D2, D1×R2 and R1×D2 because the D-terms are
/// joined against the full pre-delete relations). The paper's corrected
/// expression joins the D-sets against R1' = R1 − D1 and R2' = R2 − D2.
///
/// This module implements both expansions over in-memory multisets so the
/// defect is directly observable: under the Blakeley expansion a duplicate
/// count can go negative, which in a stored view with duplicate counts
/// means a corrupted (over-deleted) view.

/// A counted multiset of view tuples. Negative counts represent the
/// corruption the incorrect expansion produces.
using CountedSet = std::map<db::Tuple, int64_t>;

/// Equality join of field `r1_field` of R1 with field `r2_field` of R2,
/// projecting `projection` indices of the concatenated tuple.
struct JoinSpec {
  size_t r1_field = 0;
  size_t r2_field = 0;
  std::vector<size_t> projection;
};

/// π(σ(S1 × S2)) for explicit tuple sets, as a counted multiset.
CountedSet JoinProject(const std::vector<db::Tuple>& s1,
                       const std::vector<db::Tuple>& s2,
                       const JoinSpec& spec);

/// Multiset utilities (∪ adds counts, − subtracts and may go negative).
CountedSet PlusAll(CountedSet base, const CountedSet& add);
CountedSet MinusAll(CountedSet base, const CountedSet& sub);

/// The state of the two relations plus one transaction's net change.
struct TwoRelationDelta {
  std::vector<db::Tuple> r1, r2;  ///< pre-transaction contents
  std::vector<db::Tuple> a1, d1;  ///< net change to R1
  std::vector<db::Tuple> a2, d2;  ///< net change to R2
};

/// V1 per the corrected expansion of §2.1 (D-terms joined against
/// R1' = R1 − D1 and R2' = R2 − D2). Always equals RecomputeFromScratch.
CountedSet HansonRefresh(const CountedSet& v0, const TwoRelationDelta& delta,
                         const JoinSpec& spec);

/// V1 per the [Blak86] expansion reproduced in Appendix A (D-terms joined
/// against the full R1, R2). Incorrect for dual-sided deletions.
CountedSet BlakeleyRefresh(const CountedSet& v0,
                           const TwoRelationDelta& delta,
                           const JoinSpec& spec);

/// Ground truth: the view recomputed from ((R − D) ∪ A) on both sides.
CountedSet RecomputeFromScratch(const TwoRelationDelta& delta,
                                const JoinSpec& spec);

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_BLAKELEY_APPENDIX_A_H_
