#include "view/screening.h"

#include "common/logging.h"

namespace viewmat::view {

TLockScreen::TLockScreen(db::PredicateRef predicate, size_t lock_field,
                         storage::CostTracker* tracker)
    : predicate_(std::move(predicate)),
      lock_field_(lock_field),
      intervals_(predicate_->ImpliedRangeSet(lock_field_)),
      tracker_(tracker) {
  VIEWMAT_CHECK(predicate_ != nullptr);
}

TLockScreen TLockScreen::ForSelectProject(const SelectProjectDef& def,
                                          storage::CostTracker* tracker) {
  return TLockScreen(def.predicate, def.base->key_field(), tracker);
}

TLockScreen TLockScreen::ForJoin(const JoinDef& def,
                                 storage::CostTracker* tracker) {
  return TLockScreen(def.cf, def.r1->key_field(), tracker);
}

TLockScreen TLockScreen::ForAggregate(const AggregateDef& def,
                                      storage::CostTracker* tracker) {
  return TLockScreen(def.predicate, def.base->key_field(), tracker);
}

bool TLockScreen::Passes(const db::Tuple& t) {
  ++screened_;
  // Stage 1: does the tuple disturb a t-locked index interval? Free.
  const db::Value& v = t.at(lock_field_);
  if (v.type() == db::ValueType::kInt64 &&
      !intervals_.Contains(v.AsInt64())) {
    return false;
  }
  ++stage1_hits_;
  // Stage 2: substitute into the view predicate (cost C1). The screen
  // charge is attributed to the screen phase regardless of which strategy
  // entry point triggered it.
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kScreen);
  if (tracker_ != nullptr) tracker_->ChargeScreen();
  const bool pass = predicate_->Evaluate(t);
  if (pass) ++stage2_passes_;
  return pass;
}

}  // namespace viewmat::view
