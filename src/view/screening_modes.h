#ifndef VIEWMAT_VIEW_SCREENING_MODES_H_
#define VIEWMAT_VIEW_SCREENING_MODES_H_

#include <cstdint>
#include <set>

#include "db/predicate.h"
#include "db/transaction.h"
#include "storage/cost_tracker.h"
#include "view/view_def.h"

namespace viewmat::view {

/// The three update-screening schemes §1 surveys. All decide, for each
/// tuple inserted into or deleted from a base relation, whether it might
/// change the view; they differ in cost profile.
enum class ScreeningMode {
  /// Rule indexing [Ston86] (the paper's choice, used by TLockScreen):
  /// stage 1 checks the t-locked index interval for free; only interval
  /// hits pay the C1 substitution. Expected cost C1·f per updated tuple.
  kRuleIndex,
  /// [Blak86]: substitute every tuple into the view predicate. Cost C1 per
  /// updated tuple, unconditionally.
  kSubstituteAll,
  /// Buneman-Clemons [Bune79]: a compile-time phase classifies the whole
  /// command as a readily ignorable update (RIU) when it writes no field
  /// the view reads — per-transaction cost only. Non-RIU commands fall
  /// back to per-tuple substitution at C1 each.
  kRiu,
};

const char* ScreeningModeName(ScreeningMode mode);

/// The set of base-schema field indices a view definition reads (predicate
/// fields plus projected/joined/aggregated fields) — what the RIU
/// compile-time check compares against a command's written fields.
std::set<size_t> FieldsRead(const SelectProjectDef& def);
std::set<size_t> FieldsRead(const JoinDef& def);     ///< fields of R1
std::set<size_t> FieldsRead(const AggregateDef& def);

/// The set of field indices a net change writes: for updates, the fields
/// that actually differ between the deleted and inserted versions; inserts
/// and deletes of whole tuples write every field.
std::set<size_t> FieldsWritten(const db::NetChange& net);

/// A screen implementing all three modes behind one interface, charging
/// the tracker per the mode's cost profile. For kRuleIndex it defers to
/// the same two-stage logic as TLockScreen.
class UpdateScreen {
 public:
  UpdateScreen(ScreeningMode mode, db::PredicateRef predicate,
               size_t lock_field, std::set<size_t> fields_read,
               storage::CostTracker* tracker);

  /// Per-transaction phase: returns true when the whole net change is
  /// readily ignorable (kRiu only; the other modes never short-circuit).
  /// Free of per-tuple cost.
  bool TransactionIsIgnorable(const db::NetChange& net);

  /// Per-tuple phase: true when the tuple may affect the view. Call only
  /// when TransactionIsIgnorable returned false.
  bool Passes(const db::Tuple& t);

  ScreeningMode mode() const { return mode_; }
  uint64_t screened() const { return screened_; }
  uint64_t substitutions() const { return substitutions_; }
  uint64_t riu_transactions() const { return riu_transactions_; }

 private:
  ScreeningMode mode_;
  db::PredicateRef predicate_;
  size_t lock_field_;
  db::IntervalSet intervals_;
  std::set<size_t> fields_read_;
  storage::CostTracker* tracker_;
  uint64_t screened_ = 0;
  uint64_t substitutions_ = 0;
  uint64_t riu_transactions_ = 0;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_SCREENING_MODES_H_
