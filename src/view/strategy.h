#ifndef VIEWMAT_VIEW_STRATEGY_H_
#define VIEWMAT_VIEW_STRATEGY_H_

#include "common/status.h"
#include "db/transaction.h"
#include "view/materialized_view.h"

namespace viewmat::view {

/// A view materialization strategy for tuple-producing views (Models 1 and
/// 2): the engine observes every committed update transaction and answers
/// view queries. Implementations differ in *when* work happens —
/// query modification does it all at query time, immediate at transaction
/// time, deferred just before the query — but must all return the same
/// answer for the same history (tested as the equivalence property).
///
/// The engine owns applying the transaction to the base relations (directly
/// or through a hypothetical relation), so a workload is driven through
/// exactly one engine.
class ViewStrategy {
 public:
  virtual ~ViewStrategy() = default;

  /// Applies one committed update transaction.
  virtual Status OnTransaction(const db::Transaction& txn) = 0;

  /// Queries the view for values whose view key lies in [lo, hi]; the
  /// visitor receives each distinct value with its multiplicity.
  virtual Status Query(int64_t lo, int64_t hi,
                       const MaterializedView::CountedVisitor& visit) = 0;

  virtual const char* name() const = 0;
};

/// Strategy interface for aggregate views (Model 3): a query returns the
/// single aggregate value.
class AggregateStrategy {
 public:
  virtual ~AggregateStrategy() = default;

  virtual Status OnTransaction(const db::Transaction& txn) = 0;

  /// Current aggregate value. NotFound when the aggregated set is empty and
  /// the op has no identity (min/max).
  virtual Status QueryValue(db::Value* out) = 0;

  virtual const char* name() const = 0;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_STRATEGY_H_
