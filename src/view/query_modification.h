#ifndef VIEWMAT_VIEW_QUERY_MODIFICATION_H_
#define VIEWMAT_VIEW_QUERY_MODIFICATION_H_

#include "common/status.h"
#include "db/recovery.h"
#include "storage/cost_tracker.h"
#include "view/strategy.h"
#include "view/view_def.h"

namespace viewmat::view {

/// Query modification [Ston75] for Model 1 views: no copy is kept; each
/// view query is rewritten into a query over the base relation. The access
/// plan follows the base relation's organization:
///  - clustered B+-tree on the predicate field -> clustered range scan
///    (TOTAL_clustered);
///  - heap with an unclustered key index      -> secondary index fetches
///    (TOTAL_unclustered, y(N, b, ...) page reads);
///  - anything else, or force_sequential      -> full scan
///    (TOTAL_sequential).
/// Every tuple touched is screened against the view predicate at C1.
class QmSelectProjectStrategy : public ViewStrategy {
 public:
  QmSelectProjectStrategy(SelectProjectDef def, storage::CostTracker* tracker,
                          bool force_sequential = false);

  Status OnTransaction(const db::Transaction& txn) override;
  Status Query(int64_t lo, int64_t hi,
               const MaterializedView::CountedVisitor& visit) override;
  const char* name() const override { return "query-modification"; }

  /// Commit transactions through the recovery manager (atomic base writes).
  void AttachRecovery(db::RecoveryManager* rm) { recovery_ = rm; }

  /// Crash recovery. QM keeps no materialized state, so recovering the base
  /// relations is the whole job — afterwards every query is correct again.
  Status Recover();

 private:
  SelectProjectDef def_;
  storage::CostTracker* tracker_;
  bool force_sequential_;
  db::RecoveryManager* recovery_ = nullptr;
};

/// Query modification for Model 2 views: nested-loops join with R1 outer
/// (clustered scan of the restricted, queried key range) and R2 inner via
/// its hash index, relying on the buffer pool to keep R2 pages resident
/// (§3.4.3's large-main-memory assumption). Requires the view key to be
/// R1's clustering field so a view-key range maps directly to an R1 range.
class QmJoinStrategy : public ViewStrategy {
 public:
  QmJoinStrategy(JoinDef def, storage::CostTracker* tracker);

  Status OnTransaction(const db::Transaction& txn) override;
  Status Query(int64_t lo, int64_t hi,
               const MaterializedView::CountedVisitor& visit) override;
  const char* name() const override { return "query-modification-loopjoin"; }

  /// Commit transactions through the recovery manager (atomic base writes).
  void AttachRecovery(db::RecoveryManager* rm) { recovery_ = rm; }

  /// Crash recovery (see QmSelectProjectStrategy::Recover).
  Status Recover();

 private:
  JoinDef def_;
  storage::CostTracker* tracker_;
  db::RecoveryManager* recovery_ = nullptr;
};

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_QUERY_MODIFICATION_H_
