#ifndef VIEWMAT_VIEW_ADVISOR_H_
#define VIEWMAT_VIEW_ADVISOR_H_

#include <string>
#include <vector>

#include "costmodel/params.h"
#include "costmodel/strategy.h"

namespace viewmat::view {

/// Which of the paper's view models describes the view.
enum class ViewModel {
  kSelectProject = 1,  ///< Model 1
  kJoin = 2,           ///< Model 2
  kAggregate = 3,      ///< Model 3
};

/// Strategies ranked by predicted cost for one parameter point.
struct Advice {
  ViewModel model;
  costmodel::Params params;
  struct Entry {
    costmodel::Strategy strategy;
    double cost_ms;
  };
  std::vector<Entry> ranked;  ///< ascending cost; front() is the winner

  costmodel::Strategy best() const { return ranked.front().strategy; }
  double best_cost() const { return ranked.front().cost_ms; }
};

/// Ranks the applicable strategies under the paper's cost model — the
/// "query optimizer chooses how to materialize" design §3.3 sketches.
/// The conclusions of §4 fall out of this function: high P, high f or tiny
/// f_v favor query modification; join views favor materialization;
/// aggregates almost always favor materialization.
Advice Advise(ViewModel model, const costmodel::Params& params);

/// Multi-line human-readable report of an Advice.
std::string AdviceReport(const Advice& advice);

}  // namespace viewmat::view

#endif  // VIEWMAT_VIEW_ADVISOR_H_
