#include "view/snapshot.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace viewmat::view {

SnapshotStrategy::SnapshotStrategy(SelectProjectDef def, Options options,
                                   storage::CostTracker* tracker)
    : def_(std::move(def)), options_(options), tracker_(tracker) {
  VIEWMAT_CHECK(def_.Validate().ok());
  VIEWMAT_CHECK(options_.refresh_every_queries >= 1);
  view_ = std::make_unique<MaterializedView>(
      def_.base->pool(), "snapshot_view", def_.ViewSchema(),
      def_.view_key_field);
}

Status SnapshotStrategy::InitializeFromBase() {
  return RefreshNow();
}

Status SnapshotStrategy::RefreshNow() {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kRefresh);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "refresh");
  VIEWMAT_RETURN_IF_ERROR(view_->Clear());
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(def_.base->Scan([&](const db::Tuple& t) {
    if (tracker_ != nullptr) tracker_->ChargeTupleCpu();  // predicate screen
    db::Tuple value;
    if (def_.MapTuple(t, &value)) {
      inner = view_->ApplyInsert(value);
      if (!inner.ok()) return false;
    }
    return true;
  }));
  VIEWMAT_RETURN_IF_ERROR(inner);
  ++refresh_count_;
  stale_transactions_ = 0;
  queries_since_refresh_ = 0;
  return Status::OK();
}

Status SnapshotStrategy::OnTransaction(const db::Transaction& txn) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kUpdateApply);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "txn");
  // No screening, no differential, no view work: the defining property of
  // snapshots. The base commits and the snapshot goes stale.
  if (recovery_ != nullptr) {
    VIEWMAT_RETURN_IF_ERROR(recovery_->CommitAndApply(txn));
  } else {
    VIEWMAT_RETURN_IF_ERROR(txn.ApplyToBase());
  }
  if (!txn.ChangesFor(def_.base).empty()) ++stale_transactions_;
  return Status::OK();
}

Status SnapshotStrategy::Query(int64_t lo, int64_t hi,
                               const MaterializedView::CountedVisitor& visit) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  if (queries_since_refresh_ >= options_.refresh_every_queries) {
    VIEWMAT_RETURN_IF_ERROR(RefreshNow());
  }
  ++queries_since_refresh_;
  return view_->Query(lo, hi, visit);
}

Status SnapshotStrategy::Recover() {
  if (recovery_ == nullptr) {
    return Status::FailedPrecondition(
        "no recovery manager attached to the snapshot strategy");
  }
  VIEWMAT_RETURN_IF_ERROR(recovery_->Recover());
  return RefreshNow();
}

}  // namespace viewmat::view
