#include "view/blakeley_appendix_a.h"

#include <algorithm>

namespace viewmat::view {

namespace {

/// Multiset difference of plain tuple vectors (each D occurrence removes
/// one matching occurrence).
std::vector<db::Tuple> VectorMinus(std::vector<db::Tuple> base,
                                   const std::vector<db::Tuple>& sub) {
  for (const db::Tuple& t : sub) {
    auto it = std::find(base.begin(), base.end(), t);
    if (it != base.end()) base.erase(it);
  }
  return base;
}

std::vector<db::Tuple> VectorPlus(std::vector<db::Tuple> base,
                                  const std::vector<db::Tuple>& add) {
  base.insert(base.end(), add.begin(), add.end());
  return base;
}

}  // namespace

CountedSet JoinProject(const std::vector<db::Tuple>& s1,
                       const std::vector<db::Tuple>& s2,
                       const JoinSpec& spec) {
  CountedSet out;
  for (const db::Tuple& t1 : s1) {
    for (const db::Tuple& t2 : s2) {
      if (!(t1.at(spec.r1_field) == t2.at(spec.r2_field))) continue;
      const db::Tuple joined = db::Tuple::Concat(t1, t2);
      ++out[joined.Project(spec.projection)];
    }
  }
  return out;
}

CountedSet PlusAll(CountedSet base, const CountedSet& add) {
  for (const auto& [t, n] : add) {
    base[t] += n;
    if (base[t] == 0) base.erase(t);
  }
  return base;
}

CountedSet MinusAll(CountedSet base, const CountedSet& sub) {
  for (const auto& [t, n] : sub) {
    base[t] -= n;  // may go negative: that IS the Appendix A defect
    if (base[t] == 0) base.erase(t);
  }
  return base;
}

CountedSet HansonRefresh(const CountedSet& v0, const TwoRelationDelta& delta,
                         const JoinSpec& spec) {
  const std::vector<db::Tuple> r1p = VectorMinus(delta.r1, delta.d1);
  const std::vector<db::Tuple> r2p = VectorMinus(delta.r2, delta.d2);
  CountedSet v1 = v0;
  // Deletions against the *post-delete* relations plus the D×D cross term.
  v1 = MinusAll(std::move(v1), JoinProject(r1p, delta.d2, spec));
  v1 = MinusAll(std::move(v1), JoinProject(delta.d1, r2p, spec));
  v1 = MinusAll(std::move(v1), JoinProject(delta.d1, delta.d2, spec));
  // Insertions against the post-delete relations plus the A×A cross term.
  v1 = PlusAll(std::move(v1), JoinProject(r1p, delta.a2, spec));
  v1 = PlusAll(std::move(v1), JoinProject(delta.a1, r2p, spec));
  v1 = PlusAll(std::move(v1), JoinProject(delta.a1, delta.a2, spec));
  return v1;
}

CountedSet BlakeleyRefresh(const CountedSet& v0,
                           const TwoRelationDelta& delta,
                           const JoinSpec& spec) {
  CountedSet v1 = v0;
  // As quoted in Appendix A: the D-terms join the FULL pre-delete
  // relations, so a tuple deleted from both sides is removed three times.
  v1 = PlusAll(std::move(v1), JoinProject(delta.a1, delta.a2, spec));
  v1 = PlusAll(std::move(v1), JoinProject(delta.a1, delta.r2, spec));
  v1 = PlusAll(std::move(v1), JoinProject(delta.r1, delta.a2, spec));
  v1 = MinusAll(std::move(v1), JoinProject(delta.d1, delta.d2, spec));
  v1 = MinusAll(std::move(v1), JoinProject(delta.d1, delta.r2, spec));
  v1 = MinusAll(std::move(v1), JoinProject(delta.r1, delta.d2, spec));
  return v1;
}

CountedSet RecomputeFromScratch(const TwoRelationDelta& delta,
                                const JoinSpec& spec) {
  const std::vector<db::Tuple> r1_new =
      VectorPlus(VectorMinus(delta.r1, delta.d1), delta.a1);
  const std::vector<db::Tuple> r2_new =
      VectorPlus(VectorMinus(delta.r2, delta.d2), delta.a2);
  return JoinProject(r1_new, r2_new, spec);
}

}  // namespace viewmat::view
