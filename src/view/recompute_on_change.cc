#include "view/recompute_on_change.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace viewmat::view {

RecomputeOnChangeStrategy::RecomputeOnChangeStrategy(
    SelectProjectDef def, storage::CostTracker* tracker)
    : def_(std::move(def)),
      tracker_(tracker),
      screen_(ScreeningMode::kRiu, def_.predicate, def_.base->key_field(),
              FieldsRead(def_), tracker) {
  VIEWMAT_CHECK(def_.Validate().ok());
  view_ = std::make_unique<MaterializedView>(
      def_.base->pool(), "roc_view", def_.ViewSchema(), def_.view_key_field);
}

Status RecomputeOnChangeStrategy::InitializeFromBase() {
  dirty_ = true;
  return Recompute();
}

Status RecomputeOnChangeStrategy::Recompute() {
  if (!dirty_) return Status::OK();
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kRefresh);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "recompute");
  VIEWMAT_RETURN_IF_ERROR(view_->Clear());
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(def_.base->Scan([&](const db::Tuple& t) {
    if (tracker_ != nullptr) tracker_->ChargeTupleCpu();
    db::Tuple value;
    if (def_.MapTuple(t, &value)) {
      inner = view_->ApplyInsert(value);
      if (!inner.ok()) return false;
    }
    return true;
  }));
  VIEWMAT_RETURN_IF_ERROR(inner);
  ++recompute_count_;
  dirty_ = false;
  return Status::OK();
}

Status RecomputeOnChangeStrategy::OnTransaction(const db::Transaction& txn) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kUpdateApply);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "txn");
  if (recovery_ != nullptr) {
    VIEWMAT_RETURN_IF_ERROR(recovery_->CommitAndApply(txn));
  } else {
    VIEWMAT_RETURN_IF_ERROR(txn.ApplyToBase());
  }
  const db::NetChange& net = txn.ChangesFor(def_.base);
  if (net.empty()) return Status::OK();
  // Phase 1 (compile time): readily ignorable commands cost nothing more.
  if (screen_.TransactionIsIgnorable(net)) {
    ++ignored_transactions_;
    return Status::OK();
  }
  // Phase 2 (run time): if any tuple may affect the view, mark it dirty —
  // [Bune79] recomputes rather than patches.
  for (const db::Tuple& t : net.deletes()) {
    if (screen_.Passes(t)) {
      dirty_ = true;
    }
  }
  for (const db::Tuple& t : net.inserts()) {
    if (screen_.Passes(t)) {
      dirty_ = true;
    }
  }
  return Status::OK();
}

Status RecomputeOnChangeStrategy::Query(
    int64_t lo, int64_t hi, const MaterializedView::CountedVisitor& visit) {
  const storage::ScopedPhase phase_tag(tracker_, storage::Phase::kQuery);
  const obs::ScopedSpan span(storage::TracerOf(tracker_), "query");
  VIEWMAT_RETURN_IF_ERROR(Recompute());
  return view_->Query(lo, hi, visit);
}

Status RecomputeOnChangeStrategy::Recover() {
  if (recovery_ == nullptr) {
    return Status::FailedPrecondition(
        "no recovery manager attached to the recompute-on-change strategy");
  }
  VIEWMAT_RETURN_IF_ERROR(recovery_->Recover());
  // A crash may have interrupted a recompute (partially rebuilt copy) or a
  // screened-out delta may have landed during redo; recomputing is the
  // strategy's uniform answer.
  dirty_ = true;
  return Status::OK();
}

}  // namespace viewmat::view
