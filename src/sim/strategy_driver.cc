#include "sim/strategy_driver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace viewmat::sim {

using costmodel::Params;
using workload::Scenario;

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kQueryModification: return "query-modification";
    case StrategyKind::kImmediate: return "immediate";
    case StrategyKind::kDeferred: return "deferred";
    case StrategyKind::kSnapshot: return "snapshot";
    case StrategyKind::kRecomputeOnChange: return "recompute-on-change";
    case StrategyKind::kHybrid: return "hybrid";
  }
  return "unknown";
}

StatusOr<StrategyKind> ParseStrategyKind(const std::string& name) {
  for (StrategyKind kind : kAllStrategyKinds) {
    if (name == StrategyKindName(kind)) return kind;
  }
  if (name == "qm") return StrategyKind::kQueryModification;
  if (name == "recompute") return StrategyKind::kRecomputeOnChange;
  return Status::InvalidArgument("unknown strategy '" + name + "'");
}

Params TortureParams(const Params& base) {
  Params p = base;
  p.N = 96;
  p.S = 64;
  p.B = 512;
  p.n = 16;
  p.k = 24;
  p.l = 4;
  p.q = 8;
  p.f = 0.5;
  p.f_v = 0.5;
  p.f_R2 = 0.25;
  return p;
}

hr::AdFile::Options TortureAdOptions(const Params& params,
                                     storage::LsnAllocator* lsns,
                                     bool group_commit) {
  hr::AdFile::Options options;
  const double expected = std::max(2.0 * params.u(), 64.0);
  options.expected_keys = static_cast<size_t>(expected);
  options.hash_buckets = static_cast<uint32_t>(
      std::max(2.0, 2.0 * params.u() / params.T() + 1.0));
  options.enable_wal = true;
  options.lsn_allocator = lsns;
  options.log_auto_sync = !group_commit;
  return options;
}

ShadowOracle MakeShadow(const Scenario& scenario) {
  ShadowOracle shadow;
  shadow.n = scenario.n();
  shadow.f_cut = scenario.ViewTupleCount();
  shadow.k2.resize(shadow.n);
  shadow.v.resize(shadow.n);
  for (int64_t key = 0; key < shadow.n; ++key) {
    const db::Tuple t = scenario.BaseTuple(key);
    shadow.k2[key] = t.at(Scenario::kFieldK2).AsInt64();
    shadow.v[key] = t.at(Scenario::kFieldV).AsDouble();
  }
  shadow.w_by_r2_key.resize(scenario.r2_count());
  for (int64_t key = 0; key < scenario.r2_count(); ++key) {
    shadow.w_by_r2_key[key] = scenario.R2Tuple(key).at(1).AsDouble();
  }
  return shadow;
}

bool ShadowViewTuple(const ShadowOracle& shadow, int model, int64_t key,
                     db::Tuple* out) {
  if (key < 0 || key >= shadow.f_cut) return false;
  if (model == 1) {
    // Projection (k1, v) of the select-project definition.
    *out = db::Tuple({db::Value(key), db::Value(shadow.v[key])});
    return true;
  }
  // Join projection (k1, v) ++ (r2key, w).
  const int64_t r2key = shadow.k2[key];
  *out = db::Tuple({db::Value(key), db::Value(shadow.v[key]),
                    db::Value(r2key), db::Value(shadow.w_by_r2_key[r2key])});
  return true;
}

ViewMultiset ExpectedRange(const ShadowOracle& shadow, int model, int64_t lo,
                           int64_t hi) {
  ViewMultiset expected;
  const int64_t from = std::max<int64_t>(lo, 0);
  const int64_t to = std::min<int64_t>(hi, shadow.f_cut - 1);
  for (int64_t key = from; key <= to; ++key) {
    db::Tuple value;
    if (ShadowViewTuple(shadow, model, key, &value)) expected[value] += 1;
  }
  return expected;
}

view::SelectProjectDef MakeSpDef(Scenario* scenario, db::Relation* base) {
  view::SelectProjectDef def;
  def.base = base;
  def.predicate = scenario->ViewPredicate();
  def.projection = {Scenario::kFieldK1, Scenario::kFieldV};
  def.view_key_field = 0;
  return def;
}

view::JoinDef MakeJoinDef(Scenario* scenario, db::Relation* r1,
                          db::Relation* r2) {
  view::JoinDef def;
  def.r1 = r1;
  def.r2 = r2;
  def.cf = scenario->ViewPredicate();
  def.r1_join_field = Scenario::kFieldK2;
  def.r1_projection = {Scenario::kFieldK1, Scenario::kFieldV};
  def.r2_projection = {0, 1};
  def.view_key_field = 0;
  return def;
}

Status RecomputeFromBase(int model, const view::SelectProjectDef& sp,
                         const view::JoinDef& join, db::Relation* rel,
                         ViewMultiset* out) {
  out->clear();
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(rel->Scan([&](const db::Tuple& t) {
    db::Tuple value;
    if (model == 1) {
      if (sp.MapTuple(t, &value)) (*out)[value] += 1;
      return true;
    }
    auto mapped = join.MapTuple(t, &value, nullptr);
    if (!mapped.ok()) {
      inner = mapped.status();
      return false;
    }
    if (*mapped) (*out)[value] += 1;
    return true;
  }));
  return inner;
}

StrategyDriver::StrategyDriver(const Options& options)
    : options_(options),
      tracker_(options.params.C1, options.params.C2, options.params.C3),
      inner_(static_cast<uint32_t>(options.params.B), &tracker_),
      disk_(&inner_, options.seed),
      pool_(&disk_, options.pool_pages),
      catalog_(&pool_),
      scenario_(options.params, options.seed) {}

StatusOr<std::unique_ptr<StrategyDriver>> StrategyDriver::Create(
    const Options& options) {
  if (options.model != 1 && options.model != 2) {
    return Status::InvalidArgument("strategy driver supports models 1 and 2");
  }
  if (options.model == 2 &&
      options.kind != StrategyKind::kQueryModification &&
      options.kind != StrategyKind::kImmediate &&
      options.kind != StrategyKind::kDeferred) {
    return Status::InvalidArgument(
        std::string("model 2 is not supported by the ") +
        StrategyKindName(options.kind) + " strategy");
  }
  std::unique_ptr<StrategyDriver> driver(new StrategyDriver(options));
  VIEWMAT_RETURN_IF_ERROR(driver->Build());
  return driver;
}

Status StrategyDriver::Build() {
  // Load the database with a healthy device.
  VIEWMAT_ASSIGN_OR_RETURN(
      rel_,
      scenario_.LoadBase(&catalog_, "R", db::AccessMethod::kClusteredBTree));
  if (options_.model == 2) {
    VIEWMAT_ASSIGN_OR_RETURN(r2_, scenario_.LoadR2(&catalog_, "R2"));
  }
  sp_def_ = options_.model == 1 ? MakeSpDef(&scenario_, rel_)
                                : view::SelectProjectDef();
  join_def_ = options_.model == 2 ? MakeJoinDef(&scenario_, rel_, r2_)
                                  : view::JoinDef();

  // The recovery manager exists for every strategy: the RM-committing ones
  // route their transactions through it; deferred/hybrid only borrow its
  // LSN allocator so their AD logs join the unified LSN space.
  db::RecoveryManager::Options rm_options;
  rm_options.checkpoint_every = options_.checkpoint_every;
  rm_options.sync_on_commit = !options_.group_commit;
  recovery_ = std::make_unique<db::RecoveryManager>(&pool_, rm_options);
  recovery_->Register(rel_);
  if (r2_ != nullptr) recovery_->Register(r2_);
  storage::LsnAllocator* lsns = recovery_->wal()->lsn_allocator();

  switch (options_.kind) {
    case StrategyKind::kQueryModification:
      if (options_.model == 1) {
        qm_sp_ =
            std::make_unique<view::QmSelectProjectStrategy>(sp_def_, &tracker_);
        qm_sp_->AttachRecovery(recovery_.get());
      } else {
        qm_join_ = std::make_unique<view::QmJoinStrategy>(join_def_, &tracker_);
        qm_join_->AttachRecovery(recovery_.get());
      }
      break;
    case StrategyKind::kImmediate:
      immediate_ =
          options_.model == 1
              ? std::make_unique<view::ImmediateStrategy>(sp_def_, &tracker_)
              : std::make_unique<view::ImmediateStrategy>(join_def_, &tracker_);
      immediate_->AttachRecovery(recovery_.get());
      VIEWMAT_RETURN_IF_ERROR(immediate_->InitializeFromBase());
      break;
    case StrategyKind::kDeferred:
      deferred_ =
          options_.model == 1
              ? std::make_unique<view::DeferredStrategy>(
                    sp_def_,
                    TortureAdOptions(options_.params, lsns,
                                     options_.group_commit),
                    &tracker_)
              : std::make_unique<view::DeferredStrategy>(
                    join_def_,
                    TortureAdOptions(options_.params, lsns,
                                     options_.group_commit),
                    &tracker_);
      VIEWMAT_RETURN_IF_ERROR(deferred_->InitializeFromBase());
      break;
    case StrategyKind::kSnapshot: {
      // Refresh before every query: the torture oracle demands exact
      // answers, so the staleness the snapshot scheme normally tolerates is
      // configured away and only its crash behavior is under test.
      view::SnapshotStrategy::Options snap_options;
      snap_options.refresh_every_queries = 1;
      snapshot_ = std::make_unique<view::SnapshotStrategy>(
          sp_def_, snap_options, &tracker_);
      snapshot_->AttachRecovery(recovery_.get());
      VIEWMAT_RETURN_IF_ERROR(snapshot_->InitializeFromBase());
      break;
    }
    case StrategyKind::kRecomputeOnChange:
      recompute_ = std::make_unique<view::RecomputeOnChangeStrategy>(
          sp_def_, &tracker_);
      recompute_->AttachRecovery(recovery_.get());
      VIEWMAT_RETURN_IF_ERROR(recompute_->InitializeFromBase());
      break;
    case StrategyKind::kHybrid:
      hybrid_ = std::make_unique<view::HybridStrategy>(
          sp_def_,
          TortureAdOptions(options_.params, lsns, options_.group_commit),
          &tracker_);
      VIEWMAT_RETURN_IF_ERROR(hybrid_->InitializeFromBase());
      break;
  }
  return pool_.FlushAll();
}

Status StrategyDriver::OnTransaction(const db::Transaction& txn) {
  switch (options_.kind) {
    case StrategyKind::kQueryModification:
      return qm_sp_ != nullptr ? qm_sp_->OnTransaction(txn)
                               : qm_join_->OnTransaction(txn);
    case StrategyKind::kImmediate: return immediate_->OnTransaction(txn);
    case StrategyKind::kDeferred: return deferred_->OnTransaction(txn);
    case StrategyKind::kSnapshot: return snapshot_->OnTransaction(txn);
    case StrategyKind::kRecomputeOnChange:
      return recompute_->OnTransaction(txn);
    case StrategyKind::kHybrid: return hybrid_->OnTransaction(txn);
  }
  return Status::Internal("unreachable");
}

Status StrategyDriver::Query(int64_t lo, int64_t hi,
                             const view::MaterializedView::CountedVisitor& visit) {
  switch (options_.kind) {
    case StrategyKind::kQueryModification:
      return qm_sp_ != nullptr ? qm_sp_->Query(lo, hi, visit)
                               : qm_join_->Query(lo, hi, visit);
    case StrategyKind::kImmediate: return immediate_->Query(lo, hi, visit);
    case StrategyKind::kDeferred: return deferred_->Query(lo, hi, visit);
    case StrategyKind::kSnapshot:
      // The torture oracle demands exact answers; refresh away the
      // staleness the snapshot scheme normally tolerates so only its crash
      // behavior (and the refresh path itself) is under test.
      if (snapshot_->stale_transactions() > 0) {
        VIEWMAT_RETURN_IF_ERROR(snapshot_->RefreshNow());
      }
      return snapshot_->Query(lo, hi, visit);
    case StrategyKind::kRecomputeOnChange:
      return recompute_->Query(lo, hi, visit);
    case StrategyKind::kHybrid: return hybrid_->Query(lo, hi, visit);
  }
  return Status::Internal("unreachable");
}

Status StrategyDriver::Recover() {
  switch (options_.kind) {
    case StrategyKind::kQueryModification:
      return qm_sp_ != nullptr ? qm_sp_->Recover() : qm_join_->Recover();
    case StrategyKind::kImmediate: return immediate_->Recover();
    case StrategyKind::kDeferred: return deferred_->Recover();
    case StrategyKind::kSnapshot: return snapshot_->Recover();
    case StrategyKind::kRecomputeOnChange: return recompute_->Recover();
    case StrategyKind::kHybrid: return hybrid_->Recover();
  }
  return Status::Internal("unreachable");
}

Status StrategyDriver::SyncWal() {
  switch (options_.kind) {
    case StrategyKind::kDeferred:
      return deferred_->hypothetical()->mutable_ad()->SyncLog();
    case StrategyKind::kHybrid:
      return hybrid_->hypothetical()->mutable_ad()->SyncLog();
    default: return recovery_->SyncWal();
  }
}

Status StrategyDriver::DiscardVolatileWal() {
  switch (options_.kind) {
    case StrategyKind::kDeferred:
      return deferred_->hypothetical()->mutable_ad()->DiscardVolatileLog();
    case StrategyKind::kHybrid:
      return hybrid_->hypothetical()->mutable_ad()->DiscardVolatileLog();
    default: return recovery_->DiscardVolatileWal();
  }
}

Status StrategyDriver::Converge() {
  // Converge is a live quiesce point, not crash recovery: every
  // acknowledged commit has already been applied to volatile state, so the
  // log must be made durable BEFORE Recover() redoes the durable history.
  // Under group commit a buffered tail leaves the base AHEAD of the
  // durable log; redoing just the durable prefix onto it resurrects
  // intermediate tuple versions whose covering updates are still volatile.
  // After a real crash the harness discards the volatile tail first
  // (DiscardVolatileWal), which makes this sync a no-op rather than a
  // resurrection.
  VIEWMAT_RETURN_IF_ERROR(SyncWal());
  VIEWMAT_RETURN_IF_ERROR(Recover());
  switch (options_.kind) {
    case StrategyKind::kDeferred: return deferred_->Refresh();
    case StrategyKind::kHybrid: return hybrid_->Refresh();
    case StrategyKind::kSnapshot: return snapshot_->RefreshNow();
    default: return Status::OK();
  }
}

uint64_t StrategyDriver::txn_seq() const {
  switch (options_.kind) {
    case StrategyKind::kDeferred: return deferred_->txn_seq();
    case StrategyKind::kHybrid: return hybrid_->txn_seq();
    default: return recovery_->txn_seq();
  }
}

uint64_t StrategyDriver::committed_txn_high_water() const {
  switch (options_.kind) {
    case StrategyKind::kDeferred: return deferred_->committed_txn_high_water();
    case StrategyKind::kHybrid: return hybrid_->committed_txn_high_water();
    default: return recovery_->last_committed_txn();
  }
}

Status StrategyDriver::VisibleBase(ViewMultiset* out) const {
  out->clear();
  const auto visit = [&](const db::Tuple& t) {
    (*out)[t] += 1;
    return true;
  };
  // Deferred and hybrid keep committed transactions in the differential
  // until a fold; the hypothetical relation (base ∪ A − D) is what a reader
  // is entitled to see.
  constexpr int64_t kLo = std::numeric_limits<int64_t>::min();
  constexpr int64_t kHi = std::numeric_limits<int64_t>::max();
  switch (options_.kind) {
    case StrategyKind::kDeferred:
      return deferred_->hypothetical()->RangeScanByKey(kLo, kHi, visit);
    case StrategyKind::kHybrid:
      return hybrid_->hypothetical()->RangeScanByKey(kLo, kHi, visit);
    default: return rel_->Scan(visit);
  }
}

uint64_t StrategyDriver::recoveries() const {
  switch (options_.kind) {
    case StrategyKind::kDeferred: return deferred_->recoveries();
    case StrategyKind::kHybrid: return hybrid_->recoveries();
    default: return recovery_->recoveries();
  }
}

uint64_t StrategyDriver::degraded_queries() const {
  return options_.kind == StrategyKind::kDeferred
             ? deferred_->degraded_queries()
             : 0;
}

}  // namespace viewmat::sim
