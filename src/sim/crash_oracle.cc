#include "sim/crash_oracle.h"

#include <cstdio>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "workload/workload.h"

namespace viewmat::sim {

namespace {

using costmodel::Params;
using workload::Scenario;

/// Recovery attempts before declaring the run corrupt. The crash model
/// fires at most one scripted crash per run, so a healthy-device recovery
/// should succeed immediately; the headroom rides out a crash landing
/// inside a recovery pass itself.
constexpr int kMaxRecoverAttempts = 8;

struct RunStats {
  bool crashed = false;
  uint64_t recoveries = 0;
  uint64_t rejected_txns = 0;
  uint64_t failed_queries = 0;
  uint64_t prefix_checks = 0;
  bool divergence = false;
  bool stale_read = false;
  bool corrupt = false;
  /// Disk ops from post-setup through post-convergence (healthy run only).
  uint64_t window_ops = 0;
};

/// The committed-prefix equivalence check: visible base contents must equal
/// the shadow's committed state, and a full-range view query must be exact.
void CheckPrefix(StrategyDriver* driver, const ShadowOracle& shadow,
                 RunStats* stats) {
  ++stats->prefix_checks;
  ViewMultiset got_base;
  Status scanned = driver->VisibleBase(&got_base);
  if (!scanned.ok()) {
    stats->divergence = true;
    return;
  }
  ViewMultiset want_base;
  for (int64_t key = 0; key < shadow.n; ++key) {
    want_base[shadow.BaseTuple(key)] += 1;
  }
  if (got_base != want_base) stats->divergence = true;

  ViewMultiset got;
  Status queried =
      driver->Query(0, shadow.n - 1, [&](const db::Tuple& value,
                                         int64_t count) {
        got[value] += count;
        return true;
      });
  if (!queried.ok()) {
    // A healthy post-recovery device must serve reads.
    stats->divergence = true;
    return;
  }
  if (got != ExpectedRange(shadow, driver->model(), 0, shadow.n - 1)) {
    stats->stale_read = true;
  }
}

/// Restart + Recover until it sticks, then run the equivalence check.
/// Returns false when recovery never succeeded (the run is corrupt).
bool RecoverAndCheck(StrategyDriver* driver, const ShadowOracle& shadow,
                     RunStats* stats) {
  bool recovered = false;
  for (int attempt = 0; attempt < kMaxRecoverAttempts; ++attempt) {
    if (driver->disk()->crashed()) driver->disk()->Restart();
    if (driver->Recover().ok()) {
      recovered = true;
      break;
    }
  }
  if (!recovered) {
    stats->corrupt = true;
    return false;
  }
  CheckPrefix(driver, shadow, stats);
  return true;
}

/// One oracle run: the seeded workload against a fresh instance, with a
/// scripted crash at disk operation `crash_at` (0 = healthy baseline).
Status RunOne(const CrashOracleOptions& options, const Params& params,
              uint64_t crash_at, RunStats* stats) {
  StrategyDriver::Options dopt;
  dopt.kind = options.kind;
  dopt.model = options.model;
  dopt.params = params;
  dopt.seed = options.seed;
  dopt.checkpoint_every = options.checkpoint_every;
  VIEWMAT_ASSIGN_OR_RETURN(std::unique_ptr<StrategyDriver> driver,
                           StrategyDriver::Create(dopt));
  const uint64_t window_start = driver->disk()->op_count();
  if (crash_at > 0) driver->disk()->ScriptCrashAtOp(crash_at);

  // The same RNG seed for every run: healthy and crashed runs build the
  // same op stream until a crash makes their histories diverge (each run
  // stays internally consistent with its own shadow either way).
  Random rng(options.seed | 1);
  ShadowOracle shadow = MakeShadow(*driver->scenario());

  const int64_t l = static_cast<int64_t>(params.l);
  for (int op = 0; op < options.ops_per_run; ++op) {
    if (driver->disk()->crashed()) {
      // The crash fired somewhere in the previous operation; this is the
      // oracle's moment: restart, recover, and demand prefix equivalence.
      if (!RecoverAndCheck(driver.get(), shadow, stats)) break;
    }
    const bool is_query =
        options.query_every > 0 &&
        (op % options.query_every) == (options.query_every - 1);
    if (!is_query) {
      db::Transaction txn;
      std::map<int64_t, double> staged;
      for (int64_t j = 0; j < l; ++j) {
        const int64_t key = static_cast<int64_t>(rng.Uniform(shadow.n));
        const double old_v = staged.count(key) ? staged[key] : shadow.v[key];
        const double new_v = rng.NextDouble() * 1000.0;
        db::Tuple old_t = shadow.BaseTuple(key);
        old_t.at(Scenario::kFieldV) = db::Value(old_v);
        db::Tuple new_t = old_t;
        new_t.at(Scenario::kFieldV) = db::Value(new_v);
        txn.Update(driver->base(), old_t, new_t);
        staged[key] = new_v;
      }
      const uint64_t seq_before = driver->txn_seq();
      const Status st = driver->OnTransaction(txn);
      bool committed = st.ok();
      if (!st.ok()) {
        if (driver->txn_seq() == seq_before) {
          // Rejected before an id was issued: no commit record can exist.
          ++stats->rejected_txns;
        } else {
          // Ambiguous: the recovered log's committed high-water mark is the
          // arbiter. Recovery doubles as a prefix-equivalence checkpoint —
          // but only after the shadow has been settled, so resolve first.
          const uint64_t id = driver->txn_seq();
          bool recovered = false;
          for (int attempt = 0; attempt < kMaxRecoverAttempts; ++attempt) {
            if (driver->disk()->crashed()) driver->disk()->Restart();
            if (driver->Recover().ok()) {
              recovered = true;
              break;
            }
          }
          if (!recovered) {
            stats->corrupt = true;
            break;
          }
          committed = driver->committed_txn_high_water() >= id;
          if (!committed) ++stats->rejected_txns;
          if (committed) {
            for (const auto& [key, new_v] : staged) shadow.v[key] = new_v;
          }
          CheckPrefix(driver.get(), shadow, stats);
          continue;
        }
      }
      if (committed) {
        for (const auto& [key, new_v] : staged) shadow.v[key] = new_v;
      }
    } else {
      const int64_t lo = static_cast<int64_t>(rng.Uniform(shadow.n));
      const int64_t hi = lo + static_cast<int64_t>(rng.Uniform(
                                  std::max<int64_t>(1, shadow.n / 2)));
      ViewMultiset got;
      const Status st =
          driver->Query(lo, hi, [&](const db::Tuple& value, int64_t count) {
            got[value] += count;
            return true;
          });
      if (!st.ok()) {
        // A loud failure is acceptable mid-crash; a wrong answer never.
        ++stats->failed_queries;
      } else if (got != ExpectedRange(shadow, options.model, lo, hi)) {
        stats->stale_read = true;
      }
    }
  }

  // Convergence: the crash (if any) fires exactly once, so with restarts
  // this loop always reaches a healthy device.
  if (!stats->corrupt) {
    Status converged = Status::Internal("not attempted");
    for (int attempt = 0; attempt < kMaxRecoverAttempts && !converged.ok();
         ++attempt) {
      if (driver->disk()->crashed()) driver->disk()->Restart();
      converged = driver->Converge();
    }
    if (!converged.ok()) stats->corrupt = true;
  }
  stats->window_ops = driver->disk()->op_count() - window_start;

  // Golden check on a guaranteed-quiet device: the converged answer must
  // equal the oracle AND a from-scratch recompute over the folded base.
  driver->disk()->ClearFaults();
  if (driver->disk()->crashed()) driver->disk()->Restart();
  if (!stats->corrupt) {
    ViewMultiset got;
    Status st = driver->Query(0, shadow.n - 1,
                              [&](const db::Tuple& value, int64_t count) {
                                got[value] += count;
                                return true;
                              });
    ViewMultiset recomputed;
    if (st.ok()) {
      st = RecomputeFromBase(options.model, driver->sp_def(),
                             driver->join_def(), driver->base(), &recomputed);
    }
    if (!st.ok()) {
      stats->corrupt = true;
    } else {
      const ViewMultiset expected =
          ExpectedRange(shadow, options.model, 0, shadow.n - 1);
      if (got != expected || recomputed != expected) stats->corrupt = true;
    }
  }

  stats->crashed = driver->disk()->crashes() > 0;
  stats->recoveries = driver->recoveries();
  return Status::OK();
}

}  // namespace

std::string CrashOracleResult::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  %llu crash points, %llu fired, %llu recoveries, "
                "%llu checks: %d divergences, %d stale, %d corrupt",
                static_cast<unsigned long long>(crash_points),
                static_cast<unsigned long long>(crashes_fired),
                static_cast<unsigned long long>(recoveries),
                static_cast<unsigned long long>(prefix_checks), divergences,
                stale_reads, corrupt_runs);
  return buf;
}

StatusOr<CrashOracleResult> RunCrashOracle(const CrashOracleOptions& options) {
  if (options.ops_per_run <= 0) {
    return Status::InvalidArgument("ops_per_run must be > 0");
  }
  const Params params =
      options.shrink_params ? TortureParams(options.params) : options.params;
  VIEWMAT_RETURN_IF_ERROR(params.Validate());

  // Healthy baseline: measures the crash window and must be flawless —
  // a baseline failure means the harness, not the crash protocol, is wrong.
  RunStats healthy;
  VIEWMAT_RETURN_IF_ERROR(RunOne(options, params, /*crash_at=*/0, &healthy));
  if (healthy.divergence || healthy.stale_read || healthy.corrupt ||
      healthy.rejected_txns != 0 || healthy.failed_queries != 0) {
    return Status::Internal(
        std::string("crash oracle healthy baseline failed for ") +
        StrategyKindName(options.kind));
  }

  // Exhaustive fan-out: one run per disk operation in the healthy window.
  // Each run is fully self-contained, so tasks execute in any order on any
  // worker; results merge in index order for bit-identical output at any
  // job count.
  struct RunResult {
    Status status = Status::OK();
    RunStats stats;
  };
  const size_t total = static_cast<size_t>(healthy.window_ops);
  std::vector<RunResult> runs =
      common::ParallelMap(options.jobs, total, [&](size_t idx) {
        RunResult r;
        r.status = RunOne(options, params, /*crash_at=*/idx + 1, &r.stats);
        return r;
      });

  CrashOracleResult result;
  result.crash_points = healthy.window_ops;
  for (const RunResult& r : runs) {
    VIEWMAT_RETURN_IF_ERROR(r.status);
    if (r.stats.crashed) ++result.crashes_fired;
    result.recoveries += r.stats.recoveries;
    result.rejected_txns += r.stats.rejected_txns;
    result.failed_queries += r.stats.failed_queries;
    result.prefix_checks += r.stats.prefix_checks;
    if (r.stats.divergence) ++result.divergences;
    if (r.stats.stale_read) ++result.stale_reads;
    if (r.stats.corrupt) ++result.corrupt_runs;
  }
  return result;
}

}  // namespace viewmat::sim
