#include "sim/bench_diff.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "common/json.h"

namespace viewmat::sim {

namespace {

using common::JsonValue;

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string StringOr(const JsonValue* v, const std::string& fallback) {
  return v != nullptr && v->is_string() ? v->string_value : fallback;
}

std::string FmtG(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Identity of a sim result: the workload point it simulated. Two reports
/// of the same bench hold the same points; matching by identity keeps the
/// diff stable if result order ever changes.
std::string SimResultKey(const JsonValue& r) {
  const JsonValue* params = r.Find("params");
  std::string key = "model=" + FmtG(NumberOr(r.Find("model"), 0));
  key += " seed=" + FmtG(NumberOr(r.Find("seed"), 0));
  if (params != nullptr) {
    for (const char* field : {"N", "k", "l", "q", "f", "f_v"}) {
      key += ' ';
      key += field;
      key += '=';
      key += FmtG(NumberOr(params->Find(field), 0));
    }
  }
  return key;
}

const JsonValue* FindByKey(const JsonValue& array,
                           const std::string& key,
                           std::string (*key_fn)(const JsonValue&)) {
  if (!array.is_array()) return nullptr;
  for (const JsonValue& item : array.items) {
    if (key_fn(item) == key) return &item;
  }
  return nullptr;
}

const JsonValue* FindByMember(const JsonValue& array, const char* member,
                              const std::string& value) {
  if (!array.is_array()) return nullptr;
  for (const JsonValue& item : array.items) {
    if (StringOr(item.Find(member), "") == value) return &item;
  }
  return nullptr;
}

/// Top component contributions to a run's ms-per-query delta, from the
/// explain_gap attribution both schema versions carry.
std::string AttributeRunDelta(const JsonValue& old_run,
                              const JsonValue& new_run) {
  const JsonValue* old_gap = old_run.Find("explain_gap");
  const JsonValue* new_gap = new_run.Find("explain_gap");
  if (old_gap == nullptr || new_gap == nullptr) return "";
  const JsonValue* old_by = old_gap->Find("component_ms_per_query");
  const JsonValue* new_by = new_gap->Find("component_ms_per_query");
  if (old_by == nullptr || new_by == nullptr || !new_by->is_object()) {
    return "";
  }
  struct Contribution {
    std::string component;
    double delta;
  };
  std::vector<Contribution> contributions;
  // Union of components: start from new, add old-only ones as negatives.
  for (const auto& [component, value] : new_by->members) {
    const double delta =
        value.number - NumberOr(old_by->Find(component), 0.0);
    if (delta != 0.0) contributions.push_back({component, delta});
  }
  for (const auto& [component, value] : old_by->members) {
    if (new_by->Find(component) == nullptr && value.number != 0.0) {
      contributions.push_back({component, -value.number});
    }
  }
  std::sort(contributions.begin(), contributions.end(),
            [](const Contribution& a, const Contribution& b) {
              return std::fabs(a.delta) > std::fabs(b.delta);
            });
  std::string out;
  const size_t shown = std::min<size_t>(contributions.size(), 3);
  for (size_t i = 0; i < shown; ++i) {
    if (!out.empty()) out += ", ";
    out += contributions[i].component;
    out += contributions[i].delta >= 0 ? " +" : " ";
    out += FmtG(contributions[i].delta);
  }
  if (!out.empty()) out += " ms/query";
  return out;
}

struct Differ {
  const DiffOptions& options;
  DiffResult result;

  void Compare(const std::string& path, double old_value, double new_value,
               std::string attribution = "") {
    DiffEntry e;
    e.path = path;
    e.old_value = old_value;
    e.new_value = new_value;
    e.delta = new_value - old_value;
    if (old_value != 0.0) {
      e.relative = e.delta / std::fabs(old_value);
    } else {
      e.relative = new_value == 0.0
                       ? 0.0
                       : std::numeric_limits<double>::infinity();
    }
    // Cost-like metrics: growth past the threshold is a regression. A
    // metric springing from exactly 0 always is (0 -> anything has no
    // meaningful relative scale, and in a deterministic sim it means
    // behavior changed).
    e.regression = e.relative > options.threshold;
    if (e.regression) e.attribution = std::move(attribution);
    result.entries.push_back(std::move(e));
  }

  void Error(const std::string& message) { result.errors.push_back(message); }
  void Note(const std::string& message) { result.notes.push_back(message); }

  void DiffRuns(const std::string& prefix, const JsonValue& old_result,
                const JsonValue& new_result) {
    const JsonValue* old_runs = old_result.Find("runs");
    const JsonValue* new_runs = new_result.Find("runs");
    if (old_runs == nullptr || !old_runs->is_array()) return;
    for (const JsonValue& old_run : old_runs->items) {
      const std::string name = StringOr(old_run.Find("name"), "?");
      const JsonValue* new_run =
          new_runs != nullptr ? FindByMember(*new_runs, "name", name)
                              : nullptr;
      if (new_run == nullptr) {
        Error(prefix + ": run '" + name + "' missing from new report");
        continue;
      }
      Compare(prefix + " " + name + " measured_ms_per_query",
              NumberOr(old_run.Find("measured_ms_per_query"), 0),
              NumberOr(new_run->Find("measured_ms_per_query"), 0),
              AttributeRunDelta(old_run, *new_run));
    }
    if (new_runs != nullptr && new_runs->is_array()) {
      for (const JsonValue& new_run : new_runs->items) {
        const std::string name = StringOr(new_run.Find("name"), "?");
        if (FindByMember(*old_runs, "name", name) == nullptr) {
          Note(prefix + ": new run '" + name + "' (no baseline)");
        }
      }
    }
  }

  void DiffSimResults(const JsonValue& old_root, const JsonValue& new_root) {
    const JsonValue* old_results = old_root.Find("sim_results");
    const JsonValue* new_results = new_root.Find("sim_results");
    if (old_results == nullptr || !old_results->is_array()) return;
    for (const JsonValue& old_result : old_results->items) {
      const std::string key = SimResultKey(old_result);
      const JsonValue* new_result =
          new_results != nullptr
              ? FindByKey(*new_results, key, SimResultKey)
              : nullptr;
      if (new_result == nullptr) {
        Error("sim_result [" + key + "] missing from new report");
        continue;
      }
      Compare("[" + key + "] baseline_ms_per_query",
              NumberOr(old_result.Find("baseline_ms_per_query"), 0),
              NumberOr(new_result->Find("baseline_ms_per_query"), 0));
      DiffRuns("[" + key + "]", old_result, *new_result);
    }
  }

  void DiffTables(const JsonValue& old_root, const JsonValue& new_root) {
    const JsonValue* old_tables = old_root.Find("tables");
    const JsonValue* new_tables = new_root.Find("tables");
    if (old_tables == nullptr || !old_tables->is_array()) return;
    for (const JsonValue& old_table : old_tables->items) {
      const std::string title = StringOr(old_table.Find("title"), "?");
      const JsonValue* new_table =
          new_tables != nullptr
              ? FindByMember(*new_tables, "title", title)
              : nullptr;
      if (new_table == nullptr) {
        Error("table '" + title + "' missing from new report");
        continue;
      }
      DiffOneTable(title, old_table, *new_table);
    }
  }

  void DiffOneTable(const std::string& title, const JsonValue& old_table,
                    const JsonValue& new_table) {
    const JsonValue* old_series = old_table.Find("series");
    const JsonValue* new_series = new_table.Find("series");
    const JsonValue* old_rows = old_table.Find("rows");
    const JsonValue* new_rows = new_table.Find("rows");
    if (old_series == nullptr || old_rows == nullptr ||
        !old_series->is_array() || !old_rows->is_array()) {
      return;
    }
    if (new_series == nullptr || new_rows == nullptr ||
        !new_series->is_array() || !new_rows->is_array()) {
      Error("table '" + title + "': malformed in new report");
      return;
    }
    for (size_t si = 0; si < old_series->items.size(); ++si) {
      const std::string& series = old_series->items[si].string_value;
      // The series may live at a different column index in the new table.
      size_t new_si = new_series->items.size();
      for (size_t j = 0; j < new_series->items.size(); ++j) {
        if (new_series->items[j].string_value == series) {
          new_si = j;
          break;
        }
      }
      if (new_si == new_series->items.size()) {
        Error("table '" + title + "': series '" + series +
              "' missing from new report");
        continue;
      }
      for (const JsonValue& old_row : old_rows->items) {
        const double x = NumberOr(old_row.Find("x"), 0);
        const JsonValue* new_row = nullptr;
        for (const JsonValue& candidate : new_rows->items) {
          if (std::fabs(NumberOr(candidate.Find("x"), 0) - x) <= 1e-9) {
            new_row = &candidate;
            break;
          }
        }
        if (new_row == nullptr) {
          Error("table '" + title + "': row x=" + FmtG(x) +
                " missing from new report");
          continue;
        }
        const JsonValue* old_values = old_row.Find("values");
        const JsonValue* new_values = new_row->Find("values");
        if (old_values == nullptr || si >= old_values->items.size()) continue;
        if (new_values == nullptr || new_si >= new_values->items.size()) {
          Error("table '" + title + "': row x=" + FmtG(x) +
                " truncated in new report");
          continue;
        }
        Compare("table '" + title + "' " + series + " @ x=" + FmtG(x),
                old_values->items[si].number,
                new_values->items[new_si].number);
      }
    }
  }
};

}  // namespace

size_t DiffResult::regressions() const {
  size_t n = 0;
  for (const DiffEntry& e : entries) n += e.regression ? 1 : 0;
  return n;
}

size_t DiffResult::improvements() const {
  size_t n = 0;
  for (const DiffEntry& e : entries) {
    n += (!e.regression && e.relative < -threshold) ? 1 : 0;
  }
  return n;
}

std::string DiffResult::ToString(bool verbose) const {
  std::string out;
  char buf[160];
  for (const DiffEntry& e : entries) {
    if (!e.regression) continue;
    std::snprintf(buf, sizeof(buf), "REGRESSION %+.2f%%  ",
                  100.0 * e.relative);
    out += buf;
    out += e.path + ": " + FmtG(e.old_value) + " -> " + FmtG(e.new_value);
    if (!e.attribution.empty()) out += "  [" + e.attribution + "]";
    out += '\n';
  }
  for (const std::string& error : errors) out += "ERROR " + error + '\n';
  if (verbose) {
    for (const DiffEntry& e : entries) {
      if (e.regression) continue;
      std::snprintf(buf, sizeof(buf), "ok %+.2f%%  ", 100.0 * e.relative);
      out += buf;
      out += e.path + ": " + FmtG(e.old_value) + " -> " + FmtG(e.new_value);
      out += '\n';
    }
    for (const std::string& note : notes) out += "note " + note + '\n';
  }
  std::snprintf(buf, sizeof(buf),
                "%zu metrics compared, %zu regressions (threshold %+.2f%%), "
                "%zu improvements, %zu errors\n",
                entries.size(), regressions(), 100.0 * threshold,
                improvements(), errors.size());
  out += buf;
  return out;
}

StatusOr<double> ParseThreshold(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty threshold");
  }
  std::string_view number = text;
  bool percent = false;
  if (number.back() == '%') {
    percent = true;
    number.remove_suffix(1);
  }
  // from_chars, unlike strtod, consumes no leading whitespace, no '+',
  // and no hex forms — a gate flag should accept nothing looser than a
  // plain decimal. Trailing garbage ("5%%", "5x") fails the full-consume
  // check; "nan"/"inf" parse but fail the finite range check below.
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(number.data(), number.data() + number.size(), value);
  if (ec != std::errc() || end != number.data() + number.size()) {
    return Status::InvalidArgument("bad threshold: " + text);
  }
  const double fraction = percent ? value / 100.0 : value;
  if (!std::isfinite(fraction) || fraction < 0.0 || fraction > 10.0) {
    return Status::InvalidArgument("threshold out of range: " + text);
  }
  return fraction;
}

StatusOr<DiffResult> DiffBenchReports(const std::string& old_json,
                                      const std::string& new_json,
                                      const DiffOptions& options) {
  VIEWMAT_ASSIGN_OR_RETURN(const JsonValue old_root,
                           common::ParseJson(old_json));
  VIEWMAT_ASSIGN_OR_RETURN(const JsonValue new_root,
                           common::ParseJson(new_json));
  if (!old_root.is_object() || !new_root.is_object()) {
    return Status::InvalidArgument("bench reports must be JSON objects");
  }
  Differ differ{options, {}};
  differ.result.threshold = options.threshold;

  const std::string old_bench = StringOr(old_root.Find("bench"), "");
  const std::string new_bench = StringOr(new_root.Find("bench"), "");
  if (old_bench != new_bench) {
    differ.Error("bench name mismatch: '" + old_bench + "' vs '" +
                 new_bench + "'");
  }
  const JsonValue* old_quick = old_root.Find("quick");
  const JsonValue* new_quick = new_root.Find("quick");
  if (old_quick != nullptr && new_quick != nullptr &&
      old_quick->bool_value != new_quick->bool_value) {
    differ.Error("quick-mode mismatch: reports are not comparable");
  }

  differ.DiffSimResults(old_root, new_root);
  differ.DiffTables(old_root, new_root);
  return std::move(differ.result);
}

}  // namespace viewmat::sim
