#ifndef VIEWMAT_SIM_BENCH_REPORT_H_
#define VIEWMAT_SIM_BENCH_REPORT_H_

#include <chrono>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/report.h"
#include "sim/simulator.h"

namespace viewmat::sim {

/// Flags shared by every bench binary:
///   --quick        shrink parameters for smoke runs
///   --json <path>  write a machine-readable report to <path>
///   --jobs <n>     worker threads for parallel sweeps (0 = one per core)
struct BenchCli {
  bool quick = false;
  std::string json_path;  ///< empty = no JSON report requested
  size_t jobs = 0;        ///< 0 = auto (one worker per hardware thread)

  bool want_json() const { return !json_path.empty(); }
  /// The worker count sweeps should actually use: `jobs`, with 0 resolved
  /// to the hardware concurrency. Always >= 1.
  size_t effective_jobs() const;
  static BenchCli Parse(int argc, char** argv);
};

/// Collects what a bench run wants to persist — series tables, full
/// simulation results (with component × phase attribution and, when the
/// sim recorded them, per-run cost timelines), advisor explain reports,
/// free-form notes, and optionally a metrics registry and span trace —
/// and serializes everything as one JSON document (schema_version 3).
///
/// Every report carries run metadata: bench name, the git revision the
/// binary was built from, the quick flag, and an execution block (worker
/// count, hardware threads, wall-clock seconds from report construction
/// to serialization — the numerator/denominator for speedup comparisons
/// across --jobs settings); SimResults carry their own seed and pool
/// configuration. Everything outside the execution block is independent
/// of --jobs: parallel sweeps derive per-point seeds and collect results
/// in index order, so two reports at different job counts differ only in
/// the execution block.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name, bool quick = false)
      : bench_name_(std::move(bench_name)),
        quick_(quick),
        start_(std::chrono::steady_clock::now()) {}

  void AddTable(const SeriesTable& table) { tables_.push_back(table); }
  void AddSimResult(const SimResult& result) { sim_results_.push_back(result); }
  /// Attaches an advisor explain report (serialized under "explain").
  void AddExplain(const obs::ExplainReport& report) {
    explains_.push_back(report);
  }
  void AddNote(std::string_view key, std::string_view value) {
    notes_.emplace_back(key, value);
  }
  /// Adds a key to the execution block — the one place for measurements
  /// that legitimately vary with --jobs (wall waits, blocked counts).
  /// Values must stay flat: the determinism check strips the block with
  /// textual surgery, so no braces are allowed in the value.
  void AddExecutionNote(std::string_view key, std::string_view value);
  /// Attach a metrics registry / tracer (not owned; must outlive ToJson).
  void set_metrics(const obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  void set_tracer(const obs::Tracer* tracer) { tracer_ = tracer; }
  /// Worker count recorded in the execution block (FinishBench sets it
  /// from the CLI; benches that parallelize by hand may set it directly).
  void set_jobs(size_t jobs) { jobs_ = jobs; }

  std::string ToJson() const;
  Status WriteTo(const std::string& path) const;

 private:
  std::string bench_name_;
  bool quick_;
  std::chrono::steady_clock::time_point start_;
  size_t jobs_ = 1;
  std::vector<SeriesTable> tables_;
  std::vector<SimResult> sim_results_;
  std::vector<obs::ExplainReport> explains_;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<std::pair<std::string, std::string>> execution_notes_;
  const obs::MetricsRegistry* metrics_ = nullptr;
  const obs::Tracer* tracer_ = nullptr;
};

/// Stamps the report's execution block from the CLI, then writes the
/// report when the CLI asked for one (and prints where it went); a bench
/// without --json returns OK without touching the disk.
Status FinishBench(const BenchCli& cli, BenchReport* report);

/// FinishBench packaged as a process exit code, for `return` from main().
int FinishBenchMain(const BenchCli& cli, BenchReport* report);

}  // namespace viewmat::sim

#endif  // VIEWMAT_SIM_BENCH_REPORT_H_
