#ifndef VIEWMAT_SIM_BENCH_REPORT_H_
#define VIEWMAT_SIM_BENCH_REPORT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/report.h"
#include "sim/simulator.h"

namespace viewmat::sim {

/// Flags shared by every bench binary:
///   --quick        shrink parameters for smoke runs
///   --json <path>  write a machine-readable report to <path>
struct BenchCli {
  bool quick = false;
  std::string json_path;  ///< empty = no JSON report requested

  bool want_json() const { return !json_path.empty(); }
  static BenchCli Parse(int argc, char** argv);
};

/// Collects what a bench run wants to persist — series tables, full
/// simulation results (with component × phase attribution), free-form
/// notes, and optionally a metrics registry and span trace — and
/// serializes everything as one JSON document (schema_version 1).
///
/// Every report carries run metadata: bench name, the git revision the
/// binary was built from, and the quick flag; SimResults carry their own
/// seed and pool configuration.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name, bool quick = false)
      : bench_name_(std::move(bench_name)), quick_(quick) {}

  void AddTable(const SeriesTable& table) { tables_.push_back(table); }
  void AddSimResult(const SimResult& result) { sim_results_.push_back(result); }
  void AddNote(std::string_view key, std::string_view value) {
    notes_.emplace_back(key, value);
  }
  /// Attach a metrics registry / tracer (not owned; must outlive ToJson).
  void set_metrics(const obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  void set_tracer(const obs::Tracer* tracer) { tracer_ = tracer; }

  std::string ToJson() const;
  Status WriteTo(const std::string& path) const;

 private:
  std::string bench_name_;
  bool quick_;
  std::vector<SeriesTable> tables_;
  std::vector<SimResult> sim_results_;
  std::vector<std::pair<std::string, std::string>> notes_;
  const obs::MetricsRegistry* metrics_ = nullptr;
  const obs::Tracer* tracer_ = nullptr;
};

/// Writes the report when the CLI asked for one (and prints where it
/// went); a bench without --json returns OK without touching the disk.
Status FinishBench(const BenchCli& cli, const BenchReport& report);

/// FinishBench packaged as a process exit code, for `return` from main().
int FinishBenchMain(const BenchCli& cli, const BenchReport& report);

}  // namespace viewmat::sim

#endif  // VIEWMAT_SIM_BENCH_REPORT_H_
