#ifndef VIEWMAT_SIM_STRATEGY_DRIVER_H_
#define VIEWMAT_SIM_STRATEGY_DRIVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "costmodel/params.h"
#include "db/catalog.h"
#include "db/recovery.h"
#include "hr/ad_file.h"
#include "storage/buffer_pool.h"
#include "storage/faulty_disk.h"
#include "view/deferred.h"
#include "view/hybrid.h"
#include "view/immediate.h"
#include "view/query_modification.h"
#include "view/recompute_on_change.h"
#include "view/snapshot.h"
#include "view/view_def.h"
#include "workload/workload.h"

namespace viewmat::sim {

/// A counted multiset of tuples — the common currency of every torture
/// check (view answers, base contents, recomputes).
using ViewMultiset = std::map<db::Tuple, int64_t>;

/// Every maintenance strategy the torture harness can drive.
enum class StrategyKind {
  kQueryModification,
  kImmediate,
  kDeferred,
  kSnapshot,
  kRecomputeOnChange,
  kHybrid,
};

inline constexpr StrategyKind kAllStrategyKinds[] = {
    StrategyKind::kQueryModification, StrategyKind::kImmediate,
    StrategyKind::kDeferred,          StrategyKind::kSnapshot,
    StrategyKind::kRecomputeOnChange, StrategyKind::kHybrid,
};

const char* StrategyKindName(StrategyKind kind);
StatusOr<StrategyKind> ParseStrategyKind(const std::string& name);

/// The torture-sized parameter set (small database, small transactions)
/// shared by the fault sweep and the crash oracle.
costmodel::Params TortureParams(const costmodel::Params& base);

/// AD-file options for crash-safe torture runs (WAL on, sized to the
/// workload). `lsns` joins the AD log to a shared LSN space when non-null;
/// `group_commit` buffers per-transaction log records (see
/// AdFile::Options::log_auto_sync).
hr::AdFile::Options TortureAdOptions(const costmodel::Params& params,
                                     storage::LsnAllocator* lsns = nullptr,
                                     bool group_commit = false);

/// The harness's own shadow of the updated relation. Scenario's oracle
/// mutates when a transaction is *generated*; the torture harness must only
/// advance its oracle when the strategy *acknowledged* (or provably
/// committed) the transaction, so it keeps its own copy of the one mutable
/// column.
struct ShadowOracle {
  int64_t n = 0;
  int64_t f_cut = 0;  ///< keys < f_cut satisfy the view predicate
  std::vector<int64_t> k2;  ///< immutable join column
  std::vector<double> v;    ///< the updated payload
  std::vector<double> w_by_r2_key;

  db::Tuple BaseTuple(int64_t key) const {
    return db::Tuple({db::Value(key), db::Value(k2[key]), db::Value(v[key]),
                      db::Value(std::string("x"))});
  }
};

ShadowOracle MakeShadow(const workload::Scenario& scenario);

/// The view value the shadow predicts for a base key; false when the key is
/// outside the view.
bool ShadowViewTuple(const ShadowOracle& shadow, int model, int64_t key,
                     db::Tuple* out);

/// The exact multiset a view query over [lo, hi] must return.
ViewMultiset ExpectedRange(const ShadowOracle& shadow, int model, int64_t lo,
                           int64_t hi);

view::SelectProjectDef MakeSpDef(workload::Scenario* scenario,
                                 db::Relation* base);
view::JoinDef MakeJoinDef(workload::Scenario* scenario, db::Relation* r1,
                          db::Relation* r2);

/// From-scratch recompute of the view over the (folded) base relation,
/// bypassing the strategy entirely — the independent half of the golden
/// invariant.
Status RecomputeFromBase(int model, const view::SelectProjectDef& sp,
                         const view::JoinDef& join, db::Relation* rel,
                         ViewMultiset* out);

/// One self-contained torture instance — simulated device behind a
/// FaultyDisk, buffer pool, catalog, scenario data, one maintenance
/// strategy, and the recovery machinery wired for it — behind a uniform
/// interface, so the fault sweep and the crash-equivalence oracle can drive
/// every strategy through the same loop.
///
/// Recovery wiring per strategy:
///  - query-modification / immediate / snapshot / recompute-on-change
///    commit through a RecoveryManager (unified WAL, log-commit-then-apply);
///  - deferred / hybrid use their AD-file WAL protocol, with the AD log
///    drawing LSNs from the RecoveryManager's allocator so all records share
///    one LSN space.
class StrategyDriver {
 public:
  struct Options {
    StrategyKind kind = StrategyKind::kDeferred;
    /// 1 = select-project view, 2 = join view. Model 2 is supported by
    /// query-modification, immediate, and deferred.
    int model = 1;
    /// Torture-sized already (the driver does not shrink).
    costmodel::Params params;
    uint64_t seed = 1;
    /// RecoveryManager auto-checkpoint cadence (0 = explicit only).
    size_t checkpoint_every = 0;
    /// Group commit: commit records (redo WAL and AD log alike) buffer in
    /// the log's tail page instead of syncing per commit; the server calls
    /// SyncWal() at batch boundaries. A crash can lose the unsynced suffix —
    /// recovery then resolves each issued transaction id against the
    /// durable high-water mark.
    bool group_commit = false;
    /// Buffer-pool frames. The default matches the historical hard-coded
    /// pool; the scaling bench raises it for its larger scenario.
    size_t pool_pages = 128;
  };

  /// Loads the scenario database on a healthy device, builds the strategy,
  /// initializes its materialized state, and flushes the pool.
  static StatusOr<std::unique_ptr<StrategyDriver>> Create(
      const Options& options);

  StrategyDriver(const StrategyDriver&) = delete;
  StrategyDriver& operator=(const StrategyDriver&) = delete;

  Status OnTransaction(const db::Transaction& txn);
  Status Query(int64_t lo, int64_t hi,
               const view::MaterializedView::CountedVisitor& visit);

  /// Crash recovery for whichever strategy is active. Idempotent.
  Status Recover();

  /// Group-commit batch boundary: forces whichever log the active strategy
  /// commits through (redo WAL or AD log) to the device. Harmless no-op
  /// when Options::group_commit is off.
  Status SyncWal();

  /// Kills volatile log state after a simulated device crash+restart —
  /// the log-side half of the "volatile state dies with the crash" rule
  /// (BufferPool::DiscardAll is the page-side half). Must run before any
  /// post-crash SyncWal()/Converge(), or the stale staged tail would be
  /// written back to the restarted device and resurrect transactions the
  /// crash already lost.
  Status DiscardVolatileWal();

  /// Brings the system to a fully-consistent, fully-refreshed state
  /// (healthy device assumed): recovery plus whatever freshening the
  /// strategy needs (deferred/hybrid refresh, snapshot re-snapshot).
  Status Converge();

  /// Transaction ids issued / known committed — the ambiguity-resolution
  /// pair: an errored OnTransaction whose txn_seq() advanced is resolved,
  /// after a successful Recover(), by committed_txn_high_water() >= id.
  uint64_t txn_seq() const;
  uint64_t committed_txn_high_water() const;

  /// The base-relation contents a reader is entitled to see: the base
  /// itself, or base ∪ AD through the hypothetical relation for
  /// deferred/hybrid (whose transactions live in the differential until a
  /// fold).
  Status VisibleBase(ViewMultiset* out) const;

  uint64_t recoveries() const;
  uint64_t degraded_queries() const;

  storage::FaultyDisk* disk() { return &disk_; }
  storage::BufferPool* pool() { return &pool_; }
  /// The driver-owned tracker (model clock + cost counters). The server
  /// layer snapshots it per transaction (TxnCostContext) and hands its
  /// thread-ownership claim across workers at commit-turn boundaries.
  storage::CostTracker* tracker() { return &tracker_; }
  db::Relation* base() { return rel_; }
  workload::Scenario* scenario() { return &scenario_; }
  const view::SelectProjectDef& sp_def() const { return sp_def_; }
  const view::JoinDef& join_def() const { return join_def_; }
  db::RecoveryManager* recovery() { return recovery_.get(); }
  int model() const { return options_.model; }
  StrategyKind kind() const { return options_.kind; }

 private:
  explicit StrategyDriver(const Options& options);

  Status Build();

  Options options_;
  storage::CostTracker tracker_;
  storage::SimulatedDisk inner_;
  storage::FaultyDisk disk_;
  storage::BufferPool pool_;
  db::Catalog catalog_;
  workload::Scenario scenario_;
  db::Relation* rel_ = nullptr;
  db::Relation* r2_ = nullptr;
  view::SelectProjectDef sp_def_;
  view::JoinDef join_def_;

  std::unique_ptr<db::RecoveryManager> recovery_;
  std::unique_ptr<view::QmSelectProjectStrategy> qm_sp_;
  std::unique_ptr<view::QmJoinStrategy> qm_join_;
  std::unique_ptr<view::ImmediateStrategy> immediate_;
  std::unique_ptr<view::DeferredStrategy> deferred_;
  std::unique_ptr<view::SnapshotStrategy> snapshot_;
  std::unique_ptr<view::RecomputeOnChangeStrategy> recompute_;
  std::unique_ptr<view::HybridStrategy> hybrid_;
};

}  // namespace viewmat::sim

#endif  // VIEWMAT_SIM_STRATEGY_DRIVER_H_
