#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "common/logging.h"
#include "costmodel/model1.h"
#include "costmodel/model2.h"
#include "costmodel/model3.h"
#include "db/catalog.h"
#include "hr/ad_file.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "view/aggregate.h"
#include "view/deferred.h"
#include "view/immediate.h"
#include "view/query_modification.h"
#include "view/strategy.h"
#include "view/view_def.h"
#include "workload/workload.h"

namespace viewmat::sim {

namespace {

using costmodel::Params;
using workload::Scenario;

/// A database instance for one strategy run.
struct Instance {
  explicit Instance(const Params& params, size_t pool_pages)
      : tracker(params.C1, params.C2, params.C3),
        disk(static_cast<uint32_t>(params.B), &tracker),
        pool(&disk, pool_pages),
        catalog(&pool) {}

  storage::CostTracker tracker;
  storage::SimulatedDisk disk;
  storage::BufferPool pool;
  db::Catalog catalog;
};

size_t AutoPoolPages(const Params& params) {
  // Enough frames to pin R2 during a join plus working headroom.
  const double r2_pages = params.f_R2 * params.b();
  return static_cast<size_t>(std::max(256.0, r2_pages + 96.0));
}

hr::AdFile::Options AdOptionsFor(const Params& params) {
  hr::AdFile::Options options;
  const double expected = std::max(2.0 * params.u(), 64.0);
  options.expected_keys = static_cast<size_t>(expected);
  options.hash_buckets = static_cast<uint32_t>(
      std::max(2.0, 2.0 * params.u() / params.T() + 1.0));
  return options;
}

view::SelectProjectDef MakeSpDef(Scenario* scenario, db::Relation* base) {
  view::SelectProjectDef def;
  def.base = base;
  def.predicate = scenario->ViewPredicate();
  // Project k1 and v: the clustering key plus the updated payload — "half
  // the attributes" in spirit (the wide pad column is dropped, so view
  // tuples are about half the base tuple size, as in the paper).
  def.projection = {Scenario::kFieldK1, Scenario::kFieldV};
  def.view_key_field = 0;
  return def;
}

view::JoinDef MakeJoinDef(Scenario* scenario, db::Relation* r1,
                          db::Relation* r2) {
  view::JoinDef def;
  def.r1 = r1;
  def.r2 = r2;
  def.cf = scenario->ViewPredicate();
  def.r1_join_field = Scenario::kFieldK2;
  def.r1_projection = {Scenario::kFieldK1, Scenario::kFieldV};
  def.r2_projection = {0, 1};  // key, w
  def.view_key_field = 0;
  return def;
}

view::AggregateDef MakeAggDef(Scenario* scenario, db::Relation* base) {
  view::AggregateDef def;
  def.base = base;
  def.predicate = scenario->ViewPredicate();
  def.op = view::AggregateOp::kSum;
  def.agg_field = Scenario::kFieldV;
  return def;
}

/// Per-operation observability for one strategy run: op counters and
/// model-ms histograms labeled by strategy name, plus the run's trace
/// track. All members null when the corresponding sink is off.
struct RunObservers {
  RunObservers(const SimOptions& options, Instance* inst,
               const std::string& run_name) {
    if (options.tracer != nullptr) {
      inst->tracker.set_tracer(options.tracer);
      options.tracer->NewTrack(run_name);
    }
    if (options.metrics != nullptr) {
      const obs::Labels labels = {{"strategy", run_name}};
      // Bucket bounds in model ms: one disk I/O is C2 = 30, so the buckets
      // resolve "a few I/Os" through "a full scan".
      const std::vector<double> bounds = {30,   60,   120,   300,  600,
                                          1200, 3000, 15000, 60000};
      updates_total = options.metrics->GetCounter("sim_updates_total", labels);
      queries_total = options.metrics->GetCounter("sim_queries_total", labels);
      update_ms = options.metrics->GetHistogram("sim_update_ms", labels, bounds);
      query_ms = options.metrics->GetHistogram("sim_query_ms", labels, bounds);
    }
  }

  void OnUpdate(double ms) {
    if (updates_total != nullptr) {
      updates_total->Increment();
      update_ms->Observe(ms);
    }
  }
  void OnQuery(double ms) {
    if (queries_total != nullptr) {
      queries_total->Increment();
      query_ms->Observe(ms);
    }
  }

  obs::Counter* updates_total = nullptr;
  obs::Counter* queries_total = nullptr;
  obs::Histogram* update_ms = nullptr;
  obs::Histogram* query_ms = nullptr;
};

/// Queries/updates actually driven through a strategy.
struct DriveStats {
  size_t queries = 0;
  size_t updates = 0;
};

/// Drives the op sequence through a tuple-view strategy; returns ms/query.
Status DriveTupleStrategy(const SimOptions& options, Scenario* scenario,
                          Instance* inst, db::Relation* updated_rel,
                          view::ViewStrategy* strategy,
                          const std::string& run_name, double* ms_per_query,
                          DriveStats* stats = nullptr,
                          storage::CostTimeline* timeline = nullptr) {
  // Loading/initialization happens outside the measured window: persist it
  // and start the run cold.
  VIEWMAT_RETURN_IF_ERROR(inst->pool.FlushAndEvictAll());
  inst->tracker.Reset();
  RunObservers observe(options, inst, run_name);
  std::unique_ptr<storage::TimelineRecorder> recorder;
  if (timeline != nullptr && options.timeline_window_ms > 0) {
    recorder = std::make_unique<storage::TimelineRecorder>(
        &inst->tracker, options.timeline_window_ms);
  }
  size_t queries = 0;
  size_t updates = 0;
  for (const Scenario::OpKind op : scenario->OpSequence()) {
    const double before_ms = inst->tracker.TotalMs();
    bool is_update = false;
    if (op == Scenario::OpKind::kUpdate) {
      const db::Transaction txn = scenario->NextUpdateTransaction(updated_rel);
      VIEWMAT_RETURN_IF_ERROR(strategy->OnTransaction(txn));
      ++updates;
      is_update = true;
      observe.OnUpdate(inst->tracker.TotalMs() - before_ms);
    } else {
      const Scenario::QueryRange range = scenario->NextQueryRange();
      VIEWMAT_RETURN_IF_ERROR(strategy->Query(
          range.lo, range.hi,
          [](const db::Tuple&, int64_t) { return true; }));
      ++queries;
      observe.OnQuery(inst->tracker.TotalMs() - before_ms);
    }
    if (options.cold_cache_between_ops) {
      VIEWMAT_RETURN_IF_ERROR(inst->pool.FlushAndEvictAll());
    }
    // After the inter-op flush, so eviction traffic lands in the op's
    // window and the timeline sums to the run totals.
    if (recorder != nullptr) recorder->OnOp(is_update, before_ms);
  }
  VIEWMAT_RETURN_IF_ERROR(inst->pool.FlushAll());
  if (recorder != nullptr) *timeline = recorder->Finish();
  if (stats != nullptr) {
    stats->queries = queries;
    stats->updates = updates;
  }
  // The instance (and its clock) dies with the run; detach the tracer.
  if (options.tracer != nullptr) options.tracer->SetClock(nullptr);
  *ms_per_query =
      inst->tracker.TotalMs() / static_cast<double>(std::max<size_t>(queries, 1));
  return Status::OK();
}

/// Baseline: transactions hit the base relation, queries do nothing.
class NoViewStrategy : public view::ViewStrategy {
 public:
  Status OnTransaction(const db::Transaction& txn) override {
    return txn.ApplyToBase();
  }
  Status Query(int64_t, int64_t,
               const view::MaterializedView::CountedVisitor&) override {
    return Status::OK();
  }
  const char* name() const override { return "no-view-baseline"; }
};

double AnalyticalFor(int model, costmodel::Strategy s, const Params& p) {
  switch (model) {
    case 1: {
      auto c = costmodel::Model1Cost(s, p);
      return c.ok() ? *c : 0.0;
    }
    case 2: {
      auto c = costmodel::Model2Cost(s, p);
      return c.ok() ? *c : 0.0;
    }
    default: {
      auto c = costmodel::Model3Cost(s, p);
      return c.ok() ? *c : 0.0;
    }
  }
}

}  // namespace

std::string SimResult::ToString() const {
  std::string out;
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "P=%.3f f=%.3f f_v=%.3f N=%.0f l=%.0f  "
                "(baseline %.1f ms/query)\n",
                params.P(), params.f, params.f_v, params.N, params.l,
                baseline_ms_per_query);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "model=%d seed=%llu pool_pages=%zu cold_cache=%s\n", model,
                static_cast<unsigned long long>(seed), buffer_pool_pages,
                cold_cache_between_ops ? "on" : "off");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  %-26s %12s %12s %12s %9s %9s %9s %9s %9s\n", "strategy",
                "measured", "adjusted", "analytical", "reads", "writes",
                "screens", "cpu", "adops");
  out += buf;
  for (const StrategyRun& run : runs) {
    std::snprintf(
        buf, sizeof(buf),
        "  %-26s %12.1f %12.1f %12.1f %9llu %9llu %9llu %9llu %9llu\n",
        run.name.c_str(), run.measured_ms_per_query,
        run.adjusted_ms_per_query, run.analytical_ms_per_query,
        static_cast<unsigned long long>(run.counters.disk_reads),
        static_cast<unsigned long long>(run.counters.disk_writes),
        static_cast<unsigned long long>(run.counters.screen_tests),
        static_cast<unsigned long long>(run.counters.tuple_cpu_ops),
        static_cast<unsigned long long>(run.counters.ad_set_ops));
    out += buf;
  }
  return out;
}

StatusOr<SimResult> SimulateModel1(const Params& params,
                                   const SimOptions& options) {
  VIEWMAT_RETURN_IF_ERROR(params.Validate());
  const size_t pool_pages = options.buffer_pool_pages != 0
                                ? options.buffer_pool_pages
                                : AutoPoolPages(params);
  SimResult result;
  result.params = params;
  result.model = 1;
  result.seed = options.seed;
  result.buffer_pool_pages = pool_pages;
  result.cold_cache_between_ops = options.cold_cache_between_ops;

  // --- Baseline ----------------------------------------------------------
  {
    Scenario scenario(params, options.seed);
    Instance inst(params, pool_pages);
    VIEWMAT_ASSIGN_OR_RETURN(
        db::Relation * base,
        scenario.LoadBase(&inst.catalog, "R", db::AccessMethod::kClusteredBTree));
    NoViewStrategy baseline;
    VIEWMAT_RETURN_IF_ERROR(DriveTupleStrategy(
        options, &scenario, &inst, base, &baseline, "baseline",
        &result.baseline_ms_per_query));
  }

  struct Contender {
    costmodel::Strategy model_strategy;
    db::AccessMethod base_method;
    enum class Kind { kDeferred, kImmediate, kQm, kQmSequential } kind;
  };
  const std::vector<Contender> contenders = {
      {costmodel::Strategy::kDeferred, db::AccessMethod::kClusteredBTree,
       Contender::Kind::kDeferred},
      {costmodel::Strategy::kImmediate, db::AccessMethod::kClusteredBTree,
       Contender::Kind::kImmediate},
      {costmodel::Strategy::kQmClustered, db::AccessMethod::kClusteredBTree,
       Contender::Kind::kQm},
      {costmodel::Strategy::kQmUnclustered, db::AccessMethod::kHeap,
       Contender::Kind::kQm},
      {costmodel::Strategy::kQmSequential, db::AccessMethod::kClusteredBTree,
       Contender::Kind::kQmSequential},
  };

  for (const Contender& contender : contenders) {
    Scenario scenario(params, options.seed);
    Instance inst(params, pool_pages);
    VIEWMAT_ASSIGN_OR_RETURN(
        db::Relation * base,
        scenario.LoadBase(&inst.catalog, "R", contender.base_method));
    const view::SelectProjectDef def = MakeSpDef(&scenario, base);

    std::unique_ptr<view::ViewStrategy> strategy;
    switch (contender.kind) {
      case Contender::Kind::kDeferred: {
        auto s = std::make_unique<view::DeferredStrategy>(
            def, AdOptionsFor(params), &inst.tracker);
        VIEWMAT_RETURN_IF_ERROR(s->InitializeFromBase());
        strategy = std::move(s);
        break;
      }
      case Contender::Kind::kImmediate: {
        auto s =
            std::make_unique<view::ImmediateStrategy>(def, &inst.tracker);
        VIEWMAT_RETURN_IF_ERROR(s->InitializeFromBase());
        strategy = std::move(s);
        break;
      }
      case Contender::Kind::kQm:
        strategy = std::make_unique<view::QmSelectProjectStrategy>(
            def, &inst.tracker);
        break;
      case Contender::Kind::kQmSequential:
        strategy = std::make_unique<view::QmSelectProjectStrategy>(
            def, &inst.tracker, /*force_sequential=*/true);
        break;
    }
    VIEWMAT_RETURN_IF_ERROR(inst.pool.FlushAndEvictAll());

    StrategyRun run;
    run.name = costmodel::StrategyName(contender.model_strategy);
    DriveStats stats;
    VIEWMAT_RETURN_IF_ERROR(DriveTupleStrategy(
        options, &scenario, &inst, base, strategy.get(), run.name,
        &run.measured_ms_per_query, &stats, &run.timeline));
    run.counters = inst.tracker.counters();
    run.attributed = inst.tracker.attributed();
    run.queries = stats.queries;
    run.updates = stats.updates;
    run.adjusted_ms_per_query =
        run.measured_ms_per_query - result.baseline_ms_per_query;
    run.analytical_ms_per_query =
        AnalyticalFor(1, contender.model_strategy, params);
    result.runs.push_back(std::move(run));
  }
  return result;
}

StatusOr<SimResult> SimulateModel2(const Params& params,
                                   const SimOptions& options) {
  VIEWMAT_RETURN_IF_ERROR(params.Validate());
  const size_t pool_pages = options.buffer_pool_pages != 0
                                ? options.buffer_pool_pages
                                : AutoPoolPages(params);
  SimResult result;
  result.params = params;
  result.model = 2;
  result.seed = options.seed;
  result.buffer_pool_pages = pool_pages;
  result.cold_cache_between_ops = options.cold_cache_between_ops;

  {
    Scenario scenario(params, options.seed);
    Instance inst(params, pool_pages);
    VIEWMAT_ASSIGN_OR_RETURN(
        db::Relation * r1,
        scenario.LoadBase(&inst.catalog, "R1",
                          db::AccessMethod::kClusteredBTree));
    VIEWMAT_ASSIGN_OR_RETURN(db::Relation * r2,
                             scenario.LoadR2(&inst.catalog, "R2"));
    (void)r2;
    NoViewStrategy baseline;
    VIEWMAT_RETURN_IF_ERROR(DriveTupleStrategy(
        options, &scenario, &inst, r1, &baseline, "baseline",
        &result.baseline_ms_per_query));
  }

  const std::vector<costmodel::Strategy> contenders = {
      costmodel::Strategy::kDeferred, costmodel::Strategy::kImmediate,
      costmodel::Strategy::kQmLoopJoin};

  for (const costmodel::Strategy which : contenders) {
    Scenario scenario(params, options.seed);
    Instance inst(params, pool_pages);
    VIEWMAT_ASSIGN_OR_RETURN(
        db::Relation * r1,
        scenario.LoadBase(&inst.catalog, "R1",
                          db::AccessMethod::kClusteredBTree));
    VIEWMAT_ASSIGN_OR_RETURN(db::Relation * r2,
                             scenario.LoadR2(&inst.catalog, "R2"));
    const view::JoinDef def = MakeJoinDef(&scenario, r1, r2);

    std::unique_ptr<view::ViewStrategy> strategy;
    if (which == costmodel::Strategy::kDeferred) {
      auto s = std::make_unique<view::DeferredStrategy>(
          def, AdOptionsFor(params), &inst.tracker);
      VIEWMAT_RETURN_IF_ERROR(s->InitializeFromBase());
      strategy = std::move(s);
    } else if (which == costmodel::Strategy::kImmediate) {
      auto s = std::make_unique<view::ImmediateStrategy>(def, &inst.tracker);
      VIEWMAT_RETURN_IF_ERROR(s->InitializeFromBase());
      strategy = std::move(s);
    } else {
      strategy = std::make_unique<view::QmJoinStrategy>(def, &inst.tracker);
    }
    VIEWMAT_RETURN_IF_ERROR(inst.pool.FlushAndEvictAll());

    StrategyRun run;
    run.name = costmodel::StrategyName(which);
    DriveStats stats;
    VIEWMAT_RETURN_IF_ERROR(DriveTupleStrategy(
        options, &scenario, &inst, r1, strategy.get(), run.name,
        &run.measured_ms_per_query, &stats, &run.timeline));
    run.counters = inst.tracker.counters();
    run.attributed = inst.tracker.attributed();
    run.queries = stats.queries;
    run.updates = stats.updates;
    run.adjusted_ms_per_query =
        run.measured_ms_per_query - result.baseline_ms_per_query;
    run.analytical_ms_per_query = AnalyticalFor(2, which, params);
    result.runs.push_back(std::move(run));
  }
  return result;
}

StatusOr<SimResult> SimulateModel3(const Params& params,
                                   const SimOptions& options) {
  VIEWMAT_RETURN_IF_ERROR(params.Validate());
  const size_t pool_pages = options.buffer_pool_pages != 0
                                ? options.buffer_pool_pages
                                : AutoPoolPages(params);
  SimResult result;
  result.params = params;
  result.model = 3;
  result.seed = options.seed;
  result.buffer_pool_pages = pool_pages;
  result.cold_cache_between_ops = options.cold_cache_between_ops;

  {
    Scenario scenario(params, options.seed);
    Instance inst(params, pool_pages);
    VIEWMAT_ASSIGN_OR_RETURN(
        db::Relation * base,
        scenario.LoadBase(&inst.catalog, "R",
                          db::AccessMethod::kClusteredBTree));
    NoViewStrategy baseline;
    VIEWMAT_RETURN_IF_ERROR(DriveTupleStrategy(
        options, &scenario, &inst, base, &baseline, "baseline",
        &result.baseline_ms_per_query));
  }

  const std::vector<costmodel::Strategy> contenders = {
      costmodel::Strategy::kDeferred, costmodel::Strategy::kImmediate,
      costmodel::Strategy::kQmRecompute};

  for (const costmodel::Strategy which : contenders) {
    Scenario scenario(params, options.seed);
    Instance inst(params, pool_pages);
    VIEWMAT_ASSIGN_OR_RETURN(
        db::Relation * base,
        scenario.LoadBase(&inst.catalog, "R",
                          db::AccessMethod::kClusteredBTree));
    const view::AggregateDef def = MakeAggDef(&scenario, base);

    std::unique_ptr<view::AggregateStrategy> strategy;
    if (which == costmodel::Strategy::kDeferred) {
      auto s = std::make_unique<view::DeferredAggregateStrategy>(
          def, AdOptionsFor(params), &inst.disk, &inst.tracker);
      VIEWMAT_RETURN_IF_ERROR(s->InitializeFromBase());
      strategy = std::move(s);
    } else if (which == costmodel::Strategy::kImmediate) {
      auto s = std::make_unique<view::ImmediateAggregateStrategy>(
          def, &inst.disk, &inst.tracker);
      VIEWMAT_RETURN_IF_ERROR(s->InitializeFromBase());
      strategy = std::move(s);
    } else {
      strategy =
          std::make_unique<view::RecomputeAggregateStrategy>(def, &inst.tracker);
    }
    VIEWMAT_RETURN_IF_ERROR(inst.pool.FlushAndEvictAll());
    inst.tracker.Reset();

    StrategyRun run;
    run.name = costmodel::StrategyName(which);
    RunObservers observe(options, &inst, run.name);
    std::unique_ptr<storage::TimelineRecorder> recorder;
    if (options.timeline_window_ms > 0) {
      recorder = std::make_unique<storage::TimelineRecorder>(
          &inst.tracker, options.timeline_window_ms);
    }
    size_t queries = 0;
    for (const Scenario::OpKind op : scenario.OpSequence()) {
      const double before_ms = inst.tracker.TotalMs();
      bool is_update = false;
      if (op == Scenario::OpKind::kUpdate) {
        const db::Transaction txn = scenario.NextUpdateTransaction(base);
        VIEWMAT_RETURN_IF_ERROR(strategy->OnTransaction(txn));
        ++run.updates;
        is_update = true;
        observe.OnUpdate(inst.tracker.TotalMs() - before_ms);
      } else {
        db::Value value;
        VIEWMAT_RETURN_IF_ERROR(strategy->QueryValue(&value));
        ++queries;
        observe.OnQuery(inst.tracker.TotalMs() - before_ms);
      }
      if (options.cold_cache_between_ops) {
        VIEWMAT_RETURN_IF_ERROR(inst.pool.FlushAndEvictAll());
      }
      if (recorder != nullptr) recorder->OnOp(is_update, before_ms);
    }
    VIEWMAT_RETURN_IF_ERROR(inst.pool.FlushAll());
    if (recorder != nullptr) run.timeline = recorder->Finish();
    if (options.tracer != nullptr) options.tracer->SetClock(nullptr);

    run.measured_ms_per_query =
        inst.tracker.TotalMs() / static_cast<double>(std::max<size_t>(queries, 1));
    run.counters = inst.tracker.counters();
    run.attributed = inst.tracker.attributed();
    run.queries = queries;
    run.adjusted_ms_per_query =
        run.measured_ms_per_query - result.baseline_ms_per_query;
    run.analytical_ms_per_query = AnalyticalFor(3, which, params);
    result.runs.push_back(std::move(run));
  }
  return result;
}

}  // namespace viewmat::sim
