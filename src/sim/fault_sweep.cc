#include "sim/fault_sweep.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "db/catalog.h"
#include "hr/ad_file.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "storage/faulty_disk.h"
#include "view/deferred.h"
#include "view/view_def.h"
#include "workload/workload.h"

namespace viewmat::sim {

namespace {

using costmodel::Params;
using storage::CrashPoint;
using workload::Scenario;

/// A counted multiset of view values, the common currency of every check.
using ViewMultiset = std::map<db::Tuple, int64_t>;

/// The crash points a run may script, in announcement order.
constexpr CrashPoint kScriptablePoints[] = {
    CrashPoint::kBeforeWalAppend, CrashPoint::kAfterWalAppend,
    CrashPoint::kBeforeViewPatch, CrashPoint::kMidViewPatch,
    CrashPoint::kAfterViewPatch,  CrashPoint::kBeforeFold,
    CrashPoint::kMidFold,         CrashPoint::kBeforeAdReset,
    CrashPoint::kMidAdReset,
};

Params TortureParams(const Params& base) {
  Params p = base;
  p.N = 96;
  p.S = 64;
  p.B = 512;
  p.n = 16;
  p.k = 24;
  p.l = 4;
  p.q = 8;
  p.f = 0.5;
  p.f_v = 0.5;
  p.f_R2 = 0.25;
  return p;
}

hr::AdFile::Options TortureAdOptions(const Params& params) {
  hr::AdFile::Options options;
  const double expected = std::max(2.0 * params.u(), 64.0);
  options.expected_keys = static_cast<size_t>(expected);
  options.hash_buckets = static_cast<uint32_t>(
      std::max(2.0, 2.0 * params.u() / params.T() + 1.0));
  options.enable_wal = true;
  return options;
}

/// Everything one torture run owns. The FaultyDisk wraps the simulated
/// device so every layer above — buffer pool, B+-trees, AD log — sees the
/// injected failures through the production interface.
struct TortureInstance {
  TortureInstance(const Params& params, uint64_t seed)
      : tracker(params.C1, params.C2, params.C3),
        inner(static_cast<uint32_t>(params.B), &tracker),
        disk(&inner, seed),
        pool(&disk, 128),
        catalog(&pool) {}

  storage::CostTracker tracker;
  storage::SimulatedDisk inner;
  storage::FaultyDisk disk;
  storage::BufferPool pool;
  db::Catalog catalog;
};

/// The harness's own shadow of the updated relation. Scenario's oracle
/// mutates when a transaction is *generated*; the torture run must only
/// advance its oracle when the strategy *acknowledged* the transaction, so
/// it keeps its own copy of the one mutable column.
struct ShadowOracle {
  int64_t n = 0;
  int64_t f_cut = 0;  ///< keys < f_cut satisfy the view predicate
  std::vector<int64_t> k2;  ///< immutable join column
  std::vector<double> v;    ///< the updated payload
  std::vector<double> w_by_r2_key;

  db::Tuple BaseTuple(int64_t key) const {
    return db::Tuple({db::Value(key), db::Value(k2[key]), db::Value(v[key]),
                      db::Value(std::string("x"))});
  }
};

ShadowOracle MakeShadow(const Scenario& scenario) {
  ShadowOracle shadow;
  shadow.n = scenario.n();
  shadow.f_cut = scenario.ViewTupleCount();
  shadow.k2.resize(shadow.n);
  shadow.v.resize(shadow.n);
  for (int64_t key = 0; key < shadow.n; ++key) {
    const db::Tuple t = scenario.BaseTuple(key);
    shadow.k2[key] = t.at(Scenario::kFieldK2).AsInt64();
    shadow.v[key] = t.at(Scenario::kFieldV).AsDouble();
  }
  shadow.w_by_r2_key.resize(scenario.r2_count());
  for (int64_t key = 0; key < scenario.r2_count(); ++key) {
    shadow.w_by_r2_key[key] = scenario.R2Tuple(key).at(1).AsDouble();
  }
  return shadow;
}

/// The view value the shadow predicts for a base key, or nullopt-equivalent
/// (returns false) when the key is outside the view.
bool ShadowViewTuple(const ShadowOracle& shadow, int model, int64_t key,
                     db::Tuple* out) {
  if (key < 0 || key >= shadow.f_cut) return false;
  if (model == 1) {
    // Projection (k1, v) of the select-project definition.
    *out = db::Tuple({db::Value(key), db::Value(shadow.v[key])});
    return true;
  }
  // Join projection (k1, v) ++ (r2key, w).
  const int64_t r2key = shadow.k2[key];
  *out = db::Tuple({db::Value(key), db::Value(shadow.v[key]),
                    db::Value(r2key), db::Value(shadow.w_by_r2_key[r2key])});
  return true;
}

ViewMultiset ExpectedRange(const ShadowOracle& shadow, int model, int64_t lo,
                           int64_t hi) {
  ViewMultiset expected;
  const int64_t from = std::max<int64_t>(lo, 0);
  const int64_t to = std::min<int64_t>(hi, shadow.f_cut - 1);
  for (int64_t key = from; key <= to; ++key) {
    db::Tuple value;
    if (ShadowViewTuple(shadow, model, key, &value)) expected[value] += 1;
  }
  return expected;
}

view::SelectProjectDef MakeSpDef(Scenario* scenario, db::Relation* base) {
  view::SelectProjectDef def;
  def.base = base;
  def.predicate = scenario->ViewPredicate();
  def.projection = {Scenario::kFieldK1, Scenario::kFieldV};
  def.view_key_field = 0;
  return def;
}

view::JoinDef MakeJoinDef(Scenario* scenario, db::Relation* r1,
                          db::Relation* r2) {
  view::JoinDef def;
  def.r1 = r1;
  def.r2 = r2;
  def.cf = scenario->ViewPredicate();
  def.r1_join_field = Scenario::kFieldK2;
  def.r1_projection = {Scenario::kFieldK1, Scenario::kFieldV};
  def.r2_projection = {0, 1};
  def.view_key_field = 0;
  return def;
}

/// From-scratch recompute of the view over the (folded) base relation,
/// bypassing the strategy entirely — the independent half of the golden
/// invariant.
Status RecomputeFromBase(int model, const view::SelectProjectDef& sp,
                         const view::JoinDef& join, db::Relation* rel,
                         ViewMultiset* out) {
  out->clear();
  Status inner = Status::OK();
  VIEWMAT_RETURN_IF_ERROR(rel->Scan([&](const db::Tuple& t) {
    db::Tuple value;
    if (model == 1) {
      if (sp.MapTuple(t, &value)) (*out)[value] += 1;
      return true;
    }
    auto mapped = join.MapTuple(t, &value, nullptr);
    if (!mapped.ok()) {
      inner = mapped.status();
      return false;
    }
    if (*mapped) (*out)[value] += 1;
    return true;
  }));
  return inner;
}

uint64_t RunSeed(uint64_t base, size_t rate_idx, int run_idx) {
  uint64_t x = base ^ (0x9e3779b97f4a7c15ull * (rate_idx + 1));
  x ^= 0xbf58476d1ce4e5b9ull * static_cast<uint64_t>(run_idx + 1);
  x ^= x >> 31;
  return x | 1;
}

struct RunOutcome {
  bool silently_stale = false;
  bool corrupt = false;
  uint64_t rejected_txns = 0;
  uint64_t failed_queries = 0;
};

Status RunOne(const FaultSweepOptions& options, const Params& params,
              double fault_rate, uint64_t run_seed, FaultSweepCell* cell,
              RunOutcome* outcome) {
  Random rng(run_seed);
  TortureInstance inst(params, run_seed);
  Scenario scenario(params, run_seed);

  // Load the database and build the strategy with a healthy device.
  VIEWMAT_ASSIGN_OR_RETURN(
      db::Relation * rel,
      scenario.LoadBase(&inst.catalog, "R", db::AccessMethod::kClusteredBTree));
  db::Relation* r2 = nullptr;
  if (options.model == 2) {
    VIEWMAT_ASSIGN_OR_RETURN(r2, scenario.LoadR2(&inst.catalog, "R2"));
  }
  const view::SelectProjectDef sp_def =
      options.model == 1 ? MakeSpDef(&scenario, rel) : view::SelectProjectDef();
  const view::JoinDef join_def = options.model == 2
                                     ? MakeJoinDef(&scenario, rel, r2)
                                     : view::JoinDef();
  std::unique_ptr<view::DeferredStrategy> strategy;
  if (options.model == 1) {
    strategy = std::make_unique<view::DeferredStrategy>(
        sp_def, TortureAdOptions(params), &inst.tracker);
  } else {
    strategy = std::make_unique<view::DeferredStrategy>(
        join_def, TortureAdOptions(params), &inst.tracker);
  }
  VIEWMAT_RETURN_IF_ERROR(strategy->InitializeFromBase());
  VIEWMAT_RETURN_IF_ERROR(inst.pool.FlushAll());

  ShadowOracle shadow = MakeShadow(scenario);

  // Arm the failure model.
  inst.disk.set_read_fault_rate(fault_rate);
  inst.disk.set_write_fault_rate(fault_rate);
  inst.disk.set_torn_writes(true);
  inst.disk.set_max_faults(options.fault_budget);
  if (options.scripted_crashes) {
    const size_t which = static_cast<size_t>(
        rng.Uniform(sizeof(kScriptablePoints) / sizeof(kScriptablePoints[0])));
    inst.disk.ScriptCrash(kScriptablePoints[which],
                          /*occurrence=*/1 + rng.Uniform(2));
  }

  const int64_t l = static_cast<int64_t>(params.l);
  for (int op = 0; op < options.ops_per_run; ++op) {
    const bool is_query =
        options.query_every > 0 && (op % options.query_every) ==
                                       (options.query_every - 1);
    if (inst.disk.crashed()) inst.disk.Restart();
    if (!is_query) {
      // One update transaction: l victims, each getting a fresh v. The
      // shadow advances only if the transaction durably committed. An
      // acknowledgment is definitive; an error is not — a torn write can
      // land the commit record in full while the append still reports
      // failure — so an errored transaction that got as far as a commit
      // attempt is resolved against the recovered log's committed-txn high
      // water mark before the next transaction is built from the shadow.
      db::Transaction txn;
      std::map<int64_t, double> staged;
      for (int64_t j = 0; j < l; ++j) {
        const int64_t key = static_cast<int64_t>(rng.Uniform(shadow.n));
        const double old_v =
            staged.count(key) ? staged[key] : shadow.v[key];
        const double new_v = rng.NextDouble() * 1000.0;
        db::Tuple old_t = shadow.BaseTuple(key);
        old_t.at(Scenario::kFieldV) = db::Value(old_v);
        db::Tuple new_t = old_t;
        new_t.at(Scenario::kFieldV) = db::Value(new_v);
        txn.Update(rel, old_t, new_t);
        staged[key] = new_v;
      }
      const uint64_t seq_before = strategy->txn_seq();
      const Status st = strategy->OnTransaction(txn);
      bool committed = st.ok();
      if (!st.ok()) {
        if (strategy->txn_seq() == seq_before) {
          // Rejected before a transaction id was even issued: no commit
          // record can exist.
          ++outcome->rejected_txns;
        } else {
          // Ambiguous: recover until the log can be read (the fault budget
          // guarantees eventual success) and let the durable commit record
          // decide.
          const uint64_t id = strategy->txn_seq();
          bool resolved = false;
          for (int attempt = 0; attempt < 1000; ++attempt) {
            if (inst.disk.crashed()) inst.disk.Restart();
            if (strategy->Recover().ok()) {
              resolved = true;
              break;
            }
          }
          if (!resolved) {
            outcome->corrupt = true;  // healthy-budget recovery must succeed
            break;
          }
          committed = strategy->committed_txn_high_water() >= id;
          if (!committed) ++outcome->rejected_txns;
        }
      }
      if (committed) {
        for (const auto& [key, new_v] : staged) shadow.v[key] = new_v;
      }
    } else {
      const int64_t lo = static_cast<int64_t>(rng.Uniform(shadow.n));
      const int64_t hi =
          lo + static_cast<int64_t>(rng.Uniform(std::max<int64_t>(
                   1, shadow.n / 2)));
      ViewMultiset got;
      const Status st = strategy->Query(
          lo, hi, [&](const db::Tuple& value, int64_t count) {
            got[value] += count;
            return true;
          });
      if (!st.ok()) {
        // A loud failure is acceptable under faults; a wrong answer never.
        ++outcome->failed_queries;
      } else if (got != ExpectedRange(shadow, options.model, lo, hi)) {
        outcome->silently_stale = true;
      }
    }
  }

  // Disarm everything and converge: with a healthy device, recovery plus a
  // final refresh must always succeed.
  inst.disk.ClearFaults();
  if (inst.disk.crashed()) inst.disk.Restart();
  Status converged = Status::OK();
  for (int attempt = 0; attempt < 4; ++attempt) {
    converged = strategy->Refresh();
    if (converged.ok()) break;
  }
  if (!converged.ok() || strategy->stale() || strategy->pending_tuples() != 0) {
    outcome->corrupt = true;
  } else {
    // Golden invariant, checked three ways: the materialized view must
    // equal the shadow oracle AND a from-scratch recompute over the folded
    // base relation.
    ViewMultiset view_contents;
    Status scan = strategy->view()->ScanAll(
        [&](const db::Tuple& value, int64_t count) {
          view_contents[value] += count;
          return true;
        });
    ViewMultiset recomputed;
    if (scan.ok()) {
      scan = RecomputeFromBase(options.model, sp_def, join_def, rel,
                               &recomputed);
    }
    if (!scan.ok()) {
      outcome->corrupt = true;
    } else {
      const ViewMultiset expected = ExpectedRange(
          shadow, options.model, 0, shadow.n - 1);
      if (view_contents != expected || recomputed != expected) {
        outcome->corrupt = true;
      }
    }
  }

  cell->faults_injected += inst.disk.faults_injected();
  cell->crashes += inst.disk.crashes();
  cell->recoveries += strategy->recoveries();
  cell->degraded_queries += strategy->degraded_queries();
  return Status::OK();
}

}  // namespace

std::string FaultSweepResult::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  %-10s %6s %8s %8s %10s %9s %9s %9s %7s %8s\n", "rate",
                "runs", "faults", "crashes", "recoveries", "degraded",
                "rej-txns", "fail-qry", "stale", "corrupt");
  out += buf;
  for (const FaultSweepCell& cell : cells) {
    std::snprintf(buf, sizeof(buf),
                  "  %-10.4f %6d %8llu %8llu %10llu %9llu %9llu %9llu %7d "
                  "%8d\n",
                  cell.fault_rate, cell.runs,
                  static_cast<unsigned long long>(cell.faults_injected),
                  static_cast<unsigned long long>(cell.crashes),
                  static_cast<unsigned long long>(cell.recoveries),
                  static_cast<unsigned long long>(cell.degraded_queries),
                  static_cast<unsigned long long>(cell.rejected_txns),
                  static_cast<unsigned long long>(cell.failed_queries),
                  cell.silently_stale_runs, cell.corrupt_runs);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  total: %d runs, %d silently stale, %d corrupt\n",
                total_runs, total_silently_stale, total_corrupt);
  out += buf;
  return out;
}

StatusOr<FaultSweepResult> SimulateFaultSweep(const FaultSweepOptions& options) {
  if (options.model != 1 && options.model != 2) {
    return Status::InvalidArgument("fault sweep supports models 1 and 2");
  }
  if (options.runs_per_rate <= 0 || options.ops_per_run <= 0) {
    return Status::InvalidArgument("runs_per_rate and ops_per_run must be > 0");
  }
  const Params params =
      options.shrink_params ? TortureParams(options.params) : options.params;
  VIEWMAT_RETURN_IF_ERROR(params.Validate());

  for (const double rate : options.fault_rates) {
    if (rate < 0 || rate >= 1) {
      return Status::InvalidArgument("fault rates must be in [0, 1)");
    }
  }

  // One task per (rate, run): every run is fully self-contained (its own
  // disk, pool, strategy, and oracle) with a seed derived from the task
  // index, so the tasks can execute in any order on any worker. Results
  // merge in index order below, making the sweep bit-identical at any
  // job count — including errors, where the lowest-index failure wins.
  struct RunResult {
    Status status = Status::OK();
    FaultSweepCell delta;
    RunOutcome outcome;
  };
  const size_t runs_per_rate = static_cast<size_t>(options.runs_per_rate);
  const size_t total_tasks = options.fault_rates.size() * runs_per_rate;
  std::vector<RunResult> run_results =
      common::ParallelMap(options.jobs, total_tasks, [&](size_t idx) {
        const size_t rate_idx = idx / runs_per_rate;
        const int run = static_cast<int>(idx % runs_per_rate);
        RunResult r;
        r.status = RunOne(options, params, options.fault_rates[rate_idx],
                          RunSeed(options.seed, rate_idx, run), &r.delta,
                          &r.outcome);
        return r;
      });
  for (const RunResult& r : run_results) {
    VIEWMAT_RETURN_IF_ERROR(r.status);
  }

  FaultSweepResult result;
  for (size_t rate_idx = 0; rate_idx < options.fault_rates.size();
       ++rate_idx) {
    FaultSweepCell cell;
    cell.fault_rate = options.fault_rates[rate_idx];
    for (size_t run = 0; run < runs_per_rate; ++run) {
      const RunResult& r = run_results[rate_idx * runs_per_rate + run];
      ++cell.runs;
      cell.faults_injected += r.delta.faults_injected;
      cell.crashes += r.delta.crashes;
      cell.recoveries += r.delta.recoveries;
      cell.degraded_queries += r.delta.degraded_queries;
      cell.rejected_txns += r.outcome.rejected_txns;
      cell.failed_queries += r.outcome.failed_queries;
      if (r.outcome.silently_stale) ++cell.silently_stale_runs;
      if (r.outcome.corrupt) ++cell.corrupt_runs;
    }
    result.total_runs += cell.runs;
    result.total_silently_stale += cell.silently_stale_runs;
    result.total_corrupt += cell.corrupt_runs;
    result.cells.push_back(cell);
  }
  return result;
}

}  // namespace viewmat::sim
