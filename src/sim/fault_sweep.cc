#include "sim/fault_sweep.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "storage/faulty_disk.h"
#include "workload/workload.h"

namespace viewmat::sim {

namespace {

using costmodel::Params;
using storage::CrashPoint;
using workload::Scenario;

/// The protocol crash points an AD-journaled run may script, in
/// announcement order.
constexpr CrashPoint kScriptablePoints[] = {
    CrashPoint::kBeforeWalAppend, CrashPoint::kAfterWalAppend,
    CrashPoint::kBeforeViewPatch, CrashPoint::kMidViewPatch,
    CrashPoint::kAfterViewPatch,  CrashPoint::kBeforeFold,
    CrashPoint::kMidFold,         CrashPoint::kBeforeAdReset,
    CrashPoint::kMidAdReset,
};

uint64_t RunSeed(uint64_t base, size_t rate_idx, int run_idx) {
  uint64_t x = base ^ (0x9e3779b97f4a7c15ull * (rate_idx + 1));
  x ^= 0xbf58476d1ce4e5b9ull * static_cast<uint64_t>(run_idx + 1);
  x ^= x >> 31;
  return x | 1;
}

struct RunOutcome {
  bool silently_stale = false;
  bool corrupt = false;
  uint64_t rejected_txns = 0;
  uint64_t failed_queries = 0;
};

Status RunOne(const FaultSweepOptions& options, const Params& params,
              double fault_rate, uint64_t run_seed, FaultSweepCell* cell,
              RunOutcome* outcome) {
  Random rng(run_seed);

  StrategyDriver::Options dopt;
  dopt.kind = options.strategy;
  dopt.model = options.model;
  dopt.params = params;
  dopt.seed = run_seed;
  VIEWMAT_ASSIGN_OR_RETURN(std::unique_ptr<StrategyDriver> driver,
                           StrategyDriver::Create(dopt));
  storage::FaultyDisk& disk = *driver->disk();
  ShadowOracle shadow = MakeShadow(*driver->scenario());

  // Arm the failure model (the driver loaded everything healthy).
  disk.set_read_fault_rate(fault_rate);
  disk.set_write_fault_rate(fault_rate);
  disk.set_torn_writes(true);
  disk.set_max_faults(options.fault_budget);
  if (options.scripted_crashes) {
    const bool journaled = options.strategy == StrategyKind::kDeferred ||
                           options.strategy == StrategyKind::kHybrid;
    // Journaled strategies alternate between protocol-point crashes and
    // raw disk-op crashes; the RM-committing ones only announce disk ops.
    if (journaled && rng.Uniform(2) == 0) {
      const size_t which = static_cast<size_t>(rng.Uniform(
          sizeof(kScriptablePoints) / sizeof(kScriptablePoints[0])));
      disk.ScriptCrash(kScriptablePoints[which],
                       /*occurrence=*/1 + rng.Uniform(2));
    } else {
      disk.ScriptCrashAtOp(1 + rng.Uniform(256));
    }
  }

  const int64_t l = static_cast<int64_t>(params.l);
  for (int op = 0; op < options.ops_per_run; ++op) {
    const bool is_query =
        options.query_every > 0 && (op % options.query_every) ==
                                       (options.query_every - 1);
    if (disk.crashed()) disk.Restart();
    if (!is_query) {
      // One update transaction: l victims, each getting a fresh v. The
      // shadow advances only if the transaction durably committed. An
      // acknowledgment is definitive; an error is not — a torn write can
      // land the commit record in full while the append still reports
      // failure — so an errored transaction that got as far as a commit
      // attempt is resolved against the recovered log's committed-txn high
      // water mark before the next transaction is built from the shadow.
      db::Transaction txn;
      std::map<int64_t, double> staged;
      for (int64_t j = 0; j < l; ++j) {
        const int64_t key = static_cast<int64_t>(rng.Uniform(shadow.n));
        const double old_v =
            staged.count(key) ? staged[key] : shadow.v[key];
        const double new_v = rng.NextDouble() * 1000.0;
        db::Tuple old_t = shadow.BaseTuple(key);
        old_t.at(Scenario::kFieldV) = db::Value(old_v);
        db::Tuple new_t = old_t;
        new_t.at(Scenario::kFieldV) = db::Value(new_v);
        txn.Update(driver->base(), old_t, new_t);
        staged[key] = new_v;
      }
      const uint64_t seq_before = driver->txn_seq();
      const Status st = driver->OnTransaction(txn);
      bool committed = st.ok();
      if (!st.ok()) {
        if (driver->txn_seq() == seq_before) {
          // Rejected before a transaction id was even issued: no commit
          // record can exist. Best-effort recovery keeps the system live
          // (an RM-committing strategy refuses work after a failed apply
          // until Recover() completes the interrupted transaction).
          ++outcome->rejected_txns;
          if (disk.crashed()) disk.Restart();
          (void)driver->Recover();
        } else {
          // Ambiguous: recover until the log can be read (the fault budget
          // guarantees eventual success) and let the durable commit record
          // decide.
          const uint64_t id = driver->txn_seq();
          bool resolved = false;
          for (int attempt = 0; attempt < 1000; ++attempt) {
            if (disk.crashed()) disk.Restart();
            if (driver->Recover().ok()) {
              resolved = true;
              break;
            }
          }
          if (!resolved) {
            outcome->corrupt = true;  // healthy-budget recovery must succeed
            break;
          }
          committed = driver->committed_txn_high_water() >= id;
          if (!committed) ++outcome->rejected_txns;
        }
      }
      if (committed) {
        for (const auto& [key, new_v] : staged) shadow.v[key] = new_v;
      }
    } else {
      const int64_t lo = static_cast<int64_t>(rng.Uniform(shadow.n));
      const int64_t hi =
          lo + static_cast<int64_t>(rng.Uniform(std::max<int64_t>(
                   1, shadow.n / 2)));
      ViewMultiset got;
      const Status st = driver->Query(
          lo, hi, [&](const db::Tuple& value, int64_t count) {
            got[value] += count;
            return true;
          });
      if (!st.ok()) {
        // A loud failure is acceptable under faults; a wrong answer never.
        ++outcome->failed_queries;
      } else if (got != ExpectedRange(shadow, options.model, lo, hi)) {
        outcome->silently_stale = true;
      }
    }
  }

  // Disarm everything and converge: with a healthy device, recovery plus a
  // final refresh must always succeed.
  disk.ClearFaults();
  if (disk.crashed()) disk.Restart();
  Status converged = Status::Internal("not attempted");
  for (int attempt = 0; attempt < 4 && !converged.ok(); ++attempt) {
    converged = driver->Converge();
  }
  if (!converged.ok()) {
    outcome->corrupt = true;
  } else {
    // Golden invariant, checked three ways: the strategy's answer must
    // equal the shadow oracle AND a from-scratch recompute over the folded
    // base relation — and the base itself must hold exactly the committed
    // state.
    ViewMultiset answered;
    Status scan = driver->Query(0, shadow.n - 1,
                                [&](const db::Tuple& value, int64_t count) {
                                  answered[value] += count;
                                  return true;
                                });
    ViewMultiset recomputed;
    if (scan.ok()) {
      scan = RecomputeFromBase(options.model, driver->sp_def(),
                               driver->join_def(), driver->base(),
                               &recomputed);
    }
    ViewMultiset base_contents;
    if (scan.ok()) scan = driver->VisibleBase(&base_contents);
    if (!scan.ok()) {
      outcome->corrupt = true;
    } else {
      const ViewMultiset expected = ExpectedRange(
          shadow, options.model, 0, shadow.n - 1);
      ViewMultiset expected_base;
      for (int64_t key = 0; key < shadow.n; ++key) {
        expected_base[shadow.BaseTuple(key)] += 1;
      }
      if (answered != expected || recomputed != expected ||
          base_contents != expected_base) {
        outcome->corrupt = true;
      }
    }
  }

  cell->faults_injected += disk.faults_injected();
  cell->crashes += disk.crashes();
  cell->recoveries += driver->recoveries();
  cell->degraded_queries += driver->degraded_queries();
  return Status::OK();
}

}  // namespace

std::string FaultSweepResult::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  %-10s %6s %8s %8s %10s %9s %9s %9s %7s %8s\n", "rate",
                "runs", "faults", "crashes", "recoveries", "degraded",
                "rej-txns", "fail-qry", "stale", "corrupt");
  out += buf;
  for (const FaultSweepCell& cell : cells) {
    std::snprintf(buf, sizeof(buf),
                  "  %-10.4f %6d %8llu %8llu %10llu %9llu %9llu %9llu %7d "
                  "%8d\n",
                  cell.fault_rate, cell.runs,
                  static_cast<unsigned long long>(cell.faults_injected),
                  static_cast<unsigned long long>(cell.crashes),
                  static_cast<unsigned long long>(cell.recoveries),
                  static_cast<unsigned long long>(cell.degraded_queries),
                  static_cast<unsigned long long>(cell.rejected_txns),
                  static_cast<unsigned long long>(cell.failed_queries),
                  cell.silently_stale_runs, cell.corrupt_runs);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  total: %d runs, %d silently stale, %d corrupt\n",
                total_runs, total_silently_stale, total_corrupt);
  out += buf;
  return out;
}

StatusOr<FaultSweepResult> SimulateFaultSweep(const FaultSweepOptions& options) {
  if (options.model != 1 && options.model != 2) {
    return Status::InvalidArgument("fault sweep supports models 1 and 2");
  }
  if (options.runs_per_rate <= 0 || options.ops_per_run <= 0) {
    return Status::InvalidArgument("runs_per_rate and ops_per_run must be > 0");
  }
  const Params params =
      options.shrink_params ? TortureParams(options.params) : options.params;
  VIEWMAT_RETURN_IF_ERROR(params.Validate());

  for (const double rate : options.fault_rates) {
    if (rate < 0 || rate >= 1) {
      return Status::InvalidArgument("fault rates must be in [0, 1)");
    }
  }

  // One task per (rate, run): every run is fully self-contained (its own
  // disk, pool, strategy, and oracle) with a seed derived from the task
  // index, so the tasks can execute in any order on any worker. Results
  // merge in index order below, making the sweep bit-identical at any
  // job count — including errors, where the lowest-index failure wins.
  struct RunResult {
    Status status = Status::OK();
    FaultSweepCell delta;
    RunOutcome outcome;
  };
  const size_t runs_per_rate = static_cast<size_t>(options.runs_per_rate);
  const size_t total_tasks = options.fault_rates.size() * runs_per_rate;
  std::vector<RunResult> run_results =
      common::ParallelMap(options.jobs, total_tasks, [&](size_t idx) {
        const size_t rate_idx = idx / runs_per_rate;
        const int run = static_cast<int>(idx % runs_per_rate);
        RunResult r;
        r.status = RunOne(options, params, options.fault_rates[rate_idx],
                          RunSeed(options.seed, rate_idx, run), &r.delta,
                          &r.outcome);
        return r;
      });
  for (const RunResult& r : run_results) {
    VIEWMAT_RETURN_IF_ERROR(r.status);
  }

  FaultSweepResult result;
  for (size_t rate_idx = 0; rate_idx < options.fault_rates.size();
       ++rate_idx) {
    FaultSweepCell cell;
    cell.fault_rate = options.fault_rates[rate_idx];
    for (size_t run = 0; run < runs_per_rate; ++run) {
      const RunResult& r = run_results[rate_idx * runs_per_rate + run];
      ++cell.runs;
      cell.faults_injected += r.delta.faults_injected;
      cell.crashes += r.delta.crashes;
      cell.recoveries += r.delta.recoveries;
      cell.degraded_queries += r.delta.degraded_queries;
      cell.rejected_txns += r.outcome.rejected_txns;
      cell.failed_queries += r.outcome.failed_queries;
      if (r.outcome.silently_stale) ++cell.silently_stale_runs;
      if (r.outcome.corrupt) ++cell.corrupt_runs;
    }
    result.total_runs += cell.runs;
    result.total_silently_stale += cell.silently_stale_runs;
    result.total_corrupt += cell.corrupt_runs;
    result.cells.push_back(cell);
  }
  return result;
}

}  // namespace viewmat::sim
