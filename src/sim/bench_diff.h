#ifndef VIEWMAT_SIM_BENCH_DIFF_H_
#define VIEWMAT_SIM_BENCH_DIFF_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace viewmat::sim {

/// Structured comparison of two BENCH report JSONs (schema v3, v2
/// accepted): the perf-regression gate. Every numeric metric in the old
/// report — per-run ms-per-query, baselines, series-table cells — is
/// matched against the new report by identity (model + seed + parameter
/// point, run name, table title / series / x), never by array position, so
/// reordering results is not a diff.
///
/// The simulator is deterministic, so "old" and "new" differ only if the
/// code's behavior changed; the gate's job is telling harmless drift from
/// a cost regression. A metric is a regression when it grows by more than
/// `threshold` relative (cost metrics: higher is worse). Metrics present
/// in the old report but missing from the new one are structural errors;
/// metrics only in the new report are recorded as notes.

struct DiffOptions {
  /// Relative growth beyond which a metric is a regression: 0.05 = +5%.
  double threshold = 0.05;
};

struct DiffEntry {
  std::string path;  ///< human-readable metric identity
  double old_value = 0;
  double new_value = 0;
  double delta = 0;     ///< new - old
  double relative = 0;  ///< delta / old (inf when old == 0 and new > 0)
  bool regression = false;
  /// For run metrics: top component contributions to the delta, from the
  /// explain_gap attribution (e.g. "bptree +12.3, wal +0.8 ms/query").
  std::string attribution;
};

struct DiffResult {
  double threshold = 0;
  std::vector<DiffEntry> entries;    ///< every compared metric
  std::vector<std::string> errors;   ///< structural mismatches (gate fails)
  std::vector<std::string> notes;    ///< additions / informational

  size_t regressions() const;
  size_t improvements() const;  ///< relative < -threshold
  bool ok() const { return errors.empty() && regressions() == 0; }
  /// Rendering for the console: regressions first, then errors, then a
  /// one-line summary. `verbose` lists unchanged metrics too.
  std::string ToString(bool verbose = false) const;
};

/// Parses "5%" or "0.05" into a fraction.
StatusOr<double> ParseThreshold(const std::string& text);

/// Diffs two serialized reports (whole JSON documents, not file paths).
StatusOr<DiffResult> DiffBenchReports(const std::string& old_json,
                                      const std::string& new_json,
                                      const DiffOptions& options);

}  // namespace viewmat::sim

#endif  // VIEWMAT_SIM_BENCH_DIFF_H_
