#include "sim/report.h"

#include <cstdio>

#include "common/logging.h"

namespace viewmat::sim {

void SeriesTable::AddRow(double x, std::vector<double> values) {
  VIEWMAT_CHECK(values.size() == series_names.size());
  rows.push_back(Row{x, std::move(values)});
}

std::string SeriesTable::ToString() const {
  std::string out;
  char buf[64];
  if (!title.empty()) {
    out += "# ";
    out += title;
    out += '\n';
  }
  std::snprintf(buf, sizeof(buf), "%-12s", x_label.c_str());
  out += buf;
  for (const std::string& name : series_names) {
    std::snprintf(buf, sizeof(buf), " %14s", name.c_str());
    out += buf;
  }
  out += '\n';
  for (const Row& row : rows) {
    std::snprintf(buf, sizeof(buf), "%-12.6g", row.x);
    out += buf;
    for (const double v : row.values) {
      std::snprintf(buf, sizeof(buf), " %14.2f", v);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace viewmat::sim
