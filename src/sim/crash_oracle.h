#ifndef VIEWMAT_SIM_CRASH_ORACLE_H_
#define VIEWMAT_SIM_CRASH_ORACLE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "costmodel/params.h"
#include "sim/strategy_driver.h"

namespace viewmat::sim {

/// Knobs for the exhaustive crash-equivalence oracle. One oracle run
/// covers one (strategy, model) pair; sweep the pairs for full coverage.
struct CrashOracleOptions {
  StrategyKind kind = StrategyKind::kDeferred;
  /// 1 = select-project view, 2 = join view (qm/immediate/deferred only).
  int model = 1;
  uint64_t seed = 7;
  /// Worker threads for the crash-point fan-out (1 = serial, 0 = one per
  /// core). Every crash point runs against its own private instance and
  /// results merge in index order, so the result is identical at any job
  /// count.
  size_t jobs = 1;
  /// Operations (update transactions + view queries) per run.
  int ops_per_run = 24;
  /// Every query_every-th operation is a query; the rest are updates.
  int query_every = 4;
  /// RecoveryManager auto-checkpoint cadence for the RM-committing
  /// strategies (0 = no automatic checkpoints).
  size_t checkpoint_every = 0;
  /// Base parameter set; when shrink_params is set the shape fields are
  /// overridden with a small torture-sized database.
  costmodel::Params params;
  bool shrink_params = true;
};

/// Aggregate outcome of one oracle run.
struct CrashOracleResult {
  /// Disk operations the healthy run's workload+convergence window spans —
  /// the number of distinct crash points exercised.
  uint64_t crash_points = 0;
  uint64_t crashes_fired = 0;  ///< scripted crashes that actually fired
  uint64_t recoveries = 0;     ///< Recover() passes driven across all runs
  uint64_t rejected_txns = 0;  ///< transactions refused (loud failure)
  uint64_t failed_queries = 0; ///< queries that errored (loud failure)
  uint64_t prefix_checks = 0;  ///< post-recovery equivalence checks run
  /// The unacceptable outcomes — all must be zero:
  ///  - divergences: after a crash + Recover(), the visible base contents
  ///    did not equal the shadow's committed-prefix state;
  ///  - stale_reads: a post-recovery or mid-workload query returned OK with
  ///    a wrong answer;
  ///  - corrupt_runs: a run failed to converge on a healthy device, or its
  ///    converged view disagreed with the oracle or a from-scratch
  ///    recompute.
  int divergences = 0;
  int stale_reads = 0;
  int corrupt_runs = 0;

  std::string ToString() const;
};

/// The crash-equivalence oracle: first drives a seeded workload through the
/// strategy on a healthy device and measures the disk-operation window it
/// spans (plus validating the golden invariant crash-free); then, for every
/// disk operation i in that window, replays a fresh instance of the same
/// seeded workload with a scripted crash at the i-th operation. After each
/// crash the harness restarts the device, runs the strategy's Recover(),
/// and checks prefix equivalence: the recovered (base, view) state must
/// equal the state produced by serially applying exactly the committed
/// transactions — committed-ness resolved against the durable log's
/// high-water mark. Every run ends with convergence plus the three-way
/// golden check (view ≡ oracle ≡ from-scratch recompute).
StatusOr<CrashOracleResult> RunCrashOracle(const CrashOracleOptions& options);

}  // namespace viewmat::sim

#endif  // VIEWMAT_SIM_CRASH_ORACLE_H_
