#ifndef VIEWMAT_SIM_FAULT_SWEEP_H_
#define VIEWMAT_SIM_FAULT_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "costmodel/params.h"
#include "sim/strategy_driver.h"

namespace viewmat::sim {

/// Knobs for the crash-safety torture sweep: Model 1 (select-project) or
/// Model 2 (join) workloads driven through any maintenance strategy on a
/// FaultyDisk, under increasing fault rates and scripted crashes.
struct FaultSweepOptions {
  uint64_t seed = 42;
  /// Which maintenance strategy absorbs the faults.
  StrategyKind strategy = StrategyKind::kDeferred;
  /// 1 = select-project view, 2 = join view (qm/immediate/deferred only).
  int model = 1;
  /// Worker threads for the sweep (1 = serial, 0 = one per core). Every
  /// run derives its seed from (sweep seed, rate index, run index) and
  /// runs against its own private instance, and results merge in index
  /// order, so the result is identical at any job count.
  size_t jobs = 1;
  /// Probability per disk read/write of an injected transient fault (0 =
  /// crash-only row when scripted_crashes is on).
  std::vector<double> fault_rates = {0.0, 0.01, 0.03, 0.08};
  int runs_per_rate = 13;
  /// Operations (update transactions + view queries) per run.
  int ops_per_run = 32;
  /// Every query_every-th operation is a query; the rest are updates.
  int query_every = 4;
  /// Fault budget per run (crashes included) so every run provably
  /// converges once the budget is spent. 0 = unlimited.
  uint64_t fault_budget = 40;
  /// Arm one scripted crash per run: at a random protocol point for the
  /// AD-journaled strategies (deferred/hybrid), at a random disk operation
  /// for the RecoveryManager-committing ones.
  bool scripted_crashes = true;
  /// Base parameter set; when shrink_params is set the shape fields are
  /// overridden with a small torture-sized database.
  costmodel::Params params;
  bool shrink_params = true;
};

/// Aggregate outcomes for one fault rate.
struct FaultSweepCell {
  double fault_rate = 0;
  int runs = 0;
  uint64_t faults_injected = 0;   ///< transient faults the disk injected
  uint64_t crashes = 0;           ///< scripted crashes that fired
  uint64_t recoveries = 0;        ///< Recover() roll-forwards driven
  uint64_t degraded_queries = 0;  ///< queries served by the fallback path
  uint64_t rejected_txns = 0;     ///< transactions refused (loud failure)
  uint64_t failed_queries = 0;    ///< queries that errored (loud failure)
  /// The two unacceptable outcomes. A query that returns OK must be exact,
  /// and the converged view must equal a from-scratch recompute.
  int silently_stale_runs = 0;
  int corrupt_runs = 0;
};

struct FaultSweepResult {
  std::vector<FaultSweepCell> cells;
  int total_runs = 0;
  int total_silently_stale = 0;
  int total_corrupt = 0;

  std::string ToString() const;
};

/// Drives runs_per_rate seeded workloads per fault rate through the chosen
/// maintenance strategy, injecting transient faults, torn writes, and
/// scripted crashes; verifies every successful query against a shadow
/// oracle, and after disarming the faults verifies the golden invariant:
/// the converged answer equals the oracle, a from-scratch recompute over
/// the folded base relation, and the base itself equals the oracle's
/// committed state.
StatusOr<FaultSweepResult> SimulateFaultSweep(const FaultSweepOptions& options);

}  // namespace viewmat::sim

#endif  // VIEWMAT_SIM_FAULT_SWEEP_H_
