#ifndef VIEWMAT_SIM_SIMULATOR_H_
#define VIEWMAT_SIM_SIMULATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "costmodel/params.h"
#include "storage/cost_tracker.h"

namespace viewmat::sim {

/// Knobs for a simulation run.
struct SimOptions {
  uint64_t seed = 42;
  /// Buffer pool frames. 0 = auto: enough to keep R2 resident during a
  /// join (the model's assumption) while staying small otherwise.
  size_t buffer_pool_pages = 0;
  /// Write back and drop the cache between operations: each transaction
  /// and each query starts cold, matching the per-operation I/O counts the
  /// formulas charge. Caching still works *within* an operation (e.g. R2
  /// pages stay resident during one join).
  bool cold_cache_between_ops = true;
};

/// Outcome of driving the workload through one strategy.
struct StrategyRun {
  std::string name;
  storage::CostCounters counters;        ///< measured operation counts
  double measured_ms_per_query = 0;      ///< tracker ms / q
  double adjusted_ms_per_query = 0;      ///< measured − no-view baseline
  double analytical_ms_per_query = 0;    ///< the paper's TOTAL_* prediction
};

/// One simulated experiment: the same generated workload driven through a
/// no-view baseline and every applicable strategy, with per-strategy fresh
/// database instances.
struct SimResult {
  costmodel::Params params;
  double baseline_ms_per_query = 0;  ///< base updates only, no view work
  std::vector<StrategyRun> runs;

  std::string ToString() const;
};

/// Model 1: deferred, immediate, QM clustered / unclustered / sequential.
StatusOr<SimResult> SimulateModel1(const costmodel::Params& params,
                                   const SimOptions& options);

/// Model 2: deferred, immediate, QM nested-loops join.
StatusOr<SimResult> SimulateModel2(const costmodel::Params& params,
                                   const SimOptions& options);

/// Model 3: deferred, immediate, recompute-per-query.
StatusOr<SimResult> SimulateModel3(const costmodel::Params& params,
                                   const SimOptions& options);

}  // namespace viewmat::sim

#endif  // VIEWMAT_SIM_SIMULATOR_H_
