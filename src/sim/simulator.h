#ifndef VIEWMAT_SIM_SIMULATOR_H_
#define VIEWMAT_SIM_SIMULATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "costmodel/params.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/cost_timeline.h"
#include "storage/cost_tracker.h"

namespace viewmat::sim {

/// Knobs for a simulation run.
struct SimOptions {
  uint64_t seed = 42;
  /// Buffer pool frames. 0 = auto: enough to keep R2 resident during a
  /// join (the model's assumption) while staying small otherwise.
  size_t buffer_pool_pages = 0;
  /// Write back and drop the cache between operations: each transaction
  /// and each query starts cold, matching the per-operation I/O counts the
  /// formulas charge. Caching still works *within* an operation (e.g. R2
  /// pages stay resident during one join).
  bool cold_cache_between_ops = true;
  /// Optional span tracer (not owned; null = tracing off). Each strategy
  /// run gets its own track, with model-ms timestamps restarting at zero,
  /// so runs render as parallel tracks in Perfetto.
  obs::Tracer* tracer = nullptr;
  /// Optional metrics registry (not owned; null = off). The driver records
  /// per-operation counts and model-ms histograms labeled by strategy.
  obs::MetricsRegistry* metrics = nullptr;
  /// Window width (model ms) for per-run cost timelines; 0 = timelines off.
  /// Each strategy run then carries cost(component, phase, t) plus drift
  /// signals per window (see storage/cost_timeline.h).
  double timeline_window_ms = 0;
};

/// Outcome of driving the workload through one strategy.
struct StrategyRun {
  std::string name;
  storage::CostCounters counters;        ///< measured operation counts
  /// The same counters attributed by (component, phase); cells sum to
  /// `counters` exactly.
  storage::AttributedCounters attributed;
  size_t queries = 0;                    ///< queries served in the run
  size_t updates = 0;                    ///< update transactions applied
  double measured_ms_per_query = 0;      ///< tracker ms / q
  double adjusted_ms_per_query = 0;      ///< measured − no-view baseline
  double analytical_ms_per_query = 0;    ///< the paper's TOTAL_* prediction
  /// Windowed cost(component, phase, t) samples and drift signals; empty
  /// unless SimOptions::timeline_window_ms was set. Windows sum to
  /// `counters` exactly.
  storage::CostTimeline timeline;
};

/// One simulated experiment: the same generated workload driven through a
/// no-view baseline and every applicable strategy, with per-strategy fresh
/// database instances.
struct SimResult {
  costmodel::Params params;
  int model = 0;                    ///< 1, 2, or 3
  uint64_t seed = 0;                ///< RNG seed the workload was built from
  size_t buffer_pool_pages = 0;     ///< resolved frame count (after auto)
  bool cold_cache_between_ops = true;
  double baseline_ms_per_query = 0;  ///< base updates only, no view work
  std::vector<StrategyRun> runs;

  std::string ToString() const;
};

/// Model 1: deferred, immediate, QM clustered / unclustered / sequential.
StatusOr<SimResult> SimulateModel1(const costmodel::Params& params,
                                   const SimOptions& options);

/// Model 2: deferred, immediate, QM nested-loops join.
StatusOr<SimResult> SimulateModel2(const costmodel::Params& params,
                                   const SimOptions& options);

/// Model 3: deferred, immediate, recompute-per-query.
StatusOr<SimResult> SimulateModel3(const costmodel::Params& params,
                                   const SimOptions& options);

}  // namespace viewmat::sim

#endif  // VIEWMAT_SIM_SIMULATOR_H_
