#include "sim/bench_report.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/json.h"
#include "common/logging.h"
#include "common/parallel.h"

#ifndef VIEWMAT_GIT_DESCRIBE
#define VIEWMAT_GIT_DESCRIBE "unknown"
#endif

namespace viewmat::sim {

namespace {

using common::JsonWriter;
using storage::Component;
using storage::CostCounters;
using storage::Phase;

void WriteCounters(JsonWriter* w, const CostCounters& c) {
  w->BeginObject();
  w->KV("disk_reads", c.disk_reads);
  w->KV("disk_writes", c.disk_writes);
  w->KV("screen_tests", c.screen_tests);
  w->KV("tuple_cpu_ops", c.tuple_cpu_ops);
  w->KV("ad_set_ops", c.ad_set_ops);
  w->EndObject();
}

void WriteParams(JsonWriter* w, const costmodel::Params& p) {
  p.WriteJson(w);
}

void WriteTable(JsonWriter* w, const SeriesTable& t) {
  w->BeginObject();
  w->KV("title", t.title);
  w->KV("x_label", t.x_label);
  w->Key("series");
  w->BeginArray();
  for (const std::string& name : t.series_names) w->String(name);
  w->EndArray();
  w->Key("rows");
  w->BeginArray();
  for (const SeriesTable::Row& row : t.rows) {
    w->BeginObject();
    w->KV("x", row.x);
    w->Key("values");
    w->BeginArray();
    for (const double v : row.values) w->Double(v);
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

/// Model milliseconds of a counter cell under the paper's unit costs.
double CellMs(const CostCounters& c, const costmodel::Params& p) {
  return p.C2 * static_cast<double>(c.disk_ios()) +
         p.C1 * static_cast<double>(c.screen_tests + c.tuple_cpu_ops) +
         p.C3 * static_cast<double>(c.ad_set_ops);
}

/// Per-run cost timeline: window index, op counts, sparse attributed
/// cells, and the drift signals stamped when the window closed. The
/// windows' totals sum to the run's flat counters (schema check enforced).
void WriteTimeline(JsonWriter* w, const storage::CostTimeline& timeline,
                   const costmodel::Params& p) {
  w->BeginObject();
  w->KV("window_ms", timeline.window_ms);
  w->Key("windows");
  w->BeginArray();
  for (const storage::TimelineWindow& win : timeline.windows) {
    w->BeginObject();
    w->KV("index", win.index);
    w->KV("begin_ms", static_cast<double>(win.index) * timeline.window_ms);
    w->KV("end_ms",
          static_cast<double>(win.index + 1) * timeline.window_ms);
    w->KV("updates", win.updates);
    w->KV("queries", win.queries);
    w->Key("totals");
    WriteCounters(w, win.totals);
    w->Key("cells");
    w->BeginArray();
    for (const storage::TimelineCell& cell : win.cells) {
      w->BeginObject();
      w->KV("component", storage::ComponentName(cell.component));
      w->KV("phase", storage::PhaseName(cell.phase));
      w->Key("counters");
      WriteCounters(w, cell.counters);
      w->KV("ms", CellMs(cell.counters, p));
      w->EndObject();
    }
    w->EndArray();
    const storage::TimelineSignals& s = win.signals;
    w->Key("signals");
    w->BeginObject();
    w->KV("update_fraction", s.update_fraction);
    w->KV("update_ms", s.update_ms);
    w->KV("refresh_ms", s.refresh_ms);
    w->KV("query_ms", s.query_ms);
    w->KV("refresh_ms_per_update", s.refresh_ms_per_update);
    w->KV("query_ms_per_query", s.query_ms_per_query);
    w->KV("io_per_op", s.io_per_op);
    w->KV("ewma_update_ms", s.ewma_update_ms);
    w->KV("ewma_query_ms", s.ewma_query_ms);
    w->KV("p50_op_ms", s.p50_op_ms);
    w->KV("p95_op_ms", s.p95_op_ms);
    w->EndObject();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

void WriteRun(JsonWriter* w, const StrategyRun& run, const SimResult& result) {
  const costmodel::Params& p = result.params;
  w->BeginObject();
  w->KV("name", run.name);
  w->KV("queries", static_cast<uint64_t>(run.queries));
  w->KV("updates", static_cast<uint64_t>(run.updates));
  w->KV("measured_ms_per_query", run.measured_ms_per_query);
  w->KV("adjusted_ms_per_query", run.adjusted_ms_per_query);
  w->KV("analytical_ms_per_query", run.analytical_ms_per_query);
  w->Key("counters");
  WriteCounters(w, run.counters);

  // Attribution matrix, sparse: only non-empty (component, phase) cells.
  // The cells sum to `counters` exactly; the schema checker verifies it.
  w->Key("attributed");
  w->BeginArray();
  for (size_t c = 0; c < storage::kNumComponents; ++c) {
    for (size_t ph = 0; ph < storage::kNumPhases; ++ph) {
      const CostCounters& cell = run.attributed.at(
          static_cast<Component>(c), static_cast<Phase>(ph));
      if (cell.empty()) continue;
      w->BeginObject();
      w->KV("component", storage::ComponentName(static_cast<Component>(c)));
      w->KV("phase", storage::PhaseName(static_cast<Phase>(ph)));
      w->Key("counters");
      WriteCounters(w, cell);
      w->KV("ms", CellMs(cell, p));
      w->EndObject();
    }
  }
  w->EndArray();

  // Explain the measured − analytical gap: where did the model milliseconds
  // actually go? Per-component and per-phase ms (per query, to match the
  // headline numbers) turn a bare residual into an attribution.
  const double queries = static_cast<double>(run.queries > 0 ? run.queries : 1);
  w->Key("explain_gap");
  w->BeginObject();
  w->KV("gap_ms_per_query",
        run.measured_ms_per_query - run.analytical_ms_per_query);
  w->KV("adjusted_gap_ms_per_query",
        run.adjusted_ms_per_query - run.analytical_ms_per_query);
  w->Key("component_ms_per_query");
  w->BeginObject();
  for (size_t c = 0; c < storage::kNumComponents; ++c) {
    const CostCounters total =
        run.attributed.ComponentTotal(static_cast<Component>(c));
    if (total.empty()) continue;
    w->KV(storage::ComponentName(static_cast<Component>(c)),
          CellMs(total, p) / queries);
  }
  w->EndObject();
  w->Key("phase_ms_per_query");
  w->BeginObject();
  for (size_t ph = 0; ph < storage::kNumPhases; ++ph) {
    const CostCounters total = run.attributed.PhaseTotal(static_cast<Phase>(ph));
    if (total.empty()) continue;
    w->KV(storage::PhaseName(static_cast<Phase>(ph)), CellMs(total, p) / queries);
  }
  w->EndObject();
  w->EndObject();

  if (!run.timeline.empty()) {
    w->Key("timeline");
    WriteTimeline(w, run.timeline, p);
  }

  w->EndObject();
}

void WriteSimResult(JsonWriter* w, const SimResult& r) {
  w->BeginObject();
  w->KV("model", r.model);
  w->KV("seed", r.seed);
  w->KV("buffer_pool_pages", static_cast<uint64_t>(r.buffer_pool_pages));
  w->KV("cold_cache_between_ops", r.cold_cache_between_ops);
  w->Key("params");
  WriteParams(w, r.params);
  w->KV("baseline_ms_per_query", r.baseline_ms_per_query);
  w->Key("runs");
  w->BeginArray();
  for (const StrategyRun& run : r.runs) WriteRun(w, run, r);
  w->EndArray();
  w->EndObject();
}

}  // namespace

BenchCli BenchCli::Parse(int argc, char** argv) {
  BenchCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      cli.quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      cli.json_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      cli.jobs = parsed > 0 ? static_cast<size_t>(parsed) : 0;
    }
  }
  return cli;
}

size_t BenchCli::effective_jobs() const {
  return jobs > 0 ? jobs : common::DefaultJobs();
}

void BenchReport::AddExecutionNote(std::string_view key,
                                   std::string_view value) {
  // The determinism check removes the execution block with brace-matching
  // textual surgery; a brace inside a value would cut the block short.
  VIEWMAT_DCHECK(value.find('{') == std::string_view::npos &&
                 value.find('}') == std::string_view::npos);
  execution_notes_.emplace_back(key, value);
}

std::string BenchReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.KV("schema_version", 3);
  w.KV("bench", bench_name_);
  w.Key("build");
  w.BeginObject();
  w.KV("git_describe", VIEWMAT_GIT_DESCRIBE);
  w.EndObject();
  w.KV("quick", quick_);
  // How the run executed — the only block allowed to differ between runs
  // at different --jobs settings (the determinism check strips it).
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  w.Key("execution");
  w.BeginObject();
  w.KV("jobs", static_cast<uint64_t>(jobs_));
  w.KV("hardware_threads",
       static_cast<uint64_t>(std::thread::hardware_concurrency()));
  w.KV("wall_seconds", wall_seconds);
  for (const auto& [k, v] : execution_notes_) w.KV(k, v);
  w.EndObject();
  w.Key("notes");
  w.BeginObject();
  for (const auto& [k, v] : notes_) w.KV(k, v);
  w.EndObject();
  w.Key("tables");
  w.BeginArray();
  for (const SeriesTable& t : tables_) WriteTable(&w, t);
  w.EndArray();
  w.Key("sim_results");
  w.BeginArray();
  for (const SimResult& r : sim_results_) WriteSimResult(&w, r);
  w.EndArray();
  if (!explains_.empty()) {
    w.Key("explain");
    w.BeginArray();
    for (const obs::ExplainReport& e : explains_) obs::WriteExplainJson(&w, e);
    w.EndArray();
  }
  if (metrics_ != nullptr) {
    w.Key("metrics");
    metrics_->WriteJson(&w);
  }
  if (tracer_ != nullptr && tracer_->span_count() > 0) {
    // A complete Chrome-trace document, embedded: extract with jq '.trace'
    // and load in Perfetto.
    w.Key("trace");
    w.RawValue(tracer_->ToChromeTraceJson());
  }
  w.EndObject();
  return w.str();
}

Status BenchReport::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open report file: " + path);
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool newline_ok = std::fputc('\n', f) != EOF;
  if (std::fclose(f) != 0 || written != json.size() || !newline_ok) {
    return Status::Internal("short write to report file: " + path);
  }
  return Status::OK();
}

Status FinishBench(const BenchCli& cli, BenchReport* report) {
  report->set_jobs(cli.effective_jobs());
  if (!cli.want_json()) return Status::OK();
  VIEWMAT_RETURN_IF_ERROR(report->WriteTo(cli.json_path));
  std::printf("wrote JSON report: %s\n", cli.json_path.c_str());
  return Status::OK();
}

int FinishBenchMain(const BenchCli& cli, BenchReport* report) {
  const Status status = FinishBench(cli, report);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace viewmat::sim
