#ifndef VIEWMAT_SIM_REPORT_H_
#define VIEWMAT_SIM_REPORT_H_

#include <string>
#include <vector>

namespace viewmat::sim {

/// Minimal fixed-width table writer used by the bench binaries so every
/// figure reproduction prints in the same, diffable format:
///
///   # title
///   x        series-a     series-b
///   0.10     1234.5       987.6
struct SeriesTable {
  std::string title;
  std::string x_label;
  std::vector<std::string> series_names;
  struct Row {
    double x;
    std::vector<double> values;
  };
  std::vector<Row> rows;

  void AddRow(double x, std::vector<double> values);
  std::string ToString() const;
};

}  // namespace viewmat::sim

#endif  // VIEWMAT_SIM_REPORT_H_
