#ifndef VIEWMAT_STORAGE_COST_TRACKER_H_
#define VIEWMAT_STORAGE_COST_TRACKER_H_

#include <cstdint>
#include <string>

namespace viewmat::storage {

/// Raw operation counters accumulated by the simulator. The analytical model
/// charges C2 per disk I/O, C1 per predicate screen / per-tuple CPU action,
/// and C3 per tuple of in-memory A/D set upkeep; keeping the counters
/// separate lets experiments report both counts and model milliseconds.
struct CostCounters {
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  uint64_t screen_tests = 0;   ///< stage-2 satisfiability substitutions (C1)
  uint64_t tuple_cpu_ops = 0;  ///< per-tuple matching/handling work (C1)
  uint64_t ad_set_ops = 0;     ///< per-tuple A/D structure maintenance (C3)

  CostCounters operator-(const CostCounters& rhs) const {
    CostCounters d;
    d.disk_reads = disk_reads - rhs.disk_reads;
    d.disk_writes = disk_writes - rhs.disk_writes;
    d.screen_tests = screen_tests - rhs.screen_tests;
    d.tuple_cpu_ops = tuple_cpu_ops - rhs.tuple_cpu_ops;
    d.ad_set_ops = ad_set_ops - rhs.ad_set_ops;
    return d;
  }
  uint64_t disk_ios() const { return disk_reads + disk_writes; }
};

/// Accumulates operation counts and converts them to model milliseconds
/// using the paper's unit costs. One tracker is shared by a SimulatedDisk
/// and every component above it, so a workload run yields a single total
/// directly comparable to the analytical TOTAL_* formulas.
class CostTracker {
 public:
  CostTracker(double c1 = 1.0, double c2 = 30.0, double c3 = 1.0)
      : c1_(c1), c2_(c2), c3_(c3) {}

  void ChargeRead(uint64_t pages = 1) { counters_.disk_reads += pages; }
  void ChargeWrite(uint64_t pages = 1) { counters_.disk_writes += pages; }
  void ChargeScreen(uint64_t tuples = 1) { counters_.screen_tests += tuples; }
  void ChargeTupleCpu(uint64_t tuples = 1) {
    counters_.tuple_cpu_ops += tuples;
  }
  void ChargeAdSetOp(uint64_t tuples = 1) { counters_.ad_set_ops += tuples; }

  const CostCounters& counters() const { return counters_; }
  void Reset() { counters_ = CostCounters(); }

  /// Model milliseconds for a counter delta.
  double Ms(const CostCounters& c) const {
    return c2_ * static_cast<double>(c.disk_ios()) +
           c1_ * static_cast<double>(c.screen_tests + c.tuple_cpu_ops) +
           c3_ * static_cast<double>(c.ad_set_ops);
  }
  /// Model milliseconds accumulated since construction or Reset().
  double TotalMs() const { return Ms(counters_); }

  double c1() const { return c1_; }
  double c2() const { return c2_; }
  double c3() const { return c3_; }

 private:
  double c1_;
  double c2_;
  double c3_;
  CostCounters counters_;
};

}  // namespace viewmat::storage

#endif  // VIEWMAT_STORAGE_COST_TRACKER_H_
