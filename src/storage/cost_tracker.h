#ifndef VIEWMAT_STORAGE_COST_TRACKER_H_
#define VIEWMAT_STORAGE_COST_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>

#include "common/logging.h"
#include "obs/trace.h"

namespace viewmat::storage {

/// Storage structure a charge is attributed to. Every structure tags its
/// public operations with a ScopedComponent, so each disk I/O and CPU
/// charge lands in exactly one component bucket. kUnattributed catches
/// charges made outside any tagged scope (e.g. strategy-level per-tuple
/// work that belongs to no one structure).
enum class Component : uint8_t {
  kUnattributed = 0,
  kHeap,        ///< heap files (sequential/unclustered storage)
  kBptree,      ///< clustered B+-trees (base relations, view copies)
  kHashIndex,   ///< static hash files (R2, the AD differential file)
  kAdLog,       ///< the AD file's write-ahead log
  kBloom,       ///< Bloom screen upkeep (rebuilds)
  kBufferPool,  ///< explicit flush/evict traffic
  kWal,         ///< the unified redo WAL (storage/wal.h)
};
inline constexpr size_t kNumComponents = 8;

inline const char* ComponentName(Component c) {
  switch (c) {
    case Component::kUnattributed: return "unattributed";
    case Component::kHeap: return "heap";
    case Component::kBptree: return "bptree";
    case Component::kHashIndex: return "hash_index";
    case Component::kAdLog: return "ad_log";
    case Component::kBloom: return "bloom";
    case Component::kBufferPool: return "buffer_pool";
    case Component::kWal: return "wal";
  }
  return "unknown";
}

/// Workload phase a charge belongs to. Strategies tag their entry points,
/// so the same B+-tree descent is separable into update-side and
/// query-side cost — the distinction the paper's TOTAL_* formulas draw.
enum class Phase : uint8_t {
  kUnphased = 0,
  kUpdateApply,      ///< applying an update transaction
  kRefresh,          ///< deferred refresh (fold + view patch)
  kRefreshRecovery,  ///< crash recovery / roll-forward of a refresh
  kQuery,            ///< serving a view query
  kScreen,           ///< predicate screening (t-lock stage 2)
};
inline constexpr size_t kNumPhases = 6;

inline const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kUnphased: return "unphased";
    case Phase::kUpdateApply: return "update_apply";
    case Phase::kRefresh: return "refresh";
    case Phase::kRefreshRecovery: return "refresh_recovery";
    case Phase::kQuery: return "query";
    case Phase::kScreen: return "screen";
  }
  return "unknown";
}

/// Raw operation counters accumulated by the simulator. The analytical model
/// charges C2 per disk I/O, C1 per predicate screen / per-tuple CPU action,
/// and C3 per tuple of in-memory A/D set upkeep; keeping the counters
/// separate lets experiments report both counts and model milliseconds.
struct CostCounters {
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  uint64_t screen_tests = 0;   ///< stage-2 satisfiability substitutions (C1)
  uint64_t tuple_cpu_ops = 0;  ///< per-tuple matching/handling work (C1)
  uint64_t ad_set_ops = 0;     ///< per-tuple A/D structure maintenance (C3)

  CostCounters operator-(const CostCounters& rhs) const {
    CostCounters d;
    d.disk_reads = disk_reads - rhs.disk_reads;
    d.disk_writes = disk_writes - rhs.disk_writes;
    d.screen_tests = screen_tests - rhs.screen_tests;
    d.tuple_cpu_ops = tuple_cpu_ops - rhs.tuple_cpu_ops;
    d.ad_set_ops = ad_set_ops - rhs.ad_set_ops;
    return d;
  }
  CostCounters& operator+=(const CostCounters& rhs) {
    disk_reads += rhs.disk_reads;
    disk_writes += rhs.disk_writes;
    screen_tests += rhs.screen_tests;
    tuple_cpu_ops += rhs.tuple_cpu_ops;
    ad_set_ops += rhs.ad_set_ops;
    return *this;
  }
  bool operator==(const CostCounters& rhs) const {
    return disk_reads == rhs.disk_reads && disk_writes == rhs.disk_writes &&
           screen_tests == rhs.screen_tests &&
           tuple_cpu_ops == rhs.tuple_cpu_ops && ad_set_ops == rhs.ad_set_ops;
  }
  uint64_t disk_ios() const { return disk_reads + disk_writes; }
  bool empty() const {
    return disk_reads == 0 && disk_writes == 0 && screen_tests == 0 &&
           tuple_cpu_ops == 0 && ad_set_ops == 0;
  }
};

/// The component × phase attribution matrix. Every charge lands in exactly
/// one cell (the component/phase active when it was made), so summing all
/// cells reproduces the flat totals exactly — the invariant the
/// observability tests pin down.
struct AttributedCounters {
  CostCounters cells[kNumComponents][kNumPhases];

  CostCounters& at(Component c, Phase p) {
    return cells[static_cast<size_t>(c)][static_cast<size_t>(p)];
  }
  const CostCounters& at(Component c, Phase p) const {
    return cells[static_cast<size_t>(c)][static_cast<size_t>(p)];
  }
  CostCounters ComponentTotal(Component c) const {
    CostCounters total;
    for (size_t p = 0; p < kNumPhases; ++p) {
      total += cells[static_cast<size_t>(c)][p];
    }
    return total;
  }
  CostCounters PhaseTotal(Phase p) const {
    CostCounters total;
    for (size_t c = 0; c < kNumComponents; ++c) {
      total += cells[c][static_cast<size_t>(p)];
    }
    return total;
  }
  CostCounters Total() const {
    CostCounters total;
    for (size_t c = 0; c < kNumComponents; ++c) {
      for (size_t p = 0; p < kNumPhases; ++p) total += cells[c][p];
    }
    return total;
  }
  /// Cell-wise delta — how the timeline recorder turns two snapshots of a
  /// monotonically growing matrix into one window's worth of charges.
  AttributedCounters operator-(const AttributedCounters& rhs) const {
    AttributedCounters d;
    for (size_t c = 0; c < kNumComponents; ++c) {
      for (size_t p = 0; p < kNumPhases; ++p) {
        d.cells[c][p] = cells[c][p] - rhs.cells[c][p];
      }
    }
    return d;
  }
  AttributedCounters& operator+=(const AttributedCounters& rhs) {
    for (size_t c = 0; c < kNumComponents; ++c) {
      for (size_t p = 0; p < kNumPhases; ++p) cells[c][p] += rhs.cells[c][p];
    }
    return *this;
  }
};

class CostTracker;

/// A thread-local accumulation buffer for one in-flight operation: the flat
/// counters, the attribution matrix, and the component/phase tags that
/// would otherwise live on the tracker itself. While a shard is bound to a
/// tracker on a thread (ShardScope), every charge and tag swap made from
/// that thread lands in the shard instead of the tracker, so any number of
/// worker threads can execute read-only operations against shared storage
/// structures concurrently without touching the tracker's single-owner
/// state. Shards are merged back into the tracker in commit-LSN order
/// (CostTracker::MergeShard), which reproduces, counter for counter, the
/// totals a serial execution would have accumulated — the invariant the
/// server's determinism tests pin down (Σ shards == tracker totals).
///
/// Cache-line aligned so per-worker shards in an array never false-share.
struct alignas(64) CostShard {
  CostCounters flat;
  AttributedCounters attributed;
  Component component = Component::kUnattributed;
  Phase phase = Phase::kUnphased;

  CostCounters& Cell() { return attributed.at(component, phase); }
  /// Clears the charges and tags for reuse by the next operation.
  void Reset() {
    flat = CostCounters();
    attributed = AttributedCounters();
    component = Component::kUnattributed;
    phase = Phase::kUnphased;
  }
};

/// Accumulates operation counts and converts them to model milliseconds
/// using the paper's unit costs. One tracker is shared by a SimulatedDisk
/// and every component above it, so a workload run yields a single total
/// directly comparable to the analytical TOTAL_* formulas.
///
/// Observability: alongside the flat totals, every charge is attributed to
/// the (Component, Phase) pair active at the instant of the charge —
/// storage structures tag their operations with ScopedComponent, strategies
/// tag their entry points with ScopedPhase. Attribution never changes the
/// totals; it only explains them. The tracker is also the span tracer's
/// virtual clock (model milliseconds), and carries an optional Tracer
/// pointer so instrumentation deep in the stack can emit spans without new
/// plumbing.
///
/// Thread safety: none — by design. A CostTracker is single-owner: it
/// belongs to exactly one simulation, and every charge/swap/read happens on
/// the thread running that simulation. Parallel sweeps get one tracker per
/// task, never a shared one (model time is per-run anyway, so sharing would
/// be meaningless as well as racy). Debug builds assert the contract: the
/// first charging thread claims the tracker, and any charge or tag swap
/// from a different thread trips a VIEWMAT_DCHECK. Reset() releases the
/// claim along with the counters; TransferOwnership() releases just the
/// claim, the explicit handoff the server's serialized commit pipeline
/// uses to move a tracker between worker threads one at a time.
///
/// Sharded mode is the one sanctioned extension of that contract: a worker
/// thread that binds a CostShard (ShardScope) routes all of its charges and
/// tag swaps into the shard — private to that thread — and the server
/// merges shards back under its retirement mutex in commit-LSN order
/// (MergeShard). The main counters are then only ever mutated under that
/// mutex, which is what lets read-only operations physically overlap while
/// every logical number stays byte-identical to the serial execution.
class CostTracker : public obs::VirtualClock {
 public:
  CostTracker(double c1 = 1.0, double c2 = 30.0, double c3 = 1.0)
      : c1_(c1), c2_(c2), c3_(c3) {}

  void ChargeRead(uint64_t pages = 1) {
    if (CostShard* s = ActiveShard()) {
      s->flat.disk_reads += pages;
      s->Cell().disk_reads += pages;
      return;
    }
    VIEWMAT_DCHECK(CalledByOwner());
    counters_.disk_reads += pages;
    Cell().disk_reads += pages;
  }
  void ChargeWrite(uint64_t pages = 1) {
    if (CostShard* s = ActiveShard()) {
      s->flat.disk_writes += pages;
      s->Cell().disk_writes += pages;
      return;
    }
    VIEWMAT_DCHECK(CalledByOwner());
    counters_.disk_writes += pages;
    Cell().disk_writes += pages;
  }
  void ChargeScreen(uint64_t tuples = 1) {
    if (CostShard* s = ActiveShard()) {
      s->flat.screen_tests += tuples;
      s->Cell().screen_tests += tuples;
      return;
    }
    VIEWMAT_DCHECK(CalledByOwner());
    counters_.screen_tests += tuples;
    Cell().screen_tests += tuples;
  }
  void ChargeTupleCpu(uint64_t tuples = 1) {
    if (CostShard* s = ActiveShard()) {
      s->flat.tuple_cpu_ops += tuples;
      s->Cell().tuple_cpu_ops += tuples;
      return;
    }
    VIEWMAT_DCHECK(CalledByOwner());
    counters_.tuple_cpu_ops += tuples;
    Cell().tuple_cpu_ops += tuples;
  }
  void ChargeAdSetOp(uint64_t tuples = 1) {
    if (CostShard* s = ActiveShard()) {
      s->flat.ad_set_ops += tuples;
      s->Cell().ad_set_ops += tuples;
      return;
    }
    VIEWMAT_DCHECK(CalledByOwner());
    counters_.ad_set_ops += tuples;
    Cell().ad_set_ops += tuples;
  }

  const CostCounters& counters() const { return counters_; }
  const AttributedCounters& attributed() const { return attributed_; }
  void Reset() {
    counters_ = CostCounters();
    attributed_ = AttributedCounters();
    owner_.store(std::thread::id(), std::memory_order_relaxed);
  }

  /// Releases the current thread's ownership claim without touching the
  /// counters, so the next charging thread becomes the owner. This is the
  /// explicit handoff that generalizes the single-owner contract to "one
  /// thread at a time": the server layer's commit pipeline calls it at each
  /// turn boundary, where an external mutex already serializes the old and
  /// new owner (that mutex — not this relaxed store — provides the
  /// happens-before edge for the counter values themselves). Calling it
  /// while another thread may still charge concurrently is a contract
  /// violation the DCHECK cannot catch.
  void TransferOwnership() {
    owner_.store(std::thread::id(), std::memory_order_relaxed);
  }

  Component component() const { return component_; }
  Phase phase() const { return phase_; }
  /// Prefer ScopedComponent/ScopedPhase; these exist for the RAII guards.
  /// With a shard bound on this thread the tags live on the shard, so
  /// concurrent readers each carry their own attribution context.
  Component SwapComponent(Component c) {
    if (CostShard* s = ActiveShard()) {
      const Component prev = s->component;
      s->component = c;
      return prev;
    }
    VIEWMAT_DCHECK(CalledByOwner());
    const Component prev = component_;
    component_ = c;
    return prev;
  }
  Phase SwapPhase(Phase p) {
    if (CostShard* s = ActiveShard()) {
      const Phase prev = s->phase;
      s->phase = p;
      return prev;
    }
    VIEWMAT_DCHECK(CalledByOwner());
    const Phase prev = phase_;
    phase_ = p;
    return prev;
  }

  /// Folds one operation's shard into the tracker totals. The caller must
  /// serialize merges externally (the server's commit pipeline holds its
  /// retirement mutex) and must merge in commit-LSN order — charges are
  /// additive, so in-order merges reproduce the serial execution's running
  /// totals exactly. No ownership claim is taken: the external mutex, not
  /// the owner CAS, provides the happens-before edges here.
  void MergeShard(const CostShard& shard) {
    counters_ += shard.flat;
    attributed_ += shard.attributed;
    published_ms_.store(Ms(counters_), std::memory_order_relaxed);
  }

  /// Enters/leaves sharded mode. While in sharded mode NowMs() serves the
  /// model clock from an atomic published at each MergeShard — worker
  /// threads may read the clock while another thread merges, and the main
  /// counters are off-limits outside the retirement mutex. Call Begin after
  /// the last direct charge and End after the last worker has exited.
  void BeginShardedMode() {
    published_ms_.store(Ms(counters_), std::memory_order_relaxed);
    sharded_mode_.store(true, std::memory_order_release);
  }
  void EndShardedMode() {
    sharded_mode_.store(false, std::memory_order_release);
  }

  /// Optional span tracer riding on this tracker (null = tracing off).
  /// The tracer is not owned; callers keep it alive for the tracker's use.
  obs::Tracer* tracer() const { return tracer_; }
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    if (tracer_ != nullptr) tracer_->SetClock(this);
  }

  /// Model milliseconds for a counter delta.
  double Ms(const CostCounters& c) const {
    return c2_ * static_cast<double>(c.disk_ios()) +
           c1_ * static_cast<double>(c.screen_tests + c.tuple_cpu_ops) +
           c3_ * static_cast<double>(c.ad_set_ops);
  }
  /// Model milliseconds accumulated since construction or Reset().
  double TotalMs() const { return Ms(counters_); }
  /// VirtualClock: the tracer's timestamps are model milliseconds. In
  /// sharded mode the clock is the atomically published value from the
  /// last shard merge (so any worker may read it race-free); otherwise it
  /// is computed live from the single-owner counters.
  double NowMs() const override {
    if (sharded_mode_.load(std::memory_order_acquire)) {
      return published_ms_.load(std::memory_order_relaxed);
    }
    return TotalMs();
  }

  double c1() const { return c1_; }
  double c2() const { return c2_; }
  double c3() const { return c3_; }

 private:
  friend class ShardScope;

  CostCounters& Cell() { return attributed_.at(component_, phase_); }

  /// The shard bound to this tracker on the calling thread, or null. One
  /// thread-local slot suffices: a thread executes against one tracker at
  /// a time, and the tracker pointer check keeps concurrent simulations
  /// with their own trackers (parallel sweeps) out of each other's shards.
  CostShard* ActiveShard() const {
    return tls_bound_tracker_ == this ? tls_shard_ : nullptr;
  }

  inline static thread_local CostShard* tls_shard_ = nullptr;
  inline static thread_local const CostTracker* tls_bound_tracker_ = nullptr;

  /// True iff the calling thread owns this tracker. The first caller
  /// claims an unowned tracker (CAS from the default thread::id), so the
  /// check is self-initializing and costs one relaxed load on the owner's
  /// path. Debug-only via VIEWMAT_DCHECK at the call sites.
  bool CalledByOwner() {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected;  // default id = unowned
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return true;
    }
    return expected == self;
  }

  double c1_;
  double c2_;
  double c3_;
  CostCounters counters_;
  AttributedCounters attributed_;
  Component component_ = Component::kUnattributed;
  Phase phase_ = Phase::kUnphased;
  obs::Tracer* tracer_ = nullptr;
  std::atomic<std::thread::id> owner_{};  ///< default id until first charge
  std::atomic<bool> sharded_mode_{false};
  std::atomic<double> published_ms_{0.0};  ///< NowMs() while sharded
};

/// RAII binding of a CostShard to (tracker, calling thread): charges and
/// tag swaps made on this thread while the scope is alive land in the
/// shard. Restores the previous binding on destruction so scopes nest
/// (e.g. a retirement-time charge inside a worker loop). The shard is not
/// reset — callers Reset() it per operation so one per-worker shard can be
/// reused across ops.
class ShardScope {
 public:
  ShardScope(CostTracker* tracker, CostShard* shard)
      : prev_shard_(CostTracker::tls_shard_),
        prev_tracker_(CostTracker::tls_bound_tracker_) {
    CostTracker::tls_shard_ = shard;
    CostTracker::tls_bound_tracker_ = tracker;
  }
  ~ShardScope() {
    CostTracker::tls_shard_ = prev_shard_;
    CostTracker::tls_bound_tracker_ = prev_tracker_;
  }
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  CostShard* prev_shard_;
  const CostTracker* prev_tracker_;
};

/// Per-transaction cost context: captures the slice of a shared tracker's
/// growth attributable to one transaction as a pair of snapshot deltas
/// (flat counters + the full component×phase matrix). Because the server's
/// commit pipeline executes at most one transaction against the tracker at
/// a time, the delta between Begin() and End() is exactly that
/// transaction's charge — no routing of individual charges is needed, and
/// the sum of all contexts reproduces the tracker totals to the counter
/// (an invariant the server tests pin). Contexts are merged into reports
/// in commit-LSN order, which is what keeps reports byte-identical for a
/// fixed schedule at any worker count.
class TxnCostContext {
 public:
  /// Snapshots the tracker at transaction start. Must run on the thread
  /// that currently owns the tracker (the worker holding the commit turn).
  void Begin(const CostTracker* tracker) {
    base_flat_ = tracker->counters();
    base_attributed_ = tracker->attributed();
    open_ = true;
  }
  /// Captures the delta at transaction end (commit or abort).
  void End(const CostTracker* tracker) {
    VIEWMAT_DCHECK(open_);
    flat_ = tracker->counters() - base_flat_;
    attributed_ = tracker->attributed() - base_attributed_;
    open_ = false;
  }

  const CostCounters& flat() const { return flat_; }
  const AttributedCounters& attributed() const { return attributed_; }
  bool open() const { return open_; }

 private:
  CostCounters base_flat_;
  AttributedCounters base_attributed_;
  CostCounters flat_;
  AttributedCounters attributed_;
  bool open_ = false;
};

/// RAII component tag: charges made while alive are attributed to `c`.
/// Restores the previous tag on destruction, so nested structures (a
/// B+-tree descent inside an AD-file probe) attribute to the innermost
/// tagged structure. Null tracker is a no-op.
class ScopedComponent {
 public:
  ScopedComponent(CostTracker* tracker, Component c) : tracker_(tracker) {
    if (tracker_ != nullptr) prev_ = tracker_->SwapComponent(c);
  }
  ~ScopedComponent() {
    if (tracker_ != nullptr) tracker_->SwapComponent(prev_);
  }
  ScopedComponent(const ScopedComponent&) = delete;
  ScopedComponent& operator=(const ScopedComponent&) = delete;

 private:
  CostTracker* tracker_;
  Component prev_ = Component::kUnattributed;
};

/// RAII phase tag; same contract as ScopedComponent.
class ScopedPhase {
 public:
  ScopedPhase(CostTracker* tracker, Phase p) : tracker_(tracker) {
    if (tracker_ != nullptr) prev_ = tracker_->SwapPhase(p);
  }
  ~ScopedPhase() {
    if (tracker_ != nullptr) tracker_->SwapPhase(prev_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  CostTracker* tracker_;
  Phase prev_ = Phase::kUnphased;
};

/// The tracer attached to `tracker`, or null — for span emission sites
/// that only hold a possibly-null tracker.
inline obs::Tracer* TracerOf(CostTracker* tracker) {
  return tracker != nullptr ? tracker->tracer() : nullptr;
}

}  // namespace viewmat::storage

#endif  // VIEWMAT_STORAGE_COST_TRACKER_H_
