#include "storage/disk.h"

#include "common/logging.h"

namespace viewmat::storage {

SimulatedDisk::SimulatedDisk(uint32_t page_size, CostTracker* tracker)
    : page_size_(page_size), tracker_(tracker) {
  VIEWMAT_CHECK(page_size_ >= 64);
  VIEWMAT_CHECK(tracker_ != nullptr);
}

PageId SimulatedDisk::Allocate() {
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    pages_[id]->Zero();
    live_[id] = true;
    return id;
  }
  const PageId id = static_cast<PageId>(pages_.size());
  VIEWMAT_CHECK_MSG(id != kInvalidPageId, "page table full");
  pages_.push_back(std::make_unique<Page>(page_size_));
  live_.push_back(true);
  return id;
}

bool SimulatedDisk::IsLive(PageId id) const {
  return id < pages_.size() && live_[id];
}

Status SimulatedDisk::Free(PageId id) {
  if (!IsLive(id)) return Status::InvalidArgument("freeing non-live page");
  live_[id] = false;
  free_list_.push_back(id);
  return Status::OK();
}

Status SimulatedDisk::Read(PageId id, Page* out) {
  if (!IsLive(id)) return Status::InvalidArgument("reading non-live page");
  VIEWMAT_CHECK(out->size() == page_size_);
  out->WriteBytes(0, pages_[id]->data(), page_size_);
  out->set_lsn(pages_[id]->lsn());
  tracker_->ChargeRead();
  return Status::OK();
}

Status SimulatedDisk::Write(PageId id, const Page& in) {
  if (!IsLive(id)) return Status::InvalidArgument("writing non-live page");
  VIEWMAT_CHECK(in.size() == page_size_);
  pages_[id]->WriteBytes(0, in.data(), page_size_);
  pages_[id]->set_lsn(in.lsn());
  tracker_->ChargeWrite();
  return Status::OK();
}

}  // namespace viewmat::storage
