#ifndef VIEWMAT_STORAGE_BUFFER_POOL_H_
#define VIEWMAT_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk.h"
#include "storage/page.h"

namespace viewmat::storage {

class BufferPool;
class WriteAheadLog;

/// RAII pin on a buffered page. Access the bytes through page(); call
/// MarkDirty() after modifying them. The pin is released (and the LRU
/// position refreshed) on destruction. Move-only.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  Page& page();
  const Page& page() const;
  void MarkDirty();

  /// Releases the pin early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, size_t frame, PageId id)
      : pool_(pool), frame_(frame), id_(id) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId id_ = kInvalidPageId;
};

/// A fixed-capacity LRU buffer pool over a DiskInterface. Disk reads are
/// charged only on miss and writes only on dirty eviction or flush, so the
/// measured I/O counts reflect the same caching assumptions the paper's
/// formulas make (e.g. R2 pages staying resident during a nested-loops
/// join).
class BufferPool {
 public:
  BufferPool(DiskInterface* disk, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page, reading it from disk on miss.
  StatusOr<PageGuard> Fetch(PageId id);

  /// Allocates a fresh zeroed page on the disk and pins it (no read charged;
  /// its first write-back is).
  StatusOr<PageGuard> NewPage();

  /// Drops the page from the pool (it must be unpinned) and frees it on
  /// disk. A dirty copy is discarded, not written back.
  Status DeletePage(PageId id);

  /// Writes back every dirty frame. Call at the end of a measured phase so
  /// pending writes are charged.
  Status FlushAll();

  /// Writes back and forgets every frame. Used between experiment phases to
  /// model a cold cache.
  Status FlushAndEvictAll();

  /// Forgets every frame WITHOUT writing anything back, modeling the loss of
  /// volatile state at a crash. With group commit, Phase-3 base applies may
  /// sit in the pool for transactions whose buffered log records were lost;
  /// recovery must start from the durable on-disk state, not from the pool's
  /// post-crash ghost. Fails if any page is still pinned.
  Status DiscardAll();

  /// Toggles the concurrent-read window. While on, Fetch serves hits with an
  /// atomic pin increment and no LRU maintenance, so any number of threads
  /// may read resident pages concurrently; a miss is a hard Internal error
  /// (callers flip the mode only at barrier points where the working set is
  /// known resident), and NewPage/DeletePage/flushes are off-limits. Because
  /// the mode is entered and left only with every pin released, the LRU list
  /// is byte-identical before and after the window no matter how many
  /// threads read — recency is deliberately NOT updated by concurrent reads.
  void SetConcurrentReads(bool on);
  bool concurrent_reads() const {
    return concurrent_reads_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return capacity_; }
  DiskInterface* disk() { return disk_; }

  /// Attaches the redo WAL this pool's pages are logged against. From then
  /// on the pool enforces the WAL rule: before any dirty page is written
  /// back (eviction or flush), if the page's LSN stamp exceeds the log's
  /// durable LSN the log is synced first, so a page image never reaches the
  /// device ahead of the records that produced it.
  void AttachWal(WriteAheadLog* wal) { wal_ = wal; }

  /// Sets the LSN stamped onto pages dirtied from now on. Transactions call
  /// this with their commit record's LSN before applying; 0 disables
  /// stamping (unlogged mutations, the historical behavior).
  void SetStampLsn(Lsn lsn) { stamp_lsn_ = lsn; }
  Lsn stamp_lsn() const { return stamp_lsn_; }

  /// WAL syncs forced by the write-back ordering rule (observability).
  uint64_t wal_syncs_forced() const { return wal_syncs_forced_; }

 private:
  friend class PageGuard;

  struct Frame {
    std::unique_ptr<Page> page;
    PageId id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool in_use = false;
    std::list<size_t>::iterator lru_pos;  // valid iff pin_count == 0 && in_use
  };

  void Unpin(size_t frame, PageId id);
  void MarkDirtyFrame(size_t frame) {
    frames_[frame].dirty = true;
    Page& page = *frames_[frame].page;
    if (stamp_lsn_ > page.lsn()) page.set_lsn(stamp_lsn_);
  }
  /// WAL rule: syncs the attached log if `page` carries an LSN newer than
  /// what the log has made durable. Called immediately before every dirty
  /// write-back.
  Status EnforceWalRule(const Page& page);
  /// Finds a frame for a new resident page, evicting the LRU unpinned frame
  /// if the pool is full.
  StatusOr<size_t> AcquireFrame();

  DiskInterface* disk_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> table_;
  std::list<size_t> lru_;  ///< unpinned frames, least-recently-used first
  std::vector<size_t> free_frames_;
  WriteAheadLog* wal_ = nullptr;
  Lsn stamp_lsn_ = 0;
  uint64_t wal_syncs_forced_ = 0;
  std::atomic<bool> concurrent_reads_{false};
};

}  // namespace viewmat::storage

#endif  // VIEWMAT_STORAGE_BUFFER_POOL_H_
