#include "storage/faulty_disk.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace viewmat::storage {

FaultyDisk::FaultyDisk(DiskInterface* inner, uint64_t seed)
    : inner_(inner), rng_(seed) {
  VIEWMAT_CHECK(inner_ != nullptr);
}

Status FaultyDisk::CrashedStatus() const {
  return Status::Internal(std::string("simulated crash at ") +
                          CrashPointName(crashed_at_));
}

void FaultyDisk::ClearFaults() {
  read_fault_rate_ = 0.0;
  write_fault_rate_ = 0.0;
  read_fault_in_ = 0;
  write_fault_in_ = 0;
  scripted_point_ = CrashPoint::kNone;
  scripted_occurrence_ = 0;
  crash_at_op_ = 0;
}

void FaultyDisk::ScriptCrashAtOp(uint64_t nth) {
  VIEWMAT_CHECK(nth >= 1);
  crash_at_op_ = op_count_ + nth;
}

Status FaultyDisk::OpTick() {
  if (crashed_) return CrashedStatus();
  ++op_count_;
  if (crash_at_op_ != 0 && op_count_ >= crash_at_op_) {
    crash_at_op_ = 0;
    crashed_ = true;
    crashed_at_ = CrashPoint::kDiskOp;
    ++crashes_;
    ++faults_injected_;
    return CrashedStatus();
  }
  return Status::OK();
}

void FaultyDisk::ScriptCrash(CrashPoint point, uint64_t occurrence) {
  VIEWMAT_CHECK(point != CrashPoint::kNone);
  VIEWMAT_CHECK(occurrence >= 1);
  scripted_point_ = point;
  scripted_occurrence_ = occurrence;
}

void FaultyDisk::Restart() {
  crashed_ = false;
}

Status FaultyDisk::AtCrashPoint(CrashPoint p) {
  if (crashed_) return CrashedStatus();
  if (p == scripted_point_ && scripted_occurrence_ > 0 && BudgetAllows()) {
    if (--scripted_occurrence_ == 0) {
      scripted_point_ = CrashPoint::kNone;
      crashed_ = true;
      crashed_at_ = p;
      ++crashes_;
      ++faults_injected_;
      return CrashedStatus();
    }
  }
  return inner_->AtCrashPoint(p);
}

Status FaultyDisk::Free(PageId id) {
  VIEWMAT_RETURN_IF_ERROR(OpTick());
  return inner_->Free(id);
}

Status FaultyDisk::Read(PageId id, Page* out) {
  VIEWMAT_RETURN_IF_ERROR(OpTick());
  bool fail = false;
  if (read_fault_in_ > 0 && --read_fault_in_ == 0) fail = true;
  if (!fail && read_fault_rate_ > 0.0 && BudgetAllows() &&
      rng_.Bernoulli(read_fault_rate_)) {
    fail = true;
  }
  if (fail) {
    ++faults_injected_;
    return Status::Internal("injected read fault");
  }
  return inner_->Read(id, out);
}

Status FaultyDisk::Write(PageId id, const Page& in) {
  VIEWMAT_RETURN_IF_ERROR(OpTick());
  bool fail = false;
  if (write_fault_in_ > 0 && --write_fault_in_ == 0) fail = true;
  if (!fail && write_fault_rate_ > 0.0 && BudgetAllows() &&
      rng_.Bernoulli(write_fault_rate_)) {
    fail = true;
  }
  if (!fail) return inner_->Write(id, in);
  ++faults_injected_;
  if (torn_writes_) {
    // Persist a random strict prefix of the page, then fail: the block is
    // now a mix of new and old bytes, exactly what a power cut mid-sector-
    // train leaves behind. Readers must detect this by checksum.
    const uint32_t size = inner_->page_size();
    const uint32_t torn_len =
        static_cast<uint32_t>(rng_.Uniform(std::max<uint32_t>(size, 2) - 1)) + 1;
    Page current(size);
    if (inner_->Read(id, &current).ok()) {
      current.WriteBytes(0, in.data(), torn_len);
      (void)inner_->Write(id, current);
      return Status::Internal("injected torn write");
    }
  }
  return Status::Internal("injected write fault");
}

}  // namespace viewmat::storage
