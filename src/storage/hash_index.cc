#include "storage/hash_index.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace viewmat::storage {

HashIndex::HashIndex(BufferPool* pool, uint32_t payload_size,
                     uint32_t bucket_count)
    : pool_(pool), payload_size_(payload_size) {
  VIEWMAT_CHECK(pool_ != nullptr);
  VIEWMAT_CHECK(bucket_count > 0);
  const uint32_t page_size = pool_->disk()->page_size();
  page_capacity_ = (page_size - kEntriesOff) / EntrySize();
  VIEWMAT_CHECK_MSG(page_capacity_ >= 1, "payload too large for page");
  buckets_.assign(bucket_count, kInvalidPageId);
}

uint32_t HashIndex::BucketFor(int64_t key) const {
  // SplitMix64 finalizer: spreads sequential keys uniformly over buckets.
  uint64_t z = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<uint32_t>(z % buckets_.size());
}

StatusOr<PageId> HashIndex::EnsurePrimary(uint32_t bucket) {
  if (buckets_[bucket] != kInvalidPageId) return buckets_[bucket];
  VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
  Page& pg = guard.page();
  pg.WriteAt<uint16_t>(kCountOff, 0);
  pg.WriteAt<PageId>(kOverflowOff, kInvalidPageId);
  guard.MarkDirty();
  buckets_[bucket] = guard.id();
  owned_pages_.push_back(guard.id());
  ++page_count_;
  return guard.id();
}

Status HashIndex::Insert(int64_t key, const uint8_t* payload) {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kHashIndex);
  const uint32_t bucket = BucketFor(key);
  VIEWMAT_ASSIGN_OR_RETURN(const PageId primary, EnsurePrimary(bucket));
  PageId cur = primary;
  while (true) {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
    Page& pg = guard.page();
    const uint16_t count = pg.ReadAt<uint16_t>(kCountOff);
    if (count < page_capacity_) {
      pg.WriteAt<int64_t>(KeyOff(count), key);
      pg.WriteBytes(PayloadOff(count), payload, payload_size_);
      pg.WriteAt<uint16_t>(kCountOff, count + 1);
      guard.MarkDirty();
      ++entry_count_;
      return Status::OK();
    }
    const PageId next = pg.ReadAt<PageId>(kOverflowOff);
    if (next != kInvalidPageId) {
      cur = next;
      continue;
    }
    // Chain is full end to end: append a fresh overflow page.
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewPage());
    Page& fp = fresh.page();
    fp.WriteAt<uint16_t>(kCountOff, 1);
    fp.WriteAt<PageId>(kOverflowOff, kInvalidPageId);
    fp.WriteAt<int64_t>(KeyOff(0), key);
    fp.WriteBytes(PayloadOff(0), payload, payload_size_);
    fresh.MarkDirty();
    pg.WriteAt<PageId>(kOverflowOff, fresh.id());
    guard.MarkDirty();
    owned_pages_.push_back(fresh.id());
    ++page_count_;
    ++entry_count_;
    return Status::OK();
  }
}

Status HashIndex::Find(int64_t key, uint8_t* out) const {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kHashIndex);
  Status result = Status::NotFound("key absent");
  VIEWMAT_RETURN_IF_ERROR(FindAll(key, [&](int64_t, const uint8_t* payload) {
    std::memcpy(out, payload, payload_size_);
    result = Status::OK();
    return false;  // first match only
  }));
  return result;
}

Status HashIndex::FindAll(int64_t key, const Visitor& visit) const {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kHashIndex);
  PageId cur = buckets_[BucketFor(key)];
  while (cur != kInvalidPageId) {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
    const Page& pg = guard.page();
    const uint16_t count = pg.ReadAt<uint16_t>(kCountOff);
    for (uint16_t i = 0; i < count; ++i) {
      if (pg.ReadAt<int64_t>(KeyOff(i)) == key) {
        if (!visit(key, pg.data() + PayloadOff(i))) return Status::OK();
      }
    }
    cur = pg.ReadAt<PageId>(kOverflowOff);
  }
  return Status::OK();
}

Status HashIndex::Delete(int64_t key, const Matcher& match) {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kHashIndex);
  const uint32_t bucket = BucketFor(key);
  PageId cur = buckets_[bucket];
  PageId prev = kInvalidPageId;
  while (cur != kInvalidPageId) {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
    Page& pg = guard.page();
    const uint16_t count = pg.ReadAt<uint16_t>(kCountOff);
    for (uint16_t i = 0; i < count; ++i) {
      if (pg.ReadAt<int64_t>(KeyOff(i)) != key) continue;
      if (match != nullptr && !match(pg.data() + PayloadOff(i))) continue;
      // Fill the hole with the page's last entry (order inside a bucket
      // page carries no meaning).
      if (i + 1 < count) {
        std::vector<uint8_t> last(EntrySize());
        pg.ReadBytes(KeyOff(count - 1), last.data(), EntrySize());
        pg.WriteBytes(KeyOff(i), last.data(), EntrySize());
      }
      pg.WriteAt<uint16_t>(kCountOff, count - 1);
      guard.MarkDirty();
      --entry_count_;
      // Unlink and free an emptied overflow page (never the primary).
      if (count == 1 && prev != kInvalidPageId) {
        const PageId next = pg.ReadAt<PageId>(kOverflowOff);
        VIEWMAT_ASSIGN_OR_RETURN(PageGuard pguard, pool_->Fetch(prev));
        pguard.page().WriteAt<PageId>(kOverflowOff, next);
        pguard.MarkDirty();
        guard.Release();
        VIEWMAT_RETURN_IF_ERROR(pool_->DeletePage(cur));
        owned_pages_.erase(
            std::find(owned_pages_.begin(), owned_pages_.end(), cur));
        --page_count_;
      }
      return Status::OK();
    }
    prev = cur;
    cur = pg.ReadAt<PageId>(kOverflowOff);
  }
  return Status::NotFound("no matching entry");
}

Status HashIndex::UpdatePayload(int64_t key, const Matcher& match,
                                const uint8_t* new_payload) {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kHashIndex);
  PageId cur = buckets_[BucketFor(key)];
  while (cur != kInvalidPageId) {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
    Page& pg = guard.page();
    const uint16_t count = pg.ReadAt<uint16_t>(kCountOff);
    for (uint16_t i = 0; i < count; ++i) {
      if (pg.ReadAt<int64_t>(KeyOff(i)) != key) continue;
      if (match != nullptr && !match(pg.data() + PayloadOff(i))) continue;
      pg.WriteBytes(PayloadOff(i), new_payload, payload_size_);
      guard.MarkDirty();
      return Status::OK();
    }
    cur = pg.ReadAt<PageId>(kOverflowOff);
  }
  return Status::NotFound("no matching entry");
}

Status HashIndex::ScanAll(const Visitor& visit) const {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kHashIndex);
  for (PageId primary : buckets_) {
    PageId cur = primary;
    while (cur != kInvalidPageId) {
      VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
      const Page& pg = guard.page();
      const uint16_t count = pg.ReadAt<uint16_t>(kCountOff);
      for (uint16_t i = 0; i < count; ++i) {
        if (!visit(pg.ReadAt<int64_t>(KeyOff(i)), pg.data() + PayloadOff(i))) {
          return Status::OK();
        }
      }
      cur = pg.ReadAt<PageId>(kOverflowOff);
    }
  }
  return Status::OK();
}

Status HashIndex::Clear() {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kHashIndex);
  // Empty the directory first so the index is logically clear even if a
  // free below fails; the in-memory owned-page list is the sole authority
  // on what to free (never the on-disk chain links — see owned_pages_).
  // Popping only after a successful free makes a retried Clear resume
  // exactly where a failed one stopped.
  for (PageId& primary : buckets_) primary = kInvalidPageId;
  entry_count_ = 0;
  while (!owned_pages_.empty()) {
    VIEWMAT_RETURN_IF_ERROR(pool_->DeletePage(owned_pages_.back()));
    owned_pages_.pop_back();
    --page_count_;
  }
  return Status::OK();
}

}  // namespace viewmat::storage
