#include "storage/heap_file.h"

#include <algorithm>

#include "common/logging.h"

namespace viewmat::storage {

HeapFile::HeapFile(BufferPool* pool, uint32_t record_size)
    : pool_(pool), record_size_(record_size) {
  VIEWMAT_CHECK(pool_ != nullptr);
  VIEWMAT_CHECK(record_size_ > 0);
  const uint32_t page_size = pool_->disk()->page_size();
  // Solve for the largest slot count such that header + bitmap + records fit.
  uint32_t slots = (page_size - 2) / record_size_;
  while (slots > 0 && 2 + (slots + 7) / 8 + slots * record_size_ > page_size) {
    --slots;
  }
  VIEWMAT_CHECK_MSG(slots > 0, "record too large for page");
  slots_per_page_ = slots;
  records_base_ = 2 + (slots + 7) / 8;
}

bool HeapFile::TestBit(const Page& pg, uint32_t bitmap_off, uint16_t slot) {
  const uint8_t byte = pg.ReadAt<uint8_t>(bitmap_off + slot / 8);
  return (byte >> (slot % 8)) & 1;
}

void HeapFile::SetBit(Page* pg, uint32_t bitmap_off, uint16_t slot, bool on) {
  uint8_t byte = pg->ReadAt<uint8_t>(bitmap_off + slot / 8);
  if (on) {
    byte |= static_cast<uint8_t>(1u << (slot % 8));
  } else {
    byte &= static_cast<uint8_t>(~(1u << (slot % 8)));
  }
  pg->WriteAt<uint8_t>(bitmap_off + slot / 8, byte);
}

StatusOr<Rid> HeapFile::Insert(const uint8_t* record) {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kHeap);
  while (!pages_with_space_.empty()) {
    const PageId pid = pages_with_space_.back();
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(pid));
    Page& pg = guard.page();
    const uint16_t used = pg.ReadAt<uint16_t>(kCountOffset);
    if (used >= slots_per_page_) {
      pages_with_space_.pop_back();  // stale cache entry
      continue;
    }
    for (uint16_t s = 0; s < slots_per_page_; ++s) {
      if (!TestBit(pg, BitmapOffset(), s)) {
        SetBit(&pg, BitmapOffset(), s, true);
        pg.WriteAt<uint16_t>(kCountOffset, used + 1);
        pg.WriteBytes(RecordOffset(s), record, record_size_);
        guard.MarkDirty();
        ++record_count_;
        return Rid{pid, s};
      }
    }
    return Status::Internal("slot bitmap inconsistent with used count");
  }
  // No page with space: start a new one.
  VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
  Page& pg = guard.page();
  SetBit(&pg, BitmapOffset(), 0, true);
  pg.WriteAt<uint16_t>(kCountOffset, 1);
  pg.WriteBytes(RecordOffset(0), record, record_size_);
  guard.MarkDirty();
  pages_.push_back(guard.id());
  if (slots_per_page_ > 1) pages_with_space_.push_back(guard.id());
  ++record_count_;
  return Rid{guard.id(), 0};
}

Status HeapFile::Get(Rid rid, uint8_t* out) const {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kHeap);
  VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page));
  const Page& pg = guard.page();
  if (rid.slot >= slots_per_page_ || !TestBit(pg, BitmapOffset(), rid.slot)) {
    return Status::NotFound("no record at rid");
  }
  pg.ReadBytes(RecordOffset(rid.slot), out, record_size_);
  return Status::OK();
}

Status HeapFile::Update(Rid rid, const uint8_t* record) {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kHeap);
  VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page));
  Page& pg = guard.page();
  if (rid.slot >= slots_per_page_ || !TestBit(pg, BitmapOffset(), rid.slot)) {
    return Status::NotFound("no record at rid");
  }
  pg.WriteBytes(RecordOffset(rid.slot), record, record_size_);
  guard.MarkDirty();
  return Status::OK();
}

Status HeapFile::Delete(Rid rid) {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kHeap);
  VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page));
  Page& pg = guard.page();
  if (rid.slot >= slots_per_page_ || !TestBit(pg, BitmapOffset(), rid.slot)) {
    return Status::NotFound("no record at rid");
  }
  SetBit(&pg, BitmapOffset(), rid.slot, false);
  const uint16_t used = pg.ReadAt<uint16_t>(kCountOffset);
  VIEWMAT_CHECK(used > 0);
  pg.WriteAt<uint16_t>(kCountOffset, used - 1);
  guard.MarkDirty();
  --record_count_;
  if (used == slots_per_page_) pages_with_space_.push_back(rid.page);
  return Status::OK();
}

Status HeapFile::Scan(
    const std::function<bool(Rid, const uint8_t*)>& visit) const {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kHeap);
  std::vector<uint8_t> buf(record_size_);
  for (PageId pid : pages_) {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(pid));
    const Page& pg = guard.page();
    for (uint16_t s = 0; s < slots_per_page_; ++s) {
      if (!TestBit(pg, BitmapOffset(), s)) continue;
      pg.ReadBytes(RecordOffset(s), buf.data(), record_size_);
      if (!visit(Rid{pid, s}, buf.data())) return Status::OK();
    }
  }
  return Status::OK();
}

Status HeapFile::Destroy() {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kHeap);
  for (PageId pid : pages_) {
    VIEWMAT_RETURN_IF_ERROR(pool_->DeletePage(pid));
  }
  pages_.clear();
  pages_with_space_.clear();
  record_count_ = 0;
  return Status::OK();
}

}  // namespace viewmat::storage
