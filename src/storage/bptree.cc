#include "storage/bptree.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/logging.h"

namespace viewmat::storage {

namespace {
constexpr uint8_t kLeafTag = 1;
constexpr uint8_t kInternalTag = 0;
}  // namespace

BPTree::BPTree(BufferPool* pool, uint32_t payload_size)
    : pool_(pool), payload_size_(payload_size) {
  VIEWMAT_CHECK(pool_ != nullptr);
  const uint32_t page_size = pool_->disk()->page_size();
  leaf_capacity_ = (page_size - kLeafEntriesOff) / LeafEntrySize();
  internal_capacity_ = (page_size - kInternalEntriesOff) / kInternalEntrySize;
  VIEWMAT_CHECK_MSG(leaf_capacity_ >= 2, "payload too large for page");
  VIEWMAT_CHECK(internal_capacity_ >= 3);
  auto root = pool_->NewPage();
  VIEWMAT_CHECK(root.ok());
  Page& pg = root->page();
  pg.WriteAt<uint8_t>(kIsLeafOff, kLeafTag);
  SetCount(&pg, 0);
  pg.WriteAt<PageId>(kLeafNextOff, kInvalidPageId);
  pg.WriteAt<PageId>(kLeafPrevOff, kInvalidPageId);
  root->MarkDirty();
  root_ = root->id();
}

uint16_t BPTree::LeafLowerBound(const Page& pg, int64_t key) const {
  uint16_t lo = 0, hi = Count(pg);
  while (lo < hi) {
    const uint16_t mid = (lo + hi) / 2;
    if (pg.ReadAt<int64_t>(LeafKeyOff(mid)) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint16_t BPTree::LeafUpperBound(const Page& pg, int64_t key) const {
  uint16_t lo = 0, hi = Count(pg);
  while (lo < hi) {
    const uint16_t mid = (lo + hi) / 2;
    if (pg.ReadAt<int64_t>(LeafKeyOff(mid)) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint16_t BPTree::InternalChildFor(const Page& pg, int64_t key) {
  // Leftmost-biased routing: follow the child after the last separator that
  // is strictly below the key, so runs of duplicates are always entered at
  // their leftmost leaf.
  uint16_t lo = 0, hi = Count(pg);
  while (lo < hi) {
    const uint16_t mid = (lo + hi) / 2;
    if (pg.ReadAt<int64_t>(InternalSepOff(mid)) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;  // child index: 0 = child0, i>0 = entry (i-1)'s child
}

StatusOr<PageId> BPTree::DescendToLeaf(int64_t key,
                                       std::vector<PathEntry>* path) const {
  PageId cur = root_;
  while (true) {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
    const Page& pg = guard.page();
    if (IsLeaf(pg)) return cur;
    const uint16_t child_idx = InternalChildFor(pg, key);
    if (path != nullptr) path->push_back(PathEntry{cur, child_idx});
    cur = child_idx == 0 ? pg.ReadAt<PageId>(kChild0Off)
                         : pg.ReadAt<PageId>(InternalChildOff(child_idx - 1));
  }
}

void BPTree::LeafInsertAt(Page* pg, uint16_t pos, int64_t key,
                          const uint8_t* payload) {
  const uint16_t count = Count(*pg);
  VIEWMAT_DCHECK(count < leaf_capacity_ && pos <= count);
  // Shift entries [pos, count) one slot right.
  if (pos < count) {
    const uint32_t src = LeafKeyOff(pos);
    std::memmove(pg->data() + src + LeafEntrySize(), pg->data() + src,
                 static_cast<size_t>(count - pos) * LeafEntrySize());
  }
  pg->WriteAt<int64_t>(LeafKeyOff(pos), key);
  pg->WriteBytes(LeafPayloadOff(pos), payload, payload_size_);
  SetCount(pg, count + 1);
}

void BPTree::LeafRemoveAt(Page* pg, uint16_t pos) {
  const uint16_t count = Count(*pg);
  VIEWMAT_DCHECK(pos < count);
  if (pos + 1 < count) {
    const uint32_t dst = LeafKeyOff(pos);
    std::memmove(pg->data() + dst, pg->data() + dst + LeafEntrySize(),
                 static_cast<size_t>(count - pos - 1) * LeafEntrySize());
  }
  SetCount(pg, count - 1);
}

void BPTree::InternalInsertAt(Page* pg, uint16_t pos, int64_t sep,
                              PageId child) {
  const uint16_t count = Count(*pg);
  VIEWMAT_DCHECK(pos <= count);
  if (pos < count) {
    const uint32_t src = InternalSepOff(pos);
    std::memmove(pg->data() + src + kInternalEntrySize, pg->data() + src,
                 static_cast<size_t>(count - pos) * kInternalEntrySize);
  }
  pg->WriteAt<int64_t>(InternalSepOff(pos), sep);
  pg->WriteAt<PageId>(InternalChildOff(pos), child);
  SetCount(pg, count + 1);
}

void BPTree::InternalRemoveAt(Page* pg, uint16_t pos) {
  const uint16_t count = Count(*pg);
  VIEWMAT_DCHECK(pos < count);
  if (pos + 1 < count) {
    const uint32_t dst = InternalSepOff(pos);
    std::memmove(pg->data() + dst, pg->data() + dst + kInternalEntrySize,
                 static_cast<size_t>(count - pos - 1) * kInternalEntrySize);
  }
  SetCount(pg, count - 1);
}

StatusOr<BPTree::SplitResult> BPTree::SplitLeaf(PageGuard* left) {
  Page& lp = left->page();
  const uint16_t count = Count(lp);
  const uint16_t keep = count / 2 + (count % 2);  // left keeps ceil(n/2)
  const uint16_t moved = count - keep;

  VIEWMAT_ASSIGN_OR_RETURN(PageGuard right, pool_->NewPage());
  Page& rp = right.page();
  rp.WriteAt<uint8_t>(kIsLeafOff, kLeafTag);
  SetCount(&rp, moved);
  rp.WriteBytes(kLeafEntriesOff, lp.data() + LeafKeyOff(keep),
                static_cast<uint32_t>(moved) * LeafEntrySize());
  SetCount(&lp, keep);

  // Splice the new leaf into the doubly-linked chain.
  const PageId old_next = lp.ReadAt<PageId>(kLeafNextOff);
  rp.WriteAt<PageId>(kLeafNextOff, old_next);
  rp.WriteAt<PageId>(kLeafPrevOff, left->id());
  lp.WriteAt<PageId>(kLeafNextOff, right.id());
  if (old_next != kInvalidPageId) {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard nxt, pool_->Fetch(old_next));
    nxt.page().WriteAt<PageId>(kLeafPrevOff, right.id());
    nxt.MarkDirty();
  }
  left->MarkDirty();
  right.MarkDirty();
  ++leaf_page_count_;
  return SplitResult{right.id(), rp.ReadAt<int64_t>(LeafKeyOff(0))};
}

StatusOr<BPTree::SplitResult> BPTree::SplitInternal(PageGuard* left) {
  Page& lp = left->page();
  const uint16_t count = Count(lp);
  const uint16_t mid = count / 2;  // entry promoted upward
  const int64_t promoted = lp.ReadAt<int64_t>(InternalSepOff(mid));

  VIEWMAT_ASSIGN_OR_RETURN(PageGuard right, pool_->NewPage());
  Page& rp = right.page();
  rp.WriteAt<uint8_t>(kIsLeafOff, kInternalTag);
  rp.WriteAt<PageId>(kChild0Off, lp.ReadAt<PageId>(InternalChildOff(mid)));
  const uint16_t moved = count - mid - 1;
  SetCount(&rp, moved);
  if (moved > 0) {
    rp.WriteBytes(kInternalEntriesOff, lp.data() + InternalSepOff(mid + 1),
                  static_cast<uint32_t>(moved) * kInternalEntrySize);
  }
  SetCount(&lp, mid);
  left->MarkDirty();
  right.MarkDirty();
  return SplitResult{right.id(), promoted};
}

Status BPTree::InsertIntoParents(std::vector<PathEntry>* path, int64_t sep,
                                 PageId right) {
  while (!path->empty()) {
    const PathEntry top = path->back();
    path->pop_back();
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard parent, pool_->Fetch(top.page));
    Page& pg = parent.page();
    uint16_t insert_at = top.child_index;  // entry index for the new child
    if (Count(pg) < internal_capacity_) {
      InternalInsertAt(&pg, insert_at, sep, right);
      parent.MarkDirty();
      return Status::OK();
    }
    // Parent is full: split it, then place the new entry on the proper side
    // by index (not by key comparison — duplicate separators are possible).
    const uint16_t mid = Count(pg) / 2;
    VIEWMAT_ASSIGN_OR_RETURN(SplitResult split, SplitInternal(&parent));
    if (insert_at <= mid) {
      InternalInsertAt(&pg, insert_at, sep, right);
      parent.MarkDirty();
    } else {
      VIEWMAT_ASSIGN_OR_RETURN(PageGuard rguard, pool_->Fetch(split.right));
      InternalInsertAt(&rguard.page(),
                       static_cast<uint16_t>(insert_at - mid - 1), sep, right);
      rguard.MarkDirty();
    }
    // Continue upward with the parent's own split.
    sep = split.separator;
    right = split.right;
  }
  // The root itself split: grow a new root.
  VIEWMAT_ASSIGN_OR_RETURN(PageGuard new_root, pool_->NewPage());
  Page& pg = new_root.page();
  pg.WriteAt<uint8_t>(kIsLeafOff, kInternalTag);
  pg.WriteAt<PageId>(kChild0Off, root_);
  SetCount(&pg, 0);
  InternalInsertAt(&pg, 0, sep, right);
  new_root.MarkDirty();
  root_ = new_root.id();
  ++height_;
  return Status::OK();
}

Status BPTree::Insert(int64_t key, const uint8_t* payload) {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kBptree);
  std::vector<PathEntry> path;
  VIEWMAT_ASSIGN_OR_RETURN(const PageId leaf_id, DescendToLeaf(key, &path));
  VIEWMAT_ASSIGN_OR_RETURN(PageGuard leaf, pool_->Fetch(leaf_id));
  Page& pg = leaf.page();
  if (Count(pg) < leaf_capacity_) {
    LeafInsertAt(&pg, LeafUpperBound(pg, key), key, payload);
    leaf.MarkDirty();
    ++entry_count_;
    return Status::OK();
  }
  VIEWMAT_ASSIGN_OR_RETURN(SplitResult split, SplitLeaf(&leaf));
  if (key < split.separator) {
    LeafInsertAt(&pg, LeafUpperBound(pg, key), key, payload);
    leaf.MarkDirty();
  } else {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard rguard, pool_->Fetch(split.right));
    Page& rp = rguard.page();
    LeafInsertAt(&rp, LeafUpperBound(rp, key), key, payload);
    rguard.MarkDirty();
  }
  ++entry_count_;
  return InsertIntoParents(&path, split.separator, split.right);
}

Status BPTree::BulkLoad(const BulkSource& source, double fill_factor) {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kBptree);
  if (entry_count_ != 0) {
    return Status::FailedPrecondition("bulk load requires an empty tree");
  }
  const uint16_t leaf_fill = static_cast<uint16_t>(std::clamp<double>(
      fill_factor * leaf_capacity_, 1.0, leaf_capacity_));
  const uint16_t internal_fill = static_cast<uint16_t>(std::clamp<double>(
      fill_factor * internal_capacity_, 1.0, internal_capacity_));

  // ---- Leaf level ----------------------------------------------------
  struct LevelEntry {
    int64_t first_key;
    PageId page;
  };
  std::vector<LevelEntry> level;
  std::vector<uint8_t> payload(payload_size_);
  int64_t key = 0;
  int64_t prev_key = std::numeric_limits<int64_t>::min();
  bool more = source(&key, payload.data());
  size_t loaded = 0;
  PageId prev_leaf = kInvalidPageId;
  while (more) {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard leaf, pool_->NewPage());
    Page& pg = leaf.page();
    pg.WriteAt<uint8_t>(kIsLeafOff, kLeafTag);
    pg.WriteAt<PageId>(kLeafNextOff, kInvalidPageId);
    pg.WriteAt<PageId>(kLeafPrevOff, prev_leaf);
    uint16_t count = 0;
    int64_t first_key = key;
    while (more && count < leaf_fill) {
      if (key < prev_key) {
        return Status::InvalidArgument("bulk source keys not sorted");
      }
      if (count == 0) first_key = key;
      pg.WriteAt<int64_t>(LeafKeyOff(count), key);
      pg.WriteBytes(LeafPayloadOff(count), payload.data(), payload_size_);
      prev_key = key;
      ++count;
      ++loaded;
      more = source(&key, payload.data());
    }
    SetCount(&pg, count);
    leaf.MarkDirty();
    if (prev_leaf != kInvalidPageId) {
      VIEWMAT_ASSIGN_OR_RETURN(PageGuard prev, pool_->Fetch(prev_leaf));
      prev.page().WriteAt<PageId>(kLeafNextOff, leaf.id());
      prev.MarkDirty();
    }
    level.push_back(LevelEntry{first_key, leaf.id()});
    prev_leaf = leaf.id();
  }
  if (level.empty()) return Status::OK();  // empty source: keep empty root

  // Replace the initial empty root leaf.
  VIEWMAT_RETURN_IF_ERROR(pool_->DeletePage(root_));
  entry_count_ = loaded;
  leaf_page_count_ = level.size();
  height_ = 1;

  // ---- Internal levels -------------------------------------------------
  while (level.size() > 1) {
    std::vector<LevelEntry> parents;
    const size_t children_per_node = static_cast<size_t>(internal_fill) + 1;
    size_t i = 0;
    while (i < level.size()) {
      // Never leave a trailing single-child node: shrink this chunk by one
      // when exactly one child would remain (children_per_node >= 2, so
      // the shrunken chunk still has at least one separator... unless it
      // would itself become single-child, in which case take both).
      size_t take = std::min(children_per_node, level.size() - i);
      if (level.size() - i - take == 1) {
        if (take > 2) {
          --take;
        } else {
          take = level.size() - i;  // 2 or 3 children: take them all
        }
      }
      VIEWMAT_ASSIGN_OR_RETURN(PageGuard node, pool_->NewPage());
      Page& pg = node.page();
      pg.WriteAt<uint8_t>(kIsLeafOff, kInternalTag);
      pg.WriteAt<PageId>(kChild0Off, level[i].page);
      SetCount(&pg, 0);
      const int64_t first_key = level[i].first_key;
      for (size_t j = 1; j < take; ++j) {
        InternalInsertAt(&pg, static_cast<uint16_t>(j - 1),
                         level[i + j].first_key, level[i + j].page);
      }
      node.MarkDirty();
      parents.push_back(LevelEntry{first_key, node.id()});
      i += take;
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = level[0].page;
  return Status::OK();
}

Status BPTree::Compact(double fill_factor) {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kBptree);
  // Drain into memory (offline reorg), release every page, rebuild.
  std::vector<std::pair<int64_t, std::vector<uint8_t>>> entries;
  entries.reserve(entry_count_);
  VIEWMAT_RETURN_IF_ERROR(ScanAll([&](int64_t key, const uint8_t* payload) {
    entries.emplace_back(key,
                         std::vector<uint8_t>(payload, payload + payload_size_));
    return true;
  }));
  // Free the old structure: walk and release via a BFS over internal nodes.
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    {
      VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(id));
      const Page& pg = guard.page();
      if (!IsLeaf(pg)) {
        stack.push_back(pg.ReadAt<PageId>(kChild0Off));
        for (uint16_t i = 0; i < Count(pg); ++i) {
          stack.push_back(pg.ReadAt<PageId>(InternalChildOff(i)));
        }
      }
    }
    VIEWMAT_RETURN_IF_ERROR(pool_->DeletePage(id));
  }
  // Fresh empty root, then bulk load.
  VIEWMAT_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewPage());
  Page& pg = fresh.page();
  pg.WriteAt<uint8_t>(kIsLeafOff, kLeafTag);
  SetCount(&pg, 0);
  pg.WriteAt<PageId>(kLeafNextOff, kInvalidPageId);
  pg.WriteAt<PageId>(kLeafPrevOff, kInvalidPageId);
  fresh.MarkDirty();
  root_ = fresh.id();
  fresh.Release();
  height_ = 1;
  entry_count_ = 0;
  leaf_page_count_ = 1;
  size_t next = 0;
  return BulkLoad(
      [&](int64_t* key, uint8_t* payload) {
        if (next >= entries.size()) return false;
        *key = entries[next].first;
        std::memcpy(payload, entries[next].second.data(), payload_size_);
        ++next;
        return true;
      },
      fill_factor);
}

Status BPTree::Delete(int64_t key, const Matcher& match) {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kBptree);
  VIEWMAT_ASSIGN_OR_RETURN(const PageId leaf_id, DescendToLeaf(key, nullptr));
  PageId cur = leaf_id;
  while (cur != kInvalidPageId) {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
    Page& pg = guard.page();
    const uint16_t count = Count(pg);
    for (uint16_t pos = LeafLowerBound(pg, key); pos < count; ++pos) {
      const int64_t k = pg.ReadAt<int64_t>(LeafKeyOff(pos));
      if (k > key) return Status::NotFound("no matching entry");
      if (match == nullptr || match(pg.data() + LeafPayloadOff(pos))) {
        LeafRemoveAt(&pg, pos);
        guard.MarkDirty();
        --entry_count_;
        // Empty leaves are left in place and recycled by later inserts
        // (lazy reclamation, see class comment).
        return Status::OK();
      }
    }
    cur = pg.ReadAt<PageId>(kLeafNextOff);
    // Stop once the next leaf starts past the key; detected on next loop.
  }
  return Status::NotFound("no matching entry");
}

Status BPTree::Find(int64_t key, uint8_t* out) const {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kBptree);
  VIEWMAT_ASSIGN_OR_RETURN(const PageId leaf_id, DescendToLeaf(key, nullptr));
  PageId cur = leaf_id;
  while (cur != kInvalidPageId) {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
    const Page& pg = guard.page();
    const uint16_t count = Count(pg);
    const uint16_t pos = LeafLowerBound(pg, key);
    if (pos < count) {
      if (pg.ReadAt<int64_t>(LeafKeyOff(pos)) != key) {
        return Status::NotFound("key absent");
      }
      pg.ReadBytes(LeafPayloadOff(pos), out, payload_size_);
      return Status::OK();
    }
    cur = pg.ReadAt<PageId>(kLeafNextOff);
  }
  return Status::NotFound("key absent");
}

Status BPTree::UpdatePayload(int64_t key, const Matcher& match,
                             const uint8_t* new_payload) {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kBptree);
  VIEWMAT_ASSIGN_OR_RETURN(const PageId leaf_id, DescendToLeaf(key, nullptr));
  PageId cur = leaf_id;
  while (cur != kInvalidPageId) {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
    Page& pg = guard.page();
    const uint16_t count = Count(pg);
    for (uint16_t pos = LeafLowerBound(pg, key); pos < count; ++pos) {
      if (pg.ReadAt<int64_t>(LeafKeyOff(pos)) > key) {
        return Status::NotFound("no matching entry");
      }
      if (match == nullptr || match(pg.data() + LeafPayloadOff(pos))) {
        pg.WriteBytes(LeafPayloadOff(pos), new_payload, payload_size_);
        guard.MarkDirty();
        return Status::OK();
      }
    }
    cur = pg.ReadAt<PageId>(kLeafNextOff);
  }
  return Status::NotFound("no matching entry");
}

Status BPTree::RangeScan(int64_t lo, int64_t hi, const Visitor& visit) const {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kBptree);
  if (lo > hi) return Status::OK();
  VIEWMAT_ASSIGN_OR_RETURN(const PageId leaf_id, DescendToLeaf(lo, nullptr));
  PageId cur = leaf_id;
  while (cur != kInvalidPageId) {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
    const Page& pg = guard.page();
    const uint16_t count = Count(pg);
    for (uint16_t pos = LeafLowerBound(pg, lo); pos < count; ++pos) {
      const int64_t k = pg.ReadAt<int64_t>(LeafKeyOff(pos));
      if (k > hi) return Status::OK();
      if (!visit(k, pg.data() + LeafPayloadOff(pos))) return Status::OK();
    }
    cur = pg.ReadAt<PageId>(kLeafNextOff);
  }
  return Status::OK();
}

Status BPTree::ScanAll(const Visitor& visit) const {
  return RangeScan(std::numeric_limits<int64_t>::min(),
                   std::numeric_limits<int64_t>::max(), visit);
}

Status BPTree::CheckNode(PageId id, uint32_t depth, std::optional<int64_t> lo,
                         std::optional<int64_t> hi, uint32_t* leaf_depth,
                         size_t* entries, size_t* leaves) const {
  VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(id));
  const Page& pg = guard.page();
  const uint16_t count = Count(pg);
  if (IsLeaf(pg)) {
    if (count > leaf_capacity_) return Status::Internal("leaf over capacity");
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Internal("leaves at differing depths");
    }
    int64_t prev = 0;
    for (uint16_t i = 0; i < count; ++i) {
      const int64_t k = pg.ReadAt<int64_t>(LeafKeyOff(i));
      if (i > 0 && k < prev) return Status::Internal("leaf keys unsorted");
      // Duplicates may sit exactly on a separator boundary, hence the
      // inclusive bounds.
      if (lo && k < *lo) return Status::Internal("leaf key below bound");
      if (hi && k > *hi) return Status::Internal("leaf key above bound");
      prev = k;
    }
    *entries += count;
    *leaves += 1;
    return Status::OK();
  }
  if (count > internal_capacity_) {
    return Status::Internal("internal node over capacity");
  }
  if (count == 0) return Status::Internal("internal node without separators");
  for (uint16_t i = 1; i < count; ++i) {
    if (pg.ReadAt<int64_t>(InternalSepOff(i)) <
        pg.ReadAt<int64_t>(InternalSepOff(i - 1))) {
      return Status::Internal("separators unsorted");
    }
  }
  // child0 covers (lo, sep0]; entry i's child covers [sep_i, sep_{i+1}].
  std::optional<int64_t> child_lo = lo;
  std::optional<int64_t> child_hi = pg.ReadAt<int64_t>(InternalSepOff(0));
  VIEWMAT_RETURN_IF_ERROR(CheckNode(pg.ReadAt<PageId>(kChild0Off), depth + 1,
                                    child_lo, child_hi, leaf_depth, entries,
                                    leaves));
  for (uint16_t i = 0; i < count; ++i) {
    child_lo = pg.ReadAt<int64_t>(InternalSepOff(i));
    child_hi = (i + 1 < count)
                   ? std::optional<int64_t>(
                         pg.ReadAt<int64_t>(InternalSepOff(i + 1)))
                   : hi;
    VIEWMAT_RETURN_IF_ERROR(CheckNode(pg.ReadAt<PageId>(InternalChildOff(i)),
                                      depth + 1, child_lo, child_hi,
                                      leaf_depth, entries, leaves));
  }
  return Status::OK();
}

Status BPTree::CheckInvariants() const {
  const ScopedComponent tag(pool_->disk()->tracker(), Component::kBptree);
  uint32_t leaf_depth = 0;
  size_t entries = 0;
  size_t leaves = 0;
  VIEWMAT_RETURN_IF_ERROR(CheckNode(root_, 1, std::nullopt, std::nullopt,
                                    &leaf_depth, &entries, &leaves));
  if (leaf_depth != height_) return Status::Internal("height mismatch");
  if (entries != entry_count_) return Status::Internal("entry count mismatch");
  if (leaves != leaf_page_count_) {
    return Status::Internal("leaf page count mismatch");
  }
  // Walk the leaf chain and verify global ordering plus prev/next symmetry.
  VIEWMAT_ASSIGN_OR_RETURN(PageId cur,
                           DescendToLeaf(std::numeric_limits<int64_t>::min(),
                                         nullptr));
  PageId prev_page = kInvalidPageId;
  std::optional<int64_t> prev_key;
  size_t chain_leaves = 0;
  while (cur != kInvalidPageId) {
    VIEWMAT_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
    const Page& pg = guard.page();
    if (!IsLeaf(pg)) return Status::Internal("non-leaf in leaf chain");
    if (pg.ReadAt<PageId>(kLeafPrevOff) != prev_page) {
      return Status::Internal("leaf chain prev pointer broken");
    }
    const uint16_t count = Count(pg);
    for (uint16_t i = 0; i < count; ++i) {
      const int64_t k = pg.ReadAt<int64_t>(LeafKeyOff(i));
      if (prev_key && k < *prev_key) {
        return Status::Internal("leaf chain out of order");
      }
      prev_key = k;
    }
    ++chain_leaves;
    prev_page = cur;
    cur = pg.ReadAt<PageId>(kLeafNextOff);
  }
  if (chain_leaves != leaves) {
    return Status::Internal("leaf chain does not cover all leaves");
  }
  return Status::OK();
}

}  // namespace viewmat::storage
