#include "storage/wal.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace viewmat::storage {

WriteAheadLog::WriteAheadLog(DiskInterface* disk, Options options)
    : disk_(disk),
      auto_sync_(options.auto_sync),
      component_(options.component),
      lsns_(options.lsn_allocator != nullptr ? options.lsn_allocator
                                             : &owned_lsns_),
      tail_(disk->page_size()) {
  VIEWMAT_CHECK(disk_ != nullptr);
  VIEWMAT_CHECK(disk_->page_size() >= kHeaderSize + kRecordHeader + 16);
  const PageId head = disk_->Allocate();
  InitHeader(&tail_);
  VIEWMAT_CHECK_MSG(disk_->Write(head, tail_).ok(),
                    "WAL head page unwritable at construction");
  chain_.push_back(head);
}

WriteAheadLog::~WriteAheadLog() {
  for (const PageId id : chain_) (void)disk_->Free(id);
}

void WriteAheadLog::InitHeader(Page* page) const {
  page->Zero();
  page->WriteAt<uint32_t>(kUsedOff, kHeaderSize);
  page->WriteAt<PageId>(kNextOff, kInvalidPageId);
}

uint16_t WriteAheadLog::max_payload() const {
  return static_cast<uint16_t>(disk_->page_size() - kHeaderSize -
                               kRecordHeader);
}

uint32_t WriteAheadLog::Checksum(uint8_t type, uint16_t len, Lsn lsn,
                                 const uint8_t* payload) {
  uint32_t h = 2166136261u;  // FNV-1a
  const auto mix = [&h](uint8_t b) {
    h ^= b;
    h *= 16777619u;
  };
  mix(type);
  mix(static_cast<uint8_t>(len & 0xff));
  mix(static_cast<uint8_t>(len >> 8));
  for (int shift = 0; shift < 64; shift += 8) {
    mix(static_cast<uint8_t>(lsn >> shift));
  }
  for (uint16_t i = 0; i < len; ++i) mix(payload[i]);
  return h;
}

void WriteAheadLog::PutRecord(Page* page, uint32_t off, uint8_t type,
                              const uint8_t* payload, uint16_t len,
                              Lsn lsn) const {
  page->WriteAt<uint8_t>(off, type);
  page->WriteAt<uint16_t>(off + 1, len);
  page->WriteAt<Lsn>(off + 3, lsn);
  page->WriteAt<uint32_t>(off + 11, Checksum(type, len, lsn, payload));
  if (len > 0) page->WriteBytes(off + kRecordHeader, payload, len);
}

void WriteAheadLog::DurableEnd(const Page& page, uint32_t* end, size_t* count,
                               Lsn* last) const {
  const uint32_t page_size = disk_->page_size();
  uint32_t off = kHeaderSize;
  *count = 0;
  if (last != nullptr) *last = 0;
  while (off + kRecordHeader <= page_size) {
    const uint8_t type = page.ReadAt<uint8_t>(off);
    const uint16_t len = page.ReadAt<uint16_t>(off + 1);
    const Lsn lsn = page.ReadAt<Lsn>(off + 3);
    const uint32_t sum = page.ReadAt<uint32_t>(off + 11);
    if (off + kRecordHeader + len > page_size ||
        sum != Checksum(type, len, lsn, page.data() + off + kRecordHeader)) {
      break;
    }
    off += kRecordHeader + len;
    ++*count;
    if (last != nullptr) *last = lsn;
  }
  *end = off;
}

Status WriteAheadLog::ResyncTail() {
  const ScopedComponent tag(disk_->tracker(), component_);
  // Walk the durable chain from the head — not from the in-memory tail,
  // which may be stale in either direction (a link write that landed
  // despite an error extends the chain; a truncate that landed despite an
  // error empties it). A garbage (torn) link is recognized by pointing
  // nowhere useful: an unreadable id, a page with no valid records, or a
  // page already walked (never follow a cycle).
  const uint32_t page_size = disk_->page_size();
  std::vector<PageId> durable_chain;
  Page page(page_size);
  Page tail_image(page_size);
  size_t durable_records = 0;
  Lsn durable_last = 0;
  PageId id = chain_.front();
  while (true) {
    if (std::find(durable_chain.begin(), durable_chain.end(), id) !=
        durable_chain.end()) {
      break;
    }
    const Status read = disk_->Read(id, &page);
    if (!read.ok()) {
      if (!durable_chain.empty() &&
          read.code() == StatusCode::kInvalidArgument) {
        break;  // dangling garbage link: end of durable history
      }
      return read;  // head unreadable or transient: stay dirty, retry later
    }
    uint32_t end = 0;
    size_t valid = 0;
    Lsn last = 0;
    DurableEnd(page, &end, &valid, &last);
    if (!durable_chain.empty() && valid == 0) break;  // torn link target
    durable_chain.push_back(id);
    durable_records += valid;
    if (last != 0) durable_last = last;
    tail_image = page;
    const PageId next = page.ReadAt<PageId>(kNextOff);
    if (next == kInvalidPageId) break;
    id = next;
  }
  // Pages the device no longer reaches (a truncate whose head write landed
  // despite the error) go back to the allocator.
  for (const PageId old : chain_) {
    if (std::find(durable_chain.begin(), durable_chain.end(), old) ==
        durable_chain.end()) {
      (void)disk_->Free(old);
    }
  }
  chain_ = std::move(durable_chain);
  uint32_t end = 0;
  size_t valid = 0;
  DurableEnd(tail_image, &end, &valid, nullptr);
  // Scrub whatever follows the durable records so the next append rewrites
  // clean bytes over any torn region. Staged-but-unsynced records are
  // dropped with it: their callers already saw an error, and the scan just
  // decided their durable fate.
  std::memset(tail_image.data() + end, 0, page_size - end);
  tail_image.WriteAt<uint32_t>(kUsedOff, end);
  tail_ = std::move(tail_image);
  tail_used_ = end;
  tail_synced_ = end;
  pending_.clear();
  record_count_ = durable_records;
  durable_lsn_ = durable_last;
  if (durable_last > last_lsn_) last_lsn_ = durable_last;
  lsns_->EnsureAtLeast(durable_last);
  tail_dirty_ = false;
  return Status::OK();
}

Status WriteAheadLog::Append(uint8_t type, const uint8_t* payload,
                             uint16_t len, Lsn* out_lsn) {
  const ScopedComponent tag(disk_->tracker(), component_);
  VIEWMAT_CHECK(len <= max_payload());
  if (tail_dirty_) VIEWMAT_RETURN_IF_ERROR(ResyncTail());
  const uint32_t need = kRecordHeader + len;
  const uint32_t page_size = disk_->page_size();

  if (tail_used_ + need > page_size) {
    // Tail is full. Make any staged records durable first, then place the
    // record on a fresh page, write it, and only then link it from the old
    // tail — the rollover itself is always durable, even in buffered mode.
    VIEWMAT_RETURN_IF_ERROR(SyncInternal());
    const Lsn lsn = lsns_->Next();
    last_lsn_ = lsn;
    if (out_lsn != nullptr) *out_lsn = lsn;
    const PageId fresh = disk_->Allocate();
    Page next_page(page_size);
    InitHeader(&next_page);
    PutRecord(&next_page, kHeaderSize, type, payload, len, lsn);
    next_page.WriteAt<uint32_t>(kUsedOff, kHeaderSize + need);
    Status st = disk_->Write(fresh, next_page);
    if (!st.ok()) {
      // Not yet linked, so whatever landed is unreachable; the handle can
      // be returned safely.
      (void)disk_->Free(fresh);
      return st;
    }
    tail_.WriteAt<PageId>(kNextOff, fresh);
    st = disk_->Write(chain_.back(), tail_);
    if (!st.ok()) {
      // Did the link land anyway? Read the old tail back to find out.
      Page durable(page_size);
      const Status read = disk_->Read(chain_.back(), &durable);
      if (!read.ok()) {
        // Linkage unknown: the fresh page may be durably reachable, so its
        // handle must not be reused — leak it and resync before the next
        // append decides where to write.
        tail_.WriteAt<PageId>(kNextOff, kInvalidPageId);
        tail_dirty_ = true;
        return st;
      }
      if (durable.ReadAt<PageId>(kNextOff) != fresh) {
        // The link is absent (or torn garbage, repaired when the whole page
        // is next rewritten): the fresh page is unreachable.
        tail_.WriteAt<PageId>(kNextOff, kInvalidPageId);
        (void)disk_->Free(fresh);
        return st;
      }
      // The link landed in full before the fault was reported: durable ==
      // acknowledged. Fall through to the success path.
    }
    chain_.push_back(fresh);
    tail_ = std::move(next_page);
    tail_used_ = kHeaderSize + need;
    tail_synced_ = tail_used_;
    ++record_count_;
    durable_lsn_ = lsn;
    return Status::OK();
  }

  const Lsn lsn = lsns_->Next();
  last_lsn_ = lsn;
  if (out_lsn != nullptr) *out_lsn = lsn;
  const uint32_t off = tail_used_;
  PutRecord(&tail_, off, type, payload, len, lsn);
  tail_.WriteAt<uint32_t>(kUsedOff, off + need);
  tail_used_ = off + need;
  pending_.push_back(Pending{off, need, lsn});
  if (auto_sync_) return SyncInternal();
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  const ScopedComponent tag(disk_->tracker(), component_);
  if (tail_dirty_) VIEWMAT_RETURN_IF_ERROR(ResyncTail());
  return SyncInternal();
}

Status WriteAheadLog::DiscardVolatile() {
  const ScopedComponent tag(disk_->tracker(), component_);
  // ResyncTail is exactly "trust only the device": it rebuilds the chain,
  // tail image, record count, and durable LSN from durable bytes and
  // clears the staged tail.
  tail_dirty_ = true;
  return ResyncTail();
}

Status WriteAheadLog::SyncInternal() {
  if (pending_.empty()) return Status::OK();
  const uint32_t page_size = disk_->page_size();
  const uint32_t sync_start = tail_synced_;
  const Status st = disk_->Write(chain_.back(), tail_);
  if (st.ok()) {
    record_count_ += pending_.size();
    durable_lsn_ = pending_.back().lsn;
    tail_synced_ = tail_used_;
    pending_.clear();
    return Status::OK();
  }
  // Find out what the device durably holds before deciding the batch's
  // fate: a torn write may still have landed some or all of it.
  Page durable(page_size);
  const Status read = disk_->Read(chain_.back(), &durable);
  if (!read.ok()) {
    tail_dirty_ = true;
    pending_.clear();
    return st;
  }
  uint32_t end = 0;
  size_t valid = 0;
  DurableEnd(durable, &end, &valid, nullptr);
  if (end >= tail_used_ &&
      std::memcmp(durable.data() + sync_start, tail_.data() + sync_start,
                  tail_used_ - sync_start) == 0) {
    // The whole batch landed in full despite the error: durable ==
    // acknowledged.
    record_count_ += pending_.size();
    durable_lsn_ = pending_.back().lsn;
    tail_synced_ = tail_used_;
    pending_.clear();
    return Status::OK();
  }
  if (end < sync_start ||
      std::memcmp(durable.data() + sync_start, tail_.data() + sync_start,
                  end > sync_start ? end - sync_start : 0) != 0) {
    // The device holds something that is neither the old tail nor a prefix
    // of the staged bytes; trust nothing until a full resync.
    tail_dirty_ = true;
    pending_.clear();
    return st;
  }
  // A strict prefix of the batch is durable (a torn write). Adopt it —
  // durable history is append-only, never rewritten — and scrub the
  // in-memory suffix so it can never retroactively become durable. The
  // error still stands: the caller's newest records (its sync point) are
  // gone.
  for (const Pending& p : pending_) {
    if (p.off + p.size <= end) {
      ++record_count_;
      durable_lsn_ = p.lsn;
    }
  }
  std::memset(tail_.data() + end, 0, page_size - end);
  tail_.WriteAt<uint32_t>(kUsedOff, end);
  tail_used_ = end;
  tail_synced_ = end;
  pending_.clear();
  return st;
}

Status WriteAheadLog::ScanWithLsn(const LsnVisitor& visit,
                                  bool* torn_tail) const {
  const ScopedComponent tag(disk_->tracker(), component_);
  if (torn_tail != nullptr) *torn_tail = false;
  const uint32_t page_size = disk_->page_size();
  Page page(page_size);
  PageId id = chain_.front();
  std::vector<PageId> visited;
  // Walk the on-disk chain, not the in-memory one: recovery must trust only
  // what the device durably holds.
  bool first = true;
  while (id != kInvalidPageId) {
    // A torn link write can leave a garbage next pointer; if it happens to
    // point back into the chain, terminate instead of looping.
    if (std::find(visited.begin(), visited.end(), id) != visited.end()) {
      if (torn_tail != nullptr) *torn_tail = true;
      return Status::OK();
    }
    visited.push_back(id);
    const Status read = disk_->Read(id, &page);
    if (!read.ok()) {
      // A dangling link (torn link write) shows up as an invalid page id on
      // a non-head page: end of durable history. Anything else — e.g. a
      // transient injected fault — propagates so the caller can retry.
      if (!first && read.code() == StatusCode::kInvalidArgument) {
        if (torn_tail != nullptr) *torn_tail = true;
        return Status::OK();
      }
      return read;
    }
    // Parse records by their own checksums; the `used` header travels in
    // the same (tearable) block write as the record bytes, so it is never
    // trusted. Zero bytes are a clean end; anything else is a torn record.
    uint32_t off = kHeaderSize;
    size_t valid_here = 0;
    while (off + kRecordHeader <= page_size) {
      const uint8_t type = page.ReadAt<uint8_t>(off);
      const uint16_t len = page.ReadAt<uint16_t>(off + 1);
      const Lsn lsn = page.ReadAt<Lsn>(off + 3);
      const uint32_t sum = page.ReadAt<uint32_t>(off + 11);
      if (off + kRecordHeader + len > page_size ||
          sum != Checksum(type, len, lsn, page.data() + off + kRecordHeader)) {
        if ((type != 0 || len != 0 || sum != 0) && torn_tail != nullptr) {
          *torn_tail = true;
        }
        break;
      }
      if (!visit(lsn, type, page.data() + off + kRecordHeader, len)) {
        return Status::OK();
      }
      off += kRecordHeader + len;
      ++valid_here;
    }
    const PageId next = page.ReadAt<PageId>(kNextOff);
    if (!first && valid_here == 0) {
      // A linked page that parses to nothing is a torn link target, not
      // log history.
      if (torn_tail != nullptr) *torn_tail = true;
      return Status::OK();
    }
    first = false;
    id = next;
  }
  return Status::OK();
}

Status WriteAheadLog::Scan(const Visitor& visit, bool* torn_tail) const {
  return ScanWithLsn(
      [&visit](Lsn, uint8_t type, const uint8_t* payload, uint16_t len) {
        return visit(type, payload, len);
      },
      torn_tail);
}

Status WriteAheadLog::TruncateInternal(const TruncateRecord* records,
                                       size_t count, Lsn* out_lsn) {
  const ScopedComponent tag(disk_->tracker(), component_);
  // Empty head first, then free the remainder: a crash in between leaves a
  // logically empty log (plus leaked pages), never partial history. The
  // checkpoint records (when present) travel in the same single head
  // write, so "empty log" and "checkpoint planted" are one atomic step as
  // far as a clean failure is concerned; a torn head write degrades to an
  // empty log, which callers make safe by flushing dirty pages first.
  Page empty(disk_->page_size());
  InitHeader(&empty);
  uint32_t used = kHeaderSize;
  Lsn lsn = 0;
  for (size_t i = 0; i < count; ++i) {
    const TruncateRecord& r = records[i];
    VIEWMAT_CHECK(r.len <= max_payload());
    // Every surviving record must share the one atomic head write.
    VIEWMAT_CHECK(used + kRecordHeader + r.len <= disk_->page_size());
    lsn = lsns_->Next();
    last_lsn_ = lsn;
    PutRecord(&empty, used, r.type, r.payload, r.len, lsn);
    used += kRecordHeader + r.len;
    empty.WriteAt<uint32_t>(kUsedOff, used);
  }
  if (out_lsn != nullptr) *out_lsn = lsn;
  const Status st = disk_->Write(chain_.front(), empty);
  if (!st.ok()) {
    // The head write may or may not have landed; resync before the next
    // append so the old in-memory tail cannot resurrect truncated history.
    tail_dirty_ = true;
    pending_.clear();
    return st;
  }
  // Once the head is rewritten the truncation is logically complete — the
  // old chain is unreachable. Frees are best-effort: under a crashed
  // device they leak pages (a space cost), never history.
  for (size_t i = 1; i < chain_.size(); ++i) {
    (void)disk_->Free(chain_[i]);
  }
  chain_.resize(1);
  tail_ = std::move(empty);
  tail_used_ = used;
  tail_synced_ = used;
  pending_.clear();
  record_count_ = count;
  durable_lsn_ = lsn;
  tail_dirty_ = false;
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  return TruncateInternal(nullptr, 0, nullptr);
}

Status WriteAheadLog::TruncateWithRecord(uint8_t type, const uint8_t* payload,
                                         uint16_t len, Lsn* out_lsn) {
  const TruncateRecord record{type, payload, len};
  return TruncateInternal(&record, 1, out_lsn);
}

Status WriteAheadLog::TruncateWithRecords(const TruncateRecord* records,
                                          size_t count) {
  return TruncateInternal(records, count, nullptr);
}

}  // namespace viewmat::storage
