#include "storage/buffer_pool.h"

#include <atomic>

#include "common/logging.h"
#include "storage/wal.h"

namespace viewmat::storage {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    other.pool_ = nullptr;
  }
  return *this;
}

Page& PageGuard::page() {
  VIEWMAT_CHECK(valid());
  return *pool_->frames_[frame_].page;
}

const Page& PageGuard::page() const {
  VIEWMAT_CHECK(valid());
  return *pool_->frames_[frame_].page;
}

void PageGuard::MarkDirty() {
  VIEWMAT_CHECK(valid());
  pool_->MarkDirtyFrame(frame_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, id_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskInterface* disk, size_t capacity)
    : disk_(disk), capacity_(capacity) {
  VIEWMAT_CHECK(disk_ != nullptr);
  VIEWMAT_CHECK(capacity_ >= 2);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = capacity_; i > 0; --i) free_frames_.push_back(i - 1);
}

StatusOr<size_t> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    const size_t f = free_frames_.back();
    free_frames_.pop_back();
    if (frames_[f].page == nullptr) {
      frames_[f].page = std::make_unique<Page>(disk_->page_size());
    }
    return f;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted("all buffer frames are pinned");
  }
  const size_t victim = lru_.front();
  lru_.pop_front();
  Frame& fr = frames_[victim];
  VIEWMAT_DCHECK(fr.in_use && fr.pin_count == 0);
  if (fr.dirty) {
    Status flushed = EnforceWalRule(*fr.page);
    if (flushed.ok()) flushed = disk_->Write(fr.id, *fr.page);
    if (!flushed.ok()) {
      // Re-link the victim before surfacing the error: it was already
      // popped from the LRU list, and returning with it unlinked leaves
      // the frame unreachable (in_use, unpinned, on neither list) — the
      // pool then shrinks by one frame per failed flush until every
      // Fetch fails with "all buffer frames are pinned" despite zero
      // pins. The page is still intact and cached, so it goes back to
      // its old spot at the cold end of the list.
      lru_.push_front(victim);
      fr.lru_pos = lru_.begin();
      return flushed;
    }
  }
  table_.erase(fr.id);
  fr.in_use = false;
  fr.dirty = false;
  return victim;
}

StatusOr<PageGuard> BufferPool::Fetch(PageId id) {
  if (concurrent_reads_.load(std::memory_order_acquire)) {
    // Window invariant: the table is frozen (no inserts/evictions), so the
    // lookup races with nothing; the pin count is the only mutable word.
    auto it = table_.find(id);
    if (it == table_.end()) {
      return Status::Internal("buffer miss inside a concurrent-read window");
    }
    Frame& fr = frames_[it->second];
    std::atomic_ref<uint32_t>(fr.pin_count)
        .fetch_add(1, std::memory_order_acq_rel);
    return PageGuard(this, it->second, id);
  }
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame& fr = frames_[it->second];
    if (fr.pin_count == 0) lru_.erase(fr.lru_pos);
    ++fr.pin_count;
    return PageGuard(this, it->second, id);
  }
  VIEWMAT_ASSIGN_OR_RETURN(const size_t f, AcquireFrame());
  Frame& fr = frames_[f];
  VIEWMAT_RETURN_IF_ERROR(disk_->Read(id, fr.page.get()));
  fr.id = id;
  fr.pin_count = 1;
  fr.dirty = false;
  fr.in_use = true;
  table_[id] = f;
  return PageGuard(this, f, id);
}

StatusOr<PageGuard> BufferPool::NewPage() {
  VIEWMAT_ASSIGN_OR_RETURN(const size_t f, AcquireFrame());
  const PageId id = disk_->Allocate();
  Frame& fr = frames_[f];
  fr.page->Zero();
  fr.id = id;
  fr.pin_count = 1;
  // A fresh page must reach the disk even if never modified again.
  fr.dirty = true;
  fr.in_use = true;
  table_[id] = f;
  return PageGuard(this, f, id);
}

Status BufferPool::DeletePage(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame& fr = frames_[it->second];
    if (fr.pin_count > 0) {
      return Status::FailedPrecondition("deleting a pinned page");
    }
    lru_.erase(fr.lru_pos);
    fr.in_use = false;
    fr.dirty = false;
    free_frames_.push_back(it->second);
    table_.erase(it);
  }
  return disk_->Free(id);
}

void BufferPool::Unpin(size_t frame, PageId id) {
  Frame& fr = frames_[frame];
  if (concurrent_reads_.load(std::memory_order_acquire)) {
    // The frame kept whatever LRU position it had when the window opened;
    // dropping the pin must not re-link it or recency would depend on
    // thread interleaving.
    std::atomic_ref<uint32_t>(fr.pin_count)
        .fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  VIEWMAT_CHECK(fr.in_use && fr.id == id && fr.pin_count > 0);
  if (--fr.pin_count == 0) {
    lru_.push_back(frame);
    fr.lru_pos = std::prev(lru_.end());
  }
}

Status BufferPool::EnforceWalRule(const Page& page) {
  if (wal_ == nullptr || page.lsn() <= wal_->durable_lsn()) {
    return Status::OK();
  }
  ++wal_syncs_forced_;
  return wal_->Sync();
}

Status BufferPool::FlushAll() {
  const ScopedComponent tag(disk_->tracker(), Component::kBufferPool);
  for (Frame& fr : frames_) {
    if (fr.in_use && fr.dirty) {
      VIEWMAT_RETURN_IF_ERROR(EnforceWalRule(*fr.page));
      VIEWMAT_RETURN_IF_ERROR(disk_->Write(fr.id, *fr.page));
      fr.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::DiscardAll() {
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& fr = frames_[i];
    if (!fr.in_use) continue;
    if (fr.pin_count > 0) {
      return Status::FailedPrecondition("discarding a pinned page");
    }
    lru_.erase(fr.lru_pos);
    table_.erase(fr.id);
    fr.in_use = false;
    fr.dirty = false;
    free_frames_.push_back(i);
  }
  return Status::OK();
}

void BufferPool::SetConcurrentReads(bool on) {
  // The mode may only flip at a barrier: every guard released, so the LRU
  // list fully describes residency and survives the window untouched.
  for (const Frame& fr : frames_) {
    VIEWMAT_CHECK(!fr.in_use || fr.pin_count == 0);
  }
  concurrent_reads_.store(on, std::memory_order_release);
}

Status BufferPool::FlushAndEvictAll() {
  const ScopedComponent tag(disk_->tracker(), Component::kBufferPool);
  VIEWMAT_RETURN_IF_ERROR(FlushAll());
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& fr = frames_[i];
    if (!fr.in_use) continue;
    if (fr.pin_count > 0) {
      return Status::FailedPrecondition("evicting a pinned page");
    }
    lru_.erase(fr.lru_pos);
    table_.erase(fr.id);
    fr.in_use = false;
    free_frames_.push_back(i);
  }
  return Status::OK();
}

}  // namespace viewmat::storage
