#ifndef VIEWMAT_STORAGE_WAL_H_
#define VIEWMAT_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "storage/cost_tracker.h"
#include "storage/disk.h"

namespace viewmat::storage {

/// Hands out log sequence numbers. One allocator can be shared by several
/// logs (the unified redo WAL and each AD file's log), putting every record
/// in the system into a single total order — the "unified LSN space" the
/// recovery protocol keys page stamps against. LSNs start at 1; 0 means
/// "never logged". Gaps are fine (an LSN burned on a failed append is never
/// reused), only monotonicity matters.
class LsnAllocator {
 public:
  Lsn Next() { return next_.fetch_add(1, std::memory_order_relaxed); }

  /// Raises the counter so the next LSN is strictly greater than `lsn`.
  /// Called when a log resynchronizes from the device and discovers durable
  /// records this allocator instance has not seen.
  void EnsureAtLeast(Lsn lsn) {
    Lsn cur = next_.load(std::memory_order_relaxed);
    while (cur <= lsn &&
           !next_.compare_exchange_weak(cur, lsn + 1,
                                        std::memory_order_relaxed)) {
    }
  }

  /// Largest LSN handed out so far (0 if none).
  Lsn last() const { return next_.load(std::memory_order_relaxed) - 1; }

 private:
  std::atomic<Lsn> next_{1};
};

/// An LSN-stamped, checksummed redo log: the generalization of the AD
/// file's AdLog into a storage-layer service every maintenance strategy can
/// share. An append-only chain of pages written straight to the disk (no
/// buffer pool — a WAL append must be durable when Sync() returns), with
/// two durability modes:
///
///  - auto_sync (default, the historical AdLog behavior): every Append is
///    written through and durable when it returns OK;
///  - buffered (auto_sync = false): Append stages records in the in-memory
///    tail page and Sync() makes everything staged durable in one device
///    write — group commit. Staging never spans pages: a record that does
///    not fit first syncs the pending tail, then rolls over durably.
///
/// Torn-write safety: each record carries a length, its LSN, and an FNV-1a
/// checksum. Records validate themselves — the scanner never trusts the
/// page's `used` header, which travels in the same (tearable) block write
/// as the record bytes. A write torn anywhere leaves every
/// previously-acknowledged record intact (their bytes are rewritten
/// identically) and makes the torn tail record fail its checksum.
///
/// Acknowledgment is truthful both ways: when a sync reports failure, the
/// tail is read back to learn what the device durably holds. Records that
/// landed in full despite the error are adopted (a fully-landed batch is
/// acknowledged OK); a durable prefix of the batch is adopted into the
/// in-memory image but still reported as an error — the suffix is scrubbed
/// so it can never retroactively become durable. Only when the read-back
/// itself fails is the outcome unknown; the log then resynchronizes from
/// the device before the next operation, so the durable history stays
/// append-only either way.
///
/// Page layout:   [u32 used][PageId next][records...]
/// Record layout: [u8 type][u16 len][u64 lsn][u32 checksum][payload]
class WriteAheadLog {
 public:
  /// type, payload, payload length; return false to stop the scan.
  using Visitor = std::function<bool(uint8_t, const uint8_t*, uint16_t)>;
  /// Same, with the record's LSN first.
  using LsnVisitor =
      std::function<bool(Lsn, uint8_t, const uint8_t*, uint16_t)>;

  struct Options {
    /// Write every Append through immediately (AdLog-compatible). When
    /// false, records stage in the tail page until Sync().
    bool auto_sync = true;
    /// Shared LSN space; the log owns a private allocator when null.
    LsnAllocator* lsn_allocator = nullptr;
    /// Cost attribution for this log's I/O.
    Component component = Component::kWal;
  };

  explicit WriteAheadLog(DiskInterface* disk)
      : WriteAheadLog(disk, Options()) {}
  WriteAheadLog(DiskInterface* disk, Options options);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record, stamping it with the next LSN (reported through
  /// `out_lsn` when non-null). In auto_sync mode the record is durable iff
  /// this returns OK (with the read-back caveat documented on Sync); in
  /// buffered mode it is durable after the next OK Sync().
  Status Append(uint8_t type, const uint8_t* payload, uint16_t len,
                Lsn* out_lsn = nullptr);

  /// Makes every staged record durable. OK means the whole staged batch is
  /// on the device. An error means the tail of the batch is not durable
  /// (any durable prefix was adopted; the rest was scrubbed) — except when
  /// the device also refused the read-back probe, in which case the batch's
  /// fate is unknown until the next successful Scan; callers treat such a
  /// transaction as unresolved and consult the recovered log.
  Status Sync();

  /// Drops every staged-but-unsynced record and re-reads the durable tail
  /// from the device — the log-side analogue of BufferPool::DiscardAll.
  /// A process restart loses volatile log state for free; a simulated
  /// crash keeps this object alive, so the harness must kill that state
  /// explicitly before reusing the log. Without it a later Sync() would
  /// write the stale staged tail back to the restarted device and
  /// resurrect transactions the crash already lost.
  Status DiscardVolatile();

  /// Replays every durable record in append order. Stops early (OK) at a
  /// torn tail, reporting it through `torn_tail` when non-null.
  Status Scan(const Visitor& visit, bool* torn_tail = nullptr) const;
  Status ScanWithLsn(const LsnVisitor& visit, bool* torn_tail = nullptr) const;

  /// Logically empties the log: writes a fresh empty head page first, then
  /// frees the remainder of the old chain. A crash in between leaves an
  /// empty log plus leaked pages — never a partially-truncated history.
  Status Truncate();

  /// Truncates and plants `(type, payload)` as the sole surviving record in
  /// the same single head-page write — the checkpoint primitive. The write
  /// either lands (empty log + record) or it does not (old log intact); a
  /// torn head leaves an empty log, which is safe because callers flush all
  /// dirty pages before checkpointing.
  Status TruncateWithRecord(uint8_t type, const uint8_t* payload, uint16_t len,
                            Lsn* out_lsn = nullptr);

  /// One record surviving a truncate; see TruncateWithRecords.
  struct TruncateRecord {
    uint8_t type = 0;
    const uint8_t* payload = nullptr;
    uint16_t len = 0;
  };

  /// TruncateWithRecord generalized to several records planted in the same
  /// single head-page write, in order. All-or-nothing exactly like the
  /// one-record form: either the whole record set survives the truncate or
  /// the old log stays intact (a torn head degrades to an empty log). The
  /// records must fit one page together; callers checkpointing composite
  /// state (e.g. a recovery checkpoint plus a session dedup-table snapshot)
  /// use this so the pieces can never be separated by a crash.
  Status TruncateWithRecords(const TruncateRecord* records, size_t count);

  /// Records acknowledged durable since construction or the last Truncate.
  /// In-memory bookkeeping (informational; Scan is the durable source of
  /// truth).
  size_t record_count() const { return record_count_; }
  size_t page_count() const { return chain_.size(); }
  /// Records staged in the tail but not yet synced (buffered mode).
  size_t pending_records() const { return pending_.size(); }

  /// True when every Append writes through immediately; false in buffered
  /// (group-commit) mode, where an unsynced commit can be lost by a crash —
  /// recovery code must then trust only the durable log, not in-memory
  /// high-water floors.
  bool auto_sync() const { return auto_sync_; }

  /// Newest LSN known durable on the device. The buffer pool's WAL rule
  /// compares page stamps against this before write-back.
  Lsn durable_lsn() const { return durable_lsn_; }
  /// Newest LSN this log has assigned (staged or durable).
  Lsn last_lsn() const { return last_lsn_; }

  LsnAllocator* lsn_allocator() { return lsns_; }

  /// Largest payload a record can carry on this disk's page size.
  uint16_t max_payload() const;

 private:
  static constexpr uint32_t kUsedOff = 0;
  static constexpr uint32_t kNextOff = 4;
  static constexpr uint32_t kHeaderSize = 8;
  /// u8 type + u16 len + u64 lsn + u32 checksum.
  static constexpr uint32_t kRecordHeader = 15;

  struct Pending {
    uint32_t off = 0;   ///< record start within the tail page
    uint32_t size = 0;  ///< header + payload bytes
    Lsn lsn = 0;
  };

  static uint32_t Checksum(uint8_t type, uint16_t len, Lsn lsn,
                           const uint8_t* payload);

  /// Writes an empty page header into `page`.
  void InitHeader(Page* page) const;

  /// Serializes one record into `page` at `off`.
  void PutRecord(Page* page, uint32_t off, uint8_t type,
                 const uint8_t* payload, uint16_t len, Lsn lsn) const;

  /// Walks `page`'s records by checksum, returning the offset one past the
  /// last valid record, how many were valid, and the last valid LSN.
  void DurableEnd(const Page& page, uint32_t* end, size_t* count,
                  Lsn* last) const;

  /// Re-reads the durable tail (following any link an ambiguous failure may
  /// have landed) and adopts it as the in-memory tail image.
  Status ResyncTail();

  /// Shared body of Truncate/TruncateWithRecord(s).
  Status TruncateInternal(const TruncateRecord* records, size_t count,
                          Lsn* out_lsn);

  Status SyncInternal();

  DiskInterface* disk_;
  bool auto_sync_;
  Component component_;
  LsnAllocator owned_lsns_;
  LsnAllocator* lsns_;

  std::vector<PageId> chain_;  ///< head first; tail is open
  Page tail_;                  ///< in-memory copy of the tail page
  uint32_t tail_used_ = kHeaderSize;    ///< end of staged records
  uint32_t tail_synced_ = kHeaderSize;  ///< end of durable records
  std::vector<Pending> pending_;        ///< staged, not yet durable
  size_t record_count_ = 0;
  Lsn durable_lsn_ = 0;
  Lsn last_lsn_ = 0;
  /// True when a failed write could not be read back: the in-memory tail
  /// may disagree with the device and must resync before the next append.
  bool tail_dirty_ = false;
};

}  // namespace viewmat::storage

#endif  // VIEWMAT_STORAGE_WAL_H_
