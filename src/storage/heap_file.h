#ifndef VIEWMAT_STORAGE_HEAP_FILE_H_
#define VIEWMAT_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace viewmat::storage {

/// Unordered file of fixed-size records over the buffer pool. Used for
/// sequential-scan access paths and as the backing store for secondary
/// (unclustered) experiments.
///
/// Page layout: [uint16 slot_count][bitmap][records...]. The in-memory page
/// directory stands in for a file-system extent map; consulting it is not
/// charged, consistent with the paper not charging catalog lookups.
class HeapFile {
 public:
  /// `record_size` must fit at least one record per page alongside the
  /// header.
  HeapFile(BufferPool* pool, uint32_t record_size);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends a record into the first page with a free slot (first-fit over
  /// a free-page cache, so inserts are O(1) amortized).
  StatusOr<Rid> Insert(const uint8_t* record);

  /// Reads the record at `rid` into `out` (record_size bytes).
  Status Get(Rid rid, uint8_t* out) const;

  /// Overwrites the record at `rid`.
  Status Update(Rid rid, const uint8_t* record);

  /// Frees the slot at `rid`.
  Status Delete(Rid rid);

  /// Full scan in physical order. The callback returns false to stop early.
  /// Every data page is fetched exactly once.
  Status Scan(
      const std::function<bool(Rid, const uint8_t*)>& visit) const;

  uint32_t record_size() const { return record_size_; }
  uint32_t slots_per_page() const { return slots_per_page_; }
  size_t page_count() const { return pages_.size(); }
  size_t record_count() const { return record_count_; }

  /// Releases every page back to the disk.
  Status Destroy();

 private:
  static constexpr uint32_t kCountOffset = 0;  // uint16 used-slot count
  uint32_t BitmapOffset() const { return 2; }
  uint32_t RecordOffset(uint16_t slot) const {
    return records_base_ + slot * record_size_;
  }
  static bool TestBit(const Page& pg, uint32_t bitmap_off, uint16_t slot);
  static void SetBit(Page* pg, uint32_t bitmap_off, uint16_t slot, bool on);

  BufferPool* pool_;
  uint32_t record_size_;
  uint32_t slots_per_page_;
  uint32_t records_base_;
  std::vector<PageId> pages_;
  std::vector<PageId> pages_with_space_;
  size_t record_count_ = 0;
};

}  // namespace viewmat::storage

#endif  // VIEWMAT_STORAGE_HEAP_FILE_H_
