#ifndef VIEWMAT_STORAGE_DISK_H_
#define VIEWMAT_STORAGE_DISK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/cost_tracker.h"
#include "storage/page.h"

namespace viewmat::storage {

/// Named protocol points where a scripted crash can be injected. Higher
/// layers announce them via DiskInterface::AtCrashPoint just before the
/// step the name describes; a FaultyDisk armed for that point then fails
/// every subsequent I/O until Restart(), modelling a hard crash at exactly
/// that instant. The plain SimulatedDisk ignores them.
enum class CrashPoint : uint8_t {
  kNone = 0,
  kBeforeWalAppend,   ///< before an AD-log intent/commit record lands
  kAfterWalAppend,    ///< intent durable, hash file not yet touched
  kBeforeViewPatch,   ///< refresh: deltas computed, view still clean
  kMidViewPatch,      ///< refresh: view deletes applied, inserts pending
  kAfterViewPatch,    ///< refresh: view patched, marker not yet logged
  kBeforeFold,        ///< refresh: view durable, base fold not started
  kMidFold,           ///< refresh: base deletes folded, inserts pending
  kBeforeAdReset,     ///< refresh: fold committed, AD file not yet reset
  kMidAdReset,        ///< refresh: AD hash cleared, log not yet truncated
  kDiskOp,            ///< not announced: FaultyDisk::ScriptCrashAtOp fired
};

inline const char* CrashPointName(CrashPoint p) {
  switch (p) {
    case CrashPoint::kNone: return "none";
    case CrashPoint::kBeforeWalAppend: return "before-wal-append";
    case CrashPoint::kAfterWalAppend: return "after-wal-append";
    case CrashPoint::kBeforeViewPatch: return "before-view-patch";
    case CrashPoint::kMidViewPatch: return "mid-view-patch";
    case CrashPoint::kAfterViewPatch: return "after-view-patch";
    case CrashPoint::kBeforeFold: return "before-fold";
    case CrashPoint::kMidFold: return "mid-fold";
    case CrashPoint::kBeforeAdReset: return "before-ad-reset";
    case CrashPoint::kMidAdReset: return "mid-ad-reset";
    case CrashPoint::kDiskOp: return "disk-op";
  }
  return "unknown";
}

/// Abstract block device. Everything above the disk (buffer pool, heap
/// files, indexes, the AD log) talks to this interface, so a decorator —
/// FaultyDisk — can interpose fault and crash injection without the upper
/// layers knowing.
class DiskInterface {
 public:
  virtual ~DiskInterface() = default;

  virtual uint32_t page_size() const = 0;

  /// Allocates a zeroed page and returns its id. Allocation itself is not
  /// charged; the write that populates the page is.
  virtual PageId Allocate() = 0;

  /// Returns a page to the free list. Accessing it afterwards is an error.
  virtual Status Free(PageId id) = 0;

  /// Copies the page contents into `out` (which must match page_size) and
  /// charges one read.
  virtual Status Read(PageId id, Page* out) = 0;

  /// Overwrites the page from `in` and charges one write.
  virtual Status Write(PageId id, const Page& in) = 0;

  /// Number of live (allocated, not freed) pages.
  virtual size_t live_pages() const = 0;

  virtual CostTracker* tracker() = 0;

  /// Protocol-point hook for crash injection. The default device never
  /// crashes; FaultyDisk overrides this to fail when a scripted crash point
  /// is reached. Callers must propagate a non-OK result as an aborted
  /// operation.
  virtual Status AtCrashPoint(CrashPoint) { return Status::OK(); }
};

/// An in-memory block device that charges the shared CostTracker C2 model
/// milliseconds per block read or write. This is the substitution for the
/// paper's 1986 disk: the analysis is entirely in model time, so an
/// accounting device reproduces it faithfully while running in microseconds
/// of wall-clock.
///
/// Free pages are recycled through a free list so long simulations do not
/// grow the page table unboundedly.
class SimulatedDisk : public DiskInterface {
 public:
  /// `tracker` must outlive the disk; it is shared with the buffer pool and
  /// higher layers so a single meter covers the whole stack.
  SimulatedDisk(uint32_t page_size, CostTracker* tracker);

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  uint32_t page_size() const override { return page_size_; }
  PageId Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& in) override;
  size_t live_pages() const override { return pages_.size() - free_list_.size(); }
  CostTracker* tracker() override { return tracker_; }

 private:
  bool IsLive(PageId id) const;

  uint32_t page_size_;
  CostTracker* tracker_;
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<PageId> free_list_;
  std::vector<bool> live_;
};

}  // namespace viewmat::storage

#endif  // VIEWMAT_STORAGE_DISK_H_
