#ifndef VIEWMAT_STORAGE_DISK_H_
#define VIEWMAT_STORAGE_DISK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/cost_tracker.h"
#include "storage/page.h"

namespace viewmat::storage {

/// An in-memory block device that charges the shared CostTracker C2 model
/// milliseconds per block read or write. This is the substitution for the
/// paper's 1986 disk: the analysis is entirely in model time, so an
/// accounting device reproduces it faithfully while running in microseconds
/// of wall-clock.
///
/// Free pages are recycled through a free list so long simulations do not
/// grow the page table unboundedly.
class SimulatedDisk {
 public:
  /// `tracker` must outlive the disk; it is shared with the buffer pool and
  /// higher layers so a single meter covers the whole stack.
  SimulatedDisk(uint32_t page_size, CostTracker* tracker);

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  uint32_t page_size() const { return page_size_; }

  /// Allocates a zeroed page and returns its id. Allocation itself is not
  /// charged; the write that populates the page is.
  PageId Allocate();

  /// Returns a page to the free list. Accessing it afterwards is an error.
  Status Free(PageId id);

  /// Copies the page contents into `out` (which must match page_size) and
  /// charges one read.
  Status Read(PageId id, Page* out);

  /// Overwrites the page from `in` and charges one write.
  Status Write(PageId id, const Page& in);

  /// Number of live (allocated, not freed) pages.
  size_t live_pages() const { return pages_.size() - free_list_.size(); }

  /// Fault injection for tests: after `after` more successful reads
  /// (writes), the next read (write) fails with an Internal status, then
  /// the fault clears. Used to verify Status propagation through every
  /// layer — a failed I/O must surface as an error, never corrupt state.
  void InjectReadFault(uint64_t after) { read_fault_in_ = after + 1; }
  void InjectWriteFault(uint64_t after) { write_fault_in_ = after + 1; }
  void ClearFaults() {
    read_fault_in_ = 0;
    write_fault_in_ = 0;
  }

  CostTracker* tracker() { return tracker_; }

 private:
  bool IsLive(PageId id) const;

  uint32_t page_size_;
  CostTracker* tracker_;
  uint64_t read_fault_in_ = 0;   ///< 0 = no fault armed
  uint64_t write_fault_in_ = 0;
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<PageId> free_list_;
  std::vector<bool> live_;
};

}  // namespace viewmat::storage

#endif  // VIEWMAT_STORAGE_DISK_H_
